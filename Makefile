# ReviewSolver offline CI harness. Every target runs without network
# access; `make ci` is the full gate the driver runs on each PR.

GO      ?= go
BENCHDIR ?= bench
TOL     ?= 0.02

.PHONY: ci ci-fast fmt vet build test race benchgate bench bench-all obs-smoke serve-smoke fleetobs-smoke delta-smoke fuzz-smoke snapshot profile update-baselines clean

ci:
	./ci.sh

# Quick pre-push subset of the gate: no race detector, no benchgate, no
# smokes. Seconds instead of minutes.
ci-fast: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/obs/... ./internal/snapfile/... ./internal/wordvec/... ./internal/serve/...

benchgate:
	$(GO) run ./cmd/benchgate -dir $(BENCHDIR) -tol $(TOL)

update-baselines:
	$(GO) run ./cmd/benchgate -dir $(BENCHDIR) -tol $(TOL) -update

# Kernel benchmark smoke: one iteration of the similarity-kernel micro
# benchmarks, the end-to-end localization comparison, and the fleet-scale
# quantized-vs-float scan. Fast enough for CI; catches "kernel path silently
# disabled" and compile rot in the benchmarks.
bench:
	$(GO) test -run xxx -bench 'CosineVsDot|MatrixScan|LocalizeReview|KernelVsLegacy|CorpusThroughput|FleetScan' -benchtime 1x .

bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Telemetry smoke: drain the seeded corpus with tracing on, validate every
# explain trace against the schema (and its byte-determinism across worker
# counts), and scrape the expvar/metrics/health endpoints once.
obs-smoke:
	$(GO) run ./cmd/obssmoke

# Serving-layer smoke: boot an in-process reviewd on a free port, register
# two compiled snapshots over HTTP, drive concurrent traffic (including one
# injected panic), and diff every served response byte-for-byte against a
# direct solver over the same snapshots.
serve-smoke:
	$(GO) run ./cmd/servesmoke

# Fleet-observability smoke: run the deterministic fleet scenario through
# `reviewd -fleetstat` twice and require byte-identical SLO digest
# artifacts (the scenario also backs the exact BENCH_FLEETOBS.json gate).
fleetobs-smoke:
	$(GO) run ./cmd/reviewd -fleetstat /tmp/fleetstat-a.json -q
	$(GO) run ./cmd/reviewd -fleetstat /tmp/fleetstat-b.json -q
	cmp /tmp/fleetstat-a.json /tmp/fleetstat-b.json
	@rm -f /tmp/fleetstat-a.json /tmp/fleetstat-b.json

# Incremental-rebuild smoke: compile a base snapshot, write a delta against
# it twice with the incremental extraction path (must be byte-identical),
# verify the delta round-trips and localizes like the direct build, and run
# one iteration of the version-bump rebuild benchmark.
delta-smoke:
	$(GO) run ./cmd/snapshotc -app $(SNAPAPP) -o /tmp/delta-base.snap -q
	$(GO) run ./cmd/snapshotc -app $(SNAPAPP) -base /tmp/delta-base.snap -o /tmp/delta-a.snap -verify -q
	$(GO) run ./cmd/snapshotc -app $(SNAPAPP) -base /tmp/delta-base.snap -o /tmp/delta-b.snap -q
	cmp /tmp/delta-a.snap /tmp/delta-b.snap
	@rm -f /tmp/delta-base.snap /tmp/delta-a.snap /tmp/delta-b.snap
	$(GO) test -run '^$$' -bench DeltaRebuild -benchtime 1x ./internal/synth

# Short fuzz runs over the hostile-input surfaces: the snapshot container
# decoder, the full snapshot loader, and the delta-section decoder. All must
# return typed errors, never panic. (The committed seed corpora live under
# */testdata/fuzz/.)
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzOpen -fuzztime 5s ./internal/snapfile
	$(GO) test -run '^$$' -fuzz FuzzLoadSnapshotBytes -fuzztime 5s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzLoadSnapshotDeltaImages -fuzztime 5s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzDecodeEvents -fuzztime 5s ./internal/obs

# Compile (and verify) the snapshot of one built-in app. Override with e.g.
#   make snapshot SNAPAPP=org.wordpress.android SNAPOUT=wp.snap
SNAPAPP ?= com.fsck.k9
SNAPOUT ?= $(SNAPAPP).snap
snapshot:
	$(GO) run ./cmd/snapshotc -app $(SNAPAPP) -o $(SNAPOUT) -verify

# Profiling workflow: run the streaming corpus benchmark long enough for a
# useful sample and drop CPU + heap profiles under $(PROFDIR). Inspect with
#   go tool pprof $(PROFDIR)/cpu.out
#   go tool pprof -sample_index=alloc_objects $(PROFDIR)/heap.out
PROFDIR ?= profiles
profile:
	@mkdir -p $(PROFDIR)
	$(GO) test -run xxx -bench 'CorpusThroughput|ParallelLocalizeReview$$|AnalyzeReview' -benchtime 3s \
		-cpuprofile $(PROFDIR)/cpu.out -memprofile $(PROFDIR)/heap.out .
	@echo "profiles written to $(PROFDIR)/cpu.out and $(PROFDIR)/heap.out"

clean:
	$(GO) clean ./...
