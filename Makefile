# ReviewSolver offline CI harness. Every target runs without network
# access; `make ci` is the full gate the driver runs on each PR.

GO      ?= go
BENCHDIR ?= bench
TOL     ?= 0.02

.PHONY: ci fmt vet build test race benchgate bench update-baselines clean

ci:
	./ci.sh

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

benchgate:
	$(GO) run ./cmd/benchgate -dir $(BENCHDIR) -tol $(TOL)

update-baselines:
	$(GO) run ./cmd/benchgate -dir $(BENCHDIR) -tol $(TOL) -update

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
