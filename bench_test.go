// Package reviewsolver's root benchmark suite: one benchmark per paper
// table (the full rows are printed by cmd/experiments; these measure the
// cost of regenerating each one) plus micro-benchmarks for the pipeline
// stages that dominate Table 15.
package reviewsolver

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/baseline"
	"reviewsolver/internal/core"
	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/experiments"
	"reviewsolver/internal/ios"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/qa"
	"reviewsolver/internal/sdk"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
	"reviewsolver/internal/wordvec"
)

// sharedState lazily builds the expensive fixtures once for all benchmarks.
var (
	once       sync.Once
	benchRun   *experiments.Runner
	benchApps  []*synth.AppData
	benchSolve *core.Solver
)

func setup() {
	once.Do(func() {
		benchRun = experiments.NewRunner(1)
		benchApps = benchRun.Apps18()
		benchSolve = benchRun.Solver()
	})
}

func k9() *synth.AppData {
	setup()
	for _, a := range benchApps {
		if a.Info.Package == "com.fsck.k9" {
			return a
		}
	}
	return benchApps[0]
}

// --- one benchmark per evaluation table -----------------------------------------

func benchTable(b *testing.B, n int) {
	b.Helper()
	setup()
	for i := 0; i < b.N; i++ {
		tab, err := benchRun.TableByNumber(n)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable01ContextDistribution(b *testing.B) { benchTable(b, 1) }
func BenchmarkTable02Classifiers(b *testing.B)         { benchTable(b, 2) }
func BenchmarkTable03ScoreSample(b *testing.B)         { benchTable(b, 3) }
func BenchmarkTable04Sentiment(b *testing.B)           { benchTable(b, 4) }
func BenchmarkTable05Patterns(b *testing.B)            { benchTable(b, 5) }
func BenchmarkTable06Inventory(b *testing.B)           { benchTable(b, 6) }
func BenchmarkTable07ExternalDatasets(b *testing.B)    { benchTable(b, 7) }
func BenchmarkTable08BugReportGT(b *testing.B)         { benchTable(b, 8) }
func BenchmarkTable09ReleaseNoteGT(b *testing.B)       { benchTable(b, 9) }
func BenchmarkTable10Overlap(b *testing.B)             { benchTable(b, 10) }
func BenchmarkTable11Resolved(b *testing.B)            { benchTable(b, 11) }
func BenchmarkTable12Contexts(b *testing.B)            { benchTable(b, 12) }
func BenchmarkTable13Precision(b *testing.B)           { benchTable(b, 13) }
func BenchmarkTable14AdditionalApps(b *testing.B)      { benchTable(b, 14) }
func BenchmarkTable15LocalizerTiming(b *testing.B)     { benchTable(b, 15) }
func BenchmarkTable16IOS(b *testing.B)                 { benchTable(b, 16) }

// --- pipeline micro-benchmarks (the Table 15 cost centres) -----------------------

func BenchmarkLocalizeReviewEndToEnd(b *testing.B) {
	app := k9()
	review := "It's a great app but i cannot fetch mail since the latest update"
	when := app.App.Latest().ReleasedAt.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolve.LocalizeReview(app.App, review, when)
	}
}

func BenchmarkAnalyzeReview(b *testing.B) {
	setup()
	review := "Reinstalled the app, reply button now doesn't show. I receive an error message saying \"Failed to send some messages\"."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolve.AnalyzeReview(review)
	}
}

func BenchmarkExtractStatic(b *testing.B) {
	app := k9()
	release := app.App.Latest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolve.ExtractStatic(release)
	}
}

func benchLocalizer(b *testing.B, ctx ctxinfo.Type, review string) {
	b.Helper()
	app := k9()
	release := app.App.Latest()
	info := benchSolve.StaticFor(release)
	previous := app.App.Releases[len(app.App.Releases)-2]
	ra := benchSolve.AnalyzeReview(review)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSolve.LocalizeByContext(ctx, ra, info, previous, release)
	}
}

func BenchmarkLocalizerAppSpecific(b *testing.B) {
	benchLocalizer(b, ctxinfo.AppSpecificTask, "keeps crashing every time i fetch mail")
}

func BenchmarkLocalizerAPIURIIntent(b *testing.B) {
	benchLocalizer(b, ctxinfo.APIURIIntent, "i cannot send email to anyone")
}

func BenchmarkLocalizerGeneralTask(b *testing.B) {
	benchLocalizer(b, ctxinfo.GeneralTask, "errors prevent me to download file")
}

func BenchmarkLocalizerGUI(b *testing.B) {
	benchLocalizer(b, ctxinfo.GUI, "the reply button does not show")
}

func BenchmarkLocalizerErrorMessage(b *testing.B) {
	benchLocalizer(b, ctxinfo.ErrorMessage, `it says "Failed to send some messages" every time`)
}

func BenchmarkLocalizerException(b *testing.B) {
	benchLocalizer(b, ctxinfo.Exception, "there is a socket exception when it polls")
}

func BenchmarkLocalizerOpeningApp(b *testing.B) {
	benchLocalizer(b, ctxinfo.OpeningApp, "it crashed every time i opened it")
}

func BenchmarkLocalizerRegistration(b *testing.B) {
	benchLocalizer(b, ctxinfo.RegisteringAccount, "cannot login to my account")
}

func BenchmarkLocalizerUpdateDiff(b *testing.B) {
	benchLocalizer(b, ctxinfo.UpdatingApp, "app started crashing after recent update")
}

// --- component micro-benchmarks ---------------------------------------------------

func BenchmarkClassifierPredict(b *testing.B) {
	vec, clf := textclass.TrainOn(synth.TrainingCorpus(1),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })
	x := vec.Transform("the app keeps crashing when i upload photos")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf.Predict(x)
	}
}

func BenchmarkVectorizerTransform(b *testing.B) {
	vec, _ := textclass.TrainOn(synth.TrainingCorpus(1),
		func() textclass.Classifier { return textclass.NewNaiveBayes() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.Transform("the app keeps crashing when i upload photos to the server")
	}
}

func BenchmarkPhraseSimilarity(b *testing.B) {
	m := wordvec.NewModel()
	a1 := []string{"fetch", "mail"}
	a2 := []string{"get", "email"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Similarity(a1, a2)
	}
}

func BenchmarkSentimentSentiStrength(b *testing.B) {
	a := sentiment.SentiStrength{}
	review := "It's a great app but since the last update my stats page doesnt work properly."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sentiment.NegativeSentences(a, review)
	}
}

func BenchmarkQATopAPIs(b *testing.B) {
	catalog := sdk.NewCatalog()
	idx := qa.NewIndex(catalog, qa.GenerateCorpus(catalog))
	phrase := []string{"download", "file"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopAPIs(phrase, 5)
	}
}

func BenchmarkChangeAdvisor(b *testing.B) {
	app := k9()
	reviews := make([]string, 0, 100)
	for _, r := range app.Reviews[:100] {
		reviews = append(reviews, r.Text)
	}
	ca := baseline.NewChangeAdvisor()
	release := app.App.Latest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca.MapReviews(reviews, release)
	}
}

func BenchmarkWhere2Change(b *testing.B) {
	app := k9()
	reviews := make([]string, 0, 100)
	for _, r := range app.Reviews[:100] {
		reviews = append(reviews, r.Text)
	}
	var bugs []baseline.BugText
	for _, br := range app.BugReports {
		bugs = append(bugs, baseline.BugText{Title: br.Title, Body: br.Body})
	}
	w2c := baseline.NewWhere2Change()
	release := app.App.Latest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w2c.MapReviews(reviews, bugs, release)
	}
}

func BenchmarkIOSLocalize(b *testing.B) {
	loc := ios.NewLocalizer()
	apps := ios.GenerateTable16(1)
	review := "The app crashes every time i upload photos."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.Localize(apps[1].App, review)
	}
}

func BenchmarkAppGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := synth.GenerateSample(int64(i))
		if data == nil {
			b.Fatal("nil app")
		}
	}
}

func BenchmarkReleaseDiff(b *testing.B) {
	app := k9().App
	prev := app.Releases[len(app.Releases)-2]
	cur := app.Releases[len(app.Releases)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apk.DiffClasses(prev, cur)
	}
}

// --- snapshot & pool benchmarks (shared precomputed matching state) ---------------

func throughputInputs(n int) (*synth.AppData, []core.ReviewInput) {
	app := k9()
	if n > len(app.Reviews) {
		n = len(app.Reviews)
	}
	inputs := make([]core.ReviewInput, 0, n)
	for _, rv := range app.Reviews[:n] {
		inputs = append(inputs, core.ReviewInput{Text: rv.Text, PublishedAt: rv.PublishedAt})
	}
	return app, inputs
}

// BenchmarkSequentialThroughput is the seed baseline: one sequential solver
// draining a 100-review batch.
func BenchmarkSequentialThroughput(b *testing.B) {
	app, inputs := throughputInputs(100)
	solver := core.New()
	for _, r := range app.App.Releases {
		solver.StaticFor(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			solver.LocalizeReview(app.App, in.Text, in.PublishedAt)
		}
	}
}

// BenchmarkPoolThroughput drains the same 100-review batch through a
// NumCPU-worker pool whose workers share one precomputed Snapshot. On a
// multi-core runner this scales with the worker count; compare against
// BenchmarkSequentialThroughput.
func BenchmarkPoolThroughput(b *testing.B) {
	app, inputs := throughputInputs(100)
	pool := core.NewPool(0)
	pool.Snapshot().PrecomputeApp(app.App)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Localize(app.App, inputs)
	}
}

// BenchmarkCorpusThroughput drains the 100-review batch through the
// streaming LocalizeCorpus API (bounded channels, deterministic output
// order) and reports end-to-end reviews/sec. Compare against
// BenchmarkPoolThroughput: the stream adds ordering but shares the same
// warm frontend caches, so steady-state cost per review is comparable.
func BenchmarkCorpusThroughput(b *testing.B) {
	app, inputs := throughputInputs(100)
	pool := core.NewPool(0)
	pool.Snapshot().PrecomputeApp(app.App)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := make(chan core.ReviewInput)
		go func() {
			for _, r := range inputs {
				in <- r
			}
			close(in)
		}()
		n := 0
		for range pool.LocalizeCorpus(app.App, in) {
			n++
		}
		if n != len(inputs) {
			b.Fatalf("drained %d results, want %d", n, len(inputs))
		}
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "reviews/s")
}

// BenchmarkSnapshotWarmup measures the one-time cost of building the shared
// precomputed state (catalog embeddings + all release extractions). A pool
// of any size pays this exactly once.
func BenchmarkSnapshotWarmup(b *testing.B) {
	app := k9()
	for i := 0; i < b.N; i++ {
		sn := core.NewSnapshot()
		sn.PrecomputeApp(app.App)
	}
}

// BenchmarkSnapshotLoad measures reconstructing a serving-ready Snapshot
// from a compiled .snap image: container validation, binary IR decode, one
// apg.Build per release, and zero-copy stitching of the precomputed
// embedding matrices. Compare against BenchmarkSnapshotWarmup (the
// in-memory rebuild the file replaces); the CI gate requires ≥10×.
func BenchmarkSnapshotLoad(b *testing.B) {
	app := k9()
	sn := core.NewSnapshot()
	img, err := core.EncodeSnapshot(sn, app.App)
	if err != nil {
		b.Fatal(err)
	}
	// One warm-up load pays the process-wide solver template (sync.Once).
	if _, _, err := core.LoadSnapshotBytes(img); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.LoadSnapshotBytes(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures the compile half of the .snap path
// (extraction state already precomputed — serialization cost only).
func BenchmarkSnapshotEncode(b *testing.B) {
	app := k9()
	sn := core.NewSnapshot()
	sn.PrecomputeApp(app.App)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EncodeSnapshot(sn, app.App); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerWorkerWarmup measures the retired seed behaviour for
// comparison: N workers each building a private solver and re-extracting
// the same releases (what NewPool did before the Snapshot layer).
func BenchmarkPerWorkerWarmup(b *testing.B) {
	app := k9()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2 // the seed pool duplicated state per worker even on one CPU
	}
	for i := 0; i < b.N; i++ {
		for w := 0; w < workers; w++ {
			s := core.New()
			for _, r := range app.App.Releases {
				s.StaticFor(r)
			}
		}
	}
}

// BenchmarkParallelLocalizeReview measures single-review latency with the
// chunked-parallel matcher fanned out across all CPUs (kernel path: the
// default flattened dot scans with the anchor prescreen).
func BenchmarkParallelLocalizeReview(b *testing.B) {
	app := k9()
	sn := core.NewSnapshot()
	sn.PrecomputeApp(app.App)
	solver := core.NewWithSnapshot(sn, core.WithParallelism(0))
	review := "It's a great app but i cannot fetch mail since the latest update"
	when := app.App.Latest().ReleasedAt.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.LocalizeReview(app.App, review, when)
	}
}

// BenchmarkParallelLocalizeReviewObserved re-runs the same configuration
// with telemetry variants. The "off" sub-benchmark is the acceptance gate
// for the obs layer: with no recorder installed the instrumentation is nil
// checks only, so its ns/op must stay within 5% of
// BenchmarkParallelLocalizeReview. "metrics" and "traced" price the
// opt-in layers (registry atomics / explain-trace collection).
func BenchmarkParallelLocalizeReviewObserved(b *testing.B) {
	app := k9()
	sn := core.NewSnapshot()
	sn.PrecomputeApp(app.App)
	review := "It's a great app but i cannot fetch mail since the latest update"
	when := app.App.Latest().ReleasedAt.Add(24 * time.Hour)
	b.Run("off", func(b *testing.B) {
		solver := core.NewWithSnapshot(sn, core.WithParallelism(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver.LocalizeReview(app.App, review, when)
		}
	})
	b.Run("metrics", func(b *testing.B) {
		solver := core.NewWithSnapshot(sn, core.WithParallelism(0),
			core.WithObserver(obs.NewRecorder(obs.NewRegistry(), nil)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver.LocalizeReview(app.App, review, when)
		}
	})
	b.Run("traced", func(b *testing.B) {
		solver := core.NewWithSnapshot(sn, core.WithParallelism(0),
			core.WithObserver(obs.NewRecorder(obs.NewRegistry(), nil)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver.LocalizeReviewTraced(app.App, review, when)
		}
	})
}

// BenchmarkLegacyParallelLocalizeReview is the before side of the kernel
// comparison: the same snapshot+parallel configuration forced onto the
// retired per-struct full-cosine matcher.
func BenchmarkLegacyParallelLocalizeReview(b *testing.B) {
	app := k9()
	sn := core.NewSnapshot()
	sn.PrecomputeApp(app.App)
	solver := core.NewWithSnapshot(sn, core.WithParallelism(0), core.WithLegacyCosine())
	review := "It's a great app but i cannot fetch mail since the latest update"
	when := app.App.Latest().ReleasedAt.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.LocalizeReview(app.App, review, when)
	}
}

// BenchmarkSequentialKernelVsLegacy isolates the matcher itself: one
// sequential solver per path, no worker fan-out, so the ns/op ratio is the
// pure kernel-vs-cosine speedup on the Table 15 hot loops.
func BenchmarkSequentialKernelVsLegacy(b *testing.B) {
	app := k9()
	review := "It's a great app but i cannot fetch mail since the latest update"
	when := app.App.Latest().ReleasedAt.Add(24 * time.Hour)
	for _, cfg := range []struct {
		name string
		opts []core.Option
	}{
		{"kernel", nil},
		{"legacy", []core.Option{core.WithLegacyCosine()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			solver := core.New(cfg.opts...)
			for _, r := range app.App.Releases {
				solver.StaticFor(r)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solver.LocalizeReview(app.App, review, when)
			}
		})
	}
}

// --- similarity kernel micro-benchmarks -------------------------------------------

// BenchmarkCosineVsDot compares the per-candidate kernels: full cosine (two
// redundant norms + sqrt + divide) against the dot-only unrolled kernel the
// unit-vector invariant allows.
func BenchmarkCosineVsDot(b *testing.B) {
	m := wordvec.NewModel()
	q := m.PhraseVector([]string{"fetch", "mail"})
	c := m.PhraseVector([]string{"get", "email"})
	b.Run("Cosine", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += wordvec.Cosine(q, c)
		}
		sinkFloat = acc
	})
	b.Run("Dot", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += wordvec.Dot(q, c)
		}
		sinkFloat = acc
	})
}

// sinkFloat defeats dead-code elimination in the kernel micro-benchmarks.
var sinkFloat float64

// benchScanMatrix builds a catalog-sized candidate matrix from lexicon-ish
// phrases.
func benchScanMatrix(rows int) (*wordvec.Model, *wordvec.Matrix, []wordvec.Vector) {
	m := wordvec.NewModel()
	seeds := [][]string{
		{"send", "message"}, {"upload", "photo"}, {"delete", "file"},
		{"open", "connection"}, {"read", "contact"}, {"play", "audio"},
		{"query", "database"}, {"parse", "response"}, {"render", "page"},
		{"validate", "input"},
	}
	mat := wordvec.NewMatrix(rows)
	vecs := make([]wordvec.Vector, 0, rows)
	for i := 0; i < rows; i++ {
		p := append([]string(nil), seeds[i%len(seeds)]...)
		p = append(p, string(rune('a'+i%26))+"x"+string(rune('a'+(i/26)%26)))
		v := m.PhraseVector(p)
		mat.Append(v)
		vecs = append(vecs, v)
	}
	mat.Finish()
	return m, mat, vecs
}

// BenchmarkMatrixScan compares one query against 1024 candidates three
// ways: the retired per-struct cosine loop, the flat DotBatch kernel, and
// the prescreened threshold scan.
func BenchmarkMatrixScan(b *testing.B) {
	m, mat, vecs := benchScanMatrix(1024)
	qv := m.PhraseVector([]string{"send", "text"})
	threshold := m.Threshold()
	b.Run("PerStructCosine", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			for _, c := range vecs {
				if wordvec.Cosine(qv, c) >= threshold {
					n++
				}
			}
		}
		sinkFloat = float64(n)
	})
	b.Run("DotBatch", func(b *testing.B) {
		out := make([]float64, mat.Rows())
		for i := 0; i < b.N; i++ {
			wordvec.DotBatch(qv, mat.Data(), out)
		}
		sinkFloat = out[0]
	})
	b.Run("PrescreenScan", func(b *testing.B) {
		q := wordvec.PrepareQuery(qv)
		n := 0
		for i := 0; i < b.N; i++ {
			mat.ScanThreshold(&q, threshold, 0, mat.Rows(), func(int, float64) { n++ })
		}
		sinkFloat = float64(n)
	})
}

// benchFleetMatrices builds the fleet-scale candidate corpus (~100× the
// framework catalog's row count) twice over the same flattened data: once
// with only the float sketch and once with the quantized tier, so the two
// scan paths read identical rows.
func benchFleetMatrices(apps int) (*wordvec.Model, *wordvec.Matrix, *wordvec.Matrix) {
	m := wordvec.NewModel()
	phrases := synth.FleetPhrases(1, apps)
	mat := wordvec.NewMatrix(len(phrases))
	for _, p := range phrases {
		mat.Append(m.PhraseVector(p))
	}
	mat.Finish()
	proj, res := mat.Sketch()
	qmat, err := wordvec.MatrixFromParts(mat.Data(), proj, res)
	if err != nil {
		panic(err)
	}
	if !qmat.EnsureQuant() {
		panic("fleet matrix under the quantization gate")
	}
	return m, mat, qmat
}

// BenchmarkFleetScan scans one query phrase against the fleet-scale
// candidate matrix: the float sketch prescreen versus the quantized tier
// (inverted-file cluster bounds + integer code bounds + exact rescoring).
// Both paths yield byte-identical matches; the ratio of their ns/op is the
// quantized tier's speedup, recorded in bench/KERNEL_NOTES.md.
func BenchmarkFleetScan(b *testing.B) {
	m, mat, qmat := benchFleetMatrices(350)
	qv := m.PhraseVector([]string{"send", "text"})
	q := wordvec.PrepareQuery(qv)
	threshold := m.Threshold()
	b.Run("PrescreenScan", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			mat.ScanThreshold(&q, threshold, 0, mat.Rows(), func(int, float64) { n++ })
		}
		sinkFloat = float64(n)
	})
	b.Run("QuantScan", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			qmat.ScanThreshold(&q, threshold, 0, qmat.Rows(), func(int, float64) { n++ })
		}
		sinkFloat = float64(n)
	})
}
