#!/bin/sh
# Offline CI gate for ReviewSolver: formatting, vet, build, tests, the
# shared-snapshot race gate, and the benchgate metric-drift check. No step
# touches the network (GOPROXY=off enforces it); any failure exits non-zero.
set -eu
cd "$(dirname "$0")"

export GOPROXY=off
export GOFLAGS=-mod=mod

step() {
	echo ""
	echo "== $* =="
}

step gofmt
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "go test"
go test ./...

step "go test -race ./internal/core/... ./internal/obs/... ./internal/snapfile/... ./internal/wordvec/... ./internal/serve/..."
go test -race ./internal/core/... ./internal/obs/... ./internal/snapfile/... ./internal/wordvec/... ./internal/serve/...

step "fuzz smoke (snapfile decode + snapshot load + delta decode + event journal codec: typed errors, no panics)"
go test -run '^$' -fuzz FuzzOpen -fuzztime 5s ./internal/snapfile
go test -run '^$' -fuzz FuzzLoadSnapshotBytes -fuzztime 5s ./internal/core
go test -run '^$' -fuzz FuzzLoadSnapshotDeltaImages -fuzztime 5s ./internal/core
go test -run '^$' -fuzz FuzzDecodeEvents -fuzztime 5s ./internal/obs

# One temp dir holds the compiled snapshot artifact shared by the
# determinism, benchgate and smoke steps below; removed on any exit.
SNAPDIR="$(mktemp -d)"
trap 'rm -rf "$SNAPDIR"' EXIT
SNAPAPP="${SNAPAPP:-com.fsck.k9}"

step "snapshot determinism (snapshotc compiles the same app to identical bytes)"
go build -o "$SNAPDIR/snapshotc" ./cmd/snapshotc
"$SNAPDIR/snapshotc" -app "$SNAPAPP" -o "$SNAPDIR/app.snap" -verify -q
"$SNAPDIR/snapshotc" -app "$SNAPAPP" -o "$SNAPDIR/again.snap" -q
cmp "$SNAPDIR/app.snap" "$SNAPDIR/again.snap"

step "delta determinism (snapshotc -base: incremental extraction writes identical delta bytes, round-trip verified)"
"$SNAPDIR/snapshotc" -app "$SNAPAPP" -base "$SNAPDIR/app.snap" -o "$SNAPDIR/delta.snap" -verify -q
"$SNAPDIR/snapshotc" -app "$SNAPAPP" -base "$SNAPDIR/app.snap" -o "$SNAPDIR/delta2.snap" -q
cmp "$SNAPDIR/delta.snap" "$SNAPDIR/delta2.snap"

step "benchgate (tier-1 table metric drift + kernel scan stats + telemetry totals + front-end allocs + snapshot gate + exact fleetobs gate + exact delta gate)"
go run ./cmd/benchgate -dir "${BENCHDIR:-bench}" -tol "${TOL:-0.02}"

step "fleetobs smoke (reviewd -fleetstat artifact is byte-identical across runs)"
go build -o "$SNAPDIR/reviewd" ./cmd/reviewd
"$SNAPDIR/reviewd" -fleetstat "$SNAPDIR/fleetstat.json" -q
"$SNAPDIR/reviewd" -fleetstat "$SNAPDIR/fleetstat2.json" -q
cmp "$SNAPDIR/fleetstat.json" "$SNAPDIR/fleetstat2.json"

step "snapshot smoke (localization served from the .snap matches the direct build)"
go build -o "$SNAPDIR/reviewsolver" ./cmd/reviewsolver
"$SNAPDIR/reviewsolver" -app "$SNAPAPP" -review "cannot fetch mail" >"$SNAPDIR/direct.out"
"$SNAPDIR/reviewsolver" -snapshot "$SNAPDIR/app.snap" -review "cannot fetch mail" >"$SNAPDIR/loaded.out"
diff "$SNAPDIR/direct.out" "$SNAPDIR/loaded.out"

step "obs smoke (explain-trace schema, determinism, debug endpoints)"
go run ./cmd/obssmoke

step "serve smoke (reviewd daemon: registry, concurrent traffic, injected fault, byte-exact responses)"
go run ./cmd/servesmoke

step "bench smoke (kernel benchmarks, 1 iteration)"
go test -run xxx -bench 'CosineVsDot|MatrixScan|LocalizeReview|KernelVsLegacy|CorpusThroughput|FleetScan' -benchtime 1x .
go test -run xxx -bench DeltaRebuild -benchtime 1x ./internal/synth

echo ""
echo "CI PASS"
