#!/bin/sh
# Offline CI gate for ReviewSolver: formatting, vet, build, tests, the
# shared-snapshot race gate, and the benchgate metric-drift check. No step
# touches the network (GOPROXY=off enforces it); any failure exits non-zero.
set -eu
cd "$(dirname "$0")"

export GOPROXY=off
export GOFLAGS=-mod=mod

step() {
	echo ""
	echo "== $* =="
}

step gofmt
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

step "go vet"
go vet ./...

step "go build"
go build ./...

step "go test"
go test ./...

step "go test -race ./internal/core/... ./internal/obs/..."
go test -race ./internal/core/... ./internal/obs/...

step "benchgate (tier-1 table metric drift + kernel scan stats + telemetry totals + front-end allocs)"
go run ./cmd/benchgate -dir "${BENCHDIR:-bench}" -tol "${TOL:-0.02}"

step "obs smoke (explain-trace schema, determinism, debug endpoints)"
go run ./cmd/obssmoke

step "bench smoke (kernel benchmarks, 1 iteration)"
go test -run xxx -bench 'CosineVsDot|MatrixScan|LocalizeReview|KernelVsLegacy|CorpusThroughput' -benchtime 1x .

echo ""
echo "CI PASS"
