package main

import (
	"fmt"
	"reflect"

	"reviewsolver/internal/core"
	"reviewsolver/internal/experiments"
	"reviewsolver/internal/synth"
)

// deltaSnapshot builds the BENCH_DELTA.json gate for the incremental
// rebuild engine: structural diff counts and row-reuse accounting for the
// seeded app's release chain, invariants pinned at their only acceptable
// value (delta-vs-full localization mismatches 0, delta image determinism
// and load equivalence 1), and the headline metrics of the change-aware
// change-file-localization table (Table 17). A differ regression shows up
// as a diff-count drift, a reuse regression as a row-accounting drift, and
// a soundness break as a non-zero mismatch pin.
func deltaSnapshot(seed int64, runner *experiments.Runner) (snapshotFile, error) {
	data := synth.GenerateSample(seed)
	app := data.App
	if len(app.Releases) < 2 {
		return snapshotFile{}, fmt.Errorf("sample app has %d releases; need 2+", len(app.Releases))
	}

	// Full chain vs delta chain over the same release history.
	full := core.NewSnapshot()
	full.PrecomputeApp(app)
	dsn := core.NewSnapshot()
	stats := dsn.PrecomputeDelta(app)

	var agg core.DeltaStats
	fellBack := 0
	for _, st := range stats[1:] {
		if st.Full {
			fellBack++
			continue
		}
		agg.ClassesAdded += st.ClassesAdded
		agg.ClassesRemoved += st.ClassesRemoved
		agg.ClassesChanged += st.ClassesChanged
		agg.MethodRowsReused += st.MethodRowsReused
		agg.MethodRowsFresh += st.MethodRowsFresh
		agg.InvisibleRowsReused += st.InvisibleRowsReused
		agg.InvisibleRowsFresh += st.InvisibleRowsFresh
		agg.GUIsReused += st.GUIsReused
		agg.GUIsFresh += st.GUIsFresh
		agg.QuantPatched += st.QuantPatched
		agg.QuantRebuilt += st.QuantRebuilt
	}

	// Delta-vs-full localization equivalence over a fixed review sample;
	// pinned at zero so any divergence fails the gate.
	builtFull := core.NewWithSnapshot(full)
	builtDelta := core.NewWithSnapshot(dsn)
	reviews := data.Reviews
	if len(reviews) > 20 {
		reviews = reviews[:20]
	}
	mismatches := 0
	for _, rv := range reviews {
		want := builtFull.LocalizeReview(app, rv.Text, rv.PublishedAt)
		got := builtDelta.LocalizeReview(app, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
			mismatches++
		}
	}

	// Delta image: deterministic bytes and load equivalence against the
	// version-bump base (all but the last release).
	base := *app
	base.Releases = app.Releases[:len(app.Releases)-1]
	baseImg, err := core.EncodeSnapshot(core.NewSnapshot(), &base)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("encode delta base: %w", err)
	}
	deltaImg, err := core.EncodeSnapshotDelta(core.NewSnapshot(), app, baseImg)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("encode delta image: %w", err)
	}
	deltaImg2, err := core.EncodeSnapshotDelta(core.NewSnapshot(), app, baseImg)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("second delta encode: %w", err)
	}
	deterministic := 0.0
	if string(deltaImg) == string(deltaImg2) {
		deterministic = 1
	}
	loaded, lapp, err := core.LoadSnapshotDeltaImages(deltaImg, baseImg)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("load delta image: %w", err)
	}
	fromDelta := core.NewWithSnapshot(loaded)
	loadMismatches := 0
	for _, rv := range reviews {
		want := builtFull.LocalizeReview(app, rv.Text, rv.PublishedAt)
		got := fromDelta.LocalizeReview(lapp, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
			loadMismatches++
		}
	}

	metrics := map[string]float64{
		"diff|classes_added":      float64(agg.ClassesAdded),
		"diff|classes_removed":    float64(agg.ClassesRemoved),
		"diff|classes_changed":    float64(agg.ClassesChanged),
		"rows|method_reused":      float64(agg.MethodRowsReused),
		"rows|method_fresh":       float64(agg.MethodRowsFresh),
		"rows|invisible_reused":   float64(agg.InvisibleRowsReused),
		"rows|invisible_fresh":    float64(agg.InvisibleRowsFresh),
		"rows|guis_reused":        float64(agg.GUIsReused),
		"rows|guis_fresh":         float64(agg.GUIsFresh),
		"quant|patched":           float64(agg.QuantPatched),
		"quant|rebuilt":           float64(agg.QuantRebuilt),
		"image|delta_bytes":       float64(len(deltaImg)),
		"image|base_bytes":        float64(len(baseImg)),
		"pin|full_fallbacks":      float64(fellBack),
		"pin|delta_vs_full":       float64(mismatches),
		"pin|delta_load_vs_full":  float64(loadMismatches),
		"pin|delta_deterministic": deterministic,
	}
	// Change-aware table headline: every numeric cell of Table 17, so the
	// hit rates and MRR of both ranking modes are gated together with the
	// rebuild accounting.
	for k, v := range tableMetrics(runner.Table17()) {
		metrics["t17|"+k] = v
	}

	return snapshotFile{
		Table:   0,
		ID:      "delta",
		Title:   "Incremental rebuild diff accounting and change-aware localization gate",
		Seed:    seed,
		Metrics: metrics,
	}, nil
}
