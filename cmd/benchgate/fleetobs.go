package main

import (
	"fmt"

	"reviewsolver/internal/serve"
)

// fleetobsSnapshot runs the deterministic fleet-observability scenario
// (internal/serve/fleetsim.go) and flattens everything it pins into one
// metric map: the deterministic subset of the registry snapshot (labeled
// request counters, journal-drained event counters, registry gauges,
// pipeline counters — latency histograms reduced to their counts), the
// journal event sequence, the per-app SLO/error-budget arithmetic, and the
// digest artifact's exact byte length. Unlike the drift-tolerant table
// gates, this snapshot is compared exactly (zero tolerance): every value is
// a count or a budget, and the scenario is byte-deterministic by contract.
func fleetobsSnapshot(seed int64) (snapshotFile, error) {
	res, err := serve.RunFleetSim(seed, 2)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("fleetobs: %w", err)
	}

	m := res.DeterministicMetrics()

	// The journal's (type, app) sequence, position by position, so a
	// reordered or missing lifecycle event fails as a changed/vanished key.
	m["journal|events"] = float64(len(res.Events))
	for i, ev := range res.Events {
		m[fmt.Sprintf("journal|%02d|%s|%s", i, ev.Type, ev.App)] = float64(ev.Seq)
	}

	// Per-app SLO rows: window counts and error-budget arithmetic.
	for _, a := range res.Digest.Apps {
		p := "slo|" + a.App + "|"
		m[p+"requests"] = float64(a.Requests)
		m[p+"errors"] = float64(a.Errors)
		m[p+"shed"] = float64(a.Shed)
		m[p+"slow"] = float64(a.Slow)
		m[p+"error_budget"] = float64(a.ErrorBudget)
		m[p+"budget_spent"] = float64(a.BudgetSpent)
		m[p+"budget_remaining"] = float64(a.BudgetRemaining)
		m[p+"budget_ratio"] = a.BudgetRatio
		m[p+"availability_met"] = boolMetric(a.AvailabilityMet)
		m[p+"latency_met"] = boolMetric(a.LatencyMet)
	}

	// The served artifact itself: byte length pins the exact encoding
	// (field order, indentation, float formatting) without storing it.
	m["digest|bytes"] = float64(len(res.DigestJSON))
	m["traces|stored"] = float64(res.TracesStored)

	return snapshotFile{
		ID:      "fleetobs",
		Title:   "Fleet observability: labeled metrics, journal, SLO budgets",
		Seed:    seed,
		Metrics: m,
	}, nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
