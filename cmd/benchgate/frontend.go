package main

import (
	"fmt"
	"math"
	"runtime/debug"
	"testing"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

// frontendHitRateFloor is the minimum acceptable sentence-cache hit rate
// over the seeded corpus. The generators reuse sentence templates heavily,
// so a warm corpus run sits far above this; falling below it means the
// cache key or the interner regressed.
const frontendHitRateFloor = 0.30

// frontendSnapshot builds the BENCH_FRONTEND.json snapshot: exact
// steady-state allocation counts for the three front-end entry points
// (analyze, classify, localize) plus the corpus-level cache effectiveness
// counters. Allocation counts are measured with the collector disabled on a
// warmed sequential solver, so they are exact functions of the code — any
// drift is a real allocation regression, not noise. The hit-rate floor is
// enforced here (an error, not a drift), because a cold cache would still
// "match" a stale baseline taken before the regression.
func frontendSnapshot(seed int64) (snapshotFile, error) {
	data := synth.GenerateSample(seed)
	app := data.App

	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)

	sn := core.NewSnapshot()
	sn.PrecomputeApp(app)
	solver := core.NewWithSnapshot(sn, core.WithParallelism(-1))
	review := data.Reviews[0].Text
	when := app.Latest().ReleasedAt.Add(24 * time.Hour)
	// Warm every cache and pool the measurement touches.
	solver.AnalyzeReview(review)
	solver.LocalizeReview(app, review, when)

	analyzeAllocs := math.Round(testing.AllocsPerRun(50, func() {
		solver.AnalyzeReview(review)
	}))
	localizeAllocs := math.Round(testing.AllocsPerRun(50, func() {
		solver.LocalizeReview(app, review, when)
	}))

	vec, clf := textclass.TrainOn(synth.TrainingCorpus(seed),
		func() textclass.Classifier { return textclass.NewNaiveBayes() })
	clf.Predict(vec.Transform(review))
	classifyAllocs := math.Round(testing.AllocsPerRun(50, func() {
		clf.Predict(vec.Transform(review))
	}))

	// Cache effectiveness over the full seeded corpus. The insert-wins
	// counting discipline makes hits/misses exact functions of the corpus at
	// any worker count; one worker keeps the run cheap.
	reg := obs.NewRegistry()
	pool := core.NewPool(1).WithObserver(obs.NewRecorder(reg, nil))
	inputs := make([]core.ReviewInput, len(data.Reviews))
	for i, rv := range data.Reviews {
		inputs[i] = core.ReviewInput{Text: rv.Text, PublishedAt: rv.PublishedAt}
	}
	pool.Localize(app, inputs)
	snap := reg.Snapshot()
	hits := snap["analysis_cache_hits_total"]
	misses := snap["analysis_cache_misses_total"]
	if hits+misses == 0 {
		return snapshotFile{}, fmt.Errorf("front-end gate: sentence cache was never consulted")
	}
	rate := hits / (hits + misses)
	if rate < frontendHitRateFloor {
		return snapshotFile{}, fmt.Errorf("front-end gate: analysis cache hit rate %.3f below floor %.2f",
			rate, frontendHitRateFloor)
	}

	return snapshotFile{
		Table: 0,
		ID:    "frontend",
		Title: "Front-end allocation and cache-effectiveness gate",
		Seed:  seed,
		Metrics: map[string]float64{
			"analyze_allocs_per_op":       analyzeAllocs,
			"classify_allocs_per_op":      classifyAllocs,
			"localize_allocs_per_op":      localizeAllocs,
			"analysis_cache_hits_total":   hits,
			"analysis_cache_misses_total": misses,
			"analysis_cache_hit_rate":     rate,
			"interner_size":               snap["interner_size"],
		},
	}, nil
}
