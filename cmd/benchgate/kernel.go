package main

import (
	"reflect"
	"strings"

	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/wordvec"
)

// kernelProbes are fixed query phrases scanned against the method-phrase and
// framework-catalog matrices. Their prescreen prune/evaluate/match counts are
// pure functions of the embedding model, the lexicon anchors, and the seeded
// corpus, so any change to the kernel, the prescreen basis, or the flattened
// matrix layout shifts at least one count.
var kernelProbes = []string{
	"fetch mail",
	"send message",
	"download attachment",
	"sync account",
	"open settings",
}

// kernelSnapshot builds the BENCH_KERNEL.json snapshot: deterministic scan
// statistics plus a kernel-vs-legacy full-pipeline equivalence count. Unlike
// wall-clock benchmarks these numbers are exactly reproducible, so the gate
// catches kernel regressions without timing noise.
func kernelSnapshot(seed int64) snapshotFile {
	data := synth.GenerateSample(seed)
	app := data.App
	release := app.Releases[len(app.Releases)-1]

	s := core.New()
	legacy := core.New(core.WithLegacyCosine())
	info := s.StaticFor(release)

	m := map[string]float64{
		"shape|method_rows":  float64(info.MethodRows()),
		"shape|catalog_rows": float64(s.CatalogRows()),
		"shape|basis_size":   float64(wordvec.BasisSize()),
	}
	for _, phrase := range kernelProbes {
		key := strings.ReplaceAll(phrase, " ", "_")
		pr, ev, ma := s.KernelScanStats(info, phrase)
		m["method|"+key+"|pruned"] = float64(pr)
		m["method|"+key+"|evaluated"] = float64(ev)
		m["method|"+key+"|matched"] = float64(ma)
		pr, ev, ma = s.CatalogScanStats(phrase)
		m["catalog|"+key+"|pruned"] = float64(pr)
		m["catalog|"+key+"|evaluated"] = float64(ev)
		m["catalog|"+key+"|matched"] = float64(ma)
	}

	// Full-pipeline equivalence: the kernel path must reproduce the legacy
	// cosine path exactly, so the mismatch metric is pinned at zero in the
	// baseline and any divergence fails the gate.
	reviews := data.Reviews
	if len(reviews) > 10 {
		reviews = reviews[:10]
	}
	mappings, mismatches := 0, 0
	for _, rv := range reviews {
		got := s.LocalizeReview(app, rv.Text, rv.PublishedAt)
		want := legacy.LocalizeReview(app, rv.Text, rv.PublishedAt)
		mappings += len(got.Mappings)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
			mismatches++
		}
	}
	m["pipeline|mappings"] = float64(mappings)
	m["pipeline|legacy_mismatches"] = float64(mismatches)

	return snapshotFile{
		Table:   0,
		ID:      "kernel",
		Title:   "Similarity-kernel scan statistics",
		Seed:    seed,
		Metrics: m,
	}
}
