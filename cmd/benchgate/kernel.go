package main

import (
	"reflect"
	"strings"

	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/wordvec"
)

// kernelProbes are fixed query phrases scanned against the method-phrase and
// framework-catalog matrices. Their prescreen prune/evaluate/match counts are
// pure functions of the embedding model, the lexicon anchors, and the seeded
// corpus, so any change to the kernel, the prescreen basis, or the flattened
// matrix layout shifts at least one count.
var kernelProbes = []string{
	"fetch mail",
	"send message",
	"download attachment",
	"sync account",
	"open settings",
}

// kernelSnapshot builds the BENCH_KERNEL.json snapshot: deterministic scan
// statistics plus a kernel-vs-legacy full-pipeline equivalence count. Unlike
// wall-clock benchmarks these numbers are exactly reproducible, so the gate
// catches kernel regressions without timing noise.
func kernelSnapshot(seed int64) snapshotFile {
	data := synth.GenerateSample(seed)
	app := data.App
	release := app.Releases[len(app.Releases)-1]

	s := core.New()
	legacy := core.New(core.WithLegacyCosine())
	info := s.StaticFor(release)

	m := map[string]float64{
		"shape|method_rows":  float64(info.MethodRows()),
		"shape|catalog_rows": float64(s.CatalogRows()),
		"shape|basis_size":   float64(wordvec.BasisSize()),
	}
	for _, phrase := range kernelProbes {
		key := strings.ReplaceAll(phrase, " ", "_")
		pr, ev, ma := s.KernelScanStats(info, phrase)
		m["method|"+key+"|pruned"] = float64(pr)
		m["method|"+key+"|evaluated"] = float64(ev)
		m["method|"+key+"|matched"] = float64(ma)
		pr, ev, ma = s.CatalogScanStats(phrase)
		m["catalog|"+key+"|pruned"] = float64(pr)
		m["catalog|"+key+"|evaluated"] = float64(ev)
		m["catalog|"+key+"|matched"] = float64(ma)
	}

	// Full-pipeline equivalence: the kernel path must reproduce the legacy
	// cosine path exactly, so the mismatch metric is pinned at zero in the
	// baseline and any divergence fails the gate.
	reviews := data.Reviews
	if len(reviews) > 10 {
		reviews = reviews[:10]
	}
	mappings, mismatches := 0, 0
	for _, rv := range reviews {
		got := s.LocalizeReview(app, rv.Text, rv.PublishedAt)
		want := legacy.LocalizeReview(app, rv.Text, rv.PublishedAt)
		mappings += len(got.Mappings)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
			mismatches++
		}
	}
	m["pipeline|mappings"] = float64(mappings)
	m["pipeline|legacy_mismatches"] = float64(mismatches)

	fleetQuantMetrics(seed, m)

	return snapshotFile{
		Table:   0,
		ID:      "kernel",
		Title:   "Similarity-kernel scan statistics",
		Seed:    seed,
		Metrics: m,
	}
}

// fleetQuantMetrics gates the quantized scan tier on a fleet-scale candidate
// matrix (many apps' method phrases flattened into one corpus, well past the
// tier's row gate). For each probe it records how the tier disposed of every
// row — whole clusters killed by the inverted-file bound, rows killed by the
// float sketch or the integer code bound, rows rescored with an exact float
// dot — plus two pinned invariants: the quantized yields must be
// byte-identical to the float prescreen's (mismatches 0) and every float
// match must be found (recall 1.0). The tier is exact by construction, so
// any drift here is a soundness bug, not a tuning change.
func fleetQuantMetrics(seed int64, m map[string]float64) {
	const fleetApps = 120
	model := wordvec.NewModel()
	phrases := synth.FleetPhrases(seed, fleetApps)
	mat := wordvec.NewMatrix(len(phrases))
	for _, p := range phrases {
		mat.Append(model.PhraseVector(p))
	}
	mat.Finish()
	proj, res := mat.Sketch()
	qmat, err := wordvec.MatrixFromParts(mat.Data(), proj, res)
	if err != nil {
		panic(err)
	}
	if !qmat.EnsureQuant() {
		panic("fleet matrix under the quantization row gate")
	}

	type hit struct {
		row int
		dot float64
	}
	threshold := model.Threshold()
	mismatches, floatMatched, quantMatched := 0, 0, 0
	for _, phrase := range kernelProbes {
		key := strings.ReplaceAll(phrase, " ", "_")
		q := wordvec.PrepareQuery(model.PhraseVector(strings.Fields(phrase)))

		var want, got []hit
		fc := mat.ScanThresholdCount(&q, threshold, 0, mat.Rows(), func(r int, d float64) {
			want = append(want, hit{r, d})
		})
		qc := qmat.ScanThresholdCount(&q, threshold, 0, qmat.Rows(), func(r int, d float64) {
			got = append(got, hit{r, d})
		})
		if !reflect.DeepEqual(got, want) {
			mismatches++
		}
		floatMatched += fc.Matched
		quantMatched += qc.Matched

		m["fleet|"+key+"|ivf_pruned"] = float64(qc.IVFPruned)
		m["fleet|"+key+"|sketch_pruned"] = float64(qc.Pruned)
		m["fleet|"+key+"|bound_pruned"] = float64(qc.BoundPruned)
		m["fleet|"+key+"|rescored"] = float64(qc.Evaluated)
		m["fleet|"+key+"|matched"] = float64(qc.Matched)
	}
	recall := 1.0
	if floatMatched > 0 {
		recall = float64(quantMatched) / float64(floatMatched)
	}
	m["fleet|rows"] = float64(qmat.Rows())
	m["fleet|clusters"] = float64(qmat.QuantClusters())
	m["fleet|quant_mismatches"] = float64(mismatches)
	m["fleet|recall"] = recall
}
