// Command benchgate is the CI bench gate: it regenerates the tier-1
// evaluation tables (the paper's Tables 1–16) with a fixed seed, writes one
// BENCH_<n>.json metric snapshot per table, and fails when the reproduced
// metrics drift from the previous snapshot beyond a tolerance.
//
// Behaviour:
//
//   - no prior BENCH_<n>.json for a table → the baseline is created and the
//     table is skipped cleanly (exit 0);
//   - prior snapshot present → every numeric cell shared by both runs is
//     compared with relative tolerance -tol; drifted cells, vanished cells,
//     and newly appearing cells all fail the gate (exit 1) and the stored
//     baseline is kept so the failure reproduces;
//   - -update rewrites the baselines from the current run and exits 0.
//
// Cells that do not parse as numbers (labels, durations in Table 15) are
// ignored, so wall-clock noise never fails the gate. Everything runs
// offline from the built-in generators.
//
// Usage:
//
//	benchgate [-dir bench] [-tol 0.02] [-tables 1,2,8-10] [-seed 1] [-update]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"reviewsolver/internal/experiments"
)

// snapshotFile is the on-disk schema of one BENCH_<n>.json.
type snapshotFile struct {
	Table   int                `json:"table"`
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dir    = flag.String("dir", "bench", "directory holding BENCH_<n>.json snapshots")
		tol    = flag.Float64("tol", 0.02, "relative drift tolerance per metric")
		tables = flag.String("tables", "1-17", "tables to gate (comma list with ranges, e.g. 1,2,8-10)")
		seed   = flag.Int64("seed", 1, "generator seed (must match the stored baselines)")
		kernel = flag.Bool("kernel", true, "also gate the similarity-kernel scan snapshot (BENCH_KERNEL.json)")
		obsFlg = flag.Bool("obs", true, "also gate the telemetry registry snapshot (BENCH_OBS.json)")
		frontE = flag.Bool("frontend", true, "also gate front-end allocation counts and cache hit rate (BENCH_FRONTEND.json)")
		snapFl = flag.Bool("snapshot", true, "also gate the snapshot image structure and load equivalence (BENCH_SNAPSHOT.json)")
		srvFlg = flag.Bool("serve", true, "also gate the serving layer: response exactness, admission counts, failure mapping, perf pins (BENCH_SERVE.json)")
		fleetF = flag.Bool("fleetobs", true, "also gate fleet observability: labeled metrics, journal event sequence, SLO budget arithmetic, exactly (BENCH_FLEETOBS.json)")
		deltaF = flag.Bool("delta", true, "also gate incremental rebuilds: diff counts, row reuse, delta-vs-full mismatch pins, change-aware table metrics (BENCH_DELTA.json)")
		update = flag.Bool("update", false, "rewrite the baselines from this run")
	)
	flag.Parse()

	nums, err := parseTables(*tables)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	runner := experiments.NewRunner(*seed)
	failed := 0
	created := 0
	for _, n := range nums {
		tab, err := runner.TableByNumber(n)
		if err != nil {
			return err
		}
		cur := snapshotFile{
			Table:   n,
			ID:      tab.ID,
			Title:   tab.Title,
			Seed:    *seed,
			Metrics: tableMetrics(tab),
		}
		path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n))
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, *tol, *update, fmt.Sprintf("table %2d", n))
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *kernel {
		cur := kernelSnapshot(*seed)
		path := filepath.Join(*dir, "BENCH_KERNEL.json")
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, *tol, *update, "kernel  ")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *obsFlg {
		cur := obsSnapshot(*seed)
		path := filepath.Join(*dir, "BENCH_OBS.json")
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, *tol, *update, "obs     ")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *frontE {
		cur, err := frontendSnapshot(*seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_FRONTEND.json")
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, *tol, *update, "frontend")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *snapFl {
		cur, err := snapshotSnapshot(*seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_SNAPSHOT.json")
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, *tol, *update, "snapshot")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *srvFlg {
		cur, err := serveSnapshot(*seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_SERVE.json")
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, *tol, *update, "serve   ")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *fleetF {
		cur, err := fleetobsSnapshot(*seed)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_FLEETOBS.json")
		// Every fleetobs metric is a count or a budget from a
		// byte-deterministic scenario — gate with zero tolerance.
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, 0, *update, "fleetobs")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if *deltaF {
		cur, err := deltaSnapshot(*seed, runner)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, "BENCH_DELTA.json")
		// Diff counts, row accounting, and equivalence pins are all exact
		// integers from a deterministic chain — gate with zero tolerance.
		madeBaseline, drifted, err := gateSnapshot(path, cur, *seed, 0, *update, "delta   ")
		if err != nil {
			return err
		}
		if madeBaseline {
			created++
		}
		if drifted {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d snapshot(s) drifted beyond tolerance %.3f (use -update to accept)", failed, *tol)
	}
	if created > 0 {
		fmt.Printf("%d baseline(s) created; gate active on next run\n", created)
	}
	return nil
}

// gateSnapshot runs the create/compare/update cycle for one snapshot file.
// It reports whether a fresh baseline was created and whether the current run
// drifted from an existing one.
func gateSnapshot(path string, cur snapshotFile, seed int64, tol float64, update bool, label string) (madeBaseline, drifted bool, err error) {
	prev, err := readSnapshot(path)
	switch {
	case err != nil && os.IsNotExist(err):
		if err := writeSnapshot(path, cur); err != nil {
			return false, false, err
		}
		fmt.Printf("%s: baseline created (%d metrics) — skipped\n", label, len(cur.Metrics))
		return true, false, nil
	case err != nil:
		return false, false, fmt.Errorf("read %s: %w", path, err)
	}
	if prev.Seed != seed {
		return false, false, fmt.Errorf("%s: baseline seed %d does not match -seed %d (delete %s or rerun with the baseline seed)",
			label, prev.Seed, seed, path)
	}
	if update {
		if err := writeSnapshot(path, cur); err != nil {
			return false, false, err
		}
		fmt.Printf("%s: baseline updated (%d metrics)\n", label, len(cur.Metrics))
		return false, false, nil
	}
	drifts := compareMetrics(prev.Metrics, cur.Metrics, tol)
	if len(drifts) == 0 {
		fmt.Printf("%s: ok (%d metrics within %.1f%%)\n", label, len(cur.Metrics), 100*tol)
		return false, false, nil
	}
	fmt.Printf("%s: DRIFT (%d metrics)\n", label, len(drifts))
	for _, d := range drifts {
		fmt.Printf("  %s\n", d)
	}
	return false, true, nil
}

// tableMetrics flattens a table's numeric cells into a stable key → value
// map. The key carries the row index, the row label, and the column header
// so that structural changes surface as missing/new keys instead of silent
// re-pairings.
func tableMetrics(tab *experiments.Table) map[string]float64 {
	out := make(map[string]float64)
	for ri, row := range tab.Rows {
		label := ""
		if len(row) > 0 {
			label = row[0]
		}
		for ci, cell := range row {
			v, ok := parseMetric(cell)
			if !ok {
				continue
			}
			header := fmt.Sprintf("col%d", ci)
			if ci < len(tab.Header) {
				header = tab.Header[ci]
			}
			out[fmt.Sprintf("r%02d|%s|%s", ri, label, header)] = v
		}
	}
	return out
}

// parseMetric extracts a float from a table cell: plain numbers and
// percentages count; labels, durations, and compound cells do not.
func parseMetric(cell string) (float64, bool) {
	s := strings.TrimSpace(cell)
	s = strings.TrimSuffix(s, "%")
	s = strings.ReplaceAll(s, ",", "")
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

// compareMetrics reports every drift between the baseline and the current
// run, sorted by key for stable output.
func compareMetrics(prev, cur map[string]float64, tol float64) []string {
	var out []string
	keys := make([]string, 0, len(prev)+len(cur))
	seen := make(map[string]struct{}, len(prev)+len(cur))
	for k := range prev {
		keys = append(keys, k)
		seen[k] = struct{}{}
	}
	for k := range cur {
		if _, dup := seen[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pv, inPrev := prev[k]
		cv, inCur := cur[k]
		switch {
		case !inPrev:
			out = append(out, fmt.Sprintf("%s: new metric %.4g (not in baseline)", k, cv))
		case !inCur:
			out = append(out, fmt.Sprintf("%s: metric vanished (baseline %.4g)", k, pv))
		default:
			denom := math.Max(math.Abs(pv), 1)
			if math.Abs(cv-pv)/denom > tol {
				out = append(out, fmt.Sprintf("%s: %.4g → %.4g (drift %.2f%% > %.2f%%)",
					k, pv, cv, 100*math.Abs(cv-pv)/denom, 100*tol))
			}
		}
	}
	return out
}

func readSnapshot(path string) (snapshotFile, error) {
	var sf snapshotFile
	data, err := os.ReadFile(path)
	if err != nil {
		return sf, err
	}
	if err := json.Unmarshal(data, &sf); err != nil {
		return sf, fmt.Errorf("parse %s: %w", path, err)
	}
	return sf, nil
}

func writeSnapshot(path string, sf snapshotFile) error {
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseTables expands "1,2,8-10" into a sorted list of table numbers.
func parseTables(spec string) ([]int, error) {
	var out []int
	seen := make(map[int]struct{})
	add := func(n int) error {
		if n < 1 || n > 17 {
			return fmt.Errorf("table %d out of range 1–17", n)
		}
		if _, dup := seen[n]; !dup {
			seen[n] = struct{}{}
			out = append(out, n)
		}
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad table range %q", part)
			}
			for n := a; n <= b; n++ {
				if err := add(n); err != nil {
					return nil, err
				}
			}
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad table number %q", part)
		}
		if err := add(n); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tables selected from %q", spec)
	}
	sort.Ints(out)
	return out, nil
}
