package main

import (
	"strings"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

// obsSnapshot builds the BENCH_OBS.json snapshot: the telemetry registry
// state after draining the seeded sample corpus through an observed pool.
// Wall-clock-dependent keys (latency histogram buckets and sums) are
// filtered out — only their observation counts stay — so every gated metric
// is an exact function of the seed: review/stage/mapping counters, kernel
// prescreen totals, match-similarity histogram buckets, and the drained
// pool gauges.
func obsSnapshot(seed int64) snapshotFile {
	data := synth.GenerateSample(seed)
	reg := obs.NewRegistry()
	pool := core.NewPool(4).WithObserver(obs.NewRecorder(reg, nil))

	reviews := make([]core.ReviewInput, len(data.Reviews))
	for i, rv := range data.Reviews {
		reviews[i] = core.ReviewInput{Text: rv.Text, PublishedAt: rv.PublishedAt}
	}
	pool.Localize(data.App, reviews)

	m := make(map[string]float64)
	for k, v := range reg.Snapshot() {
		if nondeterministicKey(k) {
			continue
		}
		m[k] = v
	}
	return snapshotFile{
		Table:   0,
		ID:      "obs",
		Title:   "Pipeline telemetry registry totals",
		Seed:    seed,
		Metrics: m,
	}
}

// nondeterministicKey reports whether a registry snapshot key carries
// wall-clock data. Latency histograms ("stage_<stage>_ns") have
// timing-dependent bucket spreads and sums; their "|count" entries — how
// many spans ran — are deterministic and stay in the gate.
func nondeterministicKey(k string) bool {
	if !strings.Contains(k, "_ns|") {
		return false
	}
	return !strings.HasSuffix(k, "|count")
}
