package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve"
	"reviewsolver/internal/serve/faultinject"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// Serving-gate scenario shape: small enough to run in seconds, exact enough
// that every gated metric is a pure function of the seed.
const (
	serveQueueDepth = 2 // waiting line in the saturation scenario
	serveShedProbes = 5 // arrivals fired into the full line — all must shed
	serveP99Samples = 30
	// Conservative performance bounds, expressed as 0/1 pins so machine
	// noise cannot drift them: localization serves thousands of reviews per
	// second on any supported hardware, so a floor of 20/s and a per-request
	// p99 ceiling of 2s only trip on order-of-magnitude regressions
	// (accidental sequentialization, a lock on the hot path, a spin loop).
	serveThroughputFloor = 20.0 // reviews/sec over the batch path
	serveP99Ceiling      = 2 * time.Second
)

// serveSnapshot builds the BENCH_SERVE.json snapshot by driving a reviewd
// daemon (handler-level, no sockets) through deterministic scenarios:
// byte-exactness of served responses vs the direct solver, exact admission
// shed counts under a blocked execution slot, exact quarantine rejections
// for a corrupt snapshot, panic containment, deadline mapping, and
// conservative throughput/latency pins.
func serveSnapshot(seed int64) (snapshotFile, error) {
	data := synth.GenerateSample(seed)
	img, err := core.EncodeSnapshot(core.NewSnapshot(), data.App)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("serve gate: encode snapshot: %w", err)
	}
	m := make(map[string]float64)

	if err := serveGateExactness(seed, data, img, m); err != nil {
		return snapshotFile{}, err
	}
	if err := serveGateAdmission(data, img, m); err != nil {
		return snapshotFile{}, err
	}
	if err := serveGateFailures(data, img, m); err != nil {
		return snapshotFile{}, err
	}
	if err := serveGatePerformance(data, img, m); err != nil {
		return snapshotFile{}, err
	}

	return snapshotFile{
		Table:   0,
		ID:      "serve",
		Title:   "Serving layer: response exactness, admission, failure mapping, perf pins",
		Seed:    seed,
		Metrics: m,
	}, nil
}

// serveGateExactness: single and batch responses byte-identical to the
// direct solver over the same snapshot, order preserved.
func serveGateExactness(seed int64, data *synth.AppData, img []byte, m map[string]float64) error {
	d := serve.NewDaemon(serve.Config{Metrics: obs.NewRegistry()})
	d.Registry().RegisterBytes(data.Info.Package, "v1", img)
	defer d.Close()

	snap, app, err := core.LoadSnapshotBytes(img)
	if err != nil {
		return fmt.Errorf("serve gate: direct load: %w", err)
	}
	solver := core.NewWithSnapshot(snap)

	n := len(data.Reviews)
	if n > 16 {
		n = 16
	}
	exact := 1.0
	ranked := 0
	for _, rv := range data.Reviews[:n] {
		res := solver.LocalizeReview(app, rv.Text, rv.PublishedAt)
		want, err := json.Marshal(serve.LocalizeResponse{
			App:     data.Info.Package,
			Version: "v1",
			Results: []serve.LocalizeResult{serve.ResultToJSON(rv.Text, res)},
		})
		if err != nil {
			return err
		}
		want = append(want, '\n')
		status, body := serveDo(d, "POST", "/v1/localize", serve.LocalizeRequest{
			App: data.Info.Package, Review: rv.Text, PublishedAt: rv.PublishedAt.Format(time.RFC3339),
		})
		if status != http.StatusOK || !bytes.Equal(body, want) {
			exact = 0
		}
		ranked += len(res.Ranked)
	}

	batch := make([]serve.BatchReview, n)
	for i := 0; i < n; i++ {
		batch[i] = serve.BatchReview{Review: data.Reviews[i].Text, PublishedAt: data.Reviews[i].PublishedAt.Format(time.RFC3339)}
	}
	status, body := serveDo(d, "POST", "/v1/localize", serve.LocalizeRequest{App: data.Info.Package, Reviews: batch})
	var resp serve.LocalizeResponse
	batchOK := 1.0
	if status != http.StatusOK || json.Unmarshal(body, &resp) != nil || len(resp.Results) != n {
		batchOK = 0
	} else {
		for i, r := range resp.Results {
			if r.Review != batch[i].Review {
				batchOK = 0
			}
		}
	}

	m["single_responses_exact"] = exact
	m["single_ranked_classes"] = float64(ranked)
	m["batch_order_preserved"] = batchOK
	m["batch_results"] = float64(len(resp.Results))
	return nil
}

// serveGateAdmission: with one execution slot blocked and the waiting line
// full, every probe sheds with 429 — an exact, deterministic count.
func serveGateAdmission(data *synth.AppData, img []byte, m map[string]float64) error {
	met := obs.NewRegistry()
	inj := faultinject.New()
	gate := make(chan struct{})
	inj.Arm(faultinject.PointRequest, faultinject.Fault{Block: gate, Count: 1})
	d := serve.NewDaemon(serve.Config{
		Metrics: met, Injector: inj,
		MaxConcurrent: 1, QueueDepth: serveQueueDepth, RequestTimeout: 30 * time.Second,
	})
	d.Registry().RegisterBytes(data.Info.Package, "v1", img)
	defer d.Close()

	body := serve.LocalizeRequest{App: data.Info.Package, Review: data.Reviews[0].Text}
	var wg sync.WaitGroup
	admitted := make([]int, 1+serveQueueDepth)
	for i := range admitted {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _ := serveDo(d, "POST", "/v1/localize", body)
			admitted[i] = status
		}(i)
		if i == 0 {
			if err := servePoll(func() bool { return met.Gauge("serve_inflight").Value() == 1 }); err != nil {
				return fmt.Errorf("serve gate: blocked request never took its slot")
			}
		}
	}
	if err := servePoll(func() bool {
		return met.Gauge("serve_queue_depth").Value() == serveQueueDepth
	}); err != nil {
		return fmt.Errorf("serve gate: waiting line never filled")
	}

	sheds := 0
	retryAfter := 1.0
	for i := 0; i < serveShedProbes; i++ {
		status, headers, _ := serveDoHeaders(d, "POST", "/v1/localize", body)
		if status == http.StatusTooManyRequests {
			sheds++
		}
		if headers.Get("Retry-After") != "1" {
			retryAfter = 0
		}
	}
	close(gate)
	wg.Wait()
	completed := 0
	for _, status := range admitted {
		if status == http.StatusOK {
			completed++
		}
	}

	m["shed_exact"] = float64(sheds)
	m["shed_retry_after_pinned"] = retryAfter
	m["admitted_completed"] = float64(completed)
	m["shed_total_counter"] = float64(met.Counter("serve_shed_total").Value())
	return nil
}

// serveGateFailures: the failure taxonomy maps to its documented statuses —
// corrupt snapshot → 503 then exact quarantine rejections, injected panic →
// contained 500, slow work → 504 — and the daemon outlives all of it.
func serveGateFailures(data *synth.AppData, img []byte, m map[string]float64) error {
	met := obs.NewRegistry()
	inj := faultinject.New()
	d := serve.NewDaemon(serve.Config{Metrics: met, Injector: inj, RequestTimeout: 200 * time.Millisecond})
	corrupt := append([]byte(nil), img...)
	corrupt[len(corrupt)-1] ^= 0xFF
	d.Registry().RegisterBytes("corrupt.app", "v1", corrupt)
	d.Registry().RegisterBytes(data.Info.Package, "v1", img)
	defer d.Close()

	badReq := serve.LocalizeRequest{App: "corrupt.app", Review: "it crashes"}
	status, _ := serveDo(d, "POST", "/v1/localize", badReq)
	loadFailed := 0.0
	if status == http.StatusServiceUnavailable {
		loadFailed = 1
	}
	quarantined := 0
	for i := 0; i < 2; i++ {
		if status, _ := serveDo(d, "POST", "/v1/localize", badReq); status == http.StatusServiceUnavailable {
			quarantined++
		}
	}

	inj.Arm(faultinject.PointRequest, faultinject.Fault{Err: faultinject.ErrPanic, Count: 1})
	goodReq := serve.LocalizeRequest{App: data.Info.Package, Review: data.Reviews[0].Text}
	status, _ = serveDo(d, "POST", "/v1/localize", goodReq)
	panicContained := 0.0
	if status == http.StatusInternalServerError && met.Counter("serve_panics_total").Value() == 1 {
		if status, _ := serveDo(d, "POST", "/v1/localize", goodReq); status == http.StatusOK {
			panicContained = 1
		}
	}

	inj.Arm(faultinject.PointRequest, faultinject.Fault{Delay: 10 * time.Second, Count: 1})
	status, _ = serveDo(d, "POST", "/v1/localize", goodReq)
	deadline504 := 0.0
	if status == http.StatusGatewayTimeout {
		deadline504 = 1
	}

	status, _ = serveDo(d, "POST", "/v1/localize", serve.LocalizeRequest{App: "no.such.app", Review: "x"})
	unknown404 := 0.0
	if status == http.StatusNotFound {
		unknown404 = 1
	}

	typed := 0.0
	if _, err := snapfile.Open(corrupt); err != nil {
		typed = 1 // the corrupt image really is container-level corrupt
	}

	m["load_failure_503"] = loadFailed
	m["quarantine_rejects_exact"] = float64(quarantined)
	m["quarantine_counter"] = float64(met.Counter("serve_quarantined_total").Value())
	m["panic_contained"] = panicContained
	m["deadline_504"] = deadline504
	m["unknown_app_404"] = unknown404
	m["corrupt_image_typed"] = typed
	return nil
}

// serveGatePerformance: conservative throughput floor and p99 ceiling,
// recorded as 0/1 pins so the gate is immune to machine noise while still
// tripping on order-of-magnitude regressions.
func serveGatePerformance(data *synth.AppData, img []byte, m map[string]float64) error {
	d := serve.NewDaemon(serve.Config{Metrics: obs.NewRegistry()})
	d.Registry().RegisterBytes(data.Info.Package, "v1", img)
	defer d.Close()

	// Warm the snapshot so the measurements exclude the one-time load.
	warm := serve.LocalizeRequest{App: data.Info.Package, Review: data.Reviews[0].Text}
	if status, body := serveDo(d, "POST", "/v1/localize", warm); status != http.StatusOK {
		return fmt.Errorf("serve gate: warmup = %d: %s", status, body)
	}

	n := len(data.Reviews)
	batch := make([]serve.BatchReview, n)
	for i := 0; i < n; i++ {
		batch[i] = serve.BatchReview{Review: data.Reviews[i].Text, PublishedAt: data.Reviews[i].PublishedAt.Format(time.RFC3339)}
	}
	start := time.Now()
	status, _ := serveDo(d, "POST", "/v1/localize", serve.LocalizeRequest{App: data.Info.Package, Reviews: batch})
	elapsed := time.Since(start)
	throughputOK := 0.0
	if status == http.StatusOK && float64(n)/elapsed.Seconds() >= serveThroughputFloor {
		throughputOK = 1
	}

	lat := make([]time.Duration, 0, serveP99Samples)
	for i := 0; i < serveP99Samples; i++ {
		rv := data.Reviews[i%len(data.Reviews)]
		req := serve.LocalizeRequest{App: data.Info.Package, Review: rv.Text, PublishedAt: rv.PublishedAt.Format(time.RFC3339)}
		t0 := time.Now()
		if status, _ := serveDo(d, "POST", "/v1/localize", req); status != http.StatusOK {
			return fmt.Errorf("serve gate: p99 sample %d = %d", i, status)
		}
		lat = append(lat, time.Since(t0))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	p99OK := 0.0
	if p99 <= serveP99Ceiling {
		p99OK = 1
	}

	m["throughput_floor_ok"] = throughputOK
	m["p99_ceiling_ok"] = p99OK
	m["perf_samples"] = float64(serveP99Samples)
	return nil
}

// serveDo runs one request through the daemon handler.
func serveDo(d *serve.Daemon, method, path string, payload any) (int, []byte) {
	status, _, body := serveDoHeaders(d, method, path, payload)
	return status, body
}

func serveDoHeaders(d *serve.Daemon, method, path string, payload any) (int, http.Header, []byte) {
	b, _ := json.Marshal(payload)
	req := httptest.NewRequest(method, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	d.Handler().ServeHTTP(w, req)
	return w.Code, w.Header(), w.Body.Bytes()
}

// servePoll waits for a daemon-internal condition with a hard deadline.
func servePoll(cond func() bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for {
		if cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}
