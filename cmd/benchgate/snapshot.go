package main

import (
	"fmt"
	"reflect"

	"reviewsolver/internal/core"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// snapshotSnapshot builds the BENCH_SNAPSHOT.json gate: structural facts of
// the compiled .snap image for the seeded app (file size, section count,
// matrix shapes) plus invariants pinned at their only acceptable value —
// compile determinism, save→load→save identity, and load-vs-build
// localization equivalence. A format change that alters the image shows up
// as a size/section drift; a semantic regression shows up as a non-zero
// mismatch count.
func snapshotSnapshot(seed int64) (snapshotFile, error) {
	data := synth.GenerateSample(seed)
	app := data.App

	sn := core.NewSnapshot()
	img, err := core.EncodeSnapshot(sn, app)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("encode snapshot: %w", err)
	}
	// Compile determinism: an independently built snapshot of the same IR
	// must produce the same bytes (the in-process form of the CI cmp step).
	img2, err := core.EncodeSnapshot(core.NewSnapshot(), synth.GenerateSample(seed).App)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("second encode: %w", err)
	}
	deterministic := 0.0
	if string(img) == string(img2) {
		deterministic = 1
	}

	r, err := snapfile.Open(img)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("open image: %w", err)
	}

	loaded, lapp, err := core.LoadSnapshotBytes(img)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("load snapshot: %w", err)
	}
	reImg, err := core.EncodeSnapshot(loaded, lapp)
	if err != nil {
		return snapshotFile{}, fmt.Errorf("re-encode loaded snapshot: %w", err)
	}
	roundtrip := 0.0
	if string(reImg) == string(img) {
		roundtrip = 1
	}

	methodRows := 0
	for _, release := range app.Releases {
		methodRows += sn.StaticFor(release).MethodRows()
	}

	// Load-vs-build equivalence over a fixed review sample; pinned at zero
	// in the baseline so any divergence fails the gate.
	built := core.NewWithSnapshot(sn)
	fromFile := core.NewWithSnapshot(loaded)
	reviews := data.Reviews
	if len(reviews) > 10 {
		reviews = reviews[:10]
	}
	mismatches := 0
	for _, rv := range reviews {
		want := built.LocalizeReview(app, rv.Text, rv.PublishedAt)
		got := fromFile.LocalizeReview(lapp, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
			mismatches++
		}
	}

	return snapshotFile{
		Table: 0,
		ID:    "snapshot",
		Title: "Snapshot format structural and equivalence gate",
		Seed:  seed,
		Metrics: map[string]float64{
			"image|file_bytes":             float64(len(img)),
			"image|sections":               float64(r.SectionCount()),
			"image|releases":               float64(len(app.Releases)),
			"shape|catalog_entries":        float64(sn.CatalogSize()),
			"shape|method_rows":            float64(methodRows),
			"pin|deterministic":            deterministic,
			"pin|roundtrip_identical":      roundtrip,
			"pin|load_vs_build_mismatches": float64(mismatches),
		},
	}, nil
}
