// Command experiments regenerates the paper's evaluation tables (1–16)
// over the synthetic evaluation universe.
//
// Usage:
//
//	experiments                  # print every table
//	experiments -table 8         # print one table
//	experiments -markdown        # emit EXPERIMENTS-style markdown
//	experiments -seed 7          # change the generator seed
package main

import (
	"flag"
	"fmt"
	"os"

	"reviewsolver/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table     = flag.Int("table", 0, "table number to regenerate (1-16); 0 = all")
		markdown  = flag.Bool("markdown", false, "emit markdown instead of aligned text")
		seed      = flag.Int64("seed", 1, "generator seed")
		ablations = flag.Bool("ablations", false, "run the design-choice ablation study instead")
	)
	flag.Parse()

	r := experiments.NewRunner(*seed)
	var tables []*experiments.Table
	switch {
	case *ablations:
		tables = append(tables, r.Ablations())
	case *table == 0:
		tables = r.AllTables()
	default:
		t, err := r.TableByNumber(*table)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		if *markdown {
			fmt.Print(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}
	return nil
}
