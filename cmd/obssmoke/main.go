// Command obssmoke is the CI smoke test for the telemetry layer. It drains
// the seeded sample corpus through an observed, traced pool and checks the
// whole observability contract end to end:
//
//   - every explain trace validates against the trace schema;
//   - the explain traces are byte-deterministic: a second run with a
//     different worker count must reproduce the identical JSON (modulo the
//     scheduling-dependent pool occupancy block, which is stripped first);
//   - stage spans ran and the span log emitted events;
//   - the registry is coherent (reviews counted, prescreen counters moved,
//     pool gauges drained back to zero);
//   - the debug server serves /debug/vars (expvar), /metrics, and /healthz.
//
// It exits non-zero with a diagnostic on the first violated property.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := int64(1)
	data := synth.GenerateSample(seed)
	reviews := make([]core.ReviewInput, len(data.Reviews))
	for i, rv := range data.Reviews {
		reviews[i] = core.ReviewInput{Text: rv.Text, PublishedAt: rv.PublishedAt}
	}

	// Pass 1: tracing on, spans logged, 4 workers.
	var spanLog bytes.Buffer
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, slog.New(slog.NewTextHandler(&spanLog, nil)))
	sn := core.NewSnapshot()
	pool := core.NewPoolWithSnapshot(4, sn).WithObserver(rec)
	results, traces := pool.LocalizeTraced(data.App, reviews)

	if len(results) != len(reviews) || len(traces) != len(reviews) {
		return fmt.Errorf("got %d results / %d traces for %d reviews",
			len(results), len(traces), len(reviews))
	}

	// Every trace must encode and validate against the schema.
	encoded := make([][]byte, len(traces))
	for i, tr := range traces {
		jsonBytes, err := tr.JSON()
		if err != nil {
			return fmt.Errorf("trace %d: encode: %w", i, err)
		}
		if err := obs.ValidateTraceJSON(jsonBytes); err != nil {
			return fmt.Errorf("trace %d: %w", i, err)
		}
		encoded[i] = jsonBytes
	}

	// Pass 2: different worker count, no span log. Stripped of the pool
	// occupancy block, every trace must be byte-identical to pass 1.
	pool2 := core.NewPoolWithSnapshot(2, sn).WithObserver(obs.NewRecorder(obs.NewRegistry(), nil))
	_, traces2 := pool2.LocalizeTraced(data.App, reviews)
	for i := range traces {
		a, err := stripPool(encoded[i])
		if err != nil {
			return err
		}
		jsonBytes, err := traces2[i].JSON()
		if err != nil {
			return fmt.Errorf("trace %d (pass 2): encode: %w", i, err)
		}
		b, err := stripPool(jsonBytes)
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("trace %d is not deterministic across worker counts (4 vs 2 workers)", i)
		}
	}

	// Registry coherence.
	snap := reg.Snapshot()
	checks := []struct {
		key  string
		want float64
	}{
		{"reviews_total", float64(len(reviews))},
		{"pool_jobs_total", float64(len(reviews))},
		{"pool_queue_depth", 0},
		{"pool_workers_busy", 0},
	}
	for _, c := range checks {
		if got := snap[c.key]; got != c.want {
			return fmt.Errorf("registry: %s = %g, want %g", c.key, got, c.want)
		}
	}
	for _, key := range []string{
		"stage_review_ns|count", "stage_localize_ns|count",
		"prescreen_pruned_total", "prescreen_evaluated_total",
		"match_similarity|count",
		// Front-end engine: the sentence cache must be consulted (and hit —
		// the seeded corpus repeats sentences) and the drained pool must have
		// published the interner and cache residency gauges.
		"analysis_cache_hits_total", "analysis_cache_misses_total",
		"interner_size", "analysis_cache_size",
	} {
		if snap[key] <= 0 {
			return fmt.Errorf("registry: %s = %g, want > 0", key, snap[key])
		}
	}
	if spanLog.Len() == 0 {
		return fmt.Errorf("span log is empty with a logger installed")
	}

	// Debug server: expvar, text metrics, health.
	ds, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		return fmt.Errorf("start debug server: %w", err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	body, err := get(base + "/debug/vars")
	if err != nil {
		return err
	}
	var vars struct {
		ReviewSolver map[string]float64 `json:"reviewsolver"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/vars: not valid JSON: %w", err)
	}
	if got := vars.ReviewSolver["reviews_total"]; got != float64(len(reviews)) {
		return fmt.Errorf("/debug/vars: reviewsolver.reviews_total = %g, want %d", got, len(reviews))
	}
	body, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	if !bytes.Contains(body, []byte("counter reviews_total")) {
		return fmt.Errorf("/metrics exposition is missing the reviews_total counter")
	}
	if _, err := get(base + "/healthz"); err != nil {
		return err
	}

	fmt.Printf("obssmoke: %d reviews, %d traces validated, %d metrics, debug endpoints ok\n",
		len(reviews), len(traces), len(snap))
	return nil
}

// stripPool removes the scheduling-dependent "pool" block from an encoded
// trace so the rest can be compared byte-for-byte.
func stripPool(data []byte) ([]byte, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("strip pool block: %w", err)
	}
	delete(m, "pool")
	return json.Marshal(m)
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("GET %s: read: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return body, nil
}
