// Command reviewd is the ReviewSolver serving daemon: a long-running HTTP
// process that keeps many apps' compiled .snap snapshots resident (up to a
// byte budget, LRU-evicted, lazily loaded on first request) and localizes
// user reviews against them.
//
// Endpoints:
//
//	POST /v1/localize  {"app": "...", "review": "..."}            one review
//	                   {"app": "...", "reviews": [{...}, ...]}    a batch
//	POST /v1/classify  {"review": "..."}                          is it a function error?
//	GET  /v1/apps      registry listing with per-app state
//	POST /v1/apps      {"app","version","path"} register/hot-swap a snapshot
//	GET  /v1/trace/ID  sampled explain trace of a past request (-trace-every)
//	GET  /v1/events    registry lifecycle event journal (-journal)
//	GET  /v1/fleetstat per-app SLO / error-budget digest (-slo)
//	GET  /metrics      plain-text metric exposition (per-app labeled + aggregate)
//	GET  /healthz      liveness
//
// Snapshots are registered at boot with repeated -snapshot flags
// ("app[@version]=path") or at runtime through POST /v1/apps; re-registering
// an app@version hot-swaps it without dropping in-flight requests. A
// snapshot that fails to load (corrupt file, incompatible build) is
// quarantined with exponential re-probe backoff instead of poisoning the
// daemon. Overload sheds with 429 + Retry-After; slow work is cut at the
// per-request deadline with 504; SIGINT/SIGTERM drains gracefully.
//
// Example:
//
//	snapshotc -app com.fsck.k9 -o k9.snap
//	reviewd -addr :8645 -snapshot com.fsck.k9=k9.snap
//	curl -d '{"app":"com.fsck.k9","review":"cannot fetch mail"}' localhost:8645/v1/localize
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reviewd:", err)
		os.Exit(1)
	}
}

// snapshotFlags collects repeated -snapshot app[@version]=path registrations.
type snapshotFlags []struct{ app, version, path string }

func (s *snapshotFlags) String() string { return fmt.Sprintf("%d snapshots", len(*s)) }

func (s *snapshotFlags) Set(v string) error {
	key, path, ok := strings.Cut(v, "=")
	if !ok || key == "" || path == "" {
		return fmt.Errorf("want app[@version]=path, got %q", v)
	}
	app, version, hasVer := strings.Cut(key, "@")
	if !hasVer {
		version = "v1"
	}
	if app == "" || version == "" {
		return fmt.Errorf("want app[@version]=path, got %q", v)
	}
	*s = append(*s, struct{ app, version, path string }{app, version, path})
	return nil
}

func run() error {
	var snaps snapshotFlags
	var (
		addr        = flag.String("addr", "127.0.0.1:8645", "listen address (\":0\" picks a free port)")
		maxBytes    = flag.Int64("max-bytes", 0, "resident snapshot byte budget; 0 = unlimited, LRU evicts past it")
		queueDepth  = flag.Int("queue-depth", 64, "per-app waiting line before arrivals shed with 429")
		maxConc     = flag.Int("max-concurrent", 0, "per-app execution slots; 0 = all CPUs")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request deadline (504 past it); negative disables")
		drain       = flag.Duration("drain", 5*time.Second, "graceful shutdown drain budget")
		poolWorkers = flag.Int("pool-workers", 0, "batch pool workers per snapshot; 0 = all CPUs")
		seed        = flag.Int64("seed", 1, "training seed for the function-error classifier")
		noClassify  = flag.Bool("no-classifier", false, "skip classifier training: every review counts as a function error")
		quiet       = flag.Bool("q", false, "suppress startup logging")

		traceEvery = flag.Int("trace-every", 0, "retain every Nth request's explain trace for /v1/trace/<id>; 0 disables tracing")
		journalCap = flag.Int("journal", 0, "registry lifecycle event journal capacity for /v1/events; 0 disables it")
		sloAvail   = flag.Float64("slo", 0, "availability objective (e.g. 0.999) enabling /v1/fleetstat SLO tracking; 0 disables it")
		sloLatency = flag.Duration("slo-latency", 500*time.Millisecond, "per-request latency objective for the SLO fast-ratio")
		fleetstat  = flag.String("fleetstat", "", "run the deterministic fleet-observability scenario, write its SLO digest JSON to this file, and exit")
	)
	flag.Var(&snaps, "snapshot", "register app[@version]=path at boot (repeatable)")
	flag.Parse()

	if *fleetstat != "" {
		return writeFleetstat(*fleetstat, *seed, *quiet)
	}

	met := obs.NewRegistry()
	cfg := serve.Config{
		QueueDepth:     *queueDepth,
		MaxConcurrent:  *maxConc,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		MaxBytes:       *maxBytes,
		PoolWorkers:    *poolWorkers,
		Metrics:        met,

		TraceSampleEvery: *traceEvery,
		TraceSeed:        *seed,
		JournalCapacity:  *journalCap,
	}
	if *sloAvail > 0 {
		cfg.SLO = &obs.SLOConfig{
			Availability:       *sloAvail,
			LatencyObjectiveNs: sloLatency.Nanoseconds(),
		}
	}
	if !*noClassify {
		vec, clf := textclass.TrainOn(synth.TrainingCorpus(*seed),
			func() textclass.Classifier { return textclass.NewBoostedTrees() })
		cfg.LoadOptions = []core.Option{core.WithClassifier(vec, clf)}
		cfg.Classify = func(text string) bool { return clf.Predict(vec.Transform(text)) }
	}

	d := serve.NewDaemon(cfg)
	for _, s := range snaps {
		d.Registry().Register(s.app, s.version, s.path)
	}
	if err := d.Start(*addr); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "reviewd listening on http://%s (%d snapshots registered)\n",
			d.Addr(), len(snaps))
		for _, s := range snaps {
			fmt.Fprintf(os.Stderr, "  %s@%s ← %s\n", s.app, s.version, s.path)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if !*quiet {
		fmt.Fprintln(os.Stderr, "reviewd: draining...")
	}
	return d.Close()
}

// writeFleetstat runs the deterministic fleet-observability scenario and
// writes the resulting SLO digest artifact. For a fixed seed the bytes are
// identical across runs and machines — CI runs it twice and diffs.
func writeFleetstat(path string, seed int64, quiet bool) error {
	res, err := serve.RunFleetSim(seed, 2)
	if err != nil {
		return err
	}
	if err := obs.ValidateFleetDigestJSON(res.DigestJSON); err != nil {
		return fmt.Errorf("fleetstat self-check: %w", err)
	}
	if err := os.WriteFile(path, res.DigestJSON, 0o644); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "reviewd: fleet digest for %d apps (%d journal events, %d traces) → %s\n",
			len(res.Digest.Apps), len(res.Events), res.TracesStored, path)
	}
	return nil
}
