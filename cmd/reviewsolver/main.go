// Command reviewsolver localizes a function-error review against an app.
//
// The app is either one of the built-in generated evaluation apps
// (-app <package>, see -list) or an app IR loaded from JSON (-appfile).
//
// Usage:
//
//	reviewsolver -list
//	reviewsolver -app com.fsck.k9 -review "cannot fetch mail since the update"
//	reviewsolver -appfile app.json -review "the reply button doesn't show"
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/report"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reviewsolver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appPkg   = flag.String("app", "", "package id of a built-in generated app")
		appFile  = flag.String("appfile", "", "path to an app IR JSON file")
		review   = flag.String("review", "", "review text to localize")
		list     = flag.Bool("list", false, "list the built-in generated apps")
		seed     = flag.Int64("seed", 1, "generator seed for built-in apps")
		when     = flag.String("published", "", "review publication time (RFC 3339); default: after the latest release")
		triage   = flag.Bool("triage", false, "triage the app's whole generated review corpus into a markdown report")
		parallel = flag.Int("parallel", 0, "similarity-matching fan-out per review: 0 = all CPUs, negative = sequential")
	)
	flag.Parse()

	if *list {
		for _, info := range synth.Table6Specs() {
			fmt.Printf("%-40s %s\n", info.Package, info.Name)
		}
		return nil
	}
	if *triage {
		return runTriage(*appPkg, *seed, *parallel)
	}
	if *review == "" {
		return errors.New("missing -review text (or use -list / -triage)")
	}

	app, err := loadApp(*appPkg, *appFile, *seed)
	if err != nil {
		return err
	}

	publishedAt := app.Latest().ReleasedAt.AddDate(0, 0, 1)
	if *when != "" {
		publishedAt, err = time.Parse(time.RFC3339, *when)
		if err != nil {
			return fmt.Errorf("parse -published: %w", err)
		}
	}

	vec, clf := textclass.TrainOn(synth.TrainingCorpus(*seed),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })
	sn := core.NewSnapshot(core.WithClassifier(vec, clf))
	sn.PrecomputeApp(app)
	solver := core.NewWithSnapshot(sn, core.WithParallelism(*parallel))

	res := solver.LocalizeReview(app, *review, publishedAt)
	printResult(res, *review)
	return nil
}

// runTriage localizes a built-in app's entire generated review corpus and
// prints the markdown triage report. The corpus is drained through a
// snapshot-backed solver so static extraction happens once up front.
func runTriage(pkg string, seed int64, parallel int) error {
	if pkg == "" {
		return errors.New("-triage requires -app <package>")
	}
	var data *synth.AppData
	for i, info := range synth.Table6Specs() {
		if info.Package == pkg {
			data = synth.GenerateTable6(seed)[i]
		}
	}
	if data == nil {
		return fmt.Errorf("unknown built-in app %q (use -list)", pkg)
	}
	vec, clf := textclass.TrainOn(synth.TrainingCorpus(seed),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })
	sn := core.NewSnapshot(core.WithClassifier(vec, clf))
	sn.PrecomputeApp(data.App)
	solver := core.NewWithSnapshot(sn, core.WithParallelism(parallel))
	b := report.NewBuilder(solver, data.App)
	for _, rv := range data.Reviews {
		b.Add(rv.Text, rv.PublishedAt)
	}
	fmt.Print(b.Build().Markdown())
	return nil
}

func loadApp(pkg, file string, seed int64) (*apk.App, error) {
	switch {
	case file != "":
		return apk.LoadJSON(file)
	case pkg != "":
		for i, info := range synth.Table6Specs() {
			if info.Package == pkg {
				data := synth.GenerateTable6(seed)[i]
				return data.App, nil
			}
		}
		return nil, fmt.Errorf("unknown built-in app %q (use -list)", pkg)
	default:
		return nil, errors.New("one of -app or -appfile is required")
	}
}

func printResult(res *core.Result, review string) {
	fmt.Printf("review: %s\n", review)
	if !res.IsError {
		fmt.Println("classifier: not a function-error review")
		return
	}
	fmt.Println("classifier: function-error review")
	if res.Release != nil {
		fmt.Printf("matched APK version: %s (released %s)\n",
			res.Release.Version, res.Release.ReleasedAt.Format("2006-01-02"))
	}
	if res.Analysis != nil {
		for _, vp := range res.Analysis.VerbPhrases {
			fmt.Printf("verb phrase: %s\n", vp.String())
		}
		for _, q := range res.Analysis.Quoted {
			fmt.Printf("quoted message: %q\n", q)
		}
	}
	if !res.Localized() {
		fmt.Println("no code mapping found")
		return
	}
	fmt.Printf("\nrecommended classes (top %d):\n", len(res.Ranked))
	for i, rc := range res.Ranked {
		fmt.Printf("%2d. %-55s importance=%d deps=%d via %s\n",
			i+1, rc.Class, rc.Importance, rc.Dependencies, strings.Join(rc.Contexts, ", "))
		if len(rc.Methods) > 0 {
			fmt.Printf("    methods: %s\n", strings.Join(rc.Methods, ", "))
		}
	}
}
