// Command reviewsolver localizes a function-error review against an app.
//
// The app is either one of the built-in generated evaluation apps
// (-app <package>, see -list) or an app IR loaded from JSON (-appfile).
//
// Usage:
//
//	reviewsolver -list
//	reviewsolver -app com.fsck.k9 -review "cannot fetch mail since the update"
//	reviewsolver -appfile app.json -review "the reply button doesn't show"
//	reviewsolver -snapshot k9.snap -review "cannot fetch mail since the update"
//	reviewsolver -app com.fsck.k9 -review "..." -explain trace.json
//	reviewsolver -app com.fsck.k9 -triage -debug-addr localhost:6060 -trace
//
// With -snapshot the app IR and all precomputed matching state come from a
// .snap file compiled by snapshotc — no static extraction or catalog
// embedding at startup — and localization output is byte-identical to the
// in-memory build.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/report"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reviewsolver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appPkg    = flag.String("app", "", "package id of a built-in generated app")
		appFile   = flag.String("appfile", "", "path to an app IR JSON file")
		snapPath  = flag.String("snapshot", "", "serve from a .snap snapshot compiled by snapshotc (replaces -app/-appfile)")
		snapBase  = flag.String("snapshot-base", "", "base .snap image when -snapshot is a delta compiled with snapshotc -base")
		review    = flag.String("review", "", "review text to localize")
		list      = flag.Bool("list", false, "list the built-in generated apps")
		seed      = flag.Int64("seed", 1, "generator seed for built-in apps")
		when      = flag.String("published", "", "review publication time (RFC 3339); default: after the latest release")
		triage    = flag.Bool("triage", false, "triage the app's whole generated review corpus into a markdown report")
		parallel  = flag.Int("parallel", 0, "similarity-matching fan-out per review: 0 = all CPUs, negative = sequential")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /metrics on this address while running")
		explain   = flag.String("explain", "", "write the explain-trace JSON for the localized review to this file (\"-\" for stdout)")
		trace     = flag.Bool("trace", false, "log pipeline stage spans to stderr as structured events")
	)
	flag.Parse()

	if *list {
		for _, info := range synth.Table6Specs() {
			fmt.Printf("%-40s %s\n", info.Package, info.Name)
		}
		return nil
	}

	reg := obs.NewRegistry()
	var logger *slog.Logger
	if *trace {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	rec := obs.NewRecorder(reg, logger)
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return fmt.Errorf("start debug server: %w", err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s (/debug/vars, /debug/pprof, /metrics)\n", ds.Addr())
	}

	if *triage {
		return runTriage(*appPkg, *seed, *parallel, rec)
	}
	if *review == "" {
		return errors.New("missing -review text (or use -list / -triage)")
	}

	vec, clf := textclass.TrainOn(synth.TrainingCorpus(*seed),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })

	var (
		app *apk.App
		sn  *core.Snapshot
		err error
	)
	if *snapPath != "" {
		if *snapBase != "" {
			sn, app, err = core.LoadSnapshotDelta(*snapPath, *snapBase, core.WithClassifier(vec, clf))
		} else {
			sn, app, err = core.LoadSnapshot(*snapPath, core.WithClassifier(vec, clf))
		}
		if err != nil {
			return fmt.Errorf("load snapshot: %w", err)
		}
	} else {
		app, err = loadApp(*appPkg, *appFile, *seed)
		if err != nil {
			return err
		}
		sn = core.NewSnapshot(core.WithClassifier(vec, clf))
		sn.PrecomputeApp(app)
	}

	publishedAt := app.Latest().ReleasedAt.AddDate(0, 0, 1)
	if *when != "" {
		publishedAt, err = time.Parse(time.RFC3339, *when)
		if err != nil {
			return fmt.Errorf("parse -published: %w", err)
		}
	}

	solver := core.NewWithSnapshot(sn, core.WithParallelism(*parallel), core.WithObserver(rec))

	if *explain != "" {
		res, tr := solver.LocalizeReviewTraced(app, *review, publishedAt)
		printResult(res, *review)
		data, err := tr.JSON()
		if err != nil {
			return fmt.Errorf("encode explain trace: %w", err)
		}
		if *explain == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*explain, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "explain trace written to %s\n", *explain)
		return nil
	}
	res := solver.LocalizeReview(app, *review, publishedAt)
	printResult(res, *review)
	return nil
}

// runTriage localizes a built-in app's entire generated review corpus and
// prints the markdown triage report. The corpus is drained through a
// snapshot-backed solver so static extraction happens once up front; the
// stderr summary reports per-review latency percentiles read from the
// telemetry histogram, not just total wall-clock.
func runTriage(pkg string, seed int64, parallel int, rec *obs.Recorder) error {
	if pkg == "" {
		return errors.New("-triage requires -app <package>")
	}
	var data *synth.AppData
	for i, info := range synth.Table6Specs() {
		if info.Package == pkg {
			data = synth.GenerateTable6(seed)[i]
		}
	}
	if data == nil {
		return fmt.Errorf("unknown built-in app %q (use -list)", pkg)
	}
	vec, clf := textclass.TrainOn(synth.TrainingCorpus(seed),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })
	sn := core.NewSnapshot(core.WithClassifier(vec, clf))
	sn.PrecomputeApp(data.App)
	solver := core.NewWithSnapshot(sn, core.WithParallelism(parallel), core.WithObserver(rec))
	b := report.NewBuilder(solver, data.App)
	started := time.Now()
	for _, rv := range data.Reviews {
		b.Add(rv.Text, rv.PublishedAt)
	}
	elapsed := time.Since(started)
	fmt.Print(b.Build().Markdown())

	h := rec.Histogram(core.ReviewLatencyMetric, obs.LatencyBucketsNs)
	fmt.Fprintf(os.Stderr, "triage: %d reviews in %s — per-review p50=%s p95=%s p99=%s\n",
		len(data.Reviews), elapsed.Round(time.Millisecond),
		nsDuration(h.Quantile(0.50)), nsDuration(h.Quantile(0.95)), nsDuration(h.Quantile(0.99)))
	return nil
}

// nsDuration renders a nanosecond histogram quantile as a duration.
func nsDuration(ns float64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}

func loadApp(pkg, file string, seed int64) (*apk.App, error) {
	switch {
	case file != "":
		return apk.LoadJSON(file)
	case pkg != "":
		for i, info := range synth.Table6Specs() {
			if info.Package == pkg {
				data := synth.GenerateTable6(seed)[i]
				return data.App, nil
			}
		}
		return nil, fmt.Errorf("unknown built-in app %q (use -list)", pkg)
	default:
		return nil, errors.New("one of -app or -appfile is required")
	}
}

func printResult(res *core.Result, review string) {
	fmt.Printf("review: %s\n", review)
	if !res.IsError {
		fmt.Println("classifier: not a function-error review")
		return
	}
	fmt.Println("classifier: function-error review")
	if res.Release != nil {
		fmt.Printf("matched APK version: %s (released %s)\n",
			res.Release.Version, res.Release.ReleasedAt.Format("2006-01-02"))
	}
	if res.Analysis != nil {
		for _, vp := range res.Analysis.VerbPhrases {
			fmt.Printf("verb phrase: %s\n", vp.String())
		}
		for _, q := range res.Analysis.Quoted {
			fmt.Printf("quoted message: %q\n", q)
		}
	}
	if !res.Localized() {
		fmt.Println("no code mapping found")
		return
	}
	fmt.Printf("\nrecommended classes (top %d):\n", len(res.Ranked))
	for i, rc := range res.Ranked {
		fmt.Printf("%2d. %-55s importance=%d deps=%d via %s\n",
			i+1, rc.Class, rc.Importance, rc.Dependencies, strings.Join(rc.Contexts, ", "))
		if len(rc.Methods) > 0 {
			fmt.Printf("    methods: %s\n", strings.Join(rc.Methods, ", "))
		}
	}
}
