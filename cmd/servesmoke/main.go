// Command servesmoke is the CI smoke test for the serving layer: it boots a
// real reviewd daemon (in-process, on a free port), registers two compiled
// .snap apps over HTTP, drives concurrent localization traffic — including
// one injected fault — and verifies:
//
//   - every served single-review response is byte-for-byte identical to the
//     output of a direct in-process solver over the same snapshot (the
//     "serving adds nothing, loses nothing" property);
//   - batch responses preserve request order and complete under concurrency;
//   - exactly one injected panic is contained as a 500 while the daemon
//     keeps serving;
//   - the /metrics exposition carries the serving counters with the exact
//     expected totals, including the per-app labeled request counters (the
//     contained panic shows up as the app's one code="500" request);
//   - every response carries a deterministic X-Trace-Id and the sampled
//     explain trace is served back by /v1/trace/<id>;
//   - /v1/events reports the registry lifecycle journal (2 registers, 2
//     loads) and /v1/fleetstat's SLO digest validates with the exact
//     per-app request and error counts;
//   - graceful shutdown drains cleanly.
//
// Any deviation exits non-zero. Everything is offline and deterministic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve"
	"reviewsolver/internal/serve/faultinject"
	"reviewsolver/internal/synth"
)

const seed = 1

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("SERVE SMOKE PASS")
}

func run() error {
	// Compile two of the built-in evaluation apps to .snap files.
	table6 := synth.GenerateTable6(seed)
	appA, appB := table6[4], table6[0] // the K-9 sample fixture + one more
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	paths := map[string]string{}
	for _, data := range []*synth.AppData{appA, appB} {
		img, err := core.EncodeSnapshot(core.NewSnapshot(), data.App)
		if err != nil {
			return fmt.Errorf("encode %s: %w", data.Info.Package, err)
		}
		p := filepath.Join(dir, data.Info.Package+".snap")
		if err := os.WriteFile(p, img, 0o644); err != nil {
			return err
		}
		paths[data.Info.Package] = p
	}

	// Boot the daemon with a fault injector armed for exactly one panic.
	met := obs.NewRegistry()
	inj := faultinject.New()
	inj.Arm(faultinject.PointRequest, faultinject.Fault{
		Err: faultinject.ErrPanic, Count: 1, Key: appB.Info.Package,
	})
	d := serve.NewDaemon(serve.Config{
		Metrics:  met,
		Injector: inj,
		// The full fleet-observability layer, as an operator would run it.
		TraceSampleEvery: 1,
		TraceSeed:        seed,
		JournalCapacity:  64,
		SLO:              &obs.SLOConfig{Availability: 0.95},
	})
	if err := d.Start("127.0.0.1:0"); err != nil {
		return err
	}
	base := "http://" + d.Addr()

	// Register both apps through the HTTP surface, like an operator would
	// (A then B, so the journal's register order is pinned).
	for _, data := range []*synth.AppData{appA, appB} {
		pkg := data.Info.Package
		status, body, err := post(base+"/v1/apps", serve.RegisterRequest{App: pkg, Version: "v1", Path: paths[pkg]})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("register %s = %d: %s", pkg, status, body)
		}
	}

	// Expected bytes for each single-review request, computed by a direct
	// solver over the same snapshot images the daemon serves.
	expected := map[string]map[string][]byte{} // pkg → review → response bytes
	for _, data := range []*synth.AppData{appA, appB} {
		img, err := os.ReadFile(paths[data.Info.Package])
		if err != nil {
			return err
		}
		snap, app, err := core.LoadSnapshotBytes(img)
		if err != nil {
			return fmt.Errorf("direct load %s: %w", data.Info.Package, err)
		}
		solver := core.NewWithSnapshot(snap)
		byReview := map[string][]byte{}
		for _, rv := range data.Reviews[:smokeReviews(data)] {
			res := solver.LocalizeReview(app, rv.Text, rv.PublishedAt)
			resp := serve.LocalizeResponse{
				App:     data.Info.Package,
				Version: "v1",
				Results: []serve.LocalizeResult{serve.ResultToJSON(rv.Text, res)},
			}
			b, err := json.Marshal(resp)
			if err != nil {
				return err
			}
			byReview[rv.Text] = append(b, '\n')
		}
		expected[data.Info.Package] = byReview
	}

	// Concurrent load across both apps. The armed fault panics exactly one
	// appB request; everything else must serve 200 with exact bytes.
	type outcome struct {
		pkg, review string
		status      int
		body        []byte
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []outcome
	)
	for _, data := range []*synth.AppData{appA, appB} {
		pkg := data.Info.Package
		for _, rv := range data.Reviews[:smokeReviews(data)] {
			wg.Add(1)
			go func(review string, when time.Time) {
				defer wg.Done()
				status, body, err := post(base+"/v1/localize", serve.LocalizeRequest{
					App: pkg, Review: review, PublishedAt: when.Format(time.RFC3339),
				})
				if err != nil {
					status = -1
					body = []byte(err.Error())
				}
				mu.Lock()
				results = append(results, outcome{pkg, review, status, body})
				mu.Unlock()
			}(rv.Text, rv.PublishedAt)
		}
	}
	wg.Wait()

	var contained int
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			want := expected[r.pkg][r.review]
			if !bytes.Equal(r.body, want) {
				return fmt.Errorf("served response for %s/%q differs from the direct solver:\n got: %s\nwant: %s",
					r.pkg, r.review, r.body, want)
			}
		case http.StatusInternalServerError:
			contained++
			if r.pkg != appB.Info.Package {
				return fmt.Errorf("injected fault fired on %s, was keyed to %s", r.pkg, appB.Info.Package)
			}
		default:
			return fmt.Errorf("localize %s/%q = %d: %s", r.pkg, r.review, r.status, r.body)
		}
	}
	if contained != 1 {
		return fmt.Errorf("%d requests hit the injected panic, want exactly 1", contained)
	}

	// One failed request must not poison retries: the same review that
	// absorbed the panic serves fine now.
	for _, r := range results {
		if r.status != http.StatusInternalServerError {
			continue
		}
		status, body, err := post(base+"/v1/localize", serve.LocalizeRequest{App: r.pkg, Review: r.review})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("retry after contained panic = %d: %s", status, body)
		}
	}

	// Batch request: order preserved, all results present.
	n := smokeReviews(appA)
	batch := make([]serve.BatchReview, n)
	for i := 0; i < n; i++ {
		batch[i] = serve.BatchReview{
			Review:      appA.Reviews[i].Text,
			PublishedAt: appA.Reviews[i].PublishedAt.Format(time.RFC3339),
		}
	}
	status, body, err := post(base+"/v1/localize", serve.LocalizeRequest{App: appA.Info.Package, Reviews: batch})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("batch = %d: %s", status, body)
	}
	var batchResp serve.LocalizeResponse
	if err := json.Unmarshal(body, &batchResp); err != nil {
		return err
	}
	if len(batchResp.Results) != n {
		return fmt.Errorf("batch returned %d results, want %d", len(batchResp.Results), n)
	}
	for i, res := range batchResp.Results {
		if res.Review != batch[i].Review {
			return fmt.Errorf("batch result %d out of order: %q", i, res.Review)
		}
	}

	// Trace propagation: every response carries X-Trace-Id, and a sampled
	// request's explain trace is served back by that ID.
	rv0 := appA.Reviews[0]
	traceBody, _ := json.Marshal(serve.LocalizeRequest{
		App: appA.Info.Package, Review: rv0.Text, PublishedAt: rv0.PublishedAt.Format(time.RFC3339),
	})
	traceResp, err := http.Post(base+"/v1/localize", "application/json", bytes.NewReader(traceBody))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, traceResp.Body)
	traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		return fmt.Errorf("traced localize = %d", traceResp.StatusCode)
	}
	traceID := traceResp.Header.Get("X-Trace-Id")
	if traceID == "" {
		return fmt.Errorf("localize response carries no X-Trace-Id")
	}
	status, body, err = get(base + "/v1/trace/" + traceID)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("trace fetch %s = %d: %s", traceID, status, body)
	}
	if err := obs.ValidateTraceJSON(body); err != nil {
		return fmt.Errorf("served explain trace invalid: %w", err)
	}

	// Event journal: both apps registered (in order) and lazily loaded.
	status, body, err = get(base + "/v1/events")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("events = %d", status)
	}
	var events serve.EventsResponse
	if err := json.Unmarshal(body, &events); err != nil {
		return err
	}
	if events.Total != 4 || len(events.Events) != 4 || events.Dropped != 0 {
		return fmt.Errorf("journal = %d events (total %d, dropped %d), want exactly 4 retained", len(events.Events), events.Total, events.Dropped)
	}
	if events.Events[0].Type != obs.EventRegister || events.Events[0].App != appA.Info.Package ||
		events.Events[1].Type != obs.EventRegister || events.Events[1].App != appB.Info.Package {
		return fmt.Errorf("journal does not start with the two registers in order: %+v", events.Events[:2])
	}
	loads := 0
	for _, ev := range events.Events[2:] {
		if ev.Type != obs.EventLoad {
			return fmt.Errorf("unexpected journal event %+v, want load", ev)
		}
		loads++
	}
	if loads != 2 {
		return fmt.Errorf("journal has %d loads, want 2", loads)
	}

	// SLO digest: validates, and the window counts match the traffic —
	// including appB's one injected-panic 500 as its spent error budget.
	status, body, err = get(base + "/v1/fleetstat")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("fleetstat = %d", status)
	}
	if err := obs.ValidateFleetDigestJSON(body); err != nil {
		return fmt.Errorf("fleet digest invalid: %w", err)
	}
	var digest obs.FleetDigest
	if err := json.Unmarshal(body, &digest); err != nil {
		return err
	}
	wantSLO := map[string][2]int64{ // app → requests, errors
		appA.Info.Package: {int64(smokeReviews(appA)) + 2, 0}, // singles + batch + traced
		appB.Info.Package: {int64(smokeReviews(appB)) + 1, 1}, // singles (one panicked) + retry
	}
	if len(digest.Apps) != len(wantSLO) {
		return fmt.Errorf("fleet digest covers %d apps, want %d: %s", len(digest.Apps), len(wantSLO), body)
	}
	for _, a := range digest.Apps {
		want, ok := wantSLO[a.App]
		if !ok {
			return fmt.Errorf("fleet digest has unexpected app %q", a.App)
		}
		if a.Requests != want[0] || a.Errors != want[1] || a.BudgetSpent != a.Errors {
			return fmt.Errorf("fleet digest for %s: %d requests / %d errors (spent %d), want %d / %d",
				a.App, a.Requests, a.Errors, a.BudgetSpent, want[0], want[1])
		}
	}

	// Metrics scrape: the serving counters are present with exact totals —
	// aggregates and the per-app labeled children side by side.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	wantSingles := smokeReviews(appA) + smokeReviews(appB) + 2 // + the retry + the traced request
	wantReviews := wantSingles - 1 + n                         // panic answered no review; batch adds n
	for _, line := range []string{
		"counter serve_panics_total 1",
		fmt.Sprintf("counter serve_reviews_served_total %d", wantReviews),
		"counter serve_snapshot_loads_total 2",
		// Per-app labeled request counters, including the contained panic
		// as appB's single code="500" request.
		fmt.Sprintf(`counter serve_requests_total{app=%q,code="200",route="/v1/localize"} %d`,
			appA.Info.Package, smokeReviews(appA)+2),
		fmt.Sprintf(`counter serve_requests_total{app=%q,code="200",route="/v1/localize"} %d`,
			appB.Info.Package, smokeReviews(appB)),
		fmt.Sprintf(`counter serve_requests_total{app=%q,code="500",route="/v1/localize"} 1`, appB.Info.Package),
		// Journal events drained into labeled counters.
		fmt.Sprintf(`counter registry_events_total{app=%q,type="load"} 1`, appA.Info.Package),
		fmt.Sprintf(`counter registry_events_total{app=%q,type="register"} 1`, appB.Info.Package),
		// Registry byte-budget gauges.
		"gauge serve_registry_budget_bytes 0",
		"gauge serve_registry_quant_bytes",
	} {
		if !strings.Contains(string(metrics), line) {
			return fmt.Errorf("metrics exposition missing %q:\n%s", line, metrics)
		}
	}

	// Registry listing agrees: two live apps.
	status, body, err = get(base + "/v1/apps")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("apps = %d", status)
	}
	var apps serve.AppsResponse
	if err := json.Unmarshal(body, &apps); err != nil {
		return err
	}
	live := 0
	for _, st := range apps.Apps {
		if st.State == "live" {
			live++
		}
	}
	if live != 2 || apps.ResidentBytes <= 0 {
		return fmt.Errorf("apps listing: %d live, %d resident bytes; want 2 live and > 0 bytes", live, apps.ResidentBytes)
	}

	// Drop the client's pooled keep-alive connections (including ones the
	// transport dialed speculatively and never used — the server holds those
	// in StateNew, where http.Server.Shutdown won't reap them for their
	// first 5 seconds) so the drain below measures the daemon, not the
	// client's connection pool.
	http.DefaultClient.CloseIdleConnections()
	if err := d.Close(); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	return nil
}

// smokeReviews bounds per-app request volume so the smoke finishes fast.
func smokeReviews(data *synth.AppData) int {
	if len(data.Reviews) < 8 {
		return len(data.Reviews)
	}
	return 8
}

func post(url string, payload any) (int, []byte, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func get(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
