// Command servesmoke is the CI smoke test for the serving layer: it boots a
// real reviewd daemon (in-process, on a free port), registers two compiled
// .snap apps over HTTP, drives concurrent localization traffic — including
// one injected fault — and verifies:
//
//   - every served single-review response is byte-for-byte identical to the
//     output of a direct in-process solver over the same snapshot (the
//     "serving adds nothing, loses nothing" property);
//   - batch responses preserve request order and complete under concurrency;
//   - exactly one injected panic is contained as a 500 while the daemon
//     keeps serving;
//   - the /metrics exposition carries the serving counters with the exact
//     expected totals;
//   - graceful shutdown drains cleanly.
//
// Any deviation exits non-zero. Everything is offline and deterministic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve"
	"reviewsolver/internal/serve/faultinject"
	"reviewsolver/internal/synth"
)

const seed = 1

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("SERVE SMOKE PASS")
}

func run() error {
	// Compile two of the built-in evaluation apps to .snap files.
	table6 := synth.GenerateTable6(seed)
	appA, appB := table6[4], table6[0] // the K-9 sample fixture + one more
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	paths := map[string]string{}
	for _, data := range []*synth.AppData{appA, appB} {
		img, err := core.EncodeSnapshot(core.NewSnapshot(), data.App)
		if err != nil {
			return fmt.Errorf("encode %s: %w", data.Info.Package, err)
		}
		p := filepath.Join(dir, data.Info.Package+".snap")
		if err := os.WriteFile(p, img, 0o644); err != nil {
			return err
		}
		paths[data.Info.Package] = p
	}

	// Boot the daemon with a fault injector armed for exactly one panic.
	met := obs.NewRegistry()
	inj := faultinject.New()
	inj.Arm(faultinject.PointRequest, faultinject.Fault{
		Err: faultinject.ErrPanic, Count: 1, Key: appB.Info.Package,
	})
	d := serve.NewDaemon(serve.Config{Metrics: met, Injector: inj})
	if err := d.Start("127.0.0.1:0"); err != nil {
		return err
	}
	base := "http://" + d.Addr()

	// Register both apps through the HTTP surface, like an operator would.
	for pkg, p := range paths {
		status, body, err := post(base+"/v1/apps", serve.RegisterRequest{App: pkg, Version: "v1", Path: p})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("register %s = %d: %s", pkg, status, body)
		}
	}

	// Expected bytes for each single-review request, computed by a direct
	// solver over the same snapshot images the daemon serves.
	expected := map[string]map[string][]byte{} // pkg → review → response bytes
	for _, data := range []*synth.AppData{appA, appB} {
		img, err := os.ReadFile(paths[data.Info.Package])
		if err != nil {
			return err
		}
		snap, app, err := core.LoadSnapshotBytes(img)
		if err != nil {
			return fmt.Errorf("direct load %s: %w", data.Info.Package, err)
		}
		solver := core.NewWithSnapshot(snap)
		byReview := map[string][]byte{}
		for _, rv := range data.Reviews[:smokeReviews(data)] {
			res := solver.LocalizeReview(app, rv.Text, rv.PublishedAt)
			resp := serve.LocalizeResponse{
				App:     data.Info.Package,
				Version: "v1",
				Results: []serve.LocalizeResult{serve.ResultToJSON(rv.Text, res)},
			}
			b, err := json.Marshal(resp)
			if err != nil {
				return err
			}
			byReview[rv.Text] = append(b, '\n')
		}
		expected[data.Info.Package] = byReview
	}

	// Concurrent load across both apps. The armed fault panics exactly one
	// appB request; everything else must serve 200 with exact bytes.
	type outcome struct {
		pkg, review string
		status      int
		body        []byte
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []outcome
	)
	for _, data := range []*synth.AppData{appA, appB} {
		pkg := data.Info.Package
		for _, rv := range data.Reviews[:smokeReviews(data)] {
			wg.Add(1)
			go func(review string, when time.Time) {
				defer wg.Done()
				status, body, err := post(base+"/v1/localize", serve.LocalizeRequest{
					App: pkg, Review: review, PublishedAt: when.Format(time.RFC3339),
				})
				if err != nil {
					status = -1
					body = []byte(err.Error())
				}
				mu.Lock()
				results = append(results, outcome{pkg, review, status, body})
				mu.Unlock()
			}(rv.Text, rv.PublishedAt)
		}
	}
	wg.Wait()

	var contained int
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			want := expected[r.pkg][r.review]
			if !bytes.Equal(r.body, want) {
				return fmt.Errorf("served response for %s/%q differs from the direct solver:\n got: %s\nwant: %s",
					r.pkg, r.review, r.body, want)
			}
		case http.StatusInternalServerError:
			contained++
			if r.pkg != appB.Info.Package {
				return fmt.Errorf("injected fault fired on %s, was keyed to %s", r.pkg, appB.Info.Package)
			}
		default:
			return fmt.Errorf("localize %s/%q = %d: %s", r.pkg, r.review, r.status, r.body)
		}
	}
	if contained != 1 {
		return fmt.Errorf("%d requests hit the injected panic, want exactly 1", contained)
	}

	// One failed request must not poison retries: the same review that
	// absorbed the panic serves fine now.
	for _, r := range results {
		if r.status != http.StatusInternalServerError {
			continue
		}
		status, body, err := post(base+"/v1/localize", serve.LocalizeRequest{App: r.pkg, Review: r.review})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("retry after contained panic = %d: %s", status, body)
		}
	}

	// Batch request: order preserved, all results present.
	n := smokeReviews(appA)
	batch := make([]serve.BatchReview, n)
	for i := 0; i < n; i++ {
		batch[i] = serve.BatchReview{
			Review:      appA.Reviews[i].Text,
			PublishedAt: appA.Reviews[i].PublishedAt.Format(time.RFC3339),
		}
	}
	status, body, err := post(base+"/v1/localize", serve.LocalizeRequest{App: appA.Info.Package, Reviews: batch})
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("batch = %d: %s", status, body)
	}
	var batchResp serve.LocalizeResponse
	if err := json.Unmarshal(body, &batchResp); err != nil {
		return err
	}
	if len(batchResp.Results) != n {
		return fmt.Errorf("batch returned %d results, want %d", len(batchResp.Results), n)
	}
	for i, res := range batchResp.Results {
		if res.Review != batch[i].Review {
			return fmt.Errorf("batch result %d out of order: %q", i, res.Review)
		}
	}

	// Metrics scrape: the serving counters are present with exact totals.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	wantSingles := smokeReviews(appA) + smokeReviews(appB) + 1 // + the retry
	wantReviews := wantSingles - 1 + n                         // panic answered no review; batch adds n
	for _, line := range []string{
		"counter serve_panics_total 1",
		fmt.Sprintf("counter serve_reviews_served_total %d", wantReviews),
		"counter serve_snapshot_loads_total 2",
	} {
		if !strings.Contains(string(metrics), line) {
			return fmt.Errorf("metrics exposition missing %q:\n%s", line, metrics)
		}
	}

	// Registry listing agrees: two live apps.
	status, body, err = get(base + "/v1/apps")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("apps = %d", status)
	}
	var apps serve.AppsResponse
	if err := json.Unmarshal(body, &apps); err != nil {
		return err
	}
	live := 0
	for _, st := range apps.Apps {
		if st.State == "live" {
			live++
		}
	}
	if live != 2 || apps.ResidentBytes <= 0 {
		return fmt.Errorf("apps listing: %d live, %d resident bytes; want 2 live and > 0 bytes", live, apps.ResidentBytes)
	}

	// Drop the client's pooled keep-alive connections (including ones the
	// transport dialed speculatively and never used — the server holds those
	// in StateNew, where http.Server.Shutdown won't reap them for their
	// first 5 seconds) so the drain below measures the daemon, not the
	// client's connection pool.
	http.DefaultClient.CloseIdleConnections()
	if err := d.Close(); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	return nil
}

// smokeReviews bounds per-app request volume so the smoke finishes fast.
func smokeReviews(data *synth.AppData) int {
	if len(data.Reviews) < 8 {
		return len(data.Reviews)
	}
	return 8
}

func post(url string, payload any) (int, []byte, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func get(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
