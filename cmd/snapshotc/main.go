// Command snapshotc compiles an app IR into a serving-ready .snap snapshot:
// the §3.3 static extraction of every release, the framework-catalog phrase
// embeddings, and the flattened scan matrices, serialized into the snapfile
// container that core.LoadSnapshot reconstructs in well under a millisecond.
//
// The output is byte-deterministic: compiling the same IR twice produces
// identical files (CI compiles the seed app twice and compares with cmp).
//
// Usage:
//
//	snapshotc -app com.fsck.k9 -o k9.snap
//	snapshotc -appfile app.json -o app.snap
//	snapshotc -app com.fsck.k9 -o k9.snap -verify
//	snapshotc -app com.fsck.k9 -base old.snap -o k9.delta.snap
//
// -base switches to the release-cadence path: the app is extracted
// incrementally against each release's predecessor (core.PrecomputeDelta)
// and written as a delta image against the given base snapshot — only the
// embedding rows the base cannot supply are stored, and the result loads
// with core.LoadSnapshotDelta. Delta output is exactly as deterministic as
// the full format.
//
// -verify re-opens the written file, checks that re-encoding the loaded
// snapshot reproduces the file byte for byte, and cross-checks localization
// output of the loaded snapshot against the in-memory build over the app's
// generated review corpus (built-in apps only).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "snapshotc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appPkg  = flag.String("app", "", "package id of a built-in generated app")
		appFile = flag.String("appfile", "", "path to an app IR JSON file")
		seed    = flag.Int64("seed", 1, "generator seed for built-in apps")
		out     = flag.String("o", "", "output .snap path (required)")
		base    = flag.String("base", "", "base .snap image: extract incrementally and write a delta against it")
		verify  = flag.Bool("verify", false, "after writing, round-trip the file and cross-check localization output")
		list    = flag.Bool("list", false, "list the built-in generated apps")
		quiet   = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()

	if *list {
		for _, info := range synth.Table6Specs() {
			fmt.Printf("%-40s %s\n", info.Package, info.Name)
		}
		return nil
	}
	if *out == "" {
		return errors.New("missing -o output path")
	}

	app, data, err := loadApp(*appPkg, *appFile, *seed)
	if err != nil {
		return err
	}

	started := time.Now()
	sn := core.NewSnapshot()
	var img, baseImg []byte
	if *base != "" {
		if baseImg, err = os.ReadFile(*base); err != nil {
			return err
		}
		// Extract incrementally — each release patched from its predecessor —
		// then store only what the base image cannot supply. Both halves are
		// property-tested byte-identical to the full path, so -base changes
		// cost, not output.
		sn.PrecomputeDelta(app)
		img, err = core.EncodeSnapshotDelta(sn, app, baseImg)
	} else {
		img, err = core.EncodeSnapshot(sn, app)
	}
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	if err := os.WriteFile(*out, img, 0o644); err != nil {
		return err
	}
	if !*quiet {
		kind := "full"
		if *base != "" {
			kind = "delta"
		}
		fmt.Fprintf(os.Stderr, "snapshotc: %s → %s (%s, %d bytes, %d releases) in %s\n",
			app.Package, *out, kind, len(img), len(app.Releases), time.Since(started).Round(time.Millisecond))
	}
	if !*verify {
		return nil
	}
	return verifyRoundTrip(*out, img, baseImg, sn, app, data)
}

// verifyRoundTrip proves the written file is a faithful snapshot: loading it
// and re-encoding must reproduce the bytes exactly, and localization served
// from the loaded snapshot must match the in-memory build review for review.
func verifyRoundTrip(path string, img, baseImg []byte, sn *core.Snapshot, app *apk.App, data *synth.AppData) error {
	var (
		loaded *core.Snapshot
		lapp   *apk.App
		err    error
	)
	if baseImg != nil {
		loaded, lapp, err = core.LoadSnapshotDeltaImages(img, baseImg)
	} else {
		loaded, lapp, err = core.LoadSnapshot(path)
	}
	if err != nil {
		return fmt.Errorf("verify: load: %w", err)
	}
	var reImg []byte
	if baseImg != nil {
		reImg, err = core.EncodeSnapshotDelta(loaded, lapp, baseImg)
	} else {
		reImg, err = core.EncodeSnapshot(loaded, lapp)
	}
	if err != nil {
		return fmt.Errorf("verify: re-encode: %w", err)
	}
	if !bytes.Equal(reImg, img) {
		return errors.New("verify: save→load→save is not byte-identical")
	}

	reviews := 0
	if data != nil {
		built := core.NewWithSnapshot(sn)
		served := core.NewWithSnapshot(loaded)
		for i, rv := range data.Reviews {
			if i >= 50 {
				break
			}
			want := built.LocalizeReview(app, rv.Text, rv.PublishedAt)
			got := served.LocalizeReview(lapp, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
				return fmt.Errorf("verify: review %d: loaded localization differs from in-memory build", i)
			}
			reviews++
		}
	}
	fmt.Fprintf(os.Stderr, "snapshotc: verify ok (round trip byte-identical, %d reviews cross-checked)\n", reviews)
	return nil
}

// loadApp resolves the app IR; data is non-nil only for built-in apps,
// whose generated review corpus feeds -verify's localization cross-check.
func loadApp(pkg, file string, seed int64) (*apk.App, *synth.AppData, error) {
	switch {
	case file != "":
		app, err := apk.LoadJSON(file)
		return app, nil, err
	case pkg != "":
		for i, info := range synth.Table6Specs() {
			if info.Package == pkg {
				data := synth.GenerateTable6(seed)[i]
				return data.App, data, nil
			}
		}
		return nil, nil, fmt.Errorf("unknown built-in app %q (use -list)", pkg)
	default:
		return nil, nil, errors.New("one of -app or -appfile is required")
	}
}
