// Command synthgen exports the generated evaluation universe to disk: the
// app IR as JSON (consumable by `reviewsolver -appfile`), plus the reviews,
// bug reports, and release notes as JSON documents.
//
// Usage:
//
//	synthgen -app com.fsck.k9 -out ./k9        # one app
//	synthgen -all -out ./dataset               # all 28 apps
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"reviewsolver/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appPkg = flag.String("app", "", "package id of the app to export")
		all    = flag.Bool("all", false, "export every generated app")
		out    = flag.String("out", ".", "output directory")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if !*all && *appPkg == "" {
		return errors.New("pass -app <package> or -all")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	datas := append(synth.GenerateTable6(*seed), synth.GenerateTable14(*seed)...)
	exported := 0
	for _, data := range datas {
		if !*all && data.Info.Package != *appPkg {
			continue
		}
		if err := export(data, *out); err != nil {
			return err
		}
		fmt.Println("exported", data.Summary())
		exported++
	}
	if exported == 0 {
		return fmt.Errorf("unknown app %q", *appPkg)
	}
	return nil
}

// export writes <pkg>.app.json (the IR) and <pkg>.corpus.json (reviews +
// ground-truth documents).
func export(data *synth.AppData, dir string) error {
	appPath := filepath.Join(dir, data.Info.Package+".app.json")
	if err := data.App.SaveJSON(appPath); err != nil {
		return err
	}
	corpus := struct {
		Reviews      []synth.Review      `json:"reviews"`
		BugReports   []synth.BugReport   `json:"bugReports"`
		ReleaseNotes []synth.ReleaseNote `json:"releaseNotes"`
		Faults       []synth.Fault       `json:"faults"`
	}{data.Reviews, data.BugReports, data.ReleaseNotes, data.Faults}
	blob, err := json.MarshalIndent(corpus, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal corpus %s: %w", data.Info.Package, err)
	}
	corpusPath := filepath.Join(dir, data.Info.Package+".corpus.json")
	if err := os.WriteFile(corpusPath, blob, 0o644); err != nil {
		return fmt.Errorf("write corpus %s: %w", data.Info.Package, err)
	}
	return nil
}
