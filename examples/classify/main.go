// Classify: the §3.2.2 workflow on its own — train the five candidate
// classifiers on the 700+700 corpus, cross-validate them (Table 2), pick
// the best, and classify a handful of fresh reviews, showing the
// negation-aware feature filtering in action.
package main

import (
	"fmt"
	"log"

	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	docs := synth.TrainingCorpus(1)
	fmt.Printf("training corpus: %d labeled reviews\n\n", len(docs))

	factories := []textclass.Factory{
		func() textclass.Classifier { return textclass.NewNaiveBayes() },
		func() textclass.Classifier { return textclass.NewRandomForest() },
		func() textclass.Classifier { return textclass.NewSVM() },
		func() textclass.Classifier { return textclass.NewMaxEnt() },
		func() textclass.Classifier { return textclass.NewBoostedTrees() },
	}
	fmt.Println("10-fold cross-validation (Table 2):")
	var best textclass.Factory
	bestF1 := -1.0
	for _, f := range factories {
		m := textclass.CrossValidate(10, docs, f, 1)
		fmt.Printf("  %-26s precision %5.1f%%  recall %5.1f%%  F1 %5.1f%%\n",
			f().Name(), 100*m.Precision, 100*m.Recall, 100*m.F1)
		if m.F1 > bestF1 {
			bestF1, best = m.F1, f
		}
	}
	fmt.Printf("selected: %s\n\n", best().Name())

	vec, clf := textclass.TrainOn(docs, best)
	samples := []string{
		"the app keeps crashing when i upload photos",
		"love this app, works perfectly",
		"please add a dark theme",
		// The negation filter (§3.2.2) drops "bugs" here, so the review
		// classifies as non-error despite the error word.
		"the app does not contain any bugs",
		"cannot login since the update",
	}
	fmt.Println("predictions:")
	for _, s := range samples {
		label := "other"
		if clf.Predict(vec.Transform(s)) {
			label = "FUNCTION ERROR"
		}
		fmt.Printf("  %-55q -> %s\n", s, label)
	}
	return nil
}
