// Comparison: run ReviewSolver against the ChangeAdvisor and Where2Change
// baselines on one app's error reviews (the §5.3 experiment in miniature)
// and print which ground-truth mappings each system recovers.
package main

import (
	"fmt"
	"log"

	"reviewsolver/internal/baseline"
	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	apps := synth.GenerateTable6(1)
	var signal *synth.AppData
	for _, a := range apps {
		if a.Info.Name == "Signal" {
			signal = a
		}
	}
	if signal == nil {
		return fmt.Errorf("signal not generated")
	}
	fmt.Println(signal.Summary())

	// Collect the error reviews that have ground truth (a linked fault with
	// a bug report).
	type gtReview struct {
		review  synth.Review
		classes map[string]struct{}
	}
	var gt []gtReview
	for _, rv := range signal.ErrorReviews() {
		if rv.FaultID < 0 {
			continue
		}
		fault, ok := signal.FaultByID(rv.FaultID)
		if !ok {
			continue
		}
		set := make(map[string]struct{}, len(fault.Classes))
		for _, c := range fault.Classes {
			set[c] = struct{}{}
		}
		gt = append(gt, gtReview{review: rv, classes: set})
		if len(gt) == 40 {
			break
		}
	}

	solver := core.New() // no classifier: we already know these are error reviews
	ca := baseline.NewChangeAdvisor()
	w2c := baseline.NewWhere2Change()

	texts := make([]string, len(gt))
	for i, g := range gt {
		texts[i] = g.review.Text
	}
	release := signal.App.Latest()
	caOut := ca.MapReviews(texts, release)
	var bugs []baseline.BugText
	for _, br := range signal.BugReports {
		bugs = append(bugs, baseline.BugText{Title: br.Title, Body: br.Body})
	}
	w2cOut := w2c.MapReviews(texts, bugs, release)

	hit := func(classes []string, want map[string]struct{}) bool {
		for _, c := range classes {
			if _, ok := want[c]; ok {
				return true
			}
		}
		return false
	}

	var rsHits, caHits, w2cHits int
	for i, g := range gt {
		res := solver.LocalizeReview(signal.App, g.review.Text, g.review.PublishedAt)
		rsOK := hit(res.RankedClassNames(), g.classes)
		caOK := hit(caOut[i], g.classes)
		w2cOK := hit(w2cOut[i], g.classes)
		if rsOK {
			rsHits++
		}
		if caOK {
			caHits++
		}
		if w2cOK {
			w2cHits++
		}
		fmt.Printf("%-72q RS=%-5v CA=%-5v W2C=%v\n", truncate(g.review.Text, 70), rsOK, caOK, w2cOK)
	}
	fmt.Printf("\nof %d ground-truth reviews: ReviewSolver %d, ChangeAdvisor %d, Where2Change %d\n",
		len(gt), rsHits, caHits, w2cHits)
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
