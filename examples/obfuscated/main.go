// Obfuscated: the §3.3.2 Code2vec scenario end to end. A ProGuard-stripped
// APK has meaningless method names ("a", "b"), so name-based localization
// goes blind; the method summarizer, trained on the other apps'
// unobfuscated code, recovers the mapping from the method bodies.
package main

import (
	"fmt"
	"log"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/code2vec"
	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate the evaluation apps; SeriesGuide plays the obfuscated app,
	// the rest form the summarizer's training corpus (the F-Droid role).
	apps := synth.GenerateTable6(1)
	var target *synth.AppData
	model := code2vec.NewModel()
	for _, a := range apps {
		if a.Info.Name == "SeriesGuide" {
			target = a
			continue
		}
		model.TrainRelease(a.App.Latest())
	}
	if target == nil {
		return fmt.Errorf("target app missing")
	}
	fmt.Printf("summarizer trained on 17 apps: %d name words in vocabulary\n\n", model.VocabSize())

	// Strip the target the way ProGuard would.
	stripped := synth.Obfuscate(target.App.Latest())
	obfApp := &apk.App{Package: target.App.Package, Name: target.App.Name,
		Releases: []*apk.Release{stripped}}

	// Show the obfuscation: method names are gone.
	cls := stripped.Classes[2]
	fmt.Printf("class %s after ProGuard:\n", cls.Name)
	for _, m := range cls.Methods {
		fmt.Printf("  %s(): %d statements, summarizer says %v\n",
			m.Name, len(m.Statements), model.Predict(m, 3))
	}

	// Localize the same review against the stripped app, with and without
	// the summarizer.
	review := "the app crashes every time i play episode"
	when := stripped.ReleasedAt.AddDate(0, 1, 0)

	blind := core.New()
	sighted := core.New(core.WithSummarizer(model))

	report := func(name string, s *core.Solver) {
		res := s.LocalizeReview(obfApp, review, when)
		appSpecific := 0
		for _, m := range res.Mappings {
			if m.Context.String() == "App Specific Task" {
				appSpecific++
			}
		}
		fmt.Printf("\n%s: %d mappings (%d via App Specific Task)\n",
			name, len(res.Mappings), appSpecific)
		for i, rc := range res.Ranked {
			if i >= 3 {
				break
			}
			fmt.Printf("  %d. %s via %v\n", i+1, rc.Class, rc.Contexts)
		}
	}
	fmt.Printf("\nreview: %q\n", review)
	report("without summarizer", blind)
	report("with summarizer", sighted)
	return nil
}
