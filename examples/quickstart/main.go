// Quickstart: build a tiny app IR, localize one user review against it,
// and print the review's parse tree (the Fig. 2 view) plus the recommended
// classes.
package main

import (
	"fmt"
	"log"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/parser"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Describe the app in the APK IR: one activity, one worker class
	//    that sends SMS, and a login screen.
	b := apk.NewBuilder("com.example.chat", "ExampleChat")
	b.Release("1.0", 1, time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC))
	b.Permission("android.permission.SEND_SMS")
	b.LauncherActivity("com.example.chat.MainActivity", "main")
	b.Activity("com.example.chat.LoginActivity", "login")
	b.Layout("main", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "Button", ID: "send_btn", Text: "Send"},
		{Type: "EditText", ID: "compose_text", Hint: "Type a message"},
	}})
	b.Layout("login", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "EditText", ID: "password_edit", Hint: "Password"},
		{Type: "Button", ID: "login_btn", Text: "Sign in"},
	}})
	b.Class("com.example.chat.MainActivity").
		Method("onCreate", apk.Invoke("", "android.app.Activity", "setTitle")).
		Method("onClick", apk.Invoke("", "com.example.chat.MessageSender", "sendMessage"))
	b.Class("com.example.chat.MessageSender").
		Method("sendMessage",
			apk.ConstString("err", "Message could not be sent"),
			apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage"),
			apk.Invoke("", "android.widget.Toast", "makeText", "err"))
	app := b.Build()

	// 2. Parse a review sentence the way §3.2 does and show the tree.
	review := "the app cannot send messages anymore"
	p := parser.New().ParseSentence(review)
	fmt.Println("parse tree (Fig. 2 style):")
	fmt.Println(p.Tree.String())
	fmt.Println("typed dependencies:")
	for _, d := range p.Deps {
		fmt.Printf("  %s(%s, %s)\n", d.Rel, p.Tokens[d.Head].Lower, p.Tokens[d.Dep].Lower)
	}

	// 3. Localize the review. Without a trained classifier every review is
	//    treated as a function-error review — fine for a demo.
	solver := core.New()
	res := solver.LocalizeReview(app, review, time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC))

	fmt.Println("\nrecommended classes:")
	for i, rc := range res.Ranked {
		fmt.Printf("%d. %s (importance %d, via %v)\n", i+1, rc.Class, rc.Importance, rc.Contexts)
	}
	return nil
}
