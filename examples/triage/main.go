// Triage: the workload that motivates the paper's introduction — a
// developer receives hundreds of reviews and wants the problematic classes,
// not the raw text. This example takes the generated K-9 Mail corpus,
// classifies its reviews, localizes the function-error ones, and prints a
// per-class hot list with the reviews behind each class.
package main

import (
	"fmt"
	"log"
	"sort"

	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate the evaluation universe and pick K-9 Mail.
	apps := synth.GenerateTable6(1)
	var k9 *synth.AppData
	for _, a := range apps {
		if a.Info.Package == "com.fsck.k9" {
			k9 = a
		}
	}
	if k9 == nil {
		return fmt.Errorf("K-9 Mail not generated")
	}
	fmt.Println(k9.Summary())

	// Train the function-error classifier (§3.2.2) and build the solver.
	vec, clf := textclass.TrainOn(synth.TrainingCorpus(1),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })
	solver := core.New(core.WithClassifier(vec, clf))

	// Triage the most recent 150 reviews.
	reviews := k9.Reviews
	if len(reviews) > 150 {
		reviews = reviews[len(reviews)-150:]
	}
	type hot struct {
		count   int
		samples []string
	}
	hotlist := make(map[string]*hot)
	errorReviews, localized := 0, 0
	for _, rv := range reviews {
		res := solver.LocalizeReview(k9.App, rv.Text, rv.PublishedAt)
		if !res.IsError {
			continue
		}
		errorReviews++
		if !res.Localized() {
			continue
		}
		localized++
		for _, rc := range res.Ranked {
			h, ok := hotlist[rc.Class]
			if !ok {
				h = &hot{}
				hotlist[rc.Class] = h
			}
			h.count++
			if len(h.samples) < 2 {
				h.samples = append(h.samples, rv.Text)
			}
		}
	}

	fmt.Printf("\n%d reviews triaged: %d function-error reviews, %d localized\n\n",
		len(reviews), errorReviews, localized)

	classes := make([]string, 0, len(hotlist))
	for c := range hotlist {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		if hotlist[classes[i]].count != hotlist[classes[j]].count {
			return hotlist[classes[i]].count > hotlist[classes[j]].count
		}
		return classes[i] < classes[j]
	})
	if len(classes) > 10 {
		classes = classes[:10]
	}
	fmt.Println("top problematic classes:")
	for i, c := range classes {
		h := hotlist[c]
		fmt.Printf("%2d. %-55s %3d reviews\n", i+1, c, h.count)
		for _, s := range h.samples {
			fmt.Printf("      e.g. %q\n", s)
		}
	}
	return nil
}
