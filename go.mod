module reviewsolver

go 1.22
