// Package apg builds the Android Property Graph of §3.3.2 over the app IR:
// the abstract syntax tree is the statement list itself, and this package
// adds the method call graph (MCG), the data dependency graph (DDG) with
// backward taint analysis, intent-target queries (the IccTA role), and the
// class dependency relation used for ranking ties (§4.3).
package apg

import (
	"sort"
	"strings"
	"sync"

	"reviewsolver/internal/apk"
)

// Site identifies one statement inside a method.
type Site struct {
	// Method is the enclosing method.
	Method *apk.Method
	// StmtIdx is the statement's index within the method body.
	StmtIdx int
}

// Statement returns the statement at the site.
func (s Site) Statement() apk.Statement { return s.Method.Statements[s.StmtIdx] }

// Class returns the fully qualified class owning the site.
func (s Site) Class() string { return s.Method.Class }

// ref names a method as (class, method) without concatenating the pair —
// the graph's maps key on it so Build never builds qualified-name strings
// for the hot framework-call case.
type ref struct{ class, method string }

// Graph is the property graph of one release.
type Graph struct {
	release *apk.Release
	// methods indexes app methods by (class, method).
	methods map[ref]*apk.Method
	// callSites indexes invocation sites by callee (class, method).
	callSites map[ref][]Site
	// mcgOnce guards the lazy MCG structures below: no extraction phase
	// reads them, so Build keeps them off the snapshot-rebuild critical
	// path and the first ranking query pays the derivation once per graph.
	mcgOnce sync.Once
	// callers is the MCG edge list restricted to app methods, keyed and
	// valued by qualified name (the form ranking consumes).
	callers map[string][]string
	// classDeps maps a class to the set of app classes it invokes.
	classDeps map[string]map[string]struct{}

	// methodsSorted memoizes Methods(): the sort is O(n log n) with a
	// string comparator and three extraction passes used to pay it each.
	methodsOnce   sync.Once
	methodsSorted []*apk.Method
}

// Build constructs the graph for a release.
func Build(r *apk.Release) *Graph {
	methodCount := 0
	for _, c := range r.Classes {
		methodCount += len(c.Methods)
	}
	g := &Graph{
		release:   r,
		methods:   make(map[ref]*apk.Method, methodCount),
		callSites: make(map[ref][]Site, methodCount),
	}
	for _, c := range r.Classes {
		for _, m := range c.Methods {
			g.methods[ref{m.Class, m.Name}] = m
			for i := range m.Statements {
				st := &m.Statements[i]
				if st.Op != apk.OpInvoke {
					continue
				}
				k := ref{st.InvokeClass, st.InvokeMethod}
				g.callSites[k] = append(g.callSites[k], Site{Method: m, StmtIdx: i})
			}
		}
	}
	return g
}

// mcg derives the app-internal MCG edges and the class dependency relation
// from the call-site index, once, on first ranking-time use. Edge
// multiplicity matches the eager construction (one edge per invocation
// site), and every accessor sorts or counts, so the map-iteration build
// order never reaches a caller.
func (g *Graph) mcg() {
	g.mcgOnce.Do(func() {
		appClasses := make(map[string]struct{}, len(g.release.Classes))
		for _, c := range g.release.Classes {
			appClasses[c.Name] = struct{}{}
		}
		g.callers = make(map[string][]string)
		g.classDeps = make(map[string]map[string]struct{})
		// fromName interns each caller's qualified name: one concatenation
		// per method with app-internal callees, not one per site.
		fromName := make(map[*apk.Method]string)
		for k, sites := range g.callSites {
			if _, isApp := appClasses[k.class]; !isApp {
				continue
			}
			callee := k.class + "." + k.method
			for _, s := range sites {
				from, ok := fromName[s.Method]
				if !ok {
					from = s.Method.QualifiedName()
					fromName[s.Method] = from
				}
				g.callers[callee] = append(g.callers[callee], from)
				if k.class != s.Method.Class {
					deps, ok := g.classDeps[s.Method.Class]
					if !ok {
						deps = make(map[string]struct{})
						g.classDeps[s.Method.Class] = deps
					}
					deps[k.class] = struct{}{}
				}
			}
		}
	})
}

// Release returns the release the graph was built from.
func (g *Graph) Release() *apk.Release { return g.release }

// Method returns the app method with the given qualified name. Method names
// never contain '.', so the last dot splits class from method.
func (g *Graph) Method(qualified string) (*apk.Method, bool) {
	i := strings.LastIndexByte(qualified, '.')
	if i < 0 {
		return nil, false
	}
	return g.MethodRef(qualified[:i], qualified[i+1:])
}

// MethodRef returns the app method declared on class with the given name.
func (g *Graph) MethodRef(class, name string) (*apk.Method, bool) {
	m, ok := g.methods[ref{class, name}]
	return m, ok
}

// Methods returns all app methods, sorted by qualified name. The sorted
// slice is memoized (several extraction passes iterate it); callers must
// treat it as read-only.
func (g *Graph) Methods() []*apk.Method {
	g.methodsOnce.Do(func() {
		out := make([]*apk.Method, 0, len(g.methods))
		for _, m := range g.methods {
			out = append(out, m)
		}
		sort.Slice(out, func(i, j int) bool { return qualifiedLess(out[i], out[j]) })
		g.methodsSorted = out
	})
	return g.methodsSorted
}

// AdoptMethodOrder installs a pre-sorted method list as the Methods()
// memo, skipping the O(n log n) sort — incremental rebuilds produce the
// order by merging the previous release's sorted list with the few changed
// methods. The list is validated cheaply (length and strict qualified-name
// order); it must contain exactly the graph's methods. Returns false (and
// adopts nothing) when validation fails or Methods() already materialized.
func (g *Graph) AdoptMethodOrder(ms []*apk.Method) bool {
	if len(ms) != len(g.methods) {
		return false
	}
	for i := 1; i < len(ms); i++ {
		if !qualifiedLess(ms[i-1], ms[i]) {
			return false
		}
	}
	adopted := false
	g.methodsOnce.Do(func() {
		g.methodsSorted = ms
		adopted = true
	})
	return adopted
}

// QualifiedLess reports whether a orders before b by qualified method name
// — the comparator behind Methods(). Exported so incremental rebuilds can
// merge a kept sorted run with freshly sorted methods into an
// AdoptMethodOrder-ready list.
func QualifiedLess(a, b *apk.Method) bool { return qualifiedLess(a, b) }

// qualifiedLess orders methods exactly as comparing their QualifiedName
// strings would, without building them. The slow byte-walk only runs when
// one class name is a proper prefix of the other (where the shorter side
// reads "." + its method name against the rest of the longer class name).
func qualifiedLess(a, b *apk.Method) bool {
	ac, bc := a.Class, b.Class
	if ac == bc {
		return a.Name < b.Name
	}
	n := len(ac)
	if len(bc) < n {
		n = len(bc)
	}
	if ap, bp := ac[:n], bc[:n]; ap != bp {
		return ap < bp
	}
	if len(ac) < len(bc) {
		return catLess([]string{".", a.Name}, []string{bc[n:], ".", b.Name})
	}
	return catLess([]string{ac[n:], ".", a.Name}, []string{".", b.Name})
}

// catLess compares the virtual concatenations of two segment lists.
func catLess(a, b []string) bool {
	var ai, aoff, bi, boff int
	for {
		for ai < len(a) && aoff == len(a[ai]) {
			ai++
			aoff = 0
		}
		for bi < len(b) && boff == len(b[bi]) {
			bi++
			boff = 0
		}
		if ai == len(a) {
			return bi != len(b)
		}
		if bi == len(b) {
			return false
		}
		if ca, cb := a[ai][aoff], b[bi][boff]; ca != cb {
			return ca < cb
		}
		aoff++
		boff++
	}
}

// CallSitesOf returns every invocation site of class.method (framework API
// or app method), in deterministic order.
func (g *Graph) CallSitesOf(class, method string) []Site {
	sites := g.callSites[ref{class, method}]
	out := make([]Site, len(sites))
	copy(out, sites)
	sort.Slice(out, func(i, j int) bool {
		qi, qj := out[i].Method.QualifiedName(), out[j].Method.QualifiedName()
		if qi != qj {
			return qi < qj
		}
		return out[i].StmtIdx < out[j].StmtIdx
	})
	return out
}

// ClassesInvoking returns the distinct app classes with at least one
// invocation site targeting any method of the given callee class, sorted.
// Incremental rebuilds use it to find the classes whose framework-call
// classification can flip when a class name appears in or vanishes from the
// app class set.
func (g *Graph) ClassesInvoking(calleeClass string) []string {
	set := make(map[string]struct{})
	for k, sites := range g.callSites {
		if k.class != calleeClass {
			continue
		}
		for _, s := range sites {
			set[s.Class()] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ClassesCalling returns the distinct app classes that invoke class.method.
func (g *Graph) ClassesCalling(class, method string) []string {
	set := make(map[string]struct{})
	for _, s := range g.callSites[ref{class, method}] {
		set[s.Class()] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Callers returns the app methods that call the given app method.
func (g *Graph) Callers(qualified string) []string {
	g.mcg()
	out := append([]string(nil), g.callers[qualified]...)
	sort.Strings(out)
	return out
}

// ClassDependencyCount returns how many distinct app classes the given
// class invokes. Ranking uses it to break importance ties (§4.3): a class
// built on many others more likely implements a core function.
func (g *Graph) ClassDependencyCount(class string) int {
	g.mcg()
	return len(g.classDeps[class])
}

// BackwardStrings performs the backward taint walk of §3.3.2: starting from
// the uses of the statement at the site, it follows the data dependency
// graph (def → use chains) backwards until statements that create new
// values, and records every string constant encountered on the path.
func (g *Graph) BackwardStrings(site Site) []string {
	stmts := site.Method.Statements
	start := stmts[site.StmtIdx]
	pending := append([]string(nil), start.Uses...)
	seenVar := make(map[string]struct{}, len(pending))
	var out []string
	for len(pending) > 0 {
		v := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		if _, dup := seenVar[v]; dup || v == "" {
			continue
		}
		seenVar[v] = struct{}{}
		// Find the latest definition of v before the site.
		for i := site.StmtIdx - 1; i >= 0; i-- {
			st := stmts[i]
			if st.Def != v {
				continue
			}
			switch st.Op {
			case apk.OpConstString:
				out = append(out, st.Const)
			case apk.OpAssign, apk.OpInvoke:
				pending = append(pending, st.Uses...)
			case apk.OpNew:
				// Sink: statement that creates a new variable.
			}
			break
		}
	}
	// Deterministic order.
	sort.Strings(out)
	return out
}

// intentSendAPIs are the framework entry points that dispatch intents
// (§3.3.2: "we first collect all intent related statements").
var intentSendAPIs = []struct{ class, method string }{
	{"android.app.Activity", "startActivity"},
	{"android.app.Activity", "startActivityForResult"},
	{"android.content.Context", "startActivity"},
	{"android.content.Context", "startService"},
	{"android.content.Context", "sendBroadcast"},
}

// IntentSend records an intent dispatched by the app with the action
// string(s) recovered by backward taint.
type IntentSend struct {
	// Actions are the intent action strings found on the taint path.
	Actions []string
	// Site is the dispatching statement.
	Site Site
}

// IntentSends finds all intent dispatch sites and recovers their action
// strings.
func (g *Graph) IntentSends() []IntentSend {
	var out []IntentSend
	for _, api := range intentSendAPIs {
		for _, site := range g.CallSitesOf(api.class, api.method) {
			actions := g.BackwardStrings(site)
			if len(actions) == 0 {
				continue
			}
			out = append(out, IntentSend{Actions: actions, Site: site})
		}
	}
	return out
}

// IntentSendsIn is IntentSends restricted to sites inside the given
// classes — the incremental-rebuild path scans only the classes a release
// diff touched. Site discovery walks the classes' statements directly, so
// the per-site results (taint strings included) match what IntentSends
// produces for those classes; only the site order differs, which the
// aggregating caller sorts away.
func (g *Graph) IntentSendsIn(classes []string) []IntentSend {
	var out []IntentSend
	g.sitesIn(classes, intentSendAPIs, func(site Site) {
		if actions := g.BackwardStrings(site); len(actions) > 0 {
			out = append(out, IntentSend{Actions: actions, Site: site})
		}
	})
	return out
}

// ContentQuery records a content-provider access with its URI string(s).
type ContentQuery struct {
	URIs []string
	Site Site
}

// contentResolverMethods are the provider operations of §3.3.2.
var contentResolverMethods = []string{"query", "insert", "update", "delete"}

// ContentQueries finds content-provider operations and recovers the URI
// strings flowing into them.
func (g *Graph) ContentQueries() []ContentQuery {
	var out []ContentQuery
	for _, m := range contentResolverMethods {
		for _, site := range g.CallSitesOf("android.content.ContentResolver", m) {
			uris := g.BackwardStrings(site)
			if len(uris) == 0 {
				continue
			}
			out = append(out, ContentQuery{URIs: uris, Site: site})
		}
	}
	return out
}

// contentResolverAPIs is contentResolverMethods in the class/method pair
// shape the restricted site walk consumes.
var contentResolverAPIs = func() []struct{ class, method string } {
	out := make([]struct{ class, method string }, len(contentResolverMethods))
	for i, m := range contentResolverMethods {
		out[i] = struct{ class, method string }{"android.content.ContentResolver", m}
	}
	return out
}()

// ContentQueriesIn is ContentQueries restricted to sites inside the given
// classes (see IntentSendsIn for the contract).
func (g *Graph) ContentQueriesIn(classes []string) []ContentQuery {
	var out []ContentQuery
	g.sitesIn(classes, contentResolverAPIs, func(site Site) {
		if uris := g.BackwardStrings(site); len(uris) > 0 {
			out = append(out, ContentQuery{URIs: uris, Site: site})
		}
	})
	return out
}

// MessageSite records a user-visible message raised by the app with the
// string(s) recovered by backward taint.
type MessageSite struct {
	Texts []string
	Site  Site
}

// errorMessageAPIs are the notification APIs of §3.3.2 (AlertDialog,
// TextView, Toast).
var errorMessageAPIs = []struct{ class, method string }{
	{"android.app.AlertDialog$Builder", "setTitle"},
	{"android.app.AlertDialog$Builder", "setMessage"},
	{"android.widget.TextView", "setError"},
	{"android.widget.Toast", "makeText"},
	{"android.app.NotificationManager", "notify"},
}

// ErrorMessages finds the user-visible message sites and recovers their
// text.
func (g *Graph) ErrorMessages() []MessageSite {
	var out []MessageSite
	for _, api := range errorMessageAPIs {
		for _, site := range g.CallSitesOf(api.class, api.method) {
			texts := g.BackwardStrings(site)
			if len(texts) == 0 {
				continue
			}
			out = append(out, MessageSite{Texts: texts, Site: site})
		}
	}
	return out
}

// ErrorMessagesIn is ErrorMessages restricted to sites inside the given
// classes (see IntentSendsIn for the contract).
func (g *Graph) ErrorMessagesIn(classes []string) []MessageSite {
	var out []MessageSite
	g.sitesIn(classes, errorMessageAPIs, func(site Site) {
		if texts := g.BackwardStrings(site); len(texts) > 0 {
			out = append(out, MessageSite{Texts: texts, Site: site})
		}
	})
	return out
}

// sitesIn walks the statements of the given classes (by name, in the given
// order) and yields every invocation site targeting one of the APIs. It
// visits every declared method — including shadowed duplicates — exactly
// like the callSites index the unrestricted queries read.
func (g *Graph) sitesIn(classes []string, apis []struct{ class, method string }, yield func(Site)) {
	for _, cn := range classes {
		c, ok := g.release.FindClass(cn)
		if !ok {
			continue
		}
		for _, m := range c.Methods {
			for i := range m.Statements {
				st := &m.Statements[i]
				if st.Op != apk.OpInvoke {
					continue
				}
				for _, api := range apis {
					if st.InvokeClass == api.class && st.InvokeMethod == api.method {
						yield(Site{Method: m, StmtIdx: i})
						break
					}
				}
			}
		}
	}
}

// ExceptionSite records a throw or catch of an exception type.
type ExceptionSite struct {
	Exception string
	Caught    bool
	Site      Site
}

// ExceptionSites lists every throw/catch in the app (§4.2.3 Step 1 for
// developer-defined methods).
func (g *Graph) ExceptionSites() []ExceptionSite {
	var out []ExceptionSite
	for _, m := range g.Methods() {
		for i := range m.Statements {
			st := &m.Statements[i]
			switch st.Op {
			case apk.OpThrow:
				out = append(out, ExceptionSite{Exception: st.Exception,
					Site: Site{Method: m, StmtIdx: i}})
			case apk.OpCatch:
				out = append(out, ExceptionSite{Exception: st.Exception, Caught: true,
					Site: Site{Method: m, StmtIdx: i}})
			}
		}
	}
	return out
}

// FrameworkCalls returns every invocation site whose callee class is not an
// app class — the API usage inventory of §3.3.2.
func (g *Graph) FrameworkCalls() []Site {
	appClasses := make(map[string]struct{}, len(g.release.Classes))
	for _, c := range g.release.Classes {
		appClasses[c.Name] = struct{}{}
	}
	var out []Site
	for _, c := range g.release.Classes {
		for _, m := range c.Methods {
			for i := range m.Statements {
				st := &m.Statements[i]
				if st.Op != apk.OpInvoke {
					continue
				}
				if _, isApp := appClasses[st.InvokeClass]; isApp {
					continue
				}
				out = append(out, Site{Method: m, StmtIdx: i})
			}
		}
	}
	return out
}

// FrameworkCallsIn is FrameworkCalls restricted to sites inside the given
// classes. The app/framework classification still uses the full class set
// of this graph's release, so the per-site decisions match FrameworkCalls
// exactly; only the covered classes differ.
func (g *Graph) FrameworkCallsIn(classes []string) []Site {
	appClasses := make(map[string]struct{}, len(g.release.Classes))
	for _, c := range g.release.Classes {
		appClasses[c.Name] = struct{}{}
	}
	var out []Site
	for _, cn := range classes {
		c, ok := g.release.FindClass(cn)
		if !ok {
			continue
		}
		for _, m := range c.Methods {
			for i := range m.Statements {
				st := &m.Statements[i]
				if st.Op != apk.OpInvoke {
					continue
				}
				if _, isApp := appClasses[st.InvokeClass]; isApp {
					continue
				}
				out = append(out, Site{Method: m, StmtIdx: i})
			}
		}
	}
	return out
}
