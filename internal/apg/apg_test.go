package apg

import (
	"reflect"
	"testing"
	"time"

	"reviewsolver/internal/apk"
)

func testRelease() *apk.Release {
	b := apk.NewBuilder("com.test.app", "TestApp")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.Class("com.test.app.MainActivity").
		Method("onCreate",
			apk.ConstString("msg", "Failed to send some messages"),
			apk.Invoke("", "android.widget.Toast", "makeText", "msg"),
			apk.Invoke("", "com.test.app.Mailer", "sendAll"))
	b.Class("com.test.app.Mailer").
		Method("sendAll",
			apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage"),
			apk.Throw("SendException")).
		Method("openCamera",
			apk.ConstString("act", "android.media.action.IMAGE_CAPTURE"),
			apk.NewObj("intent", "android.content.Intent"),
			apk.Assign("payload", "act"),
			apk.Invoke("", "android.app.Activity", "startActivityForResult", "payload", "intent"))
	b.Class("com.test.app.Contacts").
		Method("queryContacts",
			apk.ConstString("uri", "content://contacts"),
			apk.Invoke("cur", "android.content.ContentResolver", "query", "uri"),
			apk.Catch("SecurityException"),
			apk.Return("cur"))
	return b.Build().Latest()
}

func TestCallSitesOf(t *testing.T) {
	g := Build(testRelease())
	sites := g.CallSitesOf("android.telephony.SmsManager", "sendTextMessage")
	if len(sites) != 1 {
		t.Fatalf("call sites = %d, want 1", len(sites))
	}
	if sites[0].Class() != "com.test.app.Mailer" {
		t.Errorf("caller class = %q", sites[0].Class())
	}
}

func TestClassesCalling(t *testing.T) {
	g := Build(testRelease())
	got := g.ClassesCalling("android.widget.Toast", "makeText")
	if !reflect.DeepEqual(got, []string{"com.test.app.MainActivity"}) {
		t.Errorf("ClassesCalling = %v", got)
	}
}

func TestCallersAppMethod(t *testing.T) {
	g := Build(testRelease())
	got := g.Callers("com.test.app.Mailer.sendAll")
	if !reflect.DeepEqual(got, []string{"com.test.app.MainActivity.onCreate"}) {
		t.Errorf("Callers = %v", got)
	}
}

func TestBackwardStringsDirect(t *testing.T) {
	g := Build(testRelease())
	sites := g.CallSitesOf("android.widget.Toast", "makeText")
	got := g.BackwardStrings(sites[0])
	if !reflect.DeepEqual(got, []string{"Failed to send some messages"}) {
		t.Errorf("BackwardStrings = %v", got)
	}
}

func TestBackwardStringsThroughAssign(t *testing.T) {
	g := Build(testRelease())
	sites := g.CallSitesOf("android.app.Activity", "startActivityForResult")
	if len(sites) != 1 {
		t.Fatalf("sites = %d", len(sites))
	}
	got := g.BackwardStrings(sites[0])
	// The action string flows through the assign; the NewObj is a sink.
	if !reflect.DeepEqual(got, []string{"android.media.action.IMAGE_CAPTURE"}) {
		t.Errorf("BackwardStrings = %v", got)
	}
}

func TestIntentSends(t *testing.T) {
	g := Build(testRelease())
	sends := g.IntentSends()
	if len(sends) != 1 {
		t.Fatalf("intent sends = %d, want 1", len(sends))
	}
	if sends[0].Actions[0] != "android.media.action.IMAGE_CAPTURE" {
		t.Errorf("action = %q", sends[0].Actions[0])
	}
	if sends[0].Site.Class() != "com.test.app.Mailer" {
		t.Errorf("site class = %q", sends[0].Site.Class())
	}
}

func TestContentQueries(t *testing.T) {
	g := Build(testRelease())
	queries := g.ContentQueries()
	if len(queries) != 1 {
		t.Fatalf("content queries = %d, want 1", len(queries))
	}
	if queries[0].URIs[0] != "content://contacts" {
		t.Errorf("uri = %q", queries[0].URIs[0])
	}
}

func TestErrorMessages(t *testing.T) {
	g := Build(testRelease())
	msgs := g.ErrorMessages()
	if len(msgs) != 1 {
		t.Fatalf("error messages = %d, want 1", len(msgs))
	}
	if msgs[0].Texts[0] != "Failed to send some messages" {
		t.Errorf("text = %q", msgs[0].Texts[0])
	}
	if msgs[0].Site.Class() != "com.test.app.MainActivity" {
		t.Errorf("class = %q", msgs[0].Site.Class())
	}
}

func TestExceptionSites(t *testing.T) {
	g := Build(testRelease())
	sites := g.ExceptionSites()
	var thrown, caught []string
	for _, s := range sites {
		if s.Caught {
			caught = append(caught, s.Exception)
		} else {
			thrown = append(thrown, s.Exception)
		}
	}
	if !reflect.DeepEqual(thrown, []string{"SendException"}) {
		t.Errorf("thrown = %v", thrown)
	}
	if !reflect.DeepEqual(caught, []string{"SecurityException"}) {
		t.Errorf("caught = %v", caught)
	}
}

func TestClassDependencyCount(t *testing.T) {
	g := Build(testRelease())
	if got := g.ClassDependencyCount("com.test.app.MainActivity"); got != 1 {
		t.Errorf("MainActivity deps = %d, want 1 (Mailer)", got)
	}
	if got := g.ClassDependencyCount("com.test.app.Contacts"); got != 0 {
		t.Errorf("Contacts deps = %d, want 0", got)
	}
}

func TestFrameworkCalls(t *testing.T) {
	g := Build(testRelease())
	calls := g.FrameworkCalls()
	// Toast.makeText, SmsManager.sendTextMessage, Activity.startActivityForResult,
	// ContentResolver.query — the app-internal Mailer.sendAll call is excluded.
	if len(calls) != 4 {
		t.Errorf("framework calls = %d, want 4", len(calls))
	}
	for _, s := range calls {
		if s.Statement().InvokeClass == "com.test.app.Mailer" {
			t.Error("app-internal call listed as framework call")
		}
	}
}

func TestMethodsSorted(t *testing.T) {
	g := Build(testRelease())
	ms := g.Methods()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].QualifiedName() > ms[i].QualifiedName() {
			t.Fatal("Methods() not sorted")
		}
	}
	if _, ok := g.Method("com.test.app.Mailer.sendAll"); !ok {
		t.Error("Method lookup failed")
	}
}
