package apg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"reviewsolver/internal/apk"
)

// randomRelease builds a release with a random (but structurally valid)
// statement soup, to exercise the graph builder and taint walker on shapes
// the generator never produces.
func randomRelease(seed int64, classes, methodsPerClass, stmtsPerMethod int) *apk.Release {
	rng := rand.New(rand.NewSource(seed))
	b := apk.NewBuilder("com.rand.app", "RandApp")
	b.Release("1.0", 1, time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	vars := []string{"v0", "v1", "v2", "v3", "v4"}
	callees := []struct{ class, method string }{
		{"android.widget.Toast", "makeText"},
		{"android.content.ContentResolver", "query"},
		{"android.app.Activity", "startActivityForResult"},
		{"com.rand.app.C0", "m0"},
		{"java.net.Socket", "connect"},
	}
	for ci := 0; ci < classes; ci++ {
		cb := b.Class(fmt.Sprintf("com.rand.app.C%d", ci))
		for mi := 0; mi < methodsPerClass; mi++ {
			var stmts []apk.Statement
			for si := 0; si < stmtsPerMethod; si++ {
				v := vars[rng.Intn(len(vars))]
				switch rng.Intn(6) {
				case 0:
					stmts = append(stmts, apk.ConstString(v, fmt.Sprintf("str-%d", rng.Intn(50))))
				case 1:
					stmts = append(stmts, apk.NewObj(v, "android.content.Intent"))
				case 2:
					stmts = append(stmts, apk.Assign(v, vars[rng.Intn(len(vars))]))
				case 3:
					callee := callees[rng.Intn(len(callees))]
					uses := []string{vars[rng.Intn(len(vars))]}
					stmts = append(stmts, apk.Invoke(v, callee.class, callee.method, uses...))
				case 4:
					stmts = append(stmts, apk.Catch("SomeException"))
				default:
					stmts = append(stmts, apk.Return(vars[rng.Intn(len(vars))]))
				}
			}
			cb.Method(fmt.Sprintf("m%d", mi), stmts...)
		}
	}
	return b.Build().Latest()
}

// TestBackwardTaintTerminatesAndIsDeterministic: the taint walk must
// terminate on arbitrary def-use soup (including self-assignments and
// cycles through reused variable names) and always return the same strings.
func TestBackwardTaintTerminatesAndIsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRelease(seed, 3, 4, 20)
		g := Build(r)
		for _, m := range g.Methods() {
			for i, st := range m.Statements {
				if st.Op != apk.OpInvoke {
					continue
				}
				site := Site{Method: m, StmtIdx: i}
				a := g.BackwardStrings(site)
				b := g.BackwardStrings(site)
				if len(a) != len(b) {
					return false
				}
				for k := range a {
					if a[k] != b[k] {
						return false
					}
				}
				// Sorted output.
				for k := 1; k < len(a); k++ {
					if a[k-1] > a[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGraphBuildConsistency: every call site the graph indexes must point
// at a real invoke statement with the indexed callee.
func TestGraphBuildConsistency(t *testing.T) {
	r := randomRelease(99, 4, 5, 30)
	g := Build(r)
	for _, callee := range []struct{ class, method string }{
		{"android.widget.Toast", "makeText"},
		{"com.rand.app.C0", "m0"},
	} {
		for _, site := range g.CallSitesOf(callee.class, callee.method) {
			st := site.Statement()
			if st.Op != apk.OpInvoke || st.InvokeClass != callee.class || st.InvokeMethod != callee.method {
				t.Fatalf("indexed site does not match: %+v", st)
			}
		}
	}
}

// TestSelfAssignmentCycle: v = v chains must not loop the taint walker.
func TestSelfAssignmentCycle(t *testing.T) {
	b := apk.NewBuilder("p", "n")
	b.Release("1", 1, time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	b.Class("p.C").Method("m",
		apk.ConstString("a", "seed"),
		apk.Assign("a", "a"),
		apk.Assign("b", "a"),
		apk.Assign("a", "b"),
		apk.Invoke("", "android.widget.Toast", "makeText", "a"))
	g := Build(b.Build().Latest())
	sites := g.CallSitesOf("android.widget.Toast", "makeText")
	done := make(chan []string, 1)
	go func() { done <- g.BackwardStrings(sites[0]) }()
	select {
	case got := <-done:
		if len(got) == 0 {
			t.Log("cycle resolved with no strings — acceptable (latest def wins)")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("taint walk did not terminate on assignment cycle")
	}
}
