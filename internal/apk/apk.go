// Package apk defines the app intermediate representation that stands in
// for real APK files: the AndroidManifest (permissions, activities, intent
// filters), the Dex code (classes, methods, statements), layout resources,
// and string resources, across multiple released versions (§3.3.1: all
// versions of the APK with their release times).
//
// The static-analysis package (internal/apg) consumes this IR the way
// Vulhunter consumes real Dex bytecode: statements carry enough structure
// (definitions, uses, string constants, invocations) to build an AST, a
// method call graph, and a data dependency graph, and to run backward taint
// analysis.
package apk

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// App is a mobile application with its version history.
type App struct {
	// Package is the application id, e.g. "com.fsck.k9".
	Package string `json:"package"`
	// Name is the human-readable app name, e.g. "K-9 Mail".
	Name string `json:"name"`
	// Releases holds all released versions, sorted by release time.
	Releases []*Release `json:"releases"`
}

// Release is one released APK version.
type Release struct {
	// Version is the human version string, e.g. "5.2".
	Version string `json:"version"`
	// VersionCode is the monotonically increasing version code.
	VersionCode int `json:"versionCode"`
	// ReleasedAt is the publication time on the app market.
	ReleasedAt time.Time `json:"releasedAt"`
	// Manifest is the parsed AndroidManifest.xml.
	Manifest Manifest `json:"manifest"`
	// Classes are the Dex classes (third-party libraries excluded).
	Classes []*Class `json:"classes"`
	// Layouts are the layout resources.
	Layouts []Layout `json:"layouts"`
	// StringRes maps string resource ids to their values
	// (res/values/strings.xml).
	StringRes map[string]string `json:"stringRes"`

	// idx caches the class/layout lookup tables. It is built lazily on
	// first use and rebuilt when the Classes or Layouts slices are observed
	// to have changed shape; see releaseIndex for the exact staleness rule.
	idx atomic.Pointer[releaseIndex]
}

// releaseIndex is the lazily-built lookup structure behind FindClass,
// ClassNames and LayoutByID. A Release is mutated only while it is being
// assembled (Builder, synth generator) and is read concurrently only after
// assembly settles, so the index validates itself against the slice shape
// (length plus boundary elements) instead of requiring explicit
// invalidation: every mutation the Builder can express — appending classes,
// filtering one out, appending layouts — changes at least one of those.
type releaseIndex struct {
	byName                  map[string]*Class
	names                   []string // all class names, sorted (duplicates preserved)
	layouts                 map[string]int
	nClasses, nLayouts      int
	firstClass, lastClass   *Class
	firstLayout, lastLayout string
	// fps memoizes classContentFingerprint by class identity. The IR is
	// immutable once built (the index itself relies on that), so a class
	// pointer's fingerprint never changes; release cadences re-diff the
	// same release pointers repeatedly (rebuild, change-aware ranking),
	// and untouched classes are shared between releases. Living on the
	// index keeps the cache's lifetime tied to the release it describes.
	fps sync.Map // *Class -> uint64
}

// classFP returns c's content fingerprint, memoized on the index.
func (x *releaseIndex) classFP(c *Class) uint64 {
	if v, ok := x.fps.Load(c); ok {
		return v.(uint64)
	}
	fp := classContentFingerprint(c)
	x.fps.Store(c, fp)
	return fp
}

func (r *Release) index() *releaseIndex {
	idx := r.idx.Load()
	if idx != nil && idx.fresh(r) {
		return idx
	}
	idx = &releaseIndex{
		byName:   make(map[string]*Class, len(r.Classes)),
		layouts:  make(map[string]int, len(r.Layouts)),
		nClasses: len(r.Classes),
		nLayouts: len(r.Layouts),
	}
	names := make([]string, 0, len(r.Classes))
	for _, c := range r.Classes {
		// First declaration wins, matching the old linear scan.
		if _, dup := idx.byName[c.Name]; !dup {
			idx.byName[c.Name] = c
		}
		names = append(names, c.Name)
	}
	sort.Strings(names)
	idx.names = names
	for i, l := range r.Layouts {
		if _, dup := idx.layouts[l.ID]; !dup {
			idx.layouts[l.ID] = i
		}
	}
	if idx.nClasses > 0 {
		idx.firstClass, idx.lastClass = r.Classes[0], r.Classes[idx.nClasses-1]
	}
	if idx.nLayouts > 0 {
		idx.firstLayout, idx.lastLayout = r.Layouts[0].ID, r.Layouts[idx.nLayouts-1].ID
	}
	r.idx.Store(idx)
	return idx
}

func (x *releaseIndex) fresh(r *Release) bool {
	if x.nClasses != len(r.Classes) || x.nLayouts != len(r.Layouts) {
		return false
	}
	if x.nClasses > 0 &&
		(x.firstClass != r.Classes[0] || x.lastClass != r.Classes[x.nClasses-1]) {
		return false
	}
	if x.nLayouts > 0 &&
		(x.firstLayout != r.Layouts[0].ID || x.lastLayout != r.Layouts[x.nLayouts-1].ID) {
		return false
	}
	return true
}

// Manifest models AndroidManifest.xml.
type Manifest struct {
	Package     string         `json:"package"`
	Permissions []string       `json:"permissions"`
	Activities  []ActivityDecl `json:"activities"`
}

// ActivityDecl declares an activity with its intent filters and layout.
type ActivityDecl struct {
	// Name is the fully qualified activity class name.
	Name string `json:"name"`
	// IntentFilters declare the intents the activity handles.
	IntentFilters []IntentFilter `json:"intentFilters"`
	// LayoutID names the layout resource the activity inflates
	// (the IR shortcut for setContentView).
	LayoutID string `json:"layoutId"`
}

// IntentFilter is one <intent-filter> element.
type IntentFilter struct {
	Actions    []string `json:"actions"`
	Categories []string `json:"categories"`
}

// Intent filter constants for the starting activity (§3.3.2).
const (
	ActionMain       = "android.intent.action.MAIN"
	CategoryLauncher = "android.intent.category.LAUNCHER"
)

// Class is a Dex class.
type Class struct {
	// Name is the fully qualified class name.
	Name string `json:"name"`
	// Super is the superclass name ("" for java.lang.Object).
	Super string `json:"super"`
	// Methods are the declared methods.
	Methods []*Method `json:"methods"`
}

// ShortName returns the class name without its package.
func (c *Class) ShortName() string {
	if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
		return c.Name[i+1:]
	}
	return c.Name
}

// Method is a Dex method with its statement list.
type Method struct {
	// Name is the method name, e.g. "getEmail" or "onCreate".
	Name string `json:"name"`
	// Class is the fully qualified name of the declaring class.
	Class string `json:"class"`
	// Statements is the straight-line statement list (the IR's AST body).
	Statements []Statement `json:"statements"`
}

// QualifiedName returns "class.method".
func (m *Method) QualifiedName() string { return m.Class + "." + m.Name }

// Op is a statement opcode.
type Op int

// Statement opcodes. The subset mirrors what the paper's extraction needs:
// string constants (error messages, URIs, intent actions), invocations
// (APIs, app methods), assignments (data dependencies), and throw/catch
// (exception localization).
const (
	OpConstString Op = iota + 1
	OpNew
	OpAssign
	OpInvoke
	OpThrow
	OpCatch
	OpReturn
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpConstString:
		return "const-string"
	case OpNew:
		return "new"
	case OpAssign:
		return "assign"
	case OpInvoke:
		return "invoke"
	case OpThrow:
		return "throw"
	case OpCatch:
		return "catch"
	case OpReturn:
		return "return"
	default:
		return "?"
	}
}

// Statement is one IR statement.
type Statement struct {
	// Op is the opcode.
	Op Op `json:"op"`
	// Def is the local variable the statement defines ("" if none).
	Def string `json:"def,omitempty"`
	// Uses are the local variables the statement reads.
	Uses []string `json:"uses,omitempty"`
	// Const is the string literal of a const-string statement.
	Const string `json:"const,omitempty"`
	// InvokeClass/InvokeMethod name the callee of an invoke statement.
	InvokeClass  string `json:"invokeClass,omitempty"`
	InvokeMethod string `json:"invokeMethod,omitempty"`
	// Exception is the exception type of a throw/catch statement.
	Exception string `json:"exception,omitempty"`
}

// IsInvoke reports whether the statement is an invocation.
func (s Statement) IsInvoke() bool { return s.Op == OpInvoke }

// Callee returns "class.method" for invoke statements.
func (s Statement) Callee() string { return s.InvokeClass + "." + s.InvokeMethod }

// Layout is a layout resource with its widget tree.
type Layout struct {
	// ID is the layout resource name, e.g. "account_setup_basics".
	ID string `json:"id"`
	// Root is the root widget.
	Root Widget `json:"root"`
}

// Widget is a GUI component in a layout tree.
type Widget struct {
	// Type is the widget class, e.g. "Button", "EditText", "LinearLayout".
	Type string `json:"type"`
	// ID is the android:id name, e.g. "show_password" ("" if unset).
	ID string `json:"id,omitempty"`
	// Text is the android:text value — either a literal or a
	// "@string/<id>" resource reference.
	Text string `json:"text,omitempty"`
	// Hint is the android:hint value, same encoding as Text.
	Hint string `json:"hint,omitempty"`
	// Children are the nested widgets.
	Children []Widget `json:"children,omitempty"`
}

// Walk visits the widget and all its descendants in depth-first order.
func (w *Widget) Walk(visit func(*Widget)) {
	visit(w)
	for i := range w.Children {
		w.Children[i].Walk(visit)
	}
}

// FindClass returns the class with the given fully qualified name. Lookups
// go through the lazily-built class index: O(1) after the first call
// instead of a linear scan per query.
func (r *Release) FindClass(name string) (*Class, bool) {
	c, ok := r.index().byName[name]
	return c, ok
}

// ClassNames returns all class names, sorted. The sorted list is cached in
// the release index; callers receive a private copy.
func (r *Release) ClassNames() []string {
	return append([]string(nil), r.index().names...)
}

// StartingActivity returns the activity declared with MAIN/LAUNCHER
// (§3.3.2), or false when none is declared.
func (r *Release) StartingActivity() (ActivityDecl, bool) {
	for _, a := range r.Manifest.Activities {
		for _, f := range a.IntentFilters {
			hasMain, hasLauncher := false, false
			for _, act := range f.Actions {
				if act == ActionMain {
					hasMain = true
				}
			}
			for _, cat := range f.Categories {
				if cat == CategoryLauncher {
					hasLauncher = true
				}
			}
			if hasMain && hasLauncher {
				return a, true
			}
		}
	}
	return ActivityDecl{}, false
}

// ResolveString resolves a text attribute: a "@string/<id>" reference is
// looked up in the string resources; a literal is returned as-is.
func (r *Release) ResolveString(value string) string {
	if id, ok := strings.CutPrefix(value, "@string/"); ok {
		if v, ok := r.StringRes[id]; ok {
			return v
		}
		return ""
	}
	return value
}

// LayoutByID returns the layout with the given resource id, via the same
// lazily-built index that backs FindClass.
func (r *Release) LayoutByID(id string) (Layout, bool) {
	if i, ok := r.index().layouts[id]; ok {
		return r.Layouts[i], true
	}
	return Layout{}, false
}

// ReleaseBefore returns the newest release published strictly before t —
// the version a review published at t was written about (§3.3.1) — and the
// release before that one (for update-diff localization). ok is false when
// no release predates t.
func (a *App) ReleaseBefore(t time.Time) (current, previous *Release, ok bool) {
	for _, r := range a.Releases {
		if r.ReleasedAt.Before(t) {
			previous = current
			current = r
			continue
		}
		break
	}
	return current, previous, current != nil
}

// Latest returns the most recent release, or nil for an empty history.
func (a *App) Latest() *Release {
	if len(a.Releases) == 0 {
		return nil
	}
	return a.Releases[len(a.Releases)-1]
}

// SortReleases orders the release history by release time then version code.
func (a *App) SortReleases() {
	sort.Slice(a.Releases, func(i, j int) bool {
		ri, rj := a.Releases[i], a.Releases[j]
		if !ri.ReleasedAt.Equal(rj.ReleasedAt) {
			return ri.ReleasedAt.Before(rj.ReleasedAt)
		}
		return ri.VersionCode < rj.VersionCode
	})
}

// DiffClasses returns the names of classes added or changed in next relative
// to prev (changed = different method set or statement count). It backs the
// app-update localizer (§4.1.6) and the release-note ground truth (Fig. 6).
func DiffClasses(prev, next *Release) []string {
	if prev == nil || next == nil {
		return nil
	}
	prevSig := make(map[string]string, len(prev.Classes))
	for _, c := range prev.Classes {
		prevSig[c.Name] = classFingerprint(c)
	}
	var out []string
	for _, c := range next.Classes {
		sig, existed := prevSig[c.Name]
		if !existed || sig != classFingerprint(c) {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

func classFingerprint(c *Class) string {
	parts := make([]string, 0, len(c.Methods))
	for _, m := range c.Methods {
		parts = append(parts, fmt.Sprintf("%s/%d", m.Name, len(m.Statements)))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// SaveJSON writes the app (all releases) to a JSON file.
func (a *App) SaveJSON(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal app %s: %w", a.Package, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write app %s: %w", a.Package, err)
	}
	return nil
}

// LoadJSON reads an app from a JSON file written by SaveJSON.
func LoadJSON(path string) (*App, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read app: %w", err)
	}
	var a App
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("decode app: %w", err)
	}
	return &a, nil
}
