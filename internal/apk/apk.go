// Package apk defines the app intermediate representation that stands in
// for real APK files: the AndroidManifest (permissions, activities, intent
// filters), the Dex code (classes, methods, statements), layout resources,
// and string resources, across multiple released versions (§3.3.1: all
// versions of the APK with their release times).
//
// The static-analysis package (internal/apg) consumes this IR the way
// Vulhunter consumes real Dex bytecode: statements carry enough structure
// (definitions, uses, string constants, invocations) to build an AST, a
// method call graph, and a data dependency graph, and to run backward taint
// analysis.
package apk

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// App is a mobile application with its version history.
type App struct {
	// Package is the application id, e.g. "com.fsck.k9".
	Package string `json:"package"`
	// Name is the human-readable app name, e.g. "K-9 Mail".
	Name string `json:"name"`
	// Releases holds all released versions, sorted by release time.
	Releases []*Release `json:"releases"`
}

// Release is one released APK version.
type Release struct {
	// Version is the human version string, e.g. "5.2".
	Version string `json:"version"`
	// VersionCode is the monotonically increasing version code.
	VersionCode int `json:"versionCode"`
	// ReleasedAt is the publication time on the app market.
	ReleasedAt time.Time `json:"releasedAt"`
	// Manifest is the parsed AndroidManifest.xml.
	Manifest Manifest `json:"manifest"`
	// Classes are the Dex classes (third-party libraries excluded).
	Classes []*Class `json:"classes"`
	// Layouts are the layout resources.
	Layouts []Layout `json:"layouts"`
	// StringRes maps string resource ids to their values
	// (res/values/strings.xml).
	StringRes map[string]string `json:"stringRes"`
}

// Manifest models AndroidManifest.xml.
type Manifest struct {
	Package     string         `json:"package"`
	Permissions []string       `json:"permissions"`
	Activities  []ActivityDecl `json:"activities"`
}

// ActivityDecl declares an activity with its intent filters and layout.
type ActivityDecl struct {
	// Name is the fully qualified activity class name.
	Name string `json:"name"`
	// IntentFilters declare the intents the activity handles.
	IntentFilters []IntentFilter `json:"intentFilters"`
	// LayoutID names the layout resource the activity inflates
	// (the IR shortcut for setContentView).
	LayoutID string `json:"layoutId"`
}

// IntentFilter is one <intent-filter> element.
type IntentFilter struct {
	Actions    []string `json:"actions"`
	Categories []string `json:"categories"`
}

// Intent filter constants for the starting activity (§3.3.2).
const (
	ActionMain       = "android.intent.action.MAIN"
	CategoryLauncher = "android.intent.category.LAUNCHER"
)

// Class is a Dex class.
type Class struct {
	// Name is the fully qualified class name.
	Name string `json:"name"`
	// Super is the superclass name ("" for java.lang.Object).
	Super string `json:"super"`
	// Methods are the declared methods.
	Methods []*Method `json:"methods"`
}

// ShortName returns the class name without its package.
func (c *Class) ShortName() string {
	if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
		return c.Name[i+1:]
	}
	return c.Name
}

// Method is a Dex method with its statement list.
type Method struct {
	// Name is the method name, e.g. "getEmail" or "onCreate".
	Name string `json:"name"`
	// Class is the fully qualified name of the declaring class.
	Class string `json:"class"`
	// Statements is the straight-line statement list (the IR's AST body).
	Statements []Statement `json:"statements"`
}

// QualifiedName returns "class.method".
func (m *Method) QualifiedName() string { return m.Class + "." + m.Name }

// Op is a statement opcode.
type Op int

// Statement opcodes. The subset mirrors what the paper's extraction needs:
// string constants (error messages, URIs, intent actions), invocations
// (APIs, app methods), assignments (data dependencies), and throw/catch
// (exception localization).
const (
	OpConstString Op = iota + 1
	OpNew
	OpAssign
	OpInvoke
	OpThrow
	OpCatch
	OpReturn
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpConstString:
		return "const-string"
	case OpNew:
		return "new"
	case OpAssign:
		return "assign"
	case OpInvoke:
		return "invoke"
	case OpThrow:
		return "throw"
	case OpCatch:
		return "catch"
	case OpReturn:
		return "return"
	default:
		return "?"
	}
}

// Statement is one IR statement.
type Statement struct {
	// Op is the opcode.
	Op Op `json:"op"`
	// Def is the local variable the statement defines ("" if none).
	Def string `json:"def,omitempty"`
	// Uses are the local variables the statement reads.
	Uses []string `json:"uses,omitempty"`
	// Const is the string literal of a const-string statement.
	Const string `json:"const,omitempty"`
	// InvokeClass/InvokeMethod name the callee of an invoke statement.
	InvokeClass  string `json:"invokeClass,omitempty"`
	InvokeMethod string `json:"invokeMethod,omitempty"`
	// Exception is the exception type of a throw/catch statement.
	Exception string `json:"exception,omitempty"`
}

// IsInvoke reports whether the statement is an invocation.
func (s Statement) IsInvoke() bool { return s.Op == OpInvoke }

// Callee returns "class.method" for invoke statements.
func (s Statement) Callee() string { return s.InvokeClass + "." + s.InvokeMethod }

// Layout is a layout resource with its widget tree.
type Layout struct {
	// ID is the layout resource name, e.g. "account_setup_basics".
	ID string `json:"id"`
	// Root is the root widget.
	Root Widget `json:"root"`
}

// Widget is a GUI component in a layout tree.
type Widget struct {
	// Type is the widget class, e.g. "Button", "EditText", "LinearLayout".
	Type string `json:"type"`
	// ID is the android:id name, e.g. "show_password" ("" if unset).
	ID string `json:"id,omitempty"`
	// Text is the android:text value — either a literal or a
	// "@string/<id>" resource reference.
	Text string `json:"text,omitempty"`
	// Hint is the android:hint value, same encoding as Text.
	Hint string `json:"hint,omitempty"`
	// Children are the nested widgets.
	Children []Widget `json:"children,omitempty"`
}

// Walk visits the widget and all its descendants in depth-first order.
func (w *Widget) Walk(visit func(*Widget)) {
	visit(w)
	for i := range w.Children {
		w.Children[i].Walk(visit)
	}
}

// FindClass returns the class with the given fully qualified name.
func (r *Release) FindClass(name string) (*Class, bool) {
	for _, c := range r.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// ClassNames returns all class names, sorted.
func (r *Release) ClassNames() []string {
	out := make([]string, 0, len(r.Classes))
	for _, c := range r.Classes {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// StartingActivity returns the activity declared with MAIN/LAUNCHER
// (§3.3.2), or false when none is declared.
func (r *Release) StartingActivity() (ActivityDecl, bool) {
	for _, a := range r.Manifest.Activities {
		for _, f := range a.IntentFilters {
			hasMain, hasLauncher := false, false
			for _, act := range f.Actions {
				if act == ActionMain {
					hasMain = true
				}
			}
			for _, cat := range f.Categories {
				if cat == CategoryLauncher {
					hasLauncher = true
				}
			}
			if hasMain && hasLauncher {
				return a, true
			}
		}
	}
	return ActivityDecl{}, false
}

// ResolveString resolves a text attribute: a "@string/<id>" reference is
// looked up in the string resources; a literal is returned as-is.
func (r *Release) ResolveString(value string) string {
	if id, ok := strings.CutPrefix(value, "@string/"); ok {
		if v, ok := r.StringRes[id]; ok {
			return v
		}
		return ""
	}
	return value
}

// LayoutByID returns the layout with the given resource id.
func (r *Release) LayoutByID(id string) (Layout, bool) {
	for _, l := range r.Layouts {
		if l.ID == id {
			return l, true
		}
	}
	return Layout{}, false
}

// ReleaseBefore returns the newest release published strictly before t —
// the version a review published at t was written about (§3.3.1) — and the
// release before that one (for update-diff localization). ok is false when
// no release predates t.
func (a *App) ReleaseBefore(t time.Time) (current, previous *Release, ok bool) {
	for _, r := range a.Releases {
		if r.ReleasedAt.Before(t) {
			previous = current
			current = r
			continue
		}
		break
	}
	return current, previous, current != nil
}

// Latest returns the most recent release, or nil for an empty history.
func (a *App) Latest() *Release {
	if len(a.Releases) == 0 {
		return nil
	}
	return a.Releases[len(a.Releases)-1]
}

// SortReleases orders the release history by release time then version code.
func (a *App) SortReleases() {
	sort.Slice(a.Releases, func(i, j int) bool {
		ri, rj := a.Releases[i], a.Releases[j]
		if !ri.ReleasedAt.Equal(rj.ReleasedAt) {
			return ri.ReleasedAt.Before(rj.ReleasedAt)
		}
		return ri.VersionCode < rj.VersionCode
	})
}

// DiffClasses returns the names of classes added or changed in next relative
// to prev (changed = different method set or statement count). It backs the
// app-update localizer (§4.1.6) and the release-note ground truth (Fig. 6).
func DiffClasses(prev, next *Release) []string {
	if prev == nil || next == nil {
		return nil
	}
	prevSig := make(map[string]string, len(prev.Classes))
	for _, c := range prev.Classes {
		prevSig[c.Name] = classFingerprint(c)
	}
	var out []string
	for _, c := range next.Classes {
		sig, existed := prevSig[c.Name]
		if !existed || sig != classFingerprint(c) {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

func classFingerprint(c *Class) string {
	parts := make([]string, 0, len(c.Methods))
	for _, m := range c.Methods {
		parts = append(parts, fmt.Sprintf("%s/%d", m.Name, len(m.Statements)))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// SaveJSON writes the app (all releases) to a JSON file.
func (a *App) SaveJSON(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal app %s: %w", a.Package, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write app %s: %w", a.Package, err)
	}
	return nil
}

// LoadJSON reads an app from a JSON file written by SaveJSON.
func LoadJSON(path string) (*App, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read app: %w", err)
	}
	var a App
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("decode app: %w", err)
	}
	return &a, nil
}
