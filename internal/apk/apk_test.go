package apk

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func day(d int) time.Time {
	return time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, d)
}

func sampleApp() *App {
	b := NewBuilder("com.example.mail", "ExampleMail")
	b.Release("1.0", 1, day(0)).
		Permission("android.permission.INTERNET").
		LauncherActivity("com.example.mail.MainActivity", "main").
		Layout("main", Widget{Type: "LinearLayout", Children: []Widget{
			{Type: "Button", ID: "send_btn", Text: "@string/send_label"},
			{Type: "EditText", ID: "show_password", Hint: "password"},
		}}).
		StringRes("send_label", "Send")
	b.Class("com.example.mail.MainActivity").
		Method("onCreate",
			ConstString("s0", "welcome"),
			Invoke("", "android.widget.Toast", "makeText", "s0")).
		Method("sendMail",
			Invoke("", "java.net.URLConnection", "connect"))
	b.CopyRelease("1.1", 2, day(30))
	b.Class("com.example.mail.SyncService").
		Method("syncAll", Invoke("", "java.net.Socket", "connect"))
	return b.Build()
}

func TestStartingActivity(t *testing.T) {
	app := sampleApp()
	act, ok := app.Releases[0].StartingActivity()
	if !ok {
		t.Fatal("starting activity not found")
	}
	if act.Name != "com.example.mail.MainActivity" {
		t.Errorf("starting activity = %q", act.Name)
	}
}

func TestReleaseBefore(t *testing.T) {
	app := sampleApp()
	// A review written on day 10 maps to release 1.0 with no previous.
	cur, prev, ok := app.ReleaseBefore(day(10))
	if !ok || cur.Version != "1.0" || prev != nil {
		t.Errorf("day10: cur=%v prev=%v ok=%v", cur, prev, ok)
	}
	// A review written on day 40 maps to 1.1 with previous 1.0.
	cur, prev, ok = app.ReleaseBefore(day(40))
	if !ok || cur.Version != "1.1" || prev == nil || prev.Version != "1.0" {
		t.Errorf("day40: cur=%v prev=%v ok=%v", cur, prev, ok)
	}
	// A review before any release maps to nothing.
	if _, _, ok := app.ReleaseBefore(day(-5)); ok {
		t.Error("pre-release review should not map")
	}
}

func TestCopyReleaseIsDeep(t *testing.T) {
	app := sampleApp()
	r0, r1 := app.Releases[0], app.Releases[1]
	if len(r1.Classes) != len(r0.Classes)+1 {
		t.Fatalf("r1 classes = %d, want %d", len(r1.Classes), len(r0.Classes)+1)
	}
	// Mutating the copy must not affect the original.
	c1, _ := r1.FindClass("com.example.mail.MainActivity")
	c1.Methods[0].Statements = append(c1.Methods[0].Statements, Return())
	c0, _ := r0.FindClass("com.example.mail.MainActivity")
	if len(c0.Methods[0].Statements) == len(c1.Methods[0].Statements) {
		t.Error("CopyRelease shares statement slices")
	}
}

func TestDiffClasses(t *testing.T) {
	app := sampleApp()
	diff := DiffClasses(app.Releases[0], app.Releases[1])
	want := []string{"com.example.mail.SyncService"}
	if !reflect.DeepEqual(diff, want) {
		t.Errorf("DiffClasses = %v, want %v", diff, want)
	}
	if DiffClasses(nil, app.Releases[0]) != nil {
		t.Error("nil prev should diff to nil")
	}
}

func TestResolveString(t *testing.T) {
	r := sampleApp().Releases[0]
	if got := r.ResolveString("@string/send_label"); got != "Send" {
		t.Errorf("resolve @string/send_label = %q", got)
	}
	if got := r.ResolveString("literal text"); got != "literal text" {
		t.Errorf("literal resolve = %q", got)
	}
	if got := r.ResolveString("@string/missing"); got != "" {
		t.Errorf("missing resource resolve = %q", got)
	}
}

func TestWidgetWalk(t *testing.T) {
	layout, ok := sampleApp().Releases[0].LayoutByID("main")
	if !ok {
		t.Fatal("layout main missing")
	}
	var ids []string
	layout.Root.Walk(func(w *Widget) {
		if w.ID != "" {
			ids = append(ids, w.ID)
		}
	})
	want := []string{"send_btn", "show_password"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("walked ids = %v, want %v", ids, want)
	}
}

func TestSaveLoadJSON(t *testing.T) {
	app := sampleApp()
	path := filepath.Join(t.TempDir(), "app.json")
	if err := app.SaveJSON(path); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	loaded, err := LoadJSON(path)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if loaded.Package != app.Package || len(loaded.Releases) != len(app.Releases) {
		t.Errorf("roundtrip mismatch: %+v", loaded)
	}
	if loaded.Releases[1].Classes[0].Name != app.Releases[1].Classes[0].Name {
		t.Error("class roundtrip mismatch")
	}
}

func TestLoadJSONMissing(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestStatementConstructors(t *testing.T) {
	s := Invoke("r", "java.net.Socket", "connect", "a", "b")
	if !s.IsInvoke() || s.Callee() != "java.net.Socket.connect" {
		t.Errorf("invoke statement malformed: %+v", s)
	}
	if ConstString("s", "x").Op != OpConstString {
		t.Error("ConstString op wrong")
	}
	if Throw("IOException").Exception != "IOException" {
		t.Error("Throw exception wrong")
	}
	if got := Catch("E").Op.String(); got != "catch" {
		t.Errorf("op string = %q", got)
	}
}

func TestMethodQualifiedName(t *testing.T) {
	m := &Method{Name: "getEmail", Class: "com.fsck.k9.Account"}
	if m.QualifiedName() != "com.fsck.k9.Account.getEmail" {
		t.Errorf("QualifiedName = %q", m.QualifiedName())
	}
}

func TestClassShortName(t *testing.T) {
	c := &Class{Name: "com.example.app.ui.LoginActivity"}
	if c.ShortName() != "LoginActivity" {
		t.Errorf("ShortName = %q", c.ShortName())
	}
}

func TestRemoveClass(t *testing.T) {
	b := NewBuilder("p", "n")
	b.Release("1", 1, day(0))
	b.Class("p.A")
	b.Class("p.B")
	b.RemoveClass("p.A")
	app := b.Build()
	if names := app.Releases[0].ClassNames(); !reflect.DeepEqual(names, []string{"p.B"}) {
		t.Errorf("classes after removal = %v", names)
	}
}

func TestSortReleases(t *testing.T) {
	b := NewBuilder("p", "n")
	b.Release("2.0", 2, day(10))
	b.Release("1.0", 1, day(0))
	app := b.Build()
	if app.Releases[0].Version != "1.0" {
		t.Error("releases not sorted by time")
	}
	if app.Latest().Version != "2.0" {
		t.Errorf("Latest = %q", app.Latest().Version)
	}
}
