// Binary IR codec. The JSON form (SaveJSON/LoadJSON) stays the interchange
// format for humans and generators; this compact little-endian encoding is
// what snapshots embed, because decoding a ~100 KB app must fit in the
// sub-millisecond core.LoadSnapshot budget where encoding/json does not.
//
// The encoding is deterministic: slices keep their order and the one map
// (StringRes) is emitted in sorted key order, so identical apps produce
// identical bytes — the property the CI snapshot determinism gate rests on.
// Release times are encoded as RFC 3339 nanosecond strings, matching the
// JSON codec's wire semantics.
package apk

import (
	"fmt"
	"sort"
	"time"

	"reviewsolver/internal/snapfile"
)

// AppendBinary encodes the app into enc.
func (a *App) AppendBinary(e *snapfile.Enc) {
	e.Str(a.Package)
	e.Str(a.Name)
	e.U32(uint32(len(a.Releases)))
	for _, r := range a.Releases {
		r.appendBinary(e)
	}
}

// DecodeBinary decodes an app encoded by AppendBinary. Corruption surfaces
// as a typed snapfile error, never a panic.
func DecodeBinary(d *snapfile.Dec) (*App, error) {
	a := &App{Package: d.Str(), Name: d.Str()}
	n := d.Count(8)
	if n > 0 {
		a.Releases = make([]*Release, 0, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		r, err := decodeRelease(d)
		if err != nil {
			return nil, err
		}
		a.Releases = append(a.Releases, r)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("decode app: %w", err)
	}
	return a, nil
}

func (r *Release) appendBinary(e *snapfile.Enc) {
	e.Str(r.Version)
	e.I64(int64(r.VersionCode))
	e.Str(r.ReleasedAt.Format(time.RFC3339Nano))
	e.Str(r.Manifest.Package)
	e.StrSlice(r.Manifest.Permissions)
	e.U32(uint32(len(r.Manifest.Activities)))
	for _, a := range r.Manifest.Activities {
		e.Str(a.Name)
		e.Str(a.LayoutID)
		e.U32(uint32(len(a.IntentFilters)))
		for _, f := range a.IntentFilters {
			e.StrSlice(f.Actions)
			e.StrSlice(f.Categories)
		}
	}
	// Arena totals: the decoder allocates one backing array per kind and
	// carves it up, instead of one allocation per method and statement.
	methods, stmts, uses := 0, 0, 0
	for _, c := range r.Classes {
		methods += len(c.Methods)
		for _, m := range c.Methods {
			stmts += len(m.Statements)
			for i := range m.Statements {
				uses += len(m.Statements[i].Uses)
			}
		}
	}
	e.U32(uint32(methods))
	e.U32(uint32(stmts))
	e.U32(uint32(uses))
	e.U32(uint32(len(r.Classes)))
	for _, c := range r.Classes {
		e.Str(c.Name)
		e.Str(c.Super)
		e.U32(uint32(len(c.Methods)))
		for _, m := range c.Methods {
			e.Str(m.Name)
			e.Str(m.Class)
			e.U32(uint32(len(m.Statements)))
			for i := range m.Statements {
				st := &m.Statements[i]
				e.U8(uint8(st.Op))
				e.Str(st.Def)
				e.StrSlice(st.Uses)
				e.Str(st.Const)
				e.Str(st.InvokeClass)
				e.Str(st.InvokeMethod)
				e.Str(st.Exception)
			}
		}
	}
	e.U32(uint32(len(r.Layouts)))
	for _, l := range r.Layouts {
		e.Str(l.ID)
		appendWidget(e, &l.Root)
	}
	keys := make([]string, 0, len(r.StringRes))
	for k := range r.StringRes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.Str(r.StringRes[k])
	}
}

func decodeRelease(d *snapfile.Dec) (*Release, error) {
	r := &Release{Version: d.Str(), VersionCode: int(d.I64())}
	if ts := d.Str(); d.Err() == nil {
		t, err := time.Parse(time.RFC3339Nano, ts)
		if err != nil {
			return nil, fmt.Errorf("%w: release time %q: %v", snapfile.ErrCorrupt, ts, err)
		}
		r.ReleasedAt = t
	}
	r.Manifest.Package = d.Str()
	r.Manifest.Permissions = d.StrSlice()
	nActs := d.Count(8)
	if nActs > 0 {
		r.Manifest.Activities = make([]ActivityDecl, 0, nActs)
	}
	for i := 0; i < nActs && d.Err() == nil; i++ {
		a := ActivityDecl{Name: d.Str(), LayoutID: d.Str()}
		for j, nf := 0, d.Count(8); j < nf && d.Err() == nil; j++ {
			a.IntentFilters = append(a.IntentFilters, IntentFilter{
				Actions:    d.StrSlice(),
				Categories: d.StrSlice(),
			})
		}
		r.Manifest.Activities = append(r.Manifest.Activities, a)
	}
	// Arena decode: the header's totals size one backing array per kind;
	// classes, methods, statements and use-lists are carved out of them, so
	// the whole class table costs a handful of allocations. The cursors are
	// bounds-checked against the declared totals (a corrupt per-class count
	// cannot walk past an arena) and must land exactly at the end.
	totalMethods := d.Count(12)
	totalStmts := d.Count(25)
	totalUses := d.Count(4)
	nClasses := d.Count(8)
	classArena := make([]Class, nClasses)
	methodArena := make([]Method, totalMethods)
	stmtArena := make([]Statement, totalStmts)
	useArena := snapfile.NewStrArena(totalUses, 0)
	mu, su := 0, 0
	if nClasses > 0 {
		r.Classes = make([]*Class, 0, nClasses)
	}
	for i := 0; i < nClasses && d.Err() == nil; i++ {
		c := &classArena[i]
		c.Name, c.Super = d.Str(), d.Str()
		nm := d.Count(8)
		if mu+nm > totalMethods {
			return nil, fmt.Errorf("%w: class methods exceed declared total %d", snapfile.ErrCorrupt, totalMethods)
		}
		if nm > 0 {
			c.Methods = make([]*Method, 0, nm)
		}
		for j := 0; j < nm && d.Err() == nil; j++ {
			m := &methodArena[mu]
			mu++
			m.Name, m.Class = d.Str(), d.Str()
			ns := d.Count(10)
			if su+ns > totalStmts {
				return nil, fmt.Errorf("%w: method statements exceed declared total %d", snapfile.ErrCorrupt, totalStmts)
			}
			stmts := stmtArena[su : su+ns : su+ns]
			su += ns
			for k := 0; k < ns && d.Err() == nil; k++ {
				st := &stmts[k]
				st.Op = Op(d.U8())
				st.Def = d.Str()
				st.Uses = d.StrSliceIn(useArena)
				st.Const = d.Str()
				st.InvokeClass = d.Str()
				st.InvokeMethod = d.Str()
				st.Exception = d.Str()
				if d.Err() == nil && (st.Op < OpConstString || st.Op > OpReturn) {
					return nil, fmt.Errorf("%w: statement opcode %d", snapfile.ErrCorrupt, st.Op)
				}
			}
			m.Statements = stmts
			c.Methods = append(c.Methods, m)
		}
		r.Classes = append(r.Classes, c)
	}
	if d.Err() == nil && (mu != totalMethods || su != totalStmts || !useArena.Drained()) {
		return nil, fmt.Errorf("%w: declared arena totals not consumed (%d/%d methods, %d/%d statements, %d unused uses)",
			snapfile.ErrCorrupt, mu, totalMethods, su, totalStmts, len(useArena.Elems))
	}
	nLayouts := d.Count(8)
	if nLayouts > 0 {
		r.Layouts = make([]Layout, 0, nLayouts)
	}
	for i := 0; i < nLayouts && d.Err() == nil; i++ {
		l := Layout{ID: d.Str()}
		w, err := decodeWidget(d, 0)
		if err != nil {
			return nil, err
		}
		l.Root = w
		r.Layouts = append(r.Layouts, l)
	}
	if n := d.Count(8); n > 0 && d.Err() == nil {
		r.StringRes = make(map[string]string, n)
		for i := 0; i < n && d.Err() == nil; i++ {
			k := d.Str()
			r.StringRes[k] = d.Str()
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// maxWidgetDepth bounds layout-tree recursion so corrupt nesting counts
// cannot blow the stack.
const maxWidgetDepth = 64

func appendWidget(e *snapfile.Enc, w *Widget) {
	e.Str(w.Type)
	e.Str(w.ID)
	e.Str(w.Text)
	e.Str(w.Hint)
	e.U32(uint32(len(w.Children)))
	for i := range w.Children {
		appendWidget(e, &w.Children[i])
	}
}

func decodeWidget(d *snapfile.Dec, depth int) (Widget, error) {
	if depth > maxWidgetDepth {
		return Widget{}, fmt.Errorf("%w: widget tree deeper than %d", snapfile.ErrCorrupt, maxWidgetDepth)
	}
	w := Widget{Type: d.Str(), ID: d.Str(), Text: d.Str(), Hint: d.Str()}
	n := d.Count(8)
	if n > 0 && d.Err() == nil {
		w.Children = make([]Widget, 0, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		c, err := decodeWidget(d, depth+1)
		if err != nil {
			return Widget{}, err
		}
		w.Children = append(w.Children, c)
	}
	if err := d.Err(); err != nil {
		return Widget{}, err
	}
	return w, nil
}
