package apk_test

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

func encodeApp(a *apk.App) []byte {
	e := snapfile.NewEnc(1 << 16)
	a.AppendBinary(e)
	return e.Bytes()
}

// appsEqual compares two apps field by field via their JSON form, which
// covers every IR field while ignoring the unexported lazy lookup index.
func appsEqual(a, b *apk.App) bool {
	aj, err1 := json.Marshal(a)
	bj, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(aj) == string(bj)
}

func TestBinaryRoundTrip(t *testing.T) {
	app := synth.GenerateSample(3).App
	raw := encodeApp(app)
	got, err := apk.DecodeBinary(snapfile.NewDec(raw))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !appsEqual(app, got) {
		t.Fatal("decoded app differs from original")
	}
	// Deterministic: re-encoding the decoded app reproduces the bytes, and
	// encoding the original twice agrees.
	if string(encodeApp(got)) != string(raw) {
		t.Fatal("encode(decode(x)) bytes differ from encode(x)")
	}
	if string(encodeApp(app)) != string(raw) {
		t.Fatal("two encodes of the same app differ")
	}
}

func TestBinaryRoundTripEdgeCases(t *testing.T) {
	app := &apk.App{
		Package: "com.example",
		Name:    "Example",
		Releases: []*apk.Release{{
			Version:     "1.0",
			VersionCode: 1,
			ReleasedAt:  time.Date(2015, 4, 1, 12, 30, 0, 987654321, time.UTC),
			Manifest: apk.Manifest{
				Package: "com.example",
				Activities: []apk.ActivityDecl{{
					Name:          "com.example.Main",
					IntentFilters: []apk.IntentFilter{{Actions: []string{apk.ActionMain}}},
				}},
			},
			Classes: []*apk.Class{{
				Name: "com.example.Main",
				Methods: []*apk.Method{{
					Name:  "onCreate",
					Class: "com.example.Main",
					Statements: []apk.Statement{
						{Op: apk.OpConstString, Def: "s", Const: "hi"},
						{Op: apk.OpInvoke, Uses: []string{"s"}, InvokeClass: "android.util.Log", InvokeMethod: "d"},
					},
				}},
			}},
			Layouts: []apk.Layout{{
				ID: "main",
				Root: apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
					{Type: "Button", ID: "ok_btn", Text: "@string/ok"},
				}},
			}},
			StringRes: map[string]string{"ok": "OK", "cancel": "Cancel"},
		}},
	}
	raw := encodeApp(app)
	got, err := apk.DecodeBinary(snapfile.NewDec(raw))
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !appsEqual(app, got) {
		t.Fatal("decoded app differs from original")
	}
	// Nanosecond release times survive (RFC 3339 nano encoding).
	if !got.Releases[0].ReleasedAt.Equal(app.Releases[0].ReleasedAt) {
		t.Fatal("release time lost precision")
	}
}

func TestBinaryDecodeCorrupt(t *testing.T) {
	app := synth.GenerateSample(3).App
	raw := encodeApp(app)
	// Package and Name are length-prefixed strings; the release count
	// follows them.
	countOff := 4 + len(app.Package) + 4 + len(app.Name)
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad release count", func(b []byte) []byte {
			b[countOff] = 0xff
			b[countOff+1] = 0xff
			b[countOff+2] = 0xff
			b[countOff+3] = 0x7f
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := apk.DecodeBinary(snapfile.NewDec(tc.mutate(append([]byte(nil), raw...))))
			if err == nil {
				t.Fatal("DecodeBinary succeeded on corrupt input")
			}
			if !errors.Is(err, snapfile.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
	t.Run("bad opcode", func(t *testing.T) {
		app := &apk.App{Package: "p", Name: "n", Releases: []*apk.Release{{
			Version: "1", ReleasedAt: time.Unix(0, 0).UTC(),
			Classes: []*apk.Class{{Name: "C", Methods: []*apk.Method{{
				Name: "m", Class: "C", Statements: []apk.Statement{{Op: apk.OpReturn}},
			}}}},
		}}}
		raw := encodeApp(app)
		// The opcode byte is the first byte of the statement record; find it
		// by encoding with a poisoned op and checking the decoder rejects it.
		app.Releases[0].Classes[0].Methods[0].Statements[0].Op = apk.Op(99)
		bad := encodeApp(app)
		if len(bad) != len(raw) {
			t.Fatal("opcode change altered length")
		}
		_, err := apk.DecodeBinary(snapfile.NewDec(bad))
		if !errors.Is(err, snapfile.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}
