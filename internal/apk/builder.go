package apk

import "time"

// Builder constructs App IRs fluently; the synthetic-app generator and the
// tests use it to assemble realistic release histories.
type Builder struct {
	app *App
	cur *Release
}

// NewBuilder starts an app.
func NewBuilder(pkg, name string) *Builder {
	return &Builder{app: &App{Package: pkg, Name: name}}
}

// Release starts a new release; subsequent class/layout calls apply to it.
func (b *Builder) Release(version string, code int, releasedAt time.Time) *Builder {
	b.cur = &Release{
		Version:     version,
		VersionCode: code,
		ReleasedAt:  releasedAt,
		Manifest:    Manifest{Package: b.app.Package},
		StringRes:   make(map[string]string),
	}
	b.app.Releases = append(b.app.Releases, b.cur)
	return b
}

// Permission adds a manifest permission to the current release.
func (b *Builder) Permission(perms ...string) *Builder {
	b.cur.Manifest.Permissions = append(b.cur.Manifest.Permissions, perms...)
	return b
}

// Activity declares an activity in the current release's manifest.
func (b *Builder) Activity(name, layoutID string, filters ...IntentFilter) *Builder {
	b.cur.Manifest.Activities = append(b.cur.Manifest.Activities, ActivityDecl{
		Name:          name,
		LayoutID:      layoutID,
		IntentFilters: filters,
	})
	return b
}

// LauncherActivity declares the starting activity.
func (b *Builder) LauncherActivity(name, layoutID string) *Builder {
	return b.Activity(name, layoutID, IntentFilter{
		Actions:    []string{ActionMain},
		Categories: []string{CategoryLauncher},
	})
}

// Class adds a class to the current release and returns a ClassBuilder.
func (b *Builder) Class(name string) *ClassBuilder {
	c := &Class{Name: name}
	b.cur.Classes = append(b.cur.Classes, c)
	return &ClassBuilder{b: b, c: c}
}

// Layout adds a layout resource to the current release.
func (b *Builder) Layout(id string, root Widget) *Builder {
	b.cur.Layouts = append(b.cur.Layouts, Layout{ID: id, Root: root})
	return b
}

// StringRes adds a string resource to the current release.
func (b *Builder) StringRes(id, value string) *Builder {
	b.cur.StringRes[id] = value
	return b
}

// CopyRelease clones the previous release as the starting point of a new
// one — the normal evolution pattern where most classes carry over.
func (b *Builder) CopyRelease(version string, code int, releasedAt time.Time) *Builder {
	if b.cur == nil {
		return b.Release(version, code, releasedAt)
	}
	prev := b.cur
	b.Release(version, code, releasedAt)
	b.cur.Manifest = Manifest{
		Package:     prev.Manifest.Package,
		Permissions: append([]string(nil), prev.Manifest.Permissions...),
		Activities:  append([]ActivityDecl(nil), prev.Manifest.Activities...),
	}
	for _, c := range prev.Classes {
		clone := &Class{Name: c.Name, Super: c.Super}
		for _, m := range c.Methods {
			mm := &Method{Name: m.Name, Class: m.Class,
				Statements: append([]Statement(nil), m.Statements...)}
			clone.Methods = append(clone.Methods, mm)
		}
		b.cur.Classes = append(b.cur.Classes, clone)
	}
	b.cur.Layouts = append([]Layout(nil), prev.Layouts...)
	for k, v := range prev.StringRes {
		b.cur.StringRes[k] = v
	}
	return b
}

// RemoveClass deletes a class from the current release (app evolution).
func (b *Builder) RemoveClass(name string) *Builder {
	classes := b.cur.Classes[:0]
	for _, c := range b.cur.Classes {
		if c.Name != name {
			classes = append(classes, c)
		}
	}
	b.cur.Classes = classes
	return b
}

// CurrentRelease exposes the release being built.
func (b *Builder) CurrentRelease() *Release { return b.cur }

// Build finalizes and returns the app with releases sorted.
func (b *Builder) Build() *App {
	b.app.SortReleases()
	return b.app
}

// ClassBuilder adds methods to a class.
type ClassBuilder struct {
	b *Builder
	c *Class
}

// Super sets the superclass.
func (cb *ClassBuilder) Super(name string) *ClassBuilder {
	cb.c.Super = name
	return cb
}

// Method adds a method with the given statements.
func (cb *ClassBuilder) Method(name string, stmts ...Statement) *ClassBuilder {
	cb.c.Methods = append(cb.c.Methods, &Method{
		Name:       name,
		Class:      cb.c.Name,
		Statements: stmts,
	})
	return cb
}

// Done returns to the app builder.
func (cb *ClassBuilder) Done() *Builder { return cb.b }

// Statement constructors keep the IR terse at build sites.

// ConstString defines a string literal: def = "text".
func ConstString(def, text string) Statement {
	return Statement{Op: OpConstString, Def: def, Const: text}
}

// NewObj allocates an object of the given class: def = new class().
func NewObj(def, class string) Statement {
	return Statement{Op: OpNew, Def: def, InvokeClass: class}
}

// Assign copies a value: def = use.
func Assign(def, use string) Statement {
	return Statement{Op: OpAssign, Def: def, Uses: []string{use}}
}

// Invoke calls class.method(uses...) with an optional result local.
func Invoke(def, class, method string, uses ...string) Statement {
	return Statement{Op: OpInvoke, Def: def, InvokeClass: class,
		InvokeMethod: method, Uses: uses}
}

// Throw raises an exception type.
func Throw(exception string) Statement {
	return Statement{Op: OpThrow, Exception: exception}
}

// Catch handles an exception type.
func Catch(exception string) Statement {
	return Statement{Op: OpCatch, Exception: exception}
}

// Return exits the method, optionally using a local.
func Return(uses ...string) Statement {
	return Statement{Op: OpReturn, Uses: uses}
}
