package apk

import (
	"hash/fnv"
	"sort"
)

// This file implements the structural release differ behind incremental
// snapshot rebuilds (core.ApplyDelta) and change-aware ranking
// (core.WithChangeAwareRank). Entities are keyed by stable identity —
// classes and layouts by name, methods by name within their class,
// activities by declared class name — and compared by content fingerprint,
// so the added/removed/changed sets are deterministic for a given pair of
// releases regardless of build order.

// ClassDelta details how one changed class differs between two releases.
type ClassDelta struct {
	// Name is the fully qualified class name.
	Name string
	// AddedMethods/RemovedMethods/ChangedMethods are method names, sorted.
	// A method is "changed" when its statement list differs by content
	// fingerprint (opcode, defs, uses, constants, callee, exception).
	AddedMethods   []string
	RemovedMethods []string
	ChangedMethods []string
}

// ReleaseDelta is the structural diff between two releases of one app.
// Prev may be nil (first release): every class, layout and activity of
// Next is then reported as added.
type ReleaseDelta struct {
	// Prev and Next are the compared releases.
	Prev, Next *Release

	// AddedClasses/RemovedClasses/ChangedClasses are class names, sorted.
	// "Changed" means the class exists in both releases with a different
	// content fingerprint (superclass, method set, or statement bodies).
	AddedClasses   []string
	RemovedClasses []string
	ChangedClasses []string
	// ClassDetails holds the per-method breakdown of each changed class,
	// sorted by class name.
	ClassDetails []ClassDelta

	// PermissionsChanged reports a difference in the manifest permission
	// list (order-sensitive: extraction consumes it in declaration order).
	PermissionsChanged bool
	// ActivitiesAdded/Removed/Changed are activity class names whose
	// manifest declaration (layout id, intent filters) appeared,
	// disappeared, or changed; sorted.
	ActivitiesAdded   []string
	ActivitiesRemoved []string
	ActivitiesChanged []string
	// LayoutsAdded/Removed/Changed are layout resource ids, sorted;
	// "changed" compares the whole widget tree.
	LayoutsAdded   []string
	LayoutsRemoved []string
	LayoutsChanged []string
	// StringResChanged reports any difference in the string-resource map.
	StringResChanged bool

	touched    map[string]struct{} // added ∪ changed class names
	actTouched map[string]struct{} // added ∪ removed ∪ changed activities
	layTouched map[string]struct{} // added ∪ removed ∪ changed layouts
}

// Identical reports whether the diff found no difference at all.
func (d *ReleaseDelta) Identical() bool {
	return len(d.AddedClasses) == 0 && len(d.RemovedClasses) == 0 &&
		len(d.ChangedClasses) == 0 && !d.PermissionsChanged &&
		len(d.actTouched) == 0 && len(d.layTouched) == 0 &&
		!d.StringResChanged
}

// ClassTouched reports whether the named class was added or changed in
// Next — i.e. its derived artifacts must be recomputed.
func (d *ReleaseDelta) ClassTouched(name string) bool {
	_, ok := d.touched[name]
	return ok
}

// TouchedClasses returns the sorted union of added and changed classes —
// the classes a change-aware ranker boosts and an incremental rebuild
// recomputes.
func (d *ReleaseDelta) TouchedClasses() []string {
	out := make([]string, 0, len(d.touched))
	for name := range d.touched {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ActivityTouched reports whether the activity's manifest declaration was
// added, removed, or changed.
func (d *ReleaseDelta) ActivityTouched(name string) bool {
	_, ok := d.actTouched[name]
	return ok
}

// LayoutTouched reports whether the layout resource was added, removed, or
// changed.
func (d *ReleaseDelta) LayoutTouched(id string) bool {
	_, ok := d.layTouched[id]
	return ok
}

// DiffReleases computes the structural delta from prev to next. Both
// releases must belong to the same app; prev may be nil.
func DiffReleases(prev, next *Release) *ReleaseDelta {
	d := &ReleaseDelta{
		Prev:       prev,
		Next:       next,
		touched:    make(map[string]struct{}),
		actTouched: make(map[string]struct{}),
		layTouched: make(map[string]struct{}),
	}
	if prev == nil {
		for _, c := range next.Classes {
			d.AddedClasses = append(d.AddedClasses, c.Name)
			d.touched[c.Name] = struct{}{}
		}
		sort.Strings(d.AddedClasses)
		for _, a := range next.Manifest.Activities {
			d.ActivitiesAdded = append(d.ActivitiesAdded, a.Name)
			d.actTouched[a.Name] = struct{}{}
		}
		sort.Strings(d.ActivitiesAdded)
		for _, l := range next.Layouts {
			d.LayoutsAdded = append(d.LayoutsAdded, l.ID)
			d.layTouched[l.ID] = struct{}{}
		}
		sort.Strings(d.LayoutsAdded)
		d.PermissionsChanged = len(next.Manifest.Permissions) > 0
		d.StringResChanged = len(next.StringRes) > 0
		return d
	}

	d.diffClasses(prev, next)
	d.diffManifest(prev, next)
	d.diffLayouts(prev, next)
	d.StringResChanged = !stringMapEqual(prev.StringRes, next.StringRes)
	return d
}

func (d *ReleaseDelta) diffClasses(prev, next *Release) {
	pIdx, nIdx := prev.index(), next.index()
	prevIdx := pIdx.byName
	nextIdx := nIdx.byName
	for _, c := range next.Classes {
		pc, existed := prevIdx[c.Name]
		if !existed {
			d.AddedClasses = append(d.AddedClasses, c.Name)
			d.touched[c.Name] = struct{}{}
			continue
		}
		if pIdx.classFP(pc) != nIdx.classFP(c) {
			d.ChangedClasses = append(d.ChangedClasses, c.Name)
			d.touched[c.Name] = struct{}{}
			d.ClassDetails = append(d.ClassDetails, diffClass(pc, c))
		}
	}
	for _, c := range prev.Classes {
		if _, stays := nextIdx[c.Name]; !stays {
			d.RemovedClasses = append(d.RemovedClasses, c.Name)
		}
	}
	sort.Strings(d.AddedClasses)
	sort.Strings(d.RemovedClasses)
	sort.Strings(d.ChangedClasses)
	sort.Slice(d.ClassDetails, func(i, j int) bool {
		return d.ClassDetails[i].Name < d.ClassDetails[j].Name
	})
}

func diffClass(prev, next *Class) ClassDelta {
	cd := ClassDelta{Name: next.Name}
	prevFP := make(map[string]uint64, len(prev.Methods))
	for _, m := range prev.Methods {
		prevFP[m.Name] = methodFingerprint(m)
	}
	seen := make(map[string]struct{}, len(next.Methods))
	for _, m := range next.Methods {
		seen[m.Name] = struct{}{}
		fp, existed := prevFP[m.Name]
		switch {
		case !existed:
			cd.AddedMethods = append(cd.AddedMethods, m.Name)
		case fp != methodFingerprint(m):
			cd.ChangedMethods = append(cd.ChangedMethods, m.Name)
		}
	}
	for _, m := range prev.Methods {
		if _, stays := seen[m.Name]; !stays {
			cd.RemovedMethods = append(cd.RemovedMethods, m.Name)
		}
	}
	sort.Strings(cd.AddedMethods)
	sort.Strings(cd.RemovedMethods)
	sort.Strings(cd.ChangedMethods)
	return cd
}

func (d *ReleaseDelta) diffManifest(prev, next *Release) {
	d.PermissionsChanged = !stringSliceEqual(
		prev.Manifest.Permissions, next.Manifest.Permissions)

	prevActs, prevDup := activityMap(prev.Manifest.Activities)
	nextActs, nextDup := activityMap(next.Manifest.Activities)
	for name, decl := range nextActs {
		pd, existed := prevActs[name]
		switch {
		case !existed:
			d.ActivitiesAdded = append(d.ActivitiesAdded, name)
			d.actTouched[name] = struct{}{}
		case !activityDeclEqual(pd, decl) || prevDup[name] || nextDup[name]:
			// Duplicate declarations of one name are compared
			// conservatively: always treated as changed.
			d.ActivitiesChanged = append(d.ActivitiesChanged, name)
			d.actTouched[name] = struct{}{}
		}
	}
	for name := range prevActs {
		if _, stays := nextActs[name]; !stays {
			d.ActivitiesRemoved = append(d.ActivitiesRemoved, name)
			d.actTouched[name] = struct{}{}
		}
	}
	sort.Strings(d.ActivitiesAdded)
	sort.Strings(d.ActivitiesRemoved)
	sort.Strings(d.ActivitiesChanged)
}

func (d *ReleaseDelta) diffLayouts(prev, next *Release) {
	prevIdx := prev.index().layouts
	nextIdx := next.index().layouts
	for id, ni := range nextIdx {
		pi, existed := prevIdx[id]
		switch {
		case !existed:
			d.LayoutsAdded = append(d.LayoutsAdded, id)
			d.layTouched[id] = struct{}{}
		case !widgetEqual(&prev.Layouts[pi].Root, &next.Layouts[ni].Root):
			d.LayoutsChanged = append(d.LayoutsChanged, id)
			d.layTouched[id] = struct{}{}
		}
	}
	for id := range prevIdx {
		if _, stays := nextIdx[id]; !stays {
			d.LayoutsRemoved = append(d.LayoutsRemoved, id)
			d.layTouched[id] = struct{}{}
		}
	}
	sort.Strings(d.LayoutsAdded)
	sort.Strings(d.LayoutsRemoved)
	sort.Strings(d.LayoutsChanged)
}

func activityMap(decls []ActivityDecl) (map[string]ActivityDecl, map[string]bool) {
	m := make(map[string]ActivityDecl, len(decls))
	dup := make(map[string]bool)
	for _, a := range decls {
		if _, seen := m[a.Name]; seen {
			dup[a.Name] = true
			continue
		}
		m[a.Name] = a
	}
	return m, dup
}

func activityDeclEqual(a, b ActivityDecl) bool {
	if a.Name != b.Name || a.LayoutID != b.LayoutID ||
		len(a.IntentFilters) != len(b.IntentFilters) {
		return false
	}
	for i := range a.IntentFilters {
		if !stringSliceEqual(a.IntentFilters[i].Actions, b.IntentFilters[i].Actions) ||
			!stringSliceEqual(a.IntentFilters[i].Categories, b.IntentFilters[i].Categories) {
			return false
		}
	}
	return true
}

func widgetEqual(a, b *Widget) bool {
	if a.Type != b.Type || a.ID != b.ID || a.Text != b.Text ||
		a.Hint != b.Hint || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !widgetEqual(&a.Children[i], &b.Children[i]) {
			return false
		}
	}
	return true
}

func stringSliceEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func stringMapEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// methodFingerprint hashes a method's statement list by content: opcode,
// defined/used locals, string constant, callee, and exception type, each
// field-separated so shifted content cannot collide with itself.
func methodFingerprint(m *Method) uint64 {
	h := fnv.New64a()
	var sep = [1]byte{0x1f}
	var buf [1]byte
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write(sep[:])
	}
	for _, st := range m.Statements {
		buf[0] = byte(st.Op)
		h.Write(buf[:])
		ws(st.Def)
		for _, u := range st.Uses {
			ws(u)
		}
		ws("")
		ws(st.Const)
		ws(st.InvokeClass)
		ws(st.InvokeMethod)
		ws(st.Exception)
	}
	return h.Sum64()
}

// classContentFingerprint hashes a class's superclass and methods in
// declaration order. Method order is deliberately order-sensitive: the
// static-analysis graph resolves duplicate method names positionally, so a
// reorder is treated as a change.
func classContentFingerprint(c *Class) uint64 {
	h := fnv.New64a()
	var sep = [1]byte{0x1e}
	h.Write([]byte(c.Super))
	h.Write(sep[:])
	var buf [8]byte
	for _, m := range c.Methods {
		h.Write([]byte(m.Name))
		h.Write(sep[:])
		fp := methodFingerprint(m)
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
