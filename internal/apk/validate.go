package apk

import (
	"fmt"
	"strings"
)

// ValidationIssue describes one inconsistency found in an app IR.
type ValidationIssue struct {
	// Release is the version the issue was found in.
	Release string
	// Message describes the problem.
	Message string
}

func (i ValidationIssue) String() string {
	return fmt.Sprintf("%s: %s", i.Release, i.Message)
}

// Validate checks the structural invariants of an app IR: unique class
// names per release, activity declarations backed by classes, layout
// references that resolve, string-resource references that resolve, and
// method ownership consistency. It returns all issues found (empty for a
// well-formed app). Loaders call it after LoadJSON; generators use it as a
// self-check.
func (a *App) Validate() []ValidationIssue {
	var issues []ValidationIssue
	add := func(release, format string, args ...interface{}) {
		issues = append(issues, ValidationIssue{
			Release: release,
			Message: fmt.Sprintf(format, args...),
		})
	}
	if a.Package == "" {
		add("-", "app has no package id")
	}
	for _, r := range a.Releases {
		seen := make(map[string]struct{}, len(r.Classes))
		for _, c := range r.Classes {
			if _, dup := seen[c.Name]; dup {
				add(r.Version, "duplicate class %s", c.Name)
			}
			seen[c.Name] = struct{}{}
			for _, m := range c.Methods {
				if m.Class != c.Name {
					add(r.Version, "method %s claims class %s but is declared in %s",
						m.Name, m.Class, c.Name)
				}
			}
		}
		layouts := make(map[string]struct{}, len(r.Layouts))
		for _, l := range r.Layouts {
			layouts[l.ID] = struct{}{}
		}
		for _, act := range r.Manifest.Activities {
			if _, ok := seen[act.Name]; !ok {
				add(r.Version, "activity %s has no class", act.Name)
			}
			if act.LayoutID != "" {
				if _, ok := layouts[act.LayoutID]; !ok {
					add(r.Version, "activity %s references missing layout %s",
						act.Name, act.LayoutID)
				}
			}
		}
		// String-resource references in widgets must resolve.
		for _, l := range r.Layouts {
			l.Root.Walk(func(w *Widget) {
				for _, ref := range []string{w.Text, w.Hint} {
					id, ok := strings.CutPrefix(ref, "@string/")
					if !ok {
						continue
					}
					if _, exists := r.StringRes[id]; !exists {
						add(r.Version, "layout %s references missing string resource %q", l.ID, id)
					}
				}
			})
		}
	}
	return issues
}
