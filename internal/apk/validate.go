package apk

import (
	"fmt"
	"strings"
)

// ValidationIssue describes one inconsistency found in an app IR.
type ValidationIssue struct {
	// Release is the version the issue was found in.
	Release string
	// Message describes the problem.
	Message string
}

func (i ValidationIssue) String() string {
	return fmt.Sprintf("%s: %s", i.Release, i.Message)
}

// ReleaseOrderError reports that App.Releases is not sorted the way
// ReleaseBefore (and everything downstream of it) assumes: release times
// non-decreasing and version codes strictly increasing.
type ReleaseOrderError struct {
	// Package is the app the violation was found in.
	Package string
	// Index is the position of the out-of-order release (the second of the
	// offending pair).
	Index int
	// Prev and Next are the version strings of the offending pair.
	Prev, Next string
	// Reason says which invariant broke.
	Reason string
}

func (e *ReleaseOrderError) Error() string {
	return fmt.Sprintf("app %s: releases out of order at index %d (%s -> %s): %s",
		e.Package, e.Index, e.Prev, e.Next, e.Reason)
}

// CheckReleaseOrder verifies the release-history ordering invariant that
// ReleaseBefore silently assumes: ReleasedAt non-decreasing and
// VersionCode strictly increasing. It returns a *ReleaseOrderError for the
// first violation, or nil for a well-ordered history.
func (a *App) CheckReleaseOrder() error {
	for i := 1; i < len(a.Releases); i++ {
		prev, next := a.Releases[i-1], a.Releases[i]
		if next.ReleasedAt.Before(prev.ReleasedAt) {
			return &ReleaseOrderError{
				Package: a.Package, Index: i,
				Prev: prev.Version, Next: next.Version,
				Reason: fmt.Sprintf("released %s before predecessor's %s",
					next.ReleasedAt.Format("2006-01-02"),
					prev.ReleasedAt.Format("2006-01-02")),
			}
		}
		if next.VersionCode <= prev.VersionCode {
			return &ReleaseOrderError{
				Package: a.Package, Index: i,
				Prev: prev.Version, Next: next.Version,
				Reason: fmt.Sprintf("version code %d does not increase past %d",
					next.VersionCode, prev.VersionCode),
			}
		}
	}
	return nil
}

// Validate checks the structural invariants of an app IR: unique class
// names per release, activity declarations backed by classes, layout
// references that resolve, string-resource references that resolve, and
// method ownership consistency. It returns all issues found (empty for a
// well-formed app). Loaders call it after LoadJSON; generators use it as a
// self-check.
func (a *App) Validate() []ValidationIssue {
	var issues []ValidationIssue
	add := func(release, format string, args ...interface{}) {
		issues = append(issues, ValidationIssue{
			Release: release,
			Message: fmt.Sprintf(format, args...),
		})
	}
	if a.Package == "" {
		add("-", "app has no package id")
	}
	if err := a.CheckReleaseOrder(); err != nil {
		oe := err.(*ReleaseOrderError)
		add(oe.Next, "%s", err.Error())
	}
	for _, r := range a.Releases {
		seen := make(map[string]struct{}, len(r.Classes))
		for _, c := range r.Classes {
			if _, dup := seen[c.Name]; dup {
				add(r.Version, "duplicate class %s", c.Name)
			}
			seen[c.Name] = struct{}{}
			for _, m := range c.Methods {
				if m.Class != c.Name {
					add(r.Version, "method %s claims class %s but is declared in %s",
						m.Name, m.Class, c.Name)
				}
			}
		}
		layouts := make(map[string]struct{}, len(r.Layouts))
		for _, l := range r.Layouts {
			layouts[l.ID] = struct{}{}
		}
		for _, act := range r.Manifest.Activities {
			if _, ok := seen[act.Name]; !ok {
				add(r.Version, "activity %s has no class", act.Name)
			}
			if act.LayoutID != "" {
				if _, ok := layouts[act.LayoutID]; !ok {
					add(r.Version, "activity %s references missing layout %s",
						act.Name, act.LayoutID)
				}
			}
		}
		// String-resource references in widgets must resolve.
		for _, l := range r.Layouts {
			l.Root.Walk(func(w *Widget) {
				for _, ref := range []string{w.Text, w.Hint} {
					id, ok := strings.CutPrefix(ref, "@string/")
					if !ok {
						continue
					}
					if _, exists := r.StringRes[id]; !exists {
						add(r.Version, "layout %s references missing string resource %q", l.ID, id)
					}
				}
			})
		}
	}
	return issues
}
