package apk

import (
	"strings"
	"testing"
)

func TestValidateCleanApp(t *testing.T) {
	app := sampleApp()
	if issues := app.Validate(); len(issues) != 0 {
		t.Errorf("clean app has issues: %v", issues)
	}
}

func TestValidateFindsProblems(t *testing.T) {
	b := NewBuilder("com.bad", "Bad")
	b.Release("1.0", 1, day(0))
	b.Activity("com.bad.GhostActivity", "missing_layout")
	b.Layout("main", Widget{Type: "LinearLayout", Children: []Widget{
		{Type: "TextView", Text: "@string/nope"},
	}})
	b.Class("com.bad.A")
	b.Class("com.bad.A") // duplicate
	app := b.Build()
	// Method owned by the wrong class.
	app.Releases[0].Classes[0].Methods = append(app.Releases[0].Classes[0].Methods,
		&Method{Name: "m", Class: "com.bad.Other"})

	issues := app.Validate()
	wantFragments := []string{
		"duplicate class com.bad.A",
		"activity com.bad.GhostActivity has no class",
		"references missing layout missing_layout",
		`missing string resource "nope"`,
		"claims class com.bad.Other",
	}
	for _, frag := range wantFragments {
		found := false
		for _, issue := range issues {
			if strings.Contains(issue.String(), frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("issues %v missing %q", issues, frag)
		}
	}
}

func TestValidateEmptyPackage(t *testing.T) {
	app := &App{}
	issues := app.Validate()
	if len(issues) != 1 || !strings.Contains(issues[0].Message, "no package") {
		t.Errorf("issues = %v", issues)
	}
}
