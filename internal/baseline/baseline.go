// Package baseline re-implements the two comparison systems of the
// evaluation: ChangeAdvisor (Palomba et al., ICSE'17) and Where2Change
// (Zhang et al., TSE'19), following their published designs.
//
// ChangeAdvisor clusters function-error reviews, extracts topic words per
// cluster, and maps a cluster to a source file when the asymmetric Dice
// coefficient between the topic words and the file's identifier words
// passes a threshold. It uses no semantic similarity, no bytecode
// information beyond identifier words, and no per-review analysis — the
// properties responsible for its false negatives in the paper's comparison.
//
// Where2Change additionally matches each review cluster to bug reports via
// embedding similarity and enriches the cluster's words with the matched
// report's words before retrieving files with a vector-space model, which
// is why it recovers more mappings than ChangeAdvisor but fewer than
// ReviewSolver.
package baseline

import (
	"sort"
	"strings"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// extraStop extends the stopword list with review function words that
// ChangeAdvisor's preprocessing removes before topic extraction.
var extraStop = map[string]struct{}{
	"cannot": {}, "cant": {}, "wont": {}, "dont": {}, "doesnt": {},
	"back": {}, "into": {}, "every": {}, "time": {}, "app": {}, "still": {},
	"please": {}, "fix": {},
}

// reviewWords normalizes a review to its stemmed content words.
func reviewWords(text string) []string {
	var out []string
	for _, w := range textproc.Words(text) {
		if textproc.IsStopword(w) || len(w) <= 2 {
			continue
		}
		if _, skip := extraStop[w]; skip {
			continue
		}
		out = append(out, stem(w))
	}
	return out
}

// stem applies the light suffix stripping ChangeAdvisor's preprocessing
// performs ("deleted" → "delet").
func stem(w string) string {
	for _, suf := range []string{"ing", "ed", "es", "s", "e"} {
		if strings.HasSuffix(w, suf) && len(w)-len(suf) >= 3 {
			return w[:len(w)-len(suf)]
		}
	}
	return w
}

// Cluster is a group of similar reviews with its topic words.
type Cluster struct {
	// ReviewIdx are indexes into the input review slice.
	ReviewIdx []int
	// Topics are the cluster's topic words (stemmed).
	Topics []string
}

// clusterReviews greedily groups reviews by word overlap: a review joins
// the first cluster sharing at least minShared stemmed words, else it opens
// a new cluster. This is the deterministic stand-in for the HDP topic
// clustering both baselines build on.
func clusterReviews(reviews []string, minShared int) []Cluster {
	type work struct {
		words map[string]int
		idx   []int
	}
	var clusters []*work
	for i, r := range reviews {
		words := reviewWords(r)
		set := make(map[string]struct{}, len(words))
		for _, w := range words {
			set[w] = struct{}{}
		}
		var home *work
		for _, c := range clusters {
			shared := 0
			for w := range set {
				if c.words[w] > 0 {
					shared++
				}
			}
			if shared >= minShared {
				home = c
				break
			}
		}
		if home == nil {
			home = &work{words: make(map[string]int)}
			clusters = append(clusters, home)
		}
		for w := range set {
			home.words[w]++
		}
		home.idx = append(home.idx, i)
	}
	out := make([]Cluster, 0, len(clusters))
	for _, c := range clusters {
		out = append(out, Cluster{ReviewIdx: c.idx, Topics: topTopics(c.words, 5)})
	}
	return out
}

// topTopics returns the k most frequent words of a cluster (ties broken
// lexicographically).
func topTopics(counts map[string]int, k int) []string {
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	if k > len(words) {
		k = len(words)
	}
	return words[:k]
}

// classWords extracts the stemmed identifier words of each class: class
// name words plus method name words (the "source code elements" both
// baselines index).
func classWords(r *apk.Release) map[string]map[string]struct{} {
	out := make(map[string]map[string]struct{}, len(r.Classes))
	for _, c := range r.Classes {
		set := make(map[string]struct{})
		for _, w := range textproc.SplitIdentifier(c.ShortName()) {
			set[stem(w)] = struct{}{}
		}
		for _, m := range c.Methods {
			for _, w := range textproc.SplitIdentifier(m.Name) {
				set[stem(w)] = struct{}{}
			}
		}
		out[c.Name] = set
	}
	return out
}

// asymmetricDice is the similarity ChangeAdvisor uses: |A∩B| / min(|A|,|B|).
func asymmetricDice(a []string, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for _, w := range a {
		if _, ok := b[w]; ok {
			inter++
		}
	}
	den := len(a)
	if len(b) < den {
		den = len(b)
	}
	return float64(inter) / float64(den)
}

// ChangeAdvisor is the ChangeAdvisor baseline.
type ChangeAdvisor struct {
	// DiceThreshold is the mapping threshold (0.5 per the original).
	DiceThreshold float64
	// MinShared is the clustering word-overlap threshold.
	MinShared int
}

// NewChangeAdvisor returns the baseline with the published defaults.
func NewChangeAdvisor() *ChangeAdvisor {
	return &ChangeAdvisor{DiceThreshold: 0.5, MinShared: 2}
}

// MapReviews maps each review to the classes its cluster's topic words
// match; the i-th result lists the class names for reviews[i] (empty when
// unmapped).
func (ca *ChangeAdvisor) MapReviews(reviews []string, r *apk.Release) [][]string {
	out := make([][]string, len(reviews))
	words := classWords(r)
	classes := sortedClassNames(words)
	for _, cluster := range clusterReviews(reviews, ca.MinShared) {
		var matched []string
		for _, cls := range classes {
			if asymmetricDice(cluster.Topics, words[cls]) >= ca.DiceThreshold {
				matched = append(matched, cls)
			}
		}
		if len(matched) == 0 {
			continue
		}
		for _, idx := range cluster.ReviewIdx {
			out[idx] = append([]string(nil), matched...)
		}
	}
	return out
}

func sortedClassNames(words map[string]map[string]struct{}) []string {
	out := make([]string, 0, len(words))
	for c := range words {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// BugText is a bug report's text for Where2Change.
type BugText struct {
	Title string
	Body  string
}

// Where2Change is the Where2Change baseline.
type Where2Change struct {
	// MatchThreshold gates cluster ↔ bug-report matching.
	MatchThreshold float64
	// RetrieveThreshold gates enriched-text ↔ class retrieval.
	RetrieveThreshold float64
	// MinShared is the clustering word-overlap threshold.
	MinShared int

	vec *wordvec.Model
}

// NewWhere2Change returns the baseline with its published configuration.
func NewWhere2Change() *Where2Change {
	return &Where2Change{
		MatchThreshold:    0.45,
		RetrieveThreshold: 0.22,
		MinShared:         3,
		vec:               wordvec.NewModel(),
	}
}

// MapReviews maps each review to classes using bug-report enrichment; the
// i-th result lists the class names for reviews[i].
func (w *Where2Change) MapReviews(reviews []string, bugs []BugText, r *apk.Release) [][]string {
	out := make([][]string, len(reviews))
	if len(bugs) == 0 {
		return out
	}
	words := classWords(r)
	classes := sortedClassNames(words)

	bugWords := make([][]string, len(bugs))
	for i, b := range bugs {
		bugWords[i] = reviewWords(b.Title + " " + b.Body)
	}

	for _, cluster := range clusterReviews(reviews, w.MinShared) {
		// Match the cluster to its most similar bug report via embeddings.
		bestBug, bestSim := -1, w.MatchThreshold
		for i := range bugs {
			sim := w.vec.Similarity(cluster.Topics, bugWords[i])
			if sim > bestSim {
				bestBug, bestSim = i, sim
			}
		}
		if bestBug < 0 {
			continue
		}
		// Enrich the topic words with the matched report's words.
		enriched := append(append([]string(nil), cluster.Topics...), bugWords[bestBug]...)
		enrichedSet := make(map[string]struct{}, len(enriched))
		for _, w := range enriched {
			enrichedSet[w] = struct{}{}
		}
		// VSM retrieval: overlap coefficient between the enriched text and
		// each class's identifier words.
		var matched []string
		for _, cls := range classes {
			inter := 0
			for cw := range words[cls] {
				if _, ok := enrichedSet[cw]; ok {
					inter++
				}
			}
			if len(words[cls]) == 0 {
				continue
			}
			score := float64(inter) / float64(len(words[cls]))
			if score >= w.RetrieveThreshold {
				matched = append(matched, cls)
			}
		}
		if len(matched) == 0 {
			continue
		}
		for _, idx := range cluster.ReviewIdx {
			out[idx] = append([]string(nil), matched...)
		}
	}
	return out
}
