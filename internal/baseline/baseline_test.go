package baseline

import (
	"reflect"
	"testing"
	"time"

	"reviewsolver/internal/apk"
)

func testRelease() *apk.Release {
	b := apk.NewBuilder("com.base.app", "BaseApp")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.Class("com.base.app.MessageViewFragment").
		Method("moveEmail", apk.Return()).
		Method("deleteEmail", apk.Return())
	b.Class("com.base.app.PhotoUploader").
		Method("uploadPhoto", apk.Return())
	b.Class("com.base.app.Clock").
		Method("getTime", apk.Return())
	return b.Build().Latest()
}

func TestStem(t *testing.T) {
	tests := map[string]string{
		"deleted": "delet", "emails": "email", "move": "mov",
		"crashing": "crash", "error": "error",
	}
	for in, want := range tests {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestClusterReviews(t *testing.T) {
	reviews := []string{
		"cannot move emails back into my inbox",
		"moving emails is broken",
		"photo upload keeps failing",
	}
	clusters := clusterReviews(reviews, 2)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2: %+v", len(clusters), clusters)
	}
	if !reflect.DeepEqual(clusters[0].ReviewIdx, []int{0, 1}) {
		t.Errorf("first cluster = %v", clusters[0].ReviewIdx)
	}
}

func TestChangeAdvisorMapsWordOverlap(t *testing.T) {
	ca := NewChangeAdvisor()
	// The review's stemmed words (delet, email, mov …) overlap the
	// MessageViewFragment identifier words.
	reviews := []string{
		"i cannot move emails in trash deleted in error back into my inbox",
	}
	got := ca.MapReviews(reviews, testRelease())
	found := false
	for _, cls := range got[0] {
		if cls == "com.base.app.MessageViewFragment" {
			found = true
		}
	}
	if !found {
		t.Errorf("ChangeAdvisor mappings = %v, want MessageViewFragment", got[0])
	}
}

func TestChangeAdvisorNoSemanticMatch(t *testing.T) {
	ca := NewChangeAdvisor()
	// "fetch mail" shares no exact stemmed words with any identifier
	// (the class says "email", the review says "mail") — ChangeAdvisor's
	// known false negative.
	got := ca.MapReviews([]string{"cannot fetch mail at all, fetch mail broken"}, testRelease())
	for _, cls := range got[0] {
		if cls == "com.base.app.MessageViewFragment" {
			t.Error("ChangeAdvisor should not match without exact word overlap")
		}
	}
}

func TestWhere2ChangeEnrichment(t *testing.T) {
	w2c := NewWhere2Change()
	reviews := []string{"photo upload keeps failing on my phone"}
	bugs := []BugText{
		{Title: "Photo upload fails", Body: "uploadPhoto in PhotoUploader throws on large photo files"},
	}
	got := w2c.MapReviews(reviews, bugs, testRelease())
	found := false
	for _, cls := range got[0] {
		if cls == "com.base.app.PhotoUploader" {
			found = true
		}
	}
	if !found {
		t.Errorf("Where2Change mappings = %v, want PhotoUploader", got[0])
	}
}

func TestWhere2ChangeNeedsBugReports(t *testing.T) {
	w2c := NewWhere2Change()
	got := w2c.MapReviews([]string{"photo upload keeps failing"}, nil, testRelease())
	if len(got[0]) != 0 {
		t.Errorf("no bug reports should mean no mappings: %v", got[0])
	}
}

func TestMapReviewsShape(t *testing.T) {
	ca := NewChangeAdvisor()
	reviews := []string{"a", "b", "c"}
	got := ca.MapReviews(reviews, testRelease())
	if len(got) != 3 {
		t.Errorf("result length %d != reviews %d", len(got), len(reviews))
	}
}

func TestAsymmetricDice(t *testing.T) {
	b := map[string]struct{}{"mov": {}, "email": {}}
	if d := asymmetricDice([]string{"mov", "email"}, b); d != 1.0 {
		t.Errorf("full overlap dice = %f", d)
	}
	if d := asymmetricDice([]string{"mov", "x", "y", "z"}, b); d != 0.5 {
		t.Errorf("half-min dice = %f", d)
	}
	if d := asymmetricDice(nil, b); d != 0 {
		t.Errorf("empty dice = %f", d)
	}
}

func TestDeterminism(t *testing.T) {
	ca := NewChangeAdvisor()
	reviews := []string{
		"cannot move emails into inbox",
		"photo upload keeps failing photo",
		"the clock time is wrong time",
	}
	a := ca.MapReviews(reviews, testRelease())
	b := ca.MapReviews(reviews, testRelease())
	if !reflect.DeepEqual(a, b) {
		t.Error("ChangeAdvisor not deterministic")
	}
}
