// Package code2vec implements the method-summarization model of §3.3.2:
// given a method body, predict the words of its (possibly obfuscated or
// meaningless) name. The original uses the Code2vec neural model trained on
// 1,300 F-Droid apps; this reproduction uses the same representation —
// path contexts extracted from the method's AST — with a multinomial
// association model instead of a neural network: training counts how often
// each path context co-occurs with each name word, and prediction scores
// name words by their smoothed log-likelihood over the body's contexts.
//
// The decision downstream (§4.1.1) only consumes the predicted word list,
// so the substitution preserves behaviour: methods whose bodies call
// SmsManager.sendTextMessage predict "send"/"message" even when ProGuard
// renamed them to "a".
package code2vec

import (
	"math"
	"sort"
	"strings"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/textproc"
)

// PathContext is a (source token, path, target token) triple over the
// method's statement AST, the representation Code2vec learns from.
type PathContext struct {
	Source string
	Path   string
	Target string
}

// Key serializes the context for counting.
func (p PathContext) Key() string { return p.Source + "\x00" + p.Path + "\x00" + p.Target }

// ExtractContexts lists the path contexts of one method body: pairwise
// combinations of nearby statement tokens joined by the opcode path between
// them, plus unary op→token contexts.
func ExtractContexts(m *apk.Method) []PathContext {
	type tokenAt struct {
		token string
		op    apk.Op
		idx   int
	}
	var toks []tokenAt
	for i, st := range m.Statements {
		for _, t := range statementTokens(st) {
			toks = append(toks, tokenAt{token: t, op: st.Op, idx: i})
		}
	}
	var out []PathContext
	for i, a := range toks {
		// Unary context: the opcode "path" to its own token.
		out = append(out, PathContext{Source: a.op.String(), Path: "self", Target: a.token})
		// Pairwise contexts within a window of 3 statements.
		for j := i + 1; j < len(toks) && toks[j].idx-a.idx <= 3; j++ {
			b := toks[j]
			path := a.op.String() + ">" + b.op.String()
			out = append(out, PathContext{Source: a.token, Path: path, Target: b.token})
		}
	}
	return out
}

// statementTokens lists the identifier words a statement contributes.
func statementTokens(st apk.Statement) []string {
	var out []string
	switch st.Op {
	case apk.OpInvoke:
		out = append(out, shortNameWords(st.InvokeClass)...)
		out = append(out, textproc.SplitIdentifier(st.InvokeMethod)...)
	case apk.OpNew:
		out = append(out, shortNameWords(st.InvokeClass)...)
	case apk.OpConstString:
		words := textproc.Words(st.Const)
		if len(words) > 4 {
			words = words[:4]
		}
		out = append(out, words...)
	case apk.OpThrow, apk.OpCatch:
		out = append(out, textproc.SplitIdentifier(st.Exception)...)
	}
	return out
}

func shortNameWords(class string) []string {
	if i := strings.LastIndexByte(class, '.'); i >= 0 {
		class = class[i+1:]
	}
	class = strings.ReplaceAll(class, "$", " ")
	return textproc.SplitIdentifier(class)
}

// Model is the trained association model.
type Model struct {
	// contextWord counts context-key → word occurrences.
	contextWord map[string]map[string]float64
	// contextTotal is Σ_word contextWord[ctx][word].
	contextTotal map[string]float64
	// wordPrior counts global word frequency.
	wordPrior map[string]float64
	total     float64
	vocab     []string
}

// NewModel returns an untrained model.
func NewModel() *Model {
	return &Model{
		contextWord:  make(map[string]map[string]float64),
		contextTotal: make(map[string]float64),
		wordPrior:    make(map[string]float64),
	}
}

// TrainMethod adds one labeled method (name + body) to the model. The
// label words are the split method name; lifecycle prefixes ("on") are
// dropped, as the paper does for lifecycle methods.
func (m *Model) TrainMethod(method *apk.Method) {
	words := nameWords(method.Name)
	if len(words) == 0 {
		return
	}
	contexts := ExtractContexts(method)
	for _, ctx := range contexts {
		key := ctx.Key()
		cw, ok := m.contextWord[key]
		if !ok {
			cw = make(map[string]float64, len(words))
			m.contextWord[key] = cw
		}
		for _, w := range words {
			cw[w]++
			m.contextTotal[key]++
		}
	}
	for _, w := range words {
		if m.wordPrior[w] == 0 {
			m.vocab = append(m.vocab, w)
		}
		m.wordPrior[w]++
		m.total++
	}
}

// TrainRelease trains on every method of a release whose name is
// meaningful (longer than one character — obfuscated names are skipped).
func (m *Model) TrainRelease(r *apk.Release) {
	for _, c := range r.Classes {
		for _, meth := range c.Methods {
			if len(meth.Name) <= 1 {
				continue
			}
			m.TrainMethod(meth)
		}
	}
}

// VocabSize returns the number of distinct name words learned.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Predict returns the top-k name words for a method body, most likely
// first. It is the code-summarization output used by the app-specific-task
// localizer (§4.1.1).
func (m *Model) Predict(method *apk.Method, k int) []string {
	if m.total == 0 || k <= 0 {
		return nil
	}
	contexts := ExtractContexts(method)
	if len(contexts) == 0 {
		return nil
	}
	vocabSize := float64(len(m.vocab)) + 1
	type scored struct {
		word  string
		score float64
	}
	scores := make([]scored, 0, len(m.vocab))
	for _, w := range m.vocab {
		// log P(w) + Σ_ctx log P(ctx | w) via the association counts.
		s := math.Log(m.wordPrior[w] / m.total)
		for _, ctx := range contexts {
			key := ctx.Key()
			cw := m.contextWord[key][w]
			tot := m.contextTotal[key]
			s += math.Log((cw + 0.1) / (tot + 0.1*vocabSize))
		}
		scores = append(scores, scored{word: w, score: s})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score > scores[j].score
		}
		return scores[i].word < scores[j].word
	})
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].word
	}
	return out
}

// nameWords splits a method name into its label words, dropping stopword
// prefixes like "on" (lifecycle methods).
func nameWords(name string) []string {
	words := textproc.SplitIdentifier(name)
	out := words[:0]
	for _, w := range words {
		if w == "on" || len(w) <= 1 {
			continue
		}
		out = append(out, w)
	}
	return out
}

// NameWords exposes the label-word splitting for evaluation code.
func NameWords(name string) []string { return nameWords(name) }

// EvaluateRecovery measures the fraction of true name words recovered in
// the top-k predictions over a release — the paper's obfuscation
// experiment (§3.3.2 reports 34.4% with real Code2vec).
func (m *Model) EvaluateRecovery(r *apk.Release, k int) (recovered, total int) {
	for _, c := range r.Classes {
		for _, meth := range c.Methods {
			truth := nameWords(meth.Name)
			if len(truth) == 0 {
				continue
			}
			pred := m.Predict(meth, k)
			predSet := make(map[string]struct{}, len(pred))
			for _, w := range pred {
				predSet[w] = struct{}{}
			}
			for _, w := range truth {
				total++
				if _, ok := predSet[w]; ok {
					recovered++
				}
			}
		}
	}
	return recovered, total
}
