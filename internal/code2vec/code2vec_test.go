package code2vec

import (
	"reflect"
	"testing"
	"time"

	"reviewsolver/internal/apk"
)

// trainingRelease builds a release whose method names correlate with their
// bodies: send* methods call SmsManager, fetch* methods call URLConnection,
// save* methods write files.
func trainingRelease() *apk.Release {
	b := apk.NewBuilder("com.train", "Train")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	cb := b.Class("com.train.Worker")
	for i := 0; i < 5; i++ {
		cb.Method("sendMessage",
			apk.ConstString("s", "sending"),
			apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage", "s"))
		cb.Method("fetchMail",
			apk.Invoke("c", "java.net.URLConnection", "connect"),
			apk.Invoke("r", "java.net.HttpURLConnection", "getInputStream"))
		cb.Method("savePicture",
			apk.NewObj("f", "java.io.FileOutputStream"),
			apk.Invoke("", "java.io.FileOutputStream", "write", "f"))
	}
	return b.Build().Latest()
}

// obfuscatedMethod returns a method with a meaningless name but a
// recognizable body.
func obfuscatedMethod(body ...apk.Statement) *apk.Method {
	return &apk.Method{Name: "a", Class: "com.train.Obf", Statements: body}
}

func TestExtractContexts(t *testing.T) {
	m := &apk.Method{Name: "sendMail", Statements: []apk.Statement{
		apk.ConstString("s", "hello"),
		apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage", "s"),
	}}
	ctxs := ExtractContexts(m)
	if len(ctxs) == 0 {
		t.Fatal("no contexts extracted")
	}
	// Must include a unary context for the const-string token and a pairwise
	// context crossing the two statements.
	var hasUnary, hasPair bool
	for _, c := range ctxs {
		if c.Path == "self" && c.Target == "hello" {
			hasUnary = true
		}
		if c.Path == "const-string>invoke" {
			hasPair = true
		}
	}
	if !hasUnary || !hasPair {
		t.Errorf("contexts missing unary=%v pair=%v: %+v", hasUnary, hasPair, ctxs)
	}
}

func TestNameWords(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"sendMessage", []string{"send", "message"}},
		{"onCreate", []string{"create"}},
		{"getEmail", []string{"get", "email"}},
		{"a", nil},
	}
	for _, tt := range tests {
		got := NameWords(tt.in)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("NameWords(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestPredictRecoversSemantics(t *testing.T) {
	model := NewModel()
	model.TrainRelease(trainingRelease())
	if model.VocabSize() == 0 {
		t.Fatal("empty vocabulary after training")
	}

	tests := []struct {
		body []apk.Statement
		want string
	}{
		{
			body: []apk.Statement{
				apk.ConstString("s", "sending"),
				apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage", "s"),
			},
			want: "send",
		},
		{
			body: []apk.Statement{
				apk.Invoke("c", "java.net.URLConnection", "connect"),
				apk.Invoke("r", "java.net.HttpURLConnection", "getInputStream"),
			},
			want: "fetch",
		},
		{
			body: []apk.Statement{
				apk.NewObj("f", "java.io.FileOutputStream"),
				apk.Invoke("", "java.io.FileOutputStream", "write", "f"),
			},
			want: "save",
		},
	}
	for _, tt := range tests {
		pred := model.Predict(obfuscatedMethod(tt.body...), 3)
		found := false
		for _, w := range pred {
			if w == tt.want {
				found = true
			}
		}
		if !found {
			t.Errorf("Predict top-3 = %v, want to include %q", pred, tt.want)
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	model := NewModel()
	model.TrainRelease(trainingRelease())
	m := obfuscatedMethod(apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage"))
	a := model.Predict(m, 5)
	b := model.Predict(m, 5)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic prediction: %v vs %v", a, b)
	}
}

func TestPredictEdgeCases(t *testing.T) {
	model := NewModel()
	if got := model.Predict(obfuscatedMethod(), 3); got != nil {
		t.Errorf("untrained model predicted %v", got)
	}
	model.TrainRelease(trainingRelease())
	if got := model.Predict(obfuscatedMethod(), 3); got != nil {
		t.Errorf("empty body predicted %v", got)
	}
	if got := model.Predict(obfuscatedMethod(apk.Return()), 0); got != nil {
		t.Errorf("k=0 predicted %v", got)
	}
}

func TestEvaluateRecovery(t *testing.T) {
	model := NewModel()
	r := trainingRelease()
	model.TrainRelease(r)
	recovered, total := model.EvaluateRecovery(r, 3)
	if total == 0 {
		t.Fatal("no name words to evaluate")
	}
	frac := float64(recovered) / float64(total)
	// On its own training release the model must recover at least the
	// paper's obfuscation-experiment fraction (34.4%).
	if frac < 0.344 {
		t.Errorf("recovery = %.2f (%d/%d), want >= 0.344", frac, recovered, total)
	}
}

func TestTrainSkipsObfuscatedNames(t *testing.T) {
	model := NewModel()
	b := apk.NewBuilder("p", "n")
	b.Release("1", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.Class("p.C").Method("a", apk.Return()).Method("b", apk.Return())
	model.TrainRelease(b.Build().Latest())
	if model.VocabSize() != 0 {
		t.Errorf("obfuscated names should not train: vocab = %d", model.VocabSize())
	}
}
