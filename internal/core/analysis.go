package core

import (
	"strings"

	"reviewsolver/internal/phrase"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/textproc"
)

// ReviewAnalysis is the §3.2 output for one review: the sentences that
// survived sentiment and intent filtering, and the phrases extracted from
// them.
type ReviewAnalysis struct {
	// Sentences are the kept (negative/neutral, non-feature-request)
	// clause-sentences after normalization.
	Sentences []string
	// FilteredSentences counts sentences dropped by the intent filter.
	FilteredSentences int
	// PositiveSentences counts clauses dropped by sentiment analysis.
	PositiveSentences int
	// VerbPhrases and NounPhrases are the §3.2.4 extraction results.
	VerbPhrases []phrase.VerbPhrase
	NounPhrases []phrase.NounPhrase
	// Patterns are the matched vague-error patterns (Table 5).
	Patterns []phrase.PatternMatch
	// Quoted are verbatim quoted spans (candidate error messages).
	Quoted []string
}

// AnalyzeReview runs the review-analysis pipeline of §3.2 on one review:
// pre-processing (ASCII cleanup, sentence split, typo repair, abbreviation
// expansion), sentiment-based positive-clause removal (§3.2.3), intent
// filtering (§3.2.4), and phrase extraction.
func (s *Solver) AnalyzeReview(text string) *ReviewAnalysis {
	ra := &ReviewAnalysis{Quoted: quotedSpans(text)}

	for _, sent := range textproc.SplitSentences(text) {
		for _, clause := range sentiment.SplitAdversative(sent) {
			if s.sentiment.Classify(clause) == sentiment.Positive {
				ra.PositiveSentences++
				continue
			}
			if phrase.ClassifyIntent(clause).ShouldFilter() {
				ra.FilteredSentences++
				continue
			}
			normalized := s.normalizer.NormalizeSentence(clause)
			ra.Sentences = append(ra.Sentences, normalized)
		}
	}

	seenVP := make(map[string]struct{})
	seenNP := make(map[string]struct{})
	for _, sent := range ra.Sentences {
		p := s.extractor.Parse(sent)
		ex := s.extractor.Extract(p)
		for _, vp := range ex.VerbPhrases {
			if _, dup := seenVP[vp.String()]; dup {
				continue
			}
			seenVP[vp.String()] = struct{}{}
			ra.VerbPhrases = append(ra.VerbPhrases, vp)
		}
		for _, np := range ex.NounPhrases {
			key := np.String()
			if _, dup := seenNP[key]; dup {
				continue
			}
			seenNP[key] = struct{}{}
			ra.NounPhrases = append(ra.NounPhrases, np)
		}
		ra.Patterns = append(ra.Patterns, phrase.MatchPatterns(p)...)
	}
	return ra
}

// quotedSpans extracts the spans between double quotes — users often paste
// the exact error message ("it just says "c:geo can't load data"").
func quotedSpans(text string) []string {
	var out []string
	for {
		i := strings.IndexByte(text, '"')
		if i < 0 {
			break
		}
		j := strings.IndexByte(text[i+1:], '"')
		if j < 0 {
			break
		}
		span := strings.TrimSpace(text[i+1 : i+1+j])
		if span != "" && len(strings.Fields(span)) >= 2 {
			out = append(out, span)
		}
		text = text[i+j+2:]
	}
	return out
}
