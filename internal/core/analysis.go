package core

import (
	"strings"

	"reviewsolver/internal/phrase"
	"reviewsolver/internal/textproc"
)

// ReviewAnalysis is the §3.2 output for one review: the sentences that
// survived sentiment and intent filtering, and the phrases extracted from
// them.
type ReviewAnalysis struct {
	// Sentences are the kept (negative/neutral, non-feature-request)
	// clause-sentences after normalization.
	Sentences []string
	// FilteredSentences counts sentences dropped by the intent filter.
	FilteredSentences int
	// PositiveSentences counts clauses dropped by sentiment analysis.
	PositiveSentences int
	// VerbPhrases and NounPhrases are the §3.2.4 extraction results.
	VerbPhrases []phrase.VerbPhrase
	NounPhrases []phrase.NounPhrase
	// Patterns are the matched vague-error patterns (Table 5).
	Patterns []phrase.PatternMatch
	// Quoted are verbatim quoted spans (candidate error messages).
	Quoted []string

	// vpKeys and npKeys are the pre-rendered String() forms of the phrases
	// above, aligned by index, carried from the sentence cache so localizers
	// don't re-join the words per phrase×candidate pass. They may be absent
	// on hand-built analyses; the accessors below fall back to rendering.
	vpKeys []string
	npKeys []string
}

// vpKey returns the rendered text of VerbPhrases[i].
func (ra *ReviewAnalysis) vpKey(i int) string {
	if i < len(ra.vpKeys) {
		return ra.vpKeys[i]
	}
	return ra.VerbPhrases[i].String()
}

// npKey returns the rendered text of NounPhrases[i].
func (ra *ReviewAnalysis) npKey(i int) string {
	if i < len(ra.npKeys) {
		return ra.npKeys[i]
	}
	return ra.NounPhrases[i].String()
}

// AnalyzeReview runs the review-analysis pipeline of §3.2 on one review:
// pre-processing (ASCII cleanup, sentence split, typo repair, abbreviation
// expansion), sentiment-based positive-clause removal (§3.2.3), intent
// filtering (§3.2.4), and phrase extraction.
// Per-sentence work reads through the frontend cache: the first encounter of
// a sentence pays the full clause pipeline (computeSentence), repeats are a
// map hit. The merged loop below is output-equivalent to the seed's
// two-pass structure (collect kept sentences, then extract per kept
// sentence): extraction is per-sentence independent, results append in
// sentence order, and the cross-sentence VP/NP dedup keeps first-seen order
// via the cached key strings.
func (s *Solver) AnalyzeReview(text string) *ReviewAnalysis {
	ra := &ReviewAnalysis{Quoted: quotedSpans(text)}
	scratch := s.fe.scratch.Get().(*analysisScratch)
	seenVP, seenNP := scratch.seenVP, scratch.seenNP

	for _, sent := range textproc.SplitSentences(text) {
		e := s.fe.sentence(s, sent)
		for ci := range e.clauses {
			co := &e.clauses[ci]
			switch {
			case co.positive:
				ra.PositiveSentences++
			case co.filtered:
				ra.FilteredSentences++
			default:
				ra.Sentences = append(ra.Sentences, co.normalized)
				for i, vp := range co.vps {
					key := co.vpKeys[i]
					if _, dup := seenVP[key]; dup {
						continue
					}
					seenVP[key] = struct{}{}
					ra.VerbPhrases = append(ra.VerbPhrases, vp)
					ra.vpKeys = append(ra.vpKeys, key)
				}
				for i, np := range co.nps {
					key := co.npKeys[i]
					if _, dup := seenNP[key]; dup {
						continue
					}
					seenNP[key] = struct{}{}
					ra.NounPhrases = append(ra.NounPhrases, np)
					ra.npKeys = append(ra.npKeys, key)
				}
				ra.Patterns = append(ra.Patterns, co.patterns...)
			}
		}
	}
	clear(seenVP)
	clear(seenNP)
	s.fe.scratch.Put(scratch)
	return ra
}

// quotedSpans extracts the spans between double quotes — users often paste
// the exact error message ("it just says "c:geo can't load data"").
func quotedSpans(text string) []string {
	var out []string
	for {
		i := strings.IndexByte(text, '"')
		if i < 0 {
			break
		}
		j := strings.IndexByte(text[i+1:], '"')
		if j < 0 {
			break
		}
		span := strings.TrimSpace(text[i+1 : i+1+j])
		if span != "" && len(strings.Fields(span)) >= 2 {
			out = append(out, span)
		}
		text = text[i+j+2:]
	}
	return out
}
