package core

import (
	"strings"
	"testing"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/ctxinfo"
)

// paperApp builds a test app mirroring the paper's motivating examples
// (§2.3): K-9-style mail features, Signal-style SMS/contacts, Twidere-style
// photo upload, WordPress-style site connection.
func paperApp() *apk.App {
	b := apk.NewBuilder("com.paper.app", "PaperApp")
	t0 := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	b.Release("1.0", 1, t0)
	b.Permission("android.permission.INTERNET", "android.permission.SEND_SMS")

	b.LauncherActivity("com.paper.app.MainActivity", "main")
	b.Activity("com.paper.app.EditIdentity", "edit_identity")
	b.Activity("com.paper.app.LoginActivity", "login")
	b.Layout("main", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "ListView", ID: "message_list"},
	}})
	b.Layout("edit_identity", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "EditText", ID: "reply_to"},
		{Type: "Button", ID: "save_btn", Text: "Save"},
	}})
	b.Layout("login", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "EditText", ID: "password_edit", Hint: "Password"},
		{Type: "Button", ID: "login_btn", Text: "Sign in"},
	}})

	b.Class("com.paper.app.MainActivity").
		Method("onCreate", apk.Invoke("", "android.app.Activity", "setTitle")).
		Method("onStart", apk.Return()).
		Method("onResume", apk.Return())

	// Example 1: Account.getEmail — "fetch mail" matches via semantics.
	b.Class("com.paper.app.Account").
		Method("getEmail",
			apk.Invoke("c", "java.net.URLConnection", "connect"),
			apk.Invoke("s", "java.net.HttpURLConnection", "getInputStream"))

	// A Clock class that must NOT be matched by "for the longest time".
	b.Class("com.paper.app.Clock").
		Method("getTime", apk.Return()).
		Method("formatTime", apk.Return())

	// Example 2: SmsSendJob calls SmsManager.sendTextMessage.
	b.Class("com.paper.app.jobs.SmsSendJob").
		Method("deliver",
			apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage"))

	// Example 3: ContactsDatabase queries the contacts provider.
	b.Class("com.paper.app.ContactsDatabase").
		Method("queryTextSecureContacts",
			apk.ConstString("uri", "content://contacts"),
			apk.Invoke("cur", "android.content.ContentResolver", "query", "uri"))

	// Example 4: MediaPickerActivity sends a camera intent.
	b.Class("com.paper.app.MediaPickerActivity").
		Method("openCamera",
			apk.ConstString("action", "android.media.action.IMAGE_CAPTURE"),
			apk.NewObj("intent", "android.content.Intent"),
			apk.Invoke("", "android.app.Activity", "startActivityForResult", "action", "intent"))

	// Example 5: SendFailedNotifications raises the error message.
	b.Class("com.paper.app.notification.SendFailedNotifications").
		Method("notifyFailure",
			apk.ConstString("msg", "Failed to send some messages"),
			apk.Invoke("", "android.widget.Toast", "makeText", "msg"))

	// Example 6: ReaderPostPagerActivity loads URLs (404 general task).
	b.Class("com.paper.app.ReaderPostPagerActivity").
		Method("loadPost",
			apk.Invoke("", "android.webkit.WebView", "loadUrl"),
			apk.Invoke("code", "java.net.HttpURLConnection", "getResponseCode"))

	// Example 7: ImapConnection uses sockets (SocketException) while polling.
	b.Class("com.paper.app.mail.ImapConnection").
		Method("pollMailbox",
			apk.Invoke("", "java.net.Socket", "connect"),
			apk.Invoke("in", "java.net.Socket", "getInputStream"),
			apk.Catch("SocketException"))

	// A second release for the update localizer.
	b.CopyRelease("1.1", 2, t0.AddDate(0, 2, 0))
	b.Class("com.paper.app.NewSyncEngine").
		Method("syncEverything", apk.Invoke("", "java.net.URLConnection", "connect"))

	return b.Build()
}

func reviewTime() time.Time { return time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC) }
func afterUpdate() time.Time {
	return time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)
}

func mappedClasses(res *Result) map[string][]ctxinfo.Type {
	out := make(map[string][]ctxinfo.Type)
	for _, m := range res.Mappings {
		out[m.Class] = append(out[m.Class], m.Context)
	}
	return out
}

func TestExample1FetchMailNoClockFalsePositive(t *testing.T) {
	s := New()
	app := paperApp()
	res := s.LocalizeReview(app, "Unable to fetch mail on Samsung Note 4 for the longest time", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.paper.app.Account"]; !ok {
		t.Errorf("'fetch mail' should map to Account.getEmail; got %v", classes)
	}
	if _, bad := classes["com.paper.app.Clock"]; bad {
		t.Error("false positive: 'time' mapped to Clock")
	}
}

func TestExample2SendSMS(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(),
		"Unfortunately I can no longer send SMS to any non-signal user.", reviewTime())
	classes := mappedClasses(res)
	ctxs, ok := classes["com.paper.app.jobs.SmsSendJob"]
	if !ok {
		t.Fatalf("'send SMS' should map to SmsSendJob; got %v", classes)
	}
	hasAPI := false
	for _, c := range ctxs {
		if c == ctxinfo.APIURIIntent || c == ctxinfo.GeneralTask {
			hasAPI = true
		}
	}
	if !hasAPI {
		t.Errorf("SmsSendJob mapped but not via API/general-task localizer: %v", ctxs)
	}
}

func TestExample3FindContact(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(),
		"Signal crashed when i tried to find contact while writing sms", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.paper.app.ContactsDatabase"]; !ok {
		t.Errorf("'find contact' should map to ContactsDatabase; got %v", classes)
	}
}

func TestExample4UploadPhotos(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(), "Update: uploading photos error.", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.paper.app.MediaPickerActivity"]; !ok {
		t.Errorf("'upload photos' should map to MediaPickerActivity (camera intent); got %v", classes)
	}
}

func TestExample5ErrorMessage(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(),
		`I like the app, but I receive an error message saying "Failed to send some messages" EVERY time I send an email.`,
		reviewTime())
	classes := mappedClasses(res)
	ctxs, ok := classes["com.paper.app.notification.SendFailedNotifications"]
	if !ok {
		t.Fatalf("quoted message should map to SendFailedNotifications; got %v", classes)
	}
	hasMsg := false
	for _, c := range ctxs {
		if c == ctxinfo.ErrorMessage {
			hasMsg = true
		}
	}
	if !hasMsg {
		t.Errorf("mapping found but not via error-message localizer: %v", ctxs)
	}
}

func TestExample6General404(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(),
		"Won't connect. Get a 404 error when adding wordpress site.", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.paper.app.ReaderPostPagerActivity"]; !ok {
		t.Errorf("'404 error' should map to ReaderPostPagerActivity via Q&A; got %v", classes)
	}
}

func TestExample7SocketException(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(), "there's a socket exception when it polls", reviewTime())
	classes := mappedClasses(res)
	ctxs, ok := classes["com.paper.app.mail.ImapConnection"]
	if !ok {
		t.Fatalf("'socket exception' should map to ImapConnection; got %v", classes)
	}
	hasExc := false
	for _, c := range ctxs {
		if c == ctxinfo.Exception {
			hasExc = true
		}
	}
	if !hasExc {
		t.Errorf("mapping found but not via exception localizer: %v", ctxs)
	}
}

func TestReplyButtonGUI(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(),
		"Reinstalled the app, reply button now doesn't show, can't find any solutions.", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.paper.app.EditIdentity"]; !ok {
		t.Errorf("'reply button' should map to EditIdentity (reply_to widget); got %v", classes)
	}
}

func TestOpeningAppLocalizer(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(), "It crashed every time I opened it.", reviewTime())
	found := false
	for _, m := range res.Mappings {
		if m.Class == "com.paper.app.MainActivity" && m.Context == ctxinfo.OpeningApp {
			found = true
		}
	}
	if !found {
		t.Errorf("launch crash should map to starting activity lifecycle; got %+v", res.Mappings)
	}
}

func TestRegistrationLocalizer(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(), "Cannot login to my gmail", reviewTime())
	found := false
	for _, m := range res.Mappings {
		if m.Class == "com.paper.app.LoginActivity" && m.Context == ctxinfo.RegisteringAccount {
			found = true
		}
	}
	if !found {
		t.Errorf("login error should map to LoginActivity; got %+v", res.Mappings)
	}
}

func TestUpdateFallback(t *testing.T) {
	s := New()
	// Vague update complaint with no other context: recommend the diff.
	res := s.LocalizeReview(paperApp(), "App started crashing after recent update.", afterUpdate())
	found := false
	for _, m := range res.Mappings {
		if m.Class == "com.paper.app.NewSyncEngine" && m.Context == ctxinfo.UpdatingApp {
			found = true
		}
	}
	if !found {
		t.Errorf("update complaint should map to diff classes; got %+v", res.Mappings)
	}
}

func TestUpdateNotUsedWhenOtherContextExists(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(),
		"Since the latest update i cannot send sms anymore.", afterUpdate())
	for _, m := range res.Mappings {
		if m.Context == ctxinfo.UpdatingApp {
			t.Errorf("diff fallback used despite API context: %+v", m)
		}
	}
	if _, ok := mappedClasses(res)["com.paper.app.jobs.SmsSendJob"]; !ok {
		t.Error("send sms context lost")
	}
}

func TestNegatedErrorNotMapped(t *testing.T) {
	s := New()
	// "does not contain any bugs" is not an error description; the review
	// analysis must not produce error-word mappings for it.
	res := s.LocalizeReview(paperApp(), "the app does not contain any bugs", reviewTime())
	for _, m := range res.Mappings {
		if m.Context == ctxinfo.ErrorMessage {
			t.Errorf("negated bug mention produced error mapping: %+v", m)
		}
	}
}

func TestRankingTopNAndOrder(t *testing.T) {
	s := New()
	app := paperApp()
	res := s.LocalizeReview(app,
		"I get an out of memory error message and can't take pictures. Also i cannot send sms.",
		reviewTime())
	if len(res.Ranked) > TopN {
		t.Errorf("ranked %d classes, cap is %d", len(res.Ranked), TopN)
	}
	for i := 1; i < len(res.Ranked); i++ {
		prev, cur := res.Ranked[i-1], res.Ranked[i]
		if prev.Importance < cur.Importance {
			t.Errorf("ranking not by importance: %v before %v", prev, cur)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	s := New()
	res := s.LocalizeReview(paperApp(), "i cannot send sms", reviewTime())
	if !res.Localized() {
		t.Fatal("review should be localized")
	}
	names := res.RankedClassNames()
	if len(names) == 0 || names[0] == "" {
		t.Errorf("RankedClassNames = %v", names)
	}
}

func TestPositiveClauseDiscarded(t *testing.T) {
	s := New()
	ra := s.AnalyzeReview("It's a great app but since the last update my stats page doesnt work properly.")
	if ra.PositiveSentences == 0 {
		t.Error("positive clause not detected")
	}
	for _, sent := range ra.Sentences {
		if strings.Contains(sent, "great app") {
			t.Errorf("positive clause kept: %q", sent)
		}
	}
}

func TestIntentFilteredSentences(t *testing.T) {
	s := New()
	ra := s.AnalyzeReview("The app crashes on startup. Please add a dark theme. I use Nougat 7.0 android version.")
	if ra.FilteredSentences < 2 {
		t.Errorf("filtered %d sentences, want >= 2", ra.FilteredSentences)
	}
}

func TestQuotedSpans(t *testing.T) {
	got := quotedSpans(`it says "cannot load data" and then "server timed out" again`)
	if len(got) != 2 || got[0] != "cannot load data" || got[1] != "server timed out" {
		t.Errorf("quotedSpans = %v", got)
	}
	if quotedSpans(`no quotes here`) != nil {
		t.Error("expected nil for quote-free text")
	}
	// Single-word quotes are ignored ("c:geo" style app names).
	if got := quotedSpans(`i love "k9" a lot`); got != nil {
		t.Errorf("single-word quote kept: %v", got)
	}
}

func TestMethodNamePhrase(t *testing.T) {
	tests := []struct {
		name, class string
		want        string
	}{
		{"getEmail", "Account", "get email"},
		{"move", "MessageListFragment", "move message list fragment"},
		{"onCreate", "MainActivity", "create main activity"},
		{"emailValidator", "Util", "email validator"},
	}
	for _, tt := range tests {
		got := strings.Join(methodNamePhrase(tt.name, tt.class), " ")
		if got != tt.want {
			t.Errorf("methodNamePhrase(%q,%q) = %q, want %q", tt.name, tt.class, got, tt.want)
		}
	}
}

func TestStaticExtractionInventory(t *testing.T) {
	s := New()
	info := s.StaticFor(paperApp().Releases[0])
	if info.StartingActivity != "com.paper.app.MainActivity" {
		t.Errorf("starting activity = %q", info.StartingActivity)
	}
	if len(info.APIs) == 0 || len(info.URIs) == 0 || len(info.Intents) == 0 ||
		len(info.Messages) == 0 || len(info.MethodPhrases) == 0 || len(info.GUIs) == 0 {
		t.Errorf("incomplete extraction: APIs=%d URIs=%d intents=%d msgs=%d methods=%d GUIs=%d",
			len(info.APIs), len(info.URIs), len(info.Intents),
			len(info.Messages), len(info.MethodPhrases), len(info.GUIs))
	}
	// Cache must return the identical pointer.
	if s.StaticFor(paperApp().Releases[0]) == info {
		t.Error("different release pointer should re-extract")
	}
	r := paperApp().Releases[0]
	a := s.StaticFor(r)
	if s.StaticFor(r) != a {
		t.Error("same release pointer should hit the cache")
	}
}

// TestSavePhotosToSDCard covers Table 1 case (7): the API localizer must
// map storage complaints to the class writing external storage.
func TestSavePhotosToSDCard(t *testing.T) {
	b := apk.NewBuilder("com.cam.app", "CamApp")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.Class("com.cam.app.MediaStore").
		Method("persistImage",
			apk.Invoke("dir", "android.os.Environment", "getExternalStorageDirectory"),
			apk.Invoke("", "java.io.FileOutputStream", "write", "dir"))
	app := b.Build()

	s := New()
	res := s.LocalizeReview(app, "But I cannot save photos to sd card with it", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.cam.app.MediaStore"]; !ok {
		t.Errorf("'save photos to sd card' should map to MediaStore; got %v", classes)
	}
}

// TestURIPermissionNouns covers the URI branch of Algorithm 1: a
// collection-verb phrase whose object matches the permission nouns of a
// queried content URI ("read the user's call log").
func TestURIPermissionNouns(t *testing.T) {
	b := apk.NewBuilder("com.dialer.app", "DialerApp")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.Class("com.dialer.app.CallHistory").
		Method("loadHistory",
			apk.ConstString("uri", "content://call_log"),
			apk.Invoke("cur", "android.content.ContentResolver", "query", "uri"))
	app := b.Build()

	s := New()
	res := s.LocalizeReview(app, "the app cannot read my call log anymore", reviewTime())
	classes := mappedClasses(res)
	if _, ok := classes["com.dialer.app.CallHistory"]; !ok {
		t.Errorf("'read call log' should map to CallHistory via the URI permission nouns; got %v", classes)
	}
}

func TestRankClassesTieBreak(t *testing.T) {
	mappings := []Mapping{
		{Phrase: "p1", Class: "A", Context: ctxinfo.GUI},
		{Phrase: "p1", Class: "B", Context: ctxinfo.GUI},
		{Phrase: "p2", Class: "B", Context: ctxinfo.APIURIIntent},
	}
	ranked := RankClasses(mappings, nil, 10)
	if len(ranked) != 2 || ranked[0].Class != "B" || ranked[0].Importance != 2 {
		t.Errorf("ranking = %+v", ranked)
	}
}
