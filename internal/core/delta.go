package core

import (
	"sort"
	"sync"

	"reviewsolver/internal/apg"
	"reviewsolver/internal/apk"
	"reviewsolver/internal/gui"
	"reviewsolver/internal/sdk"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// This file implements incremental static extraction: given the finished
// extraction of the previous release and a structural diff against it,
// ExtractStaticDelta rebuilds only the artifacts the diff invalidates and
// reuses everything else — phrase embeddings, GUI recoveries, inventory
// entries, sketch rows, and (when sound) the quantized scan tier.
//
// The invariant, property-tested in delta_test.go, is that a delta-built
// StaticInfo localizes byte-identically to a from-scratch ExtractStatic of
// the same release: every reused value is a pure function of inputs the
// diff proved unchanged, and every aggregate is re-emitted in the same
// deterministic (sorted) order the full build uses, so site-discovery order
// never leaks into the result.
//
// Per-kind soundness arguments:
//
//   - method phrases: derived from (method name, class name) and, for
//     summaries, the statement body — all covered by the class content
//     fingerprint. Reused rows keep their embedding bits; the matrix sketch
//     rows are copied via FinishReuse.
//   - GUI recoveries: an activity's recovery reads its manifest declaration,
//     its layout tree, the string-resource table, and its own class's
//     methods. It is reused only when all four are untouched.
//   - content queries / intent sends / user messages: keyed by literal
//     framework API names, and the backward taint walk never leaves one
//     method body — so only touched (added/changed/removed) classes can
//     change an entry's membership.
//   - framework APIs: additionally classification-sensitive — adding or
//     removing an app class can flip call sites in *untouched* classes
//     between "app call" and "framework call". The rescan set is therefore
//     widened with every class invoking an added or removed class name, on
//     both graphs (ClassesInvoking).
//   - quantized tier: patched per-row against the previous tier with
//     centroids pinned and bounds only ever widened (wordvec.PatchQuant);
//     bounds stay sound and exact rescoring keeps yields identical, so a
//     patched tier can differ from a full-built tier only in pruning
//     efficiency, never in output.

// DeltaStats reports what an incremental extraction reused and recomputed.
type DeltaStats struct {
	// Applied reports whether this call performed the extraction (false when
	// the snapshot already held the release).
	Applied bool
	// Full reports a fallback to from-scratch ExtractStatic, with Reason.
	Full   bool
	Reason string

	// Diff summary.
	ClassesAdded, ClassesRemoved, ClassesChanged int

	// Row accounting for the two scan matrices.
	MethodRowsReused, MethodRowsFresh       int
	InvisibleRowsReused, InvisibleRowsFresh int

	// Per-activity GUI recoveries.
	GUIsReused, GUIsFresh int

	// Quantized-tier outcome per matrix that carries one.
	QuantPatched, QuantRebuilt int
}

// RowsReused returns the total sketch rows copied from the base extraction.
func (st *DeltaStats) RowsReused() int {
	return st.MethodRowsReused + st.InvisibleRowsReused
}

// RowsFresh returns the total sketch rows recomputed.
func (st *DeltaStats) RowsFresh() int {
	return st.MethodRowsFresh + st.InvisibleRowsFresh
}

// ExtractStaticDelta runs the §3.3.2 extraction for release r by patching
// the finished extraction of the previous release. The result localizes
// byte-identically to ExtractStatic(r); only the build cost differs. A nil
// prev, or a diff touching the majority of classes, falls back to the full
// extraction (reported in the stats).
func (s *Solver) ExtractStaticDelta(prev *StaticInfo, r *apk.Release) (*StaticInfo, *DeltaStats) {
	stats := &DeltaStats{}
	info := s.extractStaticDelta(prev, r, stats)
	return info, stats
}

func (s *Solver) extractStaticDelta(prev *StaticInfo, r *apk.Release, stats *DeltaStats) *StaticInfo {
	stats.Applied = true
	if prev == nil {
		stats.Full, stats.Reason = true, "no base extraction"
		return s.ExtractStatic(r)
	}
	d := apk.DiffReleases(prev.Release, r)
	stats.ClassesAdded = len(d.AddedClasses)
	stats.ClassesRemoved = len(d.RemovedClasses)
	stats.ClassesChanged = len(d.ChangedClasses)

	// recompute = classes whose derived artifacts cannot be reused: added,
	// changed, or removed (a removed class's contributions must drop out of
	// every aggregate).
	recompute := make(map[string]struct{}, stats.ClassesAdded+stats.ClassesRemoved+stats.ClassesChanged)
	for _, n := range d.TouchedClasses() {
		recompute[n] = struct{}{}
	}
	for _, n := range d.RemovedClasses {
		recompute[n] = struct{}{}
	}
	if 2*len(recompute) > len(r.Classes) {
		stats.Full, stats.Reason = true, "diff touches a majority of classes"
		return s.ExtractStatic(r)
	}

	g := apg.Build(r)
	mergeMethodOrder(prev, g, r, d, recompute)

	info := &StaticInfo{
		Release:     r,
		Graph:       g,
		Permissions: append([]string(nil), r.Manifest.Permissions...),
		Exceptions:  g.ExceptionSites(),
	}
	if act, ok := r.StartingActivity(); ok {
		info.StartingActivity = act.Name
	}

	recomputeKeys := sortedKeys(recompute)
	guiPrev := s.deltaGUIs(info, prev, r, g, d, recompute, stats)
	info.deltaAPIs(s, prev, g, d, recompute)
	info.deltaURIs(s, prev, g, recompute, recomputeKeys)
	info.deltaIntents(s, prev, g, recompute, recomputeKeys)
	info.deltaMessages(prev, g, recompute, recomputeKeys)
	methodRowMap := info.deltaMethodPhrases(s, prev, g, recompute, stats)
	info.buildScanStateDelta(s, prev, methodRowMap, guiPrev, stats)
	return info
}

// mergeMethodOrder pre-seeds the graph's Methods() memo by merging the
// previous release's sorted method list (classes outside the recompute set,
// rebound to this graph's method pointers) with the freshly sorted methods
// of touched classes. On any mismatch it simply declines and Methods()
// falls back to its own sort — same order, just slower.
func mergeMethodOrder(prev *StaticInfo, g *apg.Graph, r *apk.Release, d *apk.ReleaseDelta, recompute map[string]struct{}) bool {
	prevMethods := prev.Graph.Methods()
	kept := make([]*apk.Method, 0, len(prevMethods))
	for _, m := range prevMethods {
		if _, skip := recompute[m.Class]; skip {
			continue
		}
		nm, ok := g.MethodRef(m.Class, m.Name)
		if !ok {
			return false
		}
		kept = append(kept, nm)
	}
	var fresh []*apk.Method
	for _, cn := range d.TouchedClasses() {
		c, ok := r.FindClass(cn)
		if !ok {
			continue
		}
		seen := make(map[string]struct{}, len(c.Methods))
		for _, m := range c.Methods {
			if _, dup := seen[m.Name]; dup {
				continue
			}
			seen[m.Name] = struct{}{}
			// MethodRef resolves duplicate declarations the way the graph
			// does (last declaration wins).
			nm, ok := g.MethodRef(cn, m.Name)
			if !ok {
				return false
			}
			fresh = append(fresh, nm)
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return apg.QualifiedLess(fresh[i], fresh[j]) })
	merged := make([]*apk.Method, 0, len(kept)+len(fresh))
	ki, fi := 0, 0
	for ki < len(kept) && fi < len(fresh) {
		if apg.QualifiedLess(kept[ki], fresh[fi]) {
			merged = append(merged, kept[ki])
			ki++
		} else {
			merged = append(merged, fresh[fi])
			fi++
		}
	}
	merged = append(merged, kept[ki:]...)
	merged = append(merged, fresh[fi:]...)
	return g.AdoptMethodOrder(merged)
}

// deltaGUIs rebuilds info.GUIs and info.invisibleVecs, reusing the previous
// recovery of every activity whose declaration, layout, string resources,
// and backing class are all untouched. It returns, per final (sorted) GUI
// index, the previous GUI index the entry was reused from, or -1.
func (s *Solver) deltaGUIs(info *StaticInfo, prev *StaticInfo, r *apk.Release, g *apg.Graph, d *apk.ReleaseDelta, recompute map[string]struct{}, stats *DeltaStats) []int32 {
	prevByName := make(map[string]int32, len(prev.GUIs))
	for i := range prev.GUIs {
		if _, dup := prevByName[prev.GUIs[i].Activity]; !dup {
			prevByName[prev.GUIs[i].Activity] = int32(i)
		}
	}
	reused := make(map[string]int32)
	guis := make([]gui.ActivityGUI, 0, len(r.Manifest.Activities))
	// Same construction order as gui.Recover: manifest declaration order,
	// then one sort by activity name. Reused entries are value-identical to
	// what RecoverActivity would produce, so the sorted result matches the
	// full build's exactly.
	for _, decl := range r.Manifest.Activities {
		pgi, known := prevByName[decl.Name]
		_, classTouched := recompute[decl.Name]
		if known && !classTouched && !d.StringResChanged &&
			!d.ActivityTouched(decl.Name) && !d.LayoutTouched(decl.LayoutID) {
			guis = append(guis, prev.GUIs[pgi])
			reused[decl.Name] = pgi
			stats.GUIsReused++
			continue
		}
		guis = append(guis, gui.RecoverActivity(r, g, decl))
		stats.GUIsFresh++
	}
	sort.Slice(guis, func(i, j int) bool { return guis[i].Activity < guis[j].Activity })
	info.GUIs = guis

	// Recover the reuse mapping after the sort (reused names are unique:
	// duplicate declarations are conservatively diffed as changed) and embed
	// the invisible labels of fresh recoveries only.
	guiPrev := make([]int32, len(guis))
	info.invisibleVecs = make([][]wordvec.Vector, len(guis))
	for gi := range guis {
		if pgi, ok := reused[guis[gi].Activity]; ok {
			guiPrev[gi] = pgi
			info.invisibleVecs[gi] = prev.invisibleVecs[pgi]
			continue
		}
		guiPrev[gi] = -1
		a := &guis[gi]
		vecs := make([]wordvec.Vector, len(a.InvisibleWords))
		for wi, idWords := range a.InvisibleWords {
			if len(idWords) == 0 {
				continue
			}
			vecs[wi] = s.vec.PhraseVector(idWords)
		}
		info.invisibleVecs[gi] = vecs
	}
	return guiPrev
}

// deltaAPIs patches the framework-API inventory. The rescan set is the
// recompute set widened with every class invoking an added or removed class
// name (on either graph), because the app/framework classification of those
// classes' call sites can flip.
func (info *StaticInfo) deltaAPIs(s *Solver, prev *StaticInfo, g *apg.Graph, d *apk.ReleaseDelta, recompute map[string]struct{}) {
	hazard := make(map[string]struct{}, len(recompute))
	for c := range recompute {
		hazard[c] = struct{}{}
	}
	for _, name := range d.AddedClasses {
		for _, c := range prev.Graph.ClassesInvoking(name) {
			hazard[c] = struct{}{}
		}
		for _, c := range g.ClassesInvoking(name) {
			hazard[c] = struct{}{}
		}
	}
	for _, name := range d.RemovedClasses {
		for _, c := range prev.Graph.ClassesInvoking(name) {
			hazard[c] = struct{}{}
		}
		for _, c := range g.ClassesInvoking(name) {
			hazard[c] = struct{}{}
		}
	}

	// Rescan only the hazard classes, aggregated per API key. This is the
	// whole O(diff) part; everything outside it is inherited below.
	type agg struct {
		api     sdk.API
		classes map[string]struct{}
		prevHit bool // merged into a previous entry (not a new key)
	}
	hazardKeys := sortedKeys(hazard)
	rescan := make(map[string]*agg)
	for _, site := range g.FrameworkCallsIn(hazardKeys) {
		st := site.Statement()
		api, ok := s.catalog.LookupAPI(st.InvokeClass, st.InvokeMethod)
		if !ok {
			continue
		}
		key := api.Class + "." + api.Method
		a, exists := rescan[key]
		if !exists {
			a = &agg{api: api, classes: make(map[string]struct{})}
			rescan[key] = a
		}
		a.classes[site.Class()] = struct{}{}
	}

	// Walk the previous inventory (already sorted by key). An entry with no
	// hazard class and no rescanned sites is inherited wholesale — membership
	// could only change through a hazard class, so no per-entry set is built.
	type entry struct {
		key string
		use APIUse
	}
	entries := make([]entry, 0, len(prev.APIs)+len(rescan))
	for i := range prev.APIs {
		pu := &prev.APIs[i]
		key := pu.API.Class + "." + pu.API.Method
		add, rescanned := rescan[key]
		if !rescanned && !anyInSorted(pu.Classes, hazardKeys) {
			entries = append(entries, entry{key, APIUse{API: pu.API, Classes: pu.Classes,
				Phrases: pu.Phrases, PhraseVecs: pu.PhraseVecs}})
			continue
		}
		set := make(map[string]struct{}, len(pu.Classes))
		for _, c := range pu.Classes {
			if _, skip := hazard[c]; !skip {
				set[c] = struct{}{}
			}
		}
		if rescanned {
			add.prevHit = true
			for c := range add.classes {
				set[c] = struct{}{}
			}
		}
		if len(set) == 0 {
			continue
		}
		// The describing phrases are a pure function of the API entry: share
		// the previous embeddings.
		entries = append(entries, entry{key, APIUse{API: pu.API, Classes: sortedKeys(set),
			Phrases: pu.Phrases, PhraseVecs: pu.PhraseVecs}})
	}
	for key, a := range rescan {
		if a.prevHit || len(a.classes) == 0 {
			continue
		}
		use := APIUse{API: a.api, Classes: sortedKeys(a.classes)}
		for _, phrase := range apiPhrases(a.api) {
			use.Phrases = append(use.Phrases, phrase)
			use.PhraseVecs = append(use.PhraseVecs, s.vec.PhraseVector(phrase))
		}
		entries = append(entries, entry{key, use})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	info.APIs = make([]APIUse, len(entries))
	info.apiClasses = make(map[string][]string, len(entries))
	for i := range entries {
		info.APIs[i] = entries[i].use
		info.apiClasses[entries[i].key] = entries[i].use.Classes
	}
}

// anyInSorted reports whether any of the (sorted, typically few) needles
// occurs in the sorted haystack — the membership probe behind every
// "can this inventory entry be inherited verbatim?" fast path.
func anyInSorted(haystack, needles []string) bool {
	for _, n := range needles {
		if i := sort.SearchStrings(haystack, n); i < len(haystack) && haystack[i] == n {
			return true
		}
	}
	return false
}

// deltaURIs patches the content-provider URI inventory. Entries with no
// recomputed class and no rescanned sites are inherited wholesale — their
// membership could only change through a recomputed class.
func (info *StaticInfo) deltaURIs(s *Solver, prev *StaticInfo, g *apg.Graph, recompute map[string]struct{}, recomputeKeys []string) {
	type agg struct {
		uri     sdk.URI
		classes map[string]struct{}
		prevHit bool
	}
	rescan := make(map[string]*agg)
	for _, q := range g.ContentQueriesIn(recomputeKeys) {
		for _, u := range q.URIs {
			perm, ok := s.catalog.URIPermission(u)
			if !ok {
				continue
			}
			a, exists := rescan[u]
			if !exists {
				a = &agg{uri: sdk.URI{URI: u, Permission: perm},
					classes: make(map[string]struct{})}
				rescan[u] = a
			}
			a.classes[q.Site.Class()] = struct{}{}
		}
	}
	type entry struct {
		key string
		use URIUse
	}
	entries := make([]entry, 0, len(prev.URIs)+len(rescan))
	for i := range prev.URIs {
		pu := &prev.URIs[i]
		key := pu.URI.URI
		add, rescanned := rescan[key]
		if !rescanned && !anyInSorted(pu.Classes, recomputeKeys) {
			entries = append(entries, entry{key, URIUse{URI: pu.URI, Nouns: pu.Nouns, Classes: pu.Classes}})
			continue
		}
		set := make(map[string]struct{}, len(pu.Classes))
		for _, c := range pu.Classes {
			if _, skip := recompute[c]; !skip {
				set[c] = struct{}{}
			}
		}
		if rescanned {
			add.prevHit = true
			for c := range add.classes {
				set[c] = struct{}{}
			}
		}
		if len(set) == 0 {
			continue
		}
		entries = append(entries, entry{key, URIUse{URI: pu.URI, Nouns: pu.Nouns, Classes: sortedKeys(set)}})
	}
	for key, a := range rescan {
		if a.prevHit || len(a.classes) == 0 {
			continue
		}
		entries = append(entries, entry{key, URIUse{
			URI:     a.uri,
			Nouns:   permissionNouns(s, a.uri.Permission),
			Classes: sortedKeys(a.classes),
		}})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	info.URIs = make([]URIUse, len(entries))
	for i := range entries {
		info.URIs[i] = entries[i].use
	}
}

// deltaIntents patches the dispatched-intent inventory; untouched entries
// are inherited wholesale (see deltaURIs).
func (info *StaticInfo) deltaIntents(s *Solver, prev *StaticInfo, g *apg.Graph, recompute map[string]struct{}, recomputeKeys []string) {
	var nounsFor map[string][]string // lazily built: only rescans need it
	catalogNouns := func(action string) ([]string, bool) {
		if nounsFor == nil {
			nounsFor = make(map[string][]string, len(s.catalog.Intents()))
			for _, in := range s.catalog.Intents() {
				nounsFor[in.Action] = in.Nouns
			}
		}
		nouns, known := nounsFor[action]
		return nouns, known
	}
	type agg struct {
		classes map[string]struct{}
		prevHit bool
	}
	rescan := make(map[string]*agg)
	for _, send := range g.IntentSendsIn(recomputeKeys) {
		for _, action := range send.Actions {
			if _, known := catalogNouns(action); !known {
				continue
			}
			a, exists := rescan[action]
			if !exists {
				a = &agg{classes: make(map[string]struct{})}
				rescan[action] = a
			}
			a.classes[send.Site.Class()] = struct{}{}
		}
	}
	type entry struct {
		key string
		use IntentUse
	}
	entries := make([]entry, 0, len(prev.Intents)+len(rescan))
	for i := range prev.Intents {
		pu := &prev.Intents[i]
		add, rescanned := rescan[pu.Action]
		if !rescanned && !anyInSorted(pu.Classes, recomputeKeys) {
			entries = append(entries, entry{pu.Action, IntentUse{Action: pu.Action, Nouns: pu.Nouns, Classes: pu.Classes}})
			continue
		}
		set := make(map[string]struct{}, len(pu.Classes))
		for _, c := range pu.Classes {
			if _, skip := recompute[c]; !skip {
				set[c] = struct{}{}
			}
		}
		if rescanned {
			add.prevHit = true
			for c := range add.classes {
				set[c] = struct{}{}
			}
		}
		if len(set) == 0 {
			continue
		}
		entries = append(entries, entry{pu.Action, IntentUse{Action: pu.Action, Nouns: pu.Nouns, Classes: sortedKeys(set)}})
	}
	for action, a := range rescan {
		if a.prevHit || len(a.classes) == 0 {
			continue
		}
		nouns, _ := catalogNouns(action)
		entries = append(entries, entry{action, IntentUse{
			Action:  action,
			Nouns:   nouns,
			Classes: sortedKeys(a.classes),
		}})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	info.Intents = make([]IntentUse, len(entries))
	for i := range entries {
		info.Intents[i] = entries[i].use
	}
}

// deltaMessages patches the user-visible message inventory; untouched
// entries are inherited wholesale (see deltaURIs).
func (info *StaticInfo) deltaMessages(prev *StaticInfo, g *apg.Graph, recompute map[string]struct{}, recomputeKeys []string) {
	rescan := make(map[string]map[string]struct{})
	for _, m := range g.ErrorMessagesIn(recomputeKeys) {
		for _, text := range m.Texts {
			set, ok := rescan[text]
			if !ok {
				set = make(map[string]struct{})
				rescan[text] = set
			}
			set[m.Site.Class()] = struct{}{}
		}
	}
	type entry struct {
		key string
		use MessageUse
	}
	entries := make([]entry, 0, len(prev.Messages)+len(rescan))
	for i := range prev.Messages {
		pm := &prev.Messages[i]
		add, rescanned := rescan[pm.Text]
		if !rescanned && !anyInSorted(pm.Classes, recomputeKeys) {
			entries = append(entries, entry{pm.Text, MessageUse{Text: pm.Text, Classes: pm.Classes}})
			continue
		}
		set := make(map[string]struct{}, len(pm.Classes))
		for _, c := range pm.Classes {
			if _, skip := recompute[c]; !skip {
				set[c] = struct{}{}
			}
		}
		if rescanned {
			delete(rescan, pm.Text)
			for c := range add {
				set[c] = struct{}{}
			}
		}
		if len(set) == 0 {
			continue
		}
		entries = append(entries, entry{pm.Text, MessageUse{Text: pm.Text, Classes: sortedKeys(set)}})
	}
	for text, set := range rescan {
		if len(set) == 0 {
			continue
		}
		entries = append(entries, entry{text, MessageUse{Text: text, Classes: sortedKeys(set)}})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	info.Messages = make([]MessageUse, len(entries))
	for i := range entries {
		info.Messages[i] = entries[i].use
	}
}

// deltaMethodPhrases rebuilds the method-phrase list in the graph's sorted
// method order, copying the previous phrases (words, embedding, summary
// flag) of every method in an untouched class and recomputing the rest. The
// returned rowMap gives, per new matrix row, the previous row it reuses
// (-1 for fresh rows).
//
// prev.MethodPhrases was emitted by walking its own graph's Methods() — the
// same qualified-name order g.Methods() follows, with a method's one or two
// rows adjacent — so a single merge cursor finds each method's previous
// rows without indexing all of them: entries ordered before the current
// method belong to removed (or renamed-away) methods and are skipped.
func (info *StaticInfo) deltaMethodPhrases(s *Solver, prev *StaticInfo, g *apg.Graph, recompute map[string]struct{}, stats *DeltaStats) []int32 {
	pms := prev.MethodPhrases
	pi := 0
	rowMap := make([]int32, 0, len(pms))
	info.MethodPhrases = make([]MethodPhrase, 0, len(pms)+8)

	// Reused entries are copied in maximal contiguous prev runs (one
	// memmove), then only the Method pointers are rebound to this graph —
	// entire untouched stretches of the sorted order transfer this way.
	runStart := -1               // first prev row of the pending run
	var runMethods []*apk.Method // rebound Method per pending entry
	flush := func() {
		if runStart < 0 {
			return
		}
		off := len(info.MethodPhrases)
		info.MethodPhrases = append(info.MethodPhrases, pms[runStart:pi]...)
		for i, nm := range runMethods {
			info.MethodPhrases[off+i].Method = nm
			rowMap = append(rowMap, int32(runStart+i))
		}
		stats.MethodRowsReused += len(runMethods)
		runStart = -1
		runMethods = runMethods[:0]
	}
	for _, m := range g.Methods() {
		if pi < len(pms) && apg.QualifiedLess(pms[pi].Method, m) {
			// Prev entries ordered before m (removed methods): the skip
			// breaks run contiguity, so flush first.
			flush()
			for pi < len(pms) && apg.QualifiedLess(pms[pi].Method, m) {
				pi++
			}
		}
		if _, touched := recompute[m.Class]; !touched {
			if runStart < 0 {
				runStart = pi
			}
			for pi < len(pms) && pms[pi].Method.Class == m.Class && pms[pi].Method.Name == m.Name {
				runMethods = append(runMethods, m)
				pi++
			}
			continue
		}
		flush()
		phrase := methodNamePhrase(m.Name, shortClassName(m.Class))
		if len(phrase) > 0 {
			info.MethodPhrases = append(info.MethodPhrases, MethodPhrase{
				Method: m,
				Words:  phrase,
				Vec:    s.vec.PhraseVector(phrase),
			})
			rowMap = append(rowMap, -1)
			stats.MethodRowsFresh++
		}
		if s.summarizer != nil && (len(phrase) == 0 || s.summarizeAll) {
			if words := s.summarizer.Predict(m, 3); len(words) > 0 {
				info.MethodPhrases = append(info.MethodPhrases, MethodPhrase{
					Method:      m,
					Words:       words,
					Vec:         s.vec.PhraseVector(words),
					FromSummary: true,
				})
				rowMap = append(rowMap, -1)
				stats.MethodRowsFresh++
			}
		}
	}
	flush()
	return rowMap
}

// buildScanStateDelta is buildScanState with row-level reuse: matrix data
// rows are appended as usual (the embeddings themselves were already reused
// value-wise above), but the sketch (projection + residual) of every mapped
// row is copied from the base matrices instead of re-orthogonalized, and
// the quantized tier is patched in place when that is sound and profitable.
func (info *StaticInfo) buildScanStateDelta(s *Solver, prev *StaticInfo, methodRowMap []int32, guiPrev []int32, stats *DeltaStats) {
	info.methodMatrix = assembleDeltaMatrix(prev.methodMatrix, methodRowMap, func(r int) *wordvec.Vector {
		return &info.MethodPhrases[r].Vec
	})
	finishDelta(s, info.methodMatrix, prev.methodMatrix, methodRowMap, stats)

	// prev.invisibleRows is sorted by (GUI, Widget), so a previous GUI's rows
	// are contiguous; recording each GUI's first row replaces a full
	// (GUI, Widget)→row index. A reused GUI is value-identical to its
	// previous recovery, so its k-th labeled widget sits exactly k rows past
	// that start — the ref equality check below pins that invariant.
	prevRowStart := make([]int32, len(prev.GUIs))
	for i := range prevRowStart {
		prevRowStart[i] = -1
	}
	for i := len(prev.invisibleRows) - 1; i >= 0; i-- {
		prevRowStart[prev.invisibleRows[i].GUI] = int32(i)
	}
	info.invisibleRows = make([]invisibleRef, 0, len(prev.invisibleRows)+8)
	invRowMap := make([]int32, 0, len(prev.invisibleRows)+8)
	for gi := range info.GUIs {
		labeled := int32(0) // labeled widgets seen so far in this GUI
		for wi, idWords := range info.GUIs[gi].InvisibleWords {
			if len(idWords) == 0 {
				continue
			}
			info.invisibleRows = append(info.invisibleRows, invisibleRef{GUI: int32(gi), Widget: int32(wi)})
			mapped := int32(-1)
			if pgi := guiPrev[gi]; pgi >= 0 && prevRowStart[pgi] >= 0 {
				if pr := prevRowStart[pgi] + labeled; int(pr) < len(prev.invisibleRows) &&
					prev.invisibleRows[pr] == (invisibleRef{GUI: pgi, Widget: int32(wi)}) {
					mapped = pr
				}
			}
			labeled++
			invRowMap = append(invRowMap, mapped)
			if mapped >= 0 {
				stats.InvisibleRowsReused++
			} else {
				stats.InvisibleRowsFresh++
			}
		}
	}
	info.invisibleMatrix = assembleDeltaMatrix(prev.invisibleMatrix, invRowMap, func(r int) *wordvec.Vector {
		ref := info.invisibleRows[r]
		return &info.invisibleVecs[ref.GUI][ref.Widget]
	})
	finishDelta(s, info.invisibleMatrix, prev.invisibleMatrix, invRowMap, stats)

	prevURIVec := make(map[string]wordvec.Vector, len(prev.URIs))
	for i := range prev.URIs {
		prevURIVec[prev.URIs[i].URI.URI] = prev.uriNounVecs[i]
	}
	info.uriNounVecs = make([]wordvec.Vector, len(info.URIs))
	for i := range info.URIs {
		if v, ok := prevURIVec[info.URIs[i].URI.URI]; ok {
			info.uriNounVecs[i] = v
		} else if len(info.URIs[i].Nouns) > 0 {
			info.uriNounVecs[i] = s.vec.PhraseVector(info.URIs[i].Nouns)
		}
	}

	prevIntentVecs := make(map[string][]wordvec.Vector, len(prev.Intents))
	for i := range prev.Intents {
		prevIntentVecs[prev.Intents[i].Action] = prev.intentNounVecs[i]
	}
	info.intentNounVecs = make([][]wordvec.Vector, len(info.Intents))
	for i := range info.Intents {
		if vecs, ok := prevIntentVecs[info.Intents[i].Action]; ok {
			info.intentNounVecs[i] = vecs
			continue
		}
		vecs := make([]wordvec.Vector, len(info.Intents[i].Nouns))
		for j, noun := range info.Intents[i].Nouns {
			vecs[j] = s.vec.PhraseVector([]string{noun})
		}
		info.intentNounVecs[i] = vecs
	}

	prevDescWords := make(map[string][]string, len(prev.APIs))
	for i := range prev.APIs {
		prevDescWords[prev.APIs[i].API.Class+"."+prev.APIs[i].API.Method] = prev.descWords[i]
	}
	info.descWords = make([][]string, len(info.APIs))
	for i := range info.APIs {
		key := info.APIs[i].API.Class + "." + info.APIs[i].API.Method
		if ws, ok := prevDescWords[key]; ok {
			info.descWords[i] = ws
		} else {
			info.descWords[i] = textproc.Words(info.APIs[i].API.Description)
		}
	}

	prevNorm := make(map[string]string, len(prev.Messages))
	for i := range prev.Messages {
		prevNorm[prev.Messages[i].Text] = prev.normMessages[i]
	}
	info.normMessages = make([]string, len(info.Messages))
	for i := range info.Messages {
		if n, ok := prevNorm[info.Messages[i].Text]; ok {
			info.normMessages[i] = n
		} else {
			info.normMessages[i] = normalizeMessage(info.Messages[i].Text)
		}
	}
}

// assembleDeltaMatrix builds a delta matrix's data block directly: maximal
// contiguous runs of reused rows are copied out of the base in single
// memmoves, fresh rows from their vectors. vec(r) must return the row's
// vector for any r (reused rows carry the same values the base does, so the
// defensive fallback below is value-identical). The result is unfinished —
// finishDelta supplies the sketch.
func assembleDeltaMatrix(base *wordvec.Matrix, rowMap []int32, vec func(r int) *wordvec.Vector) *wordvec.Matrix {
	const d = wordvec.Dim
	data := make([]float64, len(rowMap)*d)
	var baseData []float64
	if base != nil {
		baseData = base.Data()
	}
	for r := 0; r < len(rowMap); {
		sr := rowMap[r]
		if sr < 0 {
			copy(data[r*d:(r+1)*d], vec(r)[:])
			r++
			continue
		}
		n := 1
		for r+n < len(rowMap) && rowMap[r+n] == sr+int32(n) {
			n++
		}
		if end := (int(sr) + n) * d; end <= len(baseData) {
			copy(data[r*d:(r+n)*d], baseData[int(sr)*d:end])
		} else {
			// Defensive: an out-of-range map still yields correct data via
			// the vectors; FinishReuse will reject the map downstream.
			for i := 0; i < n; i++ {
				copy(data[(r+i)*d:(r+i+1)*d], vec(r + i)[:])
			}
		}
		r += n
	}
	m, err := wordvec.MatrixFromParts(data, nil, nil)
	if err == nil {
		return m
	}
	// Unreachable (len(data) is rows×Dim by construction); rebuild row-wise.
	fb := wordvec.NewMatrix(len(rowMap))
	for r := range rowMap {
		fb.Append(*vec(r))
	}
	return fb
}

// finishDelta finishes a matrix reusing the base matrix's sketch rows, then
// applies the solver's quantization policy: the previous tier is patched in
// place when the full build would also grow a tier, the base has one, and
// fresh rows are a small minority; otherwise the tier is (re)built from
// scratch exactly as the full path would.
func finishDelta(s *Solver, m, base *wordvec.Matrix, rowMap []int32, stats *DeltaStats) {
	if err := m.FinishReuse(base, rowMap); err != nil {
		// Defensive: an inconsistent row map falls back to the plain finish.
		m.Finish()
		s.quantize(m)
		if m.HasQuant() {
			stats.QuantRebuilt++
		}
		return
	}
	fresh := 0
	for _, sr := range rowMap {
		if sr < 0 {
			fresh++
		}
	}
	wouldBuild := s.forceQuant || m.Rows() >= wordvec.QuantMinRows
	if wouldBuild && base != nil && base.HasQuant() && fresh*4 <= m.Rows() {
		if ok, err := m.PatchQuant(base, rowMap); err == nil && ok {
			stats.QuantPatched++
			return
		}
	}
	s.quantize(m)
	if m.HasQuant() {
		stats.QuantRebuilt++
	}
}

// releaseDiffCache memoizes the changed-class sets change-aware ranking
// consults, keyed by the (previous, current) release pointer pair. Held by
// Solver as a pointer so copies made from a snapshot template share one
// cache; sync.Map fits the write-once read-many access pattern.
type releaseDiffCache struct {
	m sync.Map // [2]*apk.Release -> map[string]struct{}
}

// changedClasses returns the set of classes added or changed between prev
// and cur, memoized when a cache is installed (WithChangeAwareRank).
func (s *Solver) changedClasses(prev, cur *apk.Release) map[string]struct{} {
	if s.changedCache == nil {
		return changedClassSet(prev, cur)
	}
	key := [2]*apk.Release{prev, cur}
	if v, ok := s.changedCache.m.Load(key); ok {
		return v.(map[string]struct{})
	}
	set := changedClassSet(prev, cur)
	actual, _ := s.changedCache.m.LoadOrStore(key, set)
	return actual.(map[string]struct{})
}

func changedClassSet(prev, cur *apk.Release) map[string]struct{} {
	d := apk.DiffReleases(prev, cur)
	set := make(map[string]struct{})
	for _, n := range d.TouchedClasses() {
		set[n] = struct{}{}
	}
	return set
}

// ApplyDelta computes and installs the extraction for newR by patching the
// extraction of prevR (computing that first if needed). It is safe for
// concurrent use; if the snapshot already holds newR the call is a no-op
// (Applied stays false in the returned stats).
func (sn *Snapshot) ApplyDelta(prevR, newR *apk.Release) *DeltaStats {
	stats := &DeltaStats{}
	prev := sn.StaticFor(prevR)
	sn.mu.Lock()
	e := sn.static[newR]
	if e == nil {
		e = &staticEntry{}
		sn.static[newR] = e
	}
	sn.mu.Unlock()
	e.once.Do(func() { e.info = sn.solver.extractStaticDelta(prev, newR, stats) })
	return stats
}

// PrecomputeDelta extracts every release of an app in version order,
// building the first from scratch and each subsequent one as a delta
// against its predecessor. The returned stats are parallel to
// app.Releases. Compared to Precompute this trades the cross-release
// fan-out for O(diff) work per version bump, which wins on the long
// release histories snapshot builders feed it.
func (sn *Snapshot) PrecomputeDelta(app *apk.App) []*DeltaStats {
	out := make([]*DeltaStats, len(app.Releases))
	for i, r := range app.Releases {
		if i == 0 {
			sn.StaticFor(r)
			out[i] = &DeltaStats{Applied: true, Full: true, Reason: "first release"}
			continue
		}
		out[i] = sn.ApplyDelta(app.Releases[i-1], r)
	}
	return out
}
