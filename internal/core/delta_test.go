package core

import (
	"reflect"
	"testing"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/synth"
)

// TestDeltaMatchesFullLocalization is the incremental rebuild's central
// property test: a snapshot whose releases were extracted as deltas against
// their predecessors must localize byte-identically to a snapshot built
// from scratch, across seeds, inner parallelism, and the quantized tier
// (cold: no tier; warm: tier forced, so the delta path patches the base
// tier in place).
func TestDeltaMatchesFullLocalization(t *testing.T) {
	for _, seed := range []int64{3, 5, 7, 9} {
		data := synth.GenerateSample(seed)
		app := data.App
		reviews := data.Reviews
		if len(reviews) > 12 {
			reviews = reviews[:12]
		}
		for _, quant := range []bool{false, true} {
			opts := []Option{}
			if quant {
				opts = append(opts, WithQuantizedScan())
			}
			full := NewSnapshot(opts...)
			full.PrecomputeApp(app)
			delta := NewSnapshot(opts...)
			stats := delta.PrecomputeDelta(app)
			for i, st := range stats {
				if !st.Applied {
					t.Fatalf("seed %d: release %d delta not applied", seed, i)
				}
				if i > 0 && st.Full {
					t.Fatalf("seed %d: release %d fell back to full rebuild (%s)", seed, i, st.Reason)
				}
			}
			for _, workers := range []int{1, 2, 4} {
				fs := NewWithSnapshot(full, WithParallelism(workers))
				ds := NewWithSnapshot(delta, WithParallelism(workers))
				for i, rv := range reviews {
					want := fs.LocalizeReview(app, rv.Text, rv.PublishedAt)
					got := ds.LocalizeReview(app, rv.Text, rv.PublishedAt)
					if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
						t.Fatalf("seed %d quant %v workers %d review %d: delta-built output differs from full build",
							seed, quant, workers, i)
					}
					if want.Release != nil && got.Release != want.Release {
						t.Fatalf("seed %d review %d: release selection differs", seed, i)
					}
				}
			}
			// The explain traces (which additionally pin scan row counts and
			// per-match similarities) must agree bit for bit on the float
			// path; a patched quantized tier may prune differently, so the
			// trace comparison is float-only.
			if !quant {
				fs := NewWithSnapshot(full)
				ds := NewWithSnapshot(delta)
				for i, rv := range reviews {
					_, wantTr := fs.LocalizeReviewTraced(app, rv.Text, rv.PublishedAt)
					_, gotTr := ds.LocalizeReviewTraced(app, rv.Text, rv.PublishedAt)
					wj, err1 := wantTr.JSON()
					gj, err2 := gotTr.JSON()
					if err1 != nil || err2 != nil {
						t.Fatalf("trace JSON: %v / %v", err1, err2)
					}
					if string(wj) != string(gj) {
						t.Fatalf("seed %d review %d: delta-built trace differs from full build", seed, i)
					}
				}
			}
		}
	}
}

// TestDeltaStatsReportReuse: consecutive synthetic releases differ by a
// fault fix and one helper class, so the delta path must reuse the vast
// majority of method rows and GUI recoveries.
func TestDeltaStatsReportReuse(t *testing.T) {
	app := synth.GenerateSample(5).App
	if len(app.Releases) < 2 {
		t.Skip("sample app has a single release")
	}
	sn := NewSnapshot()
	stats := sn.PrecomputeDelta(app)
	for i := 1; i < len(stats); i++ {
		st := stats[i]
		if st.RowsReused() == 0 {
			t.Fatalf("release %d: no sketch rows reused", i)
		}
		if st.RowsReused() < st.RowsFresh() {
			t.Fatalf("release %d: reused %d rows < fresh %d — delta degenerated",
				i, st.RowsReused(), st.RowsFresh())
		}
		if st.GUIsReused == 0 {
			t.Fatalf("release %d: no GUI recoveries reused", i)
		}
	}
}

// TestExtractStaticDeltaFallbacks: a nil base and a majority-touched diff
// both fall back to the full extraction, reported in the stats.
func TestExtractStaticDeltaFallbacks(t *testing.T) {
	app := synth.GenerateSample(3).App
	s := New()
	info, st := s.ExtractStaticDelta(nil, app.Releases[0])
	if !st.Full || info == nil {
		t.Fatal("nil base must fall back to full extraction")
	}

	// Obfuscation renames every class, so the diff touches all of them.
	obf := synth.Obfuscate(app.Releases[0])
	prev := s.StaticFor(app.Releases[0])
	info, st = s.ExtractStaticDelta(prev, obf)
	if info == nil {
		t.Fatal("majority-touched delta returned no extraction")
	}
	if !st.Full {
		t.Fatal("majority-touched diff must fall back to full extraction")
	}
}

// TestApplyDeltaIdempotent: applying a delta for an already-extracted
// release is a no-op and reports Applied=false.
func TestApplyDeltaIdempotent(t *testing.T) {
	app := synth.GenerateSample(3).App
	if len(app.Releases) < 2 {
		t.Skip("sample app has a single release")
	}
	sn := NewSnapshot()
	first := sn.ApplyDelta(app.Releases[0], app.Releases[1])
	if !first.Applied {
		t.Fatal("first ApplyDelta did not run")
	}
	again := sn.ApplyDelta(app.Releases[0], app.Releases[1])
	if again.Applied {
		t.Fatal("second ApplyDelta recomputed a cached release")
	}
	if sn.StaticFor(app.Releases[1]) == nil {
		t.Fatal("delta-applied release not readable")
	}
}

// TestChangeAwareRankBoostsChangedClasses: under WithChangeAwareRank every
// candidate class touched by the version bump must rank ahead of every
// unchanged candidate, and the mapping set (localization proper) must be
// untouched.
func TestChangeAwareRankBoostsChangedClasses(t *testing.T) {
	for _, seed := range []int64{3, 5, 9} {
		data := synth.GenerateSample(seed)
		app := data.App
		plain := New()
		aware := New(WithChangeAwareRank())
		for _, rv := range data.Reviews {
			want := plain.LocalizeReview(app, rv.Text, rv.PublishedAt)
			got := aware.LocalizeReview(app, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want.Mappings) {
				t.Fatal("change-aware ranking altered the mapping set")
			}
			_, previous, ok := app.ReleaseBefore(rv.PublishedAt)
			if !ok || previous == nil {
				// No predecessor: rankings must agree exactly.
				if !reflect.DeepEqual(got.Ranked, want.Ranked) {
					t.Fatal("no-predecessor review ranked differently under change-aware ranking")
				}
				continue
			}
			seenUnchanged := false
			for _, rc := range got.Ranked {
				if rc.Changed && seenUnchanged {
					t.Fatalf("seed %d: changed class %s ranked below an unchanged one", seed, rc.Class)
				}
				if !rc.Changed {
					seenUnchanged = true
				}
			}
		}
	}
}

// TestChangeAwareRankUsesDiff pins the Changed flag to the structural diff:
// every class marked Changed must be in the touched set of the
// (previous, current) release diff.
func TestChangeAwareRankUsesDiff(t *testing.T) {
	data := synth.GenerateSample(5)
	app := data.App
	aware := New(WithChangeAwareRank())
	checked := 0
	for _, rv := range data.Reviews {
		res := aware.LocalizeReview(app, rv.Text, rv.PublishedAt)
		current, previous, ok := app.ReleaseBefore(rv.PublishedAt)
		if !ok || previous == nil || res.Release != current {
			continue
		}
		d := apk.DiffReleases(previous, current)
		for _, rc := range res.Ranked {
			if rc.Changed && !d.ClassTouched(rc.Class) {
				t.Fatalf("class %s marked changed but diff disagrees", rc.Class)
			}
			if !rc.Changed && d.ClassTouched(rc.Class) {
				t.Fatalf("class %s touched by diff but not marked changed", rc.Class)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no review hit a release with a predecessor")
	}
}
