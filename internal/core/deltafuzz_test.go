package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// typedDeltaError reports whether a LoadSnapshotDeltaImages failure is one
// of the documented typed errors: a snapfile container error, the core
// incompatibility sentinel, or one of the delta-specific sentinels. The
// serving registry's delta hot-swap quarantines on exactly this contract.
func typedDeltaError(err error) bool {
	if typedLoadError(err) {
		return true
	}
	return errors.Is(err, ErrSnapshotDelta) || errors.Is(err, ErrDeltaBaseMismatch) ||
		errors.Is(err, errNotDelta)
}

// FuzzLoadSnapshotDeltaImages: hostile delta images — and hostile bases —
// must never panic the delta-section decoder, and every rejection must be a
// typed error. Exercises the delta meta decode, base CRC binding, row-map
// bounds checks, and the per-release patch materialization.
func FuzzLoadSnapshotDeltaImages(f *testing.F) {
	deltaImg, baseImg := deltaFuzzFixture(f)
	for _, seed := range deltaFuzzSeedVariants(deltaImg, baseImg) {
		f.Add(seed[0], seed[1])
	}
	f.Fuzz(func(t *testing.T, delta, base []byte) {
		snap, app, err := LoadSnapshotDeltaImages(delta, base)
		if err != nil {
			if !typedDeltaError(err) {
				t.Fatalf("LoadSnapshotDeltaImages returned an untyped error: %v", err)
			}
			return
		}
		if snap == nil || app == nil {
			t.Fatal("LoadSnapshotDeltaImages returned nil snapshot/app without error")
		}
		// A loaded delta snapshot must be servable, like a full one.
		if s := NewWithSnapshot(snap); s == nil {
			t.Fatal("NewWithSnapshot returned nil for a delta-loaded snapshot")
		}
	})
}

// deltaFuzzFixture builds a valid (delta, base) image pair for the seeded
// sample app's version bump.
func deltaFuzzFixture(tb testing.TB) (deltaImg, baseImg []byte) {
	data := synth.GenerateSample(1)
	app := data.App
	if len(app.Releases) < 2 {
		tb.Fatal("sample app has a single release")
	}
	base := &apk.App{
		Package:  app.Package,
		Name:     app.Name,
		Releases: app.Releases[:len(app.Releases)-1],
	}
	baseImg, err := EncodeSnapshot(NewSnapshot(), base)
	if err != nil {
		tb.Fatalf("encode base: %v", err)
	}
	deltaImg, err = EncodeSnapshotDelta(NewSnapshot(), app, baseImg)
	if err != nil {
		tb.Fatalf("encode delta: %v", err)
	}
	return deltaImg, baseImg
}

// deltaFuzzSeedVariants mutates a valid pair toward the decoder's
// validation branches: container corruption on either image, a truncated
// delta, a damaged delta-meta section, a base-CRC mismatch, and the
// swapped/duplicated pairings the loader must reject via its typed binding
// checks rather than by reading out of bounds.
func deltaFuzzSeedVariants(deltaImg, baseImg []byte) [][2][]byte {
	flip := func(img []byte, i int) []byte {
		m := append([]byte(nil), img...)
		m[i] ^= 0xFF
		return m
	}
	badVersion := append([]byte(nil), deltaImg...)
	binary.LittleEndian.PutUint32(badVersion[8:], snapfile.Version+1)
	return [][2][]byte{
		{deltaImg, baseImg},
		{nil, baseImg},
		{deltaImg, nil},
		{baseImg, baseImg},   // a full image is not a delta
		{deltaImg, deltaImg}, // a delta is not a valid base
		{deltaImg[:16], baseImg},
		{deltaImg[:len(deltaImg)/2], baseImg},
		{deltaImg, baseImg[:len(baseImg)/2]},
		{flip(deltaImg, 0), baseImg},
		{flip(deltaImg, len(deltaImg)/2), baseImg},
		{flip(deltaImg, len(deltaImg)-1), baseImg},
		{deltaImg, flip(baseImg, len(baseImg)/2)},
		{badVersion, baseImg},
	}
}

// TestWriteDeltaFuzzSeeds regenerates the committed seed corpus under
// testdata/fuzz/FuzzLoadSnapshotDeltaImages (same gate as the other fuzz
// corpora):
//
//	REVIEWSOLVER_WRITE_FUZZ_SEEDS=1 go test -run TestWriteDeltaFuzzSeeds ./internal/core
func TestWriteDeltaFuzzSeeds(t *testing.T) {
	if os.Getenv("REVIEWSOLVER_WRITE_FUZZ_SEEDS") == "" {
		t.Skip("set REVIEWSOLVER_WRITE_FUZZ_SEEDS=1 to regenerate the seed corpus")
	}
	deltaImg, baseImg := deltaFuzzFixture(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadSnapshotDeltaImages")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range deltaFuzzSeedVariants(deltaImg, baseImg) {
		body := "go test fuzz v1\n" +
			"[]byte(" + strconv.Quote(string(seed[0])) + ")\n" +
			"[]byte(" + strconv.Quote(string(seed[1])) + ")\n"
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
