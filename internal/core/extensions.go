package core

import (
	"strings"

	"reviewsolver/internal/textproc"
)

// This file implements the §6.6 "future work" extensions the paper sketches
// as remedies for its false positives/negatives:
//
//   - DetectDevices: "use information retrieval technique to recognize the
//     types of devices and report them to developer automatically" — for
//     compatibility complaints that cannot be localized in code.
//   - MentionsResolvedIssue: "analyze the tense of the review to identify
//     the fixed bugs (e.g., '... has been fixed') and check the subject
//     related to the bug (e.g., 'my apps')" — removing the classifier's
//     false positives on bug-mentioning praise.

// DeviceMention is a device or OS-version reference found in a review.
type DeviceMention struct {
	// Kind is "device" or "os".
	Kind string
	// Text is the mention as written ("samsung note 4", "android 7.0").
	Text string
}

// deviceVendors are recognized handset vendors/brands.
var deviceVendors = map[string]struct{}{
	"samsung": {}, "xiaomi": {}, "huawei": {}, "nexus": {}, "pixel": {},
	"galaxy": {}, "oneplus": {}, "motorola": {}, "sony": {}, "lg": {},
	"htc": {}, "oppo": {}, "honor": {}, "redmi": {}, "nokia": {},
}

// deviceModels follow a vendor word ("note", "mi4c", "s8", …) — any short
// alphanumeric token qualifies.
func isModelToken(t textproc.Token) bool {
	if t.Kind == textproc.Number {
		return true
	}
	if t.Kind != textproc.Word || len(t.Lower) > 8 {
		return false
	}
	hasDigit := false
	for i := 0; i < len(t.Lower); i++ {
		if t.Lower[i] >= '0' && t.Lower[i] <= '9' {
			hasDigit = true
		}
	}
	return hasDigit || t.Lower == "note" || t.Lower == "tab" || t.Lower == "mini" ||
		t.Lower == "pro" || t.Lower == "plus" || t.Lower == "ultra"
}

// DetectDevices finds device and OS-version mentions in a review. Reviews
// whose only context is the device are compatibility reports; the paper
// proposes surfacing the device list to developers instead of a (spurious)
// code mapping.
func DetectDevices(review string) []DeviceMention {
	var out []DeviceMention
	toks := textproc.Tokenize(review)
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != textproc.Word {
			continue
		}
		if _, isVendor := deviceVendors[t.Lower]; isVendor {
			// Absorb following model tokens ("samsung note 4").
			words := []string{t.Lower}
			j := i + 1
			for j < len(toks) && isModelToken(toks[j]) {
				words = append(words, toks[j].Lower)
				j++
			}
			out = append(out, DeviceMention{Kind: "device", Text: strings.Join(words, " ")})
			i = j - 1
			continue
		}
		if t.Lower == "android" || t.Lower == "ios" {
			words := []string{t.Lower}
			j := i + 1
			for j < len(toks) && j <= i+2 &&
				(toks[j].Kind == textproc.Number || isOSName(toks[j].Lower)) {
				words = append(words, toks[j].Lower)
				j++
			}
			out = append(out, DeviceMention{Kind: "os", Text: strings.Join(words, " ")})
			i = j - 1
		} else if isOSName(t.Lower) {
			out = append(out, DeviceMention{Kind: "os", Text: t.Lower})
		}
	}
	return out
}

func isOSName(w string) bool {
	switch w {
	case "nougat", "oreo", "pie", "lollipop", "marshmallow", "kitkat",
		"jellybean", "version":
		return true
	}
	return false
}

// resolvedCues signal that the mentioned bug is already fixed (past
// perfect / resolution vocabulary), so the review praises rather than
// reports.
var resolvedCues = []string{
	"has been fixed", "have been fixed", "was fixed", "were fixed",
	"is fixed", "got fixed", "is gone now", "got resolved",
	"was solved", "disappeared after", "never came back", "no more crash",
	"no more bug", "no more error", "no more freeze", "not a problem anymore",
	"used to crash", "used to freeze", "used to have",
}

// otherAppCues signal that the bug belongs to a different app
// ("why my apps crashed").
var otherAppCues = []string{
	"my other apps", "other apps", "my apps crashed", "another app",
	"every other app",
}

// MentionsResolvedIssue reports whether the review's error vocabulary
// refers to an already-fixed bug or to another app — the tense/subject
// analysis of §6.6. Callers use it as a post-filter on the classifier:
//
//	if solver.IsErrorReview(text) && !core.MentionsResolvedIssue(text) { … }
func MentionsResolvedIssue(review string) bool {
	lower := " " + strings.ToLower(review) + " "
	for _, cue := range resolvedCues {
		if strings.Contains(lower, cue) {
			return true
		}
	}
	for _, cue := range otherAppCues {
		if strings.Contains(lower, cue) {
			return true
		}
	}
	// Generic pattern: <error word> ... <resolution verb> within one
	// sentence.
	for _, sentence := range textproc.SplitSentences(review) {
		words := textproc.Words(sentence)
		errIdx, fixIdx := -1, -1
		for i, w := range words {
			switch w {
			case "crash", "crashes", "bug", "bugs", "error", "errors",
				"freeze", "freezes", "glitch", "problem", "problems", "issue", "issues":
				if errIdx < 0 {
					errIdx = i
				}
			case "fixed", "resolved", "solved", "gone", "repaired":
				fixIdx = i
			}
		}
		if errIdx >= 0 && fixIdx > errIdx {
			return true
		}
	}
	return false
}
