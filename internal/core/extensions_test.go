package core

import (
	"testing"
	"time"

	"reviewsolver/internal/apk"
)

func TestDetectDevices(t *testing.T) {
	tests := []struct {
		review string
		want   []string
	}{
		{"Unable to fetch mail on Samsung Note 4", []string{"samsung note 4"}},
		{"Please fix the bug. i'm using xiaomi mi4c", []string{"xiaomi mi4c"}},
		{"crashes on android 7.0 all the time", []string{"android 7.0"}},
		{"I use Nougat on my Pixel 2", []string{"nougat", "pixel 2"}},
		{"the app crashes constantly", nil},
	}
	for _, tt := range tests {
		got := DetectDevices(tt.review)
		var texts []string
		for _, m := range got {
			texts = append(texts, m.Text)
		}
		if len(texts) != len(tt.want) {
			t.Errorf("DetectDevices(%q) = %v, want %v", tt.review, texts, tt.want)
			continue
		}
		for i := range texts {
			if texts[i] != tt.want[i] {
				t.Errorf("DetectDevices(%q)[%d] = %q, want %q", tt.review, i, texts[i], tt.want[i])
			}
		}
	}
}

func TestDetectDevicesKinds(t *testing.T) {
	ms := DetectDevices("samsung s8 running android 8.0")
	kinds := map[string]int{}
	for _, m := range ms {
		kinds[m.Kind]++
	}
	if kinds["device"] != 1 || kinds["os"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestMentionsResolvedIssue(t *testing.T) {
	resolved := []string{
		"The crash from the last version has been fixed, thank you!",
		"No more crashes after the update, works great now.",
		"This app helped me see why my other apps crashed so i could fix the bugs.",
		"The bug i reported got resolved quickly, five stars.",
		"Used to have a freeze on the old release but it never came back.",
	}
	for _, r := range resolved {
		if !MentionsResolvedIssue(r) {
			t.Errorf("MentionsResolvedIssue(%q) = false, want true", r)
		}
	}
	active := []string{
		"The app keeps crashing when i open links.",
		"Crash after crash. Uninstall very fast!",
		"There is a bug in the sync engine.",
		"Cannot login to my account.",
	}
	for _, r := range active {
		if MentionsResolvedIssue(r) {
			t.Errorf("MentionsResolvedIssue(%q) = true, want false", r)
		}
	}
}

// TestSummarizerLocalizesObfuscatedApp reproduces the §3.3.2 obfuscation
// scenario: when ProGuard renames every method to "a"/"b", the raw-name
// localizer goes blind, but the Code2vec summarizer recovers the mapping
// from the method bodies.
func TestSummarizerLocalizesObfuscatedApp(t *testing.T) {
	// An app whose SMS-sending method has a meaningful body.
	build := func(obfuscate bool) *apk.App {
		name := "sendMessage"
		if obfuscate {
			name = "a"
		}
		b := apk.NewBuilder("com.obf.app", "ObfApp")
		b.Release("1.0", 1, time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
		b.Class("com.obf.app.Worker").
			Method(name,
				apk.ConstString("s", "sending message"),
				apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage", "s"),
				apk.Invoke("", "android.telephony.SmsManager", "divideMessage"))
		return b.Build()
	}

	// Train the summarizer on the unobfuscated build (the F-Droid corpus
	// role) — several copies make the association strong.
	trainer := apk.NewBuilder("com.train.app", "Train")
	trainer.Release("1.0", 1, time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	cb := trainer.Class("com.train.app.W")
	for i := 0; i < 5; i++ {
		cb.Method("sendMessage",
			apk.ConstString("s", "sending message"),
			apk.Invoke("", "android.telephony.SmsManager", "sendTextMessage", "s"),
			apk.Invoke("", "android.telephony.SmsManager", "divideMessage"))
	}
	model := newTrainedSummarizer(t, trainer.Build().Latest())

	when := time.Date(2024, 2, 1, 0, 0, 0, 0, time.UTC)
	review := "i cannot send messages anymore"

	// Without the summarizer the obfuscated app yields no app-specific
	// mapping (API localizer may still fire; check contexts).
	plain := New()
	resPlain := plain.LocalizeReview(build(true), review, when)
	for _, m := range resPlain.Mappings {
		if m.Context.String() == "App Specific Task" {
			t.Fatalf("obfuscated app should not map via method names: %+v", m)
		}
	}

	// With the summarizer the method body predicts "send"/"message" and the
	// app-specific localizer fires.
	smart := New(WithSummarizer(model))
	resSmart := smart.LocalizeReview(build(true), review, when)
	found := false
	for _, m := range resSmart.Mappings {
		if m.Class == "com.obf.app.Worker" && m.Context.String() == "App Specific Task" {
			found = true
		}
	}
	if !found {
		t.Errorf("summarizer did not recover the obfuscated mapping: %+v", resSmart.Mappings)
	}
}
