package core

import (
	"sync"

	"reviewsolver/internal/phrase"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// This file is the NLP front-end engine: a corpus-level cache of the
// per-sentence analysis pipeline (sentiment split, intent filter,
// normalization, parse, extraction, pattern match) and of the per-phrase
// embedding preparation that every localizer repeats. Review corpora are
// heavily repetitive — the same complaints, the same verb phrases — so the
// steady state of a batch run is cache hits plus pooled scratch, with the
// expensive parse/embedding work paid once per distinct sentence or phrase.

// cacheShards spreads lock contention; perShard bounds residency. The caps
// are sized far above any seeded corpus (32×4096 sentences) so eviction
// never perturbs the deterministic hit/miss counters in CI; under adversarial
// input the two-generation rotation below still bounds memory.
const (
	cacheShards   = 32
	cachePerShard = 4096
)

type cacheShard[V any] struct {
	mu   sync.RWMutex
	cur  map[string]V
	prev map[string]V
}

// boundedCache is a sharded string-keyed cache bounded by two-generation
// rotation: when a shard's current map reaches half its cap it becomes the
// previous generation and a fresh map takes over, so residency per shard
// never exceeds cachePerShard while hot keys survive via promotion.
type boundedCache[V any] struct {
	shards [cacheShards]cacheShard[V]
}

func newBoundedCache[V any]() *boundedCache[V] {
	c := &boundedCache[V]{}
	for i := range c.shards {
		c.shards[i].cur = make(map[string]V)
	}
	return c
}

// cacheHash is FNV-1a over the key bytes.
func cacheHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func cacheHashBytes(key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *boundedCache[V]) get(key string) (V, bool) {
	sh := &c.shards[cacheHash(key)%cacheShards]
	sh.mu.RLock()
	v, ok := sh.cur[key]
	if ok {
		sh.mu.RUnlock()
		return v, true
	}
	v, ok = sh.prev[key]
	sh.mu.RUnlock()
	if ok {
		c.put(key, v) // promote so hot keys survive rotation
		return v, true
	}
	var zero V
	return zero, false
}

// getBytes is get for a byte-slice key. The map index expressions convert
// with string(key) directly, which the compiler recognizes as a lookup that
// needs no allocation — the hot path for interned phrase-ID keys.
func (c *boundedCache[V]) getBytes(key []byte) (V, bool) {
	sh := &c.shards[cacheHashBytes(key)%cacheShards]
	sh.mu.RLock()
	v, ok := sh.cur[string(key)]
	if ok {
		sh.mu.RUnlock()
		return v, true
	}
	v, ok = sh.prev[string(key)]
	sh.mu.RUnlock()
	if ok {
		c.put(string(key), v)
		return v, true
	}
	var zero V
	return zero, false
}

// put inserts key if absent and reports (resident value, whether this call
// created the entry). Under a concurrent duplicate compute the first insert
// wins and every later caller gets the winner's value with created=false, so
// "created" counts each distinct key exactly once — the property that keeps
// the miss counters deterministic at any worker count.
func (c *boundedCache[V]) put(key string, v V) (V, bool) {
	sh := &c.shards[cacheHash(key)%cacheShards]
	sh.mu.Lock()
	if old, ok := sh.cur[key]; ok {
		sh.mu.Unlock()
		return old, false
	}
	if len(sh.cur) >= cachePerShard/2 {
		sh.prev = sh.cur
		sh.cur = make(map[string]V, cachePerShard/2)
	}
	sh.cur[key] = v
	sh.mu.Unlock()
	return v, true
}

// size returns the resident entry count across all shards and generations.
func (c *boundedCache[V]) size() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.cur) + len(sh.prev)
		sh.mu.RUnlock()
	}
	return n
}

// clauseOutcome is the cached fate of one adversative clause of a sentence:
// dropped as positive, dropped by the intent filter, or kept with its
// normalized text, extracted phrases (with their pre-rendered String() keys),
// and vague-error pattern matches. All fields are read-only once cached.
type clauseOutcome struct {
	positive   bool
	filtered   bool
	normalized string
	vps        []phrase.VerbPhrase
	vpKeys     []string
	nps        []phrase.NounPhrase
	npKeys     []string
	patterns   []phrase.PatternMatch
}

// sentenceEntry is the cached analysis of one raw sentence (as produced by
// SplitSentences, i.e. already ASCII-stripped and trimmed).
type sentenceEntry struct {
	clauses []clauseOutcome
}

// phrasePrep is the cached embedding preparation of one verb phrase: the
// derived word forms and every vector/query the localizers need. PrepareQuery
// depends only on the global anchor basis, not on per-model state, so the
// queries are cacheable alongside the vectors.
type phrasePrep struct {
	text       string
	words      []string
	vec        wordvec.Vector
	q          wordvec.Query
	hasObj     bool
	objVec     wordvec.Vector
	contentVec wordvec.Vector
	contentQ   wordvec.Query
}

// analysisScratch holds the per-review dedup sets AnalyzeReview reuses
// across calls via the frontend pool.
type analysisScratch struct {
	seenVP map[string]struct{}
	seenNP map[string]struct{}
}

// frontend bundles the interner, the analysis caches, and the pooled
// scratch. One frontend is shared by every solver copied from the same
// template (snapshot-backed solvers and pool workers), so the caches are
// corpus-level: any worker's parse warms every other worker.
type frontend struct {
	in         *textproc.Interner
	sentences  *boundedCache[*sentenceEntry]
	preps      *boundedCache[*phrasePrep]
	vecs       *boundedCache[wordvec.Vector]
	scratch    sync.Pool // *analysisScratch
	keyScratch sync.Pool // *[]byte, interned-ID key buffers
}

func newFrontend() *frontend {
	fe := &frontend{
		in:        defaultInterner(),
		sentences: newBoundedCache[*sentenceEntry](),
		preps:     newBoundedCache[*phrasePrep](),
		vecs:      newBoundedCache[wordvec.Vector](),
	}
	fe.scratch.New = func() any {
		return &analysisScratch{
			seenVP: make(map[string]struct{}, 16),
			seenNP: make(map[string]struct{}, 16),
		}
	}
	fe.keyScratch.New = func() any {
		b := make([]byte, 0, 64)
		return &b
	}
	return fe
}

// sentence returns the cached analysis of one sentence, computing and
// inserting it on a miss. Exactly one hit-or-miss counter increment happens
// per lookup; a miss is counted only when this call created the cache entry,
// so misses equal distinct sentences and hits equal lookups minus distinct
// sentences — deterministic at any worker count (absent eviction, which the
// cap sizing rules out for seeded corpora).
func (fe *frontend) sentence(s *Solver, sent string) *sentenceEntry {
	if e, ok := fe.sentences.get(sent); ok {
		s.rec.Counter(metricAnalysisCacheHits).Add(1)
		return e
	}
	e, created := fe.sentences.put(sent, s.computeSentence(sent))
	if created {
		s.rec.Counter(metricAnalysisCacheMisses).Add(1)
	} else {
		s.rec.Counter(metricAnalysisCacheHits).Add(1)
	}
	return e
}

// computeSentence runs the uncached §3.2 per-sentence pipeline: adversative
// split, sentiment filter, intent filter, normalization, parse, phrase
// extraction, and vague-error pattern matching.
func (s *Solver) computeSentence(sent string) *sentenceEntry {
	e := &sentenceEntry{}
	for _, clause := range sentiment.SplitAdversative(sent) {
		var co clauseOutcome
		switch {
		case s.sentiment.Classify(clause) == sentiment.Positive:
			co.positive = true
		case phrase.ClassifyIntent(clause).ShouldFilter():
			co.filtered = true
		default:
			co.normalized = s.normalizer.NormalizeSentence(clause)
			p := s.extractor.Parse(co.normalized)
			ex := s.extractor.Extract(p)
			co.vps = ex.VerbPhrases
			co.nps = ex.NounPhrases
			if len(ex.VerbPhrases) > 0 {
				co.vpKeys = make([]string, len(ex.VerbPhrases))
				for i, vp := range ex.VerbPhrases {
					co.vpKeys[i] = vp.String()
				}
			}
			if len(ex.NounPhrases) > 0 {
				co.npKeys = make([]string, len(ex.NounPhrases))
				for i, np := range ex.NounPhrases {
					co.npKeys[i] = np.String()
				}
			}
			co.patterns = phrase.MatchPatterns(p)
		}
		e.clauses = append(e.clauses, co)
	}
	return e
}

// prep returns the cached embedding preparation for a verb phrase, keyed by
// its rendered text. Counter discipline matches sentence().
func (fe *frontend) prep(s *Solver, key string, vp phrase.VerbPhrase) *phrasePrep {
	if p, ok := fe.preps.get(key); ok {
		s.rec.Counter(metricPhraseCacheHits).Add(1)
		return p
	}
	words := vp.Words()
	p := &phrasePrep{
		text:  key,
		words: words,
		vec:   fe.phraseVector(s, words),
	}
	p.q = wordvec.PrepareQuery(p.vec)
	if len(vp.Object) > 0 {
		p.hasObj = true
		p.objVec = fe.phraseVector(s, vp.Object)
	}
	p.contentVec = fe.phraseVector(s, contentOnly(words))
	p.contentQ = wordvec.PrepareQuery(p.contentVec)
	p, created := fe.preps.put(key, p)
	if created {
		s.rec.Counter(metricPhraseCacheMisses).Add(1)
	} else {
		s.rec.Counter(metricPhraseCacheHits).Add(1)
	}
	return p
}

// phraseVector embeds a word sequence through the interned-ID vector cache.
// Fully interned sequences key on their packed 4-byte IDs (no per-lookup
// allocation); sequences with any out-of-vocabulary word skip the cache.
func (fe *frontend) phraseVector(s *Solver, words []string) wordvec.Vector {
	kp := fe.keyScratch.Get().(*[]byte)
	key, ok := fe.in.AppendIDs((*kp)[:0], words)
	if !ok {
		*kp = key[:0]
		fe.keyScratch.Put(kp)
		return s.vec.PhraseVector(words)
	}
	if v, found := fe.vecs.getBytes(key); found {
		*kp = key[:0]
		fe.keyScratch.Put(kp)
		return v
	}
	v := s.vec.PhraseVector(words)
	fe.vecs.put(string(key), v)
	*kp = key[:0]
	fe.keyScratch.Put(kp)
	return v
}

// publishFrontendGauges sets the front-end size gauges. Gauges are set only
// from single-goroutine points (after a batch drains, or from a sequential
// caller) — a per-review Set under the pool could publish a stale value last.
func (s *Solver) publishFrontendGauges() {
	if s.rec == nil || s.fe == nil {
		return
	}
	s.rec.Gauge(metricInternerSize).Set(int64(s.fe.in.Size()))
	s.rec.Gauge(metricAnalysisCacheSize).Set(int64(s.fe.sentences.size()))
	s.rec.Gauge(metricSpellMemoSize).Set(int64(s.normalizer.MemoSize()))
}
