package core

import (
	"reflect"
	"testing"

	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

// TestFrontendCacheEquivalence proves the corpus-level analysis cache never
// changes output: for several seeds, every review localized through a warm
// shared frontend must match a solver whose frontend is reset before each
// review (every sentence and phrase a cache miss). Both solvers share one
// snapshot, so the only difference is cache state.
func TestFrontendCacheEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 5, 7, 9} {
		data := synth.GenerateSample(seed)
		app := data.App

		sn := NewSnapshot()
		warm := NewWithSnapshot(sn)
		cold := NewWithSnapshot(sn)

		reviews := data.Reviews
		if len(reviews) > 40 {
			reviews = reviews[:40]
		}
		for i, rv := range reviews {
			cold.fe = newFrontend() // every lookup below is a miss
			want := cold.LocalizeReview(app, rv.Text, rv.PublishedAt)
			got := warm.LocalizeReview(app, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want.Mappings) {
				t.Fatalf("seed %d review %d: cached mappings differ from uncached", seed, i)
			}
			if !reflect.DeepEqual(got.Ranked, want.Ranked) {
				t.Fatalf("seed %d review %d: cached ranking differs from uncached", seed, i)
			}
			if !reflect.DeepEqual(got.Analysis, want.Analysis) {
				t.Fatalf("seed %d review %d: cached analysis differs from uncached", seed, i)
			}
		}
	}
}

// TestAnalyzeReviewCacheDeterminism checks that the miss path (first call)
// and the hit path (second call) of the sentence cache produce identical
// analyses.
func TestAnalyzeReviewCacheDeterminism(t *testing.T) {
	s := New()
	data := synth.GenerateSample(5)
	for i, rv := range data.Reviews {
		if i >= 30 {
			break
		}
		first := s.AnalyzeReview(rv.Text)
		second := s.AnalyzeReview(rv.Text)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("review %d: hit-path analysis differs from miss-path", i)
		}
	}
}

// TestLocalizeCorpusMatchesBatch checks the streaming batch API: results
// arrive in input order and are identical to Pool.Localize, at several
// worker counts, over a shared warm snapshot.
func TestLocalizeCorpusMatchesBatch(t *testing.T) {
	datas, inputs := poolInputs(20)
	app := datas[0].App
	sn := NewSnapshot()
	want := NewPoolWithSnapshot(1, sn).Localize(app, inputs)

	for _, workers := range []int{1, 2, 4} {
		p := NewPoolWithSnapshot(workers, sn)
		in := make(chan ReviewInput)
		go func() {
			for _, r := range inputs {
				in <- r
			}
			close(in)
		}()
		i := 0
		for cr := range p.LocalizeCorpus(app, in) {
			if cr.Index != i {
				t.Fatalf("workers=%d: result %d arrived with index %d", workers, i, cr.Index)
			}
			if !reflect.DeepEqual(cr.Result.Mappings, want[i].Mappings) {
				t.Fatalf("workers=%d review %d: corpus mappings differ from batch", workers, i)
			}
			if !reflect.DeepEqual(cr.Result.Ranked, want[i].Ranked) {
				t.Fatalf("workers=%d review %d: corpus ranking differs from batch", workers, i)
			}
			i++
		}
		if i != len(inputs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, i, len(inputs))
		}
	}
}

// TestFrontendCounterDeterminism checks the insert-wins counting discipline:
// miss totals equal distinct keys regardless of worker count, and hits make
// up the remainder.
func TestFrontendCounterDeterminism(t *testing.T) {
	datas, inputs := poolInputs(20)
	app := datas[0].App

	counts := func(workers int) (hits, misses float64) {
		reg := obs.NewRegistry()
		p := NewPool(workers).WithObserver(obs.NewRecorder(reg, nil))
		p.Localize(app, inputs)
		snap := reg.Snapshot()
		return snap[metricAnalysisCacheHits], snap[metricAnalysisCacheMisses]
	}
	h1, m1 := counts(1)
	if m1 == 0 {
		t.Fatal("no sentence-cache misses recorded at 1 worker")
	}
	if h1 == 0 {
		t.Fatal("no sentence-cache hits recorded at 1 worker (corpus has repeats)")
	}
	h4, m4 := counts(4)
	if h4 != h1 || m4 != m1 {
		t.Fatalf("counters not worker-count invariant: 1w hits/misses %g/%g, 4w %g/%g", h1, m1, h4, m4)
	}
}
