package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// typedLoadError reports whether a LoadSnapshotBytes failure is one of the
// documented typed errors: a snapfile container error or the core-level
// incompatibility sentinel. Anything else is a contract violation.
func typedLoadError(err error) bool {
	for _, want := range []error{
		snapfile.ErrBadMagic, snapfile.ErrVersion, snapfile.ErrTruncated,
		snapfile.ErrChecksum, snapfile.ErrMisaligned, snapfile.ErrCorrupt,
		ErrSnapshotIncompatible,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// FuzzLoadSnapshotBytes: hostile snapshot images must never panic the
// loader, and every rejection must be a typed error — the property the
// serving registry's quarantine path relies on.
func FuzzLoadSnapshotBytes(f *testing.F) {
	img, err := EncodeSnapshot(NewSnapshot(), synth.GenerateSample(1).App)
	if err != nil {
		f.Fatalf("encode seed snapshot: %v", err)
	}
	for _, seed := range loadFuzzSeedVariants(img) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, app, err := LoadSnapshotBytes(data)
		if err != nil {
			if !typedLoadError(err) {
				t.Fatalf("LoadSnapshotBytes returned an untyped error: %v", err)
			}
			return
		}
		if snap == nil || app == nil {
			t.Fatal("LoadSnapshotBytes returned nil snapshot/app without error")
		}
		// A loaded snapshot must be servable: building a solver view over it
		// cannot panic either.
		if s := NewWithSnapshot(snap); s == nil {
			t.Fatal("NewWithSnapshot returned nil for a loaded snapshot")
		}
	})
}

// loadFuzzSeedVariants mutates a valid snapshot image toward the loader's
// validation branches: container-level corruption plus section payload
// damage that only the schema decoder can catch.
func loadFuzzSeedVariants(img []byte) [][]byte {
	flip := func(i int) []byte {
		m := append([]byte(nil), img...)
		m[i] ^= 0xFF
		return m
	}
	badVersion := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(badVersion[8:], snapfile.Version+1)
	return [][]byte{
		img,
		nil,
		img[:16],
		img[:len(img)/2],
		flip(0),
		flip(len(img) / 2),
		flip(len(img) - 1),
		badVersion,
	}
}

// TestWriteLoadFuzzSeeds regenerates the committed seed corpus under
// testdata/fuzz/FuzzLoadSnapshotBytes (same gate as the snapfile one):
//
//	REVIEWSOLVER_WRITE_FUZZ_SEEDS=1 go test -run TestWriteLoadFuzzSeeds ./internal/core
func TestWriteLoadFuzzSeeds(t *testing.T) {
	if os.Getenv("REVIEWSOLVER_WRITE_FUZZ_SEEDS") == "" {
		t.Skip("set REVIEWSOLVER_WRITE_FUZZ_SEEDS=1 to regenerate the seed corpus")
	}
	img, err := EncodeSnapshot(NewSnapshot(), synth.GenerateSample(1).App)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadSnapshotBytes")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range loadFuzzSeedVariants(img) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
