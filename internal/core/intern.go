package core

import (
	"sync"

	"reviewsolver/internal/pos"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

var (
	internerOnce sync.Once
	internerVal  *textproc.Interner
)

// defaultInterner returns the process-wide symbol table over the union of
// the pipeline's closed vocabularies: spell-repair dictionary, stopwords,
// abbreviations, POS lexicon, and the embedding lexicon. All of these are
// compile-time constants, so one immutable table serves every solver; it is
// built on first use and read-only afterwards.
func defaultInterner() *textproc.Interner {
	internerOnce.Do(func() {
		internerVal = textproc.NewInterner(
			textproc.InternVocab{Words: textproc.StopwordList(), Flags: textproc.SymStopword},
			textproc.InternVocab{Words: textproc.DictionaryList(), Flags: textproc.SymDictionary},
			textproc.InternVocab{Words: textproc.AbbreviationList(), Flags: textproc.SymAbbreviation},
			textproc.InternVocab{Words: pos.LexiconWords(), Flags: textproc.SymPOSLexicon},
			textproc.InternVocab{Words: wordvec.LexiconWords(), Flags: textproc.SymEmbedding},
		)
	})
	return internerVal
}
