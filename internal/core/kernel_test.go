package core

import (
	"reflect"
	"testing"

	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/synth"
)

// TestKernelRankingMatchesLegacy is the property test of the kernel layer:
// across seeded synthetic corpora, the full-pipeline output of the default
// matrix-kernel matcher (flattened dot scans + anchor prescreen) must be
// byte-identical to the retired per-struct full-cosine path.
func TestKernelRankingMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{3, 7, 21} {
		data := synth.GenerateSample(seed)
		app := data.App

		kernel := New()
		legacy := New(WithLegacyCosine())

		reviews := data.Reviews
		if len(reviews) > 25 {
			reviews = reviews[:25]
		}
		for i, rv := range reviews {
			want := legacy.LocalizeReview(app, rv.Text, rv.PublishedAt)
			got := kernel.LocalizeReview(app, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want.Mappings) {
				t.Fatalf("seed %d review %d: kernel mappings differ from legacy cosine", seed, i)
			}
			if !reflect.DeepEqual(got.Ranked, want.Ranked) {
				t.Fatalf("seed %d review %d: kernel ranking differs from legacy cosine", seed, i)
			}
		}
	}
}

// TestKernelSnapshotParallelMatchesLegacy stacks every layer at once: a
// snapshot-backed solver with inner parallelism and the kernel matcher must
// reproduce the plain sequential legacy-cosine solver byte for byte.
func TestKernelSnapshotParallelMatchesLegacy(t *testing.T) {
	data := synth.GenerateSample(5)
	app := data.App

	legacy := New(WithLegacyCosine())
	sn := NewSnapshot()
	kernel := NewWithSnapshot(sn, WithParallelism(4))

	reviews := data.Reviews
	if len(reviews) > 20 {
		reviews = reviews[:20]
	}
	for i, rv := range reviews {
		want := legacy.LocalizeReview(app, rv.Text, rv.PublishedAt)
		got := kernel.LocalizeReview(app, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) {
			t.Fatalf("review %d: snapshot+parallel kernel mappings differ from legacy", i)
		}
		if !reflect.DeepEqual(got.Ranked, want.Ranked) {
			t.Fatalf("review %d: snapshot+parallel kernel ranking differs from legacy", i)
		}
	}
}

// TestKernelPerContextMatchesLegacy exercises each vector-driven localizer
// in isolation so a divergence pinpoints the context that broke.
func TestKernelPerContextMatchesLegacy(t *testing.T) {
	data := synth.GenerateSample(9)
	app := data.App

	kernel := New()
	legacy := New(WithLegacyCosine())

	release := app.Releases[len(app.Releases)-1]
	prev := app.Releases[len(app.Releases)-2]
	kInfo := kernel.StaticFor(release)
	lInfo := legacy.StaticFor(release)

	reviews := data.Reviews
	if len(reviews) > 15 {
		reviews = reviews[:15]
	}
	for i, rv := range reviews {
		ra := kernel.AnalyzeReview(rv.Text)
		for _, ctx := range ctxinfo.All() {
			want := legacy.LocalizeByContext(ctx, ra, lInfo, prev, release)
			got := kernel.LocalizeByContext(ctx, ra, kInfo, prev, release)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("review %d context %s: kernel mappings differ from legacy", i, ctx)
			}
		}
	}
}

// TestScanStatsDeterministic guards the prescreen bookkeeping benchgate
// snapshots: stats are stable across repeated scans of the same corpus.
func TestScanStatsDeterministic(t *testing.T) {
	data := synth.GenerateSample(3)
	s := New()
	info := s.StaticFor(data.App.Releases[len(data.App.Releases)-1])
	p1, e1, m1 := s.KernelScanStats(info, "fetch mail")
	p2, e2, m2 := s.KernelScanStats(info, "fetch mail")
	if p1 != p2 || e1 != e2 || m1 != m2 {
		t.Fatalf("scan stats not deterministic: (%d,%d,%d) vs (%d,%d,%d)", p1, e1, m1, p2, e2, m2)
	}
	if p1+e1 != info.methodMatrix.Rows() {
		t.Fatalf("pruned %d + evaluated %d != rows %d", p1, e1, info.methodMatrix.Rows())
	}
}
