package core

import (
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// This file exposes deterministic kernel instrumentation: how many
// candidates the anchor prescreen skipped, evaluated, and matched for a
// query phrase. The counts come from the same counting scans the live
// pipeline runs (wordvec.ScanThresholdCount — there is no separate stats
// pass), so cmd/benchgate snapshots them next to the table metrics and a
// kernel or prescreen regression shows up as a count drift long before it
// shows up as wall-clock noise. During localization the identical counts
// are aggregated race-safely per worker chunk and fed into the obs
// registry (prescreen_*_total) and the per-review explain trace.

// KernelScanStats scans a release's method-phrase matrix (§4.1.1) with the
// given query phrase and reports (pruned, evaluated, matched) row counts.
func (s *Solver) KernelScanStats(info *StaticInfo, phrase string) (pruned, evaluated, matched int) {
	q := wordvec.PrepareQuery(s.vec.PhraseVector(textproc.Words(phrase)))
	sc := info.methodMatrix.ScanThresholdCount(&q, s.vec.Threshold(), 0, info.methodMatrix.Rows(),
		func(int, float64) {})
	return sc.Pruned, sc.Evaluated, sc.Matched
}

// CatalogScanStats scans the full framework-catalog matrix (Algorithm 1)
// with the given query phrase and reports (pruned, evaluated, matched) row
// counts.
func (s *Solver) CatalogScanStats(phrase string) (pruned, evaluated, matched int) {
	q := wordvec.PrepareQuery(s.vec.PhraseVector(textproc.Words(phrase)))
	t := s.catalogVecs()
	sc := t.matrix.ScanThresholdCount(&q, s.vec.Threshold(), 0, t.matrix.Rows(),
		func(int, float64) {})
	return sc.Pruned, sc.Evaluated, sc.Matched
}

// CatalogRows returns the number of flattened describing-phrase rows in the
// catalog scan matrix.
func (s *Solver) CatalogRows() int { return s.catalogVecs().matrix.Rows() }

// MethodRows returns the number of method-phrase rows in a release's scan
// matrix.
func (info *StaticInfo) MethodRows() int { return info.methodMatrix.Rows() }
