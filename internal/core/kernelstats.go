package core

import (
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// This file exposes deterministic kernel instrumentation: how many
// candidates the anchor prescreen skipped, evaluated, and matched for a
// query phrase. The counts are pure functions of the embedding model and
// the corpus, so cmd/benchgate snapshots them next to the table metrics —
// a kernel or prescreen regression shows up as a count drift long before it
// shows up as wall-clock noise.

// KernelScanStats scans a release's method-phrase matrix (§4.1.1) with the
// given query phrase and reports (pruned, evaluated, matched) row counts.
func (s *Solver) KernelScanStats(info *StaticInfo, phrase string) (pruned, evaluated, matched int) {
	q := wordvec.PrepareQuery(s.vec.PhraseVector(textproc.Words(phrase)))
	return info.methodMatrix.ScanStats(&q, s.vec.Threshold())
}

// CatalogScanStats scans the full framework-catalog matrix (Algorithm 1)
// with the given query phrase and reports (pruned, evaluated, matched) row
// counts.
func (s *Solver) CatalogScanStats(phrase string) (pruned, evaluated, matched int) {
	q := wordvec.PrepareQuery(s.vec.PhraseVector(textproc.Words(phrase)))
	return s.catalogVecs().matrix.ScanStats(&q, s.vec.Threshold())
}

// CatalogRows returns the number of flattened describing-phrase rows in the
// catalog scan matrix.
func (s *Solver) CatalogRows() int { return s.catalogVecs().matrix.Rows() }

// MethodRows returns the number of method-phrase rows in a release's scan
// matrix.
func (info *StaticInfo) MethodRows() int { return info.methodMatrix.Rows() }
