package core

import (
	"reflect"
	"strings"
	"testing"

	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

// labeledSnapshot runs a labeled, observed solver over the seed corpus at
// the given worker count and returns only the labeled ("name{…}") entries
// of the registry snapshot.
func labeledSnapshot(t *testing.T, seed int64, workers int) map[string]float64 {
	t.Helper()
	data := synth.GenerateSample(seed)
	reviews := data.Reviews
	if len(reviews) > 10 {
		reviews = reviews[:10]
	}
	reg := obs.NewRegistry()
	s := New(
		WithObserver(obs.NewRecorder(reg, nil)),
		WithAppLabel(data.App.Package),
		WithParallelism(workers),
	)
	for _, rv := range reviews {
		s.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
	}
	out := make(map[string]float64)
	for k, v := range reg.Snapshot() {
		if strings.Contains(k, "{") {
			out[k] = v
		}
	}
	return out
}

// TestAppLabeledCountersWorkerInvariant is the per-app labeled analogue of
// the pipeline determinism property: the labeled counter set (keys and
// values) must be identical across worker counts and chunk partitions,
// because chunk results merge deterministically before any counter is
// bumped per review.
func TestAppLabeledCountersWorkerInvariant(t *testing.T) {
	for _, seed := range []int64{3, 5, 7, 9} {
		base := labeledSnapshot(t, seed, 1)
		if len(base) == 0 {
			t.Fatalf("seed %d: labeled solver produced no labeled metrics", seed)
		}
		for _, workers := range []int{2, 4} {
			got := labeledSnapshot(t, seed, workers)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("seed %d: labeled counters differ between workers=1 and workers=%d:\n%v\nvs\n%v",
					seed, workers, base, got)
			}
		}
	}
}

// TestAppLabeledCountersMatchAggregates: for a single-app solver the
// labeled children must exactly equal the aggregate pipeline counters, and
// labeling must not change localization output.
func TestAppLabeledCountersMatchAggregates(t *testing.T) {
	data := synth.GenerateSample(5)
	reviews := data.Reviews
	if len(reviews) > 10 {
		reviews = reviews[:10]
	}
	reg := obs.NewRegistry()
	labeled := New(WithObserver(obs.NewRecorder(reg, nil)), WithAppLabel(data.App.Package))
	plain := New()
	for i, rv := range reviews {
		got := labeled.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
		want := plain.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Ranked, want.Ranked) {
			t.Fatalf("review %d: app labeling changed ranking", i)
		}
	}
	snap := reg.Snapshot()
	for _, metric := range []string{metricReviews, metricErrorReviews, metricLocalizedReviews, metricMappings} {
		child := metric + `{app="` + data.App.Package + `"}`
		if snap[child] != snap[metric] {
			t.Errorf("%s = %v, aggregate %s = %v — labeled child must mirror the aggregate",
				child, snap[child], metric, snap[metric])
		}
	}
	if snap[metricReviews] != float64(len(reviews)) {
		t.Fatalf("reviews_total = %v, want %d", snap[metricReviews], len(reviews))
	}
}

// TestUnlabeledSolverEmitsNoLabeledMetrics: the default (no WithAppLabel)
// keeps the registry exactly as before this layer existed.
func TestUnlabeledSolverEmitsNoLabeledMetrics(t *testing.T) {
	data := synth.GenerateSample(3)
	reg := obs.NewRegistry()
	s := New(WithObserver(obs.NewRecorder(reg, nil)))
	rv := data.Reviews[0]
	s.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
	for k := range reg.Snapshot() {
		if strings.Contains(k, "{") {
			t.Fatalf("unlabeled solver emitted labeled metric %q", k)
		}
	}
}
