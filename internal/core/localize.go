package core

import (
	"strings"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/gui"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/phrase"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// Mapping is one correlation between a review phrase and a code location.
type Mapping struct {
	// Phrase is the review phrase that triggered the mapping.
	Phrase string
	// Class is the recommended class.
	Class string
	// Method is the recommended method when one is known ("" otherwise).
	Method string
	// Context identifies the localizer (Table 1 context type) that found
	// the mapping.
	Context ctxinfo.Type
	// Evidence describes what the phrase matched (method name, API
	// description, widget id, …).
	Evidence string
}

// Localize runs every applicable localizer (§4.1 app-specific, §4.2
// general) and returns the combined mappings.
func (s *Solver) Localize(ra *ReviewAnalysis, info *StaticInfo, previous, current *apk.Release) []Mapping {
	return s.localize(ra, info, previous, current, nil, nil)
}

// localize is Localize with telemetry: a "localize" span with one child
// span per localizer (when a recorder is installed) and per-stage match
// and scan records in the explain trace (when tr is non-nil). Both default
// off; with neither active the instrumentation is a handful of nil checks
// per review.
func (s *Solver) localize(ra *ReviewAnalysis, info *StaticInfo, previous, current *apk.Release, tr *obs.ReviewTrace, parent *obs.Span) []Mapping {
	sp := parent.Child(stageLocalize)
	if sp == nil {
		sp = s.rec.Start(stageLocalize)
	}
	var out []Mapping
	run := func(stage string, fn func() []Mapping) {
		c := sp.Child(stage)
		ms := fn()
		c.End()
		tr.AddStage(stage, stageLocalize, len(ms))
		out = append(out, ms...)
	}
	run(stageAppSpecific, func() []Mapping { return s.localizeAppSpecific(ra, info, tr) })
	run(stageGUI, func() []Mapping { return s.localizeGUI(ra, info, tr) })
	run(stageErrorMessage, func() []Mapping { return s.localizeErrorMessage(ra, info, tr) })
	run(stageOpeningApp, func() []Mapping { return s.localizeOpeningApp(ra, info, tr) })
	run(stageRegistration, func() []Mapping { return s.localizeRegistration(ra, info, tr) })
	run(stageAPIURIIntent, func() []Mapping { return s.localizeAPIURIIntent(ra, info, tr) })
	run(stageGeneralTask, func() []Mapping { return s.localizeGeneralTask(ra, info, tr) })
	run(stageException, func() []Mapping { return s.localizeException(ra, info, tr) })
	// §4.1.6: update-related errors fall back to the version diff only when
	// nothing else localized the review.
	existing := out
	run(stageUpdate, func() []Mapping { return s.localizeUpdate(ra, existing, previous, current, tr) })
	sp.End()
	return dedupMappings(out)
}

// LocalizeByContext runs a single context localizer, for per-context
// effectiveness (Table 12) and timing (Table 15) measurements.
func (s *Solver) LocalizeByContext(ctx ctxinfo.Type, ra *ReviewAnalysis, info *StaticInfo, previous, current *apk.Release) []Mapping {
	switch ctx {
	case ctxinfo.AppSpecificTask:
		return s.localizeAppSpecific(ra, info, nil)
	case ctxinfo.GUI:
		return s.localizeGUI(ra, info, nil)
	case ctxinfo.ErrorMessage:
		return s.localizeErrorMessage(ra, info, nil)
	case ctxinfo.OpeningApp:
		return s.localizeOpeningApp(ra, info, nil)
	case ctxinfo.RegisteringAccount:
		return s.localizeRegistration(ra, info, nil)
	case ctxinfo.APIURIIntent:
		return s.localizeAPIURIIntent(ra, info, nil)
	case ctxinfo.GeneralTask:
		return s.localizeGeneralTask(ra, info, nil)
	case ctxinfo.Exception:
		return s.localizeException(ra, info, nil)
	case ctxinfo.UpdatingApp:
		return s.localizeUpdate(ra, nil, previous, current, nil)
	default:
		return nil
	}
}

func dedupMappings(ms []Mapping) []Mapping {
	seen := make(map[string]struct{}, len(ms))
	out := ms[:0]
	for _, m := range ms {
		key := m.Phrase + "\x00" + m.Class + "\x00" + m.Method + "\x00" + m.Context.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, m)
	}
	return out
}

// --- §4.1.1 App specific task -------------------------------------------------

// localizeAppSpecific compares each review verb phrase against the verb
// phrases derived from method names and Code2vec summaries. The candidate
// loop is chunked across workers (WithParallelism); chunk results merge in
// candidate order, so output order matches the sequential pass exactly. The
// default matcher scans the flattened method-phrase matrix with the
// dot-only kernel and anchor prescreen; WithLegacyCosine restores the
// per-struct full-cosine pass (byte-identical output, property-tested).
func (s *Solver) localizeAppSpecific(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	useKernel := !s.legacyCosine && info.methodMatrix != nil
	threshold := s.vec.Threshold()
	simHist := s.simHist()
	for vi := range ra.VerbPhrases {
		prep := s.fe.prep(s, ra.vpKey(vi), ra.VerbPhrases[vi])
		v := prep.vec
		phraseText := prep.text
		q := &prep.q
		res := parallelChunks(len(info.MethodPhrases), s.parallelism,
			func(start, end int) scanChunk {
				var ck scanChunk
				emit := func(i int, sim float64) {
					mp := &info.MethodPhrases[i]
					source, evidence := "method name", "method name "+mp.Method.Name
					if mp.FromSummary {
						source = "method summary"
						evidence = "method summary [" + strings.Join(mp.Words, " ") + "]"
					}
					ck.maps = append(ck.maps, Mapping{
						Phrase:   phraseText,
						Class:    mp.Method.Class,
						Method:   mp.Method.Name,
						Context:  ctxinfo.AppSpecificTask,
						Evidence: evidence,
					})
					simHist.Observe(sim)
					if tr != nil {
						ck.matches = append(ck.matches, obs.MatchTrace{
							Phrase: phraseText, Class: mp.Method.Class, Method: mp.Method.Name,
							Stage: stageAppSpecific, Source: source, Evidence: evidence,
							Similarity: sim,
						})
					}
				}
				if useKernel {
					ck.scan = info.methodMatrix.ScanThresholdCount(q, threshold, start, end,
						func(row int, dot float64) { emit(row, dot) })
					return ck
				}
				for i := start; i < end; i++ {
					ck.scan.Evaluated++
					c := wordvec.Cosine(v, info.MethodPhrases[i].Vec)
					if c < threshold {
						continue
					}
					ck.scan.Matched++
					emit(i, c)
				}
				return ck
			})
		out = append(out, res.maps...)
		tr.AddMatches(res.matches)
		if s.rec != nil || tr != nil {
			s.noteScan(tr, stageAppSpecific, "method_phrases", phraseText,
				len(info.MethodPhrases), res.scan)
		}
	}
	return out
}

// --- §4.1.2 GUI -----------------------------------------------------------------

// widgetNouns are the explicit GUI nouns of case (1) in §4.1.2.
var widgetNouns = map[string]struct{}{
	"button": {}, "buttons": {}, "menu": {}, "tab": {}, "tabs": {},
	"icon": {}, "checkbox": {}, "screen": {}, "page": {}, "list": {},
	"keyboard": {}, "widget": {}, "bar": {}, "dialog": {}, "toggle": {},
	"slider": {}, "spinner": {},
}

// issueNouns are the implicit issue nouns of case (2).
var issueNouns = map[string]struct{}{
	"issue": {}, "issues": {}, "error": {}, "errors": {}, "problem": {},
	"problems": {}, "trouble": {},
}

// localizeGUI maps GUI-related noun phrases and vague-error patterns to the
// activities whose visible/invisible labels mention them.
func (s *Solver) localizeGUI(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	simHist := s.simHist()

	addActivity := func(phraseText, activity, evidence string) {
		out = append(out, Mapping{
			Phrase:   phraseText,
			Class:    activity,
			Context:  ctxinfo.GUI,
			Evidence: evidence,
		})
		simHist.Observe(1)
		if tr != nil {
			tr.AddMatch(obs.MatchTrace{
				Phrase: phraseText, Class: activity,
				Stage: stageGUI, Source: "visible label", Evidence: evidence,
				Similarity: 1,
			})
		}
	}

	for ni := range ra.NounPhrases {
		np := &ra.NounPhrases[ni]
		// Case (1): explicit widget mention — the modifier words name the
		// widget's purpose ("reply button" → search "reply").
		if _, isWidget := widgetNouns[np.Head]; isWidget && len(np.Modifiers) > 0 {
			for _, mod := range np.Modifiers {
				if textproc.IsStopword(mod) {
					continue
				}
				for _, activity := range gui.FindByVisibleWord(info.GUIs, mod) {
					addActivity(ra.npKey(ni), activity, "visible label contains "+mod)
				}
				out = append(out, s.matchInvisibleWord(ra.npKey(ni), mod, info, tr)...)
			}
		}
		// Case (2): implicit issue mention ("certificate issues") — search
		// the modifying word in the visible labels.
		if _, isIssue := issueNouns[np.Head]; isIssue {
			for _, mod := range np.Modifiers {
				if textproc.IsStopword(mod) || phrase.IsErrorWord(mod) {
					continue
				}
				for _, activity := range gui.FindByVisibleWord(info.GUIs, mod) {
					addActivity(ra.npKey(ni), activity, "visible label contains "+mod)
				}
			}
		}
	}

	// Verb phrases against invisible widget-id phrases ("show password").
	for vi := range ra.VerbPhrases {
		prep := s.fe.prep(s, ra.vpKey(vi), ra.VerbPhrases[vi])
		out = append(out, s.matchInvisible(prep, info, tr)...)
	}

	// Vague-error patterns (Table 5): look the function words up in the
	// visible labels.
	for _, pm := range ra.Patterns {
		for _, fn := range pm.Function {
			if textproc.IsStopword(fn) {
				continue
			}
			for _, activity := range gui.FindByVisibleWord(info.GUIs, fn) {
				addActivity(strings.Join(pm.Function, " "), activity,
					pm.Pattern.String()+" function word "+fn)
			}
		}
	}
	return out
}

// matchInvisible compares a review phrase against the expanded widget-id
// phrases of each activity. The default matcher scans the flattened
// widget-id matrix (rows in the same nested GUI×widget order the legacy
// loop visits, so output order is identical); WithLegacyCosine restores the
// per-struct cosine pass over the label vectors precomputed at extraction
// time. The content-word vector and its prescreen query come precomputed on
// the cached phrase prep.
func (s *Solver) matchInvisible(prep *phrasePrep, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	phraseText := prep.text
	v := prep.contentVec
	simHist := s.simHist()
	emit := func(gi, wi int, sim float64) {
		g := &info.GUIs[gi]
		evidence := "widget id " + g.WidgetIDs[wi]
		out = append(out, Mapping{
			Phrase:   phraseText,
			Class:    g.Activity,
			Context:  ctxinfo.GUI,
			Evidence: evidence,
		})
		simHist.Observe(sim)
		if tr != nil {
			tr.AddMatch(obs.MatchTrace{
				Phrase: phraseText, Class: g.Activity,
				Stage: stageGUI, Source: "widget id", Evidence: evidence,
				Similarity: sim,
			})
		}
	}
	var sc wordvec.ScanCount
	if !s.legacyCosine && info.invisibleMatrix != nil {
		sc = info.invisibleMatrix.ScanThresholdCount(&prep.contentQ, s.vec.Threshold(), 0, info.invisibleMatrix.Rows(),
			func(row int, dot float64) {
				ref := info.invisibleRows[row]
				emit(int(ref.GUI), int(ref.Widget), dot)
			})
		if s.rec != nil || tr != nil {
			s.noteScan(tr, stageGUI, "widget_ids", phraseText, info.invisibleMatrix.Rows(), sc)
		}
		return out
	}
	for gi := range info.GUIs {
		g := &info.GUIs[gi]
		for wi, idWords := range g.InvisibleWords {
			if len(idWords) == 0 {
				continue
			}
			var idVec wordvec.Vector
			if info.invisibleVecs != nil {
				idVec = info.invisibleVecs[gi][wi]
			} else {
				idVec = s.vec.PhraseVector(idWords)
			}
			sc.Evaluated++
			c := wordvec.Cosine(v, idVec)
			if c < s.vec.Threshold() {
				continue
			}
			sc.Matched++
			emit(gi, wi, c)
		}
	}
	if s.rec != nil || tr != nil {
		s.noteScan(tr, stageGUI, "widget_ids", phraseText, sc.Evaluated, sc)
	}
	return out
}

// matchInvisibleWord searches one widget-purpose word ("reply") across the
// expanded widget-id words of each activity (§4.1.2 case 1: "we search the
// word 'reply' that modifies the 'button' in the information related to
// each GUI component").
func (s *Solver) matchInvisibleWord(phraseText, word string, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	simHist := s.simHist()
	for gi := range info.GUIs {
		g := &info.GUIs[gi]
		for wi, idWords := range g.InvisibleWords {
			matched, sim := false, 0.0
			for _, w := range idWords {
				if w == word {
					matched, sim = true, 1
					break
				}
				if !textproc.IsStopword(w) {
					if ws := s.vec.WordSimilarity(w, word); ws >= s.vec.Threshold() {
						matched, sim = true, ws
						break
					}
				}
			}
			if !matched {
				continue
			}
			evidence := "widget id " + g.WidgetIDs[wi]
			out = append(out, Mapping{
				Phrase:   phraseText,
				Class:    g.Activity,
				Context:  ctxinfo.GUI,
				Evidence: evidence,
			})
			simHist.Observe(sim)
			if tr != nil {
				tr.AddMatch(obs.MatchTrace{
					Phrase: phraseText, Class: g.Activity,
					Stage: stageGUI, Source: "widget id", Evidence: evidence,
					Similarity: sim,
				})
			}
		}
	}
	return out
}

func contentOnly(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !textproc.IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// --- §4.1.3 Error message -------------------------------------------------------

// localizeErrorMessage matches quoted error messages against the app's
// message strings, and error-type noun phrases against API descriptions.
func (s *Solver) localizeErrorMessage(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	simHist := s.simHist()

	// Precise messages: quoted spans matched by normalized containment. The
	// app messages are normalized once at extraction time (the seed
	// retokenized every message per quoted span).
	for _, quoted := range ra.Quoted {
		nq := normalizeMessage(quoted)
		if nq == "" {
			continue
		}
		for mi := range info.Messages {
			msg := &info.Messages[mi]
			nm := ""
			if info.normMessages != nil {
				nm = info.normMessages[mi]
			} else {
				nm = normalizeMessage(msg.Text)
			}
			if nm == "" || !(strings.Contains(nm, nq) || strings.Contains(nq, nm)) {
				continue
			}
			for _, cls := range msg.Classes {
				evidence := "app message " + msg.Text
				out = append(out, Mapping{
					Phrase:   quoted,
					Class:    cls,
					Context:  ctxinfo.ErrorMessage,
					Evidence: evidence,
				})
				simHist.Observe(1)
				if tr != nil {
					tr.AddMatch(obs.MatchTrace{
						Phrase: quoted, Class: cls,
						Stage: stageErrorMessage, Source: "app message", Evidence: evidence,
						Similarity: 1,
					})
				}
			}
		}
	}

	// Error types: "connection error" → APIs whose descriptions mention the
	// modifier → classes calling them. Descriptions are tokenized once at
	// extraction time (the seed re-ran textproc.Words per (modifier, API)
	// pair).
	for ni := range ra.NounPhrases {
		mods := phrase.ErrorModifier(ra.NounPhrases[ni])
		if len(mods) == 0 {
			continue
		}
		for _, mod := range mods {
			for ai := range info.APIs {
				use := &info.APIs[ai]
				var words []string
				if info.descWords != nil {
					words = info.descWords[ai]
				} else {
					words = textproc.Words(use.API.Description)
				}
				sim, ok := descriptionMention(words, mod, s.vec)
				if !ok {
					continue
				}
				for _, cls := range use.Classes {
					evidence := "API description " + use.API.Signature()
					out = append(out, Mapping{
						Phrase:   ra.npKey(ni),
						Class:    cls,
						Context:  ctxinfo.ErrorMessage,
						Evidence: evidence,
					})
					simHist.Observe(sim)
					if tr != nil {
						tr.AddMatch(obs.MatchTrace{
							Phrase: ra.npKey(ni), Class: cls,
							Stage: stageErrorMessage, Source: "API description", Evidence: evidence,
							Similarity: sim,
						})
					}
				}
			}
		}
	}
	return out
}

func normalizeMessage(s string) string {
	return strings.Join(textproc.Words(s), " ")
}

// descriptionMention reports whether a tokenized API description contains
// the word or a synonym of it, and the similarity that decided it (1 for
// an exact word hit).
func descriptionMention(descWords []string, word string, vec *wordvec.Model) (float64, bool) {
	for _, w := range descWords {
		if w == word {
			return 1, true
		}
		if !textproc.IsStopword(w) {
			if sim := vec.WordSimilarity(w, word); sim >= vec.Threshold() {
				return sim, true
			}
		}
	}
	return 0, false
}

// --- §4.1.4 Opening app ---------------------------------------------------------

// openAppPhrases detect errors at launch.
var openAppObjects = map[string]struct{}{"app": {}, "application": {}, "it": {}}

// lifecycleMethods are recommended for launch errors (§4.1.4).
var lifecycleMethods = []string{"onCreate", "onStart", "onResume"}

// localizeOpeningApp recommends the starting activity's lifecycle methods
// for launch-time errors.
func (s *Solver) localizeOpeningApp(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	if info.StartingActivity == "" {
		return nil
	}
	match := false
	trigger := ""
	for vi := range ra.VerbPhrases {
		vp := &ra.VerbPhrases[vi]
		verb := vp.Verb
		if (verb == "open" || verb == "launch" || verb == "start") && len(vp.Object) > 0 {
			if _, ok := openAppObjects[vp.ObjectHead()]; ok {
				match, trigger = true, ra.vpKey(vi)
				break
			}
		}
	}
	if !match {
		// "crashes right after launch", "crashed every time i opened it".
		cues := []string{
			"open it", "opened it", "opening it", "open the app",
			"opened the app", "launch", "startup", "start up",
			"won't start", "wont start", "doesn't start", "does not start",
			"won't open", "wont open", "doesn't open", "cannot even open",
		}
		for _, sent := range ra.Sentences {
			lower := " " + strings.ToLower(sent) + " "
			for _, cue := range cues {
				if strings.Contains(lower, cue) {
					match, trigger = true, strings.TrimSpace(sent)
					break
				}
			}
			if match {
				break
			}
		}
	}
	if !match {
		return nil
	}
	simHist := s.simHist()
	out := make([]Mapping, 0, len(lifecycleMethods))
	for _, m := range lifecycleMethods {
		out = append(out, Mapping{
			Phrase:   trigger,
			Class:    info.StartingActivity,
			Method:   m,
			Context:  ctxinfo.OpeningApp,
			Evidence: "starting activity lifecycle",
		})
		simHist.Observe(1)
		if tr != nil {
			tr.AddMatch(obs.MatchTrace{
				Phrase: trigger, Class: info.StartingActivity, Method: m,
				Stage: stageOpeningApp, Source: "starting activity",
				Evidence: "starting activity lifecycle", Similarity: 1,
			})
		}
	}
	return out
}

// --- §4.1.5 Account registration --------------------------------------------------

// localizeRegistration recommends the registration/login activities for
// account errors.
func (s *Solver) localizeRegistration(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	if !mentionsRegistration(ra) {
		return nil
	}
	activities := gui.FindRegistrationActivities(info.GUIs)
	simHist := s.simHist()
	out := make([]Mapping, 0, len(activities))
	for _, a := range activities {
		out = append(out, Mapping{
			Phrase:   "account registration",
			Class:    a,
			Context:  ctxinfo.RegisteringAccount,
			Evidence: "registration activity",
		})
		simHist.Observe(1)
		if tr != nil {
			tr.AddMatch(obs.MatchTrace{
				Phrase: "account registration", Class: a,
				Stage: stageRegistration, Source: "registration activity",
				Evidence: "registration activity", Similarity: 1,
			})
		}
	}
	return out
}

func mentionsRegistration(ra *ReviewAnalysis) bool {
	for _, vp := range ra.VerbPhrases {
		switch vp.Verb {
		case "register", "login", "signin":
			return true
		case "sign", "log":
			return true
		}
		if vp.ObjectHead() == "account" && (vp.Verb == "create" || vp.Verb == "add") {
			return true
		}
	}
	for _, np := range ra.NounPhrases {
		if np.Head == "registration" || np.Head == "login" || np.Head == "signin" {
			return true
		}
	}
	for _, sent := range ra.Sentences {
		lower := strings.ToLower(sent)
		if strings.Contains(lower, "login") || strings.Contains(lower, "log in") ||
			strings.Contains(lower, "sign in") || strings.Contains(lower, "register") {
			return true
		}
	}
	return false
}

// --- §4.1.6 App updating ---------------------------------------------------------

// updateCues detect update-related error reviews.
var updateCues = []string{
	"recent update", "latest update", "new update", "last update",
	"after updating", "after the update", "since the update", "latest upgrade",
	"update app", "updated the app", "started crashing after",
}

// localizeUpdate maps update-related reviews: when other localizers already
// produced mappings those stand (the paper checks the other phrases first);
// otherwise it recommends the classes changed between the two latest
// versions.
func (s *Solver) localizeUpdate(ra *ReviewAnalysis, existing []Mapping, previous, current *apk.Release, tr *obs.ReviewTrace) []Mapping {
	if previous == nil || current == nil {
		return nil
	}
	mentioned := false
	for _, sent := range ra.Sentences {
		lower := strings.ToLower(sent)
		for _, cue := range updateCues {
			if strings.Contains(lower, cue) {
				mentioned = true
				break
			}
		}
	}
	if !mentioned || len(existing) > 0 {
		return nil
	}
	simHist := s.simHist()
	var out []Mapping
	for _, cls := range apk.DiffClasses(previous, current) {
		evidence := "changed between " + previous.Version + " and " + current.Version
		out = append(out, Mapping{
			Phrase:   "app update",
			Class:    cls,
			Context:  ctxinfo.UpdatingApp,
			Evidence: evidence,
		})
		simHist.Observe(1)
		if tr != nil {
			tr.AddMatch(obs.MatchTrace{
				Phrase: "app update", Class: cls,
				Stage: stageUpdate, Source: "version diff", Evidence: evidence,
				Similarity: 1,
			})
		}
	}
	return out
}

// --- §4.2.1 API / URI / intent (Algorithm 1) --------------------------------------

// collectionVerbs are the information access verbs of §4.2.1 whose objects
// are matched against permission-protected data.
var collectionVerbs = map[string]struct{}{
	"gather": {}, "collect": {}, "read": {}, "access": {}, "use": {},
	"get": {}, "fetch": {}, "find": {}, "query": {},
}

// localizeAPIURIIntent implements Algorithm 1: verb phrases against API
// phrases, verb-phrase objects against URI nouns and intent nouns. The
// whole-catalog API scan — the dominant Table 15 cost — is chunked across
// workers with a deterministic candidate-order merge. The default matcher
// scans the flattened catalog matrix with the dot-only kernel and anchor
// prescreen, reading the permission-noun and URI/intent-noun vectors cached
// at construction/extraction time; WithLegacyCosine restores the per-struct
// full-cosine pass (byte-identical output, property-tested).
func (s *Solver) localizeAPIURIIntent(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	table := s.catalogVecs()
	useKernel := !s.legacyCosine
	threshold := s.vec.Threshold()
	simHist := s.simHist()
	for vi := range ra.VerbPhrases {
		vp := ra.VerbPhrases[vi]
		prep := s.fe.prep(s, ra.vpKey(vi), vp)
		v := prep.vec
		phraseText := prep.text
		_, isCollect := collectionVerbs[vp.Verb]
		hasObject := prep.hasObj
		objVec := prep.objVec
		q := &prep.q

		// APIs (Algorithm 1 lines 3–10): the comparison runs over the whole
		// documented catalog and a match is reported only when the app
		// actually invokes the API.
		res := parallelChunks(len(table.entries), s.parallelism,
			func(start, end int) scanChunk {
				var ck scanChunk
				for ei := start; ei < end; ei++ {
					entry := &table.entries[ei]
					matched := false
					sim := 0.0
					source := "API"
					if useKernel {
						var esc wordvec.ScanCount
						matched, esc = table.matrix.AnyAtLeastCount(q, threshold,
							int(table.rowStart[ei]), int(table.rowStart[ei+1]))
						ck.scan.Merge(esc)
						if matched {
							sim = threshold // AnyAtLeast stops at the hit; record the floor
						}
					} else {
						for _, pv := range entry.vecs {
							ck.scan.Evaluated++
							if c := wordvec.Cosine(v, pv); c >= threshold {
								matched, sim = true, c
								ck.scan.Matched++
								break
							}
						}
					}
					// Permission-protected personal data: collection verb +
					// object similar to the permission nouns (cached per
					// entry — the seed re-derived them per phrase×entry).
					if !matched && isCollect && hasObject && len(entry.permNouns) > 0 {
						var psim float64
						if useKernel {
							psim = wordvec.Dot(objVec, entry.permVec)
						} else {
							psim = s.vec.Similarity(vp.Object, entry.permNouns)
						}
						if psim >= threshold {
							matched, sim, source = true, psim, "permission"
						}
					}
					if !matched {
						continue
					}
					for _, cls := range info.APIClasses(entry.api.Class, entry.api.Method) {
						evidence := "API " + entry.api.Signature()
						ck.maps = append(ck.maps, Mapping{
							Phrase:   phraseText,
							Class:    cls,
							Context:  ctxinfo.APIURIIntent,
							Evidence: evidence,
						})
						simHist.Observe(sim)
						if tr != nil {
							ck.matches = append(ck.matches, obs.MatchTrace{
								Phrase: phraseText, Class: cls,
								Stage: stageAPIURIIntent, Source: source, Evidence: evidence,
								Similarity: sim,
							})
						}
					}
				}
				return ck
			})
		out = append(out, res.maps...)
		tr.AddMatches(res.matches)
		if s.rec != nil || tr != nil {
			s.noteScan(tr, stageAPIURIIntent, "catalog", phraseText, table.matrix.Rows(), res.scan)
		}

		if !hasObject {
			continue
		}

		// URIs (lines 11–18): object vs permission nouns of the URI.
		for ui := range info.URIs {
			use := &info.URIs[ui]
			if len(use.Nouns) == 0 {
				continue
			}
			var sim float64
			if useKernel && info.uriNounVecs != nil {
				sim = wordvec.Dot(objVec, info.uriNounVecs[ui])
			} else {
				sim = wordvec.Cosine(objVec, s.vec.PhraseVector(use.Nouns))
			}
			if sim < threshold {
				continue
			}
			for _, cls := range use.Classes {
				evidence := "URI " + use.URI.URI
				out = append(out, Mapping{
					Phrase:   phraseText,
					Class:    cls,
					Context:  ctxinfo.APIURIIntent,
					Evidence: evidence,
				})
				simHist.Observe(sim)
				if tr != nil {
					tr.AddMatch(obs.MatchTrace{
						Phrase: phraseText, Class: cls,
						Stage: stageAPIURIIntent, Source: "URI", Evidence: evidence,
						Similarity: sim,
					})
				}
			}
		}

		// Intents (lines 19–26): object vs common-intent nouns.
		for ii := range info.Intents {
			use := &info.Intents[ii]
			matched, sim := false, 0.0
			for ni, noun := range use.Nouns {
				if useKernel && info.intentNounVecs != nil {
					if d := wordvec.Dot(objVec, info.intentNounVecs[ii][ni]); d >= threshold {
						matched, sim = true, d
						break
					}
				} else if c := s.vec.Similarity(vp.Object, []string{noun}); c >= threshold {
					matched, sim = true, c
					break
				}
			}
			if !matched {
				continue
			}
			for _, cls := range use.Classes {
				evidence := "intent " + use.Action
				out = append(out, Mapping{
					Phrase:   phraseText,
					Class:    cls,
					Context:  ctxinfo.APIURIIntent,
					Evidence: evidence,
				})
				simHist.Observe(sim)
				if tr != nil {
					tr.AddMatch(obs.MatchTrace{
						Phrase: phraseText, Class: cls,
						Stage: stageAPIURIIntent, Source: "intent", Evidence: evidence,
						Similarity: sim,
					})
				}
			}
		}
	}
	return out
}

// --- §4.2.2 General task (Algorithm 2) ---------------------------------------------

// localizeGeneralTask looks the verb phrase up in the Q&A index, takes the
// top-k framework APIs, and recommends the classes calling them.
func (s *Solver) localizeGeneralTask(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	if s.qaIndex == nil {
		return nil
	}
	var out []Mapping
	simHist := s.simHist()
	query := func(phraseText string, words []string) {
		for _, ref := range s.qaIndex.TopAPIs(words, 5) {
			for _, cls := range info.Graph.ClassesCalling(ref.Class, ref.Method) {
				evidence := "Q&A task API " + ref.Key()
				out = append(out, Mapping{
					Phrase:   phraseText,
					Class:    cls,
					Context:  ctxinfo.GeneralTask,
					Evidence: evidence,
				})
				simHist.Observe(1)
				if tr != nil {
					tr.AddMatch(obs.MatchTrace{
						Phrase: phraseText, Class: cls,
						Stage: stageGeneralTask, Source: "Q&A task API", Evidence: evidence,
						Similarity: 1,
					})
				}
			}
		}
	}
	for vi := range ra.VerbPhrases {
		prep := s.fe.prep(s, ra.vpKey(vi), ra.VerbPhrases[vi])
		query(prep.text, prep.words)
	}
	// Error-type noun phrases are also searched as-is ("404 error" is a
	// Stack Overflow query in §2.3 Example 6).
	for ni := range ra.NounPhrases {
		if mods := phrase.ErrorModifier(ra.NounPhrases[ni]); len(mods) > 0 {
			query(ra.npKey(ni), append(append([]string(nil), mods...), "error"))
		}
	}
	return out
}

// --- §4.2.3 Exception ---------------------------------------------------------------

// localizeException maps "<type> exception" noun phrases to the classes
// calling framework APIs that throw matching exceptions, and to developer
// methods that catch them.
func (s *Solver) localizeException(ra *ReviewAnalysis, info *StaticInfo, tr *obs.ReviewTrace) []Mapping {
	var out []Mapping
	simHist := s.simHist()
	add := func(phraseText, cls, method, source, evidence string) {
		out = append(out, Mapping{
			Phrase:   phraseText,
			Class:    cls,
			Method:   method,
			Context:  ctxinfo.Exception,
			Evidence: evidence,
		})
		simHist.Observe(1)
		if tr != nil {
			tr.AddMatch(obs.MatchTrace{
				Phrase: phraseText, Class: cls, Method: method,
				Stage: stageException, Source: source, Evidence: evidence,
				Similarity: 1,
			})
		}
	}
	for ni := range ra.NounPhrases {
		words := phrase.ExceptionType(ra.NounPhrases[ni])
		if len(words) == 0 {
			continue
		}
		npText := ra.npKey(ni)
		// Framework APIs documented to throw a matching exception type.
		for _, use := range info.APIs {
			for _, ex := range use.API.Exceptions {
				if !exceptionMatches(ex, words) {
					continue
				}
				for _, cls := range use.Classes {
					add(npText, cls, "", "API exception",
						"API "+use.API.Signature()+" throws "+ex)
				}
			}
		}
		// Developer methods that throw or catch a matching type (§4.2.3:
		// "we check the statements contained in each method to determine
		// the types of exceptions it can catch"), plus the classes calling
		// those methods ("we output the classes that call these framework
		// APIs or the methods defined by developers").
		for _, site := range info.Exceptions {
			if !exceptionMatches(site.Exception, words) {
				continue
			}
			add(npText, site.Site.Class(), site.Site.Method.Name,
				"exception handler", "handles "+site.Exception)
			for _, caller := range info.Graph.Callers(site.Site.Method.QualifiedName()) {
				cls, method := splitQualified(caller)
				add(npText, cls, method, "exception handler caller",
					"calls "+site.Site.Method.Name+" which handles "+site.Exception)
			}
		}
	}
	return out
}

// splitQualified splits "pkg.Class.method" into class and method parts.
func splitQualified(qualified string) (class, method string) {
	if i := strings.LastIndexByte(qualified, '.'); i >= 0 {
		return qualified[:i], qualified[i+1:]
	}
	return qualified, ""
}

// exceptionMatches reports whether an exception type name ("SocketException")
// matches the review's type words (["socket"]).
func exceptionMatches(exception string, words []string) bool {
	typeWords := textproc.SplitIdentifier(exception)
	set := make(map[string]struct{}, len(typeWords))
	for _, w := range typeWords {
		if w != "exception" {
			set[w] = struct{}{}
		}
	}
	for _, w := range words {
		if _, ok := set[w]; !ok {
			return false
		}
	}
	return true
}
