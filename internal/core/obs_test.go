package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

// TestObservationDoesNotChangeOutput: installing a recorder and collecting
// an explain trace must never alter mappings or rankings.
func TestObservationDoesNotChangeOutput(t *testing.T) {
	data := synth.GenerateSample(7)
	app := data.App
	plain := New()
	observed := New(WithObserver(obs.NewRecorder(obs.NewRegistry(), nil)), WithParallelism(4))

	reviews := data.Reviews
	if len(reviews) > 20 {
		reviews = reviews[:20]
	}
	for i, rv := range reviews {
		want := plain.LocalizeReview(app, rv.Text, rv.PublishedAt)
		got, tr := observed.LocalizeReviewTraced(app, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) {
			t.Fatalf("review %d: observed mappings differ from plain", i)
		}
		if !reflect.DeepEqual(got.Ranked, want.Ranked) {
			t.Fatalf("review %d: observed ranking differs from plain", i)
		}
		if tr == nil {
			t.Fatalf("review %d: traced run returned no trace", i)
		}
	}
}

// TestTraceByteDeterminism is the acceptance property of the explain
// artifact: for a fixed review the JSON encoding must be byte-identical
// across repeated runs and across parallelism settings.
func TestTraceByteDeterminism(t *testing.T) {
	data := synth.GenerateSample(3)
	app := data.App
	reviews := data.Reviews
	if len(reviews) > 15 {
		reviews = reviews[:15]
	}

	encode := func(s *Solver) [][]byte {
		out := make([][]byte, len(reviews))
		for i, rv := range reviews {
			_, tr := s.LocalizeReviewTraced(app, rv.Text, rv.PublishedAt)
			jsonBytes, err := tr.JSON()
			if err != nil {
				t.Fatalf("review %d: %v", i, err)
			}
			if err := obs.ValidateTraceJSON(jsonBytes); err != nil {
				t.Fatalf("review %d: %v", i, err)
			}
			out[i] = jsonBytes
		}
		return out
	}

	sn := NewSnapshot()
	base := encode(NewWithSnapshot(sn))
	rerun := encode(NewWithSnapshot(sn))
	parallel := encode(NewWithSnapshot(sn, WithParallelism(8)))
	observed := encode(NewWithSnapshot(sn, WithParallelism(8),
		WithObserver(obs.NewRecorder(obs.NewRegistry(), nil))))

	for i := range base {
		if !bytes.Equal(base[i], rerun[i]) {
			t.Errorf("review %d: trace differs across runs", i)
		}
		if !bytes.Equal(base[i], parallel[i]) {
			t.Errorf("review %d: trace differs between sequential and 8-way parallel", i)
		}
		if !bytes.Equal(base[i], observed[i]) {
			t.Errorf("review %d: trace differs with a recorder installed", i)
		}
	}
}

// TestTraceContent spot-checks the acceptance criterion on a review known
// to localize: the trace must name the matched phrase, the information
// source, the similarity, and the prescreen counts, and the ranked entries
// must point at their supporting matches.
func TestTraceContent(t *testing.T) {
	data := synth.GenerateSample(1)
	app := data.App
	s := New()
	var tr *obs.ReviewTrace
	var res *Result
	for _, rv := range data.Reviews {
		r, rt := s.LocalizeReviewTraced(app, rv.Text, rv.PublishedAt)
		if r.Localized() && len(rt.Scans) > 0 {
			res, tr = r, rt
			break
		}
	}
	if res == nil {
		t.Fatal("no review in the seeded corpus localized via a matrix scan")
	}
	if len(tr.Matches) == 0 {
		t.Fatal("localized review produced no trace matches")
	}
	for i, m := range tr.Matches {
		if m.Phrase == "" || m.Source == "" || m.Stage == "" {
			t.Fatalf("match %d incomplete: %+v", i, m)
		}
	}
	if len(tr.Scans) == 0 {
		t.Fatal("trace has no prescreen scan records")
	}
	if len(tr.Ranked) != len(res.Ranked) {
		t.Fatalf("trace has %d ranked entries, result has %d", len(tr.Ranked), len(res.Ranked))
	}
	for _, rt := range tr.Ranked {
		if len(rt.Matches) == 0 {
			t.Fatalf("ranked class %s has no supporting matches", rt.Class)
		}
		for _, mi := range rt.Matches {
			if tr.Matches[mi].Class != rt.Class {
				t.Fatalf("ranked class %s points at match for %s", rt.Class, tr.Matches[mi].Class)
			}
		}
	}
	// The stage walk must cover the root pipeline and all nine localizers.
	stages := make(map[string]bool, len(tr.Stages))
	for _, st := range tr.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{
		stageClassify, stageStatic, stageAnalyze, stageLocalize, stageRank,
		stageAppSpecific, stageGUI, stageErrorMessage, stageOpeningApp,
		stageRegistration, stageAPIURIIntent, stageGeneralTask, stageException, stageUpdate,
	} {
		if !stages[want] {
			t.Errorf("trace stage walk is missing %q", want)
		}
	}
}

// TestPoolLocalizeTraced runs the traced pool end to end (the -race gate
// covers the registry and trace aggregation under concurrency) and checks
// the registry totals and drained gauges.
func TestPoolLocalizeTraced(t *testing.T) {
	apps, inputs := poolInputs(40)
	app := apps[0].App

	reg := obs.NewRegistry()
	pool := NewPool(4).WithObserver(obs.NewRecorder(reg, nil))
	results, traces := pool.LocalizeTraced(app, inputs)

	if len(results) != len(inputs) || len(traces) != len(inputs) {
		t.Fatalf("got %d results / %d traces for %d inputs", len(results), len(traces), len(inputs))
	}
	seq := New()
	for i, in := range inputs {
		want := seq.LocalizeReview(app, in.Text, in.PublishedAt)
		if !reflect.DeepEqual(results[i].Mappings, want.Mappings) {
			t.Fatalf("input %d: traced pool mappings differ from sequential", i)
		}
		if traces[i] == nil {
			t.Fatalf("input %d: nil trace", i)
		}
		if traces[i].Pool == nil || traces[i].Pool.Workers != pool.Size() {
			t.Fatalf("input %d: pool occupancy block missing or wrong: %+v", i, traces[i].Pool)
		}
		jsonBytes, err := traces[i].JSON()
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if err := obs.ValidateTraceJSON(jsonBytes); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
	}

	snap := reg.Snapshot()
	if got := snap[metricReviews]; got != float64(len(inputs)) {
		t.Errorf("%s = %g, want %d", metricReviews, got, len(inputs))
	}
	if got := snap[metricPoolJobs]; got != float64(len(inputs)) {
		t.Errorf("%s = %g, want %d", metricPoolJobs, got, len(inputs))
	}
	if got := snap[metricPoolQueueDepth]; got != 0 {
		t.Errorf("%s = %g, want 0 after drain", metricPoolQueueDepth, got)
	}
	if got := snap[metricPoolBusy]; got != 0 {
		t.Errorf("%s = %g, want 0 after drain", metricPoolBusy, got)
	}
	if got := snap["stage_review_ns|count"]; got != float64(len(inputs)) {
		t.Errorf("stage_review_ns|count = %g, want %d", got, len(inputs))
	}
	if snap[metricPrescreenPruned]+snap[metricPrescreenEvaluated] <= 0 {
		t.Error("prescreen counters did not move")
	}
}

// TestStageCounters: the registry must count pipeline stages and reviews
// exactly, and scan-count aggregation must match the dedicated stat probes.
func TestStageCounters(t *testing.T) {
	data := synth.GenerateSample(5)
	app := data.App
	reg := obs.NewRegistry()
	s := New(WithObserver(obs.NewRecorder(reg, nil)))

	const n = 10
	for i := 0; i < n; i++ {
		rv := data.Reviews[i]
		s.LocalizeReview(app, rv.Text, rv.PublishedAt)
	}
	snap := reg.Snapshot()
	if got := snap[metricReviews]; got != n {
		t.Errorf("%s = %g, want %d", metricReviews, got, n)
	}
	// No classifier installed: every review is an error review, so every
	// stage ran once per review.
	if got := snap[metricErrorReviews]; got != n {
		t.Errorf("%s = %g, want %d", metricErrorReviews, got, n)
	}
	for _, stage := range []string{stageClassify, stageAnalyze, stageLocalize, stageRank, stageAppSpecific} {
		if got := snap["stage_"+stage+"_calls_total"]; got != n {
			t.Errorf("stage %s ran %g times, want %d", stage, got, n)
		}
	}
}

// TestTraceJSONOmitsWallClock guards the determinism contract at the schema
// level: no field of the encoded trace may carry a duration or timestamp.
func TestTraceJSONOmitsWallClock(t *testing.T) {
	data := synth.GenerateSample(1)
	s := New()
	rv := data.Reviews[0]
	_, tr := s.LocalizeReviewTraced(data.App, rv.Text, rv.PublishedAt)
	jsonBytes, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(jsonBytes, &m); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"ns", "duration", "elapsed", "time", "timestamp"} {
		if _, ok := m[banned]; ok {
			t.Errorf("trace has wall-clock field %q", banned)
		}
	}
}
