package core

import (
	"reviewsolver/internal/obs"
	"reviewsolver/internal/wordvec"
)

// This file holds the pipeline's span taxonomy and the thin glue between
// the localizers and the telemetry layer. Everything is nil-safe: with no
// recorder installed (the default) and no explain trace requested, every
// hook below is a nil check and nothing else, so the kernel hot path keeps
// its instrumented-off numbers.

// Span taxonomy: the root review span, its direct children, and — under
// "localize" — one child per §4.1/§4.2 localizer.
const (
	stageReview   = "review"
	stageClassify = "classify"
	stageStatic   = "static"
	stageAnalyze  = "analyze"
	stageLocalize = "localize"
	stageRank     = "rank"

	stageAppSpecific  = "app_specific"
	stageGUI          = "gui"
	stageErrorMessage = "error_message"
	stageOpeningApp   = "opening_app"
	stageRegistration = "registration"
	stageAPIURIIntent = "api_uri_intent"
	stageGeneralTask  = "general_task"
	stageException    = "exception"
	stageUpdate       = "update"
)

// Registry metric names.
const (
	metricReviews          = "reviews_total"
	metricErrorReviews     = "error_reviews_total"
	metricLocalizedReviews = "localized_reviews_total"
	metricMappings         = "mappings_total"
	metricMatchSimilarity  = "match_similarity"

	metricPrescreenPruned    = "prescreen_pruned_total"
	metricPrescreenEvaluated = "prescreen_evaluated_total"
	metricPrescreenMatched   = "prescreen_matched_total"

	// Quantized-tier breakdown of pruned rows (see wordvec/quant.go). The
	// counters only ever appear when a quantized tier actually pruned
	// something, so corpora scanned on the float path keep their exact
	// pre-tier metric set.
	metricQuantIVFPruned   = "quant_ivf_pruned_total"
	metricQuantBoundPruned = "quant_bound_pruned_total"

	metricPoolJobs       = "pool_jobs_total"
	metricPoolQueueDepth = "pool_queue_depth"
	metricPoolBusy       = "pool_workers_busy"

	metricAnalysisCacheHits   = "analysis_cache_hits_total"
	metricAnalysisCacheMisses = "analysis_cache_misses_total"
	metricPhraseCacheHits     = "phrase_cache_hits_total"
	metricPhraseCacheMisses   = "phrase_cache_misses_total"
	metricInternerSize        = "interner_size"
	metricAnalysisCacheSize   = "analysis_cache_size"
	metricSpellMemoSize       = "spell_memo_size"
)

// ReviewLatencyMetric is the histogram holding per-review end-to-end
// latency in nanoseconds (the "review" stage span), exported for summary
// percentile reporting (cmd/reviewsolver) and the obs gate.
const ReviewLatencyMetric = "stage_" + stageReview + "_ns"

// notePerApp bumps the per-app labeled child of a pipeline counter when
// this solver carries an app label (WithAppLabel). The vec child resolves
// through the registry's bounded label table, so a fleet of solvers sharing
// one registry cannot grow it without limit.
func (s *Solver) notePerApp(metric string, n int64) {
	if s.appLabel == "" || s.rec == nil {
		return
	}
	s.rec.Registry().CounterVec(metric, "app").With(s.appLabel).Add(n)
}

// simHist vends the match-similarity histogram (nil without a recorder).
func (s *Solver) simHist() *obs.Histogram {
	return s.rec.Histogram(metricMatchSimilarity, obs.SimilarityBuckets)
}

// noteScan folds one merged phrase×matrix scan count into the registry
// counters and the explain trace. The counts arrive already aggregated
// across worker chunks (each chunk tallies locally and the merge happens
// after the chunks join), so no scan bookkeeping is shared between
// goroutines — race-safe by construction under Pool and WithParallelism.
func (s *Solver) noteScan(tr *obs.ReviewTrace, stage, matrix, phrase string, rows int, sc wordvec.ScanCount) {
	if s.rec != nil {
		s.rec.Counter(metricPrescreenPruned).Add(int64(sc.TotalPruned()))
		s.rec.Counter(metricPrescreenEvaluated).Add(int64(sc.Evaluated))
		s.rec.Counter(metricPrescreenMatched).Add(int64(sc.Matched))
		if sc.IVFPruned > 0 {
			s.rec.Counter(metricQuantIVFPruned).Add(int64(sc.IVFPruned))
		}
		if sc.BoundPruned > 0 {
			s.rec.Counter(metricQuantBoundPruned).Add(int64(sc.BoundPruned))
		}
	}
	tr.AddScan(obs.ScanTrace{
		Stage: stage, Matrix: matrix, Phrase: phrase,
		Rows: rows, Pruned: sc.TotalPruned(), Evaluated: sc.Evaluated, Matched: sc.Matched,
	})
}
