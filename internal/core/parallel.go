package core

import (
	"runtime"
	"sync"
)

// matchChunkMin is the smallest number of candidates one worker should own:
// below roughly this size the goroutine hand-off costs more than the cosine
// comparisons it saves.
const matchChunkMin = 32

// normalizeWorkers maps a requested worker count to an effective one:
// 0 means runtime.NumCPU(), negative means strictly sequential.
func normalizeWorkers(n int) int {
	switch {
	case n == 0:
		return runtime.NumCPU()
	case n < 0:
		return 1
	default:
		return n
	}
}

// parallelMappings evaluates fn over the index range [0, n) split into at
// most `workers` contiguous chunks and concatenates the chunk results in
// chunk order. Because every localizer appends mappings in candidate order,
// the concatenation is byte-identical to a single sequential fn(0, n) pass —
// rankings downstream cannot tell the two apart.
func parallelMappings(n, workers int, fn func(start, end int) []Mapping) []Mapping {
	if n == 0 {
		return nil
	}
	if workers > n/matchChunkMin {
		workers = n / matchChunkMin
	}
	if workers < 2 {
		return fn(0, n)
	}
	parts := make([][]Mapping, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			parts[w] = fn(start, end)
		}(w, start, end)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]Mapping, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
