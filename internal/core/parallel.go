package core

import (
	"runtime"
	"sync"

	"reviewsolver/internal/obs"
	"reviewsolver/internal/wordvec"
)

// matchChunkMin is the smallest number of candidates one worker should own:
// below roughly this size the goroutine hand-off costs more than the cosine
// comparisons it saves.
const matchChunkMin = 32

// normalizeWorkers maps a requested worker count to an effective one:
// 0 means runtime.NumCPU(), negative means strictly sequential.
func normalizeWorkers(n int) int {
	switch {
	case n == 0:
		return runtime.NumCPU()
	case n < 0:
		return 1
	default:
		return n
	}
}

// scanChunk is one worker chunk's output from a phrase×candidate matching
// loop: the mappings it emitted, the explain-trace matches mirroring them
// (empty unless a trace is being collected), and the chunk-local kernel
// scan tally. Each chunk owns its own scanChunk — nothing is shared while
// workers run — and the merge after the join folds them in chunk order, so
// mapping/match order and the summed scan counts are byte-identical to a
// sequential pass and race-free under Pool and WithParallelism.
type scanChunk struct {
	maps    []Mapping
	matches []obs.MatchTrace
	scan    wordvec.ScanCount
}

// parallelChunks evaluates fn over the index range [0, n) split into at
// most `workers` contiguous chunks and merges the chunk results in chunk
// order. Because every localizer appends mappings in candidate order, the
// concatenation is byte-identical to a single sequential fn(0, n) pass —
// rankings and explain traces downstream cannot tell the two apart.
func parallelChunks(n, workers int, fn func(start, end int) scanChunk) scanChunk {
	if n == 0 {
		return scanChunk{}
	}
	if workers > n/matchChunkMin {
		workers = n / matchChunkMin
	}
	if workers < 2 {
		return fn(0, n)
	}
	parts := make([]scanChunk, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			continue
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			parts[w] = fn(start, end)
		}(w, start, end)
	}
	wg.Wait()
	var out scanChunk
	totalMaps, totalMatches := 0, 0
	for i := range parts {
		totalMaps += len(parts[i].maps)
		totalMatches += len(parts[i].matches)
	}
	if totalMaps > 0 {
		out.maps = make([]Mapping, 0, totalMaps)
	}
	if totalMatches > 0 {
		out.matches = make([]obs.MatchTrace, 0, totalMatches)
	}
	for i := range parts {
		out.maps = append(out.maps, parts[i].maps...)
		out.matches = append(out.matches, parts[i].matches...)
		out.scan.Merge(parts[i].scan)
	}
	return out
}
