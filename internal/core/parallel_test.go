package core

import (
	"reflect"
	"strconv"
	"testing"

	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

func TestNormalizeWorkers(t *testing.T) {
	if got := normalizeWorkers(-5); got != 1 {
		t.Errorf("normalizeWorkers(-5) = %d, want 1", got)
	}
	if got := normalizeWorkers(3); got != 3 {
		t.Errorf("normalizeWorkers(3) = %d, want 3", got)
	}
	if got := normalizeWorkers(0); got < 1 {
		t.Errorf("normalizeWorkers(0) = %d, want >= 1", got)
	}
}

// TestParallelChunksOrder checks the deterministic merge: any worker count
// must reproduce the sequential single-pass output exactly — mappings,
// trace matches, and summed scan counts alike.
func TestParallelChunksOrder(t *testing.T) {
	gen := func(start, end int) scanChunk {
		var out scanChunk
		for i := start; i < end; i++ {
			out.scan.Evaluated++
			// Keep every third candidate so chunks produce ragged outputs.
			if i%3 != 0 {
				continue
			}
			out.scan.Matched++
			out.maps = append(out.maps, Mapping{
				Phrase:  "p" + strconv.Itoa(i),
				Class:   "C" + strconv.Itoa(i),
				Context: ctxinfo.AppSpecificTask,
			})
			out.matches = append(out.matches, obs.MatchTrace{
				Phrase: "p" + strconv.Itoa(i),
				Class:  "C" + strconv.Itoa(i),
			})
		}
		return out
	}
	for _, n := range []int{0, 1, 31, 32, 64, 65, 100, 1000, 1001} {
		want := gen(0, n)
		for _, workers := range []int{1, 2, 3, 7, 16, 64} {
			got := parallelChunks(n, workers, gen)
			if !reflect.DeepEqual(got.maps, want.maps) {
				t.Fatalf("n=%d workers=%d: parallel merge differs from sequential (len %d vs %d)",
					n, workers, len(got.maps), len(want.maps))
			}
			if !reflect.DeepEqual(got.matches, want.matches) {
				t.Fatalf("n=%d workers=%d: merged trace matches differ", n, workers)
			}
			if got.scan != want.scan {
				t.Fatalf("n=%d workers=%d: merged scan counts %+v != sequential %+v",
					n, workers, got.scan, want.scan)
			}
		}
	}
}

// TestParallelRankingMatchesSequential is the property test of the CI gate:
// across seeded synthetic corpora, a solver with a chunked-parallel matcher
// must produce byte-identical mappings and rankings to the sequential path.
func TestParallelRankingMatchesSequential(t *testing.T) {
	for _, seed := range []int64{3, 7, 21} {
		data := synth.GenerateSample(seed)
		app := data.App

		seq := New()
		par := New(WithParallelism(8))

		// The parallel path must actually engage on the catalog scan for the
		// property to mean anything.
		if n := len(par.catalogVecs().entries); n < 2*matchChunkMin {
			t.Fatalf("catalog too small (%d) for the parallel matcher to engage", n)
		}

		reviews := data.Reviews
		if len(reviews) > 25 {
			reviews = reviews[:25]
		}
		for i, rv := range reviews {
			want := seq.LocalizeReview(app, rv.Text, rv.PublishedAt)
			got := par.LocalizeReview(app, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want.Mappings) {
				t.Fatalf("seed %d review %d: parallel mappings differ from sequential", seed, i)
			}
			if !reflect.DeepEqual(got.Ranked, want.Ranked) {
				t.Fatalf("seed %d review %d: parallel ranking differs from sequential", seed, i)
			}
		}
	}
}

// TestSnapshotParallelSolverMatchesSequential combines both layers: a
// snapshot-backed solver with inner parallelism vs the plain sequential
// solver.
func TestSnapshotParallelSolverMatchesSequential(t *testing.T) {
	apps, inputs := poolInputs(20)
	app := apps[0].App

	seq := New()
	sn := NewSnapshot()
	par := NewWithSnapshot(sn, WithParallelism(4))

	for i, in := range inputs {
		want := seq.LocalizeReview(app, in.Text, in.PublishedAt)
		got := par.LocalizeReview(app, in.Text, in.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, want.Mappings) {
			t.Fatalf("input %d: snapshot+parallel mappings differ from sequential", i)
		}
		assertSameRanking(t, i, got.RankedClassNames(), want.RankedClassNames())
	}
}
