package core

import (
	"sync"
	"time"

	"reviewsolver/internal/apk"
)

// ReviewInput is one review to localize in a batch.
type ReviewInput struct {
	// Text is the raw review.
	Text string
	// PublishedAt is the review's publication time.
	PublishedAt time.Time
}

// Pool localizes review batches concurrently. A Solver is not safe for
// concurrent use (its embedding and static-analysis caches are plain maps),
// so the pool owns one Solver per worker; results are returned in input
// order regardless of completion order.
type Pool struct {
	solvers []*Solver
}

// NewPool builds a pool of n workers, each with a Solver constructed from
// the same options. n < 1 is treated as 1.
func NewPool(n int, opts ...Option) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{solvers: make([]*Solver, n)}
	for i := range p.solvers {
		p.solvers[i] = New(opts...)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.solvers) }

// Localize runs the full pipeline over the batch and returns one Result per
// input, in input order. All workers exit before Localize returns.
func (p *Pool) Localize(app *apk.App, reviews []ReviewInput) []*Result {
	results := make([]*Result, len(reviews))
	if len(reviews) == 0 {
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < len(p.solvers); w++ {
		solver := p.solvers[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = solver.LocalizeReview(app, reviews[i].Text, reviews[i].PublishedAt)
			}
		}()
	}
	for i := range reviews {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
