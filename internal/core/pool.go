package core

import (
	"context"
	"sync"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/obs"
)

// ReviewInput is one review to localize in a batch.
type ReviewInput struct {
	// Text is the raw review.
	Text string
	// PublishedAt is the review's publication time.
	PublishedAt time.Time
}

// Pool localizes review batches concurrently. All workers share one
// immutable Snapshot — the catalog embeddings and per-release static
// extraction are computed once, not once per worker — so pool memory and
// warm-up cost are flat in the worker count. Results are returned in input
// order regardless of completion order.
type Pool struct {
	snap    *Snapshot
	solver  *Solver
	workers int
}

// NewPool builds a pool of n workers sharing one Snapshot constructed from
// the options. n == 0 means runtime.NumCPU() — the default for saturating
// the machine. Negative n requests a single worker (strictly sequential
// draining); it is accepted so callers can compute worker counts without
// guarding against underflow.
func NewPool(n int, opts ...Option) *Pool {
	return NewPoolWithSnapshot(n, NewSnapshot(opts...))
}

// NewPoolWithSnapshot builds a pool over an existing shared snapshot,
// letting several pools (or pools plus standalone solvers) reuse the same
// precomputed state. n follows the NewPool convention.
func NewPoolWithSnapshot(n int, sn *Snapshot) *Pool {
	return &Pool{
		snap:    sn,
		solver:  NewWithSnapshot(sn),
		workers: normalizeWorkers(n),
	}
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.workers }

// Snapshot returns the shared precomputed state backing the pool.
func (p *Pool) Snapshot() *Snapshot { return p.snap }

// WithObserver installs a telemetry recorder on the pool's shared solver.
// Must be called before Localize; the pool then reports job counters and
// queue/worker occupancy gauges alongside the per-review pipeline metrics.
func (p *Pool) WithObserver(rec *obs.Recorder) *Pool {
	p.solver.rec = rec
	return p
}

// Localize runs the full pipeline over the batch and returns one Result per
// input, in input order. All workers exit before Localize returns. Localize
// is itself safe to call concurrently: every worker reads through the
// shared snapshot.
func (p *Pool) Localize(app *apk.App, reviews []ReviewInput) []*Result {
	results, _ := p.localize(app, reviews, false)
	return results
}

// LocalizeTraced is Localize plus one explain trace per review (aligned
// with the results slice). Each trace additionally records the pool
// occupancy — queue depth and busy workers — observed when a worker picked
// the review up; those two fields are scheduling-dependent, everything else
// in the trace is deterministic.
func (p *Pool) LocalizeTraced(app *apk.App, reviews []ReviewInput) ([]*Result, []*obs.ReviewTrace) {
	return p.localize(app, reviews, true)
}

func (p *Pool) localize(app *apk.App, reviews []ReviewInput, traced bool) ([]*Result, []*obs.ReviewTrace) {
	results := make([]*Result, len(reviews))
	var traces []*obs.ReviewTrace
	if traced {
		traces = make([]*obs.ReviewTrace, len(reviews))
	}
	if len(reviews) == 0 {
		return results, traces
	}
	rec := p.solver.rec
	queued := rec.Gauge(metricPoolQueueDepth)
	busy := rec.Gauge(metricPoolBusy)
	rec.Counter(metricPoolJobs).Add(int64(len(reviews)))
	queued.Add(int64(len(reviews)))
	workers := p.workers
	if workers > len(reviews) {
		workers = len(reviews)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				queued.Add(-1)
				busy.Add(1)
				if traced {
					tr := obs.NewReviewTrace(reviews[i].Text)
					tr.Pool = &obs.PoolTrace{
						Workers:     p.workers,
						QueueDepth:  int(queued.Value()),
						BusyWorkers: int(busy.Value()),
					}
					traces[i] = tr
					results[i] = p.solver.localizeReview(app, reviews[i].Text, reviews[i].PublishedAt, tr)
				} else {
					results[i] = p.solver.LocalizeReview(app, reviews[i].Text, reviews[i].PublishedAt)
				}
				busy.Add(-1)
			}
		}()
	}
	for i := range reviews {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	p.solver.publishFrontendGauges()
	return results, traces
}

// CorpusResult pairs a localization result with the input-order index of its
// review.
type CorpusResult struct {
	Index  int
	Result *Result
}

// LocalizeCorpus streams a review corpus through the pool: reviews are read
// from the input channel as workers free up, and results are emitted on the
// returned channel in input order. Memory stays bounded by the worker count
// — at most ~2× workers results are in flight (completed-but-unemitted
// results wait in the reorder buffer, which backpressures the workers via
// the bounded dones channel) — so corpora far larger than RAM can stream
// through. The returned channel is closed after the last result.
func (p *Pool) LocalizeCorpus(app *apk.App, reviews <-chan ReviewInput) <-chan CorpusResult {
	return p.LocalizeCorpusContext(context.Background(), app, reviews)
}

// LocalizeCorpusContext is LocalizeCorpus under a context. When ctx ends,
// the stream shuts down promptly: the feeder stops reading reviews, every
// worker exits after (at most) the review it is currently localizing, and
// the output channel closes — even if the consumer has walked away and no
// longer drains it. No goroutine outlives the cancellation (property-tested
// in pool_ctx_test.go). With an uncancelled context the emitted results are
// exactly those of LocalizeCorpus.
func (p *Pool) LocalizeCorpusContext(ctx context.Context, app *apk.App, reviews <-chan ReviewInput) <-chan CorpusResult {
	out := make(chan CorpusResult, p.workers)
	rec := p.solver.rec
	queued := rec.Gauge(metricPoolQueueDepth)
	busy := rec.Gauge(metricPoolBusy)
	done := ctx.Done()

	type job struct {
		index  int
		review ReviewInput
	}
	jobs := make(chan job)
	dones := make(chan CorpusResult, p.workers)

	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				queued.Add(-1)
				busy.Add(1)
				res := p.solver.LocalizeReview(app, j.review.Text, j.review.PublishedAt)
				busy.Add(-1)
				// The dones buffer can be full if the reorderer already
				// quit on cancellation; never block past ctx.
				select {
				case dones <- CorpusResult{Index: j.index, Result: res}:
				case <-done:
					return
				}
			}
		}()
	}

	// Feeder: assign input-order indices as reviews arrive, bailing out as
	// soon as ctx ends (both while waiting for input and while handing a
	// job to a busy worker set).
	go func() {
	feed:
		for i := 0; ; i++ {
			var (
				r  ReviewInput
				ok bool
			)
			select {
			case r, ok = <-reviews:
				if !ok {
					break feed
				}
			case <-done:
				break feed
			}
			rec.Counter(metricPoolJobs).Add(1)
			queued.Add(1)
			select {
			case jobs <- job{index: i, review: r}:
			case <-done:
				queued.Add(-1)
				break feed
			}
		}
		close(jobs)
		wg.Wait()
		close(dones)
	}()

	// Reorderer: emit completed results in input order. On cancellation it
	// stops emitting and returns; the workers cannot deadlock behind it
	// because their dones sends also select on ctx.
	go func() {
		defer close(out)
		pending := make(map[int]CorpusResult, 2*p.workers)
		next := 0
		for cr := range dones {
			pending[cr.Index] = cr
			for {
				ready, ok := pending[next]
				if !ok {
					break
				}
				select {
				case out <- ready:
				case <-done:
					return
				}
				delete(pending, next)
				next++
			}
		}
		p.solver.publishFrontendGauges()
	}()
	return out
}
