package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// drainInputs feeds the reviews into a channel until ctx ends, looping the
// corpus forever — an "infinite" producer for cancellation tests.
func feedForever(ctx context.Context, inputs []ReviewInput) <-chan ReviewInput {
	in := make(chan ReviewInput)
	go func() {
		defer close(in)
		for {
			for _, r := range inputs {
				select {
				case in <- r:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return in
}

// TestLocalizeCorpusContextMatchesLocalize is the identity property: with an
// uncancelled context the streamed results are byte-identical (mappings and
// rankings) to the batch Localize path, in input order.
func TestLocalizeCorpusContextMatchesLocalize(t *testing.T) {
	apps, inputs := poolInputs(40)
	app := apps[0].App
	pool := NewPool(4)
	want := pool.Localize(app, inputs)

	in := make(chan ReviewInput, len(inputs))
	for _, r := range inputs {
		in <- r
	}
	close(in)
	next := 0
	for cr := range pool.LocalizeCorpusContext(context.Background(), app, in) {
		if cr.Index != next {
			t.Fatalf("result %d arrived out of order (index %d)", next, cr.Index)
		}
		if !reflect.DeepEqual(cr.Result.Mappings, want[next].Mappings) ||
			!reflect.DeepEqual(cr.Result.Ranked, want[next].Ranked) {
			t.Fatalf("review %d: streamed result differs from batch result", next)
		}
		next++
	}
	if next != len(inputs) {
		t.Fatalf("stream emitted %d results, want %d", next, len(inputs))
	}
}

// TestLocalizeCorpusContextCancelLeaksNothing is the leak property:
// cancelling mid-stream — including with a consumer that stops reading —
// terminates the feeder, every worker, and the reorderer. The goroutine
// count returns to its pre-stream level.
func TestLocalizeCorpusContextCancelLeaksNothing(t *testing.T) {
	apps, inputs := poolInputs(8)
	app := apps[0].App
	pool := NewPool(4)
	// Warm the snapshot so the measured section is steady state.
	pool.Localize(app, inputs[:1])

	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		out := pool.LocalizeCorpusContext(ctx, app, feedForever(ctx, inputs))
		// Read a few results, then walk away without draining.
		for i := 0; i < 3; i++ {
			if _, ok := <-out; !ok {
				t.Fatalf("round %d: stream closed after %d results", round, i)
			}
		}
		cancel()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLocalizeCorpusContextCancelClosesOutput: after cancellation the output
// channel closes even if no consumer drains it first.
func TestLocalizeCorpusContextCancelClosesOutput(t *testing.T) {
	apps, inputs := poolInputs(8)
	app := apps[0].App
	pool := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	out := pool.LocalizeCorpusContext(ctx, app, feedForever(ctx, inputs))
	<-out
	cancel()
	timeout := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-timeout:
			t.Fatal("output channel never closed after cancellation")
		}
	}
}
