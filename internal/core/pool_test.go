package core

import (
	"runtime"
	"testing"

	"reviewsolver/internal/synth"
)

func poolInputs(n int) ([]*synth.AppData, []ReviewInput) {
	data := synth.GenerateSample(21)
	inputs := make([]ReviewInput, 0, n)
	for i, rv := range data.Reviews {
		if i >= n {
			break
		}
		inputs = append(inputs, ReviewInput{Text: rv.Text, PublishedAt: rv.PublishedAt})
	}
	return []*synth.AppData{data}, inputs
}

func TestPoolMatchesSequential(t *testing.T) {
	apps, inputs := poolInputs(60)
	app := apps[0].App

	seq := New()
	want := make([][]string, len(inputs))
	for i, in := range inputs {
		want[i] = seq.LocalizeReview(app, in.Text, in.PublishedAt).RankedClassNames()
	}

	pool := NewPool(4)
	got := pool.Localize(app, inputs)
	if len(got) != len(inputs) {
		t.Fatalf("results = %d, want %d", len(got), len(inputs))
	}
	for i, res := range got {
		if res == nil {
			t.Fatalf("nil result at %d", i)
		}
		names := res.RankedClassNames()
		if len(names) != len(want[i]) {
			t.Fatalf("input %d: pool %v vs sequential %v", i, names, want[i])
		}
		for k := range names {
			if names[k] != want[i][k] {
				t.Fatalf("input %d rank %d: pool %q vs sequential %q", i, k, names[k], want[i][k])
			}
		}
	}
}

func TestPoolEdgeCases(t *testing.T) {
	apps, _ := poolInputs(0)
	pool := NewPool(0) // zero value means all CPUs
	if want := runtime.NumCPU(); pool.Size() != want {
		t.Errorf("NewPool(0).Size() = %d, want runtime.NumCPU() = %d", pool.Size(), want)
	}
	if got := pool.Localize(apps[0].App, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	if neg := NewPool(-3); neg.Size() != 1 {
		t.Errorf("NewPool(-3).Size() = %d, want 1 (negative n is sequential)", neg.Size())
	}
	if pool.Snapshot() == nil {
		t.Error("pool has no snapshot")
	}
}

func TestPoolMoreWorkersThanJobs(t *testing.T) {
	apps, inputs := poolInputs(3)
	pool := NewPool(16)
	got := pool.Localize(apps[0].App, inputs)
	for i, res := range got {
		if res == nil {
			t.Fatalf("nil result at %d", i)
		}
	}
}
