package core

import (
	"reflect"
	"testing"

	"reviewsolver/internal/synth"
)

// TestQuantizedScanMatchesKernelAndLegacy is the quantized tier's
// full-pipeline property test: with the tier forced onto every matrix, the
// localization output must be byte-identical to both the float kernel and
// the retired per-struct cosine path, across seeds and inner parallelism.
func TestQuantizedScanMatchesKernelAndLegacy(t *testing.T) {
	for _, seed := range []int64{3, 5, 7, 9, 21} {
		data := synth.GenerateSample(seed)
		app := data.App
		reviews := data.Reviews
		if len(reviews) > 15 {
			reviews = reviews[:15]
		}
		for _, workers := range []int{1, 4} {
			kernel := New(WithParallelism(workers))
			legacy := New(WithLegacyCosine(), WithParallelism(workers))
			quant := New(WithQuantizedScan(), WithParallelism(workers))
			for i, rv := range reviews {
				want := kernel.LocalizeReview(app, rv.Text, rv.PublishedAt)
				lw := legacy.LocalizeReview(app, rv.Text, rv.PublishedAt)
				got := quant.LocalizeReview(app, rv.Text, rv.PublishedAt)
				if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
					t.Fatalf("seed %d workers %d review %d: quantized output differs from float kernel", seed, workers, i)
				}
				if !reflect.DeepEqual(got.Mappings, lw.Mappings) || !reflect.DeepEqual(got.Ranked, lw.Ranked) {
					t.Fatalf("seed %d workers %d review %d: quantized output differs from legacy cosine", seed, workers, i)
				}
			}
		}
	}
}

// TestQuantizedSnapshotColdWarm: a forced-quantized snapshot must encode the
// tier, reload it byte-identically (warm load adopts the persisted blocks),
// and serve the same localization output as the freshly built solver — and a
// snapshot encoded *without* the tier must still load under
// WithQuantizedScan by quantizing lazily (cold path).
func TestQuantizedSnapshotColdWarm(t *testing.T) {
	data := synth.GenerateSample(5)
	app := data.App
	reviews := data.Reviews
	if len(reviews) > 10 {
		reviews = reviews[:10]
	}

	want := make([]*Result, len(reviews))
	base := New()
	for i, rv := range reviews {
		want[i] = base.LocalizeReview(app, rv.Text, rv.PublishedAt)
	}

	check := func(t *testing.T, s *Solver, label string) {
		t.Helper()
		for i, rv := range reviews {
			got := s.LocalizeReview(app, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want[i].Mappings) || !reflect.DeepEqual(got.Ranked, want[i].Ranked) {
				t.Fatalf("%s review %d: output differs from float baseline", label, i)
			}
		}
	}

	// Warm: the tier is persisted in the image and adopted on load.
	qsn := NewSnapshot(WithQuantizedScan())
	img, err := EncodeSnapshot(qsn, app)
	if err != nil {
		t.Fatalf("EncodeSnapshot(quantized): %v", err)
	}
	loaded, lapp, err := LoadSnapshotBytes(img, WithQuantizedScan())
	if err != nil {
		t.Fatalf("LoadSnapshotBytes(quantized): %v", err)
	}
	if loaded.QuantBytes() <= 0 {
		t.Fatal("warm-loaded quantized snapshot reports no tier bytes")
	}
	check(t, NewWithSnapshot(loaded, WithQuantizedScan(), WithParallelism(4)), "warm quantized snapshot")

	// Re-encoding the loaded snapshot must reproduce the image bit for bit.
	reImg, err := EncodeSnapshot(loaded, lapp)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(reImg) != string(img) {
		t.Fatal("quantized snapshot save→load→save is not byte-identical")
	}

	// Cold: a float-only image loaded under WithQuantizedScan quantizes on
	// load and must serve identically.
	plainImg, err := EncodeSnapshot(NewSnapshot(), app)
	if err != nil {
		t.Fatalf("EncodeSnapshot(plain): %v", err)
	}
	if len(plainImg) >= len(img) {
		t.Fatalf("quantized image (%d bytes) not larger than plain image (%d bytes)", len(img), len(plainImg))
	}
	cold, _, err := LoadSnapshotBytes(plainImg, WithQuantizedScan())
	if err != nil {
		t.Fatalf("LoadSnapshotBytes(plain, quantized opts): %v", err)
	}
	if cold.QuantBytes() <= 0 {
		t.Fatal("cold load under WithQuantizedScan built no tier")
	}
	check(t, NewWithSnapshot(cold, WithQuantizedScan()), "cold quantized load")

	// A plain load of the quantized image must also work (the tier rides
	// along, scans stay identical).
	both, _, err := LoadSnapshotBytes(img)
	if err != nil {
		t.Fatalf("LoadSnapshotBytes(quantized image, plain opts): %v", err)
	}
	check(t, NewWithSnapshot(both), "plain load of quantized image")
}
