package core

import (
	"sort"

	"reviewsolver/internal/apg"
)

// RankedClass is one recommended class with its ranking signals (§4.3).
type RankedClass struct {
	// Class is the fully qualified class name.
	Class string
	// Importance counts the distinct (phrase, class) mappings.
	Importance int
	// Dependencies is the class's fan-out in the class dependency graph
	// (the tie-breaker).
	Dependencies int
	// Contexts lists the localizer context names that voted for the class.
	Contexts []string
	// Methods lists the specific methods recommended within the class.
	Methods []string
	// Changed marks classes touched between the review's release and its
	// predecessor; only set under change-aware ranking
	// (WithChangeAwareRank), where it is the leading sort key.
	Changed bool
}

// RankClasses implements §4.3: the importance of a class is the number of
// distinct phrases mapped to it; ties are broken by the class dependency
// fan-out (classes built on more classes rank first); the top n classes are
// recommended.
func RankClasses(mappings []Mapping, g *apg.Graph, n int) []RankedClass {
	return rankClasses(mappings, g, n, nil)
}

// rankClasses is RankClasses with an optional changed-class set: when
// non-nil, classes in the set order ahead of the rest (§4.1.6's
// localizeUpdate intuition — a function-error review against a fresh
// release most likely blames code the update touched), with the standard
// importance/dependency/name ordering applied within each group.
func rankClasses(mappings []Mapping, g *apg.Graph, n int, changed map[string]struct{}) []RankedClass {
	type acc struct {
		phrases  map[string]struct{}
		contexts map[string]struct{}
		methods  map[string]struct{}
	}
	byClass := make(map[string]*acc)
	for _, m := range mappings {
		a, ok := byClass[m.Class]
		if !ok {
			a = &acc{
				phrases:  make(map[string]struct{}),
				contexts: make(map[string]struct{}),
				methods:  make(map[string]struct{}),
			}
			byClass[m.Class] = a
		}
		a.phrases[m.Phrase] = struct{}{}
		a.contexts[m.Context.String()] = struct{}{}
		if m.Method != "" {
			a.methods[m.Method] = struct{}{}
		}
	}
	out := make([]RankedClass, 0, len(byClass))
	for cls, a := range byClass {
		rc := RankedClass{
			Class:      cls,
			Importance: len(a.phrases),
			Contexts:   sortedKeys(a.contexts),
			Methods:    sortedKeys(a.methods),
		}
		if g != nil {
			rc.Dependencies = g.ClassDependencyCount(cls)
		}
		if changed != nil {
			_, rc.Changed = changed[cls]
		}
		out = append(out, rc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Changed != out[j].Changed {
			return out[i].Changed
		}
		if out[i].Importance != out[j].Importance {
			return out[i].Importance > out[j].Importance
		}
		if out[i].Dependencies != out[j].Dependencies {
			return out[i].Dependencies > out[j].Dependencies
		}
		return out[i].Class < out[j].Class
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
