package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/synth"
)

// TestSolverNeverPanicsOnArbitraryText feeds fuzz-ish review text through
// the full pipeline: the solver must never panic and must always return a
// well-formed result.
func TestSolverNeverPanicsOnArbitraryText(t *testing.T) {
	s := New()
	app := paperApp()
	f := func(text string) bool {
		res := s.LocalizeReview(app, text, reviewTime())
		if res == nil {
			return false
		}
		if len(res.Ranked) > TopN {
			return false
		}
		for _, m := range res.Mappings {
			if m.Class == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolverOnAdversarialReviews exercises the pipeline with handpicked
// pathological inputs.
func TestSolverOnAdversarialReviews(t *testing.T) {
	s := New()
	app := paperApp()
	inputs := []string{
		"",
		" ",
		"!!!???...",
		"\"\"\"\"\"\"\"",
		"a",
		"𝕬𝖕𝖕 𝖈𝖗𝖆𝖘𝖍𝖊𝖘 😀😀😀",
		"crash crash crash crash crash crash crash crash crash crash",
		"\"unterminated quote",
		"the the the the the",
		"BUG BUG BUG!!!! FIX NOW",
	}
	for _, in := range inputs {
		res := s.LocalizeReview(app, in, reviewTime())
		if res == nil {
			t.Fatalf("nil result for %q", in)
		}
	}
}

// TestSolverEmptyApp checks degenerate app shapes.
func TestSolverEmptyApp(t *testing.T) {
	s := New()

	empty := &apk.App{Package: "com.empty", Name: "Empty"}
	res := s.LocalizeReview(empty, "it crashes", reviewTime())
	if res.Localized() {
		t.Error("app without releases produced mappings")
	}

	// A release with no classes, no layouts.
	b := apk.NewBuilder("com.bare", "Bare")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	bare := b.Build()
	res = s.LocalizeReview(bare, "cannot send sms, socket exception, \"error text\"", reviewTime())
	if res.Localized() {
		t.Errorf("bare app produced mappings: %+v", res.Mappings)
	}
}

// TestSolverDeterministicAcrossRuns localizes the same corpus twice with
// fresh solvers and requires identical outputs.
func TestSolverDeterministicAcrossRuns(t *testing.T) {
	data := synth.GenerateSample(11)
	run := func() []string {
		s := New()
		var out []string
		for i, rv := range data.Reviews {
			if i >= 40 {
				break
			}
			res := s.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
			out = append(out, res.RankedClassNames()...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestMappingsReferenceExistingClasses: every mapping's class must exist in
// the release the review was matched against.
func TestMappingsReferenceExistingClasses(t *testing.T) {
	s := New()
	data := synth.GenerateSample(5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		rv := data.Reviews[rng.Intn(len(data.Reviews))]
		res := s.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
		if res.Release == nil {
			continue
		}
		for _, m := range res.Mappings {
			if _, ok := res.Release.FindClass(m.Class); !ok {
				t.Errorf("mapping to non-existent class %q (context %s, review %q)",
					m.Class, m.Context, rv.Text)
			}
		}
	}
}

// TestRankImportanceMatchesMappings: a class's importance equals its number
// of distinct mapped phrases.
func TestRankImportanceMatchesMappings(t *testing.T) {
	s := New()
	app := paperApp()
	res := s.LocalizeReview(app,
		"i cannot send sms and the app crashed when i tried to find contact",
		reviewTime())
	phrasesByClass := make(map[string]map[string]struct{})
	for _, m := range res.Mappings {
		set, ok := phrasesByClass[m.Class]
		if !ok {
			set = make(map[string]struct{})
			phrasesByClass[m.Class] = set
		}
		set[m.Phrase] = struct{}{}
	}
	for _, rc := range res.Ranked {
		if rc.Importance != len(phrasesByClass[rc.Class]) {
			t.Errorf("class %s importance %d != distinct phrases %d",
				rc.Class, rc.Importance, len(phrasesByClass[rc.Class]))
		}
	}
}

// TestReviewBeforeFirstRelease: the solver must fall back to the earliest
// release rather than fail.
func TestReviewBeforeFirstRelease(t *testing.T) {
	s := New()
	app := paperApp()
	early := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	res := s.LocalizeReview(app, "i cannot send sms", early)
	if res.Release == nil {
		t.Fatal("no release selected for pre-release review")
	}
	if res.Release != app.Releases[0] {
		t.Error("expected earliest release fallback")
	}
}
