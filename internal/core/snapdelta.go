// Delta snapshot images: the .snap persistence of an incremental rebuild.
//
// A release bump changes a handful of classes, so consecutive full .snap
// images repeat almost every embedding row byte for byte. A delta image
// stores a new app version as a patch against an existing base image:
//
//	DELTA_META  the binding — base image checksum, package, and the base
//	            release index each new release patches (or -1 for new ones)
//	REL_DELTA   per patched release: its two row maps, each entry naming the
//	            bitwise-identical base matrix row to reuse (or -1 for fresh)
//	REL_M*/I*   the float blocks then carry ONLY the fresh rows
//
// META, the app IR, and the inventory sections (REL_META / REL_VECS) are
// written in full — they are small next to the float blocks — while the
// interner and catalog sections are omitted entirely: the loader borrows the
// base snapshot's catalog table and validates the vocabulary/catalog CRCs
// recorded in META. Releases absent from the base encode exactly like a full
// image, so a delta degrades gracefully to self-contained per release.
//
// Row identity is by VALUE, not build provenance: EncodeSnapshotDelta hashes
// every base row and reuses any bitwise-equal new row. Projections and
// residuals are pure functions of the row and the build-constant anchor
// basis, so a data-equal row implies equal sketch columns — which is what
// makes the encoder independent of HOW the new snapshot was built (full
// extraction or ApplyDelta produce the same bytes, keeping the format
// deterministic for CI's cmp gate).
//
// Loading copies reused rows out of the base into fresh heap arrays: the
// delta-loaded snapshot holds no references into the base IMAGE's float
// blocks, so the two images have independent lifetimes. Only the catalog
// table is shared by pointer with the base snapshot (see
// Snapshot.borrowedCatalog); MaterializedBytes reports the copied footprint
// for registry accounting.
package core

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/wordvec"
)

// ErrSnapshotDelta reports a delta image handed to the plain loader. Delta
// images are not self-contained — load them with LoadSnapshotDelta against
// the base image they were compiled from (DeltaInfo names it).
var ErrSnapshotDelta = errors.New("core: image is a delta snapshot; load it against its base with LoadSnapshotDelta")

// ErrDeltaBaseMismatch reports a delta image loaded against the wrong base:
// different image checksum, package, or release count than the delta was
// compiled against.
var ErrDeltaBaseMismatch = errors.New("core: delta snapshot does not match the provided base")

// errNotDelta reports a full image handed to the delta loader.
var errNotDelta = errors.New("core: image is not a delta snapshot; use LoadSnapshot")

// SnapDeltaInfo describes a delta image's binding to its base, read without
// loading either image. Registries use it to locate the resident base before
// committing to a load.
type SnapDeltaInfo struct {
	// Package is the app package both images describe.
	Package string
	// BaseCRC is the checksum (snapfile.Checksum) of the exact base image
	// the delta was compiled against.
	BaseCRC uint32
	// BaseReleases / Releases are the release counts of base and delta.
	BaseReleases int
	Releases     int
	// PatchedReleases counts the releases encoded as patches; the remaining
	// Releases - PatchedReleases are self-contained.
	PatchedReleases int
}

// DeltaInfo probes an image for the delta binding. The second return is
// false when the image is not a delta snapshot (or not a snapfile at all).
func DeltaInfo(data []byte) (*SnapDeltaInfo, bool) {
	r, err := snapfile.Open(data)
	if err != nil {
		return nil, false
	}
	return deltaInfo(r)
}

func deltaInfo(r *snapfile.Reader) (*SnapDeltaInfo, bool) {
	payload, ok := r.Section(secDeltaMeta)
	if !ok {
		return nil, false
	}
	d := snapfile.NewDec(payload)
	di := &SnapDeltaInfo{}
	di.BaseCRC = d.U32()
	di.Package = d.Str()
	di.BaseReleases = int(d.U32())
	n := d.Count(4)
	di.Releases = n
	for i := 0; i < n && d.Err() == nil; i++ {
		if d.I32() >= 0 {
			di.PatchedReleases++
		}
	}
	if d.Done() != nil {
		return nil, false
	}
	return di, true
}

// EncodeSnapshotDelta serializes a snapshot as a delta against baseImg (a
// full .snap image of an earlier version of the same app). Releases not yet
// extracted are precomputed first. The base is validated exactly like a
// load, so an incompatible or corrupt base fails here, not at load time.
func EncodeSnapshotDelta(sn *Snapshot, app *apk.App, baseImg []byte) ([]byte, error) {
	base, baseApp, err := LoadSnapshotBytes(baseImg)
	if err != nil {
		return nil, fmt.Errorf("delta base: %w", err)
	}
	if baseApp.Package != app.Package {
		return nil, fmt.Errorf("%w: base is app %q, encoding app %q", ErrDeltaBaseMismatch, baseApp.Package, app.Package)
	}
	sn.PrecomputeApp(app)
	s := sn.solver

	w := snapfile.NewWriter()

	meta := snapfile.NewEnc(128)
	meta.Str(app.Package)
	meta.U32(uint32(len(app.Releases)))
	meta.U32(uint32(wordvec.Dim))
	meta.U32(uint32(wordvec.BasisSize()))
	meta.F64(wordvec.DefaultThreshold)
	meta.U32(uint32(len(s.catalog.APIs())))
	meta.U32(cachedCatalogFingerprint(s.catalog))
	meta.U32(internerCRC())
	w.Add(secMeta, meta.Bytes())

	ir := snapfile.NewEnc(1 << 17)
	app.AppendBinary(ir)
	w.Add(secAppIR, ir.Bytes())

	// Base releases are matched by version string; a version absent from the
	// base (the common case: exactly the new release) encodes in full.
	// Duplicate base versions resolve to the first occurrence — releases are
	// validated version-ordered, so duplicates do not occur in valid apps,
	// and first-wins keeps the encoding deterministic regardless.
	baseIdxOf := make(map[string]int, len(baseApp.Releases))
	for i, r := range baseApp.Releases {
		if _, ok := baseIdxOf[r.Version]; !ok {
			baseIdxOf[r.Version] = i
		}
	}
	dm := snapfile.NewEnc(64 + 4*len(app.Releases))
	dm.U32(snapfile.Checksum(baseImg))
	dm.Str(app.Package)
	dm.U32(uint32(len(baseApp.Releases)))
	dm.U32(uint32(len(app.Releases)))
	baseIdx := make([]int, len(app.Releases))
	for ri, r := range app.Releases {
		bi, ok := baseIdxOf[r.Version]
		if !ok {
			bi = -1
		}
		baseIdx[ri] = bi
		dm.I32(int32(bi))
	}
	w.Add(secDeltaMeta, dm.Bytes())

	for ri, r := range app.Releases {
		info := sn.StaticFor(r)
		var err error
		if bi := baseIdx[ri]; bi >= 0 {
			err = encodeReleaseDelta(w, ri, bi, info, base.StaticFor(baseApp.Releases[bi]))
		} else {
			err = encodeRelease(w, ri, info)
		}
		if err != nil {
			return nil, fmt.Errorf("release %s: %w", r.Version, err)
		}
	}
	return w.Bytes(), nil
}

// SaveSnapshotDelta encodes sn as a delta against the image at basePath and
// writes it to path.
func SaveSnapshotDelta(sn *Snapshot, app *apk.App, basePath, path string) error {
	baseImg, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	data, err := EncodeSnapshotDelta(sn, app, baseImg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// encodeReleaseDelta writes one release as a patch against base release bi:
// full inventory sections, row maps in REL_DELTA, and float blocks holding
// only the rows the base cannot supply. The quantized tier, when present, is
// written in full — its codes are an order of magnitude smaller than the
// float rows, and a self-contained tier keeps the loader trivial.
func encodeReleaseDelta(w *snapfile.Writer, ri, bi int, info, baseInfo *StaticInfo) error {
	if err := encodeReleaseMeta(w, ri, info); err != nil {
		return err
	}
	mMap := valueRowMap(info.methodMatrix, baseInfo.methodMatrix)
	iMap := valueRowMap(info.invisibleMatrix, baseInfo.invisibleMatrix)

	d := snapfile.NewEnc(12 + 4*(len(mMap)+len(iMap)))
	d.U32(uint32(bi))
	d.U32(uint32(len(mMap)))
	for _, m := range mMap {
		d.I32(m)
	}
	d.U32(uint32(len(iMap)))
	for _, m := range iMap {
		d.I32(m)
	}
	w.Add(relSection(ri, relDelta), d.Bytes())

	writeFreshRows(w, ri, relMData, relMProj, relMRes, info.methodMatrix, mMap)
	writeFreshRows(w, ri, relIData, relIProj, relIRes, info.invisibleMatrix, iMap)
	encodeQuant(w, relSection(ri, relMQF), relSection(ri, relMQB), info.methodMatrix)
	encodeQuant(w, relSection(ri, relIQF), relSection(ri, relIQB), info.invisibleMatrix)
	return nil
}

// valueRowMap maps each row of m to a bitwise-identical row of base, or -1.
// Identity is by row value, not build provenance: projections and residuals
// are pure functions of the row and the build-constant anchor basis, so a
// data-equal row may reuse the base row's entire column set. Duplicate base
// rows resolve to the first occurrence, keeping the map deterministic.
func valueRowMap(m, base *wordvec.Matrix) []int32 {
	idx := make(map[wordvec.Vector]int32, base.Rows())
	for r := 0; r < base.Rows(); r++ {
		var v wordvec.Vector
		copy(v[:], base.Row(r))
		if _, ok := idx[v]; !ok {
			idx[v] = int32(r)
		}
	}
	out := make([]int32, m.Rows())
	for r := range out {
		var v wordvec.Vector
		copy(v[:], m.Row(r))
		if bi, ok := idx[v]; ok {
			out[r] = bi
		} else {
			out[r] = -1
		}
	}
	return out
}

// writeFreshRows emits a matrix's three float sections restricted to the
// rows the row map could not source from the base, in row order.
func writeFreshRows(w *snapfile.Writer, ri, dataID, projID, resID int, m *wordvec.Matrix, rowMap []int32) {
	fresh := 0
	for _, bi := range rowMap {
		if bi < 0 {
			fresh++
		}
	}
	k := wordvec.BasisSize()
	data := make([]float64, 0, fresh*wordvec.Dim)
	proj := make([]float64, 0, fresh*k)
	res := make([]float64, 0, fresh)
	mProj, mRes := m.Sketch()
	for r, bi := range rowMap {
		if bi >= 0 {
			continue
		}
		data = append(data, m.Row(r)...)
		proj = append(proj, mProj[r*k:(r+1)*k]...)
		res = append(res, mRes[r])
	}
	w.Add(relSection(ri, dataID), snapfile.Float64Bytes(data))
	w.Add(relSection(ri, projID), snapfile.Float64Bytes(proj))
	w.Add(relSection(ri, resID), snapfile.Float64Bytes(res))
}

// LoadSnapshotDelta reads a delta image and its base image from disk and
// reconstructs the new version's snapshot.
func LoadSnapshotDelta(path, basePath string, opts ...Option) (*Snapshot, *apk.App, error) {
	deltaImg, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	baseImg, err := os.ReadFile(basePath)
	if err != nil {
		return nil, nil, err
	}
	return LoadSnapshotDeltaImages(deltaImg, baseImg, opts...)
}

// LoadSnapshotDeltaImages loads a delta image against an in-memory base
// image, loading the base first. When the base snapshot is already resident
// (a serving registry hot-swapping a version bump), use
// LoadSnapshotDeltaBytes directly and skip the base load.
func LoadSnapshotDeltaImages(deltaImg, baseImg []byte, opts ...Option) (*Snapshot, *apk.App, error) {
	base, baseApp, err := LoadSnapshotBytes(baseImg, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("delta base: %w", err)
	}
	return LoadSnapshotDeltaBytes(deltaImg, base, baseApp, snapfile.Checksum(baseImg), opts...)
}

// LoadSnapshotDeltaBytes reconstructs a snapshot from a delta image and its
// already-loaded base. baseCRC must be the checksum of the exact image base
// was loaded from — the binding recorded at encode time is verified against
// it, so a delta can never silently patch against the wrong bytes. Reused
// rows are copied out of the base: the returned snapshot does not reference
// the base image's float blocks (the catalog table is shared with the base
// SNAPSHOT by pointer — see Snapshot.MaterializedBytes for the accounting
// consequences). The delta image itself is aliased like LoadSnapshotBytes.
func LoadSnapshotDeltaBytes(data []byte, base *Snapshot, baseApp *apk.App, baseCRC uint32, opts ...Option) (*Snapshot, *apk.App, error) {
	r, err := snapfile.Open(data)
	if err != nil {
		return nil, nil, err
	}
	di, ok := deltaInfo(r)
	if !ok {
		return nil, nil, errNotDelta
	}
	if di.BaseCRC != baseCRC {
		return nil, nil, fmt.Errorf("%w: delta compiled against base %08x, have %08x", ErrDeltaBaseMismatch, di.BaseCRC, baseCRC)
	}
	if di.Package != baseApp.Package {
		return nil, nil, fmt.Errorf("%w: delta is app %q, base is %q", ErrDeltaBaseMismatch, di.Package, baseApp.Package)
	}
	if di.BaseReleases != len(baseApp.Releases) {
		return nil, nil, fmt.Errorf("%w: delta expects %d base releases, base has %d", ErrDeltaBaseMismatch, di.BaseReleases, len(baseApp.Releases))
	}

	s := *loadTemplate()
	for _, opt := range opts {
		opt(&s)
	}

	meta, err := r.MustSection(secMeta)
	if err != nil {
		return nil, nil, err
	}
	md := snapfile.NewDec(meta)
	md.Str() // app package, bound via DELTA_META
	releaseCount := int(md.U32())
	dim := md.U32()
	basis := md.U32()
	threshold := md.F64()
	catCount := md.U32()
	catCRC := md.U32()
	internCRC := md.U32()
	if err := md.Done(); err != nil {
		return nil, nil, err
	}
	if int(dim) != wordvec.Dim || int(basis) != wordvec.BasisSize() || threshold != wordvec.DefaultThreshold {
		return nil, nil, fmt.Errorf("%w: dim %d / basis %d / threshold %v, build has %d / %d / %v",
			ErrSnapshotIncompatible, dim, basis, threshold, wordvec.Dim, wordvec.BasisSize(), wordvec.DefaultThreshold)
	}
	if int(catCount) != len(s.catalog.APIs()) || catCRC != cachedCatalogFingerprint(s.catalog) {
		return nil, nil, fmt.Errorf("%w: catalog fingerprint mismatch", ErrSnapshotIncompatible)
	}
	// Delta images carry no interner section; the CRC recorded in META is
	// compared against the process vocabulary directly. (The base passed the
	// same check with its own payload when it was loaded.)
	if internCRC != internerCRC() {
		return nil, nil, fmt.Errorf("%w: vocabulary fingerprint mismatch", ErrSnapshotIncompatible)
	}

	irPayload, err := r.MustSection(secAppIR)
	if err != nil {
		return nil, nil, err
	}
	app, err := apk.DecodeBinary(snapfile.NewDecZeroCopy(irPayload))
	if err != nil {
		return nil, nil, err
	}
	if len(app.Releases) != releaseCount || releaseCount != di.Releases {
		return nil, nil, fmt.Errorf("%w: META declares %d releases, IR has %d, DELTA_META %d",
			snapfile.ErrCorrupt, releaseCount, len(app.Releases), di.Releases)
	}
	if app.Package != baseApp.Package {
		return nil, nil, fmt.Errorf("%w: IR is app %q, base is %q", ErrDeltaBaseMismatch, app.Package, baseApp.Package)
	}

	table := base.catalogVecs

	sn := &Snapshot{
		catalogVecs:     table,
		borrowedCatalog: true,
		static:          make(map[*apk.Release]*staticEntry, len(app.Releases)),
	}
	infos := make([]*StaticInfo, len(app.Releases))
	heapBytes := make([]int64, len(app.Releases))
	errs := make([]error, len(app.Releases))
	if runtime.GOMAXPROCS(0) > 1 && len(app.Releases) > 1 {
		var wg sync.WaitGroup
		for ri, release := range app.Releases {
			wg.Add(1)
			go func(ri int, release *apk.Release) {
				defer wg.Done()
				infos[ri], heapBytes[ri], errs[ri] = loadDeltaRelease(r, ri, release, table, base, baseApp, s.forceQuant)
			}(ri, release)
		}
		wg.Wait()
	} else {
		for ri, release := range app.Releases {
			infos[ri], heapBytes[ri], errs[ri] = loadDeltaRelease(r, ri, release, table, base, baseApp, s.forceQuant)
		}
	}
	for ri, release := range app.Releases {
		if errs[ri] != nil {
			return nil, nil, fmt.Errorf("release %s: %w", release.Version, errs[ri])
		}
		e := &staticEntry{info: infos[ri]}
		e.once.Do(func() {}) // consume the once: the entry is prefilled
		sn.static[release] = e
		sn.materializedBytes += heapBytes[ri]
	}

	s.staticCache = nil
	s.catalogVecCache = nil
	s.snap = sn
	sn.solver = &s
	return sn, app, nil
}

// loadDeltaRelease reconstructs one release of a delta image: patched
// releases materialize their matrices from base rows plus the image's fresh
// rows; self-contained releases (no REL_DELTA section) go through the
// standard zero-copy path.
func loadDeltaRelease(r *snapfile.Reader, ri int, release *apk.Release, table *catalogTable, base *Snapshot, baseApp *apk.App, force bool) (*StaticInfo, int64, error) {
	dPayload, ok := r.Section(relSection(ri, relDelta))
	if !ok {
		info, err := loadRelease(r, ri, release, table, force)
		return info, 0, err
	}
	d := snapfile.NewDecZeroCopy(dPayload)
	bi := int(d.U32())
	mMap := readRowMap(d)
	iMap := readRowMap(d)
	if err := d.Done(); err != nil {
		return nil, 0, err
	}
	if bi < 0 || bi >= len(baseApp.Releases) {
		return nil, 0, fmt.Errorf("%w: delta base release index %d of %d", snapfile.ErrCorrupt, bi, len(baseApp.Releases))
	}
	baseInfo := base.StaticFor(baseApp.Releases[bi])

	info, err := loadReleaseMeta(r, ri, release, table)
	if err != nil {
		return nil, 0, err
	}
	var bytes int64
	if info.methodMatrix, err = materializeMatrix(r, ri, relMData, relMProj, relMRes, baseInfo.methodMatrix, mMap, &bytes); err != nil {
		return nil, 0, fmt.Errorf("method matrix: %w", err)
	}
	if info.invisibleMatrix, err = materializeMatrix(r, ri, relIData, relIProj, relIRes, baseInfo.invisibleMatrix, iMap, &bytes); err != nil {
		return nil, 0, fmt.Errorf("invisible matrix: %w", err)
	}
	if err := attachReleaseMatrices(r, ri, info, force); err != nil {
		return nil, 0, err
	}
	return info, bytes, nil
}

func readRowMap(d *snapfile.Dec) []int32 {
	n := d.Count(4)
	out := make([]int32, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out[i] = d.I32()
	}
	return out
}

// materializeMatrix rebuilds one full scan matrix from base rows plus the
// image's fresh-row sections, onto fresh heap arrays (counted in heapBytes).
func materializeMatrix(r *snapfile.Reader, ri, dataID, projID, resID int, baseM *wordvec.Matrix, rowMap []int32, heapBytes *int64) (*wordvec.Matrix, error) {
	fData, fProj, fRes, err := matrixParts(r, relSection(ri, dataID), relSection(ri, projID), relSection(ri, resID))
	if err != nil {
		return nil, err
	}
	k := wordvec.BasisSize()
	fresh := 0
	for _, bi := range rowMap {
		if bi < 0 {
			fresh++
		} else if int(bi) >= baseM.Rows() {
			return nil, fmt.Errorf("%w: delta row map references base row %d of %d", snapfile.ErrCorrupt, bi, baseM.Rows())
		}
	}
	if len(fData) != fresh*wordvec.Dim || len(fProj) != fresh*k || len(fRes) != fresh {
		return nil, fmt.Errorf("%w: fresh blocks hold %d/%d/%d floats for %d fresh rows",
			snapfile.ErrCorrupt, len(fData), len(fProj), len(fRes), fresh)
	}
	rows := len(rowMap)
	data := make([]float64, rows*wordvec.Dim)
	proj := make([]float64, rows*k)
	res := make([]float64, rows)
	bProj, bRes := baseM.Sketch()
	fi := 0
	for ri, bi := range rowMap {
		if bi >= 0 {
			b := int(bi)
			copy(data[ri*wordvec.Dim:(ri+1)*wordvec.Dim], baseM.Row(b))
			copy(proj[ri*k:(ri+1)*k], bProj[b*k:(b+1)*k])
			res[ri] = bRes[b]
		} else {
			copy(data[ri*wordvec.Dim:(ri+1)*wordvec.Dim], fData[fi*wordvec.Dim:(fi+1)*wordvec.Dim])
			copy(proj[ri*k:(ri+1)*k], fProj[fi*k:(fi+1)*k])
			res[ri] = fRes[fi]
			fi++
		}
	}
	*heapBytes += int64(8 * (len(data) + len(proj) + len(res)))
	m, err := wordvec.MatrixFromParts(data, proj, res)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapfile.ErrCorrupt, err)
	}
	return m, nil
}
