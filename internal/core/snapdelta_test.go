package core

import (
	"errors"
	"reflect"
	"testing"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// deltaFixture builds the canonical version-bump scenario: a base image for
// all but the last release, and the full app including it.
func deltaFixture(t *testing.T, seed int64) (app, baseApp *apk.App, baseImg []byte) {
	t.Helper()
	data := synth.GenerateSample(seed)
	app = data.App
	if len(app.Releases) < 2 {
		t.Skip("sample app has a single release")
	}
	baseApp = &apk.App{
		Package:  app.Package,
		Name:     app.Name,
		Releases: app.Releases[:len(app.Releases)-1],
	}
	baseImg, err := EncodeSnapshot(NewSnapshot(), baseApp)
	if err != nil {
		t.Fatalf("encode base: %v", err)
	}
	return app, baseApp, baseImg
}

// TestSnapshotDeltaRoundTrip: a delta image loaded against its base must
// localize byte-identically to the full image of the same app, while being
// substantially smaller.
func TestSnapshotDeltaRoundTrip(t *testing.T) {
	for _, seed := range []int64{3, 5} {
		data := synth.GenerateSample(seed)
		app, _, baseImg := deltaFixture(t, seed)

		deltaImg, err := EncodeSnapshotDelta(NewSnapshot(), app, baseImg)
		if err != nil {
			t.Fatalf("encode delta: %v", err)
		}
		fullImg, err := EncodeSnapshot(NewSnapshot(), app)
		if err != nil {
			t.Fatalf("encode full: %v", err)
		}
		if len(deltaImg)*2 >= len(fullImg) {
			t.Errorf("seed %d: delta image %d bytes, full %d — expected well under half",
				seed, len(deltaImg), len(fullImg))
		}

		di, ok := DeltaInfo(deltaImg)
		if !ok {
			t.Fatal("DeltaInfo did not recognize the delta image")
		}
		if di.Package != app.Package || di.BaseCRC != snapfile.Checksum(baseImg) {
			t.Fatalf("delta info binding wrong: %+v", di)
		}
		if di.PatchedReleases != len(app.Releases)-1 || di.Releases != len(app.Releases) {
			t.Fatalf("delta info counts wrong: %+v", di)
		}
		if _, ok := DeltaInfo(fullImg); ok {
			t.Fatal("DeltaInfo claimed a full image is a delta")
		}

		dsn, dApp, err := LoadSnapshotDeltaImages(deltaImg, baseImg)
		if err != nil {
			t.Fatalf("load delta: %v", err)
		}
		fsn, fApp, err := LoadSnapshotBytes(fullImg)
		if err != nil {
			t.Fatalf("load full: %v", err)
		}
		if dsn.MaterializedBytes() == 0 {
			t.Error("delta load reported no materialized bytes")
		}
		ds := NewWithSnapshot(dsn)
		fs := NewWithSnapshot(fsn)
		reviews := data.Reviews
		if len(reviews) > 10 {
			reviews = reviews[:10]
		}
		for i, rv := range reviews {
			want := fs.LocalizeReview(fApp, rv.Text, rv.PublishedAt)
			got := ds.LocalizeReview(dApp, rv.Text, rv.PublishedAt)
			if !reflect.DeepEqual(got.Mappings, want.Mappings) || !reflect.DeepEqual(got.Ranked, want.Ranked) {
				t.Fatalf("seed %d review %d: delta-loaded output differs from full image", seed, i)
			}
			_, wantTr := fs.LocalizeReviewTraced(fApp, rv.Text, rv.PublishedAt)
			_, gotTr := ds.LocalizeReviewTraced(dApp, rv.Text, rv.PublishedAt)
			wj, err1 := wantTr.JSON()
			gj, err2 := gotTr.JSON()
			if err1 != nil || err2 != nil {
				t.Fatalf("trace JSON: %v / %v", err1, err2)
			}
			if string(wj) != string(gj) {
				t.Fatalf("seed %d review %d: delta-loaded trace differs from full image", seed, i)
			}
		}
	}
}

// TestSnapshotDeltaDeterministic: encoding the same snapshot against the
// same base twice produces identical bytes, and the encode is independent of
// whether the snapshot was built from scratch or via PrecomputeDelta.
func TestSnapshotDeltaDeterministic(t *testing.T) {
	app, _, baseImg := deltaFixture(t, 7)
	a, err := EncodeSnapshotDelta(NewSnapshot(), app, baseImg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSnapshotDelta(NewSnapshot(), app, baseImg)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two delta encodes of the same app differ")
	}
	inc := NewSnapshot()
	inc.PrecomputeDelta(app)
	c, err := EncodeSnapshotDelta(inc, app, baseImg)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatal("delta encode of an incrementally built snapshot differs from a full build's")
	}
}

// TestSnapshotDeltaQuant: a forced quantized tier survives the delta format.
func TestSnapshotDeltaQuant(t *testing.T) {
	data := synth.GenerateSample(3)
	app := data.App
	if len(app.Releases) < 2 {
		t.Skip("sample app has a single release")
	}
	baseApp := &apk.App{Package: app.Package, Name: app.Name, Releases: app.Releases[:len(app.Releases)-1]}
	baseImg, err := EncodeSnapshot(NewSnapshot(WithQuantizedScan()), baseApp)
	if err != nil {
		t.Fatal(err)
	}
	deltaImg, err := EncodeSnapshotDelta(NewSnapshot(WithQuantizedScan()), app, baseImg)
	if err != nil {
		t.Fatal(err)
	}
	dsn, dApp, err := LoadSnapshotDeltaImages(deltaImg, baseImg, WithQuantizedScan())
	if err != nil {
		t.Fatal(err)
	}
	want := NewSnapshot(WithQuantizedScan())
	want.PrecomputeApp(app)
	ds := NewWithSnapshot(dsn)
	ws := NewWithSnapshot(want)
	for i, rv := range data.Reviews {
		got := ds.LocalizeReview(dApp, rv.Text, rv.PublishedAt)
		exp := ws.LocalizeReview(app, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, exp.Mappings) || !reflect.DeepEqual(got.Ranked, exp.Ranked) {
			t.Fatalf("review %d: quantized delta load differs from in-memory build", i)
		}
	}
}

// TestSnapshotDeltaRejections pins the typed error surface: plain loader on
// a delta image, delta loader on a full image, and every base mismatch.
func TestSnapshotDeltaRejections(t *testing.T) {
	app, baseApp, baseImg := deltaFixture(t, 3)
	deltaImg, err := EncodeSnapshotDelta(NewSnapshot(), app, baseImg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshotBytes(deltaImg); !errors.Is(err, ErrSnapshotDelta) {
		t.Fatalf("plain load of a delta image: got %v, want ErrSnapshotDelta", err)
	}
	base, bApp, err := LoadSnapshotBytes(baseImg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshotDeltaBytes(baseImg, base, bApp, snapfile.Checksum(baseImg)); err == nil {
		t.Fatal("delta load of a full image succeeded")
	}
	// Wrong base bytes: the recorded checksum must not match.
	if _, _, err := LoadSnapshotDeltaBytes(deltaImg, base, bApp, snapfile.Checksum(deltaImg)); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Fatalf("wrong base CRC: got %v, want ErrDeltaBaseMismatch", err)
	}
	// Wrong app: encode against a base of a different package.
	other := &apk.App{Package: app.Package + ".other", Name: app.Name, Releases: baseApp.Releases}
	if _, err := EncodeSnapshotDelta(NewSnapshot(), other, baseImg); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Fatalf("cross-app delta encode: got %v, want ErrDeltaBaseMismatch", err)
	}
}
