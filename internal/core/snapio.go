// Snapshot serialization: the encode half of the .snap save/load path.
//
// A .snap file is a snapfile container holding everything a serving process
// needs to answer queries for one app without re-running the §3.3 static
// extraction or re-embedding the framework catalog:
//
//	META      fingerprints (format constants, catalog and interner CRCs)
//	APP_IR    the app IR in the compact apk binary codec
//	INTERNER  the textproc.Interner symbol table (words + flags)
//	CAT_*     the full-catalog phrase table: per-entry metadata plus the
//	          flattened scan matrix with its prescreen sketch
//	per release r (sections relSecBase + r*relSecStride + …):
//	  REL_META  the extracted inventories (APIs, URIs, intents, messages,
//	            method phrases, GUIs) as offset-indexed string records
//	  REL_VECS  every loose phrase vector, one contiguous float block
//	  REL_M*    the method-phrase matrix (data / sketch projections / residuals)
//	  REL_I*    the invisible-label matrix (same three blocks)
//
// Float blocks are written as raw little-endian float64 rows, 8-byte aligned
// by the container, so the loader reinterprets them in place (zero copy).
// Cheap derivations (the call graph, exception sites, permissions, the
// invisible-row index) are intentionally NOT serialized: apg.Build is two
// orders of magnitude cheaper than the embedding work, and re-deriving keeps
// the file free of redundant state that could disagree with itself.
//
// Everything is emitted in deterministic order — slices in extraction order,
// releases in app order, no timestamps — so the same IR always produces the
// same bytes. CI compiles the seed app twice and compares with cmp(1).
package core

import (
	"fmt"
	"os"
	"sync"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/sdk"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/wordvec"
)

// Section IDs of the snapshot container.
const (
	secMeta     = 1
	secAppIR    = 2
	secInterner = 3
	secCatMeta  = 4
	secCatData  = 5
	secCatProj  = 6
	secCatRes   = 7
	secCatPerm  = 8

	// Quantized-tier sections (optional; absent in snapshots written before
	// the tier existed or when the matrix never built one — the loader then
	// quantizes lazily). QF is one float block (scales ‖ row errors ‖
	// cluster centroids ‖ cluster radii), QB the integer codes with their
	// offsets and cluster ids.
	secCatQF = 9
	secCatQB = 10

	// Per-release sections live at relSecBase + releaseIndex*relSecStride
	// plus one of the rel* offsets.
	relSecBase   = 0x100
	relSecStride = 0x10
	relMeta      = 0
	relVecs      = 1
	relMData     = 2
	relMProj     = 3
	relMRes      = 4
	relIData     = 5
	relIProj     = 6
	relIRes      = 7
	relMQF       = 8
	relMQB       = 9
	relIQF       = 10
	relIQB       = 11

	// Delta images (see snapdelta.go): secDeltaMeta marks the container as
	// a delta against a base image and records the binding; a release's
	// relDelta section holds its row maps, with the relM*/relI* float
	// sections then carrying only the rows the base does not supply.
	secDeltaMeta = 11
	relDelta     = 12
)

// relSection returns the section ID of one per-release block.
func relSection(release, which int) uint32 {
	return uint32(relSecBase + release*relSecStride + which)
}

// internerPayload encodes the process interner's symbol table once; its
// checksum doubles as the vocabulary fingerprint in META.
var (
	internerPayloadOnce sync.Once
	internerPayloadVal  []byte
)

func internerPayload() []byte {
	internerPayloadOnce.Do(func() {
		words, flags := defaultInterner().Export()
		e := snapfile.NewEnc(1 << 20)
		e.U32(uint32(len(words)))
		for i := range words {
			e.Str(words[i])
			e.U16(flags[i])
		}
		internerPayloadVal = e.Bytes()
	})
	return internerPayloadVal
}

// internerCRC is the process vocabulary fingerprint — the checksum of
// internerPayload, computed once so loads compare CRCs instead of rehashing
// the symbol table.
var (
	internerCRCOnce sync.Once
	internerCRCVal  uint32
)

func internerCRC() uint32 {
	internerCRCOnce.Do(func() { internerCRCVal = snapfile.Checksum(internerPayload()) })
	return internerCRCVal
}

// catalogFingerprint checksums the identity-bearing fields of every catalog
// API in order. A snapshot written against a different catalog (count or
// content) is rejected at load.
func catalogFingerprint(c *sdk.Catalog) uint32 {
	e := snapfile.NewEnc(1 << 15)
	for _, api := range c.APIs() {
		e.Str(api.Signature())
		e.Str(api.Description)
		e.Str(api.Permission)
		e.StrSlice(api.Exceptions)
	}
	return snapfile.Checksum(e.Bytes())
}

// cachedCatalogFingerprint memoizes catalogFingerprint for the last catalog
// seen. The catalog is a process-wide constant in practice, so both encode
// and every load hit the cache after the first call.
var catCRCCache struct {
	sync.Mutex
	c   *sdk.Catalog
	crc uint32
}

func cachedCatalogFingerprint(c *sdk.Catalog) uint32 {
	catCRCCache.Lock()
	defer catCRCCache.Unlock()
	if catCRCCache.c != c {
		catCRCCache.crc = catalogFingerprint(c)
		catCRCCache.c = c
	}
	return catCRCCache.crc
}

// EncodeSnapshot serializes a snapshot plus the app IR it was computed from
// into a .snap image. Releases not yet extracted are precomputed first, so
// callers can pass a fresh NewSnapshot.
func EncodeSnapshot(sn *Snapshot, app *apk.App) ([]byte, error) {
	sn.PrecomputeApp(app)
	s := sn.solver

	w := snapfile.NewWriter()

	meta := snapfile.NewEnc(128)
	meta.Str(app.Package)
	meta.U32(uint32(len(app.Releases)))
	meta.U32(uint32(wordvec.Dim))
	meta.U32(uint32(wordvec.BasisSize()))
	meta.F64(wordvec.DefaultThreshold)
	meta.U32(uint32(len(s.catalog.APIs())))
	meta.U32(cachedCatalogFingerprint(s.catalog))
	meta.U32(internerCRC())
	w.Add(secMeta, meta.Bytes())

	ir := snapfile.NewEnc(1 << 17)
	app.AppendBinary(ir)
	w.Add(secAppIR, ir.Bytes())

	w.Add(secInterner, internerPayload())

	if err := encodeCatalog(w, sn.catalogVecs); err != nil {
		return nil, err
	}
	for ri, r := range app.Releases {
		if err := encodeRelease(w, ri, sn.StaticFor(r)); err != nil {
			return nil, fmt.Errorf("release %s: %w", r.Version, err)
		}
	}
	return w.Bytes(), nil
}

// SaveSnapshot encodes the snapshot and writes it to path.
func SaveSnapshot(sn *Snapshot, app *apk.App, path string) error {
	data, err := EncodeSnapshot(sn, app)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func encodeCatalog(w *snapfile.Writer, t *catalogTable) error {
	meta := snapfile.NewEnc(1 << 14)
	meta.U32(uint32(len(t.entries)))
	nouns := 0
	for i := range t.entries {
		nouns += len(t.entries[i].permNouns)
	}
	meta.U32(uint32(nouns))
	perm := snapfile.NewEnc(1 << 14)
	for i := range t.entries {
		e := &t.entries[i]
		meta.U32(uint32(t.rowStart[i+1] - t.rowStart[i]))
		if len(e.vecs) != int(t.rowStart[i+1]-t.rowStart[i]) {
			return fmt.Errorf("catalog entry %d: %d vecs vs %d rows", i, len(e.vecs), t.rowStart[i+1]-t.rowStart[i])
		}
		meta.StrSlice(e.permNouns)
		if len(e.permNouns) > 0 {
			for _, f := range e.permVec {
				perm.F64(f)
			}
		}
	}
	w.Add(secCatMeta, meta.Bytes())
	proj, res := t.matrix.Sketch()
	w.Add(secCatData, snapfile.Float64Bytes(t.matrix.Data()))
	w.Add(secCatProj, snapfile.Float64Bytes(proj))
	w.Add(secCatRes, snapfile.Float64Bytes(res))
	w.Add(secCatPerm, perm.Bytes())
	encodeQuant(w, secCatQF, secCatQB, t.matrix)
	return nil
}

// encodeQuant persists a matrix's quantized scan tier: the float block and
// the integer code block. Matrices without a tier write nothing — the
// sections are optional, so snapshots stay byte-identical to the pre-tier
// format unless a tier exists, and old readers that ignore unknown sections
// keep working.
func encodeQuant(w *snapfile.Writer, qfID, qbID uint32, m *wordvec.Matrix) {
	if !m.HasQuant() {
		return
	}
	p, _ := m.Quant()
	floats := make([]float64, 0, len(p.Scales)+len(p.Errs)+len(p.ResCent)+
		len(p.ResSpread)+len(p.BoxMin)+len(p.BoxMax))
	floats = append(floats, p.Scales...)
	floats = append(floats, p.Errs...)
	floats = append(floats, p.ResCent...)
	floats = append(floats, p.ResSpread...)
	floats = append(floats, p.BoxMin...)
	floats = append(floats, p.BoxMax...)
	w.Add(qfID, snapfile.Float64Bytes(floats))

	e := snapfile.NewEnc(12 + 4*len(p.Offs) + 2*len(p.ClusterOf) + len(p.Data))
	e.U32(uint32(m.Rows()))
	e.U32(uint32(len(p.ResSpread)))
	e.U32(uint32(len(p.Data)))
	for _, o := range p.Offs {
		e.U32(o)
	}
	for _, c := range p.ClusterOf {
		e.U16(c)
	}
	e.Raw(p.Data)
	w.Add(qbID, e.Bytes())
}

func encodeRelease(w *snapfile.Writer, ri int, info *StaticInfo) error {
	if err := encodeReleaseMeta(w, ri, info); err != nil {
		return err
	}
	mProj, mRes := info.methodMatrix.Sketch()
	w.Add(relSection(ri, relMData), snapfile.Float64Bytes(info.methodMatrix.Data()))
	w.Add(relSection(ri, relMProj), snapfile.Float64Bytes(mProj))
	w.Add(relSection(ri, relMRes), snapfile.Float64Bytes(mRes))

	iProj, iRes := info.invisibleMatrix.Sketch()
	w.Add(relSection(ri, relIData), snapfile.Float64Bytes(info.invisibleMatrix.Data()))
	w.Add(relSection(ri, relIProj), snapfile.Float64Bytes(iProj))
	w.Add(relSection(ri, relIRes), snapfile.Float64Bytes(iRes))
	encodeQuant(w, relSection(ri, relMQF), relSection(ri, relMQB), info.methodMatrix)
	encodeQuant(w, relSection(ri, relIQF), relSection(ri, relIQB), info.invisibleMatrix)
	return nil
}

// encodeReleaseMeta writes the inventory (REL_META) and loose-vector
// (REL_VECS) sections — the half of a release's encoding shared between the
// full and the delta format.
func encodeReleaseMeta(w *snapfile.Writer, ri int, info *StaticInfo) error {
	meta := snapfile.NewEnc(1 << 15)
	meta.Str(info.Release.Version)

	// String-arena totals (see snapfile.StrArena): every string-slice
	// element and every StrSlice2 inner list in this section, so the loader
	// carves all of them out of two allocations.
	elems, lists := 0, 0
	for i := range info.APIs {
		elems += len(info.APIs[i].Classes)
		lists += len(info.APIs[i].Phrases)
		for _, p := range info.APIs[i].Phrases {
			elems += len(p)
		}
	}
	for i := range info.URIs {
		elems += len(info.URIs[i].Nouns) + len(info.URIs[i].Classes)
	}
	for i := range info.Intents {
		elems += len(info.Intents[i].Nouns) + len(info.Intents[i].Classes)
	}
	for i := range info.Messages {
		elems += len(info.Messages[i].Classes)
	}
	for i := range info.MethodPhrases {
		elems += len(info.MethodPhrases[i].Words)
	}
	lists += len(info.descWords)
	for _, ws := range info.descWords {
		elems += len(ws)
	}
	for i := range info.GUIs {
		g := &info.GUIs[i]
		elems += len(g.Visible) + len(g.WidgetIDs)
		lists += len(g.InvisibleWords)
		for _, ws := range g.InvisibleWords {
			elems += len(ws)
		}
	}
	meta.U32(uint32(elems))
	meta.U32(uint32(lists))

	// APIs reference the shared catalog by entry index; their loose phrase
	// vectors open the REL_VECS block.
	var vecs []float64
	appendVec := func(v *wordvec.Vector) { vecs = append(vecs, v[:]...) }

	meta.U32(uint32(len(info.APIs)))
	for i := range info.APIs {
		u := &info.APIs[i]
		idx, err := catalogIndexOf(u.API)
		if err != nil {
			return err
		}
		meta.U32(idx)
		meta.StrSlice(u.Classes)
		meta.StrSlice2(u.Phrases)
		if len(u.PhraseVecs) != len(u.Phrases) {
			return fmt.Errorf("api %s: %d vecs vs %d phrases", u.API.Signature(), len(u.PhraseVecs), len(u.Phrases))
		}
		for j := range u.PhraseVecs {
			appendVec(&u.PhraseVecs[j])
		}
	}

	meta.U32(uint32(len(info.URIs)))
	for i := range info.URIs {
		u := &info.URIs[i]
		meta.Str(u.URI.URI)
		meta.Str(u.URI.Permission)
		meta.StrSlice(u.Nouns)
		meta.StrSlice(u.Classes)
		appendVec(&info.uriNounVecs[i])
	}

	meta.U32(uint32(len(info.Intents)))
	for i := range info.Intents {
		u := &info.Intents[i]
		meta.Str(u.Action)
		meta.StrSlice(u.Nouns)
		meta.StrSlice(u.Classes)
		if len(info.intentNounVecs[i]) != len(u.Nouns) {
			return fmt.Errorf("intent %s: %d vecs vs %d nouns", u.Action, len(info.intentNounVecs[i]), len(u.Nouns))
		}
		for j := range info.intentNounVecs[i] {
			appendVec(&info.intentNounVecs[i][j])
		}
	}

	meta.U32(uint32(len(info.Messages)))
	for i := range info.Messages {
		meta.Str(info.Messages[i].Text)
		meta.StrSlice(info.Messages[i].Classes)
		meta.Str(info.normMessages[i])
	}

	meta.U32(uint32(len(info.MethodPhrases)))
	for i := range info.MethodPhrases {
		p := &info.MethodPhrases[i]
		meta.Str(p.Method.Class)
		meta.Str(p.Method.Name)
		meta.StrSlice(p.Words)
		meta.Bool(p.FromSummary)
	}

	meta.StrSlice2(info.descWords)

	meta.U32(uint32(len(info.GUIs)))
	for i := range info.GUIs {
		g := &info.GUIs[i]
		meta.Str(g.Activity)
		meta.Str(g.LayoutID)
		meta.StrSlice(g.Visible)
		meta.StrSlice(g.WidgetIDs)
		meta.StrSlice2(g.InvisibleWords)
	}

	w.Add(relSection(ri, relMeta), meta.Bytes())
	w.Add(relSection(ri, relVecs), snapfile.Float64Bytes(vecs))
	return nil
}

// catalogIndex maps API signatures to their catalog entry index. The catalog
// is a process-wide constant, so one map serves every encode and load.
var (
	catalogIndexOnce sync.Once
	catalogIndexVal  map[string]uint32
)

func catalogIndexOf(api sdk.API) (uint32, error) {
	catalogIndexOnce.Do(func() {
		apis := sdk.NewCatalog().APIs()
		catalogIndexVal = make(map[string]uint32, len(apis))
		for i, a := range apis {
			catalogIndexVal[a.Signature()] = uint32(i)
		}
	})
	idx, ok := catalogIndexVal[api.Signature()]
	if !ok {
		return 0, fmt.Errorf("api %s not in the catalog", api.Signature())
	}
	return idx, nil
}
