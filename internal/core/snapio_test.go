package core

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// buildImage encodes one seeded app's snapshot.
func buildImage(t *testing.T, seed int64) (*synth.AppData, *Snapshot, []byte) {
	t.Helper()
	data := synth.GenerateSample(seed)
	sn := NewSnapshot()
	img, err := EncodeSnapshot(sn, data.App)
	if err != nil {
		t.Fatalf("seed %d: EncodeSnapshot: %v", seed, err)
	}
	return data, sn, img
}

// TestSnapshotEncodeDeterministic: same IR → same bytes, including across
// independently built snapshots, and across a save→load→save round trip.
func TestSnapshotEncodeDeterministic(t *testing.T) {
	data, sn, img := buildImage(t, 3)
	again, err := EncodeSnapshot(sn, data.App)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(img) {
		t.Fatal("re-encoding the same snapshot produced different bytes")
	}
	img2, err := EncodeSnapshot(NewSnapshot(), synth.GenerateSample(3).App)
	if err != nil {
		t.Fatalf("independent encode: %v", err)
	}
	if string(img2) != string(img) {
		t.Fatal("independently built snapshots of the same IR differ")
	}

	loaded, lapp, err := LoadSnapshotBytes(img)
	if err != nil {
		t.Fatalf("LoadSnapshotBytes: %v", err)
	}
	reImg, err := EncodeSnapshot(loaded, lapp)
	if err != nil {
		t.Fatalf("encode of loaded snapshot: %v", err)
	}
	if string(reImg) != string(img) {
		t.Fatal("save→load→save is not byte-identical")
	}
}

// TestLoadSnapshotMatchesBuild is the tentpole property test: localization
// served from a loaded snapshot is identical to the in-memory NewSnapshot
// path, across seeds and worker counts.
func TestLoadSnapshotMatchesBuild(t *testing.T) {
	for _, seed := range []int64{3, 5, 7, 9} {
		data, sn, img := buildImage(t, seed)
		loaded, lapp, err := LoadSnapshotBytes(img)
		if err != nil {
			t.Fatalf("seed %d: LoadSnapshotBytes: %v", seed, err)
		}
		if loaded.CatalogSize() != sn.CatalogSize() {
			t.Fatalf("seed %d: catalog size %d, want %d", seed, loaded.CatalogSize(), sn.CatalogSize())
		}

		inputs := make([]ReviewInput, 0, 25)
		for i, rv := range data.Reviews {
			if i >= 25 {
				break
			}
			inputs = append(inputs, ReviewInput{Text: rv.Text, PublishedAt: rv.PublishedAt})
		}
		want := NewPoolWithSnapshot(1, sn).Localize(data.App, inputs)

		for _, workers := range []int{1, 2, 4} {
			got := NewPoolWithSnapshot(workers, loaded).Localize(lapp, inputs)
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %d results, want %d", seed, workers, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].Mappings, want[i].Mappings) {
					t.Fatalf("seed %d workers %d review %d: loaded mappings differ from built", seed, workers, i)
				}
				if !reflect.DeepEqual(got[i].Ranked, want[i].Ranked) {
					t.Fatalf("seed %d workers %d review %d: loaded ranking differs from built", seed, workers, i)
				}
			}
		}
	}
}

// TestSaveLoadSnapshotFile exercises the file-path API.
func TestSaveLoadSnapshotFile(t *testing.T) {
	data := synth.GenerateSample(5)
	path := filepath.Join(t.TempDir(), "app.snap")
	if err := SaveSnapshot(NewSnapshot(), data.App, path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	loaded, lapp, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if lapp.Package != data.App.Package || len(lapp.Releases) != len(data.App.Releases) {
		t.Fatalf("loaded IR %s/%d releases, want %s/%d",
			lapp.Package, len(lapp.Releases), data.App.Package, len(data.App.Releases))
	}
	rv := data.ErrorReviews()[0]
	res := NewWithSnapshot(loaded).LocalizeReview(lapp, rv.Text, rv.PublishedAt)
	if res == nil || !res.IsError {
		t.Fatal("loaded snapshot did not localize an error review")
	}
	if _, _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("LoadSnapshot on a missing file succeeded")
	}
}

// rewriteSection mutates a section payload in place and fixes up its CRC in
// the section table, so the container stays valid and the mutation reaches
// the schema layer.
func rewriteSection(t *testing.T, img []byte, id uint32, mutate func(payload []byte)) []byte {
	t.Helper()
	out := append([]byte(nil), img...)
	le := binary.LittleEndian
	count := int(le.Uint32(out[12:]))
	for i := 0; i < count; i++ {
		e := out[32+32*i:]
		if le.Uint32(e[0:]) != id {
			continue
		}
		off, length := le.Uint64(e[8:]), le.Uint64(e[16:])
		payload := out[off : off+length]
		mutate(payload)
		le.PutUint32(e[4:], snapfile.Checksum(payload))
		return out
	}
	t.Fatalf("section %#x not found", id)
	return nil
}

// TestLoadSnapshotTypedErrors: corrupt or incompatible images must surface
// as the documented typed errors, never panics.
func TestLoadSnapshotTypedErrors(t *testing.T) {
	_, _, img := buildImage(t, 3)

	t.Run("truncated", func(t *testing.T) {
		_, _, err := LoadSnapshotBytes(img[:len(img)/3])
		if !errors.Is(err, snapfile.ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[0] = '!'
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, snapfile.ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(bad[8:], snapfile.Version+7)
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, snapfile.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("checksum mismatch", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(bad)-1] ^= 0xff // last payload byte, CRC not fixed up
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, snapfile.ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("misaligned section", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		le := binary.LittleEndian
		off := le.Uint64(bad[32+8:])
		le.PutUint64(bad[32+8:], off+4)
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, snapfile.ErrMisaligned) {
			t.Fatalf("err = %v, want ErrMisaligned", err)
		}
	})
	t.Run("incompatible dim", func(t *testing.T) {
		bad := rewriteSection(t, img, secMeta, func(p []byte) {
			// Dim is the u32 after the package string and release count.
			off := 4 + binary.LittleEndian.Uint32(p) + 4
			binary.LittleEndian.PutUint32(p[off:], 128)
		})
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, ErrSnapshotIncompatible) {
			t.Fatalf("err = %v, want ErrSnapshotIncompatible", err)
		}
	})
	t.Run("catalog fingerprint mismatch", func(t *testing.T) {
		bad := rewriteSection(t, img, secMeta, func(p []byte) {
			off := 4 + binary.LittleEndian.Uint32(p) + 4 + 4 + 4 + 8 + 4
			p[off] ^= 0xff
		})
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, ErrSnapshotIncompatible) {
			t.Fatalf("err = %v, want ErrSnapshotIncompatible", err)
		}
	})
	t.Run("vocabulary fingerprint mismatch", func(t *testing.T) {
		bad := rewriteSection(t, img, secInterner, func(p []byte) {
			p[len(p)-1] ^= 0xff
		})
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, ErrSnapshotIncompatible) {
			t.Fatalf("err = %v, want ErrSnapshotIncompatible", err)
		}
	})
	t.Run("corrupt app IR", func(t *testing.T) {
		bad := rewriteSection(t, img, secAppIR, func(p []byte) {
			// Stomp the release count inside the IR with a huge value.
			d := snapfile.NewDec(p)
			d.Str()
			d.Str()
			off := len(p) - d.Remaining()
			binary.LittleEndian.PutUint32(p[off:], 1<<30)
		})
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, snapfile.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing section", func(t *testing.T) {
		// Relabel the catalog-data section so the expected ID is absent.
		bad := append([]byte(nil), img...)
		le := binary.LittleEndian
		count := int(le.Uint32(bad[12:]))
		for i := 0; i < count; i++ {
			e := bad[32+32*i:]
			if le.Uint32(e[0:]) == secCatData {
				le.PutUint32(e[0:], 0xdead)
				break
			}
		}
		_, _, err := LoadSnapshotBytes(bad)
		if !errors.Is(err, snapfile.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}
