// Snapshot deserialization: reconstruct a serving-ready Snapshot from a
// .snap image in well under a millisecond.
//
// The budget breaks down as: read + container validation (checksums), the
// binary IR decode, one apg.Build per release (~¼ ms total for a seeded
// app), and pure slice stitching. The expensive state — every phrase
// embedding and prescreen sketch — is reinterpreted in place from the file
// image (snapfile.Float64View / wordvec.RowVectors), never recomputed and
// never copied row by row. The solver components (catalog, embedding model,
// tagger, Q&A index) come from a process-wide template built once by
// loadTemplate; each load takes a struct copy, exactly like NewWithSnapshot.
//
// Localization served from a loaded snapshot is byte-identical to the
// in-memory NewSnapshot path — property-tested across seeds and worker
// counts in snapio_test.go.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"reviewsolver/internal/apg"
	"reviewsolver/internal/apk"
	"reviewsolver/internal/gui"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/wordvec"
)

// ErrSnapshotIncompatible reports a structurally valid snapshot written
// against a different build: catalog content, vocabulary, embedding
// dimension, or prescreen basis changed since the file was compiled.
// Recompile the snapshot with the current binary.
var ErrSnapshotIncompatible = errors.New("core: snapshot incompatible with this build")

// loadTemplate builds (once) the frozen solver whose components every
// loaded snapshot shares. Constructing it costs one New(); every LoadSnapshot
// afterwards pays only a struct copy.
var (
	loadTemplateOnce sync.Once
	loadTemplateVal  *Solver
)

func loadTemplate() *Solver {
	loadTemplateOnce.Do(func() { loadTemplateVal = New() })
	return loadTemplateVal
}

// LoadSnapshot reads a .snap file written by SaveSnapshot / cmd/snapshotc
// and reconstructs the Snapshot plus the app IR it embeds. Options apply to
// the snapshot's template solver (WithClassifier, WithParallelism,
// WithObserver are the expected ones); options that replace the embedding
// model or vocabulary are incompatible with the precomputed state and must
// not be passed. Corrupt input returns a typed snapfile error; a valid file
// from a different build returns ErrSnapshotIncompatible.
func LoadSnapshot(path string, opts ...Option) (*Snapshot, *apk.App, error) {
	r, err := snapfile.OpenFile(path)
	if err != nil {
		return nil, nil, err
	}
	return loadSnapshot(r, opts...)
}

// LoadSnapshotBytes is LoadSnapshot over an in-memory image. The returned
// Snapshot and app IR alias data — both float blocks and strings are views
// into the image — so the caller must not modify it afterwards.
func LoadSnapshotBytes(data []byte, opts ...Option) (*Snapshot, *apk.App, error) {
	r, err := snapfile.Open(data)
	if err != nil {
		return nil, nil, err
	}
	return loadSnapshot(r, opts...)
}

func loadSnapshot(r *snapfile.Reader, opts ...Option) (*Snapshot, *apk.App, error) {
	if _, isDelta := r.Section(secDeltaMeta); isDelta {
		return nil, nil, ErrSnapshotDelta
	}
	s := *loadTemplate()
	for _, opt := range opts {
		opt(&s)
	}

	meta, err := r.MustSection(secMeta)
	if err != nil {
		return nil, nil, err
	}
	md := snapfile.NewDec(meta)
	md.Str() // app package, informational
	// Plain U32, not Count: the releases live in other sections, so the
	// count is not bounded by this payload's size.
	releaseCount := int(md.U32())
	dim := md.U32()
	basis := md.U32()
	threshold := md.F64()
	catCount := md.U32()
	catCRC := md.U32()
	internCRC := md.U32()
	if err := md.Done(); err != nil {
		return nil, nil, err
	}
	if int(dim) != wordvec.Dim || int(basis) != wordvec.BasisSize() || threshold != wordvec.DefaultThreshold {
		return nil, nil, fmt.Errorf("%w: dim %d / basis %d / threshold %v, build has %d / %d / %v",
			ErrSnapshotIncompatible, dim, basis, threshold, wordvec.Dim, wordvec.BasisSize(), wordvec.DefaultThreshold)
	}
	if int(catCount) != len(s.catalog.APIs()) || catCRC != cachedCatalogFingerprint(s.catalog) {
		return nil, nil, fmt.Errorf("%w: catalog fingerprint mismatch", ErrSnapshotIncompatible)
	}
	// Open already verified the interner section's payload against its table
	// checksum, so comparing that checksum to the process vocabulary CRC
	// (computed once) proves the file's symbol table matches this build
	// without rehashing it on every load.
	tableCRC, ok := r.SectionChecksum(secInterner)
	if !ok {
		return nil, nil, fmt.Errorf("%w: missing section %#x", snapfile.ErrCorrupt, uint32(secInterner))
	}
	if tableCRC != internCRC || tableCRC != internerCRC() {
		return nil, nil, fmt.Errorf("%w: vocabulary fingerprint mismatch", ErrSnapshotIncompatible)
	}

	irPayload, err := r.MustSection(secAppIR)
	if err != nil {
		return nil, nil, err
	}
	app, err := apk.DecodeBinary(snapfile.NewDecZeroCopy(irPayload))
	if err != nil {
		return nil, nil, err
	}
	if len(app.Releases) != releaseCount {
		return nil, nil, fmt.Errorf("%w: META declares %d releases, IR has %d",
			snapfile.ErrCorrupt, releaseCount, len(app.Releases))
	}

	table, err := loadCatalogTable(r, &s)
	if err != nil {
		return nil, nil, err
	}

	sn := &Snapshot{
		catalogVecs: table,
		static:      make(map[*apk.Release]*staticEntry, len(app.Releases)),
	}
	// Releases are independent — each reads only its own sections of the
	// immutable Reader and builds its own StaticInfo — so they reconstruct
	// in parallel. Errors are collected per slot to keep reporting
	// deterministic (first release in app order wins).
	infos := make([]*StaticInfo, len(app.Releases))
	errs := make([]error, len(app.Releases))
	if runtime.GOMAXPROCS(0) > 1 && len(app.Releases) > 1 {
		var wg sync.WaitGroup
		for ri, release := range app.Releases {
			wg.Add(1)
			go func(ri int, release *apk.Release) {
				defer wg.Done()
				infos[ri], errs[ri] = loadRelease(r, ri, release, table, s.forceQuant)
			}(ri, release)
		}
		wg.Wait()
	} else {
		// On a single P the goroutines would only add scheduling overhead.
		for ri, release := range app.Releases {
			infos[ri], errs[ri] = loadRelease(r, ri, release, table, s.forceQuant)
		}
	}
	for ri, release := range app.Releases {
		if errs[ri] != nil {
			return nil, nil, fmt.Errorf("release %s: %w", release.Version, errs[ri])
		}
		e := &staticEntry{info: infos[ri]}
		e.once.Do(func() {}) // consume the once: the entry is prefilled
		sn.static[release] = e
	}

	s.staticCache = nil
	s.catalogVecCache = nil
	s.snap = sn
	sn.solver = &s
	return sn, app, nil
}

// loadCatalogTable stitches the catalog scan table back together: matrix
// and sketch are zero-copy views of the file image; the per-entry []Vector
// slices are sub-slices of one shared RowVectors view.
func loadCatalogTable(r *snapfile.Reader, s *Solver) (*catalogTable, error) {
	data, proj, res, err := matrixParts(r, secCatData, secCatProj, secCatRes)
	if err != nil {
		return nil, err
	}
	matrix, err := wordvec.MatrixFromParts(data, proj, res)
	if err != nil {
		return nil, fmt.Errorf("%w: catalog matrix: %v", snapfile.ErrCorrupt, err)
	}
	if err := loadQuant(r, secCatQF, secCatQB, matrix, s.forceQuant); err != nil {
		return nil, err
	}
	rowVecs, err := wordvec.RowVectors(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapfile.ErrCorrupt, err)
	}

	metaPayload, err := r.MustSection(secCatMeta)
	if err != nil {
		return nil, err
	}
	permPayload, err := r.MustSection(secCatPerm)
	if err != nil {
		return nil, err
	}
	permView, err := snapfile.Float64View(permPayload)
	if err != nil {
		return nil, err
	}
	permVecs, err := wordvec.RowVectors(permView)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapfile.ErrCorrupt, err)
	}

	d := snapfile.NewDecZeroCopy(metaPayload)
	count := d.Count(4)
	apis := s.catalog.APIs()
	if count != len(apis) && d.Err() == nil {
		return nil, fmt.Errorf("%w: %d catalog entries, build has %d", ErrSnapshotIncompatible, count, len(apis))
	}
	arena := snapfile.NewStrArena(d.Count(4), 0)
	t := &catalogTable{
		entries:  make([]catalogAPI, 0, count),
		matrix:   matrix,
		rowStart: make([]int32, 1, count+1),
	}
	row, permUsed := 0, 0
	for i := 0; i < count && d.Err() == nil; i++ {
		vecCount := int(d.U32())
		entry := catalogAPI{api: apis[i], permNouns: d.StrSliceIn(arena)}
		if d.Err() != nil {
			break
		}
		if row+vecCount > matrix.Rows() {
			return nil, fmt.Errorf("%w: catalog rows overflow at entry %d", snapfile.ErrCorrupt, i)
		}
		entry.vecs = rowVecs[row : row+vecCount : row+vecCount]
		row += vecCount
		if len(entry.permNouns) > 0 {
			if permUsed >= len(permVecs) {
				return nil, fmt.Errorf("%w: catalog permission vectors underflow", snapfile.ErrCorrupt)
			}
			entry.permVec = permVecs[permUsed]
			permUsed++
		}
		t.entries = append(t.entries, entry)
		t.rowStart = append(t.rowStart, int32(row))
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if row != matrix.Rows() || permUsed != len(permVecs) || !arena.Drained() {
		return nil, fmt.Errorf("%w: catalog table consumed %d/%d rows, %d/%d permission vectors",
			snapfile.ErrCorrupt, row, matrix.Rows(), permUsed, len(permVecs))
	}
	return t, nil
}

// matrixParts reads one matrix's three float sections as zero-copy views.
func matrixParts(r *snapfile.Reader, dataID, projID, resID uint32) (data, proj, res []float64, err error) {
	for _, part := range []struct {
		id  uint32
		out *[]float64
	}{{dataID, &data}, {projID, &proj}, {resID, &res}} {
		payload, err := r.MustSection(part.id)
		if err != nil {
			return nil, nil, nil, err
		}
		view, err := snapfile.Float64View(payload)
		if err != nil {
			return nil, nil, nil, err
		}
		*part.out = view
	}
	return data, proj, res, nil
}

// loadQuant restores a matrix's quantized tier from its optional section
// pair: when present, the float block and the integer codes are adopted as
// zero-copy views of the image (only the small offset/cluster index arrays
// are decoded onto the heap); when absent — every snapshot written before
// the tier existed — the matrix quantizes lazily under the solver's policy,
// so old images keep loading and serve through the same fast path.
func loadQuant(r *snapfile.Reader, qfID, qbID uint32, m *wordvec.Matrix, force bool) error {
	fPayload, okF := r.Section(qfID)
	bPayload, okB := r.Section(qbID)
	if okF != okB {
		return fmt.Errorf("%w: quant section pair %#x/%#x half present", snapfile.ErrCorrupt, qfID, qbID)
	}
	if !okF {
		if force {
			m.EnsureQuantForce()
		} else {
			m.EnsureQuant()
		}
		return nil
	}
	floats, err := snapfile.Float64View(fPayload)
	if err != nil {
		return err
	}
	d := snapfile.NewDecZeroCopy(bPayload)
	rows := d.Count(4)
	k := int(d.U32())
	dataLen := int(d.U32())
	offs := make([]uint32, 0, rows+1)
	for i := 0; i <= rows && d.Err() == nil; i++ {
		offs = append(offs, d.U32())
	}
	clusterOf := make([]uint16, rows)
	for i := range clusterOf {
		clusterOf[i] = d.U16()
	}
	data := d.Raw(dataLen)
	if err := d.Done(); err != nil {
		return err
	}
	// QF float layout: scales(rows) ‖ errs(rows) ‖ resCent(k·Dim) ‖
	// resSpread(k) ‖ boxMin(k·K) ‖ boxMax(k·K).
	bk := wordvec.BasisSize()
	if k < 0 || k > rows || len(floats) != 2*rows+k*(wordvec.Dim+1)+2*k*bk {
		return fmt.Errorf("%w: quant float block has %d floats for %d rows, %d clusters",
			snapfile.ErrCorrupt, len(floats), rows, k)
	}
	var p wordvec.QuantParts
	cut := func(n int) []float64 {
		out := floats[:n]
		floats = floats[n:]
		return out
	}
	p.Scales = cut(rows)
	p.Errs = cut(rows)
	p.ResCent = cut(k * wordvec.Dim)
	p.ResSpread = cut(k)
	p.BoxMin = cut(k * bk)
	p.BoxMax = cut(k * bk)
	p.Offs, p.ClusterOf, p.Data = offs, clusterOf, data
	if err := m.AdoptQuant(p, true); err != nil {
		return fmt.Errorf("%w: %v", snapfile.ErrCorrupt, err)
	}
	return nil
}

// loadRelease reconstructs one release's StaticInfo: inventories from
// REL_META, loose vectors as sub-slices of the REL_VECS view, matrices as
// zero-copy parts, and the cheap derivations (graph, exceptions,
// permissions, invisible-row index) recomputed from the decoded IR.
func loadRelease(r *snapfile.Reader, ri int, release *apk.Release, table *catalogTable, force bool) (*StaticInfo, error) {
	info, err := loadReleaseMeta(r, ri, release, table)
	if err != nil {
		return nil, err
	}

	// Matrices: zero-copy views over the file image.
	mData, mProj, mRes, err := matrixParts(r, relSection(ri, relMData), relSection(ri, relMProj), relSection(ri, relMRes))
	if err != nil {
		return nil, err
	}
	if info.methodMatrix, err = wordvec.MatrixFromParts(mData, mProj, mRes); err != nil {
		return nil, fmt.Errorf("%w: method matrix: %v", snapfile.ErrCorrupt, err)
	}
	iData, iProj, iRes, err := matrixParts(r, relSection(ri, relIData), relSection(ri, relIProj), relSection(ri, relIRes))
	if err != nil {
		return nil, err
	}
	if info.invisibleMatrix, err = wordvec.MatrixFromParts(iData, iProj, iRes); err != nil {
		return nil, fmt.Errorf("%w: invisible matrix: %v", snapfile.ErrCorrupt, err)
	}
	if err := attachReleaseMatrices(r, ri, info, force); err != nil {
		return nil, err
	}
	return info, nil
}

// loadReleaseMeta reconstructs the inventory half of one release — the
// REL_META records with their loose REL_VECS vectors — leaving the two scan
// matrices unset. Shared by the full loader (which attaches zero-copy
// matrices) and the delta loader (which materializes them from base rows).
func loadReleaseMeta(r *snapfile.Reader, ri int, release *apk.Release, table *catalogTable) (*StaticInfo, error) {
	metaPayload, err := r.MustSection(relSection(ri, relMeta))
	if err != nil {
		return nil, err
	}
	vecPayload, err := r.MustSection(relSection(ri, relVecs))
	if err != nil {
		return nil, err
	}
	vecView, err := snapfile.Float64View(vecPayload)
	if err != nil {
		return nil, err
	}
	looseVecs, err := wordvec.RowVectors(vecView)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapfile.ErrCorrupt, err)
	}
	vecOff := 0
	takeVecs := func(n int) ([]wordvec.Vector, error) {
		if vecOff+n > len(looseVecs) {
			return nil, fmt.Errorf("%w: loose vector block underflow", snapfile.ErrCorrupt)
		}
		v := looseVecs[vecOff : vecOff+n : vecOff+n]
		vecOff += n
		return v, nil
	}

	g := apg.Build(release)
	info := &StaticInfo{
		Release:     release,
		Graph:       g,
		Permissions: append([]string(nil), release.Manifest.Permissions...),
		Exceptions:  g.ExceptionSites(),
	}
	if act, ok := release.StartingActivity(); ok {
		info.StartingActivity = act.Name
	}

	d := snapfile.NewDecZeroCopy(metaPayload)
	if v := d.Str(); d.Err() == nil && v != release.Version {
		return nil, fmt.Errorf("%w: section for version %q, IR release is %q", snapfile.ErrCorrupt, v, release.Version)
	}
	// The declared string-arena totals size two backing arrays for every
	// string list in this section (see snapfile.StrArena).
	arena := snapfile.NewStrArena(d.Count(4), d.Count(4))

	apiCount := d.Count(4)
	if apiCount > 0 {
		info.APIs = make([]APIUse, 0, apiCount)
		info.apiClasses = make(map[string][]string, apiCount)
	}
	for i := 0; i < apiCount && d.Err() == nil; i++ {
		idx := int(d.U32())
		if d.Err() == nil && idx >= len(table.entries) {
			return nil, fmt.Errorf("%w: api catalog index %d of %d", snapfile.ErrCorrupt, idx, len(table.entries))
		}
		use := APIUse{Classes: d.StrSliceIn(arena), Phrases: d.StrSlice2In(arena)}
		if d.Err() != nil {
			break
		}
		use.API = table.entries[idx].api
		if use.PhraseVecs, err = takeVecs(len(use.Phrases)); err != nil {
			return nil, err
		}
		info.APIs = append(info.APIs, use)
		info.apiClasses[use.API.Class+"."+use.API.Method] = use.Classes
	}

	uriCount := d.Count(4)
	for i := 0; i < uriCount && d.Err() == nil; i++ {
		u := URIUse{}
		u.URI.URI = d.Str()
		u.URI.Permission = d.Str()
		u.Nouns = d.StrSliceIn(arena)
		u.Classes = d.StrSliceIn(arena)
		info.URIs = append(info.URIs, u)
	}
	if d.Err() == nil {
		if info.uriNounVecs, err = takeVecs(uriCount); err != nil {
			return nil, err
		}
	}

	intentCount := d.Count(4)
	if intentCount > 0 {
		info.intentNounVecs = make([][]wordvec.Vector, 0, intentCount)
	}
	for i := 0; i < intentCount && d.Err() == nil; i++ {
		u := IntentUse{Action: d.Str(), Nouns: d.StrSliceIn(arena), Classes: d.StrSliceIn(arena)}
		if d.Err() != nil {
			break
		}
		vv, err := takeVecs(len(u.Nouns))
		if err != nil {
			return nil, err
		}
		info.Intents = append(info.Intents, u)
		info.intentNounVecs = append(info.intentNounVecs, vv)
	}

	msgCount := d.Count(4)
	if msgCount > 0 {
		info.Messages = make([]MessageUse, 0, msgCount)
		info.normMessages = make([]string, 0, msgCount)
	}
	for i := 0; i < msgCount && d.Err() == nil; i++ {
		info.Messages = append(info.Messages, MessageUse{Text: d.Str(), Classes: d.StrSliceIn(arena)})
		info.normMessages = append(info.normMessages, d.Str())
	}

	mpCount := d.Count(4)
	if mpCount > 0 {
		info.MethodPhrases = make([]MethodPhrase, 0, mpCount)
	}
	for i := 0; i < mpCount && d.Err() == nil; i++ {
		class, name := d.Str(), d.Str()
		p := MethodPhrase{Words: d.StrSliceIn(arena), FromSummary: d.Bool()}
		if d.Err() != nil {
			break
		}
		m, ok := g.MethodRef(class, name)
		if !ok {
			return nil, fmt.Errorf("%w: method phrase for unknown method %s.%s", snapfile.ErrCorrupt, class, name)
		}
		p.Method = m
		info.MethodPhrases = append(info.MethodPhrases, p)
	}

	info.descWords = d.StrSlice2In(arena)
	if d.Err() == nil && len(info.descWords) != len(info.APIs) {
		return nil, fmt.Errorf("%w: %d descWords for %d APIs", snapfile.ErrCorrupt, len(info.descWords), len(info.APIs))
	}

	guiCount := d.Count(4)
	if guiCount > 0 {
		info.GUIs = make([]gui.ActivityGUI, 0, guiCount)
	}
	for i := 0; i < guiCount && d.Err() == nil; i++ {
		info.GUIs = append(info.GUIs, gui.ActivityGUI{
			Activity:       d.Str(),
			LayoutID:       d.Str(),
			Visible:        d.StrSliceIn(arena),
			WidgetIDs:      d.StrSliceIn(arena),
			InvisibleWords: d.StrSlice2In(arena),
		})
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if !arena.Drained() {
		return nil, fmt.Errorf("%w: declared string arena not consumed (%d elems, %d lists left)",
			snapfile.ErrCorrupt, len(arena.Elems), len(arena.Lists))
	}
	if vecOff != len(looseVecs) {
		return nil, fmt.Errorf("%w: loose vector block has %d unused rows", snapfile.ErrCorrupt, len(looseVecs)-vecOff)
	}
	return info, nil
}

// attachReleaseMatrices finishes a release whose methodMatrix and
// invisibleMatrix are already set: cross-checks row counts, copies the
// per-phrase vectors, restores (or lazily builds) the quantized tiers, and
// rebuilds the invisible-row index in the exact nested order buildScanState
// emits (the zero vector marks empty id-word lists, as in
// embedInvisibleLabels).
func attachReleaseMatrices(r *snapfile.Reader, ri int, info *StaticInfo, force bool) error {
	if info.methodMatrix.Rows() != len(info.MethodPhrases) {
		return fmt.Errorf("%w: %d method rows for %d phrases", snapfile.ErrCorrupt, info.methodMatrix.Rows(), len(info.MethodPhrases))
	}
	for i := range info.MethodPhrases {
		copy(info.MethodPhrases[i].Vec[:], info.methodMatrix.Row(i))
	}
	if err := loadQuant(r, relSection(ri, relMQF), relSection(ri, relMQB), info.methodMatrix, force); err != nil {
		return err
	}
	if err := loadQuant(r, relSection(ri, relIQF), relSection(ri, relIQB), info.invisibleMatrix, force); err != nil {
		return err
	}

	invRows, err := wordvec.RowVectors(info.invisibleMatrix.Data())
	if err != nil {
		return fmt.Errorf("%w: %v", snapfile.ErrCorrupt, err)
	}
	info.invisibleVecs = make([][]wordvec.Vector, len(info.GUIs))
	totalWords := 0
	for gi := range info.GUIs {
		totalWords += len(info.GUIs[gi].InvisibleWords)
	}
	vecArena := make([]wordvec.Vector, totalWords)
	info.invisibleRows = make([]invisibleRef, 0, len(invRows))
	used := 0
	for gi := range info.GUIs {
		words := info.GUIs[gi].InvisibleWords
		vecs := vecArena[:len(words):len(words)]
		vecArena = vecArena[len(words):]
		for wi := range words {
			if len(words[wi]) == 0 {
				continue
			}
			if used >= len(invRows) {
				return fmt.Errorf("%w: invisible matrix underflow", snapfile.ErrCorrupt)
			}
			vecs[wi] = invRows[used]
			info.invisibleRows = append(info.invisibleRows, invisibleRef{GUI: int32(gi), Widget: int32(wi)})
			used++
		}
		info.invisibleVecs[gi] = vecs
	}
	if used != len(invRows) {
		return fmt.Errorf("%w: invisible matrix has %d unused rows", snapfile.ErrCorrupt, len(invRows)-used)
	}
	return nil
}
