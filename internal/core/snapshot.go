package core

import (
	"runtime"
	"sync"

	"reviewsolver/internal/apk"
)

// Snapshot is the immutable, concurrency-safe precomputed matching state of
// ReviewSolver: the full framework-catalog phrase embeddings (the dominant
// Algorithm 1 cost), the SDK lookups, and the per-release §3.3 static
// extraction — including GUI/widget label vectors and Code2vec
// method-summary vectors, which are embedded at extraction time rather than
// re-embedded on every query.
//
// A Snapshot is computed once and then shared by reference across any
// number of solvers (see NewWithSnapshot) and pool workers (see Pool). Its
// immutability contract:
//
//   - the catalog phrase-vector table is built eagerly at construction and
//     never written again;
//   - per-release StaticInfo values are built exactly once (a duplicate
//     request for a release in flight blocks until the first extraction
//     finishes) and are read-only afterwards;
//   - the underlying components (catalog, embedding model, Q&A index,
//     classifier, summarizer) are read-only at query time — the embedding
//     model's internal memo cache is lock-guarded and deterministic.
//
// Memory model: one snapshot costs one catalog embedding table plus one
// StaticInfo per distinct release, independent of the worker count — an
// N-worker pool no longer pays N× the warm-up or N× the memory.
type Snapshot struct {
	// solver is the frozen template whose components every snapshot-backed
	// solver shares. Its private caches are retired (nil) so that all reads
	// route back through the snapshot.
	solver *Solver

	// catalogVecs is the eagerly built full-catalog phrase table: per-API
	// entries plus the flattened scan matrix with its prescreen sketch.
	catalogVecs *catalogTable

	// borrowedCatalog marks a delta-loaded snapshot whose catalogVecs is
	// shared with its base snapshot: the base (and its image) owns those
	// bytes, so QuantBytes must not count the catalog tier twice.
	borrowedCatalog bool
	// materializedBytes counts the heap float bytes a delta load copied out
	// of its base (see LoadSnapshotDelta) — the part of this snapshot's
	// footprint that is NOT accounted for by its own image length.
	materializedBytes int64

	mu     sync.Mutex
	static map[*apk.Release]*staticEntry
}

// staticEntry single-flights the §3.3 extraction of one release.
type staticEntry struct {
	once sync.Once
	info *StaticInfo
}

// NewSnapshot builds a snapshot from the same options New accepts,
// precomputing the catalog phrase embeddings eagerly. Use Precompute /
// PrecomputeApp to also pay the per-release extraction cost up front.
func NewSnapshot(opts ...Option) *Snapshot {
	s := New(opts...)
	sn := &Snapshot{
		catalogVecs: s.buildCatalogVecs(),
		static:      make(map[*apk.Release]*staticEntry),
	}
	// Retire the template's private caches; every read now routes through
	// the snapshot, and the template is never mutated again.
	s.staticCache = nil
	s.catalogVecCache = nil
	s.snap = sn
	sn.solver = s
	return sn
}

// NewWithSnapshot returns a Solver backed by the shared snapshot. The
// returned solver owns no mutable caches — any number of snapshot-backed
// solvers may run concurrently. Options apply to the returned solver only;
// WithWordModel detaches the solver from the snapshot entirely (the
// precomputed embeddings would not match the new model).
func NewWithSnapshot(sn *Snapshot, opts ...Option) *Solver {
	s := *sn.solver
	for _, opt := range opts {
		opt(&s)
	}
	return &s
}

// StaticFor returns the §3.3 extraction for a release, computing it exactly
// once per release across all sharers. Safe for concurrent use.
func (sn *Snapshot) StaticFor(r *apk.Release) *StaticInfo {
	sn.mu.Lock()
	e := sn.static[r]
	if e == nil {
		e = &staticEntry{}
		sn.static[r] = e
	}
	sn.mu.Unlock()
	e.once.Do(func() { e.info = sn.solver.ExtractStatic(r) })
	return e.info
}

// Precompute eagerly extracts the static information of the given releases,
// fanning out across CPUs. It is optional — StaticFor reads through on
// demand — but front-loads the warm-up so that serving latency is flat.
func (sn *Snapshot) Precompute(releases ...*apk.Release) {
	workers := runtime.NumCPU()
	if workers > len(releases) {
		workers = len(releases)
	}
	if workers <= 1 {
		for _, r := range releases {
			sn.StaticFor(r)
		}
		return
	}
	jobs := make(chan *apk.Release)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				sn.StaticFor(r)
			}
		}()
	}
	for _, r := range releases {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
}

// PrecomputeApp precomputes every release of an app.
func (sn *Snapshot) PrecomputeApp(app *apk.App) {
	sn.Precompute(app.Releases...)
}

// CatalogSize returns the number of framework APIs whose phrase embeddings
// the snapshot precomputed.
func (sn *Snapshot) CatalogSize() int { return len(sn.catalogVecs.entries) }

// QuantBytes reports the heap bytes the quantized scan tiers occupy across
// the catalog matrix and every extracted release (0 without tiers; adopted
// tiers count only their decoded index arrays — the code and float blocks
// alias the snapshot image, whose length the owner already accounts for).
// Serving registries add it to their per-entry byte budgets. Call it after
// load or Precompute: releases whose extraction is still in flight are not
// awaited and count as zero.
func (sn *Snapshot) QuantBytes() int64 {
	var total int64
	if !sn.borrowedCatalog {
		total = sn.catalogVecs.matrix.QuantHeapBytes()
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	for _, e := range sn.static {
		if info := e.info; info != nil {
			total += info.methodMatrix.QuantHeapBytes() + info.invisibleMatrix.QuantHeapBytes()
		}
	}
	return total
}

// MaterializedBytes reports the heap float bytes a delta load copied out of
// its base image (zero for snapshots loaded from a full image or built in
// memory). Registries add it, alongside the image length and QuantBytes, to
// an entry's byte budget.
func (sn *Snapshot) MaterializedBytes() int64 { return sn.materializedBytes }
