package core

import (
	"sync"
	"testing"
)

func TestSnapshotSolverMatchesSequential(t *testing.T) {
	apps, inputs := poolInputs(30)
	app := apps[0].App

	seq := New()
	sn := NewSnapshot()
	shared := NewWithSnapshot(sn)

	for i, in := range inputs {
		want := seq.LocalizeReview(app, in.Text, in.PublishedAt)
		got := shared.LocalizeReview(app, in.Text, in.PublishedAt)
		assertSameRanking(t, i, got.RankedClassNames(), want.RankedClassNames())
	}
}

func TestSnapshotStaticSingleExtraction(t *testing.T) {
	apps, _ := poolInputs(0)
	release := apps[0].App.Latest()
	sn := NewSnapshot()

	const goroutines = 8
	infos := make([]*StaticInfo, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			infos[g] = sn.StaticFor(release)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if infos[g] != infos[0] {
			t.Fatalf("goroutine %d saw a different StaticInfo pointer: extraction ran more than once", g)
		}
	}
}

func TestSnapshotPrecompute(t *testing.T) {
	apps, _ := poolInputs(0)
	app := apps[0].App
	sn := NewSnapshot()
	sn.PrecomputeApp(app)
	for _, r := range app.Releases {
		before := sn.StaticFor(r)
		if before == nil {
			t.Fatalf("release %s not precomputed", r.Version)
		}
		if again := sn.StaticFor(r); again != before {
			t.Fatalf("release %s re-extracted after Precompute", r.Version)
		}
	}
	if sn.CatalogSize() == 0 {
		t.Fatal("catalog phrase vectors not precomputed")
	}
}

// TestSnapshotConcurrentPoolBatches is the shared-snapshot concurrency test
// of the CI race gate: many concurrent Pool.Localize batches run against
// one Snapshot, and every batch must come back input-ordered and identical
// to the sequential solver's output.
func TestSnapshotConcurrentPoolBatches(t *testing.T) {
	apps, inputs := poolInputs(40)
	app := apps[0].App

	seq := New()
	want := make([][]string, len(inputs))
	for i, in := range inputs {
		want[i] = seq.LocalizeReview(app, in.Text, in.PublishedAt).RankedClassNames()
	}

	sn := NewSnapshot()
	pools := []*Pool{
		NewPoolWithSnapshot(4, sn),
		NewPoolWithSnapshot(2, sn),
		NewPoolWithSnapshot(3, sn),
	}

	const batchesPerPool = 3
	var wg sync.WaitGroup
	for _, pool := range pools {
		for b := 0; b < batchesPerPool; b++ {
			wg.Add(1)
			go func(pool *Pool) {
				defer wg.Done()
				got := pool.Localize(app, inputs)
				for i, res := range got {
					if res == nil {
						t.Errorf("nil result at input %d", i)
						return
					}
					names := res.RankedClassNames()
					if len(names) != len(want[i]) {
						t.Errorf("input %d: concurrent pool %v vs sequential %v", i, names, want[i])
						return
					}
					for k := range names {
						if names[k] != want[i][k] {
							t.Errorf("input %d rank %d: concurrent pool %q vs sequential %q",
								i, k, names[k], want[i][k])
							return
						}
					}
				}
			}(pool)
		}
	}
	wg.Wait()
}

func TestWithWordModelDetachesSnapshot(t *testing.T) {
	sn := NewSnapshot()
	s := NewWithSnapshot(sn)
	if s.snap != sn {
		t.Fatal("snapshot not attached")
	}
	apps, _ := poolInputs(0)
	release := apps[0].App.Latest()

	detached := NewWithSnapshot(sn, WithWordModel(s.vec))
	if detached.snap != nil {
		t.Fatal("WithWordModel must detach the snapshot")
	}
	if detached.staticCache == nil {
		t.Fatal("detached solver needs a private static cache")
	}
	if info := detached.StaticFor(release); info == nil {
		t.Fatal("detached solver cannot extract")
	}
}

func assertSameRanking(t *testing.T, input int, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("input %d: ranking %v, want %v", input, got, want)
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("input %d rank %d: %q, want %q", input, k, got[k], want[k])
		}
	}
}
