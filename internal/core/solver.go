package core

import (
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/code2vec"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/phrase"
	"reviewsolver/internal/pos"
	"reviewsolver/internal/qa"
	"reviewsolver/internal/sdk"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/textclass"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// TopN is the number of ranked classes recommended to developers (§4.3).
const TopN = 15

// Solver is ReviewSolver: it identifies function-error reviews and maps
// them to the problematic classes of the app.
type Solver struct {
	catalog    *sdk.Catalog
	vec        *wordvec.Model
	tagger     *pos.Tagger
	extractor  *phrase.Extractor
	normalizer *textproc.Normalizer
	sentiment  sentiment.Analyzer
	qaIndex    *qa.Index
	summarizer *code2vec.Model
	classifier textclass.Classifier
	vectorizer *textclass.Vectorizer

	// summarizeAll adds Code2vec phrases for every method, not only the
	// obfuscated ones.
	summarizeAll bool

	// parallelism bounds the fan-out of the phrase×candidate matching
	// loops (§4.1.1 and Algorithm 1). 1 means strictly sequential.
	parallelism int

	// rec receives spans, counters, and histograms from the pipeline. Nil
	// (the default) disables all metric/span emission: every hook is
	// nil-safe, so the hot path pays only nil checks.
	rec *obs.Recorder

	// appLabel, when set alongside rec, additionally bumps per-app labeled
	// children of the pipeline counters (reviews_total{app="…"}, …) so a
	// fleet daemon sharing one registry across apps gets a per-app
	// breakdown. Empty (the default) emits aggregate counters only.
	appLabel string

	// legacyCosine routes the phrase×candidate scans through the retired
	// per-struct full-cosine path instead of the flattened dot kernel. The
	// two paths produce byte-identical mappings (property-tested); the flag
	// exists so the equivalence stays testable.
	legacyCosine bool

	// forceQuant builds the quantized scan tier on every matrix regardless
	// of size. Without it the tier engages automatically on fleet-scale
	// matrices only (wordvec.EnsureQuant's row gate).
	forceQuant bool

	// changeAware boosts candidate classes touched between the review's
	// release and its predecessor to the top of the ranking (§4.1.6's
	// update intuition applied at rank time). changedCache memoizes the
	// release diffs behind it; held by pointer so solver copies share it.
	changeAware  bool
	changedCache *releaseDiffCache

	// snap, when set, is the shared immutable precomputed state this
	// solver reads through instead of its private caches below.
	snap *Snapshot

	// staticCache memoizes the §3.3 extraction per release pointer.
	// Unused (nil) when snap is set.
	staticCache map[*apk.Release]*StaticInfo

	// catalogVecCache holds the describing-phrase embeddings of the whole
	// framework catalog (Algorithm 1 compares each review phrase against
	// every documented API, not only the ones the app calls). Unused when
	// snap is set.
	catalogVecCache *catalogTable

	// fe is the NLP front-end engine: interner, sentence-analysis cache,
	// phrase-prep cache, and pooled scratch. Shared by pointer across every
	// solver copied from the same template (snapshot sharers, pool workers),
	// so the caches warm corpus-wide. Options that change the cached
	// pipeline's inputs (sentiment analyzer, word model) install a fresh one.
	fe *frontend
}

// catalogAPI pairs a framework API with its precomputed phrase embeddings
// and, for permission-protected APIs, the nouns of the protecting
// permission's description with their phrase embedding (hoisted out of the
// Algorithm 1 inner loop — the seed recomputed them per phrase×entry).
type catalogAPI struct {
	api       sdk.API
	vecs      []wordvec.Vector
	permNouns []string
	permVec   wordvec.Vector
}

// catalogTable is the full-catalog scan structure: the per-API entries plus
// every describing-phrase vector flattened into one contiguous matrix.
// rowStart[i]..rowStart[i+1] are entry i's rows, so the kernel scan walks a
// dense block while chunking still happens on entry boundaries.
type catalogTable struct {
	entries  []catalogAPI
	matrix   *wordvec.Matrix
	rowStart []int32
}

// catalogVecs returns the full-catalog phrase table: the shared snapshot's
// precomputed copy when attached, a lazily built private one otherwise.
func (s *Solver) catalogVecs() *catalogTable {
	if s.snap != nil {
		return s.snap.catalogVecs
	}
	if s.catalogVecCache == nil {
		s.catalogVecCache = s.buildCatalogVecs()
	}
	return s.catalogVecCache
}

// buildCatalogVecs embeds the describing phrases of every documented API
// into the per-entry table and the flattened scan matrix.
func (s *Solver) buildCatalogVecs() *catalogTable {
	apis := s.catalog.APIs()
	t := &catalogTable{
		entries:  make([]catalogAPI, 0, len(apis)),
		matrix:   wordvec.NewMatrix(2 * len(apis)),
		rowStart: make([]int32, 1, len(apis)+1),
	}
	for _, api := range apis {
		entry := catalogAPI{api: api}
		for _, phrase := range apiPhrases(api) {
			v := s.vec.PhraseVector(phrase)
			entry.vecs = append(entry.vecs, v)
			t.matrix.Append(v)
		}
		if api.Permission != "" {
			entry.permNouns = permissionNouns(s, api.Permission)
			if len(entry.permNouns) > 0 {
				entry.permVec = s.vec.PhraseVector(entry.permNouns)
			}
		}
		t.entries = append(t.entries, entry)
		t.rowStart = append(t.rowStart, int32(t.matrix.Rows()))
	}
	t.matrix.Finish()
	s.quantize(t.matrix)
	return t
}

// quantize applies the solver's quantized-tier policy to a finished matrix:
// forced everywhere under WithQuantizedScan, auto-gated by row count
// otherwise. Either way the scan output is exact, so this only ever changes
// speed, never results.
func (s *Solver) quantize(m *wordvec.Matrix) {
	if s.forceQuant {
		m.EnsureQuantForce()
	} else {
		m.EnsureQuant()
	}
}

// Option configures a Solver.
type Option func(*Solver)

// WithClassifier installs a trained function-error review classifier.
// Without one, every review is treated as a function-error review.
func WithClassifier(v *textclass.Vectorizer, c textclass.Classifier) Option {
	return func(s *Solver) {
		s.vectorizer, s.classifier = v, c
	}
}

// WithSummarizer installs a trained Code2vec model for method
// summarization (§3.3.2).
func WithSummarizer(m *code2vec.Model) Option {
	return func(s *Solver) { s.summarizer = m }
}

// WithSummarizeAll generates Code2vec phrases for every method, matching
// the paper's configuration where summaries complement raw names (§4.1.1).
func WithSummarizeAll() Option {
	return func(s *Solver) { s.summarizeAll = true }
}

// WithWordModel overrides the word-embedding model (ablations use it to
// compare semantic matching against near-exact thresholds). Installing a
// different model detaches the solver from any shared Snapshot, whose
// precomputed embeddings would no longer be valid.
func WithWordModel(m *wordvec.Model) Option {
	return func(s *Solver) {
		s.vec = m
		s.catalogVecCache = nil
		s.fe = newFrontend() // cached phrase vectors depend on the model
		if s.snap != nil {
			s.snap = nil
			s.staticCache = make(map[*apk.Release]*StaticInfo)
		}
	}
}

// WithParallelism bounds the worker fan-out of the inner phrase×candidate
// matching loops. n == 0 means runtime.NumCPU(); n < 0 (like n == 1) means
// strictly sequential. The parallel path merges chunk results
// deterministically, so rankings are identical to the sequential path.
func WithParallelism(n int) Option {
	return func(s *Solver) { s.parallelism = normalizeWorkers(n) }
}

// WithLegacyCosine routes the phrase×candidate scans through the retired
// per-struct full-cosine matcher instead of the flattened dot kernel. The
// kernel path exploits the unit-vector invariant of wordvec (dot == cosine)
// and scans contiguous matrices with an exact anchor prescreen; this flag
// keeps the original path alive so the byte-identical property stays
// testable (and for A/B benchmarks).
func WithLegacyCosine() Option {
	return func(s *Solver) { s.legacyCosine = true }
}

// WithQuantizedScan forces the quantized scan tier (integer row codes with
// sound error bounds plus the inverted-file cluster prescreen, see
// wordvec/quant.go) onto every candidate matrix, regardless of the
// fleet-size auto gate. The tier only skips rows that provably cannot reach
// the similarity threshold and rescores survivors with the exact float
// kernel, so localization output is byte-identical with or without this
// option — property-tested; the flag exists so the equivalence stays
// testable at every matrix size (and for A/B benchmarks).
func WithQuantizedScan() Option {
	return func(s *Solver) { s.forceQuant = true }
}

// WithChangeAwareRank ranks candidate classes that changed between the
// review's app version and its predecessor ahead of unchanged candidates.
// The intuition follows §4.1.6 (update reviews blame updated code): a
// function-error review published right after a release most likely
// describes a regression in the code that release touched. Localization
// (which classes are candidates at all) is unaffected; only the §4.3
// ordering changes, with the changed-first key applied before importance.
// Reviews with no predecessor release rank exactly as without the option.
func WithChangeAwareRank() Option {
	return func(s *Solver) {
		s.changeAware = true
		if s.changedCache == nil {
			s.changedCache = &releaseDiffCache{}
		}
	}
}

// WithObserver installs a telemetry recorder. The pipeline then emits
// stage spans (with durations feeding the latency histograms and the
// structured span log), prescreen counters, and the match-similarity
// histogram. Observation never changes localization output.
func WithObserver(rec *obs.Recorder) Option {
	return func(s *Solver) { s.rec = rec }
}

// WithAppLabel tags this solver's pipeline metrics with an app identity:
// alongside the aggregate counters (reviews_total, …) it bumps labeled
// children (reviews_total{app="…"}, …) in the recorder's registry, so a
// multi-app daemon serving many solvers over one registry gets a per-app
// breakdown. No-op without an observer; labeling never changes
// localization output.
func WithAppLabel(app string) Option {
	return func(s *Solver) { s.appLabel = app }
}

// WithQAIndex installs the general-task Q&A index (§4.2.2).
func WithQAIndex(idx *qa.Index) Option {
	return func(s *Solver) { s.qaIndex = idx }
}

// WithSentimentAnalyzer overrides the sentence sentiment analyzer
// (SentiStrength by default, per Table 4).
func WithSentimentAnalyzer(a sentiment.Analyzer) Option {
	return func(s *Solver) {
		s.sentiment = a
		s.fe = newFrontend() // cached clause outcomes depend on the analyzer
	}
}

// New constructs a Solver. The default configuration has no classifier
// (callers decide which reviews to localize), uses SentiStrength-style
// sentiment, and builds the Q&A index over the generated corpus.
func New(opts ...Option) *Solver {
	catalog := sdk.NewCatalog()
	s := &Solver{
		catalog:     catalog,
		vec:         wordvec.NewModel(),
		tagger:      pos.NewTagger(),
		extractor:   phrase.NewExtractor(),
		normalizer:  textproc.NewNormalizer(),
		sentiment:   sentiment.SentiStrength{},
		qaIndex:     qa.NewIndex(catalog, qa.GenerateCorpus(catalog)),
		staticCache: make(map[*apk.Release]*StaticInfo),
		parallelism: 1,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.fe == nil {
		s.fe = newFrontend()
	}
	// Annotate parsed tokens with dense vocabulary IDs so tagging and
	// stopword tests index flat arrays instead of re-hashing words.
	s.extractor.UseInterner(s.fe.in)
	s.tagger.UseInterner(s.fe.in)
	return s
}

// Catalog exposes the SDK catalog in use.
func (s *Solver) Catalog() *sdk.Catalog { return s.catalog }

// WordModel exposes the embedding model in use.
func (s *Solver) WordModel() *wordvec.Model { return s.vec }

// IsErrorReview runs the trained classifier on a review (§3.2.2). With no
// classifier installed it returns true.
func (s *Solver) IsErrorReview(text string) bool {
	if s.classifier == nil || s.vectorizer == nil {
		return true
	}
	return s.classifier.Predict(s.vectorizer.Transform(text))
}

// StaticFor returns the (cached) §3.3 extraction for a release. Snapshot-
// backed solvers read through the shared concurrency-safe snapshot cache;
// standalone solvers keep the legacy private map (not safe for concurrent
// use — share work through a Snapshot instead).
func (s *Solver) StaticFor(r *apk.Release) *StaticInfo {
	if s.snap != nil {
		return s.snap.StaticFor(r)
	}
	if info, ok := s.staticCache[r]; ok {
		return info
	}
	info := s.ExtractStatic(r)
	s.staticCache[r] = info
	return info
}

// Result is the outcome of localizing one review.
type Result struct {
	// IsError reports the classifier's decision.
	IsError bool
	// Analysis is the review-analysis output (§3.2).
	Analysis *ReviewAnalysis
	// Mappings are all (phrase → class) correlations found (§4.1–4.2).
	Mappings []Mapping
	// Ranked are the recommended classes, most important first (§4.3),
	// capped at TopN.
	Ranked []RankedClass
	// Release is the APK version the review was matched against.
	Release *apk.Release
}

// Localized reports whether the review was mapped to at least one class.
func (r *Result) Localized() bool { return len(r.Mappings) > 0 }

// RankedClassNames lists the recommended class names in rank order.
func (r *Result) RankedClassNames() []string {
	out := make([]string, len(r.Ranked))
	for i, rc := range r.Ranked {
		out[i] = rc.Class
	}
	return out
}

// LocalizeReview runs the full ReviewSolver pipeline on one review: pick
// the APK version released before the review (§3.3.1), identify whether it
// is a function-error review (§3.2.2), analyze its sentences (§3.2.3–4),
// run every applicable localizer (§4.1–4.2), and rank the classes (§4.3).
func (s *Solver) LocalizeReview(app *apk.App, text string, publishedAt time.Time) *Result {
	return s.localizeReview(app, text, publishedAt, nil)
}

// LocalizeReviewTraced is LocalizeReview plus an explain trace: a
// deterministic per-review record of every phrase → candidate correlation
// (with its information source and similarity), every kernel prescreen
// scan, and the stage walk. The trace carries no wall-clock fields, so for
// a fixed corpus and review its JSON encoding is byte-identical across
// runs and worker counts.
func (s *Solver) LocalizeReviewTraced(app *apk.App, text string, publishedAt time.Time) (*Result, *obs.ReviewTrace) {
	tr := obs.NewReviewTrace(text)
	res := s.localizeReview(app, text, publishedAt, tr)
	return res, tr
}

// localizeReview is the shared pipeline body. tr may be nil (no explain
// trace); s.rec may be nil (no metrics/spans). Both off is the default and
// costs only nil checks.
func (s *Solver) localizeReview(app *apk.App, text string, publishedAt time.Time, tr *obs.ReviewTrace) *Result {
	root := s.rec.Start(stageReview)
	s.rec.Counter(metricReviews).Add(1)
	s.notePerApp(metricReviews, 1)

	cs := root.Child(stageClassify)
	res := &Result{IsError: s.IsErrorReview(text)}
	cs.End()
	tr.AddStage(stageClassify, stageReview, 0)
	if tr != nil {
		tr.IsError = res.IsError
	}
	if !res.IsError {
		root.End()
		return res
	}
	s.rec.Counter(metricErrorReviews).Add(1)
	s.notePerApp(metricErrorReviews, 1)

	current, previous, ok := app.ReleaseBefore(publishedAt)
	if !ok {
		// No release predates the review; fall back to the earliest.
		if len(app.Releases) == 0 {
			root.End()
			return res
		}
		current, previous = app.Releases[0], nil
	}
	res.Release = current
	if tr != nil {
		tr.Release = current.Version
	}
	ss := root.Child(stageStatic)
	info := s.StaticFor(current)
	ss.End()
	tr.AddStage(stageStatic, stageReview, 0)

	as := root.Child(stageAnalyze)
	res.Analysis = s.AnalyzeReview(text)
	as.End()
	tr.AddStage(stageAnalyze, stageReview, 0)

	res.Mappings = s.localize(res.Analysis, info, previous, current, tr, root)
	tr.AddStage(stageLocalize, stageReview, len(res.Mappings))

	rs := root.Child(stageRank)
	var changed map[string]struct{}
	if s.changeAware && previous != nil {
		changed = s.changedClasses(previous, current)
	}
	res.Ranked = rankClasses(res.Mappings, info.Graph, TopN, changed)
	rs.End()
	tr.AddStage(stageRank, stageReview, 0)

	if res.Localized() {
		s.rec.Counter(metricLocalizedReviews).Add(1)
		s.notePerApp(metricLocalizedReviews, 1)
	}
	s.rec.Counter(metricMappings).Add(int64(len(res.Mappings)))
	s.notePerApp(metricMappings, int64(len(res.Mappings)))
	if tr != nil {
		for i, rc := range res.Ranked {
			tr.Ranked = append(tr.Ranked, obs.RankedTrace{
				Rank:         i + 1,
				Class:        rc.Class,
				Importance:   rc.Importance,
				Dependencies: rc.Dependencies,
				Matches:      tr.MatchesFor(rc.Class),
			})
		}
	}
	root.End()
	return res
}
