package core

import (
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/code2vec"
	"reviewsolver/internal/phrase"
	"reviewsolver/internal/pos"
	"reviewsolver/internal/qa"
	"reviewsolver/internal/sdk"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/textclass"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// TopN is the number of ranked classes recommended to developers (§4.3).
const TopN = 15

// Solver is ReviewSolver: it identifies function-error reviews and maps
// them to the problematic classes of the app.
type Solver struct {
	catalog    *sdk.Catalog
	vec        *wordvec.Model
	tagger     *pos.Tagger
	extractor  *phrase.Extractor
	normalizer *textproc.Normalizer
	sentiment  sentiment.Analyzer
	qaIndex    *qa.Index
	summarizer *code2vec.Model
	classifier textclass.Classifier
	vectorizer *textclass.Vectorizer

	// summarizeAll adds Code2vec phrases for every method, not only the
	// obfuscated ones.
	summarizeAll bool

	// staticCache memoizes the §3.3 extraction per release pointer.
	staticCache map[*apk.Release]*StaticInfo

	// catalogVecCache holds the describing-phrase embeddings of the whole
	// framework catalog (Algorithm 1 compares each review phrase against
	// every documented API, not only the ones the app calls).
	catalogVecCache []catalogAPI
}

// catalogAPI pairs a framework API with its precomputed phrase embeddings.
type catalogAPI struct {
	api  sdk.API
	vecs []wordvec.Vector
}

// catalogVecs lazily builds the full-catalog phrase-vector table.
func (s *Solver) catalogVecs() []catalogAPI {
	if s.catalogVecCache != nil {
		return s.catalogVecCache
	}
	apis := s.catalog.APIs()
	out := make([]catalogAPI, 0, len(apis))
	for _, api := range apis {
		entry := catalogAPI{api: api}
		for _, phrase := range apiPhrases(api) {
			entry.vecs = append(entry.vecs, s.vec.PhraseVector(phrase))
		}
		out = append(out, entry)
	}
	s.catalogVecCache = out
	return out
}

// Option configures a Solver.
type Option func(*Solver)

// WithClassifier installs a trained function-error review classifier.
// Without one, every review is treated as a function-error review.
func WithClassifier(v *textclass.Vectorizer, c textclass.Classifier) Option {
	return func(s *Solver) {
		s.vectorizer, s.classifier = v, c
	}
}

// WithSummarizer installs a trained Code2vec model for method
// summarization (§3.3.2).
func WithSummarizer(m *code2vec.Model) Option {
	return func(s *Solver) { s.summarizer = m }
}

// WithSummarizeAll generates Code2vec phrases for every method, matching
// the paper's configuration where summaries complement raw names (§4.1.1).
func WithSummarizeAll() Option {
	return func(s *Solver) { s.summarizeAll = true }
}

// WithWordModel overrides the word-embedding model (ablations use it to
// compare semantic matching against near-exact thresholds).
func WithWordModel(m *wordvec.Model) Option {
	return func(s *Solver) {
		s.vec = m
		s.catalogVecCache = nil
	}
}

// WithQAIndex installs the general-task Q&A index (§4.2.2).
func WithQAIndex(idx *qa.Index) Option {
	return func(s *Solver) { s.qaIndex = idx }
}

// WithSentimentAnalyzer overrides the sentence sentiment analyzer
// (SentiStrength by default, per Table 4).
func WithSentimentAnalyzer(a sentiment.Analyzer) Option {
	return func(s *Solver) { s.sentiment = a }
}

// New constructs a Solver. The default configuration has no classifier
// (callers decide which reviews to localize), uses SentiStrength-style
// sentiment, and builds the Q&A index over the generated corpus.
func New(opts ...Option) *Solver {
	catalog := sdk.NewCatalog()
	s := &Solver{
		catalog:     catalog,
		vec:         wordvec.NewModel(),
		tagger:      pos.NewTagger(),
		extractor:   phrase.NewExtractor(),
		normalizer:  textproc.NewNormalizer(),
		sentiment:   sentiment.SentiStrength{},
		qaIndex:     qa.NewIndex(catalog, qa.GenerateCorpus(catalog)),
		staticCache: make(map[*apk.Release]*StaticInfo),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Catalog exposes the SDK catalog in use.
func (s *Solver) Catalog() *sdk.Catalog { return s.catalog }

// WordModel exposes the embedding model in use.
func (s *Solver) WordModel() *wordvec.Model { return s.vec }

// IsErrorReview runs the trained classifier on a review (§3.2.2). With no
// classifier installed it returns true.
func (s *Solver) IsErrorReview(text string) bool {
	if s.classifier == nil || s.vectorizer == nil {
		return true
	}
	return s.classifier.Predict(s.vectorizer.Transform(text))
}

// StaticFor returns the (cached) §3.3 extraction for a release.
func (s *Solver) StaticFor(r *apk.Release) *StaticInfo {
	if info, ok := s.staticCache[r]; ok {
		return info
	}
	info := s.ExtractStatic(r)
	s.staticCache[r] = info
	return info
}

// Result is the outcome of localizing one review.
type Result struct {
	// IsError reports the classifier's decision.
	IsError bool
	// Analysis is the review-analysis output (§3.2).
	Analysis *ReviewAnalysis
	// Mappings are all (phrase → class) correlations found (§4.1–4.2).
	Mappings []Mapping
	// Ranked are the recommended classes, most important first (§4.3),
	// capped at TopN.
	Ranked []RankedClass
	// Release is the APK version the review was matched against.
	Release *apk.Release
}

// Localized reports whether the review was mapped to at least one class.
func (r *Result) Localized() bool { return len(r.Mappings) > 0 }

// RankedClassNames lists the recommended class names in rank order.
func (r *Result) RankedClassNames() []string {
	out := make([]string, len(r.Ranked))
	for i, rc := range r.Ranked {
		out[i] = rc.Class
	}
	return out
}

// LocalizeReview runs the full ReviewSolver pipeline on one review: pick
// the APK version released before the review (§3.3.1), identify whether it
// is a function-error review (§3.2.2), analyze its sentences (§3.2.3–4),
// run every applicable localizer (§4.1–4.2), and rank the classes (§4.3).
func (s *Solver) LocalizeReview(app *apk.App, text string, publishedAt time.Time) *Result {
	res := &Result{IsError: s.IsErrorReview(text)}
	if !res.IsError {
		return res
	}
	current, previous, ok := app.ReleaseBefore(publishedAt)
	if !ok {
		// No release predates the review; fall back to the earliest.
		if len(app.Releases) == 0 {
			return res
		}
		current, previous = app.Releases[0], nil
	}
	res.Release = current
	info := s.StaticFor(current)

	res.Analysis = s.AnalyzeReview(text)
	res.Mappings = s.Localize(res.Analysis, info, previous, current)
	res.Ranked = RankClasses(res.Mappings, info.Graph, TopN)
	return res
}
