// Package core implements ReviewSolver: the review-analysis pipeline of
// §3.2, the static-analysis information extraction of §3.3, the per-context
// localizers of §4.1–4.2, and the class ranking of §4.3.
package core

import (
	"sort"
	"strings"

	"reviewsolver/internal/apg"
	"reviewsolver/internal/apk"
	"reviewsolver/internal/gui"
	"reviewsolver/internal/pos"
	"reviewsolver/internal/sdk"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// MethodPhrase is a verb phrase derived from a method name (§4.1.1) with
// its precomputed embedding.
type MethodPhrase struct {
	// Method is the source method.
	Method *apk.Method
	// Words is the derived phrase ("get email").
	Words []string
	// Vec is the phrase embedding.
	Vec wordvec.Vector
	// FromSummary marks phrases predicted by the code summarizer rather
	// than derived from the raw method name.
	FromSummary bool
}

// APIUse is one framework API invoked by the app, with the phrases it can
// be described by.
type APIUse struct {
	API sdk.API
	// Classes are the app classes invoking the API.
	Classes []string
	// PhraseVecs are the embeddings of the API's describing phrases
	// (method-name phrase + description phrase + permission nouns).
	PhraseVecs []wordvec.Vector
	// Phrases holds the corresponding word slices (for explanations).
	Phrases [][]string
}

// URIUse is one content-provider URI accessed by the app.
type URIUse struct {
	URI sdk.URI
	// Nouns are extracted from the protecting permission's description.
	Nouns []string
	// Classes access the URI.
	Classes []string
}

// IntentUse is one intent action the app dispatches.
type IntentUse struct {
	Action string
	// Nouns are the common-intent nouns for the action.
	Nouns []string
	// Classes dispatch the intent.
	Classes []string
}

// MessageUse is one user-visible message and the classes raising it.
type MessageUse struct {
	Text    string
	Classes []string
}

// StaticInfo is the §3.3.2 extraction result for one release: the seven
// kinds of information ReviewSolver correlates reviews against.
type StaticInfo struct {
	Release *apk.Release
	Graph   *apg.Graph

	// (1) permissions and activities.
	Permissions      []string
	StartingActivity string

	// (2) APIs / URIs / intents.
	APIs    []APIUse
	URIs    []URIUse
	Intents []IntentUse

	// (3) error messages.
	Messages []MessageUse

	// (4) class/method names as phrases, and (5) method summarization.
	MethodPhrases []MethodPhrase

	// apiClasses indexes the classes calling each API by "class.method".
	apiClasses map[string][]string

	// (6) visible and (7) invisible GUI label information.
	GUIs []gui.ActivityGUI

	// invisibleVecs[i][j] is the precomputed phrase embedding of
	// GUIs[i].InvisibleWords[j], so query-time widget matching never
	// re-embeds static label text (the zero vector marks empty id-word
	// lists).
	invisibleVecs [][]wordvec.Vector

	// Exceptions thrown/caught by developer methods.
	Exceptions []apg.ExceptionSite

	// --- flattened scan state (built once by buildScanState) -----------------
	//
	// The kernel matcher walks these contiguous structure-of-arrays blocks
	// instead of chasing the per-candidate structs above; the structs stay
	// for evidence strings and the legacy cosine path.

	// methodMatrix rows are parallel to MethodPhrases.
	methodMatrix *wordvec.Matrix

	// invisibleMatrix holds every non-empty widget-id phrase vector;
	// invisibleRows maps its rows back to (GUI index, widget index), in the
	// same nested order the legacy loops visit.
	invisibleMatrix *wordvec.Matrix
	invisibleRows   []invisibleRef

	// uriNounVecs[i] is the phrase embedding of URIs[i].Nouns (zero vector
	// when the noun list is empty).
	uriNounVecs []wordvec.Vector

	// intentNounVecs[i][j] is the embedding of Intents[i].Nouns[j].
	intentNounVecs [][]wordvec.Vector

	// descWords[i] is APIs[i].API.Description tokenized once — the seed
	// re-ran textproc.Words per (noun-phrase, API) pair.
	descWords [][]string

	// normMessages[i] is normalizeMessage(Messages[i].Text), precomputed —
	// the seed retokenized every app message once per quoted review span.
	normMessages []string
}

// invisibleRef addresses one widget-id phrase: GUIs[GUI].InvisibleWords[Widget].
type invisibleRef struct {
	GUI    int32
	Widget int32
}

// ExtractStatic runs the §3.3.2 extraction over one release.
func (s *Solver) ExtractStatic(r *apk.Release) *StaticInfo {
	g := apg.Build(r)
	info := &StaticInfo{
		Release:     r,
		Graph:       g,
		Permissions: append([]string(nil), r.Manifest.Permissions...),
		GUIs:        gui.Recover(r, g),
		Exceptions:  g.ExceptionSites(),
	}
	if act, ok := r.StartingActivity(); ok {
		info.StartingActivity = act.Name
	}
	info.extractAPIs(s, g)
	info.extractURIs(s, g)
	info.extractIntents(s, g)
	info.extractMessages(g)
	info.extractMethodPhrases(s, g)
	info.embedInvisibleLabels(s)
	info.buildScanState(s)
	return info
}

// buildScanState flattens the extracted embeddings into the contiguous
// matrices the kernel matcher scans, and precomputes the static-text caches
// (tokenized API descriptions, normalized messages, URI/intent noun
// vectors). Everything here is derived deterministically from fields built
// above; after this call the StaticInfo is read-only.
func (info *StaticInfo) buildScanState(s *Solver) {
	info.methodMatrix = wordvec.NewMatrix(len(info.MethodPhrases))
	for i := range info.MethodPhrases {
		info.methodMatrix.Append(info.MethodPhrases[i].Vec)
	}
	info.methodMatrix.Finish()
	s.quantize(info.methodMatrix)

	info.invisibleMatrix = wordvec.NewMatrix(0)
	for gi := range info.GUIs {
		for wi, idWords := range info.GUIs[gi].InvisibleWords {
			if len(idWords) == 0 {
				continue
			}
			info.invisibleMatrix.Append(info.invisibleVecs[gi][wi])
			info.invisibleRows = append(info.invisibleRows, invisibleRef{GUI: int32(gi), Widget: int32(wi)})
		}
	}
	info.invisibleMatrix.Finish()
	s.quantize(info.invisibleMatrix)

	info.uriNounVecs = make([]wordvec.Vector, len(info.URIs))
	for i := range info.URIs {
		if len(info.URIs[i].Nouns) > 0 {
			info.uriNounVecs[i] = s.vec.PhraseVector(info.URIs[i].Nouns)
		}
	}

	info.intentNounVecs = make([][]wordvec.Vector, len(info.Intents))
	for i := range info.Intents {
		vecs := make([]wordvec.Vector, len(info.Intents[i].Nouns))
		for j, noun := range info.Intents[i].Nouns {
			vecs[j] = s.vec.PhraseVector([]string{noun})
		}
		info.intentNounVecs[i] = vecs
	}

	info.descWords = make([][]string, len(info.APIs))
	for i := range info.APIs {
		info.descWords[i] = textproc.Words(info.APIs[i].API.Description)
	}

	info.normMessages = make([]string, len(info.Messages))
	for i := range info.Messages {
		info.normMessages[i] = normalizeMessage(info.Messages[i].Text)
	}
}

// embedInvisibleLabels precomputes the phrase vectors of every expanded
// widget-id word list (§4.1.2), the per-query cost the GUI localizer would
// otherwise pay on every review.
func (info *StaticInfo) embedInvisibleLabels(s *Solver) {
	info.invisibleVecs = make([][]wordvec.Vector, len(info.GUIs))
	for gi := range info.GUIs {
		g := &info.GUIs[gi]
		vecs := make([]wordvec.Vector, len(g.InvisibleWords))
		for wi, idWords := range g.InvisibleWords {
			if len(idWords) == 0 {
				continue
			}
			vecs[wi] = s.vec.PhraseVector(idWords)
		}
		info.invisibleVecs[gi] = vecs
	}
}

// extractAPIs inventories the framework APIs the app calls, with their
// describing phrases (§4.2.1: signature phrase, description phrases,
// permission nouns).
func (info *StaticInfo) extractAPIs(s *Solver, g *apg.Graph) {
	type agg struct {
		api     sdk.API
		classes map[string]struct{}
	}
	uses := make(map[string]*agg)
	for _, site := range g.FrameworkCalls() {
		st := site.Statement()
		api, ok := s.catalog.LookupAPI(st.InvokeClass, st.InvokeMethod)
		if !ok {
			continue
		}
		key := api.Class + "." + api.Method
		a, exists := uses[key]
		if !exists {
			a = &agg{api: api, classes: make(map[string]struct{})}
			uses[key] = a
		}
		a.classes[site.Class()] = struct{}{}
	}
	keys := make([]string, 0, len(uses))
	for k := range uses {
		keys = append(keys, k)
	}
	sortStrings(keys)
	info.apiClasses = make(map[string][]string, len(keys))
	for _, k := range keys {
		a := uses[k]
		use := APIUse{API: a.api, Classes: sortedKeys(a.classes)}
		for _, phrase := range apiPhrases(a.api) {
			use.Phrases = append(use.Phrases, phrase)
			use.PhraseVecs = append(use.PhraseVecs, s.vec.PhraseVector(phrase))
		}
		info.APIs = append(info.APIs, use)
		info.apiClasses[k] = use.Classes
	}
}

// APIClasses returns the app classes invoking the given framework API.
func (info *StaticInfo) APIClasses(class, method string) []string {
	return info.apiClasses[class+"."+method]
}

// apiPhrases derives the describing phrases of an API: the method-name
// verb phrase, the content words of the documentation sentence, and (as a
// short phrase) the class noun.
func apiPhrases(api sdk.API) [][]string {
	var out [][]string
	if name := methodNamePhrase(api.Method, api.ShortClass()); len(name) > 0 {
		out = append(out, name)
	}
	if desc := contentWords(api.Description); len(desc) > 0 {
		out = append(out, desc)
	}
	return out
}

// contentWords filters a sentence down to non-stopword words.
func contentWords(sentence string) []string {
	words := textproc.Words(sentence)
	out := make([]string, 0, len(words))
	for _, w := range words {
		if !textproc.IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// extractURIs inventories the content-provider URIs with the nouns of their
// protecting permissions (§4.2.1).
func (info *StaticInfo) extractURIs(s *Solver, g *apg.Graph) {
	type agg struct {
		uri     sdk.URI
		classes map[string]struct{}
	}
	uses := make(map[string]*agg)
	for _, q := range g.ContentQueries() {
		for _, u := range q.URIs {
			perm, ok := s.catalog.URIPermission(u)
			if !ok {
				continue
			}
			a, exists := uses[u]
			if !exists {
				a = &agg{uri: sdk.URI{URI: u, Permission: perm},
					classes: make(map[string]struct{})}
				uses[u] = a
			}
			a.classes[q.Site.Class()] = struct{}{}
		}
	}
	keys := make([]string, 0, len(uses))
	for k := range uses {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		a := uses[k]
		nouns := permissionNouns(s, a.uri.Permission)
		info.URIs = append(info.URIs, URIUse{
			URI:     a.uri,
			Nouns:   nouns,
			Classes: sortedKeys(a.classes),
		})
	}
}

// permissionFormulaWords are the boilerplate words of Android permission
// descriptions ("Allows an application to read the user's …") that carry no
// object information.
var permissionFormulaWords = map[string]struct{}{
	"allow": {}, "allows": {}, "allowed": {},
	"application": {}, "applications": {}, "app": {}, "apps": {},
	"user": {}, "users": {}, "user's": {},
	"access": {}, "read": {}, "write": {}, "open": {}, "initiate": {},
	"keep": {}, "set": {}, "discover": {}, "pair": {}, "add": {},
	"device": {}, "only": {}, "system": {},
}

// permissionNouns extracts the object words from a permission description
// ("Allows an application to read the user's call log." → call, log). The
// descriptions are formulaic, so a boilerplate skiplist beats POS tagging
// here (possessives like "user's" defeat the tagger's noun detection).
func permissionNouns(s *Solver, permission string) []string {
	desc, ok := s.catalog.PermissionDescription(permission)
	if !ok {
		return nil
	}
	var nouns []string
	for _, w := range textproc.Words(desc) {
		if textproc.IsStopword(w) {
			continue
		}
		if _, formula := permissionFormulaWords[w]; formula {
			continue
		}
		nouns = append(nouns, w)
	}
	return nouns
}

// extractIntents inventories the dispatched intent actions with their
// common-intent nouns (§4.2.1).
func (info *StaticInfo) extractIntents(s *Solver, g *apg.Graph) {
	nounsFor := make(map[string][]string, len(s.catalog.Intents()))
	for _, in := range s.catalog.Intents() {
		nounsFor[in.Action] = in.Nouns
	}
	type agg struct {
		classes map[string]struct{}
	}
	uses := make(map[string]*agg)
	for _, send := range g.IntentSends() {
		for _, action := range send.Actions {
			if _, known := nounsFor[action]; !known {
				continue
			}
			a, exists := uses[action]
			if !exists {
				a = &agg{classes: make(map[string]struct{})}
				uses[action] = a
			}
			a.classes[send.Site.Class()] = struct{}{}
		}
	}
	keys := make([]string, 0, len(uses))
	for k := range uses {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, action := range keys {
		info.Intents = append(info.Intents, IntentUse{
			Action:  action,
			Nouns:   nounsFor[action],
			Classes: sortedKeys(uses[action].classes),
		})
	}
}

// extractMessages inventories the user-visible message strings (§3.3.2).
func (info *StaticInfo) extractMessages(g *apg.Graph) {
	byText := make(map[string]map[string]struct{})
	for _, m := range g.ErrorMessages() {
		for _, text := range m.Texts {
			set, ok := byText[text]
			if !ok {
				set = make(map[string]struct{})
				byText[text] = set
			}
			set[m.Site.Class()] = struct{}{}
		}
	}
	keys := make([]string, 0, len(byText))
	for k := range byText {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, text := range keys {
		info.Messages = append(info.Messages, MessageUse{
			Text:    text,
			Classes: sortedKeys(byText[text]),
		})
	}
}

// extractMethodPhrases converts method names into verb phrases (§4.1.1) and
// adds code-summarization phrases for methods whose names are meaningless.
func (info *StaticInfo) extractMethodPhrases(s *Solver, g *apg.Graph) {
	for _, m := range g.Methods() {
		phrase := methodNamePhrase(m.Name, shortClassName(m.Class))
		if len(phrase) > 0 {
			info.MethodPhrases = append(info.MethodPhrases, MethodPhrase{
				Method: m,
				Words:  phrase,
				Vec:    s.vec.PhraseVector(phrase),
			})
		}
		// Summarization: when the raw name is meaningless (obfuscated) or
		// the summarizer is trained, add the predicted word bag as a
		// second phrase.
		if s.summarizer != nil && (len(phrase) == 0 || s.summarizeAll) {
			if words := s.summarizer.Predict(m, 3); len(words) > 0 {
				info.MethodPhrases = append(info.MethodPhrases, MethodPhrase{
					Method:      m,
					Words:       words,
					Vec:         s.vec.PhraseVector(words),
					FromSummary: true,
				})
			}
		}
	}
}

// methodNamePhrase converts a method name to a verb phrase per §4.1.1:
// camel-case split; a lone verb gets the class-name words as object;
// lifecycle prefixes ("on") are dropped and the component words appended.
func methodNamePhrase(name, shortClass string) []string {
	words := textproc.SplitIdentifier(name)
	if len(words) == 0 {
		return nil
	}
	// Obfuscated names ("a", "b") carry no signal; leave them to the
	// summarizer (§3.3.2).
	if len(words) == 1 && len(words[0]) <= 2 {
		return nil
	}
	if words[0] == "on" {
		// Lifecycle / callback: strip "on", combine with component words.
		words = words[1:]
		if len(words) == 0 {
			return nil
		}
		return append(words, textproc.SplitIdentifier(shortClass)...)
	}
	if !pos.LooksLikeVerb(words[0]) {
		// Names that do not start with a verb ("emailValidator") still form
		// a noun phrase worth matching.
		return words
	}
	if len(words) == 1 {
		// Lone verb: object = class-name words ("move" on
		// MessageListFragment → "move message list fragment").
		return append(words, textproc.SplitIdentifier(shortClass)...)
	}
	return words
}

func shortClassName(class string) string {
	if i := strings.LastIndexByte(class, '.'); i >= 0 {
		return class[i+1:]
	}
	return class
}

func sortStrings(s []string) { sort.Strings(s) }

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}
