package core

import (
	"testing"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/code2vec"
)

// newTrainedSummarizer trains a Code2vec model on a release and fails the
// test when the release carries no usable names.
func newTrainedSummarizer(t *testing.T, r *apk.Release) *code2vec.Model {
	t.Helper()
	m := code2vec.NewModel()
	m.TrainRelease(r)
	if m.VocabSize() == 0 {
		t.Fatal("summarizer training produced empty vocabulary")
	}
	return m
}
