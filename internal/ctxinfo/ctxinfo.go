// Package ctxinfo defines the context-information taxonomy of Table 1: the
// ten kinds of context users include when describing function errors. Both
// the synthetic review generator (which plants context) and the localizer
// (which detects it) share this vocabulary.
package ctxinfo

// Type is a context-information category from Table 1.
type Type int

// The ten context types of Table 1.
const (
	AppSpecificTask Type = iota + 1
	UpdatingApp
	GUI
	ErrorMessage
	OpeningApp
	RegisteringAccount
	APIURIIntent
	GeneralTask
	Exception
	Other
)

// String returns the Table 1 row label.
func (t Type) String() string {
	switch t {
	case AppSpecificTask:
		return "App Specific Task"
	case UpdatingApp:
		return "Updating App"
	case GUI:
		return "GUI"
	case ErrorMessage:
		return "Error Message"
	case OpeningApp:
		return "Opening App"
	case RegisteringAccount:
		return "Registering Account"
	case APIURIIntent:
		return "API/URI/intent"
	case GeneralTask:
		return "General Task"
	case Exception:
		return "Exception"
	case Other:
		return "Other"
	default:
		return "Unknown"
	}
}

// All lists the ten types in Table 1 order.
func All() []Type {
	return []Type{AppSpecificTask, UpdatingApp, GUI, ErrorMessage, OpeningApp,
		RegisteringAccount, APIURIIntent, GeneralTask, Exception, Other}
}

// Table1Percent returns the Table 1 share of function-error reviews that
// carry this context type, used by the review generator to shape its mix.
func (t Type) Table1Percent() float64 {
	switch t {
	case AppSpecificTask:
		return 30.4
	case UpdatingApp:
		return 8.8
	case GUI:
		return 6.0
	case ErrorMessage:
		return 10.8
	case OpeningApp:
		return 3.2
	case RegisteringAccount:
		return 1.6
	case APIURIIntent:
		return 9.6
	case GeneralTask:
		return 5.6
	case Exception:
		return 0.8
	case Other:
		return 23.2
	default:
		return 0
	}
}
