package experiments

import (
	"fmt"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/code2vec"
	"reviewsolver/internal/core"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
	"reviewsolver/internal/wordvec"
)

// neutralAnalyzer disables the §3.2.3 sentiment filter by classifying every
// clause as neutral (so nothing is discarded).
type neutralAnalyzer struct{}

func (neutralAnalyzer) Classify(string) sentiment.Polarity { return sentiment.Neutral }
func (neutralAnalyzer) Name() string                       { return "pass-through" }

// Ablations measures the contribution of each design choice DESIGN.md calls
// out: negation-aware classifier features (§3.2.2), semantic vs exact
// phrase matching (§4.1.1), Code2vec summaries on obfuscated bytecode
// (§3.3.2), and sentiment-based positive-clause filtering (§3.2.3).
func (r *Runner) Ablations() *Table {
	t := &Table{ID: "Ablations", Title: "Contribution of each design choice",
		Header: []string{"Design choice", "Metric", "With", "Without"}}

	r.ablateNegationFilter(t)
	r.ablateSemanticMatching(t)
	r.ablateSummarizer(t)
	r.ablateSentimentFilter(t)
	return t
}

// ablateNegationFilter compares classifier false positives on
// negated-error-word praise with and without the typed-dependency filter.
func (r *Runner) ablateNegationFilter(t *Table) {
	// Train on the template-only corpus: the effect of the feature filter
	// is visible when the classifier has not already been hardened by
	// tricky negatives.
	train := synth.PlainCorpus(r.Seed, 1400)
	probes := []string{
		"love it, the app does not contain any bugs",
		"no bugs and no errors at all, works perfectly",
		"zero errors and zero problems, amazing design",
		"best app ever, no issues, no errors, no problems",
		"no problems whatsoever, five stars, love it",
		"without any glitch and without bugs, beautiful",
		"no errors, no faults, works perfectly every day",
		"great app, not one bug and not one error",
	}
	// Naive Bayes is the bag-of-words classifier the paper's §3.2.2
	// discussion targets ("the classifier will regard the sentence of
	// Fig. 2 as a function error review by mistake").
	countFP := func(vec *textclass.Vectorizer) int {
		xs, ys := vec.TransformAll(train)
		clf := textclass.NewNaiveBayes()
		clf.Fit(xs, ys)
		fp := 0
		for _, p := range probes {
			if clf.Predict(vec.Transform(p)) {
				fp++
			}
		}
		return fp
	}
	withVec := textclass.NewVectorizer()
	withVec.Fit(train)
	withoutVec := textclass.NewVectorizer(textclass.WithoutNegationFiltering())
	withoutVec.Fit(train)
	t.AddRow("negation-aware features (§3.2.2)",
		fmt.Sprintf("false positives on %d negated-praise probes", len(probes)),
		itoa(countFP(withVec)), itoa(countFP(withoutVec)))
}

// ablateSemanticMatching compares resolution on one app with the word2vec
// threshold vs a near-exact (0.999) threshold that only matches identical
// vocabulary.
func (r *Runner) ablateSemanticMatching(t *Table) {
	data := synth.GenerateSample(r.Seed)
	count := func(s *core.Solver) int {
		resolved := 0
		for _, rv := range data.ErrorReviews() {
			res := s.LocalizeReview(data.App, rv.Text, rv.PublishedAt)
			if res.Localized() {
				resolved++
			}
		}
		return resolved
	}
	semantic := core.New()
	exact := core.New(core.WithWordModel(wordvec.NewModel(wordvec.WithThreshold(0.999))))
	t.AddRow("semantic phrase matching (§4.1.1)",
		fmt.Sprintf("error reviews resolved of %d (K-9 Mail)", len(data.ErrorReviews())),
		itoa(count(semantic)), itoa(count(exact)))
}

// ablateSummarizer compares app-specific-task resolution on an obfuscated
// build with and without the Code2vec summarizer.
func (r *Runner) ablateSummarizer(t *Table) {
	data := synth.GenerateSample(r.Seed)
	// The app under analysis ships only a ProGuard-stripped release.
	obfApp := &apk.App{
		Package:  data.App.Package,
		Name:     data.App.Name,
		Releases: []*apk.Release{synth.Obfuscate(data.App.Latest())},
	}

	// Train the summarizer on the other apps' unobfuscated code (the
	// 1,300-F-Droid-apps role).
	model := code2vec.NewModel()
	for _, other := range r.Apps18() {
		if other.Info.Package == data.Info.Package {
			continue
		}
		model.TrainRelease(other.App.Latest())
	}

	count := func(s *core.Solver) int {
		resolved := 0
		for _, rv := range data.ErrorReviews() {
			res := s.LocalizeReview(obfApp, rv.Text, rv.PublishedAt)
			for _, m := range res.Mappings {
				if m.Context.String() == "App Specific Task" {
					resolved++
					break
				}
			}
		}
		return resolved
	}
	with := core.New(core.WithSummarizer(model))
	without := core.New()
	t.AddRow("Code2vec summaries on obfuscated APK (§3.3.2)",
		"reviews resolved via App Specific Task",
		itoa(count(with)), itoa(count(without)))
}

// ablateSentimentFilter compares false mappings sourced from positive
// clauses with and without the §3.2.3 filter.
func (r *Runner) ablateSentimentFilter(t *Table) {
	data := synth.GenerateSample(r.Seed)
	// Reviews whose positive clause names a feature unrelated to the
	// complaint: without sentiment filtering, the praised feature produces
	// a false mapping.
	probes := []string{
		"I love how easy it is to verify certificate. The app crashed today.",
		"Sending email works perfectly and i adore it. Sometimes not working though.",
		"The fetch mail feature is amazing. Crash after crash lately.",
		"Great that i can backup sms so easily. It freezes constantly now.",
	}
	count := func(s *core.Solver) int {
		mappings := 0
		when := data.App.Latest().ReleasedAt.AddDate(0, 0, 1)
		for _, p := range probes {
			res := s.LocalizeReview(data.App, p, when)
			mappings += len(res.Mappings)
		}
		return mappings
	}
	with := core.New()
	without := core.New(core.WithSentimentAnalyzer(neutralAnalyzer{}))
	t.AddRow("sentiment clause filtering (§3.2.3)",
		"mappings from praise-contaminated reviews (fewer is better)",
		itoa(count(with)), itoa(count(without)))
}
