package experiments

import (
	"strconv"
	"testing"
)

func TestAblationsDirections(t *testing.T) {
	tab := sharedRunner.Ablations()
	if len(tab.Rows) != 4 {
		t.Fatalf("ablation rows = %d, want 4", len(tab.Rows))
	}
	get := func(row []string, col int) int {
		n, err := strconv.Atoi(row[col])
		if err != nil {
			t.Fatalf("bad cell %q", row[col])
		}
		return n
	}
	for _, row := range tab.Rows {
		with, without := get(row, 2), get(row, 3)
		switch row[0] {
		case "negation-aware features (§3.2.2)",
			"sentiment clause filtering (§3.2.3)":
			// Fewer false positives / false mappings is better.
			if with >= without {
				t.Errorf("%s: with=%d should beat without=%d", row[0], with, without)
			}
		default:
			// More resolved reviews is better.
			if with <= without {
				t.Errorf("%s: with=%d should beat without=%d", row[0], with, without)
			}
		}
	}
}
