// Package experiments regenerates every table of the paper's evaluation
// (§5, Tables 1–16) over the synthetic evaluation universe. Each TableNN
// method returns a formatted Table whose rows mirror the paper's layout;
// EXPERIMENTS.md records the paper-reported values next to these measured
// ones.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated experiment table.
type Table struct {
	// ID is the paper table number ("Table 8").
	ID string
	// Title is the caption.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows.
	Rows [][]string
	// Notes carry free-form remarks (e.g. shape checks).
	Notes []string
}

// AddRow appends a row of stringable cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

func pct(num, den int) string {
	if den == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
