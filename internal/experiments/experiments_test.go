package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// sharedRunner is reused across tests in this package: the evaluation over
// 28 apps is the expensive part and is deterministic.
var sharedRunner = NewRunner(1)

func cellInt(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("cell %q is not an int: %v", s, err)
	}
	return n
}

func totalsRow(t *testing.T, tab *Table) []string {
	t.Helper()
	for _, row := range tab.Rows {
		for _, c := range row {
			if c == "Total" {
				return row
			}
		}
	}
	t.Fatalf("%s has no Total row", tab.ID)
	return nil
}

func TestTable1Shape(t *testing.T) {
	tab := sharedRunner.Table1()
	if len(tab.Rows) != 10 {
		t.Fatalf("Table 1 rows = %d, want 10 context types", len(tab.Rows))
	}
	counts := map[string]int{}
	for _, row := range tab.Rows {
		counts[row[0]] = cellInt(t, row[1])
	}
	if counts["App Specific Task"] <= counts["Exception"] {
		t.Errorf("Table 1 shape off: %v", counts)
	}
}

func TestTable2BoostedTreesCompetitive(t *testing.T) {
	tab := sharedRunner.Table2()
	if len(tab.Rows) != 5 {
		t.Fatalf("Table 2 rows = %d", len(tab.Rows))
	}
	f1 := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad F1 cell %q", row[3])
		}
		f1[row[0]] = v
	}
	if f1["Boosted regression trees"] < 85 {
		t.Errorf("BRT F1 = %.1f, want >= 85", f1["Boosted regression trees"])
	}
}

func TestTable3MatchesPaperCounts(t *testing.T) {
	tab := sharedRunner.Table3()
	want := map[string][2]int{
		"1": {150, 112}, "2": {97, 64}, "3": {118, 75}, "4": {155, 64}, "5": {380, 18},
	}
	for _, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			continue
		}
		if cellInt(t, row[1]) != w[0] || cellInt(t, row[2]) != w[1] {
			t.Errorf("Table 3 row %s = %v, want %v", row[0], row[1:], w)
		}
	}
}

func TestTable4SentiStrengthDominates(t *testing.T) {
	tab := sharedRunner.Table4()
	tot := totalsRow(t, tab)
	ss, nltk, stanford := cellInt(t, tot[3]), cellInt(t, tot[4]), cellInt(t, tot[5])
	if ss <= nltk || ss <= stanford {
		t.Errorf("Table 4 shape: SentiStrength=%d NLTK=%d Stanford=%d", ss, nltk, stanford)
	}
	manual := cellInt(t, tot[2])
	if ss > manual {
		t.Errorf("tool found more negatives (%d) than manual truth (%d)", ss, manual)
	}
}

func TestTable5AllPatternsMatched(t *testing.T) {
	tab := sharedRunner.Table5()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 5 rows = %d", len(tab.Rows))
	}
	total := 0
	for _, row := range tab.Rows {
		total += cellInt(t, row[2])
	}
	if total < 90 {
		t.Errorf("patterns matched %d/100 sentences, want >= 90", total)
	}
}

func TestTable6Inventory(t *testing.T) {
	tab := sharedRunner.Table6()
	if len(tab.Rows) != 18 {
		t.Errorf("Table 6 rows = %d, want 18", len(tab.Rows))
	}
}

func TestTable7MaalejRecallLower(t *testing.T) {
	tab := sharedRunner.Table7()
	if len(tab.Rows) != 2 {
		t.Fatalf("Table 7 rows = %d", len(tab.Rows))
	}
	recall := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatalf("bad recall cell %q", row[2])
		}
		return v
	}
	ciu, maa := recall(tab.Rows[0]), recall(tab.Rows[1])
	if maa >= ciu {
		t.Errorf("Maalej recall (%.1f) should trail Ciurumelea (%.1f) due to implicit errors", maa, ciu)
	}
	if ciu < 70 {
		t.Errorf("Ciurumelea recall = %.1f, want >= 70", ciu)
	}
}

func TestTable8RSBeatsBaselines(t *testing.T) {
	tab := sharedRunner.Table8()
	if len(tab.Rows) != 9 { // 8 apps + total
		t.Fatalf("Table 8 rows = %d, want 9", len(tab.Rows))
	}
	tot := totalsRow(t, tab)
	total, rs, ca, w2c := cellInt(t, tot[2]), cellInt(t, tot[3]), cellInt(t, tot[4]), cellInt(t, tot[5])
	if total == 0 {
		t.Fatal("no ground-truth pairs")
	}
	if !(rs > w2c && w2c > ca) {
		t.Errorf("Table 8 ordering violated: RS=%d W2C=%d CA=%d", rs, w2c, ca)
	}
	if rs < total/20 {
		t.Errorf("RS recovered %d/%d GT pairs — too few", rs, total)
	}
}

func TestTable9RSBeatsBaselines(t *testing.T) {
	tab := sharedRunner.Table9()
	if len(tab.Rows) != 7 { // 6 apps + total
		t.Fatalf("Table 9 rows = %d, want 7", len(tab.Rows))
	}
	tot := totalsRow(t, tab)
	rs, ca := cellInt(t, tot[3]), cellInt(t, tot[4])
	if rs <= ca {
		t.Errorf("Table 9 ordering violated: RS=%d CA=%d", rs, ca)
	}
}

func TestTable10Complementarity(t *testing.T) {
	tab := sharedRunner.Table10()
	if len(tab.Rows) != 2 {
		t.Fatalf("Table 10 rows = %d", len(tab.Rows))
	}
	// RS∩¬CA must dominate RS∩CA (RS finds mappings CA cannot).
	bug := tab.Rows[0]
	if cellInt(t, bug[2]) <= cellInt(t, bug[1]) {
		t.Errorf("RS∩¬CA (%s) should exceed RS∩CA (%s)", bug[2], bug[1])
	}
}

func TestTable11ResolutionRates(t *testing.T) {
	tab := sharedRunner.Table11()
	if len(tab.Rows) != 19 {
		t.Fatalf("Table 11 rows = %d, want 19", len(tab.Rows))
	}
	tot := totalsRow(t, tab)
	errN, rs, ca := cellInt(t, tot[2]), cellInt(t, tot[3]), cellInt(t, tot[4])
	rsRate := float64(rs) / float64(errN)
	caRate := float64(ca) / float64(errN)
	if rsRate < 0.40 || rsRate > 0.80 {
		t.Errorf("RS resolution rate = %.2f, want ≈ 0.58 (paper 57.9%%)", rsRate)
	}
	if caRate >= rsRate/2 {
		t.Errorf("CA rate (%.2f) should be far below RS (%.2f)", caRate, rsRate)
	}
}

func TestTable12ContextShape(t *testing.T) {
	tab := sharedRunner.Table12()
	counts := map[string]int{}
	for _, row := range tab.Rows {
		counts[row[0]] = cellInt(t, row[1])
	}
	if counts["App Specific Task"] == 0 || counts["General Task"] == 0 {
		t.Errorf("dominant contexts empty: %v", counts)
	}
	if counts["Exception"] > counts["App Specific Task"] {
		t.Errorf("Exception should be rare: %v", counts)
	}
}

func TestTable13Precision(t *testing.T) {
	tab := sharedRunner.Table13()
	tot := totalsRow(t, tab)
	parts := strings.Split(tot[2], "/")
	correct, checked := cellInt(t, parts[0]), cellInt(t, parts[1])
	if checked == 0 {
		t.Fatal("no mappings checked")
	}
	prec := float64(correct) / float64(checked)
	if prec < 0.45 || prec > 0.95 {
		t.Errorf("precision = %.2f (%d/%d), want ≈ 0.70", prec, correct, checked)
	}
}

func TestTable14AdditionalApps(t *testing.T) {
	tab := sharedRunner.Table14()
	if len(tab.Rows) != 11 {
		t.Fatalf("Table 14 rows = %d, want 11", len(tab.Rows))
	}
	tot := totalsRow(t, tab)
	rs, ca := cellInt(t, tot[3]), cellInt(t, tot[4])
	if rs <= ca {
		t.Errorf("Table 14 ordering violated: RS=%d CA=%d", rs, ca)
	}
}

func TestTable15Timing(t *testing.T) {
	tab := sharedRunner.Table15()
	if len(tab.Rows) != 9 {
		t.Fatalf("Table 15 rows = %d, want 9", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] == "" {
			t.Errorf("context %s has empty timing", row[0])
		}
	}
}

func TestTable16IOS(t *testing.T) {
	tab := sharedRunner.Table16()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 16 rows = %d, want 6", len(tab.Rows))
	}
	tot := totalsRow(t, tab)
	if cellInt(t, tot[1]) != 1121 {
		t.Errorf("iOS review total = %s, want 1121", tot[1])
	}
}

func TestTableByNumber(t *testing.T) {
	if _, err := sharedRunner.TableByNumber(0); err == nil {
		t.Error("table 0 should error")
	}
	tab, err := sharedRunner.TableByNumber(6)
	if err != nil || tab.ID != "Table 6" {
		t.Errorf("TableByNumber(6) = %v, %v", tab, err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := sharedRunner.Table6()
	text := tab.String()
	if !strings.Contains(text, "Table 6") || !strings.Contains(text, "K-9 Mail") {
		t.Errorf("text rendering incomplete:\n%s", text)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| APK Id |") && !strings.Contains(md, "APK Id |") {
		t.Errorf("markdown rendering incomplete:\n%s", md)
	}
}
