package experiments

import (
	"sort"
	"time"

	"reviewsolver/internal/baseline"
	"reviewsolver/internal/core"
	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

// Runner holds the lazily-built shared state of all experiments:
// generated app corpora, the trained solver, and the per-app evaluation
// results.
type Runner struct {
	// Seed drives every generator; the default experiments use 1.
	Seed int64

	apps18 []*synth.AppData
	apps10 []*synth.AppData
	solver *core.Solver

	eval18 []*appEval
	eval10 []*appEval
}

// NewRunner creates a runner with the given seed.
func NewRunner(seed int64) *Runner {
	return &Runner{Seed: seed}
}

// Apps18 returns (building on first use) the Table 6 corpus.
func (r *Runner) Apps18() []*synth.AppData {
	if r.apps18 == nil {
		r.apps18 = synth.GenerateTable6(r.Seed)
	}
	return r.apps18
}

// Apps10 returns the Table 14 corpus.
func (r *Runner) Apps10() []*synth.AppData {
	if r.apps10 == nil {
		r.apps10 = synth.GenerateTable14(r.Seed)
	}
	return r.apps10
}

// Solver returns the shared trained ReviewSolver.
func (r *Runner) Solver() *core.Solver {
	if r.solver == nil {
		vec, clf := textclass.TrainOn(synth.TrainingCorpus(r.Seed),
			func() textclass.Classifier { return textclass.NewBoostedTrees() })
		r.solver = core.New(core.WithClassifier(vec, clf))
	}
	return r.solver
}

// reviewEval is one review's evaluation record.
type reviewEval struct {
	review synth.Review
	// detected is the RS classifier decision.
	detected bool
	// rs holds the ReviewSolver result (nil when not detected).
	rs *core.Result
	// rsClasses are RS's recommended classes (top-N).
	rsClasses map[string]struct{}
	// caClasses / w2cClasses are the baselines' recommendations.
	caClasses  map[string]struct{}
	w2cClasses map[string]struct{}
}

// appEval is one app's full evaluation.
type appEval struct {
	data    *synth.AppData
	reviews []*reviewEval
	// detectedErr counts classifier-detected error reviews.
	detectedErr int
}

// evaluate runs RS + baselines over one app corpus.
func (r *Runner) evaluate(data *synth.AppData) *appEval {
	s := r.Solver()
	ev := &appEval{data: data}

	// Classifier pass.
	var detectedTexts []string
	var detectedIdx []int
	for i, rev := range data.Reviews {
		re := &reviewEval{review: rev, detected: s.IsErrorReview(rev.Text)}
		ev.reviews = append(ev.reviews, re)
		if re.detected {
			ev.detectedErr++
			detectedTexts = append(detectedTexts, rev.Text)
			detectedIdx = append(detectedIdx, i)
		}
	}

	// ReviewSolver pass over detected reviews.
	for _, i := range detectedIdx {
		re := ev.reviews[i]
		res := s.LocalizeReview(data.App, re.review.Text, re.review.PublishedAt)
		re.rs = res
		re.rsClasses = make(map[string]struct{}, len(res.Ranked))
		for _, rc := range res.Ranked {
			re.rsClasses[rc.Class] = struct{}{}
		}
	}

	// Baselines run on the same detected reviews against the latest
	// release (both operate on a single source snapshot).
	release := data.App.Latest()
	ca := baseline.NewChangeAdvisor()
	caOut := ca.MapReviews(detectedTexts, release)
	for k, i := range detectedIdx {
		ev.reviews[i].caClasses = toSet(caOut[k])
	}
	if len(data.BugReports) > 0 {
		var bugs []baseline.BugText
		for _, br := range data.BugReports {
			bugs = append(bugs, baseline.BugText{Title: br.Title, Body: br.Body})
		}
		w2c := baseline.NewWhere2Change()
		w2cOut := w2c.MapReviews(detectedTexts, bugs, release)
		for k, i := range detectedIdx {
			ev.reviews[i].w2cClasses = toSet(w2cOut[k])
		}
	}
	return ev
}

func toSet(ss []string) map[string]struct{} {
	if len(ss) == 0 {
		return nil
	}
	out := make(map[string]struct{}, len(ss))
	for _, s := range ss {
		out[s] = struct{}{}
	}
	return out
}

// Eval18 returns (computing on first use) the Table 6 corpus evaluation.
func (r *Runner) Eval18() []*appEval {
	if r.eval18 == nil {
		for _, data := range r.Apps18() {
			r.eval18 = append(r.eval18, r.evaluate(data))
		}
	}
	return r.eval18
}

// Eval10 returns the Table 14 corpus evaluation.
func (r *Runner) Eval10() []*appEval {
	if r.eval10 == nil {
		for _, data := range r.Apps10() {
			r.eval10 = append(r.eval10, r.evaluate(data))
		}
	}
	return r.eval10
}

// gtPair is one ground-truth (review, class) mapping.
type gtPair struct {
	reviewIdx int
	class     string
}

// groundTruthPairs enumerates the ground-truth mappings of an app under one
// of the two ground-truth constructions.
func groundTruthPairs(ev *appEval, useBugReports bool) []gtPair {
	var out []gtPair
	for i, re := range ev.reviews {
		if !re.review.IsError || re.review.FaultID < 0 {
			continue
		}
		fault, ok := ev.data.FaultByID(re.review.FaultID)
		if !ok {
			continue
		}
		if useBugReports {
			for _, br := range ev.data.BugReports {
				if br.FaultID != fault.ID {
					continue
				}
				for _, cls := range br.FixedClasses {
					out = append(out, gtPair{reviewIdx: i, class: cls})
				}
			}
		} else {
			for _, note := range ev.data.ReleaseNotes {
				fixed := false
				for _, id := range note.FaultIDs {
					if id == fault.ID {
						fixed = true
					}
				}
				if !fixed {
					continue
				}
				for _, cls := range note.ChangedClasses {
					out = append(out, gtPair{reviewIdx: i, class: cls})
				}
			}
		}
	}
	return out
}

// pairStats counts how many ground-truth pairs each system recovers.
type pairStats struct {
	total, rs, ca, w2c int
	// overlap counters for Table 10.
	rsAndCA, rsNotCA, caNotRS    int
	rsAndW2C, rsNotW2C, w2cNotRS int
	// errorReviews counts the manually analyzable error reviews.
	errorReviews int
}

func collectPairStats(ev *appEval, useBugReports bool) pairStats {
	var st pairStats
	for _, re := range ev.reviews {
		if re.review.IsError {
			st.errorReviews++
		}
	}
	for _, p := range groundTruthPairs(ev, useBugReports) {
		st.total++
		re := ev.reviews[p.reviewIdx]
		_, inRS := re.rsClasses[p.class]
		_, inCA := re.caClasses[p.class]
		_, inW2C := re.w2cClasses[p.class]
		if inRS {
			st.rs++
		}
		if inCA {
			st.ca++
		}
		if inW2C {
			st.w2c++
		}
		switch {
		case inRS && inCA:
			st.rsAndCA++
		case inRS && !inCA:
			st.rsNotCA++
		case !inRS && inCA:
			st.caNotRS++
		}
		switch {
		case inRS && inW2C:
			st.rsAndW2C++
		case inRS && !inW2C:
			st.rsNotW2C++
		case !inRS && inW2C:
			st.w2cNotRS++
		}
	}
	return st
}

// localizerTiming measures the average per-review wall time of one context
// localizer over a review sample (Table 15).
func (r *Runner) localizerTiming(ctx ctxinfo.Type, sample int) time.Duration {
	s := r.Solver()
	evs := r.Eval18()
	var total time.Duration
	n := 0
	for _, ev := range evs {
		release := ev.data.App.Latest()
		info := s.StaticFor(release)
		var previous = release
		if len(ev.data.App.Releases) > 1 {
			previous = ev.data.App.Releases[len(ev.data.App.Releases)-2]
		}
		for _, re := range ev.reviews {
			if !re.detected || re.rs == nil || re.rs.Analysis == nil {
				continue
			}
			start := time.Now()
			s.LocalizeByContext(ctx, re.rs.Analysis, info, previous, release)
			total += time.Since(start)
			n++
			if n >= sample {
				break
			}
		}
		if n >= sample {
			break
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

// contextOf lists the distinct contexts of a result's mappings.
func contextsOf(res *core.Result) []ctxinfo.Type {
	if res == nil {
		return nil
	}
	set := make(map[ctxinfo.Type]struct{})
	for _, m := range res.Mappings {
		set[m.Context] = struct{}{}
	}
	out := make([]ctxinfo.Type, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
