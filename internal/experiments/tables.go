package experiments

import (
	"fmt"
	"math/rand"

	"reviewsolver/internal/core"
	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/ios"
	"reviewsolver/internal/phrase"
	"reviewsolver/internal/sentiment"
	"reviewsolver/internal/synth"
	"reviewsolver/internal/textclass"
)

// Table1 measures the context-information distribution of 250 sampled
// function-error reviews.
func (r *Runner) Table1() *Table {
	t := &Table{ID: "Table 1", Title: "Context information in function error reviews",
		Header: []string{"Context", "Count", "Percentage", "Paper"}}
	sample := synth.ContextSample(r.Apps18(), 250, r.Seed+17)
	counts := make(map[ctxinfo.Type]int)
	for _, c := range sample {
		counts[c]++
	}
	for _, c := range ctxinfo.All() {
		t.AddRow(c.String(), itoa(counts[c]), pct(counts[c], len(sample)),
			fmt.Sprintf("%.1f%%", c.Table1Percent()))
	}
	return t
}

// Table2 runs 10-fold cross-validation of the five classifiers on the
// 700+700 training corpus.
func (r *Runner) Table2() *Table {
	t := &Table{ID: "Table 2", Title: "Classifier selection: 10-fold cross-validation",
		Header: []string{"Classifier", "Precision", "Recall", "F1-Score"}}
	docs := synth.TrainingCorpus(r.Seed)
	factories := []textclass.Factory{
		func() textclass.Classifier { return textclass.NewNaiveBayes() },
		func() textclass.Classifier { return textclass.NewRandomForest() },
		func() textclass.Classifier { return textclass.NewSVM() },
		func() textclass.Classifier { return textclass.NewMaxEnt() },
		func() textclass.Classifier { return textclass.NewBoostedTrees() },
	}
	bestF1, bestName := 0.0, ""
	for _, f := range factories {
		name := f().Name()
		m := textclass.CrossValidate(10, docs, f, r.Seed)
		t.AddRow(name, pct(m.TP, m.TP+m.FP), pct(m.TP, m.TP+m.FN),
			fmt.Sprintf("%.1f%%", 100*m.F1))
		if m.F1 > bestF1 {
			bestF1, bestName = m.F1, name
		}
	}
	t.Notes = append(t.Notes, "best classifier: "+bestName+
		" (paper selects Boosted regression trees)")
	return t
}

// Table3 reports the score distribution of the 900-review sample.
func (r *Runner) Table3() *Table {
	t := &Table{ID: "Table 3", Title: "Reviews and function-error reviews per score",
		Header: []string{"Score", "#Review", "#Error Review"}}
	sample := synth.ScoreSample(r.Seed)
	total, errTotal := 0, 0
	perScore := map[int]int{}
	errPerScore := map[int]int{}
	for _, rv := range sample {
		perScore[rv.Score]++
		total++
		if rv.IsError {
			errPerScore[rv.Score]++
			errTotal++
		}
	}
	for score := 1; score <= 5; score++ {
		t.AddRow(itoa(score), itoa(perScore[score]), itoa(errPerScore[score]))
	}
	t.AddRow("Total", itoa(total), itoa(errTotal))
	high := errPerScore[4] + errPerScore[5]
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%s of error reviews have 4-5 stars (paper: 24.6%%) — score filtering would lose them",
		pct(high, errTotal)))
	return t
}

// Table4 compares the negative-review recall of the three sentiment tools.
func (r *Runner) Table4() *Table {
	t := &Table{ID: "Table 4", Title: "Negative reviews found by three sentiment analyzers",
		Header: []string{"Score", "#Review", "#Neg Manual", "#Neg SentiStrength", "#Neg NLTK", "#Neg Stanford"}}
	sample := synth.ScoreSample(r.Seed)
	analyzers := []sentiment.Analyzer{sentiment.SentiStrength{}, sentiment.NLTK{}, sentiment.Stanford{}}
	type row struct {
		total, manual int
		tool          [3]int
	}
	rows := map[int]*row{}
	for s := 1; s <= 5; s++ {
		rows[s] = &row{}
	}
	for _, rv := range sample {
		rr := rows[rv.Score]
		rr.total++
		if rv.IsError {
			rr.manual++
		}
		for i, a := range analyzers {
			if sentiment.HasNegativeSentence(a, rv.Text) {
				rr.tool[i]++
			}
		}
	}
	var tot row
	for s := 1; s <= 5; s++ {
		rr := rows[s]
		t.AddRow(itoa(s), itoa(rr.total), itoa(rr.manual),
			itoa(rr.tool[0]), itoa(rr.tool[1]), itoa(rr.tool[2]))
		tot.total += rr.total
		tot.manual += rr.manual
		for i := range tot.tool {
			tot.tool[i] += rr.tool[i]
		}
	}
	t.AddRow("Total", itoa(tot.total), itoa(tot.manual),
		itoa(tot.tool[0]), itoa(tot.tool[1]), itoa(tot.tool[2]))
	t.Notes = append(t.Notes,
		"shape check: SentiStrength must dominate NLTK and Stanford (paper: 207 vs 51 vs 56)")
	return t
}

// Table5 extracts the NEON semantic patterns from 100 vague-error
// sentences.
func (r *Runner) Table5() *Table {
	t := &Table{ID: "Table 5", Title: "Semantic patterns of vaguely described errors",
		Header: []string{"Pattern", "Shape", "Matches/100", "Example"}}
	rng := rand.New(rand.NewSource(r.Seed + 5))
	subjects := []string{"sync", "login", "search", "upload", "backup", "export", "import", "refresh"}
	verbs := []string{"register", "connect", "sync", "login", "post", "save"}
	sentences := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		switch i % 4 {
		case 0:
			sentences = append(sentences, subjects[rng.Intn(len(subjects))]+" does not work")
		case 1:
			sentences = append(sentences, "i cannot "+verbs[rng.Intn(len(verbs))])
		case 2:
			sentences = append(sentences, subjects[rng.Intn(len(subjects))]+" always fails")
		default:
			sentences = append(sentences, subjects[rng.Intn(len(subjects))]+" button has stopped")
		}
	}
	extractor := phrase.NewExtractor()
	counts := map[phrase.Pattern]int{}
	example := map[phrase.Pattern]string{}
	for _, sent := range sentences {
		for _, m := range phrase.MatchPatterns(extractor.Parse(sent)) {
			counts[m.Pattern]++
			if example[m.Pattern] == "" {
				example[m.Pattern] = sent
			}
		}
	}
	shapes := map[phrase.Pattern]string{
		phrase.P1: "[function] NEG work",
		phrase.P2: "[subject] NEG [function]",
		phrase.P3: "[function] fail",
		phrase.P4: "[function] stopped",
	}
	for _, p := range []phrase.Pattern{phrase.P1, phrase.P2, phrase.P3, phrase.P4} {
		t.AddRow(p.String(), shapes[p], itoa(counts[p]), example[p])
	}
	return t
}

// Table6 prints the app inventory.
func (r *Runner) Table6() *Table {
	t := &Table{ID: "Table 6", Title: "Evaluation apps (generated inventory)",
		Header: []string{"APK Id", "Name", "#APK (paper)", "#APK (generated)", "#Reviews"}}
	apps := r.Apps18()
	for _, a := range apps {
		t.AddRow(a.Info.Package, a.Info.Name, itoa(a.Info.PaperVersions),
			itoa(len(a.App.Releases)), itoa(len(a.Reviews)))
	}
	return t
}

// Table7 evaluates the selected classifier on the Ciurumelea and Maalej
// dataset reproductions.
func (r *Runner) Table7() *Table {
	t := &Table{ID: "Table 7", Title: "Classifying function error reviews on external datasets",
		Header: []string{"Dataset", "Precision", "Recall", "F-1"}}
	train := synth.TrainingCorpus(r.Seed)
	vec, clf := textclass.TrainOn(train, func() textclass.Classifier { return textclass.NewBoostedTrees() })
	for _, ds := range []struct {
		name string
		docs []textclass.Document
	}{
		{"Ciurumelea et al. (199 reviews, 87 errors)", synth.CiurumeleaDataset(r.Seed + 3)},
		{"Maalej et al. (747 reviews, 369 errors)", synth.MaalejDataset(r.Seed + 4)},
	} {
		// Evaluate with the pre-trained model (no refitting per dataset).
		var mm textclass.Metrics
		for _, d := range ds.docs {
			pred := clf.Predict(vec.Transform(d.Text))
			switch {
			case pred && d.Label:
				mm.TP++
			case pred && !d.Label:
				mm.FP++
			case !pred && d.Label:
				mm.FN++
			default:
				mm.TN++
			}
		}
		p := pct(mm.TP, mm.TP+mm.FP)
		rec := pct(mm.TP, mm.TP+mm.FN)
		f1 := 0.0
		if mm.TP > 0 {
			pr := float64(mm.TP) / float64(mm.TP+mm.FP)
			rc := float64(mm.TP) / float64(mm.TP+mm.FN)
			f1 = 2 * pr * rc / (pr + rc)
		}
		t.AddRow(ds.name, p, rec, fmt.Sprintf("%.1f%%", 100*f1))
	}
	t.Notes = append(t.Notes,
		"paper: Ciurumelea 85.4%/87.4%, Maalej 88.3%/66.4% — Maalej recall drops on implicit error reviews")
	return t
}

// Table8 compares RS/CA/W2C on the bug-report ground truth (8 apps).
func (r *Runner) Table8() *Table {
	t := &Table{ID: "Table 8", Title: "Mappings identified vs bug-report ground truth",
		Header: []string{"APK Name", "#Error Reviews", "#Total Map", "#RS Map", "#CA Map", "#W2C Map"}}
	var tot pairStats
	for _, ev := range r.Eval18() {
		if len(ev.data.BugReports) == 0 {
			continue
		}
		st := collectPairStats(ev, true)
		t.AddRow(ev.data.Info.Name, itoa(st.errorReviews), itoa(st.total),
			itoa(st.rs), itoa(st.ca), itoa(st.w2c))
		tot.errorReviews += st.errorReviews
		tot.total += st.total
		tot.rs += st.rs
		tot.ca += st.ca
		tot.w2c += st.w2c
	}
	t.AddRow("Total", itoa(tot.errorReviews), itoa(tot.total),
		itoa(tot.rs), itoa(tot.ca), itoa(tot.w2c))
	t.Notes = append(t.Notes,
		"shape check: RS > W2C > CA (paper totals: 324 / 211 / 102 over 11450 GT pairs)")
	return t
}

// Table9 compares the systems on the release-note ground truth (6 apps).
func (r *Runner) Table9() *Table {
	t := &Table{ID: "Table 9", Title: "Mappings identified vs release-note ground truth",
		Header: []string{"APK Name", "#Error Reviews", "#Total Map", "#RS Map", "#CA Map", "#W2C Map"}}
	var tot pairStats
	for _, ev := range r.Eval18() {
		if len(ev.data.ReleaseNotes) == 0 {
			continue
		}
		st := collectPairStats(ev, false)
		t.AddRow(ev.data.Info.Name, itoa(st.errorReviews), itoa(st.total),
			itoa(st.rs), itoa(st.ca), itoa(st.w2c))
		tot.errorReviews += st.errorReviews
		tot.total += st.total
		tot.rs += st.rs
		tot.ca += st.ca
		tot.w2c += st.w2c
	}
	t.AddRow("Total", itoa(tot.errorReviews), itoa(tot.total),
		itoa(tot.rs), itoa(tot.ca), itoa(tot.w2c))
	t.Notes = append(t.Notes,
		"shape check: RS > W2C > CA (paper totals: 65 / 25 / 15 over 1339 GT pairs)")
	return t
}

// Table10 reports the overlap of recovered ground-truth pairs.
func (r *Runner) Table10() *Table {
	t := &Table{ID: "Table 10", Title: "Distinct mappings found by RS, CA, W2C",
		Header: []string{"Ground truth", "RS∩CA", "RS∩¬CA", "¬RS∩CA", "RS∩W2C", "RS∩¬W2C", "¬RS∩W2C"}}
	for _, gt := range []struct {
		name string
		bug  bool
	}{{"Bug Report", true}, {"Release Note", false}} {
		var tot pairStats
		for _, ev := range r.Eval18() {
			if gt.bug && len(ev.data.BugReports) == 0 {
				continue
			}
			if !gt.bug && len(ev.data.ReleaseNotes) == 0 {
				continue
			}
			st := collectPairStats(ev, gt.bug)
			tot.rsAndCA += st.rsAndCA
			tot.rsNotCA += st.rsNotCA
			tot.caNotRS += st.caNotRS
			tot.rsAndW2C += st.rsAndW2C
			tot.rsNotW2C += st.rsNotW2C
			tot.w2cNotRS += st.w2cNotRS
		}
		t.AddRow(gt.name, itoa(tot.rsAndCA), itoa(tot.rsNotCA), itoa(tot.caNotRS),
			itoa(tot.rsAndW2C), itoa(tot.rsNotW2C), itoa(tot.w2cNotRS))
	}
	t.Notes = append(t.Notes, "the baselines complement RS: ¬RS∩CA and ¬RS∩W2C are non-trivial in the paper")
	return t
}

// Table11 counts the function-error reviews each system resolves to code.
func (r *Runner) Table11() *Table {
	t := &Table{ID: "Table 11", Title: "Function-error reviews resolved per app",
		Header: []string{"#", "APK Name", "#Error Review", "#RS", "#CA", "#W2C"}}
	var totErr, totRS, totCA, totW2C int
	for i, ev := range r.Eval18() {
		rs, ca, w2c := 0, 0, 0
		for _, re := range ev.reviews {
			if !re.detected {
				continue
			}
			if re.rs != nil && re.rs.Localized() {
				rs++
			}
			if len(re.caClasses) > 0 {
				ca++
			}
			if len(re.w2cClasses) > 0 {
				w2c++
			}
		}
		w2cCell := itoa(w2c)
		if len(ev.data.BugReports) == 0 {
			w2cCell = "-"
		}
		t.AddRow(itoa(i+1), ev.data.Info.Name, itoa(ev.detectedErr),
			itoa(rs), itoa(ca), w2cCell)
		totErr += ev.detectedErr
		totRS += rs
		totCA += ca
		totW2C += w2c
	}
	t.AddRow("", "Total", itoa(totErr), itoa(totRS), itoa(totCA), itoa(totW2C))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"RS resolves %s of detected error reviews (paper: 57.9%%); CA %s (paper: 9.3%%)",
		pct(totRS, totErr), pct(totCA, totErr)))
	return t
}

// Table12 attributes resolved reviews to the context information that
// localized them.
func (r *Runner) Table12() *Table {
	t := &Table{ID: "Table 12", Title: "Reviews mapped per context information type",
		Header: []string{"Context", "#Function Error", "Percentage"}}
	counts := make(map[ctxinfo.Type]int)
	detected := 0
	for _, ev := range r.Eval18() {
		for _, re := range ev.reviews {
			if !re.detected {
				continue
			}
			detected++
			for _, c := range contextsOf(re.rs) {
				counts[c]++
			}
		}
	}
	type kv struct {
		c ctxinfo.Type
		n int
	}
	var rows []kv
	for _, c := range ctxinfo.All() {
		if c == ctxinfo.Other {
			continue
		}
		rows = append(rows, kv{c, counts[c]})
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].n > rows[j-1].n; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	for _, row := range rows {
		t.AddRow(row.c.String(), itoa(row.n), pct(row.n, detected))
	}
	t.Notes = append(t.Notes,
		"paper shape: General Task (42.1%) and App Specific Task (28.7%) dominate; Exception is rare")
	return t
}

// Table13 spot-checks mapping precision: 50 sampled mappings per app
// against the generator's fault ground truth.
func (r *Runner) Table13() *Table {
	t := &Table{ID: "Table 13", Title: "Correctness of the review→code mappings",
		Header: []string{"#", "APK Name", "#Correct/Check", "Precision"}}
	rng := rand.New(rand.NewSource(r.Seed + 13))
	totCorrect, totChecked := 0, 0
	for i, ev := range r.Eval18() {
		type judged struct{ correct bool }
		var pool []judged
		for _, re := range ev.reviews {
			if !re.detected || re.rs == nil || !re.rs.Localized() {
				continue
			}
			// A mapping is judged correct when the review's fault classes
			// intersect the recommendation; reviews without a linked fault
			// (vague or misclassified) judge incorrect.
			correct := false
			if re.review.FaultID >= 0 {
				if fault, ok := ev.data.FaultByID(re.review.FaultID); ok {
					for _, cls := range fault.Classes {
						if _, hit := re.rsClasses[cls]; hit {
							correct = true
						}
					}
				}
			}
			pool = append(pool, judged{correct: correct})
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		check := 50
		if len(pool) < check {
			check = len(pool)
		}
		correct := 0
		for _, j := range pool[:check] {
			if j.correct {
				correct++
			}
		}
		t.AddRow(itoa(i+1), ev.data.Info.Name,
			fmt.Sprintf("%d/%d", correct, check), pct(correct, check))
		totCorrect += correct
		totChecked += check
	}
	t.AddRow("", "Total", fmt.Sprintf("%d/%d", totCorrect, totChecked), pct(totCorrect, totChecked))
	t.Notes = append(t.Notes, "paper overall precision: 70.0% (599/856)")
	return t
}

// Table14 runs RS and CA on the 10 additional apps.
func (r *Runner) Table14() *Table {
	t := &Table{ID: "Table 14", Title: "Additional dataset: reviews resolved (overfitting check)",
		Header: []string{"#", "APK Name", "#Error Review", "#RS", "#CA"}}
	var totErr, totRS, totCA int
	for i, ev := range r.Eval10() {
		rs, ca := 0, 0
		for _, re := range ev.reviews {
			if !re.detected {
				continue
			}
			if re.rs != nil && re.rs.Localized() {
				rs++
			}
			if len(re.caClasses) > 0 {
				ca++
			}
		}
		t.AddRow(itoa(19+i), ev.data.Info.Name, itoa(ev.detectedErr), itoa(rs), itoa(ca))
		totErr += ev.detectedErr
		totRS += rs
		totCA += ca
	}
	t.AddRow("", "Total", itoa(totErr), itoa(totRS), itoa(totCA))
	t.Notes = append(t.Notes, "paper totals: 462 error reviews, RS 248, CA 97")
	return t
}

// Table15 measures the average time per review of each context localizer.
func (r *Runner) Table15() *Table {
	t := &Table{ID: "Table 15", Title: "Average localization time per context type",
		Header: []string{"Context", "Average time (per review)"}}
	order := []ctxinfo.Type{
		ctxinfo.GeneralTask, ctxinfo.AppSpecificTask, ctxinfo.APIURIIntent,
		ctxinfo.OpeningApp, ctxinfo.RegisteringAccount, ctxinfo.ErrorMessage,
		ctxinfo.GUI, ctxinfo.UpdatingApp, ctxinfo.Exception,
	}
	for _, c := range order {
		d := r.localizerTiming(c, 200)
		t.AddRow(c.String(), d.String())
	}
	t.Notes = append(t.Notes,
		"paper shape: API/URI/intent, App Specific Task, and General Task dominate the cost")
	return t
}

// Table16 localizes iOS error reviews with the three iOS context types.
func (r *Runner) Table16() *Table {
	t := &Table{ID: "Table 16", Title: "Localizing iOS function-error reviews",
		Header: []string{"iOS App", "#Error Reviews", "#RS Map", "Rate"}}
	loc := ios.NewLocalizer()
	apps := ios.GenerateTable16(r.Seed)
	totReviews, totMapped := 0, 0
	for _, a := range apps {
		mapped := 0
		for _, review := range a.ErrorReviews {
			if len(loc.Localize(a.App, review)) > 0 {
				mapped++
			}
		}
		t.AddRow(a.App.Name, itoa(len(a.ErrorReviews)), itoa(mapped),
			pct(mapped, len(a.ErrorReviews)))
		totReviews += len(a.ErrorReviews)
		totMapped += mapped
	}
	t.AddRow("Total", itoa(totReviews), itoa(totMapped), pct(totMapped, totReviews))
	t.Notes = append(t.Notes, "paper: 366/1121 (32.6%) with three context types")
	return t
}

// Table17 evaluates the change-aware ranking mode on the change-file
// localization workload (Zhou et al., "User Review-Based Change File
// Localization for Mobile Applications"): a function-error review predicts
// the class its fix will touch, and reviews filed right after a release
// should localize against what that release changed. The table compares the
// default §4.3 ranking with core.WithChangeAwareRank — which promotes
// candidate classes touched between the reviewer's release and its
// predecessor to the head of the ranking — on the fault reviews of the
// Table 6 corpus, with the fix-touched worker class as ground truth.
// "Fixing release" rows are the Zhou et al. signal case: the reviewer is
// running exactly the release whose change set contains the future truth.
func (r *Runner) Table17() *Table {
	t := &Table{ID: "Table 17", Title: "Change-aware change-file localization",
		Header: []string{"Review set", "#Reviews",
			"Hit@1 default", "Hit@1 change-aware",
			"Hit@5 default", "Hit@5 change-aware",
			"MRR default", "MRR change-aware"}}

	// A second solver sharing the classifier setup, with the boost on.
	vec, clf := textclass.TrainOn(synth.TrainingCorpus(r.Seed),
		func() textclass.Classifier { return textclass.NewBoostedTrees() })
	ca := core.New(core.WithClassifier(vec, clf), core.WithChangeAwareRank())

	type bucket struct {
		n                          int
		hit1d, hit1c, hit5d, hit5c int
		mrrD, mrrC                 float64
	}
	var onFix, offFix bucket
	score := func(b *bucket, rd, rc int) {
		b.n++
		if rd == 1 {
			b.hit1d++
		}
		if rc == 1 {
			b.hit1c++
		}
		if rd >= 1 && rd <= 5 {
			b.hit5d++
		}
		if rc >= 1 && rc <= 5 {
			b.hit5c++
		}
		if rd > 0 {
			b.mrrD += 1 / float64(rd)
		}
		if rc > 0 {
			b.mrrC += 1 / float64(rc)
		}
	}

	for _, ev := range r.Eval18() {
		app := ev.data.App
		faults := make(map[int]synth.Fault, len(ev.data.Faults))
		for _, f := range ev.data.Faults {
			faults[f.ID] = f
		}
		for _, re := range ev.reviews {
			if !re.detected || re.review.FaultID < 0 || re.rs == nil {
				continue
			}
			fault, ok := faults[re.review.FaultID]
			if !ok || fault.FixedIn < 1 || fault.FixedIn >= len(app.Releases) {
				continue
			}
			truth := fault.Classes[len(fault.Classes)-1]
			current, _, ok := app.ReleaseBefore(re.review.PublishedAt)
			if !ok {
				continue
			}
			rd := rankOf(re.rs.Ranked, truth)
			rc := rankOf(ca.LocalizeReview(app, re.review.Text, re.review.PublishedAt).Ranked, truth)
			if current == app.Releases[fault.FixedIn] {
				score(&onFix, rd, rc)
			} else {
				score(&offFix, rd, rc)
			}
		}
	}

	row := func(name string, b bucket) {
		mrrD, mrrC := 0.0, 0.0
		if b.n > 0 {
			mrrD, mrrC = b.mrrD/float64(b.n), b.mrrC/float64(b.n)
		}
		t.AddRow(name, itoa(b.n),
			pct(b.hit1d, b.n), pct(b.hit1c, b.n),
			pct(b.hit5d, b.n), pct(b.hit5c, b.n),
			fmt.Sprintf("%.3f", mrrD), fmt.Sprintf("%.3f", mrrC))
	}
	all := onFix
	all.n += offFix.n
	all.hit1d += offFix.hit1d
	all.hit1c += offFix.hit1c
	all.hit5d += offFix.hit5d
	all.hit5c += offFix.hit5c
	all.mrrD += offFix.mrrD
	all.mrrC += offFix.mrrC
	row("Filed on fixing release", onFix)
	row("Filed on other releases", offFix)
	row("All fault reviews", all)
	t.Notes = append(t.Notes,
		"shape check: change-aware >= default on the fixing-release rows, unchanged elsewhere (boost only reorders when a candidate actually changed)")
	return t
}

// rankOf returns the 1-based rank of class in the ranked list, 0 if absent.
func rankOf(ranked []core.RankedClass, class string) int {
	for i, rc := range ranked {
		if rc.Class == class {
			return i + 1
		}
	}
	return 0
}

// AllTables runs every table in order.
func (r *Runner) AllTables() []*Table {
	return []*Table{
		r.Table1(), r.Table2(), r.Table3(), r.Table4(), r.Table5(),
		r.Table6(), r.Table7(), r.Table8(), r.Table9(), r.Table10(),
		r.Table11(), r.Table12(), r.Table13(), r.Table14(), r.Table15(),
		r.Table16(), r.Table17(),
	}
}

// TableByNumber runs a single table (1–17; 17 is the change-file
// localization extension, not a paper table).
func (r *Runner) TableByNumber(n int) (*Table, error) {
	switch n {
	case 1:
		return r.Table1(), nil
	case 2:
		return r.Table2(), nil
	case 3:
		return r.Table3(), nil
	case 4:
		return r.Table4(), nil
	case 5:
		return r.Table5(), nil
	case 6:
		return r.Table6(), nil
	case 7:
		return r.Table7(), nil
	case 8:
		return r.Table8(), nil
	case 9:
		return r.Table9(), nil
	case 10:
		return r.Table10(), nil
	case 11:
		return r.Table11(), nil
	case 12:
		return r.Table12(), nil
	case 13:
		return r.Table13(), nil
	case 14:
		return r.Table14(), nil
	case 15:
		return r.Table15(), nil
	case 16:
		return r.Table16(), nil
	case 17:
		return r.Table17(), nil
	default:
		return nil, fmt.Errorf("no table %d (valid: 1-17)", n)
	}
}
