// Package gui recovers the GUI structure of each activity, standing in for
// GATOR (§3.3.2): it joins the manifest (activities), the layout resources
// (widget trees, parent–child structure), and the string resources (text
// values), and additionally infers dynamically-set texts from the
// activity's code (const-strings flowing into setText/setHint/setTitle),
// which is GATOR's constraint-graph role in this IR.
//
// Two kinds of label information come out of the recovery (§3.3.2):
//
//   - visible labels: the android:text / android:hint values shown on
//     screen, with "@string/…" references resolved;
//   - invisible labels: widget-id words, split on underscores/camel case
//     with UI abbreviations expanded ("show_password" → "show password",
//     "reply_btn" → "reply button").
package gui

import (
	"sort"
	"strings"

	"reviewsolver/internal/apg"
	"reviewsolver/internal/apk"
	"reviewsolver/internal/textproc"
)

// ActivityGUI is the recovered GUI of one activity.
type ActivityGUI struct {
	// Activity is the fully qualified activity class name.
	Activity string
	// LayoutID is the inflated layout resource ("" if none declared).
	LayoutID string
	// Visible holds the texts shown in the GUI (resolved).
	Visible []string
	// WidgetIDs holds the raw widget id names in the layout.
	WidgetIDs []string
	// InvisibleWords holds, per widget id, the expanded word list.
	InvisibleWords [][]string
}

// VisibleWords returns the lower-cased word set of all visible labels.
func (a *ActivityGUI) VisibleWords() map[string]struct{} {
	out := make(map[string]struct{})
	for _, text := range a.Visible {
		for _, w := range textproc.Words(text) {
			out[w] = struct{}{}
		}
	}
	return out
}

// ContainsVisibleWord reports whether any visible label contains the word.
func (a *ActivityGUI) ContainsVisibleWord(word string) bool {
	_, ok := a.VisibleWords()[strings.ToLower(word)]
	return ok
}

// InvisiblePhrases returns the expanded widget-id word lists joined as
// phrases ("show password", "reply button").
func (a *ActivityGUI) InvisiblePhrases() []string {
	out := make([]string, 0, len(a.InvisibleWords))
	for _, words := range a.InvisibleWords {
		out = append(out, strings.Join(words, " "))
	}
	return out
}

// dynamicTextAPIs are the setters whose string arguments become visible
// labels at runtime.
var dynamicTextAPIs = []struct{ class, method string }{
	{"android.widget.TextView", "setText"},
	{"android.widget.TextView", "setHint"},
	{"android.widget.EditText", "setText"},
	{"android.widget.EditText", "setHint"},
	{"android.widget.Button", "setText"},
	{"android.app.AlertDialog$Builder", "setTitle"},
	{"android.app.Activity", "setTitle"},
}

// Recover reconstructs the GUI of every declared activity of a release.
// The graph parameter supplies the code-side (dynamically created) texts;
// pass nil to recover from layouts only.
func Recover(r *apk.Release, g *apg.Graph) []ActivityGUI {
	out := make([]ActivityGUI, 0, len(r.Manifest.Activities))
	for _, decl := range r.Manifest.Activities {
		out = append(out, RecoverActivity(r, g, decl))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Activity < out[j].Activity })
	return out
}

// RecoverActivity reconstructs the GUI of a single declared activity —
// Recover's per-declaration step, exported so incremental rebuilds can
// re-run it for just the activities a release diff touched. The result is
// identical to the corresponding element Recover produces for the same
// release and graph.
func RecoverActivity(r *apk.Release, g *apg.Graph, decl apk.ActivityDecl) ActivityGUI {
	a := ActivityGUI{Activity: decl.Name, LayoutID: decl.LayoutID}
	if layout, ok := r.LayoutByID(decl.LayoutID); ok {
		layout.Root.Walk(func(w *apk.Widget) {
			if t := r.ResolveString(w.Text); t != "" {
				a.Visible = append(a.Visible, t)
			}
			if h := r.ResolveString(w.Hint); h != "" {
				a.Visible = append(a.Visible, h)
			}
			if w.ID != "" {
				a.WidgetIDs = append(a.WidgetIDs, w.ID)
				words := textproc.ExpandUIWords(textproc.SplitIdentifier(w.ID))
				a.InvisibleWords = append(a.InvisibleWords, words)
			}
		})
	}
	if g != nil {
		a.Visible = append(a.Visible, dynamicTexts(g, decl.Name)...)
		ids, words := dynamicWidgets(g, decl.Name)
		a.WidgetIDs = append(a.WidgetIDs, ids...)
		a.InvisibleWords = append(a.InvisibleWords, words...)
	}
	return a
}

// dynamicTexts collects const-strings flowing into text setters from
// methods of the activity class.
func dynamicTexts(g *apg.Graph, activity string) []string {
	var out []string
	for _, api := range dynamicTextAPIs {
		for _, site := range g.CallSitesOf(api.class, api.method) {
			if site.Class() != activity {
				continue
			}
			out = append(out, g.BackwardStrings(site)...)
		}
	}
	sort.Strings(out)
	return out
}

// dynamicWidgets infers widgets the activity creates in code (GATOR's
// constraint-graph inference): `new android.widget.Button` allocations whose
// local variable name doubles as the widget's invisible label
// ("quotedTextEdit" → quoted text edit).
func dynamicWidgets(g *apg.Graph, activity string) (ids []string, words [][]string) {
	for _, m := range g.Methods() {
		if m.Class != activity {
			continue
		}
		for _, st := range m.Statements {
			if st.Op != apk.OpNew || st.Def == "" {
				continue
			}
			if !strings.HasPrefix(st.InvokeClass, "android.widget.") {
				continue
			}
			ids = append(ids, st.Def)
			words = append(words, textproc.ExpandUIWords(textproc.SplitIdentifier(st.Def)))
		}
	}
	return ids, words
}

// FindByVisibleWord returns the activities whose visible labels contain the
// given word (§4.1.2 case 1 and §4.1.3 type search, §4.1.5 registration
// search).
func FindByVisibleWord(guis []ActivityGUI, word string) []string {
	var out []string
	for i := range guis {
		if guis[i].ContainsVisibleWord(word) {
			out = append(out, guis[i].Activity)
		}
	}
	return out
}

// registrationPhrases are the account-registration texts of §4.1.5.
var registrationPhrases = []string{"sign in", "login", "log in", "register", "sign up", "create account"}

// FindRegistrationActivities returns activities whose visible text contains
// account-registration phrases (§4.1.5).
func FindRegistrationActivities(guis []ActivityGUI) []string {
	var out []string
	for i := range guis {
		joined := " " + strings.ToLower(strings.Join(guis[i].Visible, " | ")) + " "
		for _, p := range registrationPhrases {
			if strings.Contains(joined, p) {
				out = append(out, guis[i].Activity)
				break
			}
		}
	}
	return out
}
