package gui

import (
	"reflect"
	"testing"
	"time"

	"reviewsolver/internal/apg"
	"reviewsolver/internal/apk"
)

func testRelease() *apk.Release {
	b := apk.NewBuilder("com.fsck.k9", "K-9 Mail")
	b.Release("5.2", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.LauncherActivity("com.fsck.k9.activity.Accounts", "accounts")
	b.Activity("com.fsck.k9.activity.EditIdentity", "edit_identity")
	b.Activity("com.fsck.k9.activity.setup.AccountSetupBasics", "account_setup")
	b.Layout("accounts", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "ListView", ID: "accounts_list"},
	}})
	b.Layout("edit_identity", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "EditText", ID: "reply_to", Hint: "@string/reply_hint"},
		{Type: "Button", ID: "save_btn", Text: "Save"},
	}})
	b.Layout("account_setup", apk.Widget{Type: "LinearLayout", Children: []apk.Widget{
		{Type: "EditText", ID: "account_email", Hint: "@string/account_setup_hint"},
		{Type: "CheckBox", ID: "show_password", Text: "@string/show_password_label"},
		{Type: "Button", ID: "login_btn", Text: "Sign in"},
	}})
	b.StringRes("reply_hint", "Reply to address")
	b.StringRes("account_setup_hint", "Email address")
	b.StringRes("show_password_label", "Show password")
	b.Class("com.fsck.k9.activity.Accounts").
		Method("onCreate",
			apk.ConstString("t", "Welcome to K-9"),
			apk.Invoke("", "android.widget.TextView", "setText", "t"))
	return b.Build().Latest()
}

func TestRecoverVisibleLabels(t *testing.T) {
	r := testRelease()
	guis := Recover(r, apg.Build(r))
	var setup *ActivityGUI
	for i := range guis {
		if guis[i].Activity == "com.fsck.k9.activity.setup.AccountSetupBasics" {
			setup = &guis[i]
		}
	}
	if setup == nil {
		t.Fatal("AccountSetupBasics not recovered")
	}
	joined := ""
	for _, v := range setup.Visible {
		joined += v + "|"
	}
	for _, want := range []string{"Email address", "Show password", "Sign in"} {
		found := false
		for _, v := range setup.Visible {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Errorf("visible labels %q missing %q", joined, want)
		}
	}
}

func TestRecoverInvisibleLabels(t *testing.T) {
	r := testRelease()
	guis := Recover(r, nil)
	var edit *ActivityGUI
	for i := range guis {
		if guis[i].Activity == "com.fsck.k9.activity.EditIdentity" {
			edit = &guis[i]
		}
	}
	if edit == nil {
		t.Fatal("EditIdentity not recovered")
	}
	phrases := edit.InvisiblePhrases()
	want := []string{"reply to", "save button"}
	if !reflect.DeepEqual(phrases, want) {
		t.Errorf("invisible phrases = %v, want %v", phrases, want)
	}
}

func TestDynamicTexts(t *testing.T) {
	r := testRelease()
	guis := Recover(r, apg.Build(r))
	var accounts *ActivityGUI
	for i := range guis {
		if guis[i].Activity == "com.fsck.k9.activity.Accounts" {
			accounts = &guis[i]
		}
	}
	if accounts == nil {
		t.Fatal("Accounts not recovered")
	}
	found := false
	for _, v := range accounts.Visible {
		if v == "Welcome to K-9" {
			found = true
		}
	}
	if !found {
		t.Errorf("dynamic text missing from %v", accounts.Visible)
	}
}

func TestFindByVisibleWord(t *testing.T) {
	r := testRelease()
	guis := Recover(r, nil)
	got := FindByVisibleWord(guis, "password")
	want := []string{"com.fsck.k9.activity.setup.AccountSetupBasics"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FindByVisibleWord(password) = %v, want %v", got, want)
	}
	if got := FindByVisibleWord(guis, "nonexistentword"); got != nil {
		t.Errorf("unexpected matches %v", got)
	}
}

func TestFindRegistrationActivities(t *testing.T) {
	r := testRelease()
	guis := Recover(r, nil)
	got := FindRegistrationActivities(guis)
	want := []string{"com.fsck.k9.activity.setup.AccountSetupBasics"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registration activities = %v, want %v", got, want)
	}
}

func TestVisibleWordsLowercase(t *testing.T) {
	r := testRelease()
	guis := Recover(r, nil)
	for i := range guis {
		if guis[i].Activity != "com.fsck.k9.activity.setup.AccountSetupBasics" {
			continue
		}
		if !guis[i].ContainsVisibleWord("EMAIL") {
			t.Error("word containment should be case-insensitive")
		}
	}
}

func TestDynamicWidgets(t *testing.T) {
	b := apk.NewBuilder("com.dyn", "Dyn")
	b.Release("1.0", 1, time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b.LauncherActivity("com.dyn.MainActivity", "main")
	b.Layout("main", apk.Widget{Type: "LinearLayout"})
	b.Class("com.dyn.MainActivity").
		Method("onCreate",
			apk.NewObj("quotedTextEdit", "android.widget.EditText"),
			apk.NewObj("replyBtn", "android.widget.Button"),
			apk.NewObj("helper", "com.dyn.Helper"))
	r := b.Build().Latest()
	guis := Recover(r, apg.Build(r))
	if len(guis) != 1 {
		t.Fatalf("activities = %d", len(guis))
	}
	phrases := guis[0].InvisiblePhrases()
	want := map[string]bool{"quoted text edit": false, "reply button": false}
	for _, p := range phrases {
		if _, ok := want[p]; ok {
			want[p] = true
		}
		if p == "helper" {
			t.Error("non-widget allocation inferred as widget")
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("dynamic widget phrase %q missing from %v", p, phrases)
		}
	}
}

func TestRecoverSortedAndComplete(t *testing.T) {
	r := testRelease()
	guis := Recover(r, nil)
	if len(guis) != 3 {
		t.Fatalf("recovered %d activities, want 3", len(guis))
	}
	for i := 1; i < len(guis); i++ {
		if guis[i-1].Activity > guis[i].Activity {
			t.Fatal("activities not sorted")
		}
	}
}
