package ios

import (
	"fmt"
	"math/rand"
)

// iosFeature is one feature of a generated iOS app.
type iosFeature struct {
	verb, object string
	className    string
	selector     string
	apiCalls     []string
	guiObjects   []GUIObject
}

// appTemplate describes one Table 16 app.
type appTemplate struct {
	name     string
	reviews  int
	features []iosFeature
}

// table16Apps are the five iOS apps of Table 16.
var table16Apps = []appTemplate{
	{
		name: "Nextcloud", reviews: 80,
		features: []iosFeature{
			{verb: "upload", object: "files", className: "NCFileUploader",
				selector:   "uploadFileWithCompletion:",
				apiCalls:   []string{"NSURLSession.uploadTaskWithRequest"},
				guiObjects: []GUIObject{{Name: "uploadButton", Type: "UIButton"}}},
			{verb: "sync", object: "photos", className: "NCAutoUpload",
				selector: "syncPhotoLibrary:",
				apiCalls: []string{"PHPhotoLibrary.performChanges"}},
			{verb: "login", object: "account", className: "NCLoginViewController",
				selector:   "loginWithCredentials:",
				apiCalls:   []string{"LAContext.evaluatePolicy"},
				guiObjects: []GUIObject{{Name: "loginButton", Type: "UIButton"}, {Name: "passwordField", Type: "UITextField"}}},
		},
	},
	{
		name: "WordPress", reviews: 403,
		features: []iosFeature{
			{verb: "upload", object: "photos", className: "WPMediaUploader",
				selector:   "uploadMediaWithCompletion:",
				apiCalls:   []string{"NSURLSession.uploadTaskWithRequest"},
				guiObjects: []GUIObject{{Name: "uploadButton", Type: "UIButton"}}},
			{verb: "post", object: "article", className: "WPPostEditor",
				selector:   "postArticle:",
				apiCalls:   []string{"NSURLSession.dataTaskWithURL"},
				guiObjects: []GUIObject{{Name: "publishButton", Type: "UIBarButtonItem"}}},
			{verb: "open", object: "site", className: "WPReaderViewController",
				selector: "openSiteWithURL:",
				apiCalls: []string{"WKWebView.loadRequest"}},
			{verb: "show", object: "stats", className: "WPStatsViewController",
				selector:   "showStatsScreen:",
				apiCalls:   []string{"NSURLSession.dataTaskWithURL"},
				guiObjects: []GUIObject{{Name: "statsTable", Type: "UITableView"}}},
		},
	},
	{
		name: "Signal", reviews: 304,
		features: []iosFeature{
			{verb: "send", object: "message", className: "SignalMessageSender",
				selector:   "sendMessageToRecipient:",
				apiCalls:   []string{"MFMessageComposeViewController.init"},
				guiObjects: []GUIObject{{Name: "sendButton", Type: "UIButton"}}},
			{verb: "find", object: "contact", className: "SignalContactsFinder",
				selector: "findSystemContact:",
				apiCalls: []string{"CNContactStore.unifiedContactsMatchingPredicate"}},
			{verb: "verify", object: "certificate", className: "SignalTrustStore",
				selector: "verifyCertificateTrust:",
				apiCalls: []string{"SecTrustEvaluate"}},
		},
	},
	{
		name: "Wire", reviews: 156,
		features: []iosFeature{
			{verb: "send", object: "message", className: "WireMessageService",
				selector: "sendTextMessage:",
				apiCalls: []string{"MFMessageComposeViewController.init"}},
			{verb: "play", object: "audio", className: "WireAudioPlayer",
				selector:   "playAudioMessage:",
				apiCalls:   []string{"AVAudioPlayer.play"},
				guiObjects: []GUIObject{{Name: "playButton", Type: "UIButton"}}},
			{verb: "login", object: "account", className: "WireAuthenticator",
				selector: "authenticateUser:",
				apiCalls: []string{"LAContext.evaluatePolicy"}},
		},
	},
	{
		name: "DuckDuckGo", reviews: 178,
		features: []iosFeature{
			{verb: "search", object: "page", className: "DDGSearchController",
				selector:   "searchPageForQuery:",
				apiCalls:   []string{"NSURLSession.dataTaskWithURL"},
				guiObjects: []GUIObject{{Name: "searchBar", Type: "UISearchBar"}}},
			{verb: "open", object: "links", className: "DDGTabViewController",
				selector:   "openURLInNewTab:",
				apiCalls:   []string{"WKWebView.loadRequest"},
				guiObjects: []GUIObject{{Name: "tabsButton", Type: "UIButton"}}},
			{verb: "delete", object: "history", className: "DDGDataClearer",
				selector: "deleteHistoryData:",
				apiCalls: []string{"NSFileManager.removeItemAtPath"}},
		},
	},
}

// GeneratedApp bundles an iOS app with its error reviews.
type GeneratedApp struct {
	App *App
	// ErrorReviews are the function-error reviews of the app.
	ErrorReviews []string
}

// GenerateTable16 generates the five iOS apps and their error-review
// corpora.
func GenerateTable16(seed int64) []GeneratedApp {
	out := make([]GeneratedApp, 0, len(table16Apps))
	for ai, tpl := range table16Apps {
		rng := rand.New(rand.NewSource(seed + int64(ai)*31337))
		app := &App{Name: tpl.name}
		for _, f := range tpl.features {
			app.Classes = append(app.Classes, Class{
				Name: f.className,
				Methods: []Method{
					{Selector: f.selector, APICalls: f.apiCalls},
				},
				GUIObjects: f.guiObjects,
			})
		}
		// Filler classes without review-facing vocabulary.
		for i := 0; i < 4; i++ {
			app.Classes = append(app.Classes, Class{
				Name:    fmt.Sprintf("%sInternalHelper%d", tpl.name, i),
				Methods: []Method{{Selector: "configure:"}},
			})
		}
		g := GeneratedApp{App: app}
		for i := 0; i < tpl.reviews; i++ {
			f := tpl.features[rng.Intn(len(tpl.features))]
			g.ErrorReviews = append(g.ErrorReviews, iosErrorReview(f, rng))
		}
		out = append(out, g)
	}
	return out
}

// iosErrorReview renders a review; roughly two-thirds describe the error
// without localizable context (matching the lower iOS hit rate of Table 16,
// where only three context types are available).
func iosErrorReview(f iosFeature, rng *rand.Rand) string {
	verbObj := f.verb + " " + f.object
	contextful := []string{
		fmt.Sprintf("The app crashes every time i %s.", verbObj),
		fmt.Sprintf("I cannot %s since the update.", verbObj),
		fmt.Sprintf("Fails whenever i try to %s.", verbObj),
	}
	vague := []string{
		"Keeps crashing on my iphone.",
		"Doesn't work after ios update.",
		"The app freezes constantly, unusable.",
		"It logged me out and now everything is broken.",
		"Battery drain is terrible and the app is so slow.",
		"Widget stopped updating, had to reinstall.",
	}
	if rng.Float64() < 0.36 {
		return contextful[rng.Intn(len(contextful))]
	}
	return vague[rng.Intn(len(vague))]
}
