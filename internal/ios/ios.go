// Package ios is the iOS substrate of §6.3: a Class-dump-style app model
// (Objective-C class names, method selectors, GUI object fields, invoked
// framework APIs) and a localizer that uses the three context types the
// paper extracts for iOS apps — "App Specific Task" (class/method names),
// "GUI" (UI-typed object names), and "API" (invoked framework APIs). It
// demonstrates that ReviewSolver's review-analysis and matching layers are
// ecosystem-independent; only the static-analysis layer changes (Table 16).
package ios

import (
	"strings"

	"reviewsolver/internal/phrase"
	"reviewsolver/internal/textproc"
	"reviewsolver/internal/wordvec"
)

// App is one iOS application as recovered by Class-dump.
type App struct {
	// Name is the app name, e.g. "WordPress".
	Name string
	// Classes are the developer classes.
	Classes []Class
}

// Class is one Objective-C class.
type Class struct {
	// Name is the class name, e.g. "WPMediaUploader".
	Name string
	// Methods are the declared method selectors.
	Methods []Method
	// GUIObjects are the fields whose types are UIKit components.
	GUIObjects []GUIObject
}

// Method is one method with the framework APIs its implementation calls.
type Method struct {
	// Selector is the Objective-C selector, e.g.
	// "uploadMediaWithCompletion:".
	Selector string
	// APICalls name invoked framework APIs as "Class.selector".
	APICalls []string
}

// GUIObject is a UIKit-typed field.
type GUIObject struct {
	// Name is the field name, e.g. "replyButton".
	Name string
	// Type is the UIKit type, e.g. "UIButton".
	Type string
}

// FrameworkAPI describes one iOS framework API with its documentation
// phrase, the counterpart of the 6,086 APIs the paper crawls from the iOS
// documentation.
type FrameworkAPI struct {
	Name        string
	Description string
}

// Catalog is the built-in iOS framework API catalog.
var Catalog = []FrameworkAPI{
	{Name: "NSURLSession.dataTaskWithURL", Description: "retrieve the contents of a url and download data from the server"},
	{Name: "NSURLSession.uploadTaskWithRequest", Description: "upload data or a file to the server"},
	{Name: "UIImagePickerController.takePicture", Description: "take a picture with the camera"},
	{Name: "AVAudioPlayer.play", Description: "play audio sound from a file"},
	{Name: "AVPlayer.play", Description: "begin playback of the video or audio media"},
	{Name: "CNContactStore.unifiedContactsMatchingPredicate", Description: "fetch contacts matching the predicate from the address book"},
	{Name: "CLLocationManager.startUpdatingLocation", Description: "start reporting the gps location of the device"},
	{Name: "UIApplication.openURL", Description: "open a url link in the browser"},
	{Name: "NSFileManager.createFileAtPath", Description: "create and save a file on the device storage"},
	{Name: "NSFileManager.removeItemAtPath", Description: "delete a file from the device storage"},
	{Name: "MFMessageComposeViewController.init", Description: "compose and send a text message"},
	{Name: "MFMailComposeViewController.init", Description: "compose and send an email message"},
	{Name: "SecTrustEvaluate", Description: "verify the server certificate trust chain"},
	{Name: "UserDefaults.setObject", Description: "save a value into the user settings preferences"},
	{Name: "WKWebView.loadRequest", Description: "load the web page for the given url request"},
	{Name: "UNUserNotificationCenter.addNotificationRequest", Description: "schedule a notification to show to the user"},
	{Name: "LAContext.evaluatePolicy", Description: "authenticate the user with biometrics to login"},
	{Name: "PHPhotoLibrary.performChanges", Description: "save photos and videos into the photo library"},
}

// Localizer maps reviews of iOS apps to classes using the three extracted
// context types.
type Localizer struct {
	vec       *wordvec.Model
	extractor *phrase.Extractor
	apiVecs   []wordvec.Vector
}

// NewLocalizer builds an iOS localizer.
func NewLocalizer() *Localizer {
	l := &Localizer{
		vec:       wordvec.NewModel(),
		extractor: phrase.NewExtractor(),
	}
	for _, api := range Catalog {
		l.apiVecs = append(l.apiVecs, l.vec.PhraseVector(descWords(api.Description)))
	}
	return l
}

func descWords(desc string) []string {
	var out []string
	for _, w := range textproc.Words(desc) {
		if !textproc.IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// selectorWords splits an Objective-C selector into words
// ("uploadMediaWithCompletion:" → upload media with completion →
// content words only).
func selectorWords(selector string) []string {
	selector = strings.ReplaceAll(selector, ":", " ")
	var out []string
	for _, part := range strings.Fields(selector) {
		for _, w := range textproc.SplitIdentifier(part) {
			switch w {
			case "with", "for", "at", "to", "did", "will", "completion", "handler", "init":
				continue
			}
			if textproc.IsStopword(w) {
				continue
			}
			out = append(out, w)
		}
	}
	return out
}

// Localize returns the classes of the app matched by the review, using the
// three iOS context types of §6.3.
func (l *Localizer) Localize(app *App, review string) []string {
	ex := l.extractor.ExtractSentence(review)
	matched := make(map[string]struct{})

	for _, vp := range ex.VerbPhrases {
		v := l.vec.PhraseVector(vp.Words())

		for ci := range app.Classes {
			cls := &app.Classes[ci]
			// (1) App Specific Task: selector words.
			for _, m := range cls.Methods {
				words := selectorWords(m.Selector)
				if len(words) == 0 {
					continue
				}
				if wordvec.Cosine(v, l.vec.PhraseVector(words)) >= l.vec.Threshold() {
					matched[cls.Name] = struct{}{}
				}
				// (3) API: the method's framework calls vs the catalog.
				for _, call := range m.APICalls {
					if idx := apiIndex(call); idx >= 0 {
						if wordvec.Cosine(v, l.apiVecs[idx]) >= l.vec.Threshold() {
							matched[cls.Name] = struct{}{}
						}
					}
				}
			}
		}
	}

	// (2) GUI: widget noun phrases vs UI object names.
	for _, np := range ex.NounPhrases {
		if len(np.Modifiers) == 0 {
			continue
		}
		if !isUIWord(np.Head) {
			continue
		}
		for ci := range app.Classes {
			cls := &app.Classes[ci]
			for _, obj := range cls.GUIObjects {
				objWords := textproc.SplitIdentifier(obj.Name)
				for _, mod := range np.Modifiers {
					for _, ow := range objWords {
						if ow == mod || l.vec.WordSimilarity(ow, mod) >= l.vec.Threshold() {
							matched[cls.Name] = struct{}{}
						}
					}
				}
			}
		}
	}

	out := make([]string, 0, len(matched))
	for c := range matched {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

func apiIndex(call string) int {
	for i, api := range Catalog {
		if api.Name == call {
			return i
		}
	}
	return -1
}

func isUIWord(w string) bool {
	switch w {
	case "button", "buttons", "menu", "tab", "screen", "page", "icon", "keyboard", "list":
		return true
	}
	return false
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
