package ios

import (
	"reflect"
	"testing"
)

func TestSelectorWords(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"uploadMediaWithCompletion:", []string{"upload", "media"}},
		{"sendMessageToRecipient:", []string{"send", "message", "recipient"}},
		{"clearBrowsingData:", []string{"clear", "browsing", "data"}},
	}
	for _, tt := range tests {
		if got := selectorWords(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("selectorWords(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestLocalizeAppSpecific(t *testing.T) {
	l := NewLocalizer()
	apps := GenerateTable16(1)
	var wordpress *GeneratedApp
	for i := range apps {
		if apps[i].App.Name == "WordPress" {
			wordpress = &apps[i]
		}
	}
	if wordpress == nil {
		t.Fatal("WordPress app missing")
	}
	got := l.Localize(wordpress.App, "The app crashes every time i upload photos.")
	found := false
	for _, cls := range got {
		if cls == "WPMediaUploader" {
			found = true
		}
	}
	if !found {
		t.Errorf("upload photos should map to WPMediaUploader; got %v", got)
	}
}

func TestLocalizeGUI(t *testing.T) {
	l := NewLocalizer()
	apps := GenerateTable16(1)
	ddg := apps[len(apps)-1]
	if ddg.App.Name != "DuckDuckGo" {
		t.Fatal("unexpected app order")
	}
	got := l.Localize(ddg.App, "the tabs button is completely broken")
	found := false
	for _, cls := range got {
		if cls == "DDGTabViewController" {
			found = true
		}
	}
	if !found {
		t.Errorf("tabs button should map to DDGTabViewController; got %v", got)
	}
}

func TestLocalizeVagueReviewUnmapped(t *testing.T) {
	l := NewLocalizer()
	apps := GenerateTable16(1)
	got := l.Localize(apps[0].App, "Keeps crashing on my iphone.")
	if len(got) != 0 {
		t.Errorf("vague review mapped to %v", got)
	}
}

func TestGenerateTable16Shape(t *testing.T) {
	apps := GenerateTable16(1)
	if len(apps) != 5 {
		t.Fatalf("apps = %d, want 5", len(apps))
	}
	total := 0
	for _, a := range apps {
		total += len(a.ErrorReviews)
	}
	if total != 1121 {
		t.Errorf("total error reviews = %d, want 1121 (Table 16)", total)
	}
}

func TestTable16LocalizationRate(t *testing.T) {
	l := NewLocalizer()
	apps := GenerateTable16(1)
	localized, total := 0, 0
	for _, a := range apps {
		for _, review := range a.ErrorReviews {
			total++
			if len(l.Localize(a.App, review)) > 0 {
				localized++
			}
		}
	}
	rate := float64(localized) / float64(total)
	// Table 16 reports 32.6%; with only three context types the rate must
	// land well below the Android rate but stay meaningful.
	if rate < 0.15 || rate > 0.55 {
		t.Errorf("iOS localization rate = %.2f (%d/%d), want ≈ 0.33", rate, localized, total)
	}
}

func TestCatalogDescriptions(t *testing.T) {
	if len(Catalog) < 15 {
		t.Errorf("iOS catalog too small: %d", len(Catalog))
	}
	for _, api := range Catalog {
		if api.Description == "" {
			t.Errorf("API %s lacks description", api.Name)
		}
	}
}
