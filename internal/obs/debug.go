package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the -debug-addr HTTP endpoint: expvar at /debug/vars,
// the full net/http/pprof suite at /debug/pprof/, the registry's plain
// text exposition at /metrics, and a trivial /healthz.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebugServer binds addr (e.g. "127.0.0.1:6060"; ":0" picks a free
// port) and serves the debug endpoints in a background goroutine. The
// registry is also published to expvar so /debug/vars carries the pipeline
// metrics next to the runtime's memstats.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	reg.PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ds := &DebugServer{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound address (useful with ":0").
func (ds *DebugServer) Addr() string { return ds.ln.Addr().String() }

// debugDrainTimeout bounds how long Close waits for in-flight scrapes. A
// metrics exposition or pprof index renders in microseconds; anything still
// running after this is a long profile capture, which Close abandons.
const debugDrainTimeout = 2 * time.Second

// Close shuts the server down gracefully: in-flight scrapes drain for up
// to debugDrainTimeout before remaining connections are cut.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	return ShutdownHTTP(ds.srv, debugDrainTimeout)
}

// ShutdownHTTP drains an http.Server under a deadline: Shutdown stops the
// listener and waits for in-flight requests; if any outlast the timeout,
// the server is closed abruptly. Shared by the debug server and reviewd so
// every HTTP surface in the system drains the same way.
func ShutdownHTTP(srv *http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		closeErr := srv.Close()
		if closeErr != nil {
			return closeErr
		}
		return err
	}
	return nil
}
