package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reviews_total").Add(5)
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := fetch("/debug/vars"); !strings.Contains(body, `"reviewsolver"`) {
		t.Errorf("/debug/vars missing the reviewsolver var:\n%s", body)
	}
	if body := fetch("/metrics"); !strings.Contains(body, "counter reviews_total 5") {
		t.Errorf("/metrics missing the counter line:\n%s", body)
	}
	if body := fetch("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q, want ok", body)
	}
	if body := fetch("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

func TestDebugServerNilClose(t *testing.T) {
	var ds *DebugServer
	if err := ds.Close(); err != nil {
		t.Errorf("nil Close() = %v", err)
	}
}
