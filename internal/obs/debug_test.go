package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reviews_total").Add(5)
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := fetch("/debug/vars"); !strings.Contains(body, `"reviewsolver"`) {
		t.Errorf("/debug/vars missing the reviewsolver var:\n%s", body)
	}
	if body := fetch("/metrics"); !strings.Contains(body, "counter reviews_total 5") {
		t.Errorf("/metrics missing the counter line:\n%s", body)
	}
	if body := fetch("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q, want ok", body)
	}
	if body := fetch("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%s", body)
	}
}

func TestDebugServerNilClose(t *testing.T) {
	var ds *DebugServer
	if err := ds.Close(); err != nil {
		t.Errorf("nil Close() = %v", err)
	}
}

// TestShutdownHTTPDrainsInflight: a request in flight when shutdown begins
// completes (the scrape is not cut mid-body), and ShutdownHTTP reports a
// clean drain.
func TestShutdownHTTPDrainsInflight(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-gate
		io.WriteString(w, "drained")
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	body := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String())
		if err != nil {
			body <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		body <- string(b)
	}()
	<-started

	done := make(chan error, 1)
	go func() { done <- ShutdownHTTP(srv, 5*time.Second) }()
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("ShutdownHTTP = %v, want clean drain", err)
	}
	if got := <-body; got != "drained" {
		t.Fatalf("in-flight request body = %q, want %q", got, "drained")
	}
}

// TestShutdownHTTPTimeoutForcesClose: a request that outlasts the drain
// deadline does not hang shutdown — the server closes abruptly and
// ShutdownHTTP returns the deadline error.
func TestShutdownHTTPTimeoutForcesClose(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-gate
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String())
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	done := make(chan error, 1)
	go func() { done <- ShutdownHTTP(srv, 50*time.Millisecond) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ShutdownHTTP = nil, want deadline error for a stuck request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ShutdownHTTP hung past its drain deadline")
	}
}
