package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// EventType classifies one registry lifecycle event.
type EventType string

// The registry lifecycle event taxonomy. Every transition an operator may
// need to reconstruct ("why is this app cold?", "when did it last
// quarantine?") has exactly one type here.
const (
	// EventRegister: a fresh app@version was registered.
	EventRegister EventType = "register"
	// EventHotSwap: a registered app@version was re-registered; the old
	// entry retires once its leases drain.
	EventHotSwap EventType = "hot_swap"
	// EventLoad: a snapshot load succeeded; the entry is live.
	EventLoad EventType = "load"
	// EventDeltaLoad: a snapshot loaded from a delta image patched against
	// a resident base version (detail names the base version).
	EventDeltaLoad EventType = "delta_load"
	// EventLoadFailure: a snapshot load failed.
	EventLoadFailure EventType = "load_failure"
	// EventQuarantineEnter: the entry entered quarantine after a failed load.
	EventQuarantineEnter EventType = "quarantine_enter"
	// EventQuarantineExit: a previously failing entry loaded successfully.
	EventQuarantineExit EventType = "quarantine_exit"
	// EventReprobe: a quarantined entry's backoff elapsed and a request is
	// probing the snapshot again.
	EventReprobe EventType = "re_probe"
	// EventEvict: a live idle entry was unloaded to fit the byte budget.
	EventEvict EventType = "evict"
	// EventRetireFreed: a hot-swapped-out entry's last lease drained and its
	// memory was released.
	EventRetireFreed EventType = "retire_freed"
)

// KnownEventType reports whether t is part of the journal taxonomy.
func KnownEventType(t EventType) bool {
	switch t {
	case EventRegister, EventHotSwap, EventLoad, EventDeltaLoad,
		EventLoadFailure, EventQuarantineEnter, EventQuarantineExit,
		EventReprobe, EventEvict, EventRetireFreed:
		return true
	}
	return false
}

// Event is one journal record. Seq is assigned by the journal and strictly
// increasing; UnixNs comes from the journal owner's injectable clock, so a
// simulated fleet produces byte-identical journals across runs.
type Event struct {
	Seq     uint64    `json:"seq"`
	Type    EventType `json:"type"`
	App     string    `json:"app"`
	Version string    `json:"version,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	UnixNs  int64     `json:"unix_ns"`
}

// Journal is a bounded, goroutine-safe ring of lifecycle events. Appends
// past capacity drop the oldest record (the drop count is retained), and
// every append also drains into the owning registry's labeled event counter
// ("registry_events_total{app=…,type=…}") so totals survive ring turnover.
// Nil is a valid journal that records nothing.
type Journal struct {
	mu    sync.Mutex
	cap   int
	seq   uint64
	buf   []Event // ring storage
	head  int     // index of the oldest record
	n     int     // live records
	drops uint64

	events *CounterVec // registry_events_total{app, type}; nil without metrics
}

// JournalEventsMetric is the labeled counter fed by every journal append.
const JournalEventsMetric = "registry_events_total"

// NewJournal builds a journal holding at most cap events (cap <= 0 gets a
// default of 1024). met may be nil — the journal then only keeps the ring.
func NewJournal(cap int, met *Registry) *Journal {
	if cap <= 0 {
		cap = 1024
	}
	j := &Journal{cap: cap, buf: make([]Event, cap)}
	if met != nil {
		j.events = met.CounterVec(JournalEventsMetric, "app", "type")
	}
	return j
}

// Record appends one event, assigning its sequence number, and bumps the
// labeled event counter. Returns the stored event. Nil-safe.
func (j *Journal) Record(typ EventType, app, version, detail string, unixNs int64) Event {
	if j == nil {
		return Event{}
	}
	j.mu.Lock()
	j.seq++
	e := Event{Seq: j.seq, Type: typ, App: app, Version: version, Detail: detail, UnixNs: unixNs}
	if j.n == j.cap {
		j.buf[j.head] = e
		j.head = (j.head + 1) % j.cap
		j.drops++
	} else {
		j.buf[(j.head+j.n)%j.cap] = e
		j.n++
	}
	ev := j.events
	j.mu.Unlock()
	ev.With(app, string(typ)).Add(1)
	return e
}

// Events returns the retained records, oldest first. Nil-safe.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.head+i)%j.cap]
	}
	return out
}

// Stats reports the journal shape: total events ever recorded, retained
// records, ring capacity, and how many records the ring has dropped. Nil-safe.
func (j *Journal) Stats() (total uint64, retained, capacity int, dropped uint64) {
	if j == nil {
		return 0, 0, 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.n, j.cap, j.drops
}

// --- codec -------------------------------------------------------------------

// Typed journal decode errors. DecodeEvents returns exactly these (wrapped
// with positional context) and never panics — the /v1/events surface and
// its fuzz target hold the decoder to that contract.
var (
	// ErrEventJSON: the payload is not a valid JSON event array.
	ErrEventJSON = errors.New("journal: invalid event JSON")
	// ErrEventType: an event carries an unknown type.
	ErrEventType = errors.New("journal: unknown event type")
	// ErrEventOrder: sequence numbers are not strictly increasing.
	ErrEventOrder = errors.New("journal: sequence out of order")
	// ErrEventShape: an event is structurally invalid (zero seq, empty app).
	ErrEventShape = errors.New("journal: malformed event")
)

// EncodeEvents renders events as a deterministic JSON array (stable field
// order, no indentation).
func EncodeEvents(events []Event) ([]byte, error) {
	if events == nil {
		events = []Event{}
	}
	return json.Marshal(events)
}

// DecodeEvents parses and validates a JSON event array: well-formed JSON,
// known types, non-zero strictly-increasing sequence numbers, and a
// non-empty app on every record. All failures are typed; hostile input
// never panics.
func DecodeEvents(data []byte) ([]Event, error) {
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEventJSON, err)
	}
	var prev uint64
	for i, e := range events {
		if !KnownEventType(e.Type) {
			return nil, fmt.Errorf("%w: event %d type %q", ErrEventType, i, e.Type)
		}
		if e.Seq == 0 {
			return nil, fmt.Errorf("%w: event %d has zero seq", ErrEventShape, i)
		}
		if e.App == "" {
			return nil, fmt.Errorf("%w: event %d has no app", ErrEventShape, i)
		}
		if e.Seq <= prev && i > 0 {
			return nil, fmt.Errorf("%w: event %d seq %d after %d", ErrEventOrder, i, e.Seq, prev)
		}
		prev = e.Seq
	}
	return events, nil
}
