package obs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestJournalRecordAndCounter(t *testing.T) {
	reg := NewRegistry()
	j := NewJournal(16, reg)
	j.Record(EventRegister, "com.app.a", "v1", "", 100)
	j.Record(EventLoad, "com.app.a", "v1", "", 200)
	j.Record(EventLoadFailure, "com.app.b", "v1", "corrupt", 300)

	events := j.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	snap := reg.Snapshot()
	if snap[`registry_events_total{app="com.app.a",type="load"}`] != 1 {
		t.Fatalf("labeled event counter missing: %v", snap)
	}
	if snap[`registry_events_total{app="com.app.b",type="load_failure"}`] != 1 {
		t.Fatalf("load_failure counter missing: %v", snap)
	}
}

func TestJournalRingDropsOldest(t *testing.T) {
	j := NewJournal(4, nil)
	for i := 0; i < 10; i++ {
		j.Record(EventLoad, fmt.Sprintf("app-%d", i), "", "", int64(i))
	}
	events := j.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	if events[0].App != "app-6" || events[3].App != "app-9" {
		t.Fatalf("ring retained wrong window: %+v", events)
	}
	total, retained, capacity, dropped := j.Stats()
	if total != 10 || retained != 4 || capacity != 4 || dropped != 6 {
		t.Fatalf("stats = %d/%d/%d/%d, want 10/4/4/6", total, retained, capacity, dropped)
	}
	// Counters survive ring turnover.
	reg := NewRegistry()
	j2 := NewJournal(2, reg)
	for i := 0; i < 5; i++ {
		j2.Record(EventEvict, "a", "", "", 0)
	}
	if got := reg.Snapshot()[`registry_events_total{app="a",type="evict"}`]; got != 5 {
		t.Fatalf("counter across turnover = %v, want 5", got)
	}
}

func TestJournalCodecRoundTrip(t *testing.T) {
	j := NewJournal(8, nil)
	j.Record(EventQuarantineEnter, "a", "v1", "probe failed", 10)
	j.Record(EventReprobe, "a", "v1", "", 20)
	j.Record(EventQuarantineExit, "a", "v1", "", 30)
	data, err := EncodeEvents(j.Events())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvents(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[1].Type != EventReprobe || back[0].Detail != "probe failed" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Encoding is deterministic.
	again, _ := EncodeEvents(j.Events())
	if !bytes.Equal(data, again) {
		t.Fatal("encoding not byte-deterministic")
	}
	// Empty journal encodes a valid empty array.
	empty, _ := EncodeEvents(nil)
	if string(empty) != "[]" {
		t.Fatalf("nil events encoded %q", empty)
	}
}

func TestDecodeEventsTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		want error
	}{
		{"not json", `{`, ErrEventJSON},
		{"not array", `{"seq":1}`, ErrEventJSON},
		{"unknown type", `[{"seq":1,"type":"explode","app":"a","unix_ns":1}]`, ErrEventType},
		{"zero seq", `[{"seq":0,"type":"load","app":"a","unix_ns":1}]`, ErrEventShape},
		{"empty app", `[{"seq":1,"type":"load","app":"","unix_ns":1}]`, ErrEventShape},
		{"out of order", `[{"seq":2,"type":"load","app":"a","unix_ns":1},{"seq":2,"type":"load","app":"a","unix_ns":2}]`, ErrEventOrder},
	}
	for _, tc := range cases {
		if _, err := DecodeEvents([]byte(tc.data)); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if got, err := DecodeEvents([]byte(`[]`)); err != nil || len(got) != 0 {
		t.Fatalf("empty array: %v %v", got, err)
	}
}

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	if e := j.Record(EventLoad, "a", "", "", 0); e.Seq != 0 {
		t.Fatal("nil journal should record nothing")
	}
	if j.Events() != nil {
		t.Fatal("nil journal has no events")
	}
	total, retained, capacity, dropped := j.Stats()
	if total != 0 || retained != 0 || capacity != 0 || dropped != 0 {
		t.Fatal("nil journal stats should be zero")
	}
	// Journal without a metrics registry still keeps the ring.
	j2 := NewJournal(4, nil)
	j2.Record(EventLoad, "a", "", "", 0)
	if len(j2.Events()) != 1 {
		t.Fatal("metric-less journal should still retain events")
	}
}

func FuzzDecodeEvents(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"seq":1,"type":"load","app":"a","unix_ns":100}]`))
	f.Add([]byte(`[{"seq":1,"type":"register","app":"com.x","version":"v1","detail":"d","unix_ns":1},{"seq":2,"type":"hot_swap","app":"com.x","version":"v2","unix_ns":2}]`))
	f.Add([]byte(`[{"seq":2,"type":"load","app":"a"},{"seq":1,"type":"load","app":"a"}]`))
	f.Add([]byte(`[{"seq":0,"type":"nope","app":""}]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeEvents(data) // must never panic
		if err != nil {
			if !errors.Is(err, ErrEventJSON) && !errors.Is(err, ErrEventType) &&
				!errors.Is(err, ErrEventOrder) && !errors.Is(err, ErrEventShape) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input must survive a re-encode/re-decode round trip.
		enc, err := EncodeEvents(events)
		if err != nil {
			t.Fatalf("re-encode of accepted events failed: %v", err)
		}
		back, err := DecodeEvents(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed length: %d != %d", len(back), len(events))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v != %+v", i, back[i], events[i])
			}
		}
	})
}
