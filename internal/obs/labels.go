package obs

import (
	"sort"
	"strings"
	"sync"
)

// DefaultLabelCap bounds the number of distinct label-value combinations a
// metric vector tracks. Fleet metrics are labeled by app package, and a
// daemon can be asked about arbitrarily many apps — without a bound, a
// scrape-and-register loop (or an attacker probing made-up app names)
// would grow the registry without limit. Past the cap, new combinations
// collapse into one explicit overflow child whose every label value is
// OverflowLabel, so the total stays exact even when the breakdown saturates.
const DefaultLabelCap = 64

// OverflowLabel is the label value of the overflow child: the bucket that
// absorbs all label combinations past a vector's cardinality cap.
const OverflowLabel = "_overflow"

// labeledKey renders "name{k1="v1",k2="v2"}" with the label names in the
// vector's fixed (sorted) order — the exposition key of one vec child.
// Values are escaped Prometheus-style (backslash, quote, newline) so the
// rendered key parses unambiguously.
func labeledKey(name string, labels, values []string) string {
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// vecCore is the shared child table of the three vector kinds: a bounded
// map from rendered label values to the child handle. The registry lock
// only guards vec creation; child lookup takes the vec's own lock.
type vecCore struct {
	name   string
	labels []string // sorted label names, fixed at creation
	cap    int

	mu       sync.Mutex
	children map[string]string // rendered key → "" (presence = within cap)
}

func newVecCore(name string, labels []string) vecCore {
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	return vecCore{
		name:     name,
		labels:   ls,
		cap:      DefaultLabelCap,
		children: make(map[string]string),
	}
}

// childKey resolves label values to the rendered child key, collapsing new
// combinations past the cardinality cap into the overflow child. A value
// count that does not match the label count also lands in the overflow
// child — telemetry never panics the serving path.
func (v *vecCore) childKey(values []string) string {
	if len(values) != len(v.labels) {
		return v.overflowKey()
	}
	key := labeledKey(v.name, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[key]; ok {
		return key
	}
	if len(v.children) >= v.cap {
		return v.overflowKeyLocked()
	}
	v.children[key] = ""
	return key
}

func (v *vecCore) overflowKey() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.overflowKeyLocked()
}

func (v *vecCore) overflowKeyLocked() string {
	values := make([]string, len(v.labels))
	for i := range values {
		values[i] = OverflowLabel
	}
	key := labeledKey(v.name, v.labels, values)
	v.children[key] = "" // the overflow child itself never counts against the cap twice
	return key
}

// CounterVec is a family of counters sharing one name, keyed by label
// values ("requests_total{app="x",code="200"}"). Nil-safe: a nil vec vends
// nil (no-op) counters.
type CounterVec struct {
	vecCore
	reg *Registry
}

// With returns the child counter for the given label values (in the
// vector's sorted label-name order). Past the cardinality cap, the overflow
// child. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.reg.Counter(v.childKey(values))
}

// GaugeVec is a family of gauges keyed by label values. Nil-safe.
type GaugeVec struct {
	vecCore
	reg *Registry
}

// With returns the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.reg.Gauge(v.childKey(values))
}

// HistogramVec is a family of histograms keyed by label values. Nil-safe.
type HistogramVec struct {
	vecCore
	buckets []float64
	reg     *Registry
}

// With returns the child histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.reg.Histogram(v.childKey(values), v.buckets)
}

// CounterVec returns the named counter vector, creating it with the given
// label names on first use (label names are sorted; they are ignored on
// later calls, like Histogram buckets). Children live in the registry under
// their rendered "name{k="v"}" keys, so Snapshot and WriteText expose them
// with no extra plumbing. Nil-safe.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cvecs[name]
	if !ok {
		v = &CounterVec{vecCore: newVecCore(name, labels), reg: r}
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge vector, creating it on first use. Nil-safe.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gvecs[name]
	if !ok {
		v = &GaugeVec{vecCore: newVecCore(name, labels), reg: r}
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram vector, creating it with the
// given buckets and label names on first use. Nil-safe.
func (r *Registry) HistogramVec(name string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hvecs[name]
	if !ok {
		v = &HistogramVec{vecCore: newVecCore(name, labels), buckets: append([]float64(nil), buckets...), reg: r}
		r.hvecs[name] = v
	}
	return v
}
