package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestCounterVecRendersSortedLabels(t *testing.T) {
	reg := NewRegistry()
	// Declared out of order: children must render with sorted label names.
	v := reg.CounterVec("serve_requests_total", "route", "app", "code")
	v.With("com.app.a", "200", "/v1/localize").Add(2)
	v.With("com.app.a", "200", "/v1/localize").Add(1)
	v.With("com.app.b", "429", "/v1/localize").Add(1)

	snap := reg.Snapshot()
	wantA := `serve_requests_total{app="com.app.a",code="200",route="/v1/localize"}`
	wantB := `serve_requests_total{app="com.app.b",code="429",route="/v1/localize"}`
	if snap[wantA] != 3 {
		t.Fatalf("%s = %v, want 3 (snapshot %v)", wantA, snap[wantA], snap)
	}
	if snap[wantB] != 1 {
		t.Fatalf("%s = %v, want 1", wantB, snap[wantB])
	}
}

func TestVecSameChildSameHandle(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("x_total", "app")
	if v.With("a") != v.With("a") {
		t.Fatal("same label values should vend the same child handle")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("different label values should vend different children")
	}
	if got := reg.CounterVec("x_total", "ignored"); got != v {
		t.Fatal("second CounterVec call for a name should return the existing vec")
	}
}

func TestVecCardinalityOverflow(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("apps_total", "app")
	n := DefaultLabelCap + 10
	for i := 0; i < n; i++ {
		v.With(fmt.Sprintf("app-%03d", i)).Add(1)
	}
	overflow := `apps_total{app="` + OverflowLabel + `"}`
	snap := reg.Snapshot()
	if snap[overflow] != 10 {
		t.Fatalf("overflow child = %v, want 10", snap[overflow])
	}
	// The total across all children stays exact.
	var total float64
	for k, val := range snap {
		if strings.HasPrefix(k, "apps_total{") {
			total += val
		}
	}
	if total != float64(n) {
		t.Fatalf("sum over children = %v, want %d", total, n)
	}
	// Existing children keep working after saturation.
	v.With("app-000").Add(1)
	if got := reg.Snapshot()[`apps_total{app="app-000"}`]; got != 2 {
		t.Fatalf("pre-cap child after saturation = %v, want 2", got)
	}
}

func TestVecArityMismatchGoesToOverflow(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("y_total", "app", "code")
	v.With("only-one").Add(1) // wrong arity must not panic
	overflow := `y_total{app="` + OverflowLabel + `",code="` + OverflowLabel + `"}`
	if got := reg.Snapshot()[overflow]; got != 1 {
		t.Fatalf("arity mismatch should land in overflow child, got %v", got)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("g", "k")
	v.With("a\"b\\c\nd").Set(7)
	want := `g{k="a\"b\\c\nd"}`
	if got := reg.Snapshot()[want]; got != 7 {
		t.Fatalf("escaped key %q = %v, want 7", want, got)
	}
}

func TestHistogramVecChildren(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("lat_ns", []float64{10, 100}, "app")
	v.With("a").Observe(5)
	v.With("a").Observe(50)
	v.With("b").Observe(500)
	snap := reg.Snapshot()
	if snap[`lat_ns{app="a"}|count`] != 2 {
		t.Fatalf(`lat_ns{app="a"}|count = %v, want 2`, snap[`lat_ns{app="a"}|count`])
	}
	if snap[`lat_ns{app="a"}|le|10`] != 1 {
		t.Fatalf("bucket le=10 = %v, want 1", snap[`lat_ns{app="a"}|le|10`])
	}
	if snap[`lat_ns{app="b"}|le|+Inf`] != 1 {
		t.Fatalf("+Inf bucket = %v, want 1", snap[`lat_ns{app="b"}|le|+Inf`])
	}
}

func TestVecNilSafety(t *testing.T) {
	var reg *Registry
	reg.CounterVec("a", "l").With("x").Add(1)
	reg.GaugeVec("b", "l").With("x").Set(1)
	reg.HistogramVec("c", nil, "l").With("x").Observe(1)
	var cv *CounterVec
	cv.With("x").Add(1) // must not panic
}

func TestVecTextExpositionDeterministic(t *testing.T) {
	render := func() string {
		reg := NewRegistry()
		v := reg.CounterVec("r_total", "app", "code")
		v.With("b", "200").Add(1)
		v.With("a", "500").Add(2)
		v.With("a", "200").Add(3)
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, `counter r_total{app="a",code="200"} 3`) {
		t.Fatalf("labeled child missing from exposition:\n%s", first)
	}
}
