// Package obs is ReviewSolver's pipeline-wide telemetry layer: a
// goroutine-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with expvar and text exposition, lightweight span tracing
// emitted as structured log/slog events, and the per-review explain-trace
// artifact that records why a review mapped to each recommended class.
//
// Everything is stdlib-only and default-off: a nil *Recorder (and every
// handle it vends — nil *Counter, *Gauge, *Histogram, *Span) is a valid
// no-op, so the kernel hot path pays only a nil check when telemetry is
// disabled.
package obs

import (
	"context"
	"log/slog"
	"time"
)

// Recorder is the pipeline telemetry sink: a metrics registry plus an
// optional slog logger for span events. All methods are safe on a nil
// receiver (they record nothing) and safe for concurrent use otherwise.
type Recorder struct {
	reg    *Registry
	logger *slog.Logger
}

// NewRecorder builds a recorder over a registry. logger may be nil: spans
// then feed the registry (stage counters and latency histograms) without
// emitting log events. A nil reg gets a fresh private registry.
func NewRecorder(reg *Registry, logger *slog.Logger) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{reg: reg, logger: logger}
}

// Registry returns the underlying metrics registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Counter vends the named counter (nil for a nil recorder).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge vends the named gauge (nil for a nil recorder).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Histogram vends the named histogram (nil for a nil recorder). buckets is
// used only on first creation.
func (r *Recorder) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name, buckets)
}

// Start opens a root span for a pipeline stage. Returns nil (a no-op span)
// on a nil recorder.
func (r *Recorder) Start(stage string) *Span {
	if r == nil {
		return nil
	}
	return &Span{rec: r, stage: stage, start: time.Now()}
}

// StartCtx is Start plus trace propagation: if ctx carries a TraceContext
// (see WithTraceContext), the span — and every child derived from it —
// logs the request's trace ID, so the span tree of one request is
// reassemblable across the whole serving path. Nil-safe.
func (r *Recorder) StartCtx(ctx context.Context, stage string) *Span {
	if r == nil {
		return nil
	}
	sp := &Span{rec: r, stage: stage, start: time.Now()}
	if tc, ok := TraceContextFrom(ctx); ok {
		sp.trace = tc.ID
	}
	return sp
}

// Span is one timed pipeline stage. The duration uses the monotonic clock
// (time.Since); parent/child structure is carried as the parent stage name
// so the emitted events form a deterministic tree for a fixed pipeline.
type Span struct {
	rec    *Recorder
	stage  string
	parent string
	trace  string // request trace ID; "" outside a traced request
	start  time.Time
}

// Child opens a sub-span under this span, inheriting its trace ID.
// Nil-safe: a nil span returns a nil (no-op) child.
func (sp *Span) Child(stage string) *Span {
	if sp == nil {
		return nil
	}
	return &Span{rec: sp.rec, stage: stage, parent: sp.stage, trace: sp.trace, start: time.Now()}
}

// TraceID returns the trace ID riding the span ("" on nil or untraced).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.trace
}

// Stage returns the span's stage name ("" on nil).
func (sp *Span) Stage() string {
	if sp == nil {
		return ""
	}
	return sp.stage
}

// End closes the span: it bumps the stage call counter, observes the
// monotonic duration into the stage latency histogram
// ("stage_<stage>_ns"), and — when the recorder has a logger — emits one
// structured "span" event with a fixed attribute order (stage, parent,
// ns). It returns the measured duration. Nil-safe.
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := time.Since(sp.start)
	sp.rec.Counter("stage_" + sp.stage + "_calls_total").Add(1)
	sp.rec.Histogram("stage_"+sp.stage+"_ns", LatencyBucketsNs).Observe(float64(d.Nanoseconds()))
	if sp.rec.logger != nil {
		attrs := make([]slog.Attr, 0, 4)
		attrs = append(attrs,
			slog.String("stage", sp.stage),
			slog.String("parent", sp.parent))
		if sp.trace != "" {
			attrs = append(attrs, slog.String("trace", sp.trace))
		}
		attrs = append(attrs, slog.Int64("ns", d.Nanoseconds()))
		sp.rec.logger.LogAttrs(context.Background(), slog.LevelInfo, "span", attrs...)
	}
	return d
}
