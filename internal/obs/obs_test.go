package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// TestSpanTreeGolden pins the span event stream: stages close leaf-first,
// each event names its parent, and the (stage, parent) sequence is
// deterministic for a fixed call tree.
func TestSpanTreeGolden(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{
		// Strip time so the decoded stream is fully deterministic.
		ReplaceAttr: func(_ []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
	rec := NewRecorder(NewRegistry(), logger)

	root := rec.Start("review")
	c := root.Child("classify")
	c.End()
	loc := root.Child("localize")
	gui := loc.Child("gui")
	gui.End()
	loc.End()
	root.End()

	type event struct {
		Stage  string `json:"stage"`
		Parent string `json:"parent"`
	}
	var got []event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("span event %q: %v", line, err)
		}
		got = append(got, e)
	}
	want := []event{
		{"classify", "review"},
		{"gui", "localize"},
		{"localize", "review"},
		{"review", ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d span events, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSpanFeedsRegistry: ending a span must bump the stage call counter and
// the stage latency histogram even without a logger.
func TestSpanFeedsRegistry(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, nil)
	rec.Start("rank").End()
	rec.Start("rank").End()
	if got := reg.Counter("stage_rank_calls_total").Value(); got != 2 {
		t.Errorf("stage_rank_calls_total = %d, want 2", got)
	}
	if got := reg.Histogram("stage_rank_ns", nil).Count(); got != 2 {
		t.Errorf("stage_rank_ns count = %d, want 2", got)
	}
	if d := rec.Start("rank").End(); d < 0 {
		t.Errorf("span duration %v is negative", d)
	}
}

// TestNewRecorderDefaults: a nil registry argument gets a private registry,
// so NewRecorder(nil, nil) is a usable sink.
func TestNewRecorderDefaults(t *testing.T) {
	rec := NewRecorder(nil, nil)
	if rec.Registry() == nil {
		t.Fatal("NewRecorder(nil, nil) has no registry")
	}
	rec.Counter("c").Add(1)
	if got := rec.Registry().Counter("c").Value(); got != 1 {
		t.Errorf("counter through default registry = %d, want 1", got)
	}
}
