package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// LatencyBucketsNs are the default latency histogram bounds: a 1-2.5-5
// ladder from 1µs to 10s, in nanoseconds. Observations above the last
// bound land in the implicit +Inf bucket.
var LatencyBucketsNs = []float64{
	1e3, 2.5e3, 5e3,
	1e4, 2.5e4, 5e4,
	1e5, 2.5e5, 5e5,
	1e6, 2.5e6, 5e6,
	1e7, 2.5e7, 5e7,
	1e8, 2.5e8, 5e8,
	1e9, 2.5e9, 5e9, 1e10,
}

// SimilarityBuckets cover the cosine-similarity range [0, 1] in 0.05
// steps. Match similarities are deterministic for a fixed model and
// corpus, so these bucket totals are gateable (cmd/benchgate -obs).
var SimilarityBuckets = []float64{
	0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
	0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00,
}

// Registry is a goroutine-safe metrics registry. Metric handles are
// get-or-create by name; reads and writes on the handles are lock-free
// (atomics), the registry lock only guards the name maps.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Label vectors (labels.go). A vec's children are ordinary metrics in
	// the maps above under their rendered "name{k="v"}" keys, so Snapshot
	// and WriteText expose labeled metrics with no extra machinery.
	cvecs map[string]*CounterVec
	gvecs map[string]*GaugeVec
	hvecs map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		cvecs:    make(map[string]*CounterVec),
		gvecs:    make(map[string]*GaugeVec),
		hvecs:    make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds must be ascending; they are ignored on
// later calls). Nil-safe.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depth, busy workers).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n. Nil-safe.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set pins the gauge to n. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Observation is
// lock-free: one atomic add into the bucket, one into the count, and a
// CAS loop for the float sum.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and the per-bucket (non
// cumulative) counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// inside the bucket holding the target rank. Returns 0 with no
// observations; values in the +Inf bucket report the last finite bound.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var seen float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i >= len(h.bounds) { // +Inf bucket: no finite width to interpolate
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		frac := (rank - seen) / n
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot flattens every metric into a name → value map: counters and
// gauges under their own names, histograms as "<name>|count", "<name>|sum"
// and one "<name>|le|<bound>" entry per bucket ("+Inf" for the overflow
// bucket). Keys are stable, so the map is directly gateable. Nil-safe.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, h := range r.hists {
		out[name+"|count"] = float64(h.Count())
		out[name+"|sum"] = h.Sum()
		bounds, counts := h.Buckets()
		for i, n := range counts {
			label := "+Inf"
			if i < len(bounds) {
				label = formatBound(bounds[i])
			}
			out[name+"|le|"+label] = float64(n)
		}
	}
	return out
}

// WriteText writes a deterministic plain-text exposition of the registry:
// one "TYPE name value" line per metric, sorted by name. Nil-safe.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	types := make(map[string]string, len(snap))
	if r != nil {
		r.mu.Lock()
		for name := range r.counters {
			types[name] = "counter"
		}
		for name := range r.gauges {
			types[name] = "gauge"
		}
		r.mu.Unlock()
	}
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		typ, ok := types[k]
		if !ok {
			typ = "hist"
		}
		if _, err := fmt.Fprintf(w, "%s %s %s\n", typ, k, formatBound(snap[k])); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a float without trailing-zero noise ("2500" not
// "2500.000000"), keeping text exposition and snapshot keys stable.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- expvar ------------------------------------------------------------------

var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry under the expvar name "reviewsolver"
// (one JSON object mapping metric keys to values at /debug/vars). expvar
// forbids republishing a name, so the binding is installed once and later
// calls atomically swap which registry it reads — safe across tests and
// server restarts. Nil-safe.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("reviewsolver", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}
