package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: every handle the package vends must be a valid no-op on
// nil, because the pipeline's default configuration passes nil everywhere.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rec.Counter("c").Add(1)
	rec.Gauge("g").Set(2)
	rec.Histogram("h", SimilarityBuckets).Observe(0.5)
	sp := rec.Start("stage")
	sp.Child("child").End()
	if d := sp.End(); d != 0 {
		t.Errorf("nil span End() = %v, want 0", d)
	}
	if rec.Registry() != nil {
		t.Error("nil recorder vended a registry")
	}

	var reg *Registry
	reg.Counter("c").Add(1)
	if got := reg.Counter("c").Value(); got != 0 {
		t.Errorf("nil registry counter = %d, want 0", got)
	}
	if snap := reg.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry snapshot has %d entries", len(snap))
	}
	reg.PublishExpvar()

	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram is not a zero no-op")
	}

	var tr *ReviewTrace
	tr.AddStage("s", "", 0)
	tr.AddMatch(MatchTrace{})
	tr.AddMatches([]MatchTrace{{}})
	tr.AddScan(ScanTrace{})
	if tr.MatchesFor("x") != nil {
		t.Error("nil trace MatchesFor returned entries")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// under -race it is the data-race gate for the whole metrics layer.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const iters = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("shared_total").Add(1)
				reg.Gauge("level").Add(1)
				reg.Gauge("level").Add(-1)
				reg.Histogram("h", SimilarityBuckets).Observe(float64(i%21) * 0.05)
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Counter("shared_total").Value(); got != goroutines*iters {
		t.Errorf("shared_total = %d, want %d", got, goroutines*iters)
	}
	if got := reg.Gauge("level").Value(); got != 0 {
		t.Errorf("level gauge = %d, want 0", got)
	}
	if got := reg.Histogram("h", nil).Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

// TestHistogramBucketsGolden pins the bucket assignment rule: an
// observation lands in the first bucket whose upper bound is >= the value,
// and values above every bound land in +Inf.
func TestHistogramBucketsGolden(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0, 0.5, 1} { // -> bucket le=1
		h.Observe(v)
	}
	h.Observe(1.5) // -> le=2
	h.Observe(5)   // -> le=5
	h.Observe(9)   // -> +Inf

	bounds, counts := h.Buckets()
	wantBounds := []float64{1, 2, 5}
	wantCounts := []int64{3, 1, 1, 1}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
		}
	}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", counts, wantCounts)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.0+0.5+1+1.5+5+9; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // le=10
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // le=20
	}
	// Median splits the two buckets; p95 is inside the second.
	if q := h.Quantile(0.25); q < 0 || q > 10 {
		t.Errorf("p25 = %g, want within (0, 10]", q)
	}
	if q := h.Quantile(0.95); q <= 10 || q > 20 {
		t.Errorf("p95 = %g, want within (10, 20]", q)
	}
	// Everything observed beyond the last bound reports the last bound.
	h2 := newHistogram([]float64{10})
	h2.Observe(99)
	if q := h2.Quantile(0.5); q != 10 {
		t.Errorf("overflow quantile = %g, want 10", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

// TestSnapshotAndWriteTextGolden pins the exposition formats the obs gate
// and `/metrics` scrapes depend on.
func TestSnapshotAndWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reviews_total").Add(3)
	reg.Gauge("pool_workers_busy").Set(2)
	h := reg.Histogram("match_similarity", []float64{0.5, 1})
	h.Observe(0.4)
	h.Observe(0.9)

	snap := reg.Snapshot()
	want := map[string]float64{
		"reviews_total":            3,
		"pool_workers_busy":        2,
		"match_similarity|count":   2,
		"match_similarity|le|0.5":  1,
		"match_similarity|le|1":    1,
		"match_similarity|le|+Inf": 0,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("Snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
	if got := snap["match_similarity|sum"]; math.Abs(got-1.3) > 1e-12 {
		t.Errorf("Snapshot[match_similarity|sum] = %g, want 1.3", got)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range []string{
		"counter reviews_total 3\n",
		"gauge pool_workers_busy 2\n",
		"hist match_similarity|count 2\n",
		"hist match_similarity|le|0.5 1\n",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("WriteText output missing %q:\n%s", line, text)
		}
	}
	// Sorted by key: counter line precedes the histogram block? No — plain
	// lexicographic order over all keys.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	for i := 1; i < len(lines); i++ {
		ki := strings.Fields(lines[i])[1]
		kp := strings.Fields(lines[i-1])[1]
		if kp > ki {
			t.Fatalf("WriteText not sorted: %q after %q", ki, kp)
		}
	}
}

func TestPublishExpvarSwap(t *testing.T) {
	a := NewRegistry()
	a.Counter("x").Add(1)
	a.PublishExpvar()
	b := NewRegistry()
	b.Counter("x").Add(7)
	b.PublishExpvar() // must not panic on duplicate publish
	if got := expvarReg.Load().Counter("x").Value(); got != 7 {
		t.Errorf("expvar-bound registry counter = %d, want 7 (swap did not take)", got)
	}
}
