package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// SLO defaults. A 60-second window in 60 one-second buckets tracks the
// recent past with per-second resolution; the availability objective is
// "three nines", and the latency objective is "99% of requests under
// 500ms". All four are overridable per tracker.
const (
	DefaultSLOWindow       = time.Minute
	DefaultSLOBuckets      = 60
	DefaultSLOAvailability = 0.999
	DefaultSLOLatencyNs    = int64(500 * time.Millisecond)
	DefaultSLOLatencyGoal  = 0.99
)

// SLOConfig configures a tracker. Zero values get the defaults above; Now
// is the injectable clock (nil = time.Now) that makes window arithmetic —
// and therefore the whole fleet digest — deterministic under a fake clock.
type SLOConfig struct {
	// Window is the rolling evaluation window.
	Window time.Duration
	// Buckets is how many fixed-width time buckets tile the window.
	Buckets int
	// Availability is the fraction of requests that must not fail
	// (5xx-class outcomes spend error budget; sheds are tracked separately).
	Availability float64
	// LatencyObjectiveNs is the "fast enough" per-request latency bound.
	LatencyObjectiveNs int64
	// LatencyGoal is the fraction of requests that must be fast enough.
	LatencyGoal float64
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = DefaultSLOWindow
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultSLOBuckets
	}
	if c.Availability <= 0 || c.Availability > 1 {
		c.Availability = DefaultSLOAvailability
	}
	if c.LatencyObjectiveNs <= 0 {
		c.LatencyObjectiveNs = DefaultSLOLatencyNs
	}
	if c.LatencyGoal <= 0 || c.LatencyGoal > 1 {
		c.LatencyGoal = DefaultSLOLatencyGoal
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloBucket is one time slice of one app's rolling window.
type sloBucket struct {
	epoch int64 // bucket timestamp (unixNs / bucketNs); stale slots are reset lazily
	total int64
	errs  int64
	shed  int64
	slow  int64
}

// SLOTracker keeps rolling-window per-app availability and latency-objective
// attainment with error-budget accounting. Safe for concurrent use; nil is
// a valid tracker that records nothing.
type SLOTracker struct {
	cfg      SLOConfig
	bucketNs int64

	mu   sync.Mutex
	apps map[string]*[]sloBucket
}

// NewSLOTracker builds a tracker from the config.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	return &SLOTracker{
		cfg:      cfg,
		bucketNs: int64(cfg.Window) / int64(cfg.Buckets),
		apps:     make(map[string]*[]sloBucket),
	}
}

// Observe records one request outcome for an app: whether it errored
// (5xx-class — spends error budget), whether it was shed (429 — tracked but
// not an availability failure; the client was told to back off), and its
// latency against the objective. Nil-safe.
func (t *SLOTracker) Observe(app string, errored, shed bool, latencyNs int64) {
	if t == nil || app == "" {
		return
	}
	epoch := t.cfg.Now().UnixNano() / t.bucketNs
	t.mu.Lock()
	defer t.mu.Unlock()
	bp := t.apps[app]
	if bp == nil {
		b := make([]sloBucket, t.cfg.Buckets)
		bp = &b
		t.apps[app] = bp
	}
	b := &(*bp)[int(epoch%int64(t.cfg.Buckets))]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if errored {
		b.errs++
	}
	if shed {
		b.shed++
	}
	if latencyNs > t.cfg.LatencyObjectiveNs {
		b.slow++
	}
}

// FleetDigestSchemaVersion identifies the /v1/fleetstat JSON schema.
const FleetDigestSchemaVersion = 1

// FleetDigest is the deterministic fleet SLO artifact: per-app rolling-
// window counts and error-budget arithmetic, sorted by app. It carries no
// wall-time fields — only configured objectives and window-relative counts
// — so for a fixed traffic sequence under an injectable clock the JSON
// encoding is byte-identical across runs and worker counts.
type FleetDigest struct {
	SchemaVersion int `json:"schema_version"`
	// WindowNs and the objectives echo the tracker configuration.
	WindowNs              int64    `json:"window_ns"`
	AvailabilityObjective float64  `json:"availability_objective"`
	LatencyObjectiveNs    int64    `json:"latency_objective_ns"`
	LatencyGoal           float64  `json:"latency_goal"`
	Apps                  []AppSLO `json:"apps"`
}

// AppSLO is one app's rolling-window SLO state.
type AppSLO struct {
	App string `json:"app"`
	// Raw window counts.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
	Slow     int64 `json:"slow"`
	// Availability = (Requests-Errors)/Requests; FastRatio = (Requests-Slow)/Requests.
	Availability float64 `json:"availability"`
	FastRatio    float64 `json:"fast_ratio"`
	// Objective attainment over the window.
	AvailabilityMet bool `json:"availability_met"`
	LatencyMet      bool `json:"latency_met"`
	// Error budget: the window's request volume times the allowed failure
	// fraction, rounded; spent = Errors; remaining may go negative (budget
	// exhausted and overdrawn).
	ErrorBudget     int64   `json:"error_budget"`
	BudgetSpent     int64   `json:"budget_spent"`
	BudgetRemaining int64   `json:"budget_remaining"`
	BudgetRatio     float64 `json:"budget_ratio"`
}

// Digest evaluates the rolling window now and returns the fleet digest.
// Nil-safe (an empty digest).
func (t *SLOTracker) Digest() *FleetDigest {
	d := &FleetDigest{SchemaVersion: FleetDigestSchemaVersion, Apps: []AppSLO{}}
	if t == nil {
		return d
	}
	d.WindowNs = int64(t.cfg.Window)
	d.AvailabilityObjective = t.cfg.Availability
	d.LatencyObjectiveNs = t.cfg.LatencyObjectiveNs
	d.LatencyGoal = t.cfg.LatencyGoal

	nowEpoch := t.cfg.Now().UnixNano() / t.bucketNs
	oldest := nowEpoch - int64(t.cfg.Buckets) + 1
	t.mu.Lock()
	defer t.mu.Unlock()
	for app, bp := range t.apps {
		var a AppSLO
		a.App = app
		for i := range *bp {
			b := &(*bp)[i]
			if b.epoch < oldest || b.epoch > nowEpoch || b.total == 0 {
				continue
			}
			a.Requests += b.total
			a.Errors += b.errs
			a.Shed += b.shed
			a.Slow += b.slow
		}
		if a.Requests == 0 {
			continue // the app fell out of the window entirely
		}
		a.Availability = float64(a.Requests-a.Errors) / float64(a.Requests)
		a.FastRatio = float64(a.Requests-a.Slow) / float64(a.Requests)
		a.AvailabilityMet = a.Availability >= t.cfg.Availability
		a.LatencyMet = a.FastRatio >= t.cfg.LatencyGoal
		a.ErrorBudget = int64(math.Round((1 - t.cfg.Availability) * float64(a.Requests)))
		a.BudgetSpent = a.Errors
		a.BudgetRemaining = a.ErrorBudget - a.BudgetSpent
		switch {
		case a.ErrorBudget > 0:
			r := float64(a.BudgetRemaining) / float64(a.ErrorBudget)
			if r < 0 {
				r = 0
			}
			a.BudgetRatio = r
		case a.BudgetSpent == 0:
			a.BudgetRatio = 1
		default:
			a.BudgetRatio = 0
		}
		d.Apps = append(d.Apps, a)
	}
	sort.Slice(d.Apps, func(i, j int) bool { return d.Apps[i].App < d.Apps[j].App })
	return d
}

// JSON encodes the digest with stable field order and indentation — the
// /v1/fleetstat body and the `reviewd -fleetstat` artifact, byte-identical
// for identical window state.
func (d *FleetDigest) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ErrFleetDigest is the typed validation failure of ValidateFleetDigestJSON.
var ErrFleetDigest = errors.New("fleet digest: invalid")

// ValidateFleetDigestJSON checks raw bytes against the fleet digest schema:
// version match, sorted unique apps, in-range ratios, and internally
// consistent budget arithmetic. It is the machine-checkable contract the
// fleetobs smoke enforces; all failures are typed and it never panics.
func ValidateFleetDigestJSON(data []byte) error {
	var d FleetDigest
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("%w: not valid JSON: %v", ErrFleetDigest, err)
	}
	if d.SchemaVersion != FleetDigestSchemaVersion {
		return fmt.Errorf("%w: schema_version %d, want %d", ErrFleetDigest, d.SchemaVersion, FleetDigestSchemaVersion)
	}
	if d.WindowNs <= 0 || d.LatencyObjectiveNs <= 0 {
		return fmt.Errorf("%w: non-positive window or latency objective", ErrFleetDigest)
	}
	if d.AvailabilityObjective <= 0 || d.AvailabilityObjective > 1 || d.LatencyGoal <= 0 || d.LatencyGoal > 1 {
		return fmt.Errorf("%w: objectives out of (0, 1]", ErrFleetDigest)
	}
	prev := ""
	for i, a := range d.Apps {
		if a.App == "" {
			return fmt.Errorf("%w: app %d has no name", ErrFleetDigest, i)
		}
		if a.App <= prev && i > 0 {
			return fmt.Errorf("%w: apps not sorted (%q after %q)", ErrFleetDigest, a.App, prev)
		}
		prev = a.App
		if a.Requests <= 0 || a.Errors < 0 || a.Shed < 0 || a.Slow < 0 ||
			a.Errors > a.Requests || a.Slow > a.Requests || a.Shed > a.Requests {
			return fmt.Errorf("%w: app %s counts inconsistent", ErrFleetDigest, a.App)
		}
		if a.Availability < 0 || a.Availability > 1 || a.FastRatio < 0 || a.FastRatio > 1 ||
			a.BudgetRatio < 0 || a.BudgetRatio > 1 {
			return fmt.Errorf("%w: app %s ratios out of [0, 1]", ErrFleetDigest, a.App)
		}
		if a.BudgetSpent != a.Errors {
			return fmt.Errorf("%w: app %s budget_spent %d != errors %d", ErrFleetDigest, a.App, a.BudgetSpent, a.Errors)
		}
		if a.BudgetRemaining != a.ErrorBudget-a.BudgetSpent {
			return fmt.Errorf("%w: app %s budget arithmetic: %d - %d != %d",
				ErrFleetDigest, a.App, a.ErrorBudget, a.BudgetSpent, a.BudgetRemaining)
		}
	}
	return nil
}
