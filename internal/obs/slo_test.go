package obs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded settable clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestSLOTrackerBudgetArithmetic(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{
		Window:             time.Minute,
		Buckets:            60,
		Availability:       0.9, // budget = 10% of requests
		LatencyObjectiveNs: 1000,
		LatencyGoal:        0.5,
		Now:                clk.Now,
	})
	for i := 0; i < 95; i++ {
		tr.Observe("com.app.a", false, false, 10)
	}
	for i := 0; i < 5; i++ {
		tr.Observe("com.app.a", true, false, 5000) // errored and slow
	}
	d := tr.Digest()
	if len(d.Apps) != 1 {
		t.Fatalf("apps = %d, want 1", len(d.Apps))
	}
	a := d.Apps[0]
	if a.Requests != 100 || a.Errors != 5 || a.Slow != 5 || a.Shed != 0 {
		t.Fatalf("counts: %+v", a)
	}
	if a.Availability != 0.95 || !a.AvailabilityMet {
		t.Fatalf("availability %v met=%v, want 0.95 met", a.Availability, a.AvailabilityMet)
	}
	if a.ErrorBudget != 10 || a.BudgetSpent != 5 || a.BudgetRemaining != 5 || a.BudgetRatio != 0.5 {
		t.Fatalf("budget: %+v", a)
	}
	if a.FastRatio != 0.95 || !a.LatencyMet {
		t.Fatalf("latency: %+v", a)
	}
}

func TestSLOTrackerBudgetOverdraw(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Availability: 0.9, Now: clk.Now})
	for i := 0; i < 10; i++ {
		tr.Observe("a", true, false, 0) // all errors: budget 1, spent 10
	}
	a := tr.Digest().Apps[0]
	if a.ErrorBudget != 1 || a.BudgetSpent != 10 || a.BudgetRemaining != -9 {
		t.Fatalf("overdraw: %+v", a)
	}
	if a.BudgetRatio != 0 {
		t.Fatalf("overdrawn ratio = %v, want clamped 0", a.BudgetRatio)
	}
	if a.AvailabilityMet {
		t.Fatal("0%% availability cannot meet a 90%% objective")
	}
}

func TestSLOTrackerRollingWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Window: 10 * time.Second, Buckets: 10, Now: clk.Now})
	tr.Observe("a", true, false, 0)
	if got := tr.Digest().Apps[0].Errors; got != 1 {
		t.Fatalf("fresh error count = %d", got)
	}
	clk.Advance(5 * time.Second)
	tr.Observe("a", false, false, 0)
	a := tr.Digest().Apps[0]
	if a.Requests != 2 || a.Errors != 1 {
		t.Fatalf("mid-window: %+v", a)
	}
	clk.Advance(6 * time.Second) // first observation (t=0) falls out of [t=1, t=11]
	a = tr.Digest().Apps[0]
	if a.Requests != 1 || a.Errors != 0 {
		t.Fatalf("after expiry: %+v", a)
	}
	clk.Advance(time.Minute) // everything expires; the app drops from the digest
	if apps := tr.Digest().Apps; len(apps) != 0 {
		t.Fatalf("fully expired app still present: %+v", apps)
	}
}

func TestSLOTrackerShedNotAvailabilityFailure(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Now: clk.Now})
	tr.Observe("a", false, true, 0)
	tr.Observe("a", false, false, 0)
	a := tr.Digest().Apps[0]
	if a.Shed != 1 || a.Errors != 0 || a.Availability != 1 {
		t.Fatalf("shed accounting: %+v", a)
	}
}

func TestFleetDigestJSONDeterministicAndValid(t *testing.T) {
	build := func() []byte {
		clk := newFakeClock()
		tr := NewSLOTracker(SLOConfig{Availability: 0.9, LatencyObjectiveNs: 1 << 40, Now: clk.Now})
		// Interleave apps; output must sort by app regardless.
		tr.Observe("com.b", false, false, 1)
		tr.Observe("com.a", true, false, 1)
		tr.Observe("com.a", false, false, 1)
		tr.Observe("com.c", false, true, 1)
		data, err := tr.Digest().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := build()
	for i := 0; i < 3; i++ {
		if got := build(); !bytes.Equal(first, got) {
			t.Fatalf("digest JSON not byte-deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	if err := ValidateFleetDigestJSON(first); err != nil {
		t.Fatalf("self-produced digest failed validation: %v\n%s", err, first)
	}
	if first[len(first)-1] != '\n' {
		t.Fatal("digest JSON should end with a newline")
	}
}

func TestValidateFleetDigestJSONRejects(t *testing.T) {
	cases := []struct{ name, data string }{
		{"not json", `{`},
		{"wrong version", `{"schema_version":99,"window_ns":1,"availability_objective":0.9,"latency_objective_ns":1,"latency_goal":0.9,"apps":[]}`},
		{"zero window", `{"schema_version":1,"window_ns":0,"availability_objective":0.9,"latency_objective_ns":1,"latency_goal":0.9,"apps":[]}`},
		{"objective >1", `{"schema_version":1,"window_ns":1,"availability_objective":1.5,"latency_objective_ns":1,"latency_goal":0.9,"apps":[]}`},
		{"unsorted apps", `{"schema_version":1,"window_ns":1,"availability_objective":0.9,"latency_objective_ns":1,"latency_goal":0.9,"apps":[{"app":"b","requests":1,"availability":1,"fast_ratio":1,"budget_ratio":1},{"app":"a","requests":1,"availability":1,"fast_ratio":1,"budget_ratio":1}]}`},
		{"errors > requests", `{"schema_version":1,"window_ns":1,"availability_objective":0.9,"latency_objective_ns":1,"latency_goal":0.9,"apps":[{"app":"a","requests":1,"errors":2,"availability":1,"fast_ratio":1,"budget_ratio":1,"budget_spent":2,"error_budget":0,"budget_remaining":-2}]}`},
		{"budget mismatch", `{"schema_version":1,"window_ns":1,"availability_objective":0.9,"latency_objective_ns":1,"latency_goal":0.9,"apps":[{"app":"a","requests":10,"errors":1,"availability":0.9,"fast_ratio":1,"budget_ratio":1,"budget_spent":1,"error_budget":1,"budget_remaining":5}]}`},
	}
	for _, tc := range cases {
		if err := ValidateFleetDigestJSON([]byte(tc.data)); !errors.Is(err, ErrFleetDigest) {
			t.Errorf("%s: err = %v, want ErrFleetDigest", tc.name, err)
		}
	}
}

func TestSLOTrackerNilSafety(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("a", true, true, 1) // must not panic
	d := tr.Digest()
	if d == nil || len(d.Apps) != 0 {
		t.Fatalf("nil tracker digest: %+v", d)
	}
	if _, err := d.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestSLOTrackerConcurrentObserve(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Now: clk.Now})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe("a", i%10 == 0, false, 1)
			}
		}()
	}
	wg.Wait()
	a := tr.Digest().Apps[0]
	if a.Requests != 1600 || a.Errors != 160 {
		t.Fatalf("concurrent totals: %+v", a)
	}
}
