package obs

import (
	"encoding/json"
	"fmt"
)

// TraceSchemaVersion identifies the explain-trace JSON schema. Bump it on
// any structural change so downstream consumers can dispatch.
const TraceSchemaVersion = 1

// ReviewTrace is the explain-trace artifact for one localized review: a
// deterministic record of which phrase matched which candidate via which
// information source at what similarity, what the kernel prescreen did,
// and how the review moved through the pipeline stages. It deliberately
// carries no wall-clock fields — for a fixed corpus, model, and review the
// JSON encoding is byte-identical across runs (durations live in the
// metrics registry and the span log instead).
//
// A ReviewTrace is filled by a single review's localization; it is not
// safe for concurrent writers. The core pipeline collects chunk-local
// match lists inside its worker fan-out and appends them here in
// deterministic candidate order after the chunks join.
type ReviewTrace struct {
	// SchemaVersion is TraceSchemaVersion at encode time.
	SchemaVersion int `json:"schema_version"`
	// Review is the raw review text.
	Review string `json:"review"`
	// IsError is the classifier's decision (§3.2.2).
	IsError bool `json:"is_error"`
	// Release is the APK version the review was matched against.
	Release string `json:"release,omitempty"`
	// Stages lists the pipeline stages that ran, in execution order, with
	// the number of mappings each produced.
	Stages []StageTrace `json:"stages,omitempty"`
	// Matches are the phrase → candidate correlations, in the order the
	// (deterministically merged) localizers emitted them.
	Matches []MatchTrace `json:"matches,omitempty"`
	// Scans record the kernel prescreen behaviour of every matrix scan.
	Scans []ScanTrace `json:"scans,omitempty"`
	// Pool captures queue/worker occupancy at pickup when the review was
	// drained through a core.Pool (absent for standalone localization).
	Pool *PoolTrace `json:"pool,omitempty"`
	// Ranked lists the recommended classes in rank order, each pointing at
	// the Matches entries that voted for it.
	Ranked []RankedTrace `json:"ranked,omitempty"`
}

// StageTrace is one pipeline stage in the explain trace.
type StageTrace struct {
	// Stage is the stage slug ("classify", "localize/app_specific", …).
	Stage string `json:"stage"`
	// Parent is the enclosing stage slug ("" for roots).
	Parent string `json:"parent,omitempty"`
	// Matches counts the mappings the stage produced (before dedup).
	Matches int `json:"matches"`
}

// MatchTrace is one phrase → candidate correlation.
type MatchTrace struct {
	// Phrase is the review phrase that triggered the match.
	Phrase string `json:"phrase"`
	// Class / Method name the matched code location.
	Class  string `json:"class"`
	Method string `json:"method,omitempty"`
	// Stage is the localizer stage slug that found the match.
	Stage string `json:"stage"`
	// Source is the §3.3 information source consulted ("method name",
	// "widget id", "app message", "API description", …).
	Source string `json:"source"`
	// Evidence is the human-readable justification string.
	Evidence string `json:"evidence"`
	// Similarity is the semantic similarity that crossed the threshold
	// (1 for exact lexical/rule matches).
	Similarity float64 `json:"similarity"`
}

// ScanTrace records the prescreen statistics of one phrase × matrix scan.
type ScanTrace struct {
	// Stage is the localizer stage slug that issued the scan.
	Stage string `json:"stage"`
	// Matrix names the scanned candidate matrix ("method_phrases",
	// "widget_ids", "catalog").
	Matrix string `json:"matrix"`
	// Phrase is the query phrase.
	Phrase string `json:"phrase"`
	// Rows is the matrix size; Pruned rows were skipped on the prescreen
	// bound alone, Evaluated rows paid a full dot product, Matched rows
	// crossed the threshold.
	Rows      int `json:"rows"`
	Pruned    int `json:"pruned"`
	Evaluated int `json:"evaluated"`
	Matched   int `json:"matched"`
}

// PoolTrace is the pool occupancy observed when a worker picked the review
// up.
type PoolTrace struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// QueueDepth is the number of reviews still waiting at pickup.
	QueueDepth int `json:"queue_depth"`
	// BusyWorkers is the number of busy workers at pickup (including the
	// one picking this review up).
	BusyWorkers int `json:"busy_workers"`
}

// RankedTrace is one recommended class with pointers to its evidence.
type RankedTrace struct {
	// Rank is the 1-based position in the recommendation list.
	Rank int `json:"rank"`
	// Class is the recommended class.
	Class string `json:"class"`
	// Importance and Dependencies are the §4.3 ranking signals.
	Importance   int `json:"importance"`
	Dependencies int `json:"dependencies"`
	// Matches indexes into ReviewTrace.Matches: the correlations that
	// voted for this class.
	Matches []int `json:"matches"`
}

// NewReviewTrace starts an explain trace for one review.
func NewReviewTrace(review string) *ReviewTrace {
	return &ReviewTrace{SchemaVersion: TraceSchemaVersion, Review: review}
}

// AddStage appends a stage record. Nil-safe.
func (t *ReviewTrace) AddStage(stage, parent string, matches int) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, StageTrace{Stage: stage, Parent: parent, Matches: matches})
}

// AddMatch appends one correlation and returns its index. Nil-safe (-1).
func (t *ReviewTrace) AddMatch(m MatchTrace) int {
	if t == nil {
		return -1
	}
	t.Matches = append(t.Matches, m)
	return len(t.Matches) - 1
}

// AddMatches appends a chunk of correlations in order. Nil-safe.
func (t *ReviewTrace) AddMatches(ms []MatchTrace) {
	if t == nil {
		return
	}
	t.Matches = append(t.Matches, ms...)
}

// AddScan appends one scan record. Nil-safe.
func (t *ReviewTrace) AddScan(s ScanTrace) {
	if t == nil {
		return
	}
	t.Scans = append(t.Scans, s)
}

// MatchesFor returns the indices of the matches naming the given class, in
// emission order. Nil-safe.
func (t *ReviewTrace) MatchesFor(class string) []int {
	if t == nil {
		return nil
	}
	var out []int
	for i := range t.Matches {
		if t.Matches[i].Class == class {
			out = append(out, i)
		}
	}
	return out
}

// JSON encodes the trace with stable field order and indentation; for a
// fixed pipeline input the bytes are identical across runs.
func (t *ReviewTrace) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ValidateTraceJSON checks raw bytes against the explain-trace schema: the
// schema version must match, required fields must be present and typed,
// and every ranked candidate must reference in-range match entries that
// name a phrase, an information source, and a similarity. It is the
// machine-checkable contract `make obs-smoke` enforces.
func ValidateTraceJSON(data []byte) error {
	var t ReviewTrace
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("explain trace: not valid JSON: %w", err)
	}
	if t.SchemaVersion != TraceSchemaVersion {
		return fmt.Errorf("explain trace: schema_version %d, want %d", t.SchemaVersion, TraceSchemaVersion)
	}
	if t.Review == "" {
		return fmt.Errorf("explain trace: empty review text")
	}
	for i, m := range t.Matches {
		switch {
		case m.Phrase == "":
			return fmt.Errorf("explain trace: match %d has no phrase", i)
		case m.Class == "":
			return fmt.Errorf("explain trace: match %d has no class", i)
		case m.Source == "":
			return fmt.Errorf("explain trace: match %d has no information source", i)
		case m.Stage == "":
			return fmt.Errorf("explain trace: match %d has no stage", i)
		case m.Similarity < 0 || m.Similarity > 1.0000001:
			return fmt.Errorf("explain trace: match %d similarity %v out of [0, 1]", i, m.Similarity)
		}
	}
	for i, s := range t.Scans {
		// Early-exit scans (Algorithm 1's per-entry break) touch fewer rows
		// than the matrix holds; they can never touch more.
		if s.Pruned+s.Evaluated > s.Rows {
			return fmt.Errorf("explain trace: scan %d pruned %d + evaluated %d > rows %d",
				i, s.Pruned, s.Evaluated, s.Rows)
		}
		if s.Matched > s.Evaluated {
			return fmt.Errorf("explain trace: scan %d matched %d > evaluated %d", i, s.Matched, s.Evaluated)
		}
	}
	for i, rc := range t.Ranked {
		if rc.Rank != i+1 {
			return fmt.Errorf("explain trace: ranked %d has rank %d, want %d", i, rc.Rank, i+1)
		}
		if rc.Class == "" {
			return fmt.Errorf("explain trace: ranked %d has no class", i)
		}
		if len(rc.Matches) == 0 {
			return fmt.Errorf("explain trace: ranked class %s references no matches", rc.Class)
		}
		for _, mi := range rc.Matches {
			if mi < 0 || mi >= len(t.Matches) {
				return fmt.Errorf("explain trace: ranked class %s references match %d of %d",
					rc.Class, mi, len(t.Matches))
			}
			if t.Matches[mi].Class != rc.Class {
				return fmt.Errorf("explain trace: ranked class %s references match %d naming class %s",
					rc.Class, mi, t.Matches[mi].Class)
			}
		}
	}
	return nil
}
