package obs

import (
	"bytes"
	"strings"
	"testing"
)

func validTrace() *ReviewTrace {
	tr := NewReviewTrace("cannot fetch mail")
	tr.IsError = true
	tr.Release = "1.7"
	tr.AddStage("classify", "review", 0)
	tr.AddStage("app_specific", "localize", 1)
	tr.AddMatch(MatchTrace{
		Phrase: "fetch mail", Class: "com.app.MailFetcher", Method: "fetchMail",
		Stage: "app_specific", Source: "method name",
		Evidence: "method name fetchMail", Similarity: 0.97,
	})
	tr.AddScan(ScanTrace{
		Stage: "app_specific", Matrix: "method_phrases", Phrase: "fetch mail",
		Rows: 45, Pruned: 41, Evaluated: 4, Matched: 1,
	})
	tr.Ranked = []RankedTrace{{
		Rank: 1, Class: "com.app.MailFetcher", Importance: 1,
		Matches: tr.MatchesFor("com.app.MailFetcher"),
	}}
	return tr
}

// TestTraceJSONGolden pins the artifact encoding end to end: field names,
// ordering, and the byte-for-byte reproducibility the explain gate depends
// on.
func TestTraceJSONGolden(t *testing.T) {
	tr := validTrace()
	a, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same trace encoded to different bytes")
	}
	if err := ValidateTraceJSON(a); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	for _, want := range []string{
		`"schema_version": 1`,
		`"review": "cannot fetch mail"`,
		`"source": "method name"`,
		`"similarity": 0.97`,
		`"pruned": 41`,
		`"rank": 1`,
	} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("encoded trace missing %s:\n%s", want, a)
		}
	}
}

func TestValidateTraceJSONRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ReviewTrace)
		wantErr string
	}{
		{"wrong schema", func(tr *ReviewTrace) { tr.SchemaVersion = 99 }, "schema_version"},
		{"empty review", func(tr *ReviewTrace) { tr.Review = "" }, "empty review"},
		{"match without source", func(tr *ReviewTrace) { tr.Matches[0].Source = "" }, "no information source"},
		{"match without class", func(tr *ReviewTrace) { tr.Matches[0].Class = "" }, "no class"},
		{"similarity out of range", func(tr *ReviewTrace) { tr.Matches[0].Similarity = 1.5 }, "out of [0, 1]"},
		{"scan over rows", func(tr *ReviewTrace) { tr.Scans[0].Evaluated = 100 }, "> rows"},
		{"scan matched over evaluated", func(tr *ReviewTrace) { tr.Scans[0].Matched = 9 }, "matched 9 > evaluated"},
		{"rank out of order", func(tr *ReviewTrace) { tr.Ranked[0].Rank = 3 }, "has rank 3"},
		{"ranked without matches", func(tr *ReviewTrace) { tr.Ranked[0].Matches = nil }, "references no matches"},
		{"ranked match out of range", func(tr *ReviewTrace) { tr.Ranked[0].Matches = []int{5} }, "references match 5"},
		{"ranked match wrong class", func(tr *ReviewTrace) { tr.Ranked[0].Class = "com.other.Cls" }, "naming class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTrace()
			tc.mutate(tr)
			data, err := tr.JSON()
			if err != nil {
				t.Fatal(err)
			}
			err = ValidateTraceJSON(data)
			if err == nil {
				t.Fatal("mutated trace validated cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	if err := ValidateTraceJSON([]byte("{")); err == nil {
		t.Error("malformed JSON validated cleanly")
	}
}

// TestValidateAllowsEarlyExitScans: AnyAtLeast-style scans stop at the
// first hit, so pruned+evaluated may undercount rows — that must validate.
func TestValidateAllowsEarlyExitScans(t *testing.T) {
	tr := validTrace()
	tr.Scans[0] = ScanTrace{
		Stage: "api_uri_intent", Matrix: "catalog", Phrase: "fetch mail",
		Rows: 300, Pruned: 10, Evaluated: 2, Matched: 1,
	}
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(data); err != nil {
		t.Fatalf("early-exit scan rejected: %v", err)
	}
}
