package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
)

// TraceContext is the request-scoped identity that rides a context.Context
// through the serving path: HTTP ingress → admission → registry lease →
// pool → kernel scan. The ID is deterministic — derived from a seeded
// per-daemon sequence, never wall clock — so a replayed request sequence
// produces the same IDs, and Sampled marks the requests whose full explain
// trace is retained for /v1/trace/<id>.
type TraceContext struct {
	// ID is the 16-hex-digit request trace ID.
	ID string
	// Sampled reports whether this request's explain trace is retained.
	Sampled bool
}

type traceCtxKey struct{}

// WithTraceContext attaches a trace context to ctx.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context riding ctx, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// TraceSource mints trace contexts from a seeded sequence. IDs are a
// splitmix64 scramble of (seed, sequence) — they look random, collide with
// negligible probability, and replay identically for a fixed seed. Safe for
// concurrent use; nil is a valid source that mints unsampled zero IDs.
type TraceSource struct {
	seed  uint64
	every uint64 // sample every Nth request; 0 disables, 1 samples all
	seq   atomic.Uint64
}

// NewTraceSource builds a source. sampleEvery picks which requests retain
// their full explain trace: every Nth (the 1st, N+1st, …); 0 disables
// sampling; 1 samples every request.
func NewTraceSource(seed int64, sampleEvery int) *TraceSource {
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	return &TraceSource{seed: uint64(seed), every: uint64(sampleEvery)}
}

// Next mints the next trace context in the sequence. Nil-safe.
func (ts *TraceSource) Next() TraceContext {
	if ts == nil {
		return TraceContext{}
	}
	n := ts.seq.Add(1)
	id := splitmix64(ts.seed + n*0x9e3779b97f4a7c15)
	sampled := ts.every == 1 || (ts.every > 1 && n%ts.every == 1)
	return TraceContext{ID: formatTraceID(id), Sampled: sampled}
}

// splitmix64 is the standard 64-bit finalizer — a bijection, so distinct
// sequence numbers always mint distinct IDs for a fixed seed.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func formatTraceID(v uint64) string {
	s := strconv.FormatUint(v, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// TraceStore is a bounded FIFO store of sampled explain-trace artifacts,
// keyed by trace ID. When full, storing a new trace evicts the oldest.
// Safe for concurrent use; nil is a valid store that holds nothing.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	fifo  []string
	data  map[string][]byte
	total int64
}

// NewTraceStore builds a store holding at most cap traces (cap <= 0 gets a
// default of 256).
func NewTraceStore(cap int) *TraceStore {
	if cap <= 0 {
		cap = 256
	}
	return &TraceStore{cap: cap, data: make(map[string][]byte)}
}

// Put stores one trace artifact, evicting the oldest past capacity. Nil-safe.
func (s *TraceStore) Put(id string, artifact []byte) {
	if s == nil || id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[id]; !ok {
		for len(s.fifo) >= s.cap {
			delete(s.data, s.fifo[0])
			s.fifo = s.fifo[1:]
		}
		s.fifo = append(s.fifo, id)
	}
	s.data[id] = artifact
	s.total++
}

// Get returns the stored artifact for a trace ID. Nil-safe.
func (s *TraceStore) Get(id string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.data[id]
	return b, ok
}

// Len reports how many traces are currently retained. Nil-safe.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fifo)
}

// Stored reports how many traces have ever been stored (retained or since
// evicted). Nil-safe.
func (s *TraceStore) Stored() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
