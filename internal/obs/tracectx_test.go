package obs

import (
	"context"
	"sync"
	"testing"
)

func TestTraceSourceDeterministicReplay(t *testing.T) {
	a := NewTraceSource(42, 4)
	b := NewTraceSource(42, 4)
	for i := 0; i < 32; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatalf("request %d: %+v vs %+v — same seed must replay identically", i, ta, tb)
		}
		if len(ta.ID) != 16 {
			t.Fatalf("trace ID %q is not 16 hex digits", ta.ID)
		}
	}
	other := NewTraceSource(43, 4).Next()
	if other.ID == NewTraceSource(42, 4).Next().ID {
		t.Fatal("different seeds should mint different first IDs")
	}
}

func TestTraceSourceSampling(t *testing.T) {
	ts := NewTraceSource(1, 3)
	var sampled int
	for i := 0; i < 9; i++ {
		if ts.Next().Sampled {
			sampled++
		}
	}
	if sampled != 3 { // requests 1, 4, 7
		t.Fatalf("sampled %d of 9 with every=3, want 3", sampled)
	}
	if NewTraceSource(1, 0).Next().Sampled {
		t.Fatal("every=0 must disable sampling")
	}
	if !NewTraceSource(1, 1).Next().Sampled {
		t.Fatal("every=1 must sample every request")
	}
}

func TestTraceSourceUniqueUnderConcurrency(t *testing.T) {
	ts := NewTraceSource(7, 1)
	const workers, per = 8, 100
	ids := make(chan string, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- ts.Next().ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool, workers*per)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{ID: "00000000deadbeef", Sampled: true}
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v", got, ok)
	}
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("bare context should carry no trace")
	}
	if _, ok := TraceContextFrom(nil); ok { //nolint:staticcheck // nil-safety contract
		t.Fatal("nil context should carry no trace")
	}
}

func TestSpanTracePropagation(t *testing.T) {
	rec := NewRecorder(NewRegistry(), nil)
	ctx := WithTraceContext(context.Background(), TraceContext{ID: "abc0000000000001", Sampled: true})
	root := rec.StartCtx(ctx, "serve_request")
	child := root.Child("serve_lease")
	grand := child.Child("localize")
	if grand.TraceID() != "abc0000000000001" {
		t.Fatalf("grandchild trace = %q, want propagation from root", grand.TraceID())
	}
	grand.End()
	child.End()
	root.End()
	if rec.Counter("stage_serve_request_calls_total").Value() != 1 {
		t.Fatal("traced span should still feed stage counters")
	}

	untraced := rec.StartCtx(context.Background(), "s")
	if untraced.TraceID() != "" {
		t.Fatalf("untraced span has trace %q", untraced.TraceID())
	}
}

func TestTraceStoreBoundedFIFO(t *testing.T) {
	s := NewTraceStore(3)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Put("c", []byte("3"))
	s.Put("d", []byte("4")) // evicts a
	if _, ok := s.Get("a"); ok {
		t.Fatal("oldest trace should be evicted at capacity")
	}
	if got, ok := s.Get("d"); !ok || string(got) != "4" {
		t.Fatalf("newest trace missing: %q ok=%v", got, ok)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Stored() != 4 {
		t.Fatalf("Stored = %d, want 4", s.Stored())
	}
	s.Put("d", []byte("4b")) // overwrite does not evict
	if s.Len() != 3 {
		t.Fatalf("Len after overwrite = %d, want 3", s.Len())
	}
}

func TestTraceNilSafety(t *testing.T) {
	var ts *TraceSource
	if tc := ts.Next(); tc.ID != "" || tc.Sampled {
		t.Fatalf("nil source minted %+v", tc)
	}
	var store *TraceStore
	store.Put("x", nil)
	if _, ok := store.Get("x"); ok {
		t.Fatal("nil store should hold nothing")
	}
	if store.Len() != 0 || store.Stored() != 0 {
		t.Fatal("nil store stats should be zero")
	}
}
