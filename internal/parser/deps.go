package parser

import "reviewsolver/internal/pos"

// extractDeps derives typed dependencies from the chunk sequence. The
// algorithm walks the S-level chunks left to right, tracking the most recent
// verb (the governor for objects, negations, and adverbs) and the subject NP
// preceding it.
func extractDeps(tokens []pos.TaggedToken, root *Node) []Dependency {
	var deps []Dependency
	add := func(rel string, head, dep int) {
		if head >= 0 && dep >= 0 {
			deps = append(deps, Dependency{Rel: rel, Head: head, Dep: dep})
		}
	}

	// Intra-NP relations: det, amod, compound to the head noun.
	for _, np := range root.PhrasesLabeled(LabelNP) {
		head := npHeadIndex(np)
		if head < 0 {
			continue
		}
		for _, leaf := range np.Leaves() {
			i := leaf.TokenIndex
			if i == head {
				continue
			}
			switch leaf.Token.Tag {
			case pos.DT, pos.PRPS:
				add(RelDet, head, i)
			case pos.JJ, pos.VBN, pos.VBG, pos.CD:
				add(RelAMod, head, i)
			default:
				if leaf.Token.Tag.IsNoun() {
					add(RelCompound, head, i)
				}
			}
		}
	}

	// Clause-level relations.
	var (
		lastVerb    = -1 // main verb index of the current clause
		pendingSubj = -1 // head of the NP seen before the verb
		passive     bool // whether the current VP looked passive
		lastCC      = -1 // most recent coordinating conjunction
		firstVerb   = -1 // first verb of the sentence (for conj)
		pendingPrep = -1 // preposition waiting for its object
	)
	for _, ch := range root.Children {
		switch ch.Label {
		case LabelNP:
			head := npHeadIndex(ch)
			if head < 0 {
				continue
			}
			switch {
			case lastVerb >= 0 && pendingPrep >= 0:
				add(RelPObj, pendingPrep, head)
				pendingPrep = -1
			case lastVerb >= 0:
				add(RelDObj, lastVerb, head)
			default:
				pendingSubj = head
			}
		case LabelVP:
			verb, aux, negs, advs, isPassive := analyzeVP(ch)
			if verb < 0 {
				continue
			}
			if firstVerb < 0 {
				firstVerb = verb
			} else if lastCC >= 0 {
				add(RelConj, firstVerb, verb)
				add(RelCC, firstVerb, lastCC)
				lastCC = -1
			}
			passive = isPassive
			if pendingSubj >= 0 {
				if passive {
					add(RelNSubjPass, verb, pendingSubj)
				} else {
					add(RelNSubj, verb, pendingSubj)
				}
				pendingSubj = -1
			}
			for _, a := range aux {
				add(RelAux, verb, a)
			}
			for _, ng := range negs {
				add(RelNeg, verb, ng)
			}
			for _, av := range advs {
				add(RelAdvMod, verb, av)
			}
			lastVerb = verb
		case LabelPP:
			prep, npHead := ppParts(ch)
			if prep >= 0 && lastVerb >= 0 {
				add(RelPrep, lastVerb, prep)
			}
			if prep >= 0 && npHead >= 0 {
				add(RelPObj, prep, npHead)
			}
		case LabelADVP:
			for _, leaf := range ch.Leaves() {
				if lastVerb >= 0 {
					add(RelAdvMod, lastVerb, leaf.TokenIndex)
				}
			}
		case LabelCC:
			if len(ch.Children) > 0 {
				lastCC = ch.Children[0].TokenIndex
			}
		case LabelO:
			// Wh-words open a new clause: reset the verb/subject state so
			// the subordinate clause gets its own nsubj/dobj relations.
			for _, leaf := range ch.Leaves() {
				if leaf.Token.Tag == pos.WRB || leaf.Token.Tag == pos.WP {
					lastVerb, pendingSubj, pendingPrep = -1, -1, -1
				}
			}
		}
	}
	return deps
}

// npHeadIndex returns the index of the head (last) noun of an NP, or the
// last pronoun, or -1.
func npHeadIndex(np *Node) int {
	head := -1
	for _, leaf := range np.Leaves() {
		t := leaf.Token.Tag
		if t.IsNoun() || t == pos.PRP || t == pos.EX {
			head = leaf.TokenIndex
		}
	}
	if head >= 0 {
		return head
	}
	// Bare "this"/"these" NPs: fall back to the last leaf.
	leaves := np.Leaves()
	if len(leaves) > 0 {
		return leaves[len(leaves)-1].TokenIndex
	}
	return -1
}

// analyzeVP picks apart a VP chunk into main verb, auxiliaries, negations,
// adverbs, and whether the construction looks passive ("gets flipped",
// "is saved").
func analyzeVP(vp *Node) (verb int, aux, negs, advs []int, passive bool) {
	verb = -1
	leaves := vp.Leaves()
	var sawBeOrGet bool
	for _, leaf := range leaves {
		i := leaf.TokenIndex
		switch tag := leaf.Token.Tag; {
		case tag == pos.NEG:
			negs = append(negs, i)
		case tag == pos.MD || tag == pos.TO:
			aux = append(aux, i)
		case tag == pos.RB:
			advs = append(advs, i)
		case tag.IsVerb():
			lower := leaf.Token.Lower
			if isAuxVerb(lower) {
				sawBeOrGet = sawBeOrGet || isBeOrGet(lower)
				if verb < 0 {
					verb = i // provisional: aux may be the only verb
				} else {
					aux = append(aux, i)
				}
				continue
			}
			if verb >= 0 && isAuxVerb(leaves0Lower(leaves, verb)) {
				aux = append(aux, verb)
			}
			if tag == pos.VBN && sawBeOrGet {
				passive = true
			}
			verb = i
		}
	}
	return verb, aux, negs, advs, passive
}

func leaves0Lower(leaves []*Node, tokenIndex int) string {
	for _, l := range leaves {
		if l.TokenIndex == tokenIndex {
			return l.Token.Lower
		}
	}
	return ""
}

func isAuxVerb(w string) bool {
	switch w {
	case "is", "am", "are", "was", "were", "be", "been", "being",
		"do", "does", "did", "have", "has", "had", "having",
		"get", "gets", "got", "getting", "keep", "keeps", "kept":
		return true
	}
	return false
}

func isBeOrGet(w string) bool {
	switch w {
	case "is", "am", "are", "was", "were", "be", "been", "being",
		"get", "gets", "got", "getting":
		return true
	}
	return false
}

// ppParts returns the preposition index and contained-NP head index of a PP.
func ppParts(pp *Node) (prep, npHead int) {
	prep, npHead = -1, -1
	for _, c := range pp.Children {
		if c.IsLeaf() && (c.Token.Tag == pos.IN || c.Token.Tag == pos.TO) && prep < 0 {
			prep = c.TokenIndex
		}
		if c.Label == LabelNP {
			npHead = npHeadIndex(c)
		}
	}
	return prep, npHead
}
