// Package parser implements a shallow constituency parser and typed
// dependency extractor for app-review sentences, standing in for the
// Stanford Parser used by the paper (§3.2.1). It produces:
//
//   - a parse tree whose internal nodes are S/NP/VP/PP/ADVP chunks and whose
//     leaves are POS-tagged tokens (Fig. 2, left), and
//   - typed dependency relations between words (Fig. 2, right): nsubj,
//     nsubjpass, dobj, pobj, prep, neg, amod, det, advmod, aux, cc, conj.
//
// The chunker is a deterministic longest-match finite-state machine over POS
// tags; the dependency pass reads head words out of the chunks. The subset
// of relations is exactly what ReviewSolver's phrase extraction (§3.2.4) and
// negation-aware classification (§3.2.2) consume.
package parser

import (
	"fmt"
	"strings"

	"reviewsolver/internal/pos"
	"reviewsolver/internal/textproc"
)

// Label names a parse-tree node.
type Label string

// Chunk labels.
const (
	LabelS    Label = "S"    // sentence root
	LabelNP   Label = "NP"   // noun phrase
	LabelVP   Label = "VP"   // verb phrase
	LabelPP   Label = "PP"   // prepositional phrase
	LabelADVP Label = "ADVP" // adverbial phrase
	LabelCC   Label = "CC"   // coordination
	LabelO    Label = "O"    // other (punctuation, interjections)
)

// Node is a parse-tree node. Leaves carry a token; internal nodes carry
// children.
type Node struct {
	Label    Label
	Children []*Node
	// Token is set on leaves only.
	Token *pos.TaggedToken
	// TokenIndex is the sentence position of a leaf token, -1 for internal
	// nodes.
	TokenIndex int
}

// IsLeaf reports whether the node is a token leaf.
func (n *Node) IsLeaf() bool { return n.Token != nil }

// Text returns the surface text covered by the node.
func (n *Node) Text() string {
	if n.IsLeaf() {
		return n.Token.Text
	}
	parts := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		parts = append(parts, c.Text())
	}
	return strings.Join(parts, " ")
}

// Leaves returns the leaf nodes under n in sentence order.
func (n *Node) Leaves() []*Node {
	if n.IsLeaf() {
		return []*Node{n}
	}
	return n.appendLeaves(make([]*Node, 0, 8))
}

// appendLeaves accumulates leaves into one caller-owned slice so the
// recursion does not allocate an intermediate slice per internal node.
func (n *Node) appendLeaves(out []*Node) []*Node {
	if n.IsLeaf() {
		return append(out, n)
	}
	for _, c := range n.Children {
		out = c.appendLeaves(out)
	}
	return out
}

// PhrasesLabeled returns the internal nodes under n (including n) with the
// given label, in sentence order. Phrase extraction uses it to list NPs:
// "for each line of the parse tree, if the line starts with NP ..." (§3.2.4).
func (n *Node) PhrasesLabeled(label Label) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() {
			return
		}
		if m.Label == label {
			out = append(out, m)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// String renders the tree in the one-phrase-per-line style of Fig. 2.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s(%s %s)\n", indent, n.Token.Tag, n.Token.Text)
		return
	}
	fmt.Fprintf(b, "%s(%s\n", indent, n.Label)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
	fmt.Fprintf(b, "%s)\n", indent)
}

// Dependency is a typed grammatical relation between two tokens, identified
// by their sentence positions.
type Dependency struct {
	// Rel is the relation name (e.g. "dobj", "neg").
	Rel string
	// Head is the index of the governing token.
	Head int
	// Dep is the index of the dependent token.
	Dep int
}

// Relation names produced by the dependency pass.
const (
	RelNSubj     = "nsubj"
	RelNSubjPass = "nsubjpass"
	RelDObj      = "dobj"
	RelPObj      = "pobj"
	RelPrep      = "prep"
	RelNeg       = "neg"
	RelAMod      = "amod"
	RelDet       = "det"
	RelAdvMod    = "advmod"
	RelAux       = "aux"
	RelCC        = "cc"
	RelConj      = "conj"
	RelCompound  = "compound"
)

// Parse is the result of parsing one sentence.
type Parse struct {
	// Tokens are the POS-tagged tokens of the sentence.
	Tokens []pos.TaggedToken
	// Tree is the chunked parse tree rooted at S.
	Tree *Node
	// Deps are the typed dependencies.
	Deps []Dependency
}

// DepsWithRel returns the dependencies with the given relation.
func (p *Parse) DepsWithRel(rel string) []Dependency {
	var out []Dependency
	for _, d := range p.Deps {
		if d.Rel == rel {
			out = append(out, d)
		}
	}
	return out
}

// HasDep reports whether relation rel holds between head and dep.
func (p *Parse) HasDep(rel string, head, dep int) bool {
	for _, d := range p.Deps {
		if d.Rel == rel && d.Head == head && d.Dep == dep {
			return true
		}
	}
	return false
}

// Parser parses tagged sentences.
type Parser struct {
	tagger *pos.Tagger
}

// New returns a Parser using a fresh tagger extended with the given proper
// nouns.
func New(properNouns ...string) *Parser {
	return &Parser{tagger: pos.NewTagger(properNouns...)}
}

// UseInterner forwards an interner to the tagger so parsed tokens carry
// dense vocabulary IDs.
func (p *Parser) UseInterner(in *textproc.Interner) { p.tagger.UseInterner(in) }

// ParseSentence tags and parses a sentence.
func (p *Parser) ParseSentence(sentence string) *Parse {
	tokens := p.tagger.TagSentence(sentence)
	return p.ParseTagged(tokens)
}

// ParseTagged parses an already-tagged token sequence.
func (p *Parser) ParseTagged(tokens []pos.TaggedToken) *Parse {
	root := chunk(tokens)
	deps := extractDeps(tokens, root)
	return &Parse{Tokens: tokens, Tree: root, Deps: deps}
}

// chunk groups the tagged tokens into NP/VP/PP/ADVP chunks under an S root.
//
// Every node of one parse is bump-allocated from a single slab: a parse has
// at most len(tokens) leaves plus fewer than len(tokens) internal chunks and
// the root, so the cap guard never triggers in practice and the per-node heap
// allocations collapse into one backing-array allocation. The slab is only
// ever appended to while under capacity, so node pointers stay stable.
func chunk(tokens []pos.TaggedToken) *Node {
	arena := make([]Node, 0, 2*len(tokens)+4)
	alloc := func(label Label) *Node {
		if len(arena) < cap(arena) {
			arena = append(arena, Node{Label: label, TokenIndex: -1})
			return &arena[len(arena)-1]
		}
		return &Node{Label: label, TokenIndex: -1}
	}
	root := alloc(LabelS)
	i := 0
	n := len(tokens)
	leaf := func(idx int) *Node {
		nd := alloc(Label(tokens[idx].Tag))
		nd.Token = &tokens[idx]
		nd.TokenIndex = idx
		return nd
	}
	for i < n {
		tag := tokens[i].Tag
		switch {
		case isNPStart(tokens, i):
			node := alloc(LabelNP)
			for i < n && inNP(tokens, i, node) {
				node.Children = append(node.Children, leaf(i))
				i++
			}
			root.Children = append(root.Children, node)
		case tag.IsVerb() || tag == pos.MD || tag == pos.NEG:
			node := alloc(LabelVP)
			// Aux/modal/negation run followed by verbs and interleaved
			// adverbs/negations, plus trailing particles ("turn off").
			for i < n {
				t := tokens[i].Tag
				if t.IsVerb() || t == pos.MD || t == pos.NEG || t == pos.TO ||
					(t == pos.RB && i+1 < n && (tokens[i+1].Tag.IsVerb() || tokens[i+1].Tag == pos.NEG)) {
					node.Children = append(node.Children, leaf(i))
					i++
					continue
				}
				break
			}
			root.Children = append(root.Children, node)
		case tag == pos.IN || tag == pos.TO:
			node := alloc(LabelPP)
			node.Children = append(node.Children, leaf(i))
			i++
			// Attach the following NP inside the PP.
			if i < n && isNPStart(tokens, i) {
				np := alloc(LabelNP)
				for i < n && inNP(tokens, i, np) {
					np.Children = append(np.Children, leaf(i))
					i++
				}
				node.Children = append(node.Children, np)
			}
			root.Children = append(root.Children, node)
		case tag == pos.RB:
			node := alloc(LabelADVP)
			for i < n && tokens[i].Tag == pos.RB {
				node.Children = append(node.Children, leaf(i))
				i++
			}
			root.Children = append(root.Children, node)
		case tag == pos.CC:
			node := alloc(LabelCC)
			node.Children = []*Node{leaf(i)}
			root.Children = append(root.Children, node)
			i++
		default:
			node := alloc(LabelO)
			node.Children = []*Node{leaf(i)}
			root.Children = append(root.Children, node)
			i++
		}
	}
	return root
}

// isNPStart reports whether a noun phrase can start at position i.
func isNPStart(tokens []pos.TaggedToken, i int) bool {
	t := tokens[i].Tag
	switch t {
	case pos.DT, pos.PRPS, pos.CD, pos.PRP, pos.EX:
		return true
	case pos.JJ:
		// Adjective leading into a noun.
		return followedByNoun(tokens, i)
	case pos.VBG, pos.VBN:
		// Participle modifier directly before a noun ("saved picture").
		return followedByNoun(tokens, i)
	default:
		return t.IsNoun()
	}
}

func followedByNoun(tokens []pos.TaggedToken, i int) bool {
	for j := i + 1; j < len(tokens); j++ {
		t := tokens[j].Tag
		if t.IsNoun() {
			return true
		}
		if t != pos.JJ && t != pos.CD && t != pos.VBN && t != pos.VBG {
			return false
		}
	}
	return false
}

// inNP reports whether token i continues the noun phrase being built.
func inNP(tokens []pos.TaggedToken, i int, np *Node) bool {
	t := tokens[i].Tag
	switch t {
	case pos.DT, pos.PRPS, pos.CD:
		return len(np.Children) == 0 || !lastIsNoun(np)
	case pos.JJ:
		return !lastIsNoun(np) || followedByNoun(tokens, i)
	case pos.VBN, pos.VBG:
		// participle modifiers allowed before the head noun
		return !lastIsNoun(np) && followedByNoun(tokens, i)
	case pos.PRP, pos.EX:
		return len(np.Children) == 0
	default:
		return t.IsNoun()
	}
}

func lastIsNoun(np *Node) bool {
	if len(np.Children) == 0 {
		return false
	}
	last := np.Children[len(np.Children)-1]
	return last.Token != nil && last.Token.Tag.IsNoun()
}
