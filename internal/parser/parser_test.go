package parser

import (
	"strings"
	"testing"

	"reviewsolver/internal/pos"
)

// findToken returns the index of the first token with the given lower text.
func findToken(p *Parse, lower string) int {
	for i, t := range p.Tokens {
		if t.Lower == lower {
			return i
		}
	}
	return -1
}

func TestFig2Sentence(t *testing.T) {
	// The paper's Fig. 2 sentence: "the app does not contain any bugs".
	p := New().ParseSentence("the app does not contain any bugs")

	// Parse tree must contain the two NPs "the app" and "any bugs".
	nps := p.Tree.PhrasesLabeled(LabelNP)
	var npTexts []string
	for _, np := range nps {
		npTexts = append(npTexts, strings.ToLower(np.Text()))
	}
	wantNPs := map[string]bool{"the app": false, "any bugs": false}
	for _, txt := range npTexts {
		if _, ok := wantNPs[txt]; ok {
			wantNPs[txt] = true
		}
	}
	for np, seen := range wantNPs {
		if !seen {
			t.Errorf("parse tree missing NP %q; got %v", np, npTexts)
		}
	}

	// dobj(contain, bugs), neg(contain, not), nsubj(contain, app).
	contain, not, app, bugs := findToken(p, "contain"), findToken(p, "not"),
		findToken(p, "app"), findToken(p, "bugs")
	if !p.HasDep(RelDObj, contain, bugs) {
		t.Errorf("missing dobj(contain,bugs); deps: %v", p.Deps)
	}
	if !p.HasDep(RelNeg, contain, not) {
		t.Errorf("missing neg(contain,not); deps: %v", p.Deps)
	}
	if !p.HasDep(RelNSubj, contain, app) {
		t.Errorf("missing nsubj(contain,app); deps: %v", p.Deps)
	}
}

func TestVerbObjectExtraction(t *testing.T) {
	tests := []struct {
		sentence  string
		verb, obj string
	}{
		{"i cannot send sms", "send", "sms"},
		{"unable to fetch mail on samsung", "fetch", "mail"},
		{"the app cannot save photos", "save", "photos"},
		{"signal crashed when i tried to find contact", "find", "contact"},
	}
	for _, tt := range tests {
		p := New().ParseSentence(tt.sentence)
		verb, obj := findToken(p, tt.verb), findToken(p, tt.obj)
		if verb < 0 || obj < 0 {
			t.Fatalf("%q: tokens not found", tt.sentence)
		}
		if !p.HasDep(RelDObj, verb, obj) {
			t.Errorf("%q: missing dobj(%s,%s); deps=%v tags=%v",
				tt.sentence, tt.verb, tt.obj, p.Deps, tagsOf(p))
		}
	}
}

func tagsOf(p *Parse) []pos.Tag {
	out := make([]pos.Tag, len(p.Tokens))
	for i, t := range p.Tokens {
		out[i] = t.Tag
	}
	return out
}

func TestPassive(t *testing.T) {
	p := New().ParseSentence("the picture gets flipped")
	flipped, picture := findToken(p, "flipped"), findToken(p, "picture")
	if !p.HasDep(RelNSubjPass, flipped, picture) {
		t.Errorf("missing nsubjpass(flipped,picture); deps=%v tags=%v", p.Deps, tagsOf(p))
	}
}

func TestCoordination(t *testing.T) {
	p := New().ParseSentence("it crashes but i love the design")
	but := findToken(p, "but")
	found := false
	for _, d := range p.Deps {
		if d.Rel == RelCC && d.Dep == but {
			found = true
		}
	}
	if !found {
		t.Errorf("missing cc dependency for 'but'; deps=%v", p.Deps)
	}
}

func TestPrepositionalPhrase(t *testing.T) {
	p := New().ParseSentence("i cannot save photos to sd card")
	to, card := findToken(p, "to"), findToken(p, "card")
	if !p.HasDep(RelPObj, to, card) {
		t.Errorf("missing pobj(to,card); deps=%v tags=%v", p.Deps, tagsOf(p))
	}
}

func TestTreeRendering(t *testing.T) {
	p := New().ParseSentence("the app crashes")
	s := p.Tree.String()
	for _, want := range []string{"(S", "(NP", "(VP", "(DT the)", "(NN app)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, s)
		}
	}
}

func TestLeavesOrder(t *testing.T) {
	p := New().ParseSentence("the reply button does not show")
	leaves := p.Tree.Leaves()
	if len(leaves) != len(p.Tokens) {
		t.Fatalf("leaves %d != tokens %d", len(leaves), len(p.Tokens))
	}
	for i, leaf := range leaves {
		if leaf.TokenIndex != i {
			t.Errorf("leaf %d has TokenIndex %d", i, leaf.TokenIndex)
		}
	}
}

func TestNPWithModifiers(t *testing.T) {
	p := New().ParseSentence("the last phone call failed")
	nps := p.Tree.PhrasesLabeled(LabelNP)
	if len(nps) == 0 {
		t.Fatal("no NP found")
	}
	if got := strings.ToLower(nps[0].Text()); got != "the last phone call" {
		t.Errorf("NP = %q, want 'the last phone call'", got)
	}
	call, last := findToken(p, "call"), findToken(p, "last")
	if !p.HasDep(RelAMod, call, last) {
		t.Errorf("missing amod(call,last); deps=%v", p.Deps)
	}
	phone := findToken(p, "phone")
	if !p.HasDep(RelCompound, call, phone) {
		t.Errorf("missing compound(call,phone); deps=%v", p.Deps)
	}
}

func TestDepsWithRel(t *testing.T) {
	p := New().ParseSentence("the app does not contain any bugs")
	negs := p.DepsWithRel(RelNeg)
	if len(negs) != 1 {
		t.Errorf("want exactly 1 neg dep, got %v", negs)
	}
}

func TestEmptySentence(t *testing.T) {
	p := New().ParseSentence("")
	if len(p.Tokens) != 0 || len(p.Deps) != 0 {
		t.Errorf("empty sentence produced tokens=%d deps=%d", len(p.Tokens), len(p.Deps))
	}
	if p.Tree == nil || p.Tree.Label != LabelS {
		t.Error("empty sentence should still have an S root")
	}
}
