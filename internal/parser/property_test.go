package parser

import (
	"testing"
	"testing/quick"
)

// TestParseArbitraryInput: the parser must never panic and must preserve
// the token stream in its leaves, for any input.
func TestParseArbitraryInput(t *testing.T) {
	p := New()
	f := func(s string) bool {
		parse := p.ParseSentence(s)
		leaves := parse.Tree.Leaves()
		if len(leaves) != len(parse.Tokens) {
			return false
		}
		for i, leaf := range leaves {
			if leaf.TokenIndex != i {
				return false
			}
			if leaf.Token.Text != parse.Tokens[i].Text {
				return false
			}
		}
		// Every dependency must reference valid token indexes.
		for _, d := range parse.Deps {
			if d.Head < 0 || d.Head >= len(parse.Tokens) ||
				d.Dep < 0 || d.Dep >= len(parse.Tokens) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseDeterministic: the same sentence always yields the same tree and
// dependencies.
func TestParseDeterministic(t *testing.T) {
	p := New()
	f := func(s string) bool {
		a := p.ParseSentence(s)
		b := p.ParseSentence(s)
		if a.Tree.String() != b.Tree.String() {
			return false
		}
		if len(a.Deps) != len(b.Deps) {
			return false
		}
		for i := range a.Deps {
			if a.Deps[i] != b.Deps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNoSelfDependencies: a token never governs itself.
func TestNoSelfDependencies(t *testing.T) {
	p := New()
	f := func(s string) bool {
		for _, d := range p.ParseSentence(s).Deps {
			if d.Head == d.Dep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
