package phrase

import (
	"strings"

	"reviewsolver/internal/parser"
	"reviewsolver/internal/pos"
	"reviewsolver/internal/textproc"
)

// Pattern identifies one of the NEON-extracted semantic patterns for vague
// error descriptions (Table 5).
type Pattern int

// The four patterns of Table 5.
const (
	// P1: [function] NEG work — "sync does not work".
	P1 Pattern = iota + 1
	// P2: [subject] NEG [function] — "I cannot register".
	P2
	// P3: [function] fail — "Login always fails".
	P3
	// P4: [function] stopped — "Update button has stopped".
	P4
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case P1:
		return "P1"
	case P2:
		return "P2"
	case P3:
		return "P3"
	case P4:
		return "P4"
	default:
		return "?"
	}
}

// PatternMatch records a matched vague-error pattern and the function words
// it names ("sync", "login", "update button").
type PatternMatch struct {
	Pattern  Pattern
	Function []string
}

// MatchPatterns finds the Table 5 patterns in a parsed sentence. The
// [function] slot is filled with the content words of the subject NP (P1,
// P3, P4) or the negated verb (P2).
func MatchPatterns(p *parser.Parse) []PatternMatch {
	var out []PatternMatch
	toks := p.Tokens

	for i, t := range toks {
		switch t.Lower {
		case "work", "works", "working", "worked":
			// P1: function words NEG work — require a preceding negation.
			if negBefore(toks, i) {
				if fn := subjectWords(p, i); len(fn) > 0 {
					out = append(out, PatternMatch{Pattern: P1, Function: fn})
				}
			}
		case "fail", "fails", "failed", "failing":
			// P3: [function] fail.
			if fn := subjectWords(p, i); len(fn) > 0 {
				out = append(out, PatternMatch{Pattern: P3, Function: fn})
			}
		case "stopped", "stops", "stop":
			// P4: [function] stopped — subject is a feature, not a person.
			if fn := subjectWords(p, i); len(fn) > 0 && !isPersonWord(fn[len(fn)-1]) {
				out = append(out, PatternMatch{Pattern: P4, Function: fn})
			}
		}
	}

	// P2: [subject] NEG [function-verb] — "I cannot register".
	for _, d := range p.DepsWithRel(parser.RelNeg) {
		verb := toks[d.Head]
		if !verb.Tag.IsVerb() {
			continue
		}
		lower := verb.Lower
		if lower == "work" || lower == "works" || isVacuousVerb(lower) {
			continue
		}
		// Only bare verbs (no object) are "vague": "I cannot register".
		hasObj := false
		for _, od := range p.DepsWithRel(parser.RelDObj) {
			if od.Head == d.Head {
				hasObj = true
			}
		}
		if !hasObj {
			out = append(out, PatternMatch{Pattern: P2, Function: []string{lemma(lower)}})
		}
	}
	// Also catch NEG directly before a verb at the token level ("cannot
	// register" where the dependency pass missed the clause).
	if len(out) == 0 {
		for i := 1; i < len(toks); i++ {
			if toks[i-1].Tag == pos.NEG && toks[i].Tag.IsVerb() &&
				!isVacuousVerb(toks[i].Lower) && (i+1 == len(toks) || !toks[i+1].Tag.IsNoun()) {
				out = append(out, PatternMatch{Pattern: P2, Function: []string{lemma(toks[i].Lower)}})
			}
		}
	}
	return out
}

// negBefore reports whether a negation token occurs within three tokens
// before index i.
func negBefore(toks []pos.TaggedToken, i int) bool {
	for j := i - 1; j >= 0 && j >= i-3; j-- {
		if toks[j].Tag == pos.NEG {
			return true
		}
	}
	return false
}

// subjectWords returns the content words of the subject NP of the verb at
// index verbIdx.
func subjectWords(p *parser.Parse, verbIdx int) []string {
	for _, d := range p.Deps {
		if (d.Rel == parser.RelNSubj || d.Rel == parser.RelNSubjPass) && d.Head == verbIdx {
			return npContentWordsAt(p, d.Dep)
		}
	}
	// Fallback: content words immediately before the verb.
	var words []string
	for i := verbIdx - 1; i >= 0; i-- {
		t := p.Tokens[i]
		if t.Tag.IsNoun() || t.Tag == pos.VB && i == 0 {
			words = append([]string{t.Lower}, words...)
			continue
		}
		if t.Tag == pos.NEG || t.Tag == pos.MD || t.Tag.IsVerb() || t.Tag == pos.RB {
			continue
		}
		break
	}
	return filterPersonAndStop(words)
}

func npContentWordsAt(p *parser.Parse, headIdx int) []string {
	words := []string{}
	for _, d := range p.Deps {
		if d.Head == headIdx && (d.Rel == parser.RelAMod || d.Rel == parser.RelCompound) {
			words = append(words, p.Tokens[d.Dep].Lower)
		}
	}
	words = append(words, p.Tokens[headIdx].Lower)
	return filterPersonAndStop(words)
}

func filterPersonAndStop(words []string) []string {
	out := words[:0]
	for _, w := range words {
		if isPersonWord(w) || textproc.IsStopword(w) {
			continue
		}
		out = append(out, w)
	}
	return out
}

func isPersonWord(w string) bool {
	switch w {
	case "i", "me", "you", "he", "she", "we", "they", "it", "user", "users",
		"people", "everyone", "anybody", "app", "apps", "application", "phone":
		return true
	}
	return false
}

// Intent classifies a sentence by the author's purpose, following
// Panichella et al.'s taxonomy; ReviewSolver filters out the first three
// before phrase extraction (§3.2.4).
type Intent int

// Intent values.
const (
	IntentProblem Intent = iota + 1 // problem discovery (kept)
	IntentFeatureRequest
	IntentInfoGiving
	IntentInfoSeeking
	IntentOther
)

// String returns the intent name.
func (i Intent) String() string {
	switch i {
	case IntentProblem:
		return "problem"
	case IntentFeatureRequest:
		return "feature-request"
	case IntentInfoGiving:
		return "info-giving"
	case IntentInfoSeeking:
		return "info-seeking"
	default:
		return "other"
	}
}

// ShouldFilter reports whether a sentence with this intent must be excluded
// from phrase extraction.
func (i Intent) ShouldFilter() bool {
	switch i {
	case IntentFeatureRequest, IntentInfoGiving, IntentInfoSeeking:
		return true
	}
	return false
}

var featureRequestCues = []string{
	"please add", "pls add", "add a", "add an", "add the", "would be nice",
	"would be great", "would love", "wish it", "wish there", "hope you",
	"hope to see", "should add", "could you add", "can you add", "i want a",
	"it needs a", "needs an option", "need an option", "option to", "feature request",
	"suggestion", "it would help", "please include", "please support",
	"please make", "should have", "missing feature", "please bring",
	"would like to see", "if you could add",
}

var infoSeekingCues = []string{
	"how do i", "how can i", "how to", "is there a way", "is there any way",
	"can someone", "does anyone", "anyone know", "any idea", "what is the",
	"where is the", "when will", "can you tell", "could you tell",
	"why does", "why is", "why do",
}

var infoGivingCues = []string{
	"i use", "i am using", "i'm using", "im using", "my device is",
	"running android", "android version", "using nougat", "using oreo",
	"for reference", "fyi", "just so you know", "my phone is", "on a galaxy",
	"i have a", "i own a",
}

var problemCues = []string{
	"crash", "error", "bug", "fail", "broken", "freeze", "frozen", "stuck",
	"doesn't work", "doesnt work", "does not work", "not working",
	"won't", "wont", "can't", "cant", "cannot", "unable", "problem", "issue",
	"stopped working", "force close", "hangs", "glitch",
}

// ClassifyIntent assigns an intent to one sentence using cue phrases, the
// strategy of the ARDOC classifier re-expressed as deterministic rules.
// Problem cues dominate: a sentence that both requests a feature and
// reports a crash is kept as a problem sentence.
func ClassifyIntent(sentence string) Intent {
	s := " " + strings.ToLower(sentence) + " "
	for _, cue := range problemCues {
		if strings.Contains(s, cue) {
			return IntentProblem
		}
	}
	for _, cue := range featureRequestCues {
		if strings.Contains(s, cue) {
			return IntentFeatureRequest
		}
	}
	isQuestion := strings.Contains(sentence, "?")
	for _, cue := range infoSeekingCues {
		if strings.Contains(s, cue) {
			return IntentInfoSeeking
		}
	}
	if isQuestion {
		return IntentInfoSeeking
	}
	for _, cue := range infoGivingCues {
		if strings.Contains(s, cue) {
			return IntentInfoGiving
		}
	}
	return IntentOther
}

// FilterSentences drops sentences whose intent must be filtered, returning
// the sentences to feed into phrase extraction and the number filtered.
func FilterSentences(sentences []string) (kept []string, filtered int) {
	for _, s := range sentences {
		if ClassifyIntent(s).ShouldFilter() {
			filtered++
			continue
		}
		kept = append(kept, s)
	}
	return kept, filtered
}
