// Package phrase extracts the semantic units that ReviewSolver matches
// against code: verb phrases (verb + object, from typed dependencies) and
// noun phrases (from the parse tree), per §3.2.4; the NEON-style semantic
// patterns P1–P4 for vaguely described errors (§4.1.2, Table 5); error-word
// and exception-type detection (§4.1.3, §4.2.3); and the ARDOC-style
// sentence-intent filter that drops feature-request / information-giving /
// information-seeking sentences before localization (§3.2.4).
package phrase

import (
	"strings"

	"reviewsolver/internal/parser"
	"reviewsolver/internal/pos"
	"reviewsolver/internal/textproc"
)

// VerbPhrase is a verb with its object, e.g. {Verb: "fetch", Object:
// ["mail"]} from "unable to fetch mail".
type VerbPhrase struct {
	// Verb is the lower-cased main verb.
	Verb string
	// Object holds the lower-cased object words (head noun last).
	Object []string
	// Negated reports whether the verb carries a neg dependency or a
	// negative auxiliary ("can't send").
	Negated bool
	// Passive reports whether the verb was a passive head whose subject is
	// the semantic object ("the picture gets flipped" → flip picture).
	Passive bool
}

// Words returns the phrase as a word slice (verb first).
func (v VerbPhrase) Words() []string {
	out := make([]string, 0, 1+len(v.Object))
	out = append(out, v.Verb)
	out = append(out, v.Object...)
	return out
}

// String renders the phrase as text.
func (v VerbPhrase) String() string { return strings.Join(v.Words(), " ") }

// ObjectHead returns the head noun of the object (its last word), or "".
func (v VerbPhrase) ObjectHead() string {
	if len(v.Object) == 0 {
		return ""
	}
	return v.Object[len(v.Object)-1]
}

// NounPhrase is a noun phrase from the parse tree, e.g. "the last phone
// call".
type NounPhrase struct {
	// Words are the lower-cased words including determiners.
	Words []string
	// Head is the head noun (last noun of the phrase).
	Head string
	// Modifiers are the non-determiner words before the head.
	Modifiers []string
}

// String renders the phrase as text.
func (n NounPhrase) String() string { return strings.Join(n.Words, " ") }

// ContentWords returns the phrase words without determiners/pronouns.
func (n NounPhrase) ContentWords() []string {
	out := make([]string, 0, len(n.Modifiers)+1)
	out = append(out, n.Modifiers...)
	if n.Head != "" {
		out = append(out, n.Head)
	}
	return out
}

// Extraction is the result of phrase extraction over one sentence.
type Extraction struct {
	VerbPhrases []VerbPhrase
	NounPhrases []NounPhrase
}

// Extractor extracts phrases from sentences.
type Extractor struct {
	parser *parser.Parser
}

// NewExtractor returns an Extractor whose tagger knows the given proper
// nouns (app-specific vocabulary).
func NewExtractor(properNouns ...string) *Extractor {
	return &Extractor{parser: parser.New(properNouns...)}
}

// UseInterner forwards an interner down to the tagger so extraction runs on
// ID-annotated tokens.
func (e *Extractor) UseInterner(in *textproc.Interner) { e.parser.UseInterner(in) }

// ExtractSentence parses a sentence and extracts its phrases.
func (e *Extractor) ExtractSentence(sentence string) Extraction {
	return e.Extract(e.parser.ParseSentence(sentence))
}

// Parse exposes the underlying parser for callers that need the raw parse.
func (e *Extractor) Parse(sentence string) *parser.Parse {
	return e.parser.ParseSentence(sentence)
}

// Extract pulls verb and noun phrases out of a parse.
//
// Verb phrases come from typed dependencies: for each dobj(v,o) the object
// NP words are attached to the verb; for each nsubjpass(v,s) the passive
// subject serves as the object ("the picture gets flipped" → "flip
// picture"). Noun phrases come from the parse tree's NP nodes (§3.2.4).
func (e *Extractor) Extract(p *parser.Parse) Extraction {
	var ex Extraction

	// Noun phrases from the tree.
	for _, np := range p.Tree.PhrasesLabeled(parser.LabelNP) {
		ex.NounPhrases = append(ex.NounPhrases, buildNounPhrase(p, np))
	}

	// Verb phrases from dependencies.
	negated := make(map[int]bool)
	for _, d := range p.DepsWithRel(parser.RelNeg) {
		negated[d.Head] = true
	}
	objWords := func(objIdx int) []string {
		// Expand the object token to its NP content words via amod/compound.
		words := make([]string, 0, 4)
		for _, d := range p.Deps {
			if d.Head == objIdx && (d.Rel == parser.RelAMod || d.Rel == parser.RelCompound) {
				words = append(words, p.Tokens[d.Dep].Lower)
			}
		}
		words = append(words, p.Tokens[objIdx].Lower)
		return words
	}
	seen := make(map[string]struct{})
	addVP := func(vp VerbPhrase) {
		key := vp.String()
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		ex.VerbPhrases = append(ex.VerbPhrases, vp)
	}
	hasDObj := make(map[int]bool)
	for _, d := range p.DepsWithRel(parser.RelDObj) {
		hasDObj[d.Head] = true
	}
	for _, d := range p.DepsWithRel(parser.RelDObj) {
		verb := p.Tokens[d.Head].Lower
		if isVacuousVerb(verb) {
			continue
		}
		addVP(VerbPhrase{
			Verb:    lemma(verb),
			Object:  objWords(d.Dep),
			Negated: negated[d.Head],
		})
	}
	for _, d := range p.DepsWithRel(parser.RelNSubjPass) {
		verb := p.Tokens[d.Head].Lower
		if isVacuousVerb(verb) {
			continue
		}
		addVP(VerbPhrase{
			Verb:    lemma(verb),
			Object:  objWords(d.Dep),
			Negated: negated[d.Head],
			Passive: true,
		})
	}
	// Verbs whose object arrives via a preposition ("connect to server").
	// Only verbs without a direct object participate, and only through
	// complement prepositions — temporal/locative adjuncts ("for the
	// longest time", "on Samsung") would otherwise create the exact false
	// positives the paper warns about (§2.3 Example 1).
	for _, d := range p.DepsWithRel(parser.RelPrep) {
		verb := p.Tokens[d.Head].Lower
		if isVacuousVerb(verb) || hasDObj[d.Head] {
			continue
		}
		if !isComplementPrep(p.Tokens[d.Dep].Lower) {
			continue
		}
		for _, d2 := range p.DepsWithRel(parser.RelPObj) {
			if d2.Head != d.Dep {
				continue
			}
			addVP(VerbPhrase{
				Verb:    lemma(verb),
				Object:  objWords(d2.Dep),
				Negated: negated[d.Head],
			})
		}
	}
	// Gerund-modifier noun phrases describe actions ("uploading photos
	// error"): synthesize the verb phrase from the gerund and the nouns
	// that follow it, excluding error words.
	for _, np := range p.Tree.PhrasesLabeled(parser.LabelNP) {
		leaves := np.Leaves()
		if len(leaves) < 2 || leaves[0].Token.Tag != pos.VBG {
			continue
		}
		var object []string
		for _, leaf := range leaves[1:] {
			w := leaf.Token.Lower
			if leaf.Token.Tag.IsNoun() && !IsErrorWord(w) {
				object = append(object, w)
			}
		}
		if len(object) > 0 {
			addVP(VerbPhrase{Verb: lemma(leaves[0].Token.Lower), Object: object})
		}
	}
	return ex
}

// isComplementPrep reports whether a preposition typically introduces a
// verb's complement rather than a temporal/locative adjunct.
func isComplementPrep(prep string) bool {
	switch prep {
	case "to", "with", "into", "onto", "from":
		return true
	}
	return false
}

func buildNounPhrase(p *parser.Parse, np *parser.Node) NounPhrase {
	out := NounPhrase{}
	for _, leaf := range np.Leaves() {
		w := leaf.Token.Lower
		out.Words = append(out.Words, w)
		switch {
		case leaf.Token.Tag.IsNoun():
			if out.Head != "" {
				out.Modifiers = append(out.Modifiers, out.Head)
			}
			out.Head = w
		case leaf.Token.Tag == pos.JJ || leaf.Token.Tag == pos.VBN ||
			leaf.Token.Tag == pos.VBG || leaf.Token.Tag == pos.CD:
			out.Modifiers = append(out.Modifiers, w)
		}
	}
	return out
}

// isVacuousVerb filters verbs that carry no localizable semantics.
func isVacuousVerb(v string) bool {
	switch strings.TrimSuffix(v, "s") {
	case "be", "is", "am", "are", "wa", "were", "been",
		"do", "doe", "did", "have", "ha", "had",
		"get", "got", "make", "made", "let", "seem", "look",
		"want", "need", "think", "know", "say", "said", "tell", "told",
		"go", "goe", "went", "come", "came", "keep", "kept", "try", "tried",
		"give", "gave", "happen", "happened", "appear", "appeared":
		return true
	}
	return false
}

// lemma reduces an inflected verb to its base form using the same stemming
// heuristics as the embedding model, with an irregular-verb table on top.
func lemma(v string) string {
	if base, ok := irregularVerbs[v]; ok {
		return base
	}
	switch {
	case strings.HasSuffix(v, "ies") && len(v) > 4:
		return v[:len(v)-3] + "y"
	case strings.HasSuffix(v, "ing") && len(v) > 5:
		v = v[:len(v)-3]
	case strings.HasSuffix(v, "ed") && len(v) > 4:
		v = v[:len(v)-2]
	case strings.HasSuffix(v, "es") && len(v) > 4 &&
		(strings.HasSuffix(v[:len(v)-2], "sh") || strings.HasSuffix(v[:len(v)-2], "ch") ||
			strings.HasSuffix(v[:len(v)-2], "s") || strings.HasSuffix(v[:len(v)-2], "x")):
		v = v[:len(v)-2]
	case strings.HasSuffix(v, "s") && len(v) > 3 && !strings.HasSuffix(v, "ss"):
		v = v[:len(v)-1]
	}
	if len(v) > 3 && v[len(v)-1] == v[len(v)-2] && !strings.ContainsRune("aeiou", rune(v[len(v)-1])) && v[len(v)-1] != 'l' {
		v = v[:len(v)-1]
	}
	return v
}

var irregularVerbs = map[string]string{
	"sent": "send", "sends": "send", "sending": "send",
	"broke": "break", "broken": "break",
	"froze": "freeze", "frozen": "freeze",
	"hung": "hang", "went": "go", "got": "get", "took": "take",
	"taken": "take", "wrote": "write", "written": "write",
	"found": "find", "lost": "lose", "kept": "keep", "made": "make",
	"said": "say", "saw": "see", "seen": "see", "came": "come",
	"gave": "give", "given": "give", "chose": "choose", "chosen": "choose",
	"flipped": "flip", "stopped": "stop", "crashed": "crash",
	"failed": "fail", "tried": "try", "saved": "save", "uploaded": "upload",
	"downloaded": "download", "synced": "sync", "fetched": "fetch",
	"opened": "open", "closed": "close", "updated": "update",
	"does": "do", "did": "do", "has": "have", "had": "have",
	"is": "be", "am": "be", "are": "be", "was": "be", "were": "be",
}

// Lemma exposes verb lemmatization for other packages (method-name
// conversion shares it).
func Lemma(v string) string { return lemma(v) }

// ErrorWords is the set of error-type nouns used by §4.1.3 ("we first check
// whether the noun phrases contain error related words").
var ErrorWords = map[string]struct{}{
	"error": {}, "errors": {}, "bug": {}, "bugs": {}, "fault": {},
	"faults": {}, "issue": {}, "issues": {}, "problem": {}, "problems": {},
	"glitch": {}, "glitches": {}, "defect": {}, "defects": {},
	"failure": {}, "failures": {},
}

// IsErrorWord reports whether a lower-cased word denotes an error.
func IsErrorWord(w string) bool {
	_, ok := ErrorWords[w]
	return ok
}

// ErrorModifier inspects a noun phrase like "connection error" or
// "certificate issues" and returns the word(s) modifying the error noun, or
// nil when the phrase is not an error-type NP (§4.1.3).
func ErrorModifier(np NounPhrase) []string {
	// Find the first error word anywhere in the phrase ("connection error
	// message": the error word need not be the head).
	errIdx := -1
	for i, w := range np.Words {
		if IsErrorWord(w) {
			errIdx = i
			break
		}
	}
	if errIdx <= 0 {
		return nil
	}
	mods := make([]string, 0, errIdx)
	for _, w := range np.Words[:errIdx] {
		if !IsErrorWord(w) && !textproc.IsStopword(w) {
			mods = append(mods, w)
		}
	}
	if len(mods) == 0 {
		return nil
	}
	return mods
}

// ExceptionType inspects a noun phrase for an exception mention ("socket
// exception", "null pointer exception") and returns the exception-describing
// words before "exception", or nil (§4.2.3 Step 2).
func ExceptionType(np NounPhrase) []string {
	idx := -1
	for i, w := range np.Words {
		if w == "exception" || w == "exceptions" {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return nil
	}
	var words []string
	for _, w := range np.Words[:idx] {
		if !textproc.IsStopword(w) && w != "a" && w != "an" {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil
	}
	return words
}
