package phrase

import (
	"reflect"
	"strings"
	"testing"
)

func TestExtractVerbPhrases(t *testing.T) {
	e := NewExtractor()
	tests := []struct {
		sentence string
		wantVP   string
	}{
		{"unable to fetch mail on samsung", "fetch mail"},
		{"i cannot send sms to my friends", "send sms"},
		{"the app cannot save photos", "save photos"},
		{"uploading photos error appears when i upload photos", "upload photos"},
	}
	for _, tt := range tests {
		ex := e.ExtractSentence(tt.sentence)
		found := false
		for _, vp := range ex.VerbPhrases {
			if vp.String() == tt.wantVP {
				found = true
			}
		}
		if !found {
			var got []string
			for _, vp := range ex.VerbPhrases {
				got = append(got, vp.String())
			}
			t.Errorf("%q: verb phrases %v missing %q", tt.sentence, got, tt.wantVP)
		}
	}
}

func TestExtractVerbPhraseNegation(t *testing.T) {
	e := NewExtractor()
	ex := e.ExtractSentence("the app does not contain any bugs")
	if len(ex.VerbPhrases) == 0 {
		t.Fatal("no verb phrases")
	}
	vp := ex.VerbPhrases[0]
	if vp.Verb != "contain" {
		t.Errorf("verb = %q, want contain", vp.Verb)
	}
	if !vp.Negated {
		t.Error("phrase should be negated")
	}
	if vp.ObjectHead() != "bugs" {
		t.Errorf("object head = %q, want bugs", vp.ObjectHead())
	}
}

func TestExtractPassive(t *testing.T) {
	e := NewExtractor()
	ex := e.ExtractSentence("the picture gets flipped")
	found := false
	for _, vp := range ex.VerbPhrases {
		if vp.Verb == "flip" && vp.ObjectHead() == "picture" && vp.Passive {
			found = true
		}
	}
	if !found {
		t.Errorf("passive 'flip picture' not extracted: %+v", ex.VerbPhrases)
	}
}

func TestExtractNounPhrases(t *testing.T) {
	e := NewExtractor()
	ex := e.ExtractSentence("the app does not contain any bugs")
	var texts []string
	for _, np := range ex.NounPhrases {
		texts = append(texts, np.String())
	}
	for _, want := range []string{"the app", "any bugs"} {
		ok := false
		for _, got := range texts {
			if got == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("noun phrases %v missing %q", texts, want)
		}
	}
}

func TestNounPhraseParts(t *testing.T) {
	e := NewExtractor()
	ex := e.ExtractSentence("the last phone call failed")
	if len(ex.NounPhrases) == 0 {
		t.Fatal("no noun phrases")
	}
	np := ex.NounPhrases[0]
	if np.Head != "call" {
		t.Errorf("head = %q, want call", np.Head)
	}
	wantMods := []string{"last", "phone"}
	if !reflect.DeepEqual(np.Modifiers, wantMods) {
		t.Errorf("modifiers = %v, want %v", np.Modifiers, wantMods)
	}
	if got := np.ContentWords(); !reflect.DeepEqual(got, []string{"last", "phone", "call"}) {
		t.Errorf("content words = %v", got)
	}
}

func TestLemma(t *testing.T) {
	tests := map[string]string{
		"fetches": "fetch", "sent": "send", "crashes": "crash",
		"flipped": "flip", "uploading": "upload", "tries": "try",
		"saved": "save", "broke": "break", "syncs": "sync", "send": "send",
	}
	for in, want := range tests {
		if got := Lemma(in); got != want {
			t.Errorf("Lemma(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestErrorModifier(t *testing.T) {
	e := NewExtractor()
	ex := e.ExtractSentence("a connection error message appeared at the bottom")
	var mods []string
	for _, np := range ex.NounPhrases {
		if m := ErrorModifier(np); m != nil {
			mods = m
			break
		}
	}
	if len(mods) == 0 || mods[0] != "connection" {
		t.Errorf("error modifier = %v, want [connection ...]", mods)
	}

	// Non-error NP yields nil.
	ex = e.ExtractSentence("the reply button")
	for _, np := range ex.NounPhrases {
		if m := ErrorModifier(np); m != nil {
			t.Errorf("unexpected error modifier %v for %q", m, np.String())
		}
	}
}

func TestExceptionType(t *testing.T) {
	e := NewExtractor()
	ex := e.ExtractSentence("there's a socket exception when it polls")
	var words []string
	for _, np := range ex.NounPhrases {
		if w := ExceptionType(np); w != nil {
			words = w
		}
	}
	if len(words) != 1 || words[0] != "socket" {
		t.Errorf("exception type = %v, want [socket]", words)
	}

	ex = e.ExtractSentence("you got a null pointer exception on the login screen")
	words = nil
	for _, np := range ex.NounPhrases {
		if w := ExceptionType(np); w != nil {
			words = w
		}
	}
	if strings.Join(words, " ") != "null pointer" {
		t.Errorf("exception type = %v, want [null pointer]", words)
	}
}

func TestMatchPatterns(t *testing.T) {
	e := NewExtractor()
	tests := []struct {
		sentence string
		pattern  Pattern
		function string
	}{
		{"sync does not work", P1, "sync"},
		{"i cannot register", P2, "register"},
		{"login always fails", P3, "login"},
		{"update button has stopped", P4, "update button"},
	}
	for _, tt := range tests {
		p := e.Parse(tt.sentence)
		matches := MatchPatterns(p)
		found := false
		for _, m := range matches {
			if m.Pattern == tt.pattern && strings.Join(m.Function, " ") == tt.function {
				found = true
			}
		}
		if !found {
			t.Errorf("%q: matches %+v missing %s[%s]", tt.sentence, matches, tt.pattern, tt.function)
		}
	}
}

func TestMatchPatternsNoFalsePositive(t *testing.T) {
	e := NewExtractor()
	for _, s := range []string{
		"the app works great",
		"i love this app",
	} {
		p := e.Parse(s)
		if matches := MatchPatterns(p); len(matches) != 0 {
			t.Errorf("%q: unexpected matches %+v", s, matches)
		}
	}
}

func TestClassifyIntent(t *testing.T) {
	tests := []struct {
		sentence string
		want     Intent
	}{
		{"please add a dark theme", IntentFeatureRequest},
		{"would be nice to have widgets", IntentFeatureRequest},
		{"how do i export my data?", IntentInfoSeeking},
		{"when will the tablet version arrive?", IntentInfoSeeking},
		{"i use nougat 7.0 android version", IntentInfoGiving},
		{"the app crashes on startup", IntentProblem},
		{"great app", IntentOther},
		// Problem dominates a mixed sentence.
		{"please add a fix for the crash", IntentProblem},
	}
	for _, tt := range tests {
		if got := ClassifyIntent(tt.sentence); got != tt.want {
			t.Errorf("ClassifyIntent(%q) = %s, want %s", tt.sentence, got, tt.want)
		}
	}
}

func TestFilterSentences(t *testing.T) {
	kept, filtered := FilterSentences([]string{
		"the app crashes on startup",
		"please add a dark theme",
		"i use nougat 7.0 android version",
		"sync fails every time",
	})
	if filtered != 2 {
		t.Errorf("filtered = %d, want 2", filtered)
	}
	if len(kept) != 2 {
		t.Errorf("kept = %v", kept)
	}
}

func TestIntentShouldFilter(t *testing.T) {
	if IntentProblem.ShouldFilter() || IntentOther.ShouldFilter() {
		t.Error("problem/other sentences must be kept")
	}
	for _, i := range []Intent{IntentFeatureRequest, IntentInfoGiving, IntentInfoSeeking} {
		if !i.ShouldFilter() {
			t.Errorf("%s should be filtered", i)
		}
	}
}

func TestVerbPhraseWords(t *testing.T) {
	vp := VerbPhrase{Verb: "fetch", Object: []string{"new", "mail"}}
	if got := vp.Words(); !reflect.DeepEqual(got, []string{"fetch", "new", "mail"}) {
		t.Errorf("Words() = %v", got)
	}
	if vp.ObjectHead() != "mail" {
		t.Errorf("ObjectHead() = %q", vp.ObjectHead())
	}
	if (VerbPhrase{Verb: "x"}).ObjectHead() != "" {
		t.Error("empty object should yield empty head")
	}
}

func TestPatternString(t *testing.T) {
	if P1.String() != "P1" || P4.String() != "P4" {
		t.Error("pattern String() broken")
	}
}
