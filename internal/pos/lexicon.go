package pos

// lexiconEntries maps review-English words to their most frequent POS tag.
// Ambiguous words get their most frequent reading; contextual rules repair
// the rest.
var lexiconEntries = map[string]Tag{
	// determiners
	"the": DT, "a": DT, "an": DT, "this": DT, "that": DT, "these": DT,
	"those": DT, "every": DT, "each": DT, "any": DT, "some": DT, "no": DT,
	"all": DT, "both": DT, "another": DT, "such": DT,

	// pronouns
	"i": PRP, "me": PRP, "you": PRP, "he": PRP, "him": PRP, "she": PRP,
	"it": PRP, "we": PRP, "us": PRP, "they": PRP, "them": PRP,
	"myself": PRP, "itself": PRP, "something": PRP, "anything": PRP,
	"everything": PRP, "nothing": PRP, "someone": PRP, "anyone": PRP,
	"everyone": PRP, "nobody": PRP,
	"my": PRPS, "your": PRPS, "his": PRPS, "her": PRPS, "its": PRPS,
	"our": PRPS, "their": PRPS,

	// wh-words
	"what": WP, "who": WP, "which": WP, "whom": WP, "whose": WP,
	"when": WRB, "where": WRB, "why": WRB, "how": WRB, "whenever": WRB,
	"there": EX,

	// negation
	"not": NEG, "never": NEG, "cannot": NEG, "cant": NEG, "wont": NEG,
	"dont": NEG, "doesnt": NEG, "didnt": NEG, "isnt": NEG, "wasnt": NEG,
	"couldnt": NEG, "wouldnt": NEG, "none": NEG, "neither": NEG, "nor": NEG,

	// modals and auxiliaries
	"can": MD, "could": MD, "will": MD, "would": MD, "shall": MD,
	"should": MD, "may": MD, "might": MD, "must": MD,
	"is": VBZ, "am": VBP, "are": VBP, "was": VBD, "were": VBD, "be": VB,
	"been": VBN, "being": VBG, "do": VBP, "does": VBZ, "did": VBD,
	"have": VBP, "has": VBZ, "had": VBD, "having": VBG,
	"to": TO,

	// conjunctions
	"and": CC, "or": CC, "but": CC, "yet": CC, "so": CC, "whereas": CC,
	"nevertheless": CC, "however": CC,

	// prepositions / subordinators
	"in": IN, "on": IN, "at": IN, "of": IN, "for": IN, "from": IN,
	"with": IN, "without": IN, "by": IN, "about": IN, "into": IN,
	"onto": IN, "over": IN, "under": IN, "through": IN, "between": IN,
	"during": IN, "after": IN, "before": IN, "since": IN, "until": IN,
	"while": IN, "because": IN, "if": IN, "though": IN, "although": IN,
	"as": IN, "than": IN, "per": IN, "via": IN, "against": IN,
	"across": IN, "behind": IN, "beyond": IN, "within": IN, "out": IN,
	"off": IN, "up": IN, "down": IN, "upside": IN,

	// adverbs
	"very": RB, "really": RB, "just": RB, "only": RB, "even": RB,
	"still": RB, "again": RB, "always": RB, "sometimes": RB, "often": RB,
	"usually": RB, "rarely": RB, "constantly": RB, "randomly": RB,
	"suddenly": RB, "recently": RB, "currently": RB, "now": RB,
	"today": RB, "yesterday": RB, "here": RB, "too": RB, "also": RB,
	"anymore": RB, "back": RB, "away": RB, "then": RB, "once": RB,
	"twice": RB, "already": RB, "almost": RB, "maybe": RB, "perhaps": RB,
	"probably": RB, "definitely": RB, "actually": RB, "literally": RB,
	"basically": RB, "especially": RB, "properly": RB, "correctly": RB,
	"well": RB, "fast": RB, "instead": RB, "otherwise": RB, "forever": RB,
	"please": UH, "thanks": UH, "thank": UH, "sorry": UH, "hello": UH,
	"ok": UH, "okay": UH, "wow": UH, "ugh": UH, "yes": UH, "yeah": UH,

	// adjectives
	"good": JJ, "great": JJ, "nice": JJ, "awesome": JJ, "amazing": JJ,
	"excellent": JJ, "perfect": JJ, "best": JJ, "better": JJ, "bad": JJ,
	"worse": JJ, "worst": JJ, "terrible": JJ, "horrible": JJ, "awful": JJ,
	"useless": JJ, "annoying": JJ, "frustrating": JJ, "slow": JJ,
	"quick": JJ, "easy": JJ, "hard": JJ, "difficult": JJ, "simple": JJ,
	"clean": JJ, "beautiful": JJ, "ugly": JJ, "new": JJ, "old": JJ,
	"latest": JJ, "recent": JJ, "last": JJ, "first": JJ, "previous": JJ,
	"current": JJ, "random": JJ, "blank": JJ, "black": JJ, "white": JJ,
	"empty": JJ, "full": JJ, "free": JJ, "paid": JJ, "premium": JJ,
	"stable": JJ, "unstable": JJ, "responsive": JJ, "unresponsive": JJ,
	"unusable": JJ, "unable": JJ, "impossible": JJ, "possible": JJ,
	"many": JJ, "much": JJ, "more": JJ, "most": JJ, "less": JJ,
	"least": JJ, "few": JJ, "several": JJ, "other": JJ, "same": JJ,
	"different": JJ, "certain": JJ, "whole": JJ, "entire": JJ, "big": JJ,
	"small": JJ, "long": JJ, "short": JJ, "high": JJ, "low": JJ,
	"dark": JJ, "light": JJ, "wrong": JJ, "right": JJ, "correct": JJ,
	"incorrect": JJ, "missing": JJ, "available": JJ, "unavailable": JJ,
	"visible": JJ, "invisible": JJ, "broken": JJ, "frozen": JJ,
	"stuck": JJ, "corrupt": JJ, "corrupted": JJ, "main": JJ, "non": JJ,

	// high-frequency verbs (base/present)
	"open": VB, "close": VB, "launch": VB, "start": VB, "stop": VB,
	"install": VB, "reinstall": VB, "uninstall": VB, "update": VB,
	"upgrade": VB, "download": VB, "upload": VB, "sync": VB, "load": VB,
	"reload": VB, "save": VB, "delete": VB, "remove": VB, "move": VB,
	"send": VB, "receive": VB, "fetch": VB, "refresh": VB, "connect": VB,
	"disconnect": VB, "login": VB, "logout": VB, "register": VB,
	"sign": VB, "verify": VB, "search": VB, "find": VB, "play": VB,
	"pause": VB, "record": VB, "scroll": VB, "swipe": VB, "tap": VB,
	"click": VB, "press": VB, "type": VB, "write": VB, "read": VB,
	"edit": VB, "share": VB, "post": VB, "reply": VB, "forward": VB,
	"import": VB, "export": VB, "browse": VB, "stream": VB, "notify": VB,
	"show": VB, "display": VB, "render": VB, "take": VB, "add": VB,
	"create": VB, "change": VB, "switch": VB, "select": VB, "choose": VB,
	"view": VB, "watch": VB, "listen": VB, "check": VB, "enable": VB,
	"disable": VB, "turn": VB, "use": VB, "work": VB, "run": VB,
	"try": VB, "keep": VB, "get": VB, "make": VB, "go": VB, "come": VB,
	"see": VB, "say": VB, "tell": VB, "need": VB, "want": VB, "help": VB,
	"fix": VB, "solve": VB, "support": VB, "respond": VB, "appear": VB,
	"disappear": VB, "happen": VB, "return": VB, "crash": VB, "fail": VB,
	"freeze": VB, "hang": VB, "break": VB, "flip": VB, "rotate": VB,
	"zoom": VB, "resize": VB, "log": VB, "track": VB, "locate": VB,
	"navigate": VB, "transfer": VB, "restore": VB, "backup": VB,
	"poll": VB, "give": VB, "let": VB, "put": VB, "set": VB, "call": VB,
	"contact": VB, "love": VB, "like": VB, "hate": VB, "miss": VB,
	"lose": VB, "wait": VB, "ask": VB, "know": VB, "think": VB,
	"contain": VB, "include": VB, "describe": VB, "prevent": VB,
	"complete": VB, "require": VB, "allow": VB, "cause": VB,
	"uninstalled": VBD, "crashed": VBD, "failed": VBD, "stopped": VBD,
	"broke": VBD, "froze": VBD, "went": VBD, "got": VBD, "took": VBD,
	"said": VBD, "made": VBD, "sent": VBD, "lost": VBD, "kept": VBD,
	"found": VBD, "saw": VBD, "came": VBD, "left": VBD, "gave": VBD,
	"wrote": VBD, "chose": VBD, "hung": VBD,
	"gone": VBN, "done": VBN, "taken": VBN, "seen": VBN, "shown": VBN,
	"written": VBN, "chosen": VBN, "given": VBN,
	"works": VBZ, "crashes": VBZ, "fails": VBZ, "keeps": VBZ,
	"says": VBZ, "goes": VBZ, "gets": VBZ, "makes": VBZ, "takes": VBZ,
	"shows": VBZ, "opens": VBZ, "closes": VBZ, "loads": VBZ,
	"freezes": VBZ, "hangs": VBZ, "stops": VBZ, "starts": VBZ,
	"appears": VBZ, "happens": VBZ, "sends": VBZ, "receives": VBZ,
	"polls": VBZ, "syncs": VBZ, "plays": VBZ, "saves": VBZ,
	"deletes": VBZ, "tries": VBZ, "needs": VBZ, "wants": VBZ,
	"lets": VBZ, "comes": VBZ, "turns": VBZ, "seems": VBZ, "looks": VBZ,

	// high-frequency nouns
	"app": NN, "application": NN, "phone": NN, "tablet": NN, "device": NN,
	"screen": NN, "button": NN, "menu": NN, "page": NN, "tab": NN,
	"list": NN, "window": NN, "widget": NN, "icon": NN, "keyboard": NN,
	"notification": NN, "message": NN, "mail": NN, "email": NN,
	"inbox": NN, "outbox": NN, "draft": NN, "folder": NN, "account": NN,
	"password": NN, "username": NN, "user": NN, "profile": NN,
	"setting": NN, "option": NN, "preference": NN, "feature": NN,
	"version": NN, "release": NN, "file": NN, "photo": NN, "picture": NN,
	"image": NN, "video": NN, "audio": NN, "music": NN, "song": NN,
	"podcast": NN, "episode": NN, "camera": NN, "gallery": NN,
	"album": NN, "text": NN, "sms": NN, "mms": NN,
	"chat": NN, "conversation": NN, "group": NN, "server": NN,
	"network": NN, "internet": NN, "wifi": NN, "data": NN,
	"connection": NN, "signal": NN, "bluetooth": NN, "gps": NN,
	"location": NN, "map": NN, "direction": NN, "battery": NN,
	"memory": NN, "storage": NN, "card": NN, "space": NN, "cloud": NN,
	"link": NN, "url": NN, "site": NN, "website": NN, "browser": NN,
	"feed": NN, "article": NN, "news": NN, "story": NN, "comment": NN,
	"review": NN, "rating": NN, "star": NN, "tweet": NN, "timeline": NN,
	"certificate": NN, "key": NN, "encryption": NN, "security": NN,
	"permission": NN, "theme": NN, "font": NN, "language": NN,
	"sound": NN, "volume": NN, "alarm": NN, "clock": NN, "calendar": NN,
	"event": NN, "reminder": NN, "task": NN, "note": NN, "book": NN,
	"reader": NN, "library": NN, "chapter": NN, "puzzle": NN,
	"crossword": NN, "game": NN, "level": NN, "score": NN, "stat": NN,
	"statistic": NN, "cache": NN, "database": NN, "trace": NN,
	"socket": NN, "pointer": NN, "null": NN, "timeout": NN,
	"session": NN, "token": NN, "layout": NN, "attachment": NN,
	"signature": NN, "filter": NN, "label": NN, "archive": NN,
	"trash": NN, "spam": NN, "deck": NN, "flashcard": NN, "route": NN,
	"bus": NN, "arrival": NN, "torrent": NN, "lockscreen": NN,
	"lock": NN, "pin": NN, "gesture": NN, "blog": NN, "media": NN,
	"player": NN, "subtitle": NN, "playlist": NN, "queue": NN,
	"error": NN, "bug": NN, "problem": NN, "issue": NN, "fault": NN,
	"glitch": NN, "exception": NN, "defect": NN, "failure": NN,
	"crashing": NN, "solution": NN, "time": NN, "times": NNS, "day": NN,
	"week": NN, "month": NN, "year": NN, "hour": NN, "minute": NN,
	"second": NN, "moment": NN, "middle": NN, "end": NN, "beginning": NN,
	"top": NN, "bottom": NN, "side": NN, "front": NN, "inside": NN,
	"outside": NN, "thing": NN, "stuff": NN, "way": NN, "lot": NN,
	"bit": NN, "part": NN, "people": NNS, "developer": NN, "dev": NN,
	"team": NN, "company": NN, "contacts": NNS, "photos": NNS,
	"pictures": NNS, "messages": NNS, "emails": NNS, "files": NNS,
	"settings": NNS, "options": NNS, "bugs": NNS, "errors": NNS,
	"problems": NNS, "issues": NNS, "notifications": NNS,
	"registration": NN, "history": NN,
	"widget_id": NN, "sd": NN, "kind": NN,

	// proper nouns: vendors, OS, app names from the dataset
	"google": NNP, "android": NNP, "samsung": NNP, "nexus": NNP,
	"pixel": NNP, "xiaomi": NNP, "huawei": NNP, "galaxy": NNP,
	"gmail": NNP, "twitter": NNP, "reddit": NNP, "wordpress": NNP,
	"twidere": NNP, "antennapod": NNP, "frostwire": NNP,
	"ankidroid": NNP, "k9": NNP, "imgur": NNP, "nougat": NNP,
	"seriesguide": NNP, "cgeo": NNP, "solitaire": NNP, "fbreader": NNP,
	"focal": NNP, "onebusaway": NNP, "acdisplay": NNP, "shortyz": NNP,
}

// verbLemmas is the set of base-form verbs. It backs the contextual rules
// and lets phrase extraction validate that a method-name head word is a verb.
var verbLemmas = buildVerbLemmas()

func buildVerbLemmas() map[string]struct{} {
	m := make(map[string]struct{}, 160)
	for w, tag := range lexiconEntries {
		if tag == VB {
			m[w] = struct{}{}
		}
	}
	// Verbs that appear in code identifiers but whose review-lexicon reading
	// is a noun.
	for _, w := range []string{
		"list", "view", "filter", "cache", "queue", "archive", "label",
		"comment", "review", "map", "text", "note", "score", "stream",
		"group", "mail", "email", "star", "pin", "bookmark", "mark",
		"clear", "reset", "init", "initialize", "handle", "process",
		"parse", "build", "compute", "calculate", "validate", "resolve",
		"dispatch", "bind", "unbind", "attach", "detach", "insert",
		"query", "execute", "apply", "commit", "rollback", "toggle",
		"expand", "collapse", "hide", "dismiss", "cancel", "retry",
		"schedule", "observe", "subscribe", "publish", "emit", "format",
		"convert", "encode", "decode", "encrypt", "decrypt", "compress",
		"extract", "generate", "prepare", "setup", "configure", "request",
	} {
		m[w] = struct{}{}
	}
	return m
}
