// Package pos implements a rule-and-lexicon part-of-speech tagger for app
// review English. ReviewSolver needs POS tags to build parse trees and typed
// dependencies (§3.2.1), to distinguish verb from noun uses of the same word
// ("contact me" vs "import contact", §3.2.4), and to extract verb/noun
// phrases.
//
// The tagger follows the classic Brill architecture: a lexicon assigns the
// most likely tag per word, morphological suffix rules tag unknown words,
// and a small set of contextual transformation rules repairs tags using the
// neighbouring context (e.g. a verb-lexicon word after a determiner becomes
// a noun).
package pos

import (
	"sort"
	"strings"

	"reviewsolver/internal/textproc"
)

// Tag is a part-of-speech tag. The set is the Penn Treebank subset that the
// downstream chunker consumes.
type Tag string

// Tags used by the tagger.
const (
	NN   Tag = "NN"   // noun, singular
	NNS  Tag = "NNS"  // noun, plural
	NNP  Tag = "NNP"  // proper noun
	VB   Tag = "VB"   // verb, base form
	VBD  Tag = "VBD"  // verb, past tense
	VBG  Tag = "VBG"  // verb, gerund
	VBN  Tag = "VBN"  // verb, past participle
	VBP  Tag = "VBP"  // verb, non-3rd person singular present
	VBZ  Tag = "VBZ"  // verb, 3rd person singular present
	JJ   Tag = "JJ"   // adjective
	RB   Tag = "RB"   // adverb
	DT   Tag = "DT"   // determiner
	IN   Tag = "IN"   // preposition / subordinating conjunction
	PRP  Tag = "PRP"  // personal pronoun
	PRPS Tag = "PRP$" // possessive pronoun
	CC   Tag = "CC"   // coordinating conjunction
	MD   Tag = "MD"   // modal
	TO   Tag = "TO"   // "to"
	CD   Tag = "CD"   // cardinal number
	UH   Tag = "UH"   // interjection
	NEG  Tag = "NEG"  // negation ("not", "n't", "never", "cannot")
	WP   Tag = "WP"   // wh-pronoun
	WRB  Tag = "WRB"  // wh-adverb
	EX   Tag = "EX"   // existential there
	SYM  Tag = "SYM"  // punctuation / symbols
)

// IsVerb reports whether the tag is any verb form.
func (t Tag) IsVerb() bool {
	switch t {
	case VB, VBD, VBG, VBN, VBP, VBZ:
		return true
	}
	return false
}

// IsNoun reports whether the tag is any noun form.
func (t Tag) IsNoun() bool {
	switch t {
	case NN, NNS, NNP:
		return true
	}
	return false
}

// TaggedToken pairs a token with its POS tag.
type TaggedToken struct {
	textproc.Token
	Tag Tag
}

// Tagger assigns POS tags to token sequences.
type Tagger struct {
	lexicon map[string]Tag

	// in, when set via UseInterner, annotates tokens once and the tag /
	// verb-lemma lookups below index these dense arrays instead of hashing
	// the word again per rule.
	in       *textproc.Interner
	tagByID  []Tag
	verbByID []bool
}

// NewTagger returns a Tagger over the built-in review-English lexicon,
// optionally extended with extra proper nouns (app names, widget words).
func NewTagger(properNouns ...string) *Tagger {
	t := &Tagger{lexicon: make(map[string]Tag, len(lexiconEntries))}
	for w, tag := range lexiconEntries {
		t.lexicon[w] = tag
	}
	for _, w := range properNouns {
		t.lexicon[strings.ToLower(w)] = NNP
	}
	return t
}

// UseInterner wires an interner into the tagger: Tag annotates tokens once
// up front, and the per-token lexicon and verb-lemma lookups become dense
// array indexes instead of map probes. Words outside the interner (e.g.
// app-specific proper nouns absent from every base vocabulary) keep the map
// path, so tagging output is identical either way.
func (tg *Tagger) UseInterner(in *textproc.Interner) {
	tg.in = in
	tg.tagByID = make([]Tag, in.Size())
	for w, tag := range tg.lexicon {
		if id, ok := in.ID(w); ok {
			tg.tagByID[id] = tag
		}
	}
	tg.verbByID = make([]bool, in.Size())
	for w := range verbLemmas {
		if id, ok := in.ID(w); ok {
			tg.verbByID[id] = true
		}
	}
}

// TagSentence tokenizes and tags a sentence.
func (tg *Tagger) TagSentence(sentence string) []TaggedToken {
	return tg.Tag(textproc.Tokenize(sentence))
}

// Tag assigns a POS tag to every token, then applies contextual repairs.
func (tg *Tagger) Tag(tokens []textproc.Token) []TaggedToken {
	if tg.in != nil {
		tg.in.Annotate(tokens)
	}
	out := make([]TaggedToken, len(tokens))
	for i, tok := range tokens {
		out[i] = TaggedToken{Token: tok, Tag: tg.initialTag(tok)}
	}
	tg.applyContextRules(out)
	return out
}

// initialTag assigns the lexicon tag or falls back to morphology.
func (tg *Tagger) initialTag(tok textproc.Token) Tag {
	switch tok.Kind {
	case textproc.Number:
		return CD
	case textproc.Punct, textproc.Emoji:
		return SYM
	}
	w := tok.Lower
	// Contractions: "doesn't", "can't", "won't" are modal/aux + negation;
	// tag the unit as NEG because the dependency extractor treats the whole
	// token as a negation of the following verb.
	if strings.HasSuffix(w, "n't") {
		return NEG
	}
	if tg.tagByID != nil && tok.ID != 0 {
		if tag := tg.tagByID[tok.ID-1]; tag != "" {
			return tag
		}
	}
	if tag, ok := tg.lexicon[w]; ok {
		return tag
	}
	return suffixTag(w)
}

// suffixTag guesses the tag of an out-of-lexicon word from its morphology.
func suffixTag(w string) Tag {
	switch {
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		return VBG
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		return VBD
	case strings.HasSuffix(w, "ly") && len(w) > 3:
		return RB
	case strings.HasSuffix(w, "tion") || strings.HasSuffix(w, "sion"),
		strings.HasSuffix(w, "ment"), strings.HasSuffix(w, "ness"),
		strings.HasSuffix(w, "ity"), strings.HasSuffix(w, "ence"),
		strings.HasSuffix(w, "ance"), strings.HasSuffix(w, "ship"):
		return NN
	case strings.HasSuffix(w, "able") || strings.HasSuffix(w, "ible"),
		strings.HasSuffix(w, "ful"), strings.HasSuffix(w, "less"),
		strings.HasSuffix(w, "ous"), strings.HasSuffix(w, "ive"),
		strings.HasSuffix(w, "al") && len(w) > 4:
		return JJ
	case strings.HasSuffix(w, "s") && len(w) > 3 && !strings.HasSuffix(w, "ss"):
		return NNS
	default:
		return NN
	}
}

// applyContextRules runs Brill-style transformation rules in order.
func (tg *Tagger) applyContextRules(toks []TaggedToken) {
	for i := range toks {
		w := toks[i].Lower
		prev, next := prevTag(toks, i), nextTag(toks, i)

		switch {
		// DT/PRP$/JJ + verb-tagged word → noun reading ("the reply", "my update").
		case (prev == DT || prev == PRPS || prev == JJ || prev == CD) &&
			(toks[i].Tag == VB || toks[i].Tag == VBP || toks[i].Tag == VBZ):
			if toks[i].Tag == VBZ {
				toks[i].Tag = NNS
			} else {
				toks[i].Tag = NN
			}
		// TO/MD + noun-or-ambiguous word → base verb ("to update", "can't sync").
		case (prev == TO || prev == MD || prev == NEG) &&
			(toks[i].Tag == NN || toks[i].Tag == VBZ || toks[i].Tag == VBP):
			if _, verbish := verbLemmas[strings.TrimSuffix(w, "s")]; verbish || toks[i].Tag != NN {
				toks[i].Tag = VB
			}
		// PRP + ambiguous noun → present verb ("i crash", "it errors").
		case prev == PRP && toks[i].Tag == NN:
			if tg.verbish(toks[i].Token) {
				toks[i].Tag = VBP
			}
		// Sentence-initial ambiguous word followed by a noun phrase → imperative
		// verb ("fix the bug", "update app").
		case i == 0 && toks[i].Tag == NN && (next == DT || next == PRPS || next == NN || next == NNS):
			if tg.verbish(toks[i].Token) {
				toks[i].Tag = VB
			}
		// A verb-lexicon word right before a UI-widget noun is being used
		// as that widget's purpose modifier ("reply button", "save menu").
		case toks[i].Tag == VB && next == NN && i+1 < len(toks) && isUINoun(toks[i+1].Lower):
			toks[i].Tag = NN
		// A base-form verb right after another verb or a singular noun,
		// with no noun phrase following, is being used as a noun
		// ("find contact", "the phone call failed").
		case toks[i].Tag == VB && (prev.IsVerb() || prev == NN) && !nounPhraseFollows(next):
			toks[i].Tag = NN
		// VBD directly before a noun is usually a participle modifier
		// ("saved picture gets flipped" — keep VBD for the first only if
		// sentence-initial subjectless; otherwise treat as VBN).
		case toks[i].Tag == VBD && next == NN && prev != PRP && prev != NN && prev != NNS && i > 0:
			toks[i].Tag = VBN
		}
	}
	// Second pass: "have/has/had + VBD" → VBN; "is/are/was/were + VBD" → VBN.
	for i := 1; i < len(toks); i++ {
		if toks[i].Tag != VBD {
			continue
		}
		p := toks[i-1].Lower
		switch p {
		case "have", "has", "had", "is", "are", "was", "were", "been", "be", "gets", "get", "got":
			toks[i].Tag = VBN
		}
	}
}

// isUINoun reports whether a word names a GUI widget kind.
func isUINoun(w string) bool {
	switch w {
	case "button", "buttons", "menu", "tab", "icon", "screen", "page", "key", "widget":
		return true
	}
	return false
}

// nounPhraseFollows reports whether the next tag can begin a noun phrase,
// which would keep a verb reading plausible for the current token.
func nounPhraseFollows(next Tag) bool {
	switch next {
	case DT, PRPS, JJ, NN, NNS, NNP, CD, PRP:
		return true
	}
	return false
}

func prevTag(toks []TaggedToken, i int) Tag {
	if i == 0 {
		return ""
	}
	return toks[i-1].Tag
}

func nextTag(toks []TaggedToken, i int) Tag {
	if i+1 >= len(toks) {
		return ""
	}
	return toks[i+1].Tag
}

// verbish reports whether a token's word is a verb lemma, using the dense
// array when the token carries an interner ID.
func (tg *Tagger) verbish(tok textproc.Token) bool {
	if tg.verbByID != nil && tok.ID != 0 {
		return tg.verbByID[tok.ID-1]
	}
	_, ok := verbLemmas[tok.Lower]
	return ok
}

// LooksLikeVerb reports whether a lower-cased word is in the tagger's verb
// lemma set. Phrase extraction uses this to validate method-name verbs.
func LooksLikeVerb(word string) bool {
	_, ok := verbLemmas[word]
	return ok
}

// LexiconWords returns the base lexicon vocabulary (without caller-supplied
// proper nouns) in sorted order, for interner construction.
func LexiconWords() []string {
	out := make([]string, 0, len(lexiconEntries)+len(verbLemmas))
	seen := make(map[string]struct{}, len(lexiconEntries)+len(verbLemmas))
	for w := range lexiconEntries {
		seen[w] = struct{}{}
		out = append(out, w)
	}
	for w := range verbLemmas {
		if _, ok := seen[w]; !ok {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}
