package pos

import (
	"testing"

	"reviewsolver/internal/textproc"
)

func tagsOf(tg *Tagger, sentence string) []Tag {
	tagged := tg.TagSentence(sentence)
	out := make([]Tag, len(tagged))
	for i, t := range tagged {
		out[i] = t.Tag
	}
	return out
}

func TestTagSentenceBasics(t *testing.T) {
	tg := NewTagger()
	tests := []struct {
		sentence string
		want     []Tag
	}{
		{"the app crashes", []Tag{DT, NN, VBZ}},
		{"i cannot register", []Tag{PRP, NEG, VB}},
		{"sync does not work", []Tag{VB, VBZ, NEG, VB}},
		{"send SMS", []Tag{VB, NN}},
		{"the reply button", []Tag{DT, NN, NN}},
		{"404 error", []Tag{CD, NN}},
	}
	for _, tt := range tests {
		if got := tagsOf(tg, tt.sentence); !tagsEqual(got, tt.want) {
			t.Errorf("TagSentence(%q) = %v, want %v", tt.sentence, got, tt.want)
		}
	}
}

func tagsEqual(a, b []Tag) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestContraction(t *testing.T) {
	tg := NewTagger()
	tagged := tg.TagSentence("it doesn't work")
	if tagged[1].Tag != NEG {
		t.Errorf("doesn't tagged %s, want NEG", tagged[1].Tag)
	}
	if tagged[2].Tag != VB {
		t.Errorf("work after negation tagged %s, want VB", tagged[2].Tag)
	}
}

func TestVerbNounDisambiguation(t *testing.T) {
	tg := NewTagger()

	// "contact" as verb (imperative before object).
	tagged := tg.TagSentence("contact the developer")
	if !tagged[0].Tag.IsVerb() {
		t.Errorf("imperative 'contact' tagged %s, want verb", tagged[0].Tag)
	}

	// "contact" as noun after determiner-ish context.
	tagged = tg.TagSentence("i tried to find my contact")
	last := tagged[len(tagged)-1]
	if !last.Tag.IsNoun() {
		t.Errorf("'my contact' tagged %s, want noun", last.Tag)
	}

	// "update" as noun: "the latest update".
	tagged = tg.TagSentence("the latest update broke everything")
	if !tagged[2].Tag.IsNoun() {
		t.Errorf("'the latest update' tagged %s, want noun", tagged[2].Tag)
	}

	// "update" as verb after "to".
	tagged = tg.TagSentence("i want to update the app")
	if tagged[3].Tag != VB {
		t.Errorf("'to update' tagged %s, want VB", tagged[3].Tag)
	}
}

func TestUnknownWordMorphology(t *testing.T) {
	tg := NewTagger()
	tests := []struct {
		word string
		want Tag
	}{
		{"flibbering", VBG},
		{"flibbered", VBD},
		{"flibberly", RB},
		{"flibberation", NN},
		{"flibberable", JJ},
		{"flibbers", NNS},
		{"flibber", NN},
	}
	for _, tt := range tests {
		tagged := tg.Tag(textproc.Tokenize(tt.word))
		if tagged[0].Tag != tt.want {
			t.Errorf("suffix tag of %q = %s, want %s", tt.word, tagged[0].Tag, tt.want)
		}
	}
}

func TestProperNounInjection(t *testing.T) {
	tg := NewTagger("Seafile")
	tagged := tg.TagSentence("seafile crashes")
	if tagged[0].Tag != NNP {
		t.Errorf("injected proper noun tagged %s, want NNP", tagged[0].Tag)
	}
}

func TestPassiveParticiple(t *testing.T) {
	tg := NewTagger()
	tagged := tg.TagSentence("the picture gets flipped")
	last := tagged[len(tagged)-1]
	if last.Tag != VBN {
		t.Errorf("'gets flipped' participle tagged %s, want VBN", last.Tag)
	}
}

func TestTagKinds(t *testing.T) {
	tg := NewTagger()
	tagged := tg.TagSentence("crash !!! 42 times")
	if tagged[1].Tag != SYM {
		t.Errorf("punct tagged %s, want SYM", tagged[1].Tag)
	}
	if tagged[2].Tag != CD {
		t.Errorf("number tagged %s, want CD", tagged[2].Tag)
	}
}

func TestIsVerbIsNoun(t *testing.T) {
	for _, tag := range []Tag{VB, VBD, VBG, VBN, VBP, VBZ} {
		if !tag.IsVerb() {
			t.Errorf("%s.IsVerb() = false", tag)
		}
		if tag.IsNoun() {
			t.Errorf("%s.IsNoun() = true", tag)
		}
	}
	for _, tag := range []Tag{NN, NNS, NNP} {
		if !tag.IsNoun() {
			t.Errorf("%s.IsNoun() = false", tag)
		}
		if tag.IsVerb() {
			t.Errorf("%s.IsVerb() = true", tag)
		}
	}
}

func TestLooksLikeVerb(t *testing.T) {
	for _, w := range []string{"send", "fetch", "query", "toggle"} {
		if !LooksLikeVerb(w) {
			t.Errorf("LooksLikeVerb(%q) = false", w)
		}
	}
	if LooksLikeVerb("banana") {
		t.Error("LooksLikeVerb(banana) = true")
	}
}
