package qa

import (
	"fmt"
	"strings"

	"reviewsolver/internal/sdk"
)

// task describes one general task with its title phrasings and the
// framework APIs used to implement it.
type task struct {
	titles []string
	apis   []APIRef
}

// generalTasks is the template set behind the generated corpus. Each task
// mirrors a cluster of real Stack Overflow questions: several phrasings of
// the same problem whose accepted answers call the same framework APIs.
var generalTasks = []task{
	{
		titles: []string{
			"How to download a file in Android",
			"Download file from server not completing",
			"Android download files with progress",
			"File downloads fail on mobile data",
		},
		apis: []APIRef{
			{Class: "java.net.URL", Method: "openConnection"},
			{Class: "java.net.HttpURLConnection", Method: "getInputStream"},
			{Class: "java.io.FileOutputStream", Method: "write"},
			{Class: "android.app.DownloadManager", Method: "enqueue"},
		},
	},
	{
		titles: []string{
			"How to upload photo to server Android",
			"Upload image file via http post",
			"Uploading photos error android",
		},
		apis: []APIRef{
			{Class: "java.net.URL", Method: "openConnection"},
			{Class: "java.net.HttpURLConnection", Method: "getResponseCode"},
			{Class: "java.io.FileInputStream", Method: "read"},
		},
	},
	{
		titles: []string{
			"How to send sms programmatically in Android",
			"Send text message from my app",
			"Cannot send sms to some numbers",
		},
		apis: []APIRef{
			{Class: "android.telephony.SmsManager", Method: "sendTextMessage"},
			{Class: "android.telephony.SmsManager", Method: "divideMessage"},
		},
	},
	{
		titles: []string{
			"How to send email from android app",
			"Send mail with attachment Android intent",
		},
		apis: []APIRef{
			{Class: "android.app.Activity", Method: "startActivity"},
		},
	},
	{
		titles: []string{
			"Connect to server 404 error android webview",
			"WebView loadUrl returns 404 not found",
			"404 error when adding site url",
			"how to connect server and check response code",
		},
		apis: []APIRef{
			{Class: "android.webkit.WebView", Method: "loadUrl"},
			{Class: "java.net.HttpURLConnection", Method: "getResponseCode"},
			{Class: "java.net.URLConnection", Method: "connect"},
		},
	},
	{
		titles: []string{
			"How to get current location in Android",
			"Get gps location updates",
			"Location is null on some devices",
		},
		apis: []APIRef{
			{Class: "android.location.LocationManager", Method: "requestLocationUpdates"},
			{Class: "android.location.LocationManager", Method: "getLastKnownLocation"},
		},
	},
	{
		titles: []string{
			"How to read contacts in Android",
			"Query contacts content provider",
			"find contact by name android",
		},
		apis: []APIRef{
			{Class: "android.content.ContentResolver", Method: "query"},
		},
	},
	{
		titles: []string{
			"How to take picture with camera intent",
			"Take photo and save to file android",
			"Camera preview freezes when taking picture",
		},
		apis: []APIRef{
			{Class: "android.hardware.Camera", Method: "open"},
			{Class: "android.hardware.Camera", Method: "takePicture"},
			{Class: "android.app.Activity", Method: "startActivityForResult"},
		},
	},
	{
		titles: []string{
			"How to record video in android",
			"MediaRecorder start fails",
			"record audio and video at the same time",
		},
		apis: []APIRef{
			{Class: "android.media.MediaRecorder", Method: "setVideoSource"},
			{Class: "android.media.MediaRecorder", Method: "setAudioSource"},
			{Class: "android.media.MediaRecorder", Method: "start"},
		},
	},
	{
		titles: []string{
			"How to play audio file in android",
			"MediaPlayer start playing music",
			"play video from url android",
		},
		apis: []APIRef{
			{Class: "android.media.MediaPlayer", Method: "setDataSource"},
			{Class: "android.media.MediaPlayer", Method: "prepare"},
			{Class: "android.media.MediaPlayer", Method: "start"},
		},
	},
	{
		titles: []string{
			"How to save data to file in android",
			"Save file to sd card external storage",
			"cannot save photos to sd card",
			"write file to external storage fails",
		},
		apis: []APIRef{
			{Class: "android.os.Environment", Method: "getExternalStorageDirectory"},
			{Class: "java.io.FileOutputStream", Method: "write"},
			{Class: "java.io.File", Method: "createNewFile"},
		},
	},
	{
		titles: []string{
			"How to sync data with server in background",
			"Sync account data periodically android",
			"sync does not work after update",
		},
		apis: []APIRef{
			{Class: "java.net.URLConnection", Method: "connect"},
			{Class: "android.accounts.AccountManager", Method: "getAccounts"},
			{Class: "android.app.AlarmManager", Method: "setRepeating"},
		},
	},
	{
		titles: []string{
			"How to login user with account manager",
			"Android oauth login to server",
			"login fails with authentication error",
			"cannot login to my account",
		},
		apis: []APIRef{
			{Class: "android.accounts.AccountManager", Method: "getAuthToken"},
			{Class: "java.net.HttpURLConnection", Method: "getResponseCode"},
		},
	},
	{
		titles: []string{
			"How to register account in app",
			"create account sign up form android",
		},
		apis: []APIRef{
			{Class: "android.accounts.AccountManager", Method: "addAccountExplicitly"},
		},
	},
	{
		titles: []string{
			"How to show notification in android",
			"Notification not showing on lock screen",
		},
		apis: []APIRef{
			{Class: "android.app.NotificationManager", Method: "notify"},
		},
	},
	{
		titles: []string{
			"How to parse json response android",
			"JSONObject getString throws exception",
		},
		apis: []APIRef{
			{Class: "org.json.JSONObject", Method: "getString"},
		},
	},
	{
		titles: []string{
			"How to store settings in shared preferences",
			"Save user preferences android",
		},
		apis: []APIRef{
			{Class: "android.content.SharedPreferences$Editor", Method: "putString"},
			{Class: "android.content.SharedPreferences", Method: "getString"},
		},
	},
	{
		titles: []string{
			"How to insert row into sqlite database",
			"SQLite database is locked error",
			"query sqlite database cursor android",
		},
		apis: []APIRef{
			{Class: "android.database.sqlite.SQLiteDatabase", Method: "insert"},
			{Class: "android.database.sqlite.SQLiteDatabase", Method: "query"},
			{Class: "android.database.sqlite.SQLiteOpenHelper", Method: "getWritableDatabase"},
		},
	},
	{
		titles: []string{
			"SSL certificate error connecting to server",
			"How to trust self signed certificate android",
			"certificate verification failed https",
		},
		apis: []APIRef{
			{Class: "javax.net.ssl.SSLSocket", Method: "startHandshake"},
			{Class: "javax.net.ssl.HttpsURLConnection", Method: "setSSLSocketFactory"},
			{Class: "android.security.KeyChain", Method: "choosePrivateKeyAlias"},
		},
	},
	{
		titles: []string{
			"Socket connection timeout android",
			"How to read data from socket",
			"socket exception when connecting",
		},
		apis: []APIRef{
			{Class: "java.net.Socket", Method: "connect"},
			{Class: "java.net.Socket", Method: "getInputStream"},
			{Class: "java.net.Socket", Method: "setSoTimeout"},
		},
	},
	{
		titles: []string{
			"How to unzip file in android",
			"extract zip archive java",
		},
		apis: []APIRef{
			{Class: "java.util.zip.ZipInputStream", Method: "getNextEntry"},
		},
	},
	{
		titles: []string{
			"How to backup sms messages android",
			"backup and restore app data",
		},
		apis: []APIRef{
			{Class: "android.app.backup.BackupManager", Method: "dataChanged"},
			{Class: "android.content.ContentResolver", Method: "query"},
		},
	},
	{
		titles: []string{
			"Rotate bitmap image android",
			"picture saved upside down flipped",
			"fix image orientation exif",
		},
		apis: []APIRef{
			{Class: "android.media.ExifInterface", Method: "getAttribute"},
			{Class: "android.graphics.Matrix", Method: "postRotate"},
			{Class: "android.graphics.BitmapFactory", Method: "decodeFile"},
		},
	},
	{
		titles: []string{
			"How to open url in browser from app",
			"open link in external browser android",
		},
		apis: []APIRef{
			{Class: "android.app.Activity", Method: "startActivity"},
			{Class: "android.webkit.WebView", Method: "loadUrl"},
		},
	},
	{
		titles: []string{
			"How to load image from url into view",
			"load remote picture efficiently android",
			"images not loading in list view",
		},
		apis: []APIRef{
			{Class: "java.net.URL", Method: "openConnection"},
			{Class: "android.graphics.BitmapFactory", Method: "decodeFile"},
		},
	},
}

// generalTasksExtra is the second tranche of general tasks, covering the
// long tail of review complaints.
var generalTasksExtra = []task{
	{
		titles: []string{
			"How to show progress while loading android",
			"Progress bar stuck at zero",
		},
		apis: []APIRef{
			{Class: "android.widget.ProgressBar", Method: "setProgress"},
		},
	},
	{
		titles: []string{
			"How to place phone call from app",
			"Dial number programmatically android",
			"call contact directly from the app",
		},
		apis: []APIRef{
			{Class: "android.telecom.TelecomManager", Method: "placeCall"},
			{Class: "android.app.Activity", Method: "startActivity"},
		},
	},
	{
		titles: []string{
			"How to encrypt data in android",
			"Cipher doFinal throws BadPaddingException",
			"encrypt message with aes",
		},
		apis: []APIRef{
			{Class: "javax.crypto.Cipher", Method: "init"},
			{Class: "javax.crypto.Cipher", Method: "doFinal"},
		},
	},
	{
		titles: []string{
			"How to parse xml feed android",
			"XmlPullParser for rss feeds",
			"read podcast feed xml",
		},
		apis: []APIRef{
			{Class: "org.xmlpull.v1.XmlPullParser", Method: "next"},
			{Class: "java.net.URL", Method: "openConnection"},
		},
	},
	{
		titles: []string{
			"How to resize bitmap without out of memory",
			"Bitmap createScaledBitmap OutOfMemoryError",
			"load large images without crash",
		},
		apis: []APIRef{
			{Class: "android.graphics.Bitmap", Method: "createScaledBitmap"},
			{Class: "android.graphics.BitmapFactory", Method: "decodeFile"},
		},
	},
	{
		titles: []string{
			"How to update home screen widget android",
			"App widget not refreshing",
		},
		apis: []APIRef{
			{Class: "android.appwidget.AppWidgetManager", Method: "updateAppWidget"},
		},
	},
	{
		titles: []string{
			"How to share content to another app",
			"share text and image via intent chooser",
		},
		apis: []APIRef{
			{Class: "android.content.Intent", Method: "createChooser"},
			{Class: "android.app.Activity", Method: "startActivity"},
		},
	},
	{
		titles: []string{
			"How to keep screen awake during playback",
			"wake lock for long running task",
		},
		apis: []APIRef{
			{Class: "android.os.PowerManager$WakeLock", Method: "acquire"},
			{Class: "android.view.Window", Method: "setFlags"},
		},
	},
	{
		titles: []string{
			"How to run background task with executor",
			"AsyncTask execute in parallel",
			"background work keeps blocking the ui",
		},
		apis: []APIRef{
			{Class: "java.util.concurrent.ExecutorService", Method: "submit"},
			{Class: "android.os.AsyncTask", Method: "execute"},
		},
	},
	{
		titles: []string{
			"How to scan media file into gallery",
			"saved photo not showing in gallery",
		},
		apis: []APIRef{
			{Class: "android.media.MediaScannerConnection", Method: "scanFile"},
			{Class: "java.io.FileOutputStream", Method: "write"},
		},
	},
}

// GenerateCorpus expands the task templates into a Question corpus whose
// snippets are Java-like code exercising the snippet parser.
func GenerateCorpus(catalog *sdk.Catalog) []Question {
	var out []Question
	all := make([]task, 0, len(generalTasks)+len(generalTasksExtra))
	all = append(all, generalTasks...)
	all = append(all, generalTasksExtra...)
	for _, t := range all {
		snippet := renderSnippet(t.apis)
		for _, title := range t.titles {
			out = append(out, Question{Title: title, Snippets: []string{snippet}})
		}
	}
	return out
}

// renderSnippet produces a Java-like code block declaring one object per
// API class and invoking each API on it.
func renderSnippet(apis []APIRef) string {
	var b strings.Builder
	declared := make(map[string]string)
	n := 0
	for _, ref := range apis {
		short := ref.Class
		if i := strings.LastIndexByte(short, '.'); i >= 0 {
			short = short[i+1:]
		}
		short = strings.ReplaceAll(short, "$", "")
		name, ok := declared[short]
		if !ok {
			name = fmt.Sprintf("v%d", n)
			n++
			declared[short] = name
			fmt.Fprintf(&b, "%s %s = new %s();\n", short, name, short)
		}
		fmt.Fprintf(&b, "%s.%s();\n", name, ref.Method)
	}
	return b.String()
}

// TaskCount returns the number of general-task templates.
func TaskCount() int { return len(generalTasks) + len(generalTasksExtra) }
