// Package qa implements the general-task knowledge base of §4.2.2: a Stack
// Overflow-style Q&A corpus (question titles + Java code snippets), a
// javalang-like snippet parser that extracts the framework APIs each
// snippet calls, and the Algorithm 2 index that maps a review verb phrase
// to the top-k framework APIs developers use for that task.
//
// The original downloads 1.27M Android questions from the Stack Exchange
// dump; this reproduction generates a corpus from task templates over the
// same SDK catalog the synthetic apps call, so the title→API frequency
// statistics are meaningful for the tasks reviews complain about.
package qa

import (
	"sort"
	"strings"

	"reviewsolver/internal/sdk"
	"reviewsolver/internal/textproc"
)

// Question is one Q&A thread: a short title and the code snippets found in
// the question body and its answers.
type Question struct {
	// Title summarizes the problem ("How to download a file in Android").
	Title string
	// Snippets holds the raw Java code blocks (<code> contents).
	Snippets []string
}

// APIRef identifies a framework API extracted from a snippet.
type APIRef struct {
	Class  string
	Method string
}

// Key returns "class.method".
func (r APIRef) Key() string { return r.Class + "." + r.Method }

// ParseSnippet extracts the framework API calls from a Java-like code
// snippet, the role javalang plays in the paper (§4.2.2 Step 2). It tracks
// `Type var = new Type(...)` and `Type var = ...` declarations to resolve
// receiver variables to classes, and resolves short class names against the
// SDK catalog.
func ParseSnippet(snippet string, catalog *sdk.Catalog) []APIRef {
	shortToFull := shortClassIndex(catalog)
	varType := make(map[string]string)
	var out []APIRef
	seen := make(map[string]struct{})
	for _, line := range strings.Split(snippet, "\n") {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// Declarations: "Type name = ..." (optionally "new Type(...)").
		if class, name, rest, ok := parseDecl(line); ok {
			if full, known := shortToFull[class]; known {
				varType[name] = full
			}
			line = rest // the initializer may itself contain a call
			if line == "" {
				continue
			}
		}
		// Calls: receiver.method(...) — receiver is a variable or a class.
		for _, call := range parseCalls(line) {
			class := varType[call.recv]
			if class == "" {
				if full, known := shortToFull[call.recv]; known {
					class = full
				}
			}
			if class == "" {
				continue
			}
			if _, known := catalog.LookupAPI(class, call.method); !known {
				continue
			}
			ref := APIRef{Class: class, Method: call.method}
			if _, dup := seen[ref.Key()]; dup {
				continue
			}
			seen[ref.Key()] = struct{}{}
			out = append(out, ref)
		}
	}
	return out
}

func shortClassIndex(catalog *sdk.Catalog) map[string]string {
	idx := make(map[string]string)
	for _, a := range catalog.APIs() {
		short := a.ShortClass()
		idx[short] = a.Class
		// Inner classes are written without the '$' in snippets
		// ("AlertDialogBuilder" for AlertDialog$Builder).
		if strings.ContainsRune(short, '$') {
			idx[strings.ReplaceAll(short, "$", "")] = a.Class
		}
	}
	return idx
}

// parseDecl recognizes "Type name = rest" and returns the parts.
func parseDecl(line string) (class, name, rest string, ok bool) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return "", "", "", false
	}
	left := strings.Fields(strings.TrimSpace(line[:eq]))
	if len(left) != 2 {
		return "", "", "", false
	}
	class, name = left[0], left[1]
	if !isIdentifier(class) || !isIdentifier(name) || !isUpperStart(class) {
		return "", "", "", false
	}
	rest = strings.TrimSpace(line[eq+1:])
	rest = strings.TrimPrefix(rest, "new ")
	return class, name, rest, true
}

type callExpr struct {
	recv, method string
}

// parseCalls finds "recv.method(" occurrences in a line.
func parseCalls(line string) []callExpr {
	var out []callExpr
	for i := 0; i < len(line); i++ {
		if line[i] != '(' {
			continue
		}
		// Walk back over the method name.
		j := i
		for j > 0 && isIdentChar(line[j-1]) {
			j--
		}
		if j == i || j == 0 || line[j-1] != '.' {
			continue
		}
		method := line[j:i]
		// Walk back over the receiver.
		k := j - 1
		for k > 0 && isIdentChar(line[k-1]) {
			k--
		}
		recv := line[k : j-1]
		if recv == "" {
			continue
		}
		out = append(out, callExpr{recv: recv, method: method})
	}
	return out
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func isUpperStart(s string) bool { return s != "" && s[0] >= 'A' && s[0] <= 'Z' }

// Index is the Algorithm 2 lookup structure: question titles with their
// extracted framework APIs.
type Index struct {
	catalog   *sdk.Catalog
	questions []indexedQuestion
}

type indexedQuestion struct {
	titleWords map[string]struct{}
	apis       []APIRef
}

// NewIndex parses every question's snippets and builds the index.
func NewIndex(catalog *sdk.Catalog, questions []Question) *Index {
	idx := &Index{catalog: catalog}
	for _, q := range questions {
		iq := indexedQuestion{titleWords: make(map[string]struct{})}
		for _, w := range textproc.Words(q.Title) {
			iq.titleWords[w] = struct{}{}
		}
		seen := make(map[string]struct{})
		for _, sn := range q.Snippets {
			for _, ref := range ParseSnippet(sn, catalog) {
				if _, dup := seen[ref.Key()]; dup {
					continue
				}
				seen[ref.Key()] = struct{}{}
				iq.apis = append(iq.apis, ref)
			}
		}
		if len(iq.apis) > 0 {
			idx.questions = append(idx.questions, iq)
		}
	}
	return idx
}

// Len returns the number of indexed questions.
func (x *Index) Len() int { return len(x.questions) }

// TopAPIs implements Algorithm 2: find the questions whose titles contain
// the verb phrase's words, count the framework APIs in their snippets, and
// return the k most frequent APIs (the paper sets k = 5).
func (x *Index) TopAPIs(verbPhrase []string, k int) []APIRef {
	if len(verbPhrase) == 0 || k <= 0 {
		return nil
	}
	counts := make(map[string]int)
	byKey := make(map[string]APIRef)
	for _, q := range x.questions {
		if !titleContains(q.titleWords, verbPhrase) {
			continue
		}
		for _, ref := range q.apis {
			counts[ref.Key()]++
			byKey[ref.Key()] = ref
		}
	}
	if len(counts) == 0 {
		return nil
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if k > len(keys) {
		k = len(keys)
	}
	out := make([]APIRef, k)
	for i := 0; i < k; i++ {
		out[i] = byKey[keys[i]]
	}
	return out
}

// titleContains reports whether every content word of the phrase appears in
// the title (§4.2.2: "identify the questions whose titles contain the same
// verb phrase"). Inflection differences are tolerated via shared stems.
func titleContains(title map[string]struct{}, phrase []string) bool {
	for _, w := range phrase {
		if textproc.IsStopword(w) {
			continue
		}
		if _, ok := title[w]; ok {
			continue
		}
		matched := false
		for tw := range title {
			if sameStem(tw, w) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

func sameStem(a, b string) bool {
	return stem(a) == stem(b)
}

func stem(w string) string {
	switch {
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		w = w[:len(w)-3]
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		w = w[:len(w)-2]
	case strings.HasSuffix(w, "es") && len(w) > 4:
		w = w[:len(w)-2]
	case strings.HasSuffix(w, "s") && len(w) > 3 && !strings.HasSuffix(w, "ss"):
		w = w[:len(w)-1]
	}
	if len(w) > 3 && w[len(w)-1] == w[len(w)-2] && !strings.ContainsRune("aeiou", rune(w[len(w)-1])) {
		w = w[:len(w)-1]
	}
	return w
}
