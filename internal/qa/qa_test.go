package qa

import (
	"reflect"
	"testing"

	"reviewsolver/internal/sdk"
)

func TestParseSnippet(t *testing.T) {
	catalog := sdk.NewCatalog()
	snippet := `
// send a text message
SmsManager sms = SmsManager.getDefault();
sms.sendTextMessage(number, null, text, null, null);
Socket sock = new Socket();
sock.connect(addr);
unknownVar.someCall();
`
	refs := ParseSnippet(snippet, catalog)
	want := []APIRef{
		{Class: "android.telephony.SmsManager", Method: "sendTextMessage"},
		{Class: "java.net.Socket", Method: "connect"},
	}
	if !reflect.DeepEqual(refs, want) {
		t.Errorf("ParseSnippet = %v, want %v", refs, want)
	}
}

func TestParseSnippetStaticCall(t *testing.T) {
	catalog := sdk.NewCatalog()
	refs := ParseSnippet("Toast.makeText(ctx, msg, 0);", catalog)
	if len(refs) != 1 || refs[0].Method != "makeText" {
		t.Errorf("static call parse = %v", refs)
	}
}

func TestParseSnippetDedup(t *testing.T) {
	catalog := sdk.NewCatalog()
	refs := ParseSnippet("Socket s = new Socket();\ns.connect(a);\ns.connect(b);", catalog)
	if len(refs) != 1 {
		t.Errorf("duplicate API not deduplicated: %v", refs)
	}
}

func TestGenerateCorpus(t *testing.T) {
	catalog := sdk.NewCatalog()
	corpus := GenerateCorpus(catalog)
	if len(corpus) < 50 {
		t.Errorf("corpus suspiciously small: %d questions", len(corpus))
	}
	// Every generated snippet must parse to at least one API.
	for _, q := range corpus {
		refs := ParseSnippet(q.Snippets[0], catalog)
		if len(refs) == 0 {
			t.Errorf("question %q has unparseable snippet:\n%s", q.Title, q.Snippets[0])
		}
	}
}

func TestIndexTopAPIs(t *testing.T) {
	catalog := sdk.NewCatalog()
	idx := NewIndex(catalog, GenerateCorpus(catalog))
	if idx.Len() == 0 {
		t.Fatal("empty index")
	}

	// §2.3 Example 6: "404 error" should surface WebView.loadUrl among the
	// top APIs.
	apis := idx.TopAPIs([]string{"404", "error"}, 5)
	found := false
	for _, a := range apis {
		if a.Class == "android.webkit.WebView" && a.Method == "loadUrl" {
			found = true
		}
	}
	if !found {
		t.Errorf("404 error top APIs = %v, want WebView.loadUrl included", apis)
	}

	// "download file" must surface connection/file APIs.
	apis = idx.TopAPIs([]string{"download", "file"}, 5)
	if len(apis) == 0 {
		t.Fatal("no APIs for 'download file'")
	}

	// Inflected phrase ("downloading files") matches via stemming.
	apis2 := idx.TopAPIs([]string{"downloading", "files"}, 5)
	if len(apis2) == 0 {
		t.Error("stemmed phrase found no APIs")
	}
}

func TestTopAPIsKBound(t *testing.T) {
	catalog := sdk.NewCatalog()
	idx := NewIndex(catalog, GenerateCorpus(catalog))
	apis := idx.TopAPIs([]string{"download", "file"}, 2)
	if len(apis) > 2 {
		t.Errorf("k=2 returned %d APIs", len(apis))
	}
	if got := idx.TopAPIs(nil, 5); got != nil {
		t.Errorf("empty phrase returned %v", got)
	}
	if got := idx.TopAPIs([]string{"zzz", "qqq"}, 5); got != nil {
		t.Errorf("unknown phrase returned %v", got)
	}
}

func TestTopAPIsDeterministic(t *testing.T) {
	catalog := sdk.NewCatalog()
	idx := NewIndex(catalog, GenerateCorpus(catalog))
	a := idx.TopAPIs([]string{"save", "photos"}, 5)
	b := idx.TopAPIs([]string{"save", "photos"}, 5)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestAPIRefKey(t *testing.T) {
	r := APIRef{Class: "java.net.Socket", Method: "connect"}
	if r.Key() != "java.net.Socket.connect" {
		t.Errorf("Key = %q", r.Key())
	}
}

func TestTaskCount(t *testing.T) {
	if TaskCount() < 20 {
		t.Errorf("only %d task templates", TaskCount())
	}
}
