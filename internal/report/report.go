// Package report turns a batch of localization results into the artifact a
// developer actually consumes: a per-class triage report ranking the
// problematic classes across a whole review corpus, with the reviews,
// context types, and recommended methods behind each class, plus the
// device/compatibility appendix the paper's §6.6 proposes for reviews that
// cannot be localized in code.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
)

// ClassEntry aggregates the evidence against one class.
type ClassEntry struct {
	// Class is the fully qualified class name.
	Class string
	// Reviews counts the distinct reviews mapped to the class.
	Reviews int
	// Contexts counts mapped reviews per context-type name.
	Contexts map[string]int
	// Methods are the specific methods recommended within the class.
	Methods []string
	// Samples holds up to three example review texts.
	Samples []string
}

// Report is a triage summary over one app's review corpus.
type Report struct {
	// App identifies the analyzed app.
	App string
	// Generated is the report creation time.
	Generated time.Time
	// TotalReviews / ErrorReviews / Localized are the funnel counts.
	TotalReviews int
	ErrorReviews int
	Localized    int
	// Classes are the ranked per-class entries (most implicated first).
	Classes []ClassEntry
	// Devices is the compatibility appendix: device/OS mentions found in
	// error reviews that produced no code mapping.
	Devices map[string]int
}

// Builder accumulates localization results into a Report.
type Builder struct {
	solver *core.Solver
	app    *apk.App
	rep    *Report
	acc    map[string]*ClassEntry
	now    func() time.Time
}

// NewBuilder starts a report for one app.
func NewBuilder(solver *core.Solver, app *apk.App) *Builder {
	return &Builder{
		solver: solver,
		app:    app,
		rep: &Report{
			App:     fmt.Sprintf("%s (%s)", app.Name, app.Package),
			Devices: make(map[string]int),
		},
		acc: make(map[string]*ClassEntry),
		now: time.Now,
	}
}

// Add localizes one review and folds it into the report.
func (b *Builder) Add(text string, publishedAt time.Time) *core.Result {
	b.rep.TotalReviews++
	res := b.solver.LocalizeReview(b.app, text, publishedAt)
	if !res.IsError {
		return res
	}
	// Resolved-issue praise is excluded (§6.6 tense filter).
	if core.MentionsResolvedIssue(text) {
		return res
	}
	b.rep.ErrorReviews++
	if !res.Localized() {
		// Compatibility appendix: record device mentions of unmapped
		// error reviews.
		for _, m := range core.DetectDevices(text) {
			b.rep.Devices[m.Text]++
		}
		return res
	}
	b.rep.Localized++
	for _, rc := range res.Ranked {
		e, ok := b.acc[rc.Class]
		if !ok {
			e = &ClassEntry{Class: rc.Class, Contexts: make(map[string]int)}
			b.acc[rc.Class] = e
		}
		e.Reviews++
		for _, ctx := range rc.Contexts {
			e.Contexts[ctx]++
		}
		for _, m := range rc.Methods {
			if !contains(e.Methods, m) {
				e.Methods = append(e.Methods, m)
			}
		}
		if len(e.Samples) < 3 {
			e.Samples = append(e.Samples, text)
		}
	}
	return res
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// Build finalizes and returns the report.
func (b *Builder) Build() *Report {
	b.rep.Generated = b.now()
	b.rep.Classes = b.rep.Classes[:0]
	for _, e := range b.acc {
		sort.Strings(e.Methods)
		b.rep.Classes = append(b.rep.Classes, *e)
	}
	sort.Slice(b.rep.Classes, func(i, j int) bool {
		if b.rep.Classes[i].Reviews != b.rep.Classes[j].Reviews {
			return b.rep.Classes[i].Reviews > b.rep.Classes[j].Reviews
		}
		return b.rep.Classes[i].Class < b.rep.Classes[j].Class
	})
	return b.rep
}

// Markdown renders the report as a developer-facing markdown document.
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Review triage — %s\n\n", r.App)
	fmt.Fprintf(&sb, "generated %s\n\n", r.Generated.Format("2006-01-02 15:04"))
	fmt.Fprintf(&sb, "- reviews analyzed: %d\n- function-error reviews: %d\n- localized to code: %d\n\n",
		r.TotalReviews, r.ErrorReviews, r.Localized)

	sb.WriteString("## Problematic classes\n\n")
	if len(r.Classes) == 0 {
		sb.WriteString("no classes implicated.\n")
	}
	for i, e := range r.Classes {
		if i >= 20 {
			fmt.Fprintf(&sb, "… and %d more classes\n", len(r.Classes)-i)
			break
		}
		fmt.Fprintf(&sb, "### %d. `%s` — %d reviews\n\n", i+1, e.Class, e.Reviews)
		if len(e.Methods) > 0 {
			fmt.Fprintf(&sb, "methods: `%s`\n\n", strings.Join(e.Methods, "`, `"))
		}
		ctxs := make([]string, 0, len(e.Contexts))
		for c := range e.Contexts {
			ctxs = append(ctxs, c)
		}
		sort.Strings(ctxs)
		for _, c := range ctxs {
			fmt.Fprintf(&sb, "- via %s (%d)\n", c, e.Contexts[c])
		}
		for _, s := range e.Samples {
			fmt.Fprintf(&sb, "> %s\n", s)
		}
		sb.WriteString("\n")
	}

	if len(r.Devices) > 0 {
		sb.WriteString("## Compatibility appendix (unmapped error reviews)\n\n")
		devices := make([]string, 0, len(r.Devices))
		for d := range r.Devices {
			devices = append(devices, d)
		}
		sort.Slice(devices, func(i, j int) bool {
			if r.Devices[devices[i]] != r.Devices[devices[j]] {
				return r.Devices[devices[i]] > r.Devices[devices[j]]
			}
			return devices[i] < devices[j]
		})
		for _, d := range devices {
			fmt.Fprintf(&sb, "- %s (%d reviews)\n", d, r.Devices[d])
		}
	}
	return sb.String()
}
