package report

import (
	"strings"
	"testing"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
)

func fixedNow() time.Time { return time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC) }

func buildReport(t *testing.T, n int) *Report {
	t.Helper()
	data := synth.GenerateSample(3)
	b := NewBuilder(core.New(), data.App)
	b.now = fixedNow
	for i, rv := range data.Reviews {
		if i >= n {
			break
		}
		b.Add(rv.Text, rv.PublishedAt)
	}
	return b.Build()
}

func TestReportFunnel(t *testing.T) {
	rep := buildReport(t, 120)
	if rep.TotalReviews != 120 {
		t.Errorf("TotalReviews = %d", rep.TotalReviews)
	}
	if rep.ErrorReviews == 0 || rep.ErrorReviews > rep.TotalReviews {
		t.Errorf("ErrorReviews = %d", rep.ErrorReviews)
	}
	if rep.Localized == 0 || rep.Localized > rep.ErrorReviews {
		t.Errorf("Localized = %d of %d error reviews", rep.Localized, rep.ErrorReviews)
	}
}

func TestReportClassOrdering(t *testing.T) {
	rep := buildReport(t, 150)
	if len(rep.Classes) == 0 {
		t.Fatal("no classes in report")
	}
	for i := 1; i < len(rep.Classes); i++ {
		if rep.Classes[i-1].Reviews < rep.Classes[i].Reviews {
			t.Fatal("classes not sorted by review count")
		}
	}
	top := rep.Classes[0]
	if top.Reviews == 0 || len(top.Samples) == 0 {
		t.Errorf("top class malformed: %+v", top)
	}
}

func TestReportDevicesAppendix(t *testing.T) {
	data := synth.GenerateSample(3)
	b := NewBuilder(core.New(), data.App)
	b.now = fixedNow
	// An unmappable error review with a device mention.
	b.Add("Please fix the bug. i'm using xiaomi mi4c", data.App.Latest().ReleasedAt.AddDate(0, 0, 1))
	rep := b.Build()
	if rep.Devices["xiaomi mi4c"] != 1 {
		t.Errorf("devices = %v", rep.Devices)
	}
}

func TestReportResolvedIssueExcluded(t *testing.T) {
	data := synth.GenerateSample(3)
	b := NewBuilder(core.New(), data.App)
	b.now = fixedNow
	b.Add("The crash from the last version has been fixed, thank you!", fixedNow())
	rep := b.Build()
	if rep.ErrorReviews != 0 {
		t.Errorf("resolved-issue praise counted as error review")
	}
}

func TestReportMarkdown(t *testing.T) {
	rep := buildReport(t, 120)
	md := rep.Markdown()
	for _, want := range []string{
		"# Review triage — K-9 Mail (com.fsck.k9)",
		"## Problematic classes",
		"reviews analyzed: 120",
		"2024-06-01",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestReportEmpty(t *testing.T) {
	data := synth.GenerateSample(3)
	b := NewBuilder(core.New(), data.App)
	b.now = fixedNow
	rep := b.Build()
	md := rep.Markdown()
	if !strings.Contains(md, "no classes implicated") {
		t.Error("empty report should say so")
	}
}
