package sdk

// catalogExtra extends the framework table with the second tranche of APIs
// exercised by the evaluation domains: UI framework, preferences,
// clipboard, printing, sensors, NFC, media session, text services, and the
// exception-rich java.* surface the §4.2.3 localizer consults.
var catalogExtra = []API{
	// --- UI framework ---
	{Class: "android.view.View", Method: "findViewById",
		Description: "find the view widget with the given id in the layout"},
	{Class: "android.view.View", Method: "setVisibility",
		Description: "show or hide the view on the screen"},
	{Class: "android.view.View", Method: "setOnClickListener",
		Description: "register a callback for when the user clicks the view"},
	{Class: "android.view.LayoutInflater", Method: "inflate",
		Description: "inflate a layout resource into its view hierarchy",
		Exceptions:  []string{"InflateException"}},
	{Class: "android.widget.ListView", Method: "setAdapter",
		Description: "set the adapter that provides the list items"},
	{Class: "android.widget.ImageView", Method: "setImageBitmap",
		Description: "display a bitmap image in the image view"},
	{Class: "android.widget.EditText", Method: "getText",
		Description: "return the text the user typed into the edit field"},
	{Class: "android.widget.ProgressBar", Method: "setProgress",
		Description: "update the progress bar position"},
	{Class: "android.widget.ScrollView", Method: "smoothScrollTo",
		Description: "scroll the view smoothly to the given position"},
	{Class: "android.app.Dialog", Method: "show",
		Description: "display the dialog on the screen",
		Exceptions:  []string{"BadTokenException"}},
	{Class: "android.app.Dialog", Method: "dismiss",
		Description: "dismiss and remove the dialog from the screen"},
	{Class: "android.app.FragmentTransaction", Method: "commit",
		Description: "commit the fragment transaction to the activity",
		Exceptions:  []string{"IllegalStateException"}},
	{Class: "android.support.v7.widget.RecyclerView", Method: "setAdapter",
		Description: "set the adapter that provides the recycler list items"},

	// --- graphics / rendering ---
	{Class: "android.graphics.Canvas", Method: "drawBitmap",
		Description: "draw the bitmap picture onto the canvas"},
	{Class: "android.graphics.Bitmap", Method: "createScaledBitmap",
		Description: "create a resized copy of the bitmap image",
		Exceptions:  []string{"IllegalArgumentException", "OutOfMemoryError"}},
	{Class: "android.graphics.Typeface", Method: "createFromAsset",
		Description: "load a font typeface from the application assets",
		Exceptions:  []string{"RuntimeException"}},

	// --- preferences / settings ---
	{Class: "android.preference.PreferenceManager", Method: "getDefaultSharedPreferences",
		Description: "return the default shared preferences settings of the app"},
	{Class: "android.provider.Settings$System", Method: "putInt",
		Description: "write a value into the system settings",
		Permission:  "android.permission.WRITE_SETTINGS",
		Exceptions:  []string{"SecurityException"}},

	// --- sensors / hardware ---
	{Class: "android.hardware.SensorManager", Method: "registerListener",
		Description: "register a listener for sensor events like the compass or accelerometer"},
	{Class: "android.hardware.SensorManager", Method: "getDefaultSensor",
		Description: "return the default sensor of the given type"},
	{Class: "android.nfc.NfcAdapter", Method: "enableForegroundDispatch",
		Description: "enable nfc tag dispatch to the foreground activity",
		Exceptions:  []string{"IllegalStateException"}},
	{Class: "android.os.BatteryManager", Method: "getIntProperty",
		Description: "read a battery property such as the charge level"},

	// --- audio focus / media session ---
	{Class: "android.media.AudioManager", Method: "requestAudioFocus",
		Description: "request audio focus to play sound"},
	{Class: "android.media.AudioManager", Method: "abandonAudioFocus",
		Description: "abandon audio focus after playback stops"},
	{Class: "android.media.session.MediaSession", Method: "setActive",
		Description: "activate the media session for playback controls"},
	{Class: "android.media.MediaScannerConnection", Method: "scanFile",
		Description: "scan a media file so it appears in the gallery"},

	// --- text / speech / translation ---
	{Class: "android.text.format.DateFormat", Method: "format",
		Description: "format a date value as display text"},
	{Class: "android.speech.SpeechRecognizer", Method: "startListening",
		Description: "start listening for speech voice input"},

	// --- window / display ---
	{Class: "android.view.Window", Method: "setFlags",
		Description: "set window display flags such as keeping the screen on"},
	{Class: "android.view.Display", Method: "getRotation",
		Description: "return the rotation orientation of the screen"},

	// --- process / runtime ---
	{Class: "java.lang.Runtime", Method: "exec",
		Description: "execute a system command in a separate process",
		Exceptions:  []string{"IOException", "SecurityException"}},
	{Class: "java.lang.System", Method: "currentTimeMillis",
		Description: "return the current time in milliseconds"},
	{Class: "java.lang.Integer", Method: "parseInt",
		Description: "parse the string as an integer number",
		Exceptions:  []string{"NumberFormatException"}},
	{Class: "java.util.concurrent.ExecutorService", Method: "submit",
		Description: "submit a task for background execution",
		Exceptions:  []string{"RejectedExecutionException"}},
	{Class: "java.util.concurrent.Future", Method: "get",
		Description: "wait for the background task result",
		Exceptions:  []string{"InterruptedException", "ExecutionException"}},

	// --- crypto ---
	{Class: "javax.crypto.Cipher", Method: "doFinal",
		Description: "encrypt or decrypt the data with the cipher",
		Exceptions:  []string{"IllegalBlockSizeException", "BadPaddingException"}},
	{Class: "javax.crypto.Cipher", Method: "init",
		Description: "initialize the cipher with the encryption key",
		Exceptions:  []string{"InvalidKeyException"}},
	{Class: "java.security.MessageDigest", Method: "digest",
		Description: "compute the hash digest of the data"},
	{Class: "java.security.KeyStore", Method: "load",
		Description: "load the certificate key store",
		Exceptions:  []string{"IOException", "CertificateException", "NoSuchAlgorithmException"}},

	// --- xml / html parsing ---
	{Class: "org.xmlpull.v1.XmlPullParser", Method: "next",
		Description: "advance to the next token of the xml feed document",
		Exceptions:  []string{"XmlPullParserException", "IOException"}},
	{Class: "android.text.Html", Method: "fromHtml",
		Description: "parse html text into displayable styled text"},

	// --- printing / share ---
	{Class: "android.print.PrintManager", Method: "print",
		Description: "print a document from the app"},
	{Class: "android.content.Intent", Method: "createChooser",
		Description: "create a chooser dialog to share content with another app"},

	// --- download / storage access framework ---
	{Class: "android.app.DownloadManager", Method: "query",
		Description: "query the status of a download"},
	{Class: "android.provider.DocumentsContract", Method: "buildDocumentUri",
		Description: "build the uri of a document file on storage"},

	// --- telephony extras ---
	{Class: "android.telephony.SubscriptionManager", Method: "getActiveSubscriptionInfoList",
		Description: "return the active sim card subscriptions",
		Permission:  "android.permission.READ_PHONE_STATE"},
	{Class: "android.telecom.TelecomManager", Method: "placeCall",
		Description: "place a phone call to the given number",
		Permission:  "android.permission.CALL_PHONE",
		Exceptions:  []string{"SecurityException"}},

	// --- widgets / wallpaper / shortcuts ---
	{Class: "android.appwidget.AppWidgetManager", Method: "updateAppWidget",
		Description: "update the home screen widget views"},
	{Class: "android.app.WallpaperManager", Method: "setBitmap",
		Description: "set the device wallpaper to the bitmap image",
		Permission:  "android.permission.SET_WALLPAPER",
		Exceptions:  []string{"IOException"}},
	{Class: "android.content.pm.ShortcutManager", Method: "addDynamicShortcuts",
		Description: "add dynamic app shortcuts to the launcher",
		Exceptions:  []string{"IllegalArgumentException"}},
}

// extraPermissions documents the permissions the extra APIs reference.
var extraPermissions = []Permission{
	{Name: "android.permission.CALL_PHONE",
		Description: "Allows an application to initiate a phone call."},
	{Name: "android.permission.SET_WALLPAPER",
		Description: "Allows applications to set the device wallpaper."},
}
