// Package sdk is the offline Android framework catalog that ReviewSolver's
// static analysis and localizers consult: framework API signatures with
// official-documentation descriptions, permissions, and thrown exceptions
// (§4.2.1, §4.2.3); content-provider URIs with their PScout permission
// mapping (§4.2.1); the Android common intents with their descriptive nouns
// (§4.2.1); and permission descriptions (for URI noun extraction).
//
// In the original system this data comes from the Android developer
// documentation, PScout, and the platform SDK; here it is curated into a
// static table covering the APIs that mobile apps exercise in the paper's
// evaluation domains (messaging, media, network, storage, telephony,
// location, UI).
package sdk

import "strings"

// API describes one Android framework method.
type API struct {
	// Class is the fully qualified class name, e.g. "android.telephony.SmsManager".
	Class string
	// Method is the method name, e.g. "sendTextMessage".
	Method string
	// Description is the official-documentation summary sentence.
	Description string
	// Permission is the permission required to call the API ("" if none).
	Permission string
	// Exceptions lists exception type names the API is documented to throw.
	Exceptions []string
}

// Signature returns "class.method()".
func (a API) Signature() string { return a.Class + "." + a.Method + "()" }

// ShortClass returns the class name without the package.
func (a API) ShortClass() string {
	if i := strings.LastIndexByte(a.Class, '.'); i >= 0 {
		return a.Class[i+1:]
	}
	return a.Class
}

// URI describes a content-provider URI and its protecting permission
// (the PScout mapping).
type URI struct {
	// URI is the provider URI, e.g. "content://contacts".
	URI string
	// Permission protects read access to the URI.
	Permission string
}

// Intent describes one of the Android "common intents" with the nouns users
// employ for it.
type Intent struct {
	// Action is the intent action string.
	Action string
	// Nouns are the user-facing nouns associated with the intent
	// (manually defined per §4.2.1, from the common-intents documentation).
	Nouns []string
}

// Permission describes an Android permission and its documentation sentence.
type Permission struct {
	// Name is the permission constant, e.g. "android.permission.READ_CALL_LOG".
	Name string
	// Description is the documentation sentence; the URI localizer extracts
	// noun phrases from it (§4.2.1).
	Description string
}

// Catalog bundles the framework tables with lookup indexes.
type Catalog struct {
	apis        []API
	uris        []URI
	intents     []Intent
	permissions map[string]Permission
	byClass     map[string][]int
	bySignature map[string]int
	byException map[string][]int
}

// NewCatalog builds the built-in catalog.
func NewCatalog() *Catalog {
	apis := make([]API, 0, len(frameworkAPIs)+len(catalogExtra))
	apis = append(apis, frameworkAPIs...)
	apis = append(apis, catalogExtra...)
	c := &Catalog{
		apis:        apis,
		uris:        providerURIs,
		intents:     commonIntents,
		permissions: make(map[string]Permission, len(permissionTable)+len(extraPermissions)),
		byClass:     make(map[string][]int),
		bySignature: make(map[string]int, len(apis)),
		byException: make(map[string][]int),
	}
	for _, p := range permissionTable {
		c.permissions[p.Name] = p
	}
	for _, p := range extraPermissions {
		c.permissions[p.Name] = p
	}
	for i, a := range c.apis {
		c.byClass[a.Class] = append(c.byClass[a.Class], i)
		c.bySignature[a.Class+"."+a.Method] = i
		for _, ex := range a.Exceptions {
			c.byException[ex] = append(c.byException[ex], i)
		}
	}
	return c
}

// APIs returns all framework APIs.
func (c *Catalog) APIs() []API { return c.apis }

// URIs returns all provider URIs.
func (c *Catalog) URIs() []URI { return c.uris }

// Intents returns the common intents.
func (c *Catalog) Intents() []Intent { return c.intents }

// LookupAPI finds an API by "class.method" key.
func (c *Catalog) LookupAPI(class, method string) (API, bool) {
	if i, ok := c.bySignature[class+"."+method]; ok {
		return c.apis[i], true
	}
	return API{}, false
}

// IsFrameworkClass reports whether the class belongs to the catalog.
func (c *Catalog) IsFrameworkClass(class string) bool {
	_, ok := c.byClass[class]
	return ok
}

// APIsThrowing returns the APIs documented to throw the given exception
// type (short name, e.g. "SocketException").
func (c *Catalog) APIsThrowing(exception string) []API {
	idxs := c.byException[exception]
	out := make([]API, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, c.apis[i])
	}
	return out
}

// PermissionDescription returns the documentation sentence for a permission.
func (c *Catalog) PermissionDescription(name string) (string, bool) {
	p, ok := c.permissions[name]
	return p.Description, ok
}

// ExceptionTypes returns the distinct exception type names in the catalog.
func (c *Catalog) ExceptionTypes() []string {
	out := make([]string, 0, len(c.byException))
	for ex := range c.byException {
		out = append(out, ex)
	}
	return out
}

// URIPermission returns the permission protecting a URI.
func (c *Catalog) URIPermission(uri string) (string, bool) {
	for _, u := range c.uris {
		if u.URI == uri {
			return u.Permission, true
		}
	}
	return "", false
}
