package sdk

import (
	"strings"
	"testing"
)

func TestCatalogLookup(t *testing.T) {
	c := NewCatalog()
	api, ok := c.LookupAPI("android.telephony.SmsManager", "sendTextMessage")
	if !ok {
		t.Fatal("sendTextMessage not found")
	}
	if api.Permission != "android.permission.SEND_SMS" {
		t.Errorf("permission = %q", api.Permission)
	}
	if !strings.Contains(api.Description, "send") {
		t.Errorf("description %q lacks verb", api.Description)
	}
	if _, ok := c.LookupAPI("no.such.Class", "nope"); ok {
		t.Error("lookup of missing API succeeded")
	}
}

func TestAPISignature(t *testing.T) {
	api := API{Class: "java.net.Socket", Method: "connect"}
	if api.Signature() != "java.net.Socket.connect()" {
		t.Errorf("Signature = %q", api.Signature())
	}
	if api.ShortClass() != "Socket" {
		t.Errorf("ShortClass = %q", api.ShortClass())
	}
}

func TestAPIsThrowing(t *testing.T) {
	c := NewCatalog()
	// §2.3 Example 7: SocketException is thrown by java.net.Socket methods.
	apis := c.APIsThrowing("SocketException")
	if len(apis) == 0 {
		t.Fatal("no APIs throw SocketException")
	}
	for _, a := range apis {
		if a.Class != "java.net.Socket" {
			t.Errorf("unexpected class %q throwing SocketException", a.Class)
		}
	}
	if len(c.APIsThrowing("NoSuchException")) != 0 {
		t.Error("unknown exception should yield no APIs")
	}
}

func TestURIPermissionMapping(t *testing.T) {
	c := NewCatalog()
	perm, ok := c.URIPermission("content://call_log")
	if !ok || perm != "android.permission.READ_CALL_LOG" {
		t.Errorf("call_log permission = %q ok=%v", perm, ok)
	}
	desc, ok := c.PermissionDescription(perm)
	if !ok || !strings.Contains(desc, "call log") {
		t.Errorf("READ_CALL_LOG description = %q", desc)
	}
}

func TestCommonIntents(t *testing.T) {
	c := NewCatalog()
	if len(c.Intents()) != 11 {
		t.Errorf("paper defines 11 common intents, have %d", len(c.Intents()))
	}
	foundCamera := false
	for _, in := range c.Intents() {
		if in.Action == "android.media.action.IMAGE_CAPTURE" {
			foundCamera = true
			has := false
			for _, n := range in.Nouns {
				if n == "camera" {
					has = true
				}
			}
			if !has {
				t.Error("IMAGE_CAPTURE missing 'camera' noun")
			}
		}
	}
	if !foundCamera {
		t.Error("IMAGE_CAPTURE intent missing")
	}
}

func TestCatalogConsistency(t *testing.T) {
	c := NewCatalog()
	if len(c.APIs()) < 70 {
		t.Errorf("catalog suspiciously small: %d APIs", len(c.APIs()))
	}
	// Every API permission must have a description.
	for _, a := range c.APIs() {
		if a.Permission == "" {
			continue
		}
		if _, ok := c.PermissionDescription(a.Permission); !ok {
			t.Errorf("API %s references undocumented permission %s", a.Signature(), a.Permission)
		}
	}
	// Every URI permission must have a description.
	for _, u := range c.URIs() {
		if _, ok := c.PermissionDescription(u.Permission); !ok {
			t.Errorf("URI %s references undocumented permission %s", u.URI, u.Permission)
		}
	}
	// Descriptions must be non-empty and lower-case-matchable.
	for _, a := range c.APIs() {
		if strings.TrimSpace(a.Description) == "" {
			t.Errorf("API %s has empty description", a.Signature())
		}
	}
}

func TestIsFrameworkClass(t *testing.T) {
	c := NewCatalog()
	if !c.IsFrameworkClass("java.net.Socket") {
		t.Error("java.net.Socket should be a framework class")
	}
	if c.IsFrameworkClass("com.example.app.MainActivity") {
		t.Error("app class misidentified as framework")
	}
}

func TestExceptionTypes(t *testing.T) {
	c := NewCatalog()
	types := c.ExceptionTypes()
	want := map[string]bool{"SocketException": false, "IOException": false, "SecurityException": false}
	for _, ty := range types {
		if _, ok := want[ty]; ok {
			want[ty] = true
		}
	}
	for ty, seen := range want {
		if !seen {
			t.Errorf("exception type %s missing from catalog", ty)
		}
	}
}
