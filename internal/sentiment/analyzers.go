package sentiment

import (
	"math"
	"strings"

	"reviewsolver/internal/textproc"
)

// SentiStrength is the dual-scale analyzer modelled on the SentiStrength
// tool: it tracks the strongest positive and the strongest negative signal
// separately and reports Negative whenever the negative scale dominates or
// even matches a weak positive scale. Functional complaints ("doesn't work",
// "can't login") register as negative even without overt sentiment words,
// which is exactly why the paper found SentiStrength to have far higher
// negative recall than NLTK and Stanford (Table 4).
type SentiStrength struct{}

var _ Analyzer = SentiStrength{}

// Name implements Analyzer.
func (SentiStrength) Name() string { return "SentiStrength" }

// Classify implements Analyzer.
func (SentiStrength) Classify(sentence string) Polarity {
	toks := textproc.Tokenize(sentence)
	maxPos, maxNeg := 1, -1 // SentiStrength scales start at +1 / -1
	boost := 0
	negate := 0 // countdown window after a negation word
	exclaims := 0
	for _, t := range toks {
		if t.Kind == textproc.Punct && strings.HasPrefix(t.Text, "!") {
			exclaims++
			continue
		}
		if t.Kind != textproc.Word {
			continue
		}
		w := t.Lower
		if isNegation(w) {
			negate = 3 // negation scope: next three words
			continue
		}
		if b, ok := boosters[w]; ok {
			boost += b
			continue
		}
		v, ok := valence[w]
		if !ok {
			if negate > 0 {
				negate--
				// A negated neutral verb is a functional complaint:
				// "doesn't work", "won't open", "can't send".
				if isFunctionVerb(w) {
					if -2 < maxNeg {
						maxNeg = -2
					} else {
						maxNeg--
					}
					negate = 0
				}
			}
			boost = 0
			continue
		}
		v = applyBoost(v, boost)
		boost = 0
		if negate > 0 {
			v = flip(v)
			negate = 0
		}
		if v > 0 && v+1 > maxPos {
			maxPos = v
		}
		if v < 0 && v < maxNeg {
			maxNeg = v
		}
	}
	// Exclamation marks amplify whichever scale is stronger.
	if exclaims > 0 {
		if -maxNeg >= maxPos && maxNeg > -5 {
			maxNeg--
		} else if maxPos > 1 && maxPos < 5 {
			maxPos++
		}
	}
	switch {
	case -maxNeg > maxPos:
		return Negative
	case maxPos > -maxNeg && maxPos > 1:
		return Positive
	case maxNeg <= -2:
		// Equal-strength mixed signal: SentiStrength leans negative for
		// review text (negative scale wins ties at strength >= 2).
		return Negative
	default:
		return Neutral
	}
}

func applyBoost(v, boost int) int {
	if v > 0 {
		v += boost
		if v < 1 {
			v = 1
		}
		if v > 5 {
			v = 5
		}
		return v
	}
	v -= boost
	if v > -1 {
		v = -1
	}
	if v < -5 {
		v = -5
	}
	return v
}

// flip inverts polarity the way SentiStrength does: a negated sentiment word
// becomes a weakened signal of the opposite polarity.
func flip(v int) int {
	if v > 0 {
		return -v // "not good" → negative of the same strength
	}
	return 1 // "not bad" → barely positive → neutral-ish
}

// isFunctionVerb reports whether a neutral verb describes app functionality
// whose negation implies a malfunction.
func isFunctionVerb(w string) bool {
	switch w {
	case "work", "works", "working", "open", "opens", "load", "loads",
		"start", "starts", "sync", "syncs", "connect", "connects",
		"send", "sends", "save", "saves", "show", "shows", "play",
		"plays", "login", "register", "respond", "responds", "update",
		"function", "launch", "download", "upload", "receive",
		"display", "refresh", "find", "see", "access", "log":
		return true
	}
	return false
}

// NLTK is the conservative log-odds analyzer standing in for the NLTK
// sentiment classifier: it sums per-word log-odds trained for strong movie
// review polarity and requires a wide margin before leaving Neutral, so it
// misses most functional complaints.
type NLTK struct{}

var _ Analyzer = NLTK{}

// Name implements Analyzer.
func (NLTK) Name() string { return "NLTK" }

// Classify implements Analyzer.
func (NLTK) Classify(sentence string) Polarity {
	words := textproc.Words(sentence)
	if len(words) == 0 {
		return Neutral
	}
	score := 0.0
	for _, w := range words {
		if v, ok := valence[w]; ok {
			// Only strong valence contributes; mild words wash out, and
			// negation is ignored (bag-of-words model).
			if v >= 3 {
				score += math.Log(4)
			} else if v <= -3 {
				score -= math.Log(4)
			}
		}
	}
	// Normalize by length: long mixed sentences stay neutral.
	norm := score / math.Sqrt(float64(len(words)))
	switch {
	case norm <= -0.9:
		return Negative
	case norm >= 0.9:
		return Positive
	default:
		return Neutral
	}
}

// Stanford is the clause-cascade analyzer standing in for the Stanford
// CoreNLP sentiment model: each clause receives a local score, and the
// sentence polarity is the sign of the final clause unless an earlier clause
// is overwhelmingly stronger. Trained on formal prose, it reads most
// terse review clauses as Neutral.
type Stanford struct{}

var _ Analyzer = Stanford{}

// Name implements Analyzer.
func (Stanford) Name() string { return "Stanford" }

// Classify implements Analyzer.
func (Stanford) Classify(sentence string) Polarity {
	clauses := splitClauses(sentence)
	if len(clauses) == 0 {
		return Neutral
	}
	scores := make([]int, len(clauses))
	for i, cl := range clauses {
		scores[i] = clauseScore(cl)
	}
	final := scores[len(scores)-1]
	maxAbs := 0
	maxVal := 0
	for _, s := range scores {
		if abs(s) > maxAbs {
			maxAbs, maxVal = abs(s), s
		}
	}
	// The final clause dominates unless another clause is >= 2x stronger.
	decisive := final
	if maxAbs >= 2*abs(final) {
		decisive = maxVal
	}
	switch {
	case decisive <= -4:
		return Negative
	case decisive >= 4:
		return Positive
	default:
		return Neutral
	}
}

func splitClauses(sentence string) []string {
	fields := strings.FieldsFunc(sentence, func(r rune) bool {
		return r == ',' || r == ';' || r == ':'
	})
	out := fields[:0]
	for _, f := range fields {
		if strings.TrimSpace(f) != "" {
			out = append(out, f)
		}
	}
	return out
}

func clauseScore(clause string) int {
	score := 0
	negate := false
	for _, w := range textproc.Words(clause) {
		if isNegation(w) {
			negate = true
			continue
		}
		if v, ok := valence[w]; ok {
			if negate {
				v = flip(v)
				negate = false
			}
			score += v
		}
	}
	return score
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
