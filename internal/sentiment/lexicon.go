package sentiment

// valence maps words to sentiment strengths on the SentiStrength-style
// scale: negative words in [-5,-1], positive words in [1,5]. Words absent
// from the map are neutral.
var valence = map[string]int{
	// strong negative
	"terrible": -4, "horrible": -4, "awful": -4, "worst": -4, "hate": -4,
	"garbage": -4, "trash": -3, "useless": -4, "unusable": -4,
	"disgusting": -4, "pathetic": -4, "scam": -4,
	// moderate negative
	"bad": -3, "worse": -3, "annoying": -3, "frustrating": -3, "broken": -3,
	"crash": -3, "crashes": -3, "crashed": -3, "crashing": -3, "bug": -3,
	"bugs": -3, "buggy": -3, "error": -3, "errors": -3, "fail": -3,
	"fails": -3, "failed": -3, "failure": -3, "freeze": -3, "freezes": -3,
	"frozen": -3, "froze": -3, "glitch": -3, "glitches": -3, "corrupt": -3,
	"corrupted": -3, "unresponsive": -3, "exception": -2,
	// mild negative
	"problem": -2, "problems": -2, "issue": -2, "issues": -2, "fault": -2,
	"wrong": -2, "slow": -2, "stuck": -2, "hang": -2, "hangs": -2,
	"hung": -2, "unable": -2, "impossible": -2, "missing": -2, "lost": -2,
	"disappointing": -3, "disappointed": -3, "sadly": -2, "unfortunately": -2,
	"poor": -2, "lacking": -2, "confusing": -2, "uninstall": -2,
	"uninstalled": -2, "uninstalling": -2, "refund": -2, "blank": -1,
	"empty": -1, "stopped": -2, "stop": -1, "quit": -2, "dies": -3,
	"died": -3, "laggy": -3, "lag": -2, "lags": -2, "spam": -2,
	"waste": -3, "wasted": -3, "ridiculous": -3, "stupid": -3,
	"mess": -3, "sucks": -4, "suck": -4, "crap": -4, "junk": -3,
	"complaint": -2, "complaints": -2, "defect": -3, "defects": -3,

	// strong positive
	"excellent": 4, "amazing": 4, "awesome": 4, "fantastic": 4,
	"wonderful": 4, "perfect": 4, "love": 4, "loved": 4, "loves": 4,
	"brilliant": 4, "outstanding": 4, "superb": 4, "flawless": 4,
	// moderate positive
	"great": 3, "good": 2, "nice": 2, "best": 3, "better": 1,
	"beautiful": 3, "helpful": 2, "useful": 2, "smooth": 2, "fast": 1,
	"easy": 2, "simple": 1, "clean": 2, "handy": 2, "solid": 2,
	"reliable": 3, "stable": 2, "recommend": 3, "recommended": 3,
	"thanks": 2, "thank": 2, "happy": 3, "pleased": 3, "enjoy": 3,
	"enjoyed": 3, "like": 2, "likes": 2, "liked": 2, "fine": 1,
	"works": 1, "working": 1, "worked": 1, "favorite": 3, "cool": 2,
	"intuitive": 2, "responsive": 2, "free": 1, "fun": 2,
}

// boosters amplify (positive value) or dampen (negative value) the strength
// of the following sentiment word.
var boosters = map[string]int{
	"very": 1, "really": 1, "extremely": 2, "so": 1, "totally": 1,
	"absolutely": 2, "completely": 1, "always": 1, "constantly": 1,
	"super": 1, "incredibly": 2,
	"slightly": -1, "somewhat": -1, "bit": -1, "little": -1, "kinda": -1,
	"fairly": -1,
}

// negations flip the polarity of nearby sentiment words.
var negations = map[string]struct{}{
	"not": {}, "no": {}, "never": {}, "cannot": {}, "cant": {},
	"wont": {}, "dont": {}, "doesnt": {}, "didnt": {}, "isnt": {},
	"wasnt": {}, "couldnt": {}, "wouldnt": {}, "without": {}, "nothing": {},
	"nobody": {}, "none": {}, "neither": {}, "nor": {},
}

func isNegation(w string) bool {
	if _, ok := negations[w]; ok {
		return true
	}
	// contracted forms survive tokenization with the apostrophe
	return len(w) > 3 && (w[len(w)-3:] == "n't")
}
