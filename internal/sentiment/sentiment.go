// Package sentiment implements the sentence-level sentiment analysis that
// ReviewSolver uses to discard positive sentences from function-error
// reviews (§3.2.3), plus the adversative-conjunction splitting that breaks
// "great app BUT stats page doesnt work" into a positive part (discarded)
// and a negative part (kept).
//
// The paper compares three off-the-shelf tools (SentiStrength, NLTK,
// Stanford CoreNLP) and picks SentiStrength for its far higher recall on
// negative reviews (Table 4). This package provides three analyzers with the
// same relative behaviour, implemented with genuinely different algorithms:
//
//   - SentiStrength: dual positive/negative strength scales with booster
//     words, negation flipping, and emphatic-punctuation amplification —
//     sensitive to any negative evidence.
//   - NLTK: a naive-Bayes-style log-odds scorer with a high decision margin
//     — conservative, misses most mildly negative sentences.
//   - Stanford: a clause-cascade model where the final clause dominates —
//     also conservative on review prose.
package sentiment

import (
	"strings"

	"reviewsolver/internal/textproc"
)

// Polarity is the sentiment class of a sentence.
type Polarity int

// Polarity values.
const (
	Negative Polarity = iota + 1
	Neutral
	Positive
)

// String returns the polarity name.
func (p Polarity) String() string {
	switch p {
	case Negative:
		return "negative"
	case Neutral:
		return "neutral"
	case Positive:
		return "positive"
	default:
		return "unknown"
	}
}

// Analyzer classifies the sentiment of a single sentence.
type Analyzer interface {
	// Classify returns the polarity of the sentence.
	Classify(sentence string) Polarity
	// Name identifies the analyzer in experiment tables.
	Name() string
}

// adversative conjunctions that signal contrast between two clause
// sentiments (§3.2.3).
var adversatives = map[string]struct{}{
	"but": {}, "whereas": {}, "nevertheless": {}, "however": {}, "yet": {},
	"although": {}, "though": {},
}

// IsAdversative reports whether a lower-cased word is an adversative
// coordinating conjunction.
func IsAdversative(word string) bool {
	_, ok := adversatives[word]
	return ok
}

// SplitAdversative splits a sentence at its adversative conjunctions into
// separate clause-sentences, mirroring §3.2.3: "We combine the words before
// or after the adversative coordinating conjunctions to construct one
// distinct sentence." A sentence without adversatives is returned unchanged
// as a single element.
func SplitAdversative(sentence string) []string {
	toks := textproc.Tokenize(sentence)
	var (
		parts []string
		cur   []string
	)
	flush := func() {
		// Drop trailing sentence-final punctuation from the clause.
		for len(cur) > 0 {
			last := cur[len(cur)-1]
			if last == "." || last == "!" || last == "?" ||
				strings.Trim(last, ".!?") == "" && len(last) > 1 {
				cur = cur[:len(cur)-1]
				continue
			}
			break
		}
		if len(cur) > 0 {
			parts = append(parts, strings.Join(cur, " "))
			cur = cur[:0]
		}
	}
	for _, t := range toks {
		if t.Kind == textproc.Word && IsAdversative(t.Lower) {
			flush()
			continue
		}
		cur = append(cur, t.Text)
	}
	flush()
	if len(parts) == 0 {
		return []string{sentence}
	}
	return parts
}

// NegativeSentences runs the analyzer over every clause of every sentence of
// a review and returns the sentences (clause-level after adversative
// splitting) that are negative or neutral — the ones that may describe the
// error and should feed phrase extraction. Positive clauses are discarded.
func NegativeSentences(a Analyzer, review string) []string {
	var kept []string
	for _, sentence := range textproc.SplitSentences(review) {
		for _, clause := range SplitAdversative(sentence) {
			if a.Classify(clause) != Positive {
				kept = append(kept, clause)
			}
		}
	}
	return kept
}

// HasNegativeSentence reports whether any clause of the review classifies as
// negative under the analyzer. Table 4 counts reviews with at least one
// negative sentence.
func HasNegativeSentence(a Analyzer, review string) bool {
	for _, sentence := range textproc.SplitSentences(review) {
		for _, clause := range SplitAdversative(sentence) {
			if a.Classify(clause) == Negative {
				return true
			}
		}
	}
	return false
}
