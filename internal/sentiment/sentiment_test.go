package sentiment

import (
	"reflect"
	"testing"
)

func TestSentiStrengthClassify(t *testing.T) {
	a := SentiStrength{}
	tests := []struct {
		sentence string
		want     Polarity
	}{
		{"a bad app, often crash", Negative},
		{"the app keeps crashing", Negative},
		{"love u first of all for making this app", Positive},
		{"it is a great app", Positive},
		{"my stats page doesnt work properly", Negative},
		{"it won't open anymore", Negative},
		{"i changed the font size", Neutral},
		{"not good at all", Negative},
		{"this is the worst update ever!!!", Negative},
		{"absolutely amazing, works perfectly", Positive},
	}
	for _, tt := range tests {
		if got := a.Classify(tt.sentence); got != tt.want {
			t.Errorf("SentiStrength.Classify(%q) = %s, want %s", tt.sentence, got, tt.want)
		}
	}
}

func TestAnalyzerNames(t *testing.T) {
	for _, tc := range []struct {
		a    Analyzer
		want string
	}{
		{SentiStrength{}, "SentiStrength"},
		{NLTK{}, "NLTK"},
		{Stanford{}, "Stanford"},
	} {
		if tc.a.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", tc.a.Name(), tc.want)
		}
	}
}

func TestNLTKConservative(t *testing.T) {
	a := NLTK{}
	// Functional complaint without strong sentiment words: NLTK misses it.
	if got := a.Classify("the reply button doesn't show"); got != Neutral {
		t.Errorf("NLTK on mild functional complaint = %s, want neutral", got)
	}
	// Strong explicit negativity is caught.
	if got := a.Classify("terrible awful horrible app"); got != Negative {
		t.Errorf("NLTK on strong negative = %s, want negative", got)
	}
	if got := a.Classify("amazing wonderful perfect"); got != Positive {
		t.Errorf("NLTK on strong positive = %s, want positive", got)
	}
}

func TestStanfordConservative(t *testing.T) {
	a := Stanford{}
	if got := a.Classify("cannot login to my gmail"); got != Neutral {
		t.Errorf("Stanford on terse complaint = %s, want neutral", got)
	}
	if got := a.Classify("this app is terrible, horrible and useless"); got != Negative {
		t.Errorf("Stanford on strong negative = %s, want negative", got)
	}
}

// TestRelativeRecall is the invariant behind Table 4: on functional
// complaints typical of error reviews, SentiStrength finds negatives that
// the other two analyzers miss.
func TestRelativeRecall(t *testing.T) {
	complaints := []string{
		"the app keeps crashing when i open imgur links",
		"cannot login to my gmail",
		"sync does not work since the update",
		"it crashed every time i opened it",
		"unable to fetch mail on my phone",
		"won't connect, get a 404 error when adding site",
		"the reply button doesn't show anymore",
		"app started crashing after recent update",
	}
	count := func(a Analyzer) int {
		n := 0
		for _, c := range complaints {
			if a.Classify(c) == Negative {
				n++
			}
		}
		return n
	}
	ss, nltk, stanford := count(SentiStrength{}), count(NLTK{}), count(Stanford{})
	if ss <= nltk || ss <= stanford {
		t.Errorf("recall ordering violated: SentiStrength=%d NLTK=%d Stanford=%d", ss, nltk, stanford)
	}
	if ss < len(complaints)-1 {
		t.Errorf("SentiStrength recall too low: %d/%d", ss, len(complaints))
	}
}

func TestSplitAdversative(t *testing.T) {
	got := SplitAdversative("It's a great app but since the last update my stats page doesnt work properly")
	if len(got) != 2 {
		t.Fatalf("want 2 parts, got %d: %v", len(got), got)
	}
	if got[0] != "It's a great app" {
		t.Errorf("part 0 = %q", got[0])
	}
	one := SplitAdversative("the app crashes on startup")
	if len(one) != 1 {
		t.Errorf("sentence without adversative split into %d parts", len(one))
	}
}

func TestNegativeSentences(t *testing.T) {
	review := "It's a great app but since the last update my stats page doesnt work properly."
	kept := NegativeSentences(SentiStrength{}, review)
	if len(kept) != 1 {
		t.Fatalf("want 1 kept clause, got %v", kept)
	}
	if want := "since the last update my stats page doesnt work properly"; kept[0] != want {
		t.Errorf("kept = %q, want %q", kept[0], want)
	}
}

func TestNegativeSentencesKeepsNeutral(t *testing.T) {
	review := "I changed the font size. The app crashed."
	kept := NegativeSentences(SentiStrength{}, review)
	// Both the neutral and the negative sentence must be kept.
	if len(kept) != 2 {
		t.Errorf("want 2 kept sentences, got %v", kept)
	}
}

func TestHasNegativeSentence(t *testing.T) {
	if !HasNegativeSentence(SentiStrength{}, "Nice UI. Sadly it crashes constantly.") {
		t.Error("negative sentence not detected")
	}
	if HasNegativeSentence(SentiStrength{}, "Nice UI. Love it.") {
		t.Error("all-positive review flagged negative")
	}
}

func TestIsAdversative(t *testing.T) {
	for _, w := range []string{"but", "however", "whereas"} {
		if !IsAdversative(w) {
			t.Errorf("IsAdversative(%q) = false", w)
		}
	}
	if IsAdversative("and") {
		t.Error("IsAdversative(and) = true")
	}
}

func TestPolarityString(t *testing.T) {
	want := map[Polarity]string{Negative: "negative", Neutral: "neutral", Positive: "positive"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Polarity(0).String() != "unknown" {
		t.Error("zero polarity should be unknown")
	}
}

func TestClassifyDeterministic(t *testing.T) {
	a := SentiStrength{}
	s := "the app keeps crashing but i love the design"
	first := a.Classify(s)
	for i := 0; i < 5; i++ {
		if got := a.Classify(s); got != first {
			t.Fatal("non-deterministic classification")
		}
	}
}

func TestSplitAdversativePreservesWords(t *testing.T) {
	in := "good app but crashes often though i still use it"
	parts := SplitAdversative(in)
	if !reflect.DeepEqual(len(parts), 3) {
		t.Fatalf("want 3 parts, got %v", parts)
	}
}
