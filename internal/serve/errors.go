package serve

import (
	"context"
	"errors"
	"net/http"
)

// The serving failure taxonomy. Every way a request can fail maps to
// exactly one typed error here, and every typed error maps to exactly one
// HTTP status (see StatusFor) and one stable machine-readable kind (see
// KindFor) — chaos tests and clients match on these, never on message
// strings. The daemon turns panics into ErrInternal; it never dies.
var (
	// ErrUnknownApp: no snapshot registered under the requested app (or
	// app@version). 404.
	ErrUnknownApp = errors.New("serve: unknown app")
	// ErrQueueFull: the app's admission queue is at capacity; the request
	// was shed without queuing. 429 with Retry-After.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrQuarantined: the snapshot failed its last load (corrupt or
	// incompatible) and the re-probe backoff has not elapsed. 503 with
	// Retry-After.
	ErrQuarantined = errors.New("serve: snapshot quarantined")
	// ErrSnapshotLoad: this request probed the snapshot and the load
	// failed; the entry is now quarantined. 503.
	ErrSnapshotLoad = errors.New("serve: snapshot load failed")
	// ErrDeadline: the request's deadline expired (or the client went
	// away) while queued, loading, or mid-request. 504.
	ErrDeadline = errors.New("serve: request deadline exceeded")
	// ErrShutdown: the daemon is draining and no longer admits requests.
	// 503.
	ErrShutdown = errors.New("serve: shutting down")
	// ErrInternal: a request panicked (recovered) or failed in an
	// unclassified way. 500.
	ErrInternal = errors.New("serve: internal error")
	// ErrBadRequest: the request body or parameters did not parse. 400.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrUnknownTrace: /v1/trace/<id> named a trace that was never sampled
	// or has been evicted from the bounded trace store. 404.
	ErrUnknownTrace = errors.New("serve: unknown trace")
)

// StatusFor maps a typed serving error to its HTTP status code.
func StatusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrUnknownApp), errors.Is(err, ErrUnknownTrace):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQuarantined), errors.Is(err, ErrSnapshotLoad), errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// KindFor maps a typed serving error to the stable "kind" string carried in
// error response bodies.
func KindFor(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrUnknownApp):
		return "unknown_app"
	case errors.Is(err, ErrUnknownTrace):
		return "unknown_trace"
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrQuarantined):
		return "quarantined"
	case errors.Is(err, ErrSnapshotLoad):
		return "load_failed"
	case errors.Is(err, ErrShutdown):
		return "shutting_down"
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "deadline"
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	default:
		return "internal"
	}
}
