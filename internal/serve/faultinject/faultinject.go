// Package faultinject is the deterministic fault-injection harness behind
// reviewd's chaos tests. An Injector holds armed faults keyed by (point,
// key); production code calls Fire at well-known points (snapshot load,
// request execution) and the injector either passes through (no fault
// armed — the default, nil-safe), delays, blocks until released, or returns
// an injected error.
//
// Everything is explicit and repeatable: faults fire a configured number of
// times in arm order, there is no randomness, and blocking faults are
// released by the test through a channel — so a chaos scenario (slow load
// while the queue saturates, cancellation mid-request, a corrupt snapshot
// appearing on re-register) plays out the same way on every run.
package faultinject

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrPanic is a sentinel fault error: a fire site that sees it panics
// instead of returning, so chaos tests can prove the panic-recovery
// middleware contains a crashing request deterministically.
var ErrPanic = errors.New("faultinject: panic")

// Point names a fault-injection site in the serving path.
type Point string

const (
	// PointSnapshotLoad fires inside the registry's singleflight loader,
	// before the real snapfile open. Key: the registry entry key
	// ("app@version").
	PointSnapshotLoad Point = "snapshot_load"
	// PointRequest fires in the request handler after admission, while the
	// request holds an execution slot. Key: the app package.
	PointRequest Point = "request"
)

// Fault describes one injected behaviour. Zero-value fields are inert; a
// fault can combine a delay or block with an error (the wait happens first,
// then the error is returned).
type Fault struct {
	// Err is returned from Fire after any wait, simulating the failure
	// (e.g. a corrupt snapshot: wrap snapfile.ErrChecksum).
	Err error
	// Delay pauses Fire for the duration (or until the caller's context is
	// done, whichever is first) — the "slow load" fault.
	Delay time.Duration
	// Block pauses Fire until the channel is closed (or the caller's
	// context is done). Tests use it to hold requests in flight and
	// saturate queues at a deterministic instant.
	Block <-chan struct{}
	// Count is how many Fire calls consume this fault; 0 means unlimited.
	Count int
	// Key restricts the fault to one Fire key; empty matches every key at
	// the point.
	Key string
}

// armed is one live fault with its remaining-fire budget.
type armed struct {
	fault     Fault
	remaining int // <0 = unlimited
}

// Injector holds the armed faults. The zero value and nil are valid
// injectors that never fire.
type Injector struct {
	mu     sync.Mutex
	faults map[Point][]*armed
	fired  map[Point]int
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{faults: make(map[Point][]*armed), fired: make(map[Point]int)}
}

// Arm registers a fault at a point. Faults at the same point are consumed
// in arm order: Fire picks the first non-exhausted fault whose key matches.
func (in *Injector) Arm(p Point, f Fault) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rem := f.Count
	if rem == 0 {
		rem = -1
	}
	in.faults[p] = append(in.faults[p], &armed{fault: f, remaining: rem})
}

// Disarm clears every fault at a point.
func (in *Injector) Disarm(p Point) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.faults, p)
}

// Fired reports how many faults have fired at a point — chaos tests assert
// exact counts against it.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// Fire applies the first matching armed fault at the point: wait out its
// delay/block (abandoning the wait with ctx.Err() if the context ends
// first), then return its error. With no matching fault armed it returns
// nil immediately. Nil-safe on a nil injector.
func (in *Injector) Fire(ctx context.Context, p Point, key string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var hit *armed
	for _, a := range in.faults[p] {
		if a.remaining == 0 {
			continue
		}
		if a.fault.Key != "" && a.fault.Key != key {
			continue
		}
		hit = a
		break
	}
	if hit == nil {
		in.mu.Unlock()
		return nil
	}
	if hit.remaining > 0 {
		hit.remaining--
	}
	in.fired[p]++
	f := hit.fault
	in.mu.Unlock()

	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.Block != nil {
		select {
		case <-f.Block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return f.Err
}
