package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilAndEmptyInjectorPassThrough(t *testing.T) {
	var nilInj *Injector
	if err := nilInj.Fire(context.Background(), PointRequest, "x"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	nilInj.Arm(PointRequest, Fault{Err: errors.New("boom")}) // must not panic
	if got := nilInj.Fired(PointRequest); got != 0 {
		t.Fatalf("nil injector Fired = %d", got)
	}
	if err := New().Fire(context.Background(), PointSnapshotLoad, "a@v1"); err != nil {
		t.Fatalf("empty injector fired: %v", err)
	}
}

func TestFireCountAndKeyMatching(t *testing.T) {
	boom := errors.New("boom")
	in := New()
	in.Arm(PointSnapshotLoad, Fault{Err: boom, Count: 2, Key: "a@v1"})

	ctx := context.Background()
	if err := in.Fire(ctx, PointSnapshotLoad, "b@v1"); err != nil {
		t.Fatalf("key mismatch still fired: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := in.Fire(ctx, PointSnapshotLoad, "a@v1"); !errors.Is(err, boom) {
			t.Fatalf("fire %d = %v, want boom", i, err)
		}
	}
	if err := in.Fire(ctx, PointSnapshotLoad, "a@v1"); err != nil {
		t.Fatalf("exhausted fault still fired: %v", err)
	}
	if got := in.Fired(PointSnapshotLoad); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestArmOrderAndDisarm(t *testing.T) {
	first, second := errors.New("first"), errors.New("second")
	in := New()
	in.Arm(PointRequest, Fault{Err: first, Count: 1})
	in.Arm(PointRequest, Fault{Err: second, Count: 1})

	ctx := context.Background()
	if err := in.Fire(ctx, PointRequest, "any"); !errors.Is(err, first) {
		t.Fatalf("first fire = %v", err)
	}
	if err := in.Fire(ctx, PointRequest, "any"); !errors.Is(err, second) {
		t.Fatalf("second fire = %v", err)
	}
	in.Arm(PointRequest, Fault{Err: first})
	in.Disarm(PointRequest)
	if err := in.Fire(ctx, PointRequest, "any"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestBlockReleasedByClose(t *testing.T) {
	gate := make(chan struct{})
	in := New()
	in.Arm(PointRequest, Fault{Block: gate, Count: 1})

	done := make(chan error, 1)
	go func() { done <- in.Fire(context.Background(), PointRequest, "app") }()
	select {
	case err := <-done:
		t.Fatalf("blocked fault returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("released block returned %v", err)
	}
}

func TestBlockAbandonedOnContextCancel(t *testing.T) {
	in := New()
	in.Arm(PointRequest, Fault{Block: make(chan struct{}), Count: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Fire(ctx, PointRequest, "app") }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled block = %v, want context.Canceled", err)
	}
}

func TestDelayRespectsContextDeadline(t *testing.T) {
	in := New()
	in.Arm(PointSnapshotLoad, Fault{Delay: time.Minute, Count: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	started := time.Now()
	err := in.Fire(ctx, PointSnapshotLoad, "slow@v1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow fire = %v, want deadline exceeded", err)
	}
	if time.Since(started) > 5*time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}
