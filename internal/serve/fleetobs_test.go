package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

// requireSim runs the scenario once, failing the test on any phase error.
func requireSim(t *testing.T, seed int64, workers int) *FleetSimResult {
	t.Helper()
	res, err := RunFleetSim(seed, workers)
	if err != nil {
		t.Fatalf("RunFleetSim(%d, %d): %v", seed, workers, err)
	}
	return res
}

// TestFleetSimScenario pins the scenario's observable contract for one
// (seed, workers): the journal event skeleton, the per-app SLO arithmetic,
// the stored-trace count, and the per-app labeled request metrics.
func TestFleetSimScenario(t *testing.T) {
	res := requireSim(t, 3, 2)

	// Journal: exact (type, app) sequence, strictly increasing seq from 1,
	// and fake-clock timestamps (never wall time).
	skeleton := FleetSimEventSkeleton(res.AppA, res.AppB)
	if len(res.Events) != len(skeleton) {
		t.Fatalf("journal has %d events, want %d:\n%+v", len(res.Events), len(skeleton), res.Events)
	}
	simStart := time.Unix(fleetSimEpoch, 0).UnixNano()
	for i, ev := range res.Events {
		if got := [2]string{string(ev.Type), ev.App}; got != skeleton[i] {
			t.Errorf("event %d = %v, want %v", i, got, skeleton[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Version != "v1" {
			t.Errorf("event %d version = %q, want v1", i, ev.Version)
		}
		if ev.UnixNs < simStart || ev.UnixNs > simStart+int64(10*time.Second) {
			t.Errorf("event %d unix_ns = %d, outside the fake-clock range", i, ev.UnixNs)
		}
	}

	// SLO digest: the exact window counts and error-budget arithmetic the
	// scenario's request outcomes imply.
	if err := obs.ValidateFleetDigestJSON(res.DigestJSON); err != nil {
		t.Fatalf("digest JSON invalid: %v", err)
	}
	bySLOApp := map[string]obs.AppSLO{}
	for _, a := range res.Digest.Apps {
		bySLOApp[a.App] = a
	}
	wantSLO := map[string]obs.AppSLO{
		res.AppA:           {Requests: 16, Errors: 0, Shed: 3, ErrorBudget: 2, BudgetSpent: 0, BudgetRemaining: 2, BudgetRatio: 1, AvailabilityMet: true},
		res.AppB:           {Requests: 10, Errors: 1, Shed: 0, ErrorBudget: 1, BudgetSpent: 1, BudgetRemaining: 0, BudgetRatio: 0, AvailabilityMet: true},
		fleetSimCorruptApp: {Requests: 3, Errors: 3, Shed: 0, ErrorBudget: 0, BudgetSpent: 3, BudgetRemaining: -3, BudgetRatio: 0, AvailabilityMet: false},
		fleetSimFlakyApp:   {Requests: 3, Errors: 1, Shed: 0, ErrorBudget: 0, BudgetSpent: 1, BudgetRemaining: -1, BudgetRatio: 0, AvailabilityMet: false},
		fleetSimCloneApp:   {Requests: 1, Errors: 0, Shed: 0, ErrorBudget: 0, BudgetSpent: 0, BudgetRemaining: 0, BudgetRatio: 1, AvailabilityMet: true},
	}
	if len(bySLOApp) != len(wantSLO) {
		t.Fatalf("digest covers %d apps, want %d: %+v", len(bySLOApp), len(wantSLO), res.Digest.Apps)
	}
	for app, want := range wantSLO {
		got, ok := bySLOApp[app]
		if !ok {
			t.Errorf("digest missing app %q", app)
			continue
		}
		if got.Requests != want.Requests || got.Errors != want.Errors || got.Shed != want.Shed {
			t.Errorf("%s counts = %d req/%d err/%d shed, want %d/%d/%d",
				app, got.Requests, got.Errors, got.Shed, want.Requests, want.Errors, want.Shed)
		}
		if got.ErrorBudget != want.ErrorBudget || got.BudgetSpent != want.BudgetSpent ||
			got.BudgetRemaining != want.BudgetRemaining || got.BudgetRatio != want.BudgetRatio {
			t.Errorf("%s budget = %d/%d/%d ratio %g, want %d/%d/%d ratio %g",
				app, got.ErrorBudget, got.BudgetSpent, got.BudgetRemaining, got.BudgetRatio,
				want.ErrorBudget, want.BudgetSpent, want.BudgetRemaining, want.BudgetRatio)
		}
		if got.AvailabilityMet != want.AvailabilityMet {
			t.Errorf("%s availability_met = %v, want %v", app, got.AvailabilityMet, want.AvailabilityMet)
		}
		if got.Slow != 0 || !got.LatencyMet {
			t.Errorf("%s slow = %d latency_met = %v, want 0/true under the unreachable objective", app, got.Slow, got.LatencyMet)
		}
	}

	// Every successful single-review localize was sampled (every=1) and its
	// explain trace retained: 13 (A) + 9 (B) + 2 (flaky) + 1 (clone).
	if res.TracesStored != 25 {
		t.Errorf("TracesStored = %d, want 25", res.TracesStored)
	}

	// Per-app labeled request metrics, exact.
	wantMetrics := map[string]float64{
		fmt.Sprintf(`serve_requests_total{app=%q,code="200",route="/v1/localize"}`, res.AppA):           13,
		fmt.Sprintf(`serve_requests_total{app=%q,code="429",route="/v1/localize"}`, res.AppA):           3,
		fmt.Sprintf(`serve_requests_total{app=%q,code="200",route="/v1/localize"}`, res.AppB):           9,
		fmt.Sprintf(`serve_requests_total{app=%q,code="500",route="/v1/localize"}`, res.AppB):           1,
		fmt.Sprintf(`serve_requests_total{app=%q,code="503",route="/v1/localize"}`, fleetSimCorruptApp): 3,
		fmt.Sprintf(`serve_requests_total{app=%q,code="503",route="/v1/localize"}`, fleetSimFlakyApp):   1,
		fmt.Sprintf(`serve_requests_total{app=%q,code="200",route="/v1/localize"}`, fleetSimFlakyApp):   2,
		fmt.Sprintf(`serve_requests_total{app=%q,code="200",route="/v1/localize"}`, fleetSimCloneApp):   1,
		fmt.Sprintf(`serve_shed_total{app=%q}`, res.AppA):                                               3,
		fmt.Sprintf(`registry_events_total{app=%q,type="load_failure"}`, fleetSimCorruptApp):            2,
		fmt.Sprintf(`registry_events_total{app=%q,type="load"}`, res.AppB):                              2,
		fmt.Sprintf(`registry_events_total{app=%q,type="evict"}`, res.AppA):                             1,
	}
	for key, want := range wantMetrics {
		if got := res.Metrics[key]; got != want {
			t.Errorf("metric %s = %g, want %g", key, got, want)
		}
	}
	// The per-app labeled pipeline counters flowed through WithAppLabel into
	// the shared registry, and registry byte-budget gauges are exposed.
	if got := res.Metrics[fmt.Sprintf(`reviews_total{app=%q}`, res.AppA)]; got <= 0 {
		t.Errorf("reviews_total{app=A} = %g, want > 0", got)
	}
	if got := res.Metrics["serve_registry_budget_bytes"]; got <= 0 {
		t.Errorf("serve_registry_budget_bytes = %g, want > 0", got)
	}
	if got := res.Metrics["serve_registry_quant_bytes"]; got < 0 {
		t.Errorf("serve_registry_quant_bytes = %g, want >= 0", got)
	}
}

// TestFleetSimDeterministic is the fleet-observability determinism
// contract: for each seed, the digest bytes, the journal, the stored-trace
// count, and the deterministic metric subset are identical across traffic
// worker counts (and hence across runs — workers=1 twice would be a strict
// subset of this).
func TestFleetSimDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 5, 7, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := requireSim(t, seed, 1)
			for _, workers := range []int{2, 4} {
				got := requireSim(t, seed, workers)
				if !bytes.Equal(got.DigestJSON, base.DigestJSON) {
					t.Errorf("workers=%d digest differs from workers=1:\n%s\nvs\n%s", workers, got.DigestJSON, base.DigestJSON)
				}
				if !reflect.DeepEqual(got.Events, base.Events) {
					t.Errorf("workers=%d journal differs from workers=1:\n%+v\nvs\n%+v", workers, got.Events, base.Events)
				}
				if got.TracesStored != base.TracesStored {
					t.Errorf("workers=%d stored %d traces, workers=1 stored %d", workers, got.TracesStored, base.TracesStored)
				}
				gm, bm := got.DeterministicMetrics(), base.DeterministicMetrics()
				if !reflect.DeepEqual(gm, bm) {
					for k, v := range bm {
						if gm[k] != v {
							t.Errorf("workers=%d metric %s = %g, workers=1 has %g", workers, k, gm[k], v)
						}
					}
					for k := range gm {
						if _, ok := bm[k]; !ok {
							t.Errorf("workers=%d extra metric %s", workers, k)
						}
					}
				}
			}
		})
	}
}

// TestFleetObsEndpoints exercises the three observability endpoints over
// HTTP: deterministic X-Trace-Id minting, the sampled-trace artifact, the
// lifecycle journal, and the fleet digest.
func TestFleetObsEndpoints(t *testing.T) {
	data, _ := synth.GenerateSamplePair(1)
	img, err := core.EncodeSnapshot(core.NewSnapshot(), data.App)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fleetClock{t: time.Unix(fleetSimEpoch, 0)}
	d := NewDaemon(Config{
		Metrics:          obs.NewRegistry(),
		TraceSampleEvery: 1,
		TraceSeed:        7,
		JournalCapacity:  16,
		SLO:              &obs.SLOConfig{Availability: 0.99},
		Clock:            clk.Now,
	})
	defer d.Close()
	app := data.Info.Package
	d.Registry().RegisterBytes(app, "v1", img)

	do := func(method, path string, body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		d.Handler().ServeHTTP(w, req)
		return w
	}

	rv := data.Reviews[0]
	body, _ := json.Marshal(LocalizeRequest{App: app, Review: rv.Text, PublishedAt: rv.PublishedAt.Format(time.RFC3339)})
	w := do("POST", "/v1/localize", body)
	if w.Code != 200 {
		t.Fatalf("localize = %d: %s", w.Code, w.Body)
	}
	traceID := w.Header().Get("X-Trace-Id")
	if want := obs.NewTraceSource(7, 1).Next().ID; traceID != want {
		t.Fatalf("X-Trace-Id = %q, want the deterministic first ID %q", traceID, want)
	}

	// The sampled request's explain trace is served back by ID.
	w = do("GET", "/v1/trace/"+traceID, nil)
	if w.Code != 200 {
		t.Fatalf("trace fetch = %d: %s", w.Code, w.Body)
	}
	if err := obs.ValidateTraceJSON(w.Body.Bytes()); err != nil {
		t.Fatalf("served trace invalid: %v", err)
	}
	var tr obs.ReviewTrace
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil || tr.Review != rv.Text {
		t.Fatalf("served trace review = %q (err %v), want the request's review", tr.Review, err)
	}

	// Unknown trace IDs are typed 404s.
	w = do("GET", "/v1/trace/deadbeef", nil)
	if w.Code != 404 {
		t.Fatalf("unknown trace = %d, want 404", w.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Kind != "unknown_trace" {
		t.Fatalf("unknown trace kind = %q (err %v), want unknown_trace", eb.Error.Kind, err)
	}

	// The journal recorded the register and the lazy load, in order, with
	// fake-clock timestamps.
	w = do("GET", "/v1/events", nil)
	if w.Code != 200 {
		t.Fatalf("events = %d: %s", w.Code, w.Body)
	}
	var ev EventsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ev); err != nil {
		t.Fatalf("events decode: %v", err)
	}
	if ev.Total != 2 || len(ev.Events) != 2 ||
		ev.Events[0].Type != obs.EventRegister || ev.Events[1].Type != obs.EventLoad {
		t.Fatalf("events = %+v, want [register, load] with total 2", ev)
	}
	if ev.Events[1].UnixNs != time.Unix(fleetSimEpoch, 0).UnixNano() {
		t.Errorf("load event unix_ns = %d, want the injected clock's instant", ev.Events[1].UnixNs)
	}

	// The fleet digest validates and covers the served app.
	w = do("GET", "/v1/fleetstat", nil)
	if w.Code != 200 {
		t.Fatalf("fleetstat = %d: %s", w.Code, w.Body)
	}
	if err := obs.ValidateFleetDigestJSON(w.Body.Bytes()); err != nil {
		t.Fatalf("fleetstat invalid: %v", err)
	}
	var fd obs.FleetDigest
	if err := json.Unmarshal(w.Body.Bytes(), &fd); err != nil {
		t.Fatal(err)
	}
	if len(fd.Apps) != 1 || fd.Apps[0].App != app || fd.Apps[0].Requests != 1 {
		t.Fatalf("fleetstat apps = %+v, want one row for %s with 1 request", fd.Apps, app)
	}

	// /metrics carries the labeled request counter next to the aggregates.
	w = do("GET", "/metrics", nil)
	wantLine := fmt.Sprintf(`serve_requests_total{app=%q,code="200",route="/v1/localize"}`, app)
	if !strings.Contains(w.Body.String(), wantLine) {
		t.Errorf("/metrics missing %s:\n%s", wantLine, w.Body)
	}
}
