package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve/faultinject"
	"reviewsolver/internal/synth"
)

// This file is the deterministic fleet-observability scenario shared by the
// fleetobs tests, cmd/benchgate -fleetobs, and `reviewd -fleetstat`: a
// daemon with the whole observability layer on (labeled metrics, tracing,
// journal, SLO) driven through every lifecycle transition — warm loads,
// concurrent traffic, an injected panic, a corrupt snapshot quarantining
// and re-probing, a transient load fault recovering, a hot swap,
// byte-budget eviction, and admission shedding — under an injectable
// clock, so the fleet digest and the journal event sequence are
// byte-identical across runs and worker counts.

// Fleet sim scenario constants.
const (
	fleetSimEpoch        = 1700000000 // fake-clock start (unix seconds)
	fleetSimReviews      = 6          // traffic-phase single-review requests per app
	fleetSimQueueDepth   = 4
	fleetSimShedProbes   = 3
	fleetSimAvailability = 0.9
	// fleetSimLatencyNs is an unreachable latency objective: latency enters
	// the digest only through slow counts, so pinning them to zero keeps the
	// digest a pure function of request outcomes.
	fleetSimLatencyNs = int64(1) << 50
)

// Synthetic registry entries layered on top of the two generated corpora:
// corrupt serves a truncated image (permanent quarantine), flaky fails its
// first load through fault injection and recovers on re-probe, clone loads
// a second copy of corpus A to overflow the byte budget.
const (
	fleetSimCorruptApp = "corrupt.fleet.app"
	fleetSimFlakyApp   = "flaky.fleet.app"
	fleetSimCloneApp   = "clone.fleet.app"
)

var errFleetSimFlaky = errors.New("fleetsim: injected transient load fault")

// FleetSimResult is everything the scenario produced.
type FleetSimResult struct {
	// Digest is the final fleet SLO digest; DigestJSON its byte-stable
	// encoding (the same bytes /v1/fleetstat would serve).
	Digest     *obs.FleetDigest
	DigestJSON []byte
	// Events is the full journal window (the scenario stays far under the
	// ring capacity, so nothing was dropped).
	Events []obs.Event
	// Metrics is the final registry snapshot (obs.Registry.Snapshot keys).
	Metrics map[string]float64
	// TracesStored is how many sampled explain traces the store retained.
	TracesStored int
	// AppA and AppB are the two generated corpora's package names.
	AppA, AppB string
}

// DeterministicMetrics filters the snapshot down to the keys that are a
// pure function of the scenario: latency histograms keep only their request
// counts, float sums (CAS-order dependent in the last bits) are dropped,
// and so is the NLP front-end cache/interner telemetry (concurrent misses
// on a shared cache can double-compute). Both the fleetobs gate and the
// worker-count invariance test compare exactly this subset.
func (r *FleetSimResult) DeterministicMetrics() map[string]float64 {
	out := make(map[string]float64, len(r.Metrics))
	for k, v := range r.Metrics {
		if fleetObsDeterministicKey(k) {
			out[k] = v
		}
	}
	return out
}

// fleetObsDeterministicKey reports whether a snapshot key is deterministic
// for a fixed fleet-sim scenario regardless of worker count.
func fleetObsDeterministicKey(key string) bool {
	if strings.HasSuffix(key, "|sum") {
		return false
	}
	base := key
	if i := strings.IndexAny(base, "{|"); i >= 0 {
		base = base[:i]
	}
	if strings.HasSuffix(base, "_ns") && !strings.HasSuffix(key, "|count") {
		return false
	}
	switch base {
	case "analysis_cache_hits_total", "analysis_cache_misses_total",
		"phrase_cache_hits_total", "phrase_cache_misses_total",
		"interner_size", "analysis_cache_size", "spell_memo_size":
		return false
	}
	return true
}

// fleetClock is the scenario's injectable clock.
type fleetClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fleetClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fleetClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// RunFleetSim drives the scenario with the given traffic concurrency
// (workers in [1, fleetSimQueueDepth]: the admission bound is sized so
// concurrent traffic never sheds) and returns the collected artifacts.
// Everything in the result is a pure function of (seed), not of workers or
// scheduling — that invariance is what the fleetobs tests and gate hold.
func RunFleetSim(seed int64, workers int) (*FleetSimResult, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > fleetSimQueueDepth {
		return nil, fmt.Errorf("fleetsim: %d workers would overflow the admission queue (max %d)", workers, fleetSimQueueDepth)
	}

	dataA, dataB := synth.GenerateSamplePair(seed)
	imgA, err := core.EncodeSnapshot(core.NewSnapshot(), dataA.App)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: encode A: %w", err)
	}
	imgB, err := core.EncodeSnapshot(core.NewSnapshot(), dataB.App)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: encode B: %w", err)
	}
	corrupt := append([]byte(nil), imgA...)
	corrupt[len(corrupt)-1] ^= 0xFF

	// Mirror the registry's own cost accounting (image bytes + quant tiers)
	// so the byte budget lands exactly one eviction per budget overflow.
	sizeOf := func(img []byte) (int64, error) {
		snap, _, err := core.LoadSnapshotBytes(img)
		if err != nil {
			return 0, err
		}
		return int64(len(img)) + snap.QuantBytes(), nil
	}
	sizeA, err := sizeOf(imgA)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: size A: %w", err)
	}
	sizeB, err := sizeOf(imgB)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: size B: %w", err)
	}

	clk := &fleetClock{t: time.Unix(fleetSimEpoch, 0)}
	met := obs.NewRegistry()
	inj := faultinject.New()
	d := NewDaemon(Config{
		QueueDepth:     fleetSimQueueDepth,
		MaxConcurrent:  1,
		RequestTimeout: 60 * time.Second,
		// Fits A, B, and the flaky clone (A-sized) but is one byte short of
		// a fourth A-sized resident — each A-sized load past that point must
		// evict exactly one idle entry.
		MaxBytes:    3*sizeA + sizeB - 1,
		PoolWorkers: workers,
		LoadOptions: []core.Option{core.WithObserver(obs.NewRecorder(met, nil))},
		Injector:    inj,
		Metrics:     met,

		TraceSampleEvery: 1,
		TraceSeed:        seed,
		JournalCapacity:  256,
		SLO: &obs.SLOConfig{
			Window:             time.Minute,
			Buckets:            60,
			Availability:       fleetSimAvailability,
			LatencyObjectiveNs: fleetSimLatencyNs,
		},
		Clock: clk.Now,
	})
	defer d.Close()

	appA, appB := dataA.Info.Package, dataB.Info.Package
	d.Registry().RegisterBytes(appA, "v1", imgA)
	d.Registry().RegisterBytes(appB, "v1", imgB)

	localize := func(app, review, publishedAt string) (int, []byte) {
		body, _ := json.Marshal(LocalizeRequest{App: app, Review: review, PublishedAt: publishedAt})
		req := httptest.NewRequest("POST", "/v1/localize", bytes.NewReader(body))
		w := httptest.NewRecorder()
		d.Handler().ServeHTTP(w, req)
		return w.Code, w.Body.Bytes()
	}
	expect := func(phase, app, review, at string, want int) error {
		if status, body := localize(app, review, at); status != want {
			return fmt.Errorf("fleetsim: %s: %s answered %d, want %d: %s", phase, app, status, want, body)
		}
		return nil
	}
	reviewOf := func(data *synth.AppData, i int) (string, string) {
		rv := data.Reviews[i%len(data.Reviews)]
		return rv.Text, rv.PublishedAt.Format(time.RFC3339)
	}
	rvA, atA := reviewOf(dataA, 0)
	rvB, atB := reviewOf(dataB, 0)

	// Phase 1 — warm loads. Journal so far: register A, register B; these
	// two requests add load A, load B.
	if err := expect("warm", appA, rvA, atA, http.StatusOK); err != nil {
		return nil, err
	}
	if err := expect("warm", appB, rvB, atB, http.StatusOK); err != nil {
		return nil, err
	}

	// Phase 2 — concurrent traffic: a fixed request list drained by
	// `workers` goroutines. Every outcome is 200 (MaxConcurrent 1 +
	// QueueDepth 4 admits up to 5 concurrent requests per app), so the
	// digest cannot see the interleaving.
	type trafficReq struct{ app, review, at string }
	var reqs []trafficReq
	for i := 0; i < fleetSimReviews; i++ {
		r, at := reviewOf(dataA, i)
		reqs = append(reqs, trafficReq{appA, r, at})
		r, at = reviewOf(dataB, i)
		reqs = append(reqs, trafficReq{appB, r, at})
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workerErrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := expect("traffic", reqs[i].app, reqs[i].review, reqs[i].at, http.StatusOK); err != nil {
					workerErrs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 3 — injected panic on one appB request, contained as a 500:
	// one unit of appB's error budget.
	inj.Arm(faultinject.PointRequest, faultinject.Fault{Err: faultinject.ErrPanic, Count: 1, Key: appB})
	if err := expect("panic", appB, rvB, atB, http.StatusInternalServerError); err != nil {
		return nil, err
	}

	// Phase 4 — corrupt snapshot: the first probe fails the load and
	// quarantines (load_failure + quarantine_enter), a request inside the
	// backoff is rejected without touching the image (no journal event),
	// and the post-backoff probe fails again (re_probe + load_failure +
	// quarantine_enter).
	d.Registry().RegisterBytes(fleetSimCorruptApp, "v1", corrupt)
	if err := expect("corrupt probe", fleetSimCorruptApp, rvA, atA, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	if err := expect("corrupt backoff reject", fleetSimCorruptApp, rvA, atA, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	clk.Advance(2 * time.Second)
	if err := expect("corrupt re-probe", fleetSimCorruptApp, rvA, atA, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}

	// Phase 5 — flaky snapshot: a valid image whose first load fails
	// through an injected fault, then recovers on the post-backoff probe
	// (re_probe + quarantine_exit + load).
	d.Registry().RegisterBytes(fleetSimFlakyApp, "v1", imgA)
	inj.Arm(faultinject.PointSnapshotLoad, faultinject.Fault{Err: errFleetSimFlaky, Count: 1, Key: fleetSimFlakyApp + "@v1"})
	if err := expect("flaky probe", fleetSimFlakyApp, rvA, atA, http.StatusServiceUnavailable); err != nil {
		return nil, err
	}
	clk.Advance(2 * time.Second)
	if err := expect("flaky recovery", fleetSimFlakyApp, rvA, atA, http.StatusOK); err != nil {
		return nil, err
	}

	// Phase 6 — sequential touches pin the LRU order (front to back:
	// B, flaky, A) so the evictions below are deterministic.
	if err := expect("touch", appA, rvA, atA, http.StatusOK); err != nil {
		return nil, err
	}
	if err := expect("touch", fleetSimFlakyApp, rvA, atA, http.StatusOK); err != nil {
		return nil, err
	}
	if err := expect("touch", appB, rvB, atB, http.StatusOK); err != nil {
		return nil, err
	}

	// Phase 7 — hot swap: re-registering appB@v1 retires the idle resident
	// entry (retire_freed + hot_swap) and the next request reloads it.
	d.Registry().RegisterBytes(appB, "v1", imgB)
	if err := expect("post-swap", appB, rvB, atB, http.StatusOK); err != nil {
		return nil, err
	}

	// Phase 8 — budget eviction: loading a second copy of corpus A pushes
	// the resident total one byte past the budget, evicting the LRU tail
	// (appA): register + evict + load.
	d.Registry().RegisterBytes(fleetSimCloneApp, "v1", imgA)
	if err := expect("clone", fleetSimCloneApp, rvA, atA, http.StatusOK); err != nil {
		return nil, err
	}

	// Phase 9 — admission shedding: one appA request blocks on an injected
	// gate while holding the single execution slot (its reload also evicts
	// the flaky entry), four more fill the waiting line, and three probes
	// shed with 429.
	gate := make(chan struct{})
	inj.Arm(faultinject.PointRequest, faultinject.Fault{Block: gate, Count: 1, Key: appA})
	shedErrs := make([]error, 1+fleetSimQueueDepth)
	var shedWG sync.WaitGroup
	shedWG.Add(1)
	go func() {
		defer shedWG.Done()
		shedErrs[0] = expect("blocked", appA, rvA, atA, http.StatusOK)
	}()
	if err := pollMetric(met, metricInflight, 1); err != nil {
		return nil, err
	}
	for i := 1; i <= fleetSimQueueDepth; i++ {
		shedWG.Add(1)
		go func(i int) {
			defer shedWG.Done()
			shedErrs[i] = expect("queued", appA, rvA, atA, http.StatusOK)
		}(i)
	}
	if err := pollMetric(met, metricQueueDepth, fleetSimQueueDepth); err != nil {
		return nil, err
	}
	for i := 0; i < fleetSimShedProbes; i++ {
		if err := expect("shed", appA, rvA, atA, http.StatusTooManyRequests); err != nil {
			return nil, err
		}
	}
	close(gate)
	shedWG.Wait()
	for _, err := range shedErrs {
		if err != nil {
			return nil, err
		}
	}

	digest := d.FleetDigest()
	digestJSON, err := digest.JSON()
	if err != nil {
		return nil, fmt.Errorf("fleetsim: encode digest: %w", err)
	}
	return &FleetSimResult{
		Digest:       digest,
		DigestJSON:   digestJSON,
		Events:       d.Journal().Events(),
		Metrics:      met.Snapshot(),
		TracesStored: d.TraceStore().Len(),
		AppA:         appA,
		AppB:         appB,
	}, nil
}

// pollMetric waits (real time) until a gauge reaches want — used only to
// sequence the shed phase's concurrency setup; request outcomes never
// depend on it.
func pollMetric(met *obs.Registry, name string, want float64) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if met.Snapshot()[name] == want {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("fleetsim: %s never reached %g (now %g)", name, want, met.Snapshot()[name])
}

// FleetSimEventSkeleton is the (type, app) sequence the scenario's journal
// must contain, in order — the registry lifecycle contract the fleetobs
// tests and gate assert. Apps A and B are substituted from the result.
func FleetSimEventSkeleton(appA, appB string) [][2]string {
	return [][2]string{
		{string(obs.EventRegister), appA},
		{string(obs.EventRegister), appB},
		{string(obs.EventLoad), appA},
		{string(obs.EventLoad), appB},
		{string(obs.EventRegister), fleetSimCorruptApp},
		{string(obs.EventLoadFailure), fleetSimCorruptApp},
		{string(obs.EventQuarantineEnter), fleetSimCorruptApp},
		{string(obs.EventReprobe), fleetSimCorruptApp},
		{string(obs.EventLoadFailure), fleetSimCorruptApp},
		{string(obs.EventQuarantineEnter), fleetSimCorruptApp},
		{string(obs.EventRegister), fleetSimFlakyApp},
		{string(obs.EventLoadFailure), fleetSimFlakyApp},
		{string(obs.EventQuarantineEnter), fleetSimFlakyApp},
		{string(obs.EventReprobe), fleetSimFlakyApp},
		{string(obs.EventQuarantineExit), fleetSimFlakyApp},
		{string(obs.EventLoad), fleetSimFlakyApp},
		{string(obs.EventRetireFreed), appB},
		{string(obs.EventHotSwap), appB},
		{string(obs.EventLoad), appB},
		{string(obs.EventRegister), fleetSimCloneApp},
		{string(obs.EventEvict), appA},
		{string(obs.EventLoad), fleetSimCloneApp},
		{string(obs.EventEvict), fleetSimFlakyApp},
		{string(obs.EventLoad), appA},
	}
}
