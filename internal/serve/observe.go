package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"reviewsolver/internal/obs"
)

// This file is the daemon's fleet-observability surface: per-app labeled
// request metrics, request-scoped trace propagation with the sampled-trace
// endpoint, the registry event journal endpoint, and the SLO/error-budget
// digest. Everything here is default-off (zero Config) and nil-safe, so a
// daemon without the layer configured serves exactly as before.

// Labeled metric names. The children live next to the plain aggregates in
// the same registry ("serve_requests_total" and
// "serve_requests_total{app=…,code=…,route=…}" coexist).
const (
	// metricRequestLatency is the per-app request latency histogram vector.
	metricRequestLatency = "serve_request_ns"
)

// reqInfo is the per-request mutable record the endpoint middleware shares
// with its handler: the handler fills in the app (once it has parsed the
// body), the middleware reads it back for labeling and SLO accounting.
type reqInfo struct {
	app  string
	span *obs.Span // root serving span; nil when tracing is off
}

type reqInfoKey struct{}

// requestInfo extracts the per-request record ctx carries, if any.
func requestInfo(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// noteApp records the request's app identity for labeled metrics and SLO
// accounting (no-op outside the endpoint middleware).
func noteApp(ctx context.Context, app string) {
	if ri := requestInfo(ctx); ri != nil {
		ri.app = app
	}
}

// requestSpan returns the request's root serving span (nil when tracing is
// off); handlers derive stage children from it.
func requestSpan(ctx context.Context) *obs.Span {
	if ri := requestInfo(ctx); ri != nil {
		return ri.span
	}
	return nil
}

// statusWriter captures the response status for labeling. A handler that
// writes a body without WriteHeader implicitly answered 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// noteRequest folds one finished request into the labeled request counter,
// the per-app latency histogram, and the SLO tracker. App-less requests
// (classify, apps listing) label as "-" and skip SLO accounting.
func (d *Daemon) noteRequest(app, route string, status int, elapsed time.Duration) {
	if d.met != nil {
		la := app
		if la == "" {
			la = "-"
		}
		// Values in sorted label-name order: app, code, route.
		d.met.CounterVec(metricRequests, "app", "code", "route").
			With(la, strconv.Itoa(status), route).Add(1)
		if app != "" {
			d.met.HistogramVec(metricRequestLatency, obs.LatencyBucketsNs, "app").
				With(app).Observe(float64(elapsed.Nanoseconds()))
		}
	}
	if app != "" {
		d.slo.Observe(app, status >= 500, status == http.StatusTooManyRequests, elapsed.Nanoseconds())
	}
}

// --- observability endpoints -------------------------------------------------

// EventsResponse is the GET /v1/events body: the retained journal window
// (oldest first) plus lifetime totals that survive ring turnover.
type EventsResponse struct {
	Events  []obs.Event `json:"events"`
	Total   uint64      `json:"total"`
	Dropped uint64      `json:"dropped"`
}

// handleTrace serves the retained explain-trace artifact of a sampled
// request — the same ReviewTrace schema `reviewsolver -explain` writes.
func (d *Daemon) handleTrace(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	data, ok := d.traces.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTrace, id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, err := w.Write(data)
	return err
}

// handleEvents serves the registry lifecycle journal.
func (d *Daemon) handleEvents(w http.ResponseWriter, _ *http.Request) error {
	events := d.journal.Events()
	if events == nil {
		events = []obs.Event{}
	}
	total, _, _, dropped := d.journal.Stats()
	return writeJSON(w, http.StatusOK, EventsResponse{Events: events, Total: total, Dropped: dropped})
}

// handleFleetstat serves the deterministic fleet SLO digest.
func (d *Daemon) handleFleetstat(w http.ResponseWriter, _ *http.Request) error {
	data, err := d.slo.Digest().JSON()
	if err != nil {
		return fmt.Errorf("%w: encode fleet digest: %v", ErrInternal, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, werr := w.Write(data)
	return werr
}

// FleetDigest evaluates the daemon's SLO tracker now — the same artifact
// /v1/fleetstat serves (an empty digest when the tracker is off). Used by
// `reviewd -fleetstat` and the fleetobs harnesses.
func (d *Daemon) FleetDigest() *obs.FleetDigest { return d.slo.Digest() }

// Journal exposes the daemon's registry event journal (nil when off).
func (d *Daemon) Journal() *obs.Journal { return d.journal }

// TraceStore exposes the daemon's sampled-trace store (nil when off).
func (d *Daemon) TraceStore() *obs.TraceStore { return d.traces }
