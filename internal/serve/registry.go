// Package serve is reviewd's serving layer: a snapshot registry holding
// many apps' precomputed .snap images resident at once, and the HTTP
// daemon (server.go) that localizes reviews against them with admission
// control, per-request deadlines, panic recovery, and graceful shutdown.
//
// The registry's robustness contract: one corrupt snapshot never takes
// down the fleet (it is quarantined with re-probe backoff), memory stays
// under a byte budget (LRU eviction of idle snapshots), a re-registered
// app hot-swaps without dropping in-flight requests (the old snapshot
// serves until its last lease drains, then releases), and every failure
// surfaces as a typed error from errors.go.
package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve/faultinject"
	"reviewsolver/internal/snapfile"
)

// errNoDeltaBase: a delta image was registered but no resident live entry
// of the same app serves the exact base image it was compiled against. The
// entry quarantines (surfaced under ErrSnapshotLoad) and recovers via the
// standard re-probe once the base is resident.
var errNoDeltaBase = errors.New("serve: delta snapshot base not resident")

// Quarantine re-probe backoff: after the first failed load the entry is
// probed again no sooner than quarantineBase later; each consecutive
// failure doubles the wait, capped at quarantineMax.
const (
	quarantineBase = time.Second
	quarantineMax  = 60 * time.Second
)

// Registry metric names (the server adds the per-endpoint ones).
const (
	metricRegistryApps     = "serve_registry_apps"
	metricRegistryResident = "serve_registry_resident"
	metricRegistryBytes    = "serve_registry_loaded_bytes"
	metricRegistryBudget   = "serve_registry_budget_bytes"
	metricRegistryQuant    = "serve_registry_quant_bytes"

	metricLoads         = "serve_snapshot_loads_total"
	metricDeltaLoads    = "serve_snapshot_delta_loads_total"
	metricLoadFailures  = "serve_snapshot_load_failures_total"
	metricLoadCanceled  = "serve_snapshot_load_canceled_total"
	metricEvictions     = "serve_evictions_total"
	metricHotSwaps      = "serve_hotswaps_total"
	metricQuarantined   = "serve_quarantined_total"
	metricQuarRejects   = "serve_quarantine_rejects_total"
	metricReprobes      = "serve_quarantine_reprobes_total"
	metricQuarRecovered = "serve_quarantine_recovered_total"
	metricRetiredFreed  = "serve_retired_released_total"
)

// entryState is the lifecycle of one registered snapshot.
type entryState int

const (
	stateCold entryState = iota // registered, not resident
	stateLoading
	stateLive
	stateQuarantined
)

func (s entryState) String() string {
	switch s {
	case stateCold:
		return "cold"
	case stateLoading:
		return "loading"
	case stateLive:
		return "live"
	case stateQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// entry is one registered app@version snapshot. All fields are guarded by
// the registry mutex except the immutable identity fields.
type entry struct {
	app, version string
	path         string // .snap file; empty when img is set
	img          []byte // in-memory image (tests, benchgate)

	state entryState
	done  chan struct{} // singleflight: closed when a load attempt settles

	snap   *core.Snapshot
	appIR  *apk.App
	solver *core.Solver
	pool   *core.Pool
	bytes  int64
	// imgCRC fingerprints the image the live snapshot was loaded from; a
	// later version registered as a delta image finds its base by matching
	// this against the delta's recorded base checksum.
	imgCRC uint32
	// quantBytes is the quantized-tier share of bytes, tracked separately
	// so /metrics can expose how much of the budget the tiers consume.
	quantBytes int64

	refs     int  // in-flight leases
	retired  bool // hot-swapped out; frees when refs drain
	lruElem  *list.Element
	loads    int64
	lastErr  string
	failures int       // consecutive load failures
	probeAt  time.Time // quarantine: earliest next probe
}

func (e *entry) key() string { return e.app + "@" + e.version }

// RegistryConfig configures a snapshot registry.
type RegistryConfig struct {
	// MaxBytes is the resident byte budget; past it, least-recently-used
	// idle snapshots unload. 0 means unlimited.
	MaxBytes int64
	// PoolWorkers sizes the per-snapshot batch pool (core.NewPool
	// convention: 0 = all CPUs).
	PoolWorkers int
	// LoadOptions apply to every snapshot load (classifier, observer).
	LoadOptions []core.Option
	// Injector is the fault-injection harness; nil injects nothing.
	Injector *faultinject.Injector
	// Metrics receives registry gauges and counters; nil disables them.
	Metrics *obs.Registry
	// Journal receives lifecycle events (load, evict, hot-swap, quarantine
	// transitions); nil disables the event journal.
	Journal *obs.Journal
	// Clock is the injectable time source for quarantine backoff and
	// journal timestamps; nil means time.Now.
	Clock func() time.Time
}

// Registry is the resident-snapshot table. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry // app@version → entry
	latest  map[string]string // app → most recently registered key
	lru     *list.List        // live entries, front = most recently used
	total   int64             // resident bytes

	budget      int64
	quantTotal  int64 // resident quantized-tier bytes (subset of total)
	poolWorkers int
	loadOpts    []core.Option
	inj         *faultinject.Injector
	met         *obs.Registry
	journal     *obs.Journal
	now         func() time.Time // injectable clock for backoff tests
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	r := &Registry{
		entries:     make(map[string]*entry),
		latest:      make(map[string]string),
		lru:         list.New(),
		budget:      cfg.MaxBytes,
		poolWorkers: cfg.PoolWorkers,
		loadOpts:    cfg.LoadOptions,
		inj:         cfg.Injector,
		met:         cfg.Metrics,
		journal:     cfg.Journal,
		now:         now,
	}
	r.met.Gauge(metricRegistryBudget).Set(cfg.MaxBytes)
	return r
}

// note appends one lifecycle event to the registry journal (no-op without
// one), stamping it from the registry clock.
func (r *Registry) note(typ obs.EventType, app, version, detail string) {
	if r.journal == nil {
		return
	}
	r.journal.Record(typ, app, version, detail, r.now().UnixNano())
}

// Register adds (or hot-swaps) a snapshot served from a .snap file. The
// image is not opened here — the first request loads it lazily, so a bad
// file quarantines instead of failing registration.
func (r *Registry) Register(app, version, path string) {
	r.register(&entry{app: app, version: version, path: path})
}

// RegisterBytes is Register for an in-memory image (tests, smoke harnesses).
func (r *Registry) RegisterBytes(app, version string, img []byte) {
	r.register(&entry{app: app, version: version, img: img})
}

func (r *Registry) register(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := e.key()
	if old := r.entries[key]; old != nil {
		r.retireLocked(old)
		r.met.Counter(metricHotSwaps).Add(1)
		r.note(obs.EventHotSwap, e.app, e.version, "")
	} else {
		r.note(obs.EventRegister, e.app, e.version, "")
	}
	r.entries[key] = e
	r.latest[e.app] = key
	r.met.Gauge(metricRegistryApps).Set(int64(len(r.entries)))
}

// retireLocked detaches a hot-swapped entry: new requests can no longer
// reach it, but current leases keep serving; its memory frees when the
// last lease releases (immediately if idle).
func (r *Registry) retireLocked(old *entry) {
	old.retired = true
	if old.lruElem != nil {
		r.lru.Remove(old.lruElem)
		old.lruElem = nil
	}
	if old.state == stateLive && old.refs == 0 {
		r.freeLocked(old)
	}
}

// freeLocked drops a resident snapshot's memory and accounting.
func (r *Registry) freeLocked(e *entry) {
	r.total -= e.bytes
	r.quantTotal -= e.quantBytes
	e.snap, e.appIR, e.solver, e.pool = nil, nil, nil, nil
	e.bytes, e.quantBytes, e.imgCRC = 0, 0, 0
	e.state = stateCold
	if e.retired {
		r.met.Counter(metricRetiredFreed).Add(1)
		r.note(obs.EventRetireFreed, e.app, e.version, "")
	}
	r.met.Gauge(metricRegistryBytes).Set(r.total)
	r.met.Gauge(metricRegistryQuant).Set(r.quantTotal)
	r.met.Gauge(metricRegistryResident).Set(int64(r.lru.Len()))
}

// Lease is one request's hold on a resident snapshot. Release it when the
// request finishes — hot-swap and eviction wait on lease drains.
type Lease struct {
	r *Registry
	e *entry

	// App is the snapshot's decoded app IR.
	App *apk.App
	// Solver serves single-review localization; safe for concurrent use.
	Solver *core.Solver
	// Pool serves batch localization through the cancellable corpus path.
	Pool *core.Pool
	// Version is the snapshot version actually served (resolves "latest").
	Version string
}

// Release returns the lease. Idempotence is the caller's job — release
// exactly once.
func (l *Lease) Release() {
	r, e := l.r, l.e
	r.mu.Lock()
	e.refs--
	if e.retired && e.refs == 0 && e.state == stateLive {
		r.freeLocked(e)
	}
	r.mu.Unlock()
}

// Acquire resolves app (+ optional version; empty means the most recently
// registered) to a resident snapshot, loading it on first use. Exactly one
// goroutine loads a given entry at a time (singleflight); concurrent
// requesters wait for that load or their own deadline, whichever first.
// Failure modes are the typed errors of errors.go.
func (r *Registry) Acquire(ctx context.Context, app, version string) (*Lease, error) {
	for {
		r.mu.Lock()
		key := app + "@" + version
		if version == "" {
			var ok bool
			if key, ok = r.latest[app]; !ok {
				r.mu.Unlock()
				return nil, fmt.Errorf("%w: %q", ErrUnknownApp, app)
			}
		}
		e := r.entries[key]
		if e == nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownApp, key)
		}

		switch e.state {
		case stateLive:
			e.refs++
			r.touchLocked(e)
			lease := &Lease{r: r, e: e, App: e.appIR, Solver: e.solver, Pool: e.pool, Version: e.version}
			r.mu.Unlock()
			return lease, nil

		case stateLoading:
			done := e.done
			r.mu.Unlock()
			select {
			case <-done:
				continue // re-examine the settled state
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: while waiting for snapshot load: %w", ErrDeadline, ctx.Err())
			}

		case stateQuarantined:
			if wait := e.probeAt.Sub(r.now()); wait > 0 {
				r.met.Counter(metricQuarRejects).Add(1)
				last := e.lastErr
				r.mu.Unlock()
				return nil, &RetryAfterError{
					Err:   fmt.Errorf("%w: %s (last error: %s)", ErrQuarantined, key, last),
					After: wait,
				}
			}
			// Backoff elapsed: this request probes the snapshot again.
			r.met.Counter(metricReprobes).Add(1)
			r.note(obs.EventReprobe, e.app, e.version, "")
		case stateCold:
		}

		e.state = stateLoading
		e.done = make(chan struct{})
		r.mu.Unlock()
		if err := r.load(ctx, e); err != nil {
			return nil, err
		}
		// Loaded (or the entry was retired mid-load) — loop to acquire
		// through the table again.
	}
}

// load performs one singleflight load attempt for e (which is in
// stateLoading with a fresh done channel). It settles the entry's state
// under the lock and closes done.
func (r *Registry) load(ctx context.Context, e *entry) error {
	key := e.key()
	var (
		snap *core.Snapshot
		app  *apk.App
		size int64
	)
	var (
		imgCRC    uint32
		deltaBase string // base version a delta image was patched against
	)
	err := r.inj.Fire(ctx, faultinject.PointSnapshotLoad, key)
	if err == nil {
		err = ctx.Err() // the client may have gone away during a slow load
	}
	if err == nil {
		img := e.img
		if img == nil {
			img, err = os.ReadFile(e.path)
		}
		if err == nil {
			// The entry's solvers carry its app identity so per-app labeled
			// pipeline counters land in the shared registry.
			opts := append(append([]core.Option(nil), r.loadOpts...), core.WithAppLabel(e.app))
			if di, isDelta := core.DeltaInfo(img); isDelta {
				// A delta image patches a resident base version in place of
				// re-shipping every embedding row. No matching base resident
				// → quarantine like any other failed load; the re-probe
				// succeeds once the base has been served (or re-registered).
				base, baseApp, baseVer, ok := r.findDeltaBase(e.app, di.BaseCRC)
				if !ok {
					err = fmt.Errorf("%w: no resident base with image crc %08x for app %q",
						errNoDeltaBase, di.BaseCRC, e.app)
				} else {
					snap, app, err = core.LoadSnapshotDeltaBytes(img, base, baseApp, di.BaseCRC, opts...)
					deltaBase = baseVer
				}
			} else {
				snap, app, err = core.LoadSnapshotBytes(img, opts...)
			}
			if err == nil {
				// An entry's cost is the retained image plus whatever the
				// quantized scan tiers allocated beyond it (lazily built
				// tiers for images without quant sections, decoded index
				// arrays for adopted ones) plus, for delta loads, the rows
				// materialized from the base — otherwise MaxBytes eviction
				// would run against an undercount.
				size = int64(len(img)) + snap.QuantBytes() + snap.MaterializedBytes()
				imgCRC = snapfile.Checksum(img)
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	defer close(e.done)

	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The requester abandoned the load; the snapshot itself is not
			// suspect. Back to cold so the next request retries cleanly.
			e.state = stateCold
			r.met.Counter(metricLoadCanceled).Add(1)
			return fmt.Errorf("%w: snapshot load abandoned: %w", ErrDeadline, err)
		}
		e.state = stateQuarantined
		e.failures++
		e.lastErr = err.Error()
		e.probeAt = r.now().Add(quarantineBackoff(e.failures))
		r.met.Counter(metricLoadFailures).Add(1)
		r.met.Counter(metricQuarantined).Add(1)
		r.note(obs.EventLoadFailure, e.app, e.version, err.Error())
		r.note(obs.EventQuarantineEnter, e.app, e.version, "")
		return fmt.Errorf("%w: %s: %w", ErrSnapshotLoad, key, err)
	}

	if e.retired {
		// Hot-swapped away while loading; nobody can lease it, so drop the
		// work on the floor and let the caller re-acquire the replacement.
		e.state = stateCold
		return nil
	}
	e.snap, e.appIR = snap, app
	e.solver = core.NewWithSnapshot(snap)
	e.pool = core.NewPoolWithSnapshot(r.poolWorkers, snap)
	e.bytes = size
	e.quantBytes = snap.QuantBytes()
	e.imgCRC = imgCRC
	e.loads++
	if e.failures > 0 {
		e.failures = 0
		r.met.Counter(metricQuarRecovered).Add(1)
		r.note(obs.EventQuarantineExit, e.app, e.version, "")
	}
	e.state = stateLive
	r.total += size
	r.quantTotal += e.quantBytes
	r.lruInsertLocked(e)
	r.evictLocked()
	r.met.Counter(metricLoads).Add(1)
	r.note(obs.EventLoad, e.app, e.version, "")
	if deltaBase != "" {
		r.met.Counter(metricDeltaLoads).Add(1)
		r.note(obs.EventDeltaLoad, e.app, e.version, "base "+deltaBase)
	}
	r.met.Gauge(metricRegistryBytes).Set(r.total)
	r.met.Gauge(metricRegistryQuant).Set(r.quantTotal)
	r.met.Gauge(metricRegistryResident).Set(int64(r.lru.Len()))
	return nil
}

// findDeltaBase locates a resident live snapshot of app whose source image
// checksum matches the one a delta was compiled against. The returned
// pointers stay valid even if the entry is evicted or retired afterwards —
// snapshots are immutable and the copies pin them — so the caller may patch
// against them outside the lock.
func (r *Registry) findDeltaBase(app string, baseCRC uint32) (*core.Snapshot, *apk.App, string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.app == app && e.state == stateLive && e.snap != nil && e.imgCRC == baseCRC {
			return e.snap, e.appIR, e.version, true
		}
	}
	return nil, nil, "", false
}

// quarantineBackoff doubles from quarantineBase per consecutive failure,
// capped at quarantineMax.
func quarantineBackoff(failures int) time.Duration {
	if failures < 1 {
		failures = 1
	}
	shift := failures - 1
	if shift > 30 {
		shift = 30
	}
	d := quarantineBase << shift
	if d > quarantineMax || d <= 0 {
		d = quarantineMax
	}
	return d
}

func (r *Registry) lruInsertLocked(e *entry) {
	e.lruElem = r.lru.PushFront(e)
}

func (r *Registry) touchLocked(e *entry) {
	if e.lruElem != nil {
		r.lru.MoveToFront(e.lruElem)
	}
}

// evictLocked unloads least-recently-used idle snapshots until the
// resident total fits the budget. Leased entries are skipped (their memory
// is pinned by in-flight requests), and the most recently used entry is
// never evicted — a snapshot larger than the whole budget would otherwise
// thrash load→evict→load forever.
func (r *Registry) evictLocked() {
	if r.budget <= 0 {
		return
	}
	el := r.lru.Back()
	for r.total > r.budget && el != nil && el != r.lru.Front() {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.refs == 0 && e.state == stateLive {
			r.lru.Remove(el)
			e.lruElem = nil
			r.freeLocked(e)
			r.met.Counter(metricEvictions).Add(1)
			r.note(obs.EventEvict, e.app, e.version, "")
		}
		el = prev
	}
}

// ResidentBytes reports the current resident total (for tests and /v1/apps).
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// AppStatus is one registry row, as exposed by /v1/apps.
type AppStatus struct {
	App      string `json:"app"`
	Version  string `json:"version"`
	State    string `json:"state"`
	Latest   bool   `json:"latest"`
	Bytes    int64  `json:"bytes"`
	Releases int    `json:"releases"`
	Loads    int64  `json:"loads"`
	Failures int    `json:"failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// Apps lists every registered snapshot, sorted by app then version.
func (r *Registry) Apps() []AppStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AppStatus, 0, len(r.entries))
	for key, e := range r.entries {
		st := AppStatus{
			App:      e.app,
			Version:  e.version,
			State:    e.state.String(),
			Latest:   r.latest[e.app] == key,
			Bytes:    e.bytes,
			Loads:    e.loads,
			Failures: e.failures,
			LastErr:  e.lastErr,
		}
		if e.appIR != nil {
			st.Releases = len(e.appIR.Releases)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// RetryAfterError decorates a typed serving error with a client backoff
// hint, surfaced as the Retry-After header.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped typed error to errors.Is.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfterHint extracts the backoff hint, if the error carries one.
func RetryAfterHint(err error) (time.Duration, bool) {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return ra.After, true
	}
	return 0, false
}
