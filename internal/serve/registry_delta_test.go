package serve

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/synth"
)

// deltaImages builds the version-bump pair: a full image of all but the
// last release, and a delta image of the whole app against it.
func deltaImages(t testing.TB) (data *synth.AppData, baseImg, deltaImg []byte) {
	t.Helper()
	data = synth.GenerateSample(4)
	app := data.App
	if len(app.Releases) < 2 {
		t.Skip("sample app has a single release")
	}
	baseApp := &apk.App{
		Package:  app.Package,
		Name:     app.Name,
		Releases: app.Releases[:len(app.Releases)-1],
	}
	baseImg, err := core.EncodeSnapshot(core.NewSnapshot(), baseApp)
	if err != nil {
		t.Fatalf("encode base: %v", err)
	}
	deltaImg, err = core.EncodeSnapshotDelta(core.NewSnapshot(), app, baseImg)
	if err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	return data, baseImg, deltaImg
}

// TestRegistryDeltaHotSwap: a version bump registered as a delta image
// loads against the resident previous version, serves output identical to
// the in-memory build, and journals a delta_load event naming its base.
func TestRegistryDeltaHotSwap(t *testing.T) {
	data, baseImg, deltaImg := deltaImages(t)
	app := data.App
	met := obs.NewRegistry()
	journal := obs.NewJournal(64, met)
	r := NewRegistry(RegistryConfig{Metrics: met, Journal: journal})
	r.RegisterBytes(app.Package, "v1", baseImg)
	r.RegisterBytes(app.Package, "v2", deltaImg)

	ctx := context.Background()
	// Make the base resident, then load the delta against it.
	l1, err := r.Acquire(ctx, app.Package, "v1")
	if err != nil {
		t.Fatal(err)
	}
	l1.Release()
	l2, err := r.Acquire(ctx, app.Package, "v2")
	if err != nil {
		t.Fatalf("delta acquire: %v", err)
	}
	defer l2.Release()

	want := core.New()
	for i, rv := range data.Reviews {
		if i >= 8 {
			break
		}
		exp := want.LocalizeReview(app, rv.Text, rv.PublishedAt)
		got := l2.Solver.LocalizeReview(l2.App, rv.Text, rv.PublishedAt)
		if !reflect.DeepEqual(got.Mappings, exp.Mappings) || !reflect.DeepEqual(got.Ranked, exp.Ranked) {
			t.Fatalf("review %d: delta-served localization differs from in-memory build", i)
		}
	}

	if got := met.Counter(metricDeltaLoads).Value(); got != 1 {
		t.Fatalf("delta_loads_total = %d, want 1", got)
	}
	found := false
	for _, ev := range journal.Events() {
		if ev.Type == obs.EventDeltaLoad {
			found = true
			if ev.Version != "v2" || ev.Detail != "base v1" {
				t.Fatalf("delta_load event = %+v, want v2 / base v1", ev)
			}
		}
	}
	if !found {
		t.Fatal("no delta_load journal event")
	}

	// The delta entry's byte accounting includes the materialized rows, so
	// it must exceed its (much smaller) image length.
	for _, st := range r.Apps() {
		if st.Version == "v2" && st.Bytes <= int64(len(deltaImg)) {
			t.Fatalf("delta entry accounts %d bytes for a %d-byte image — materialized rows missing", st.Bytes, len(deltaImg))
		}
	}
}

// TestRegistryDeltaWithoutBase: acquiring a delta-image entry whose base is
// not resident quarantines it (typed ErrSnapshotLoad), and the standard
// re-probe recovers it once the base becomes resident.
func TestRegistryDeltaWithoutBase(t *testing.T) {
	data, baseImg, deltaImg := deltaImages(t)
	app := data.App
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	met := obs.NewRegistry()
	r := NewRegistry(RegistryConfig{Metrics: met, Clock: clock})
	r.RegisterBytes(app.Package, "v1", baseImg)
	r.RegisterBytes(app.Package, "v2", deltaImg)

	ctx := context.Background()
	if _, err := r.Acquire(ctx, app.Package, "v2"); !errors.Is(err, ErrSnapshotLoad) {
		t.Fatalf("delta acquire without base = %v, want ErrSnapshotLoad", err)
	}
	if _, err := r.Acquire(ctx, app.Package, "v2"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second acquire = %v, want ErrQuarantined (backoff)", err)
	}

	l1, err := r.Acquire(ctx, app.Package, "v1")
	if err != nil {
		t.Fatal(err)
	}
	l1.Release()

	now = now.Add(time.Hour) // past any backoff: the next acquire re-probes
	l2, err := r.Acquire(ctx, app.Package, "v2")
	if err != nil {
		t.Fatalf("re-probe with resident base: %v", err)
	}
	l2.Release()
	if got := met.Counter(metricQuarRecovered).Value(); got != 1 {
		t.Fatalf("quarantine_recovered_total = %d, want 1", got)
	}
}
