package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve/faultinject"
	"reviewsolver/internal/snapfile"
	"reviewsolver/internal/synth"
)

// testImage compiles the sample app to a .snap image once and hands out
// copies; registry tests register the same bytes under different keys.
var (
	imgOnce sync.Once
	imgVal  []byte
	imgApp  *synth.AppData
)

func sampleImage(t testing.TB) (*synth.AppData, []byte) {
	t.Helper()
	imgOnce.Do(func() {
		imgApp = synth.GenerateSample(1)
		img, err := core.EncodeSnapshot(core.NewSnapshot(), imgApp.App)
		if err != nil {
			t.Fatalf("encode sample snapshot: %v", err)
		}
		imgVal = img
	})
	return imgApp, imgVal
}

// corruptImage returns the sample image with one payload byte flipped, so
// snapfile.Open fails its CRC check.
func corruptImage(t testing.TB) []byte {
	t.Helper()
	_, img := sampleImage(t)
	bad := append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := snapfile.Open(bad); !errors.Is(err, snapfile.ErrChecksum) {
		t.Fatalf("corrupt image opens with %v, want checksum error", err)
	}
	return bad
}

func localizeOnce(t *testing.T, l *Lease) {
	t.Helper()
	data, _ := sampleImage(t)
	rv := data.Reviews[0]
	res := l.Solver.LocalizeReview(l.App, rv.Text, rv.PublishedAt)
	if res == nil {
		t.Fatal("lease solver returned nil result")
	}
}

func TestAcquireUnknownApp(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	if _, err := r.Acquire(context.Background(), "ghost", ""); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("Acquire ghost = %v, want ErrUnknownApp", err)
	}
	if _, err := r.Acquire(context.Background(), "ghost", "v1"); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("Acquire ghost@v1 = %v, want ErrUnknownApp", err)
	}
}

func TestLazyLoadOnceAndReuse(t *testing.T) {
	_, img := sampleImage(t)
	met := obs.NewRegistry()
	r := NewRegistry(RegistryConfig{Metrics: met})
	r.RegisterBytes("app.a", "v1", img)

	ctx := context.Background()
	l1, err := r.Acquire(ctx, "app.a", "")
	if err != nil {
		t.Fatal(err)
	}
	localizeOnce(t, l1)
	l1.Release()
	l2, err := r.Acquire(ctx, "app.a", "v1")
	if err != nil {
		t.Fatal(err)
	}
	l2.Release()
	if got := met.Counter(metricLoads).Value(); got != 1 {
		t.Fatalf("loads_total = %d, want 1 (singleflight + reuse)", got)
	}
	if got := r.ResidentBytes(); got != int64(len(img)) {
		t.Fatalf("ResidentBytes = %d, want %d", got, len(img))
	}
}

func TestSingleflightConcurrentFirstLoad(t *testing.T) {
	_, img := sampleImage(t)
	met := obs.NewRegistry()
	inj := faultinject.New()
	gate := make(chan struct{})
	inj.Arm(faultinject.PointSnapshotLoad, faultinject.Fault{Block: gate, Count: 1})
	r := NewRegistry(RegistryConfig{Metrics: met, Injector: inj})
	r.RegisterBytes("app.a", "v1", img)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := r.Acquire(context.Background(), "app.a", "")
			errs[i] = err
			if err == nil {
				l.Release()
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the leader hit the block and waiters pile up
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := met.Counter(metricLoads).Value(); got != 1 {
		t.Fatalf("loads_total = %d, want 1 (one singleflight leader)", got)
	}
	if fired := inj.Fired(faultinject.PointSnapshotLoad); fired != 1 {
		t.Fatalf("load fault fired %d times, want 1", fired)
	}
}

func TestLRUEvictionOrderAndByteAccounting(t *testing.T) {
	_, img := sampleImage(t)
	size := int64(len(img))
	met := obs.NewRegistry()
	// Budget fits two images but not three.
	r := NewRegistry(RegistryConfig{MaxBytes: 2*size + size/2, Metrics: met})
	for _, app := range []string{"app.a", "app.b", "app.c"} {
		r.RegisterBytes(app, "v1", img)
	}
	ctx := context.Background()
	acquire := func(app string) {
		t.Helper()
		l, err := r.Acquire(ctx, app, "")
		if err != nil {
			t.Fatalf("acquire %s: %v", app, err)
		}
		l.Release()
	}
	stateOf := func(app string) string {
		t.Helper()
		for _, st := range r.Apps() {
			if st.App == app {
				return st.State
			}
		}
		t.Fatalf("app %s not in registry listing", app)
		return ""
	}

	acquire("app.a")
	acquire("app.b")
	if got := r.ResidentBytes(); got != 2*size {
		t.Fatalf("resident after two loads = %d, want %d", got, 2*size)
	}
	// Loading C exceeds the budget; A is the least recently used → evicted.
	acquire("app.c")
	if got, want := stateOf("app.a"), "cold"; got != want {
		t.Fatalf("app.a state = %s, want %s (LRU evicted)", got, want)
	}
	if stateOf("app.b") != "live" || stateOf("app.c") != "live" {
		t.Fatalf("app.b/app.c states = %s/%s, want live/live", stateOf("app.b"), stateOf("app.c"))
	}
	if got := met.Counter(metricEvictions).Value(); got != 1 {
		t.Fatalf("evictions_total = %d, want 1", got)
	}
	if got := r.ResidentBytes(); got != 2*size {
		t.Fatalf("resident after eviction = %d, want %d", got, 2*size)
	}

	// Reloading A evicts B (now the least recently used), not C.
	acquire("app.a")
	if got, want := stateOf("app.b"), "cold"; got != want {
		t.Fatalf("app.b state = %s, want %s (second eviction)", got, want)
	}
	if stateOf("app.c") != "live" || stateOf("app.a") != "live" {
		t.Fatalf("app.c/app.a states = %s/%s, want live/live", stateOf("app.c"), stateOf("app.a"))
	}
	if got := met.Counter(metricEvictions).Value(); got != 2 {
		t.Fatalf("evictions_total = %d, want 2", got)
	}
	if got := met.Gauge(metricRegistryBytes).Value(); got != r.ResidentBytes() {
		t.Fatalf("bytes gauge %d disagrees with ResidentBytes %d", got, r.ResidentBytes())
	}
}

func TestLeasedSnapshotIsNotEvicted(t *testing.T) {
	_, img := sampleImage(t)
	size := int64(len(img))
	met := obs.NewRegistry()
	r := NewRegistry(RegistryConfig{MaxBytes: size + size/2, Metrics: met})
	r.RegisterBytes("app.a", "v1", img)
	r.RegisterBytes("app.b", "v1", img)

	ctx := context.Background()
	held, err := r.Acquire(ctx, "app.a", "")
	if err != nil {
		t.Fatal(err)
	}
	// Loading B pushes past the budget, but A is leased — it must stay.
	lb, err := r.Acquire(ctx, "app.b", "")
	if err != nil {
		t.Fatal(err)
	}
	lb.Release()
	localizeOnce(t, held) // the held lease must still serve
	held.Release()
	if got := met.Counter(metricEvictions).Value(); got != 0 {
		t.Fatalf("evictions_total = %d, want 0 (both pinned: one leased, one MRU)", got)
	}
}

func TestHotSwapDrainsOldSnapshot(t *testing.T) {
	_, img := sampleImage(t)
	met := obs.NewRegistry()
	r := NewRegistry(RegistryConfig{Metrics: met})
	r.RegisterBytes("app.a", "v1", img)

	ctx := context.Background()
	old, err := r.Acquire(ctx, "app.a", "")
	if err != nil {
		t.Fatal(err)
	}

	// Hot-swap the same app@version while the old lease is in flight.
	r.RegisterBytes("app.a", "v1", img)
	if got := met.Counter(metricHotSwaps).Value(); got != 1 {
		t.Fatalf("hotswaps_total = %d, want 1", got)
	}

	// Concurrent requests through the old lease keep serving during the swap.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localizeOnce(t, old)
		}()
	}
	wg.Wait()

	// New acquisitions resolve to the replacement entry.
	fresh, err := r.Acquire(ctx, "app.a", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.e == old.e {
		t.Fatal("acquire after hot-swap returned the retired entry")
	}
	localizeOnce(t, fresh)
	fresh.Release()

	// The old snapshot's memory is pinned until its last lease drains.
	if got := met.Counter(metricRetiredFreed).Value(); got != 0 {
		t.Fatalf("retired_released_total = %d before drain, want 0", got)
	}
	both := int64(2 * len(img))
	if got := r.ResidentBytes(); got != both {
		t.Fatalf("resident during drain = %d, want %d (old + new)", got, both)
	}
	old.Release()
	if got := met.Counter(metricRetiredFreed).Value(); got != 1 {
		t.Fatalf("retired_released_total = %d after drain, want 1", got)
	}
	if got := r.ResidentBytes(); got != int64(len(img)) {
		t.Fatalf("resident after drain = %d, want %d (old released)", got, len(img))
	}
}

func TestHotSwapNewVersionMovesLatest(t *testing.T) {
	_, img := sampleImage(t)
	r := NewRegistry(RegistryConfig{})
	r.RegisterBytes("app.a", "v1", img)
	r.RegisterBytes("app.a", "v2", img)

	l, err := r.Acquire(context.Background(), "app.a", "")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if l.Version != "v2" {
		t.Fatalf("latest version = %s, want v2", l.Version)
	}
	// The old version stays individually addressable.
	lv1, err := r.Acquire(context.Background(), "app.a", "v1")
	if err != nil {
		t.Fatalf("acquire pinned v1: %v", err)
	}
	lv1.Release()
}

func TestQuarantineReprobeBackoff(t *testing.T) {
	met := obs.NewRegistry()
	inj := faultinject.New()
	// The first two probes fail (simulated corrupt loads); the third succeeds.
	boom := errors.New("simulated corrupt snapshot")
	inj.Arm(faultinject.PointSnapshotLoad, faultinject.Fault{Err: boom, Count: 2})

	_, img := sampleImage(t)
	r := NewRegistry(RegistryConfig{Metrics: met, Injector: inj})
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }
	r.RegisterBytes("app.a", "v1", img)

	ctx := context.Background()
	// Probe 1: load fails, entry quarantined with base backoff.
	if _, err := r.Acquire(ctx, "app.a", ""); !errors.Is(err, ErrSnapshotLoad) || !errors.Is(err, boom) {
		t.Fatalf("first acquire = %v, want ErrSnapshotLoad wrapping the cause", err)
	}

	// Inside the backoff window: rejected without touching the loader.
	if _, err := r.Acquire(ctx, "app.a", ""); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("acquire in backoff = %v, want ErrQuarantined", err)
	}
	if after, ok := func() (time.Duration, bool) {
		_, err := r.Acquire(ctx, "app.a", "")
		return RetryAfterHint(err)
	}(); !ok || after <= 0 || after > quarantineBase {
		t.Fatalf("quarantine retry hint = %v ok=%v, want (0, %v]", after, ok, quarantineBase)
	}
	if fired := inj.Fired(faultinject.PointSnapshotLoad); fired != 1 {
		t.Fatalf("loader probed %d times inside backoff, want 1", fired)
	}

	// Probe 2 after the base backoff: fails again, backoff doubles.
	clock = clock.Add(quarantineBase)
	if _, err := r.Acquire(ctx, "app.a", ""); !errors.Is(err, ErrSnapshotLoad) {
		t.Fatalf("second probe = %v, want ErrSnapshotLoad", err)
	}
	clock = clock.Add(quarantineBase) // 1×base later: still inside the doubled window
	if _, err := r.Acquire(ctx, "app.a", ""); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("acquire inside doubled backoff = %v, want ErrQuarantined", err)
	}
	if fired := inj.Fired(faultinject.PointSnapshotLoad); fired != 2 {
		t.Fatalf("loader probed %d times, want 2", fired)
	}

	// Probe 3 after the doubled backoff: the fault is exhausted, the
	// snapshot loads, and the entry recovers.
	clock = clock.Add(quarantineBase) // total 2×base since probe 2
	l, err := r.Acquire(ctx, "app.a", "")
	if err != nil {
		t.Fatalf("probe after recovery = %v, want success", err)
	}
	localizeOnce(t, l)
	l.Release()
	if got := met.Counter(metricQuarRecovered).Value(); got != 1 {
		t.Fatalf("quarantine_recovered_total = %d, want 1", got)
	}
	if got := met.Counter(metricQuarRejects).Value(); got != 3 {
		t.Fatalf("quarantine_rejects_total = %d, want 3", got)
	}
}

func TestCorruptFileQuarantinesWithTypedError(t *testing.T) {
	bad := corruptImage(t)
	met := obs.NewRegistry()
	r := NewRegistry(RegistryConfig{Metrics: met})
	r.RegisterBytes("app.bad", "v1", bad)

	_, err := r.Acquire(context.Background(), "app.bad", "")
	if !errors.Is(err, ErrSnapshotLoad) {
		t.Fatalf("corrupt acquire = %v, want ErrSnapshotLoad", err)
	}
	if !errors.Is(err, snapfile.ErrChecksum) {
		t.Fatalf("corrupt acquire = %v, want the snapfile checksum cause preserved", err)
	}
	for _, st := range r.Apps() {
		if st.App == "app.bad" && st.State != "quarantined" {
			t.Fatalf("corrupt app state = %s, want quarantined", st.State)
		}
	}
	// One corrupt snapshot never takes down the fleet: a healthy app
	// registered beside it still serves.
	_, img := sampleImage(t)
	r.RegisterBytes("app.good", "v1", img)
	l, err := r.Acquire(context.Background(), "app.good", "")
	if err != nil {
		t.Fatalf("healthy app beside quarantined one: %v", err)
	}
	localizeOnce(t, l)
	l.Release()
}

func TestQuarantineBackoffCurve(t *testing.T) {
	for _, tc := range []struct {
		failures int
		want     time.Duration
	}{
		{1, quarantineBase}, {2, 2 * quarantineBase}, {3, 4 * quarantineBase},
		{7, quarantineMax}, {40, quarantineMax}, {0, quarantineBase},
	} {
		if got := quarantineBackoff(tc.failures); got != tc.want {
			t.Errorf("backoff(%d) = %v, want %v", tc.failures, got, tc.want)
		}
	}
}

func TestSlowLoadAbandonedGoesColdNotQuarantined(t *testing.T) {
	_, img := sampleImage(t)
	met := obs.NewRegistry()
	inj := faultinject.New()
	inj.Arm(faultinject.PointSnapshotLoad, faultinject.Fault{Block: make(chan struct{}), Count: 1})
	r := NewRegistry(RegistryConfig{Metrics: met, Injector: inj})
	r.RegisterBytes("app.a", "v1", img)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := r.Acquire(ctx, "app.a", ""); !errors.Is(err, ErrDeadline) {
		t.Fatalf("abandoned slow load = %v, want ErrDeadline", err)
	}
	if got := met.Counter(metricLoadCanceled).Value(); got != 1 {
		t.Fatalf("load_canceled_total = %d, want 1", got)
	}
	// The snapshot itself was never suspect: the next request (fault
	// exhausted) loads it cleanly with no quarantine in between.
	l, err := r.Acquire(context.Background(), "app.a", "")
	if err != nil {
		t.Fatalf("reload after abandoned load = %v", err)
	}
	l.Release()
	if got := met.Counter(metricQuarantined).Value(); got != 0 {
		t.Fatalf("quarantined_total = %d, want 0", got)
	}
}

// TestQuantizedLoadChargesTierBytes: with WithQuantizedScan load options the
// quantized scan tiers count against the registry's byte budget — an entry
// must cost strictly more than its retained image, by exactly the snapshot's
// reported tier bytes.
func TestQuantizedLoadChargesTierBytes(t *testing.T) {
	_, img := sampleImage(t)
	r := NewRegistry(RegistryConfig{
		LoadOptions: []core.Option{core.WithQuantizedScan()},
	})
	r.RegisterBytes("app.a", "v1", img)
	l, err := r.Acquire(context.Background(), "app.a", "")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer l.Release()
	// The tier is deterministic for a given image + options, so an
	// independent reference load yields the exact byte count the registry
	// must have charged on top of the retained image.
	ref, _, err := core.LoadSnapshotBytes(img, core.WithQuantizedScan())
	if err != nil {
		t.Fatalf("reference load: %v", err)
	}
	qb := ref.QuantBytes()
	if qb <= 0 {
		t.Fatal("reference quantized load reports no tier bytes")
	}
	want := int64(len(img)) + qb
	if got := r.ResidentBytes(); got != want {
		t.Fatalf("ResidentBytes = %d, want image %d + tier %d", got, len(img), qb)
	}
	for _, st := range r.Apps() {
		if st.App == "app.a" && st.Bytes != want {
			t.Fatalf("entry bytes = %d, want %d", st.Bytes, want)
		}
	}
}
