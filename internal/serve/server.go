package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve/faultinject"
)

// Server metric names (the registry adds its own, see registry.go).
const (
	metricRequests   = "serve_requests_total"
	metricReviews    = "serve_reviews_served_total"
	metricShed       = "serve_shed_total"
	metricDeadlines  = "serve_deadline_total"
	metricPanics     = "serve_panics_total"
	metricErrors     = "serve_errors_total"
	metricQueueDepth = "serve_queue_depth"
	metricInflight   = "serve_inflight"
)

// shedRetryAfter is the client backoff hint attached to 429 responses.
const shedRetryAfter = time.Second

// Config configures a Daemon. Zero values get serving defaults.
type Config struct {
	// QueueDepth is the per-app admission bound: how many requests may
	// wait for an execution slot before new arrivals are shed with 429.
	// Default 64.
	QueueDepth int
	// MaxConcurrent is the per-app execution bound. Default NumCPU.
	MaxConcurrent int
	// RequestTimeout is the per-request deadline propagated through the
	// whole pipeline via context. Default 10s; negative disables.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (Close). Default 5s.
	DrainTimeout time.Duration
	// MaxBytes is the registry's resident byte budget (0 = unlimited).
	MaxBytes int64
	// PoolWorkers sizes per-snapshot batch pools (core.NewPool convention).
	PoolWorkers int
	// LoadOptions apply to every snapshot load (classifier, observer).
	LoadOptions []core.Option
	// Classify is the daemon-level review classifier behind /v1/classify;
	// nil makes the endpoint report every review as a function error (the
	// no-classifier convention of core.Solver).
	Classify func(text string) bool
	// Injector is the fault-injection harness; nil injects nothing.
	Injector *faultinject.Injector
	// Metrics receives all serving metrics; nil disables them.
	Metrics *obs.Registry

	// TraceSampleEvery enables request tracing: every request gets a
	// deterministic trace ID (X-Trace-Id header, span propagation), and
	// every Nth request's full explain trace is retained for
	// /v1/trace/<id>. 0 (the default) disables tracing entirely.
	TraceSampleEvery int
	// TraceSeed seeds the deterministic trace-ID sequence. Default 1.
	TraceSeed int64
	// TraceCapacity bounds the retained sampled traces. Default 256.
	TraceCapacity int
	// JournalCapacity enables the registry lifecycle event journal
	// (/v1/events) with a ring of that many records. 0 disables it.
	JournalCapacity int
	// SLO enables rolling-window per-app SLO/error-budget tracking
	// (/v1/fleetstat). Nil disables it; the config's Now defaults to Clock.
	SLO *obs.SLOConfig
	// Clock is the injectable time source for journal timestamps,
	// quarantine backoff, and SLO windows; nil means time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = runtime.NumCPU()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Daemon is the reviewd serving core: the snapshot registry plus the HTTP
// surface with admission control, deadlines, panic containment, and
// graceful shutdown. Build one with NewDaemon, mount Handler (or Start a
// listener), and stop with Shutdown/Close.
type Daemon struct {
	cfg Config
	reg *Registry
	met *obs.Registry
	inj *faultinject.Injector

	// Fleet observability (all nil when off — every use is nil-safe).
	rec     *obs.Recorder
	tsrc    *obs.TraceSource
	traces  *obs.TraceStore
	journal *obs.Journal
	slo     *obs.SLOTracker

	mux      *http.ServeMux
	srv      *http.Server
	ln       net.Listener
	draining atomic.Bool

	qmu    sync.Mutex
	queues map[string]*appQueue
}

// appQueue is one app's admission state: a CAS-bounded waiting count and a
// semaphore of execution slots.
type appQueue struct {
	waiting atomic.Int64
	slots   chan struct{}
}

// NewDaemon builds a daemon (registry included) from the config.
func NewDaemon(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	d := &Daemon{
		cfg:    cfg,
		met:    cfg.Metrics,
		inj:    cfg.Injector,
		queues: make(map[string]*appQueue),
	}
	if cfg.Metrics != nil {
		d.rec = obs.NewRecorder(cfg.Metrics, nil)
	}
	if cfg.JournalCapacity > 0 {
		d.journal = obs.NewJournal(cfg.JournalCapacity, cfg.Metrics)
	}
	if cfg.TraceSampleEvery > 0 {
		seed := cfg.TraceSeed
		if seed == 0 {
			seed = 1
		}
		d.tsrc = obs.NewTraceSource(seed, cfg.TraceSampleEvery)
		d.traces = obs.NewTraceStore(cfg.TraceCapacity)
	}
	if cfg.SLO != nil {
		sc := *cfg.SLO
		if sc.Now == nil {
			sc.Now = clock
		}
		d.slo = obs.NewSLOTracker(sc)
	}
	d.reg = NewRegistry(RegistryConfig{
		MaxBytes:    cfg.MaxBytes,
		PoolWorkers: cfg.PoolWorkers,
		LoadOptions: cfg.LoadOptions,
		Injector:    cfg.Injector,
		Metrics:     cfg.Metrics,
		Journal:     d.journal,
		Clock:       cfg.Clock,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/localize", d.endpoint("localize", "/v1/localize", d.handleLocalize))
	mux.HandleFunc("POST /v1/classify", d.endpoint("classify", "/v1/classify", d.handleClassify))
	mux.HandleFunc("GET /v1/apps", d.endpoint("apps", "/v1/apps", d.handleApps))
	mux.HandleFunc("POST /v1/apps", d.endpoint("register", "/v1/apps", d.handleRegister))
	mux.HandleFunc("GET /v1/trace/{id}", d.endpoint("trace", "/v1/trace/{id}", d.handleTrace))
	mux.HandleFunc("GET /v1/events", d.endpoint("events", "/v1/events", d.handleEvents))
	mux.HandleFunc("GET /v1/fleetstat", d.endpoint("fleetstat", "/v1/fleetstat", d.handleFleetstat))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = d.met.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	d.mux = mux
	return d
}

// Registry exposes the daemon's snapshot registry (registration at boot,
// test orchestration).
func (d *Daemon) Registry() *Registry { return d.reg }

// Handler returns the daemon's HTTP handler, mountable without a listener.
func (d *Daemon) Handler() http.Handler { return d.mux }

// Start binds addr (":0" picks a free port) and serves in the background.
func (d *Daemon) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	d.ln = ln
	d.srv = &http.Server{Handler: d.mux}
	go func() { _ = d.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound address (after Start).
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Shutdown drains gracefully: new requests are refused with 503, in-flight
// requests finish, and the call returns when the server is idle or ctx
// ends, whichever is first.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.draining.Store(true)
	if d.srv == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}

// Close is Shutdown under the configured DrainTimeout, falling back to an
// abrupt close if the drain deadline passes (same policy as the obs debug
// server).
func (d *Daemon) Close() error {
	d.draining.Store(true)
	if d.srv == nil {
		return nil
	}
	return obs.ShutdownHTTP(d.srv, d.cfg.DrainTimeout)
}

// --- middleware ------------------------------------------------------------------

// endpoint wraps a handler with the serving spine: drain refusal, request
// counting (aggregate and per-app labeled), trace-context minting, the
// per-request deadline, per-endpoint latency histograms, SLO accounting,
// and panic containment (a panicking request answers 500 and increments a
// counter; the daemon never dies).
func (d *Daemon) endpoint(name, route string, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	hist := "serve_http_" + name + "_ns"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		d.met.Counter(metricRequests).Add(1)
		ri := &reqInfo{}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ctx := r.Context()
		if d.tsrc != nil {
			tc := d.tsrc.Next()
			ctx = obs.WithTraceContext(ctx, tc)
			sw.Header().Set("X-Trace-Id", tc.ID)
			ri.span = d.rec.StartCtx(ctx, "serve_"+name)
		}
		defer func() {
			if p := recover(); p != nil {
				d.met.Counter(metricPanics).Add(1)
				d.writeError(sw, fmt.Errorf("%w: recovered panic: %v", ErrInternal, p))
			}
			elapsed := time.Since(start)
			d.met.Histogram(hist, obs.LatencyBucketsNs).Observe(float64(elapsed.Nanoseconds()))
			ri.span.End()
			d.noteRequest(ri.app, route, sw.status, elapsed)
		}()
		if d.draining.Load() {
			d.writeError(sw, ErrShutdown)
			return
		}
		if d.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d.cfg.RequestTimeout)
			defer cancel()
		}
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		if err := h(sw, r.WithContext(ctx)); err != nil {
			d.writeError(sw, err)
		}
	}
}

// admit applies the app's admission policy: shed immediately with 429 when
// the waiting line is full, otherwise wait for an execution slot or the
// request deadline. The returned release function frees the slot.
func (d *Daemon) admit(ctx context.Context, app string) (release func(), err error) {
	q := d.queueFor(app)
	depth := int64(d.cfg.QueueDepth)
	for {
		w := q.waiting.Load()
		if w >= depth {
			d.met.Counter(metricShed).Add(1)
			d.met.CounterVec(metricShed, "app").With(app).Add(1)
			return nil, &RetryAfterError{
				Err:   fmt.Errorf("%w: %d requests already queued for %s", ErrQueueFull, w, app),
				After: shedRetryAfter,
			}
		}
		if q.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	d.met.Gauge(metricQueueDepth).Add(1)
	leaveQueue := func() {
		q.waiting.Add(-1)
		d.met.Gauge(metricQueueDepth).Add(-1)
	}
	select {
	case q.slots <- struct{}{}:
		leaveQueue()
		d.met.Gauge(metricInflight).Add(1)
		return func() {
			<-q.slots
			d.met.Gauge(metricInflight).Add(-1)
		}, nil
	case <-ctx.Done():
		leaveQueue()
		d.met.Counter(metricDeadlines).Add(1)
		return nil, fmt.Errorf("%w: while queued for %s: %w", ErrDeadline, app, ctx.Err())
	}
}

func (d *Daemon) queueFor(app string) *appQueue {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	q := d.queues[app]
	if q == nil {
		q = &appQueue{slots: make(chan struct{}, d.cfg.MaxConcurrent)}
		d.queues[app] = q
	}
	return q
}

// --- request/response schema ------------------------------------------------------

// LocalizeRequest is the /v1/localize body: one review (Review) or a batch
// (Reviews), against app (+ optional version; empty serves the most
// recently registered).
type LocalizeRequest struct {
	App         string        `json:"app"`
	Version     string        `json:"version,omitempty"`
	Review      string        `json:"review,omitempty"`
	PublishedAt string        `json:"published_at,omitempty"`
	Reviews     []BatchReview `json:"reviews,omitempty"`
}

// BatchReview is one review of a batch localize request.
type BatchReview struct {
	Review      string `json:"review"`
	PublishedAt string `json:"published_at,omitempty"`
}

// RankedClass is one recommended class of a localization.
type RankedClass struct {
	Rank         int      `json:"rank"`
	Class        string   `json:"class"`
	Importance   int      `json:"importance"`
	Dependencies int      `json:"dependencies"`
	Methods      []string `json:"methods,omitempty"`
	Contexts     []string `json:"contexts,omitempty"`
}

// LocalizeResult is the localization of one review.
type LocalizeResult struct {
	Review      string        `json:"review"`
	IsError     bool          `json:"is_error"`
	Release     string        `json:"release,omitempty"`
	Localized   bool          `json:"localized"`
	VerbPhrases []string      `json:"verb_phrases,omitempty"`
	Quoted      []string      `json:"quoted,omitempty"`
	Ranked      []RankedClass `json:"ranked,omitempty"`
}

// LocalizeResponse is the /v1/localize body: results in request order.
type LocalizeResponse struct {
	App     string           `json:"app"`
	Version string           `json:"version"`
	Results []LocalizeResult `json:"results"`
}

// ClassifyRequest is the /v1/classify body.
type ClassifyRequest struct {
	Review string `json:"review"`
}

// ClassifyResponse is the /v1/classify answer.
type ClassifyResponse struct {
	Review  string `json:"review"`
	IsError bool   `json:"is_error"`
}

// RegisterRequest is the POST /v1/apps body.
type RegisterRequest struct {
	App     string `json:"app"`
	Version string `json:"version"`
	Path    string `json:"path"`
}

// AppsResponse is the GET /v1/apps body.
type AppsResponse struct {
	Apps          []AppStatus `json:"apps"`
	ResidentBytes int64       `json:"resident_bytes"`
}

// ErrorBody is the JSON shape of every non-2xx answer.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable kind (see KindFor) next to the
// human-readable message.
type ErrorDetail struct {
	Kind         string `json:"kind"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// ResultToJSON converts one pipeline result into its response form. Shared
// by the handler and the smoke/bench harnesses so "served response equals
// locally computed response" can be checked byte for byte.
func ResultToJSON(review string, res *core.Result) LocalizeResult {
	out := LocalizeResult{
		Review:    review,
		IsError:   res.IsError,
		Localized: res.Localized(),
	}
	if res.Release != nil {
		out.Release = res.Release.Version
	}
	if res.Analysis != nil {
		for _, vp := range res.Analysis.VerbPhrases {
			out.VerbPhrases = append(out.VerbPhrases, vp.String())
		}
		out.Quoted = append(out.Quoted, res.Analysis.Quoted...)
	}
	for i, rc := range res.Ranked {
		out.Ranked = append(out.Ranked, RankedClass{
			Rank:         i + 1,
			Class:        rc.Class,
			Importance:   rc.Importance,
			Dependencies: rc.Dependencies,
			Methods:      rc.Methods,
			Contexts:     rc.Contexts,
		})
	}
	return out
}

// --- handlers --------------------------------------------------------------------

func (d *Daemon) handleLocalize(w http.ResponseWriter, r *http.Request) error {
	ctx := r.Context()
	var req LocalizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.App == "" {
		return fmt.Errorf("%w: missing app", ErrBadRequest)
	}
	single := req.Review != ""
	if !single && len(req.Reviews) == 0 {
		return fmt.Errorf("%w: provide review or reviews", ErrBadRequest)
	}
	if single && len(req.Reviews) > 0 {
		return fmt.Errorf("%w: review and reviews are mutually exclusive", ErrBadRequest)
	}
	noteApp(ctx, req.App)
	span := requestSpan(ctx)

	as := span.Child("serve_admit")
	release, err := d.admit(ctx, req.App)
	as.End()
	if err != nil {
		return err
	}
	defer release()

	ls := span.Child("serve_lease")
	lease, err := d.reg.Acquire(ctx, req.App, req.Version)
	ls.End()
	if err != nil {
		return err
	}
	defer lease.Release()

	if err := d.fireRequestFault(ctx, req.App); err != nil {
		return err
	}

	resp := LocalizeResponse{App: req.App, Version: lease.Version}
	if single {
		when, err := parseWhen(req.PublishedAt, lease.App)
		if err != nil {
			return err
		}
		lz := span.Child("serve_localize")
		var res *core.Result
		if tc, _ := obs.TraceContextFrom(ctx); tc.Sampled {
			// Sampled request: retain the full explain trace under the
			// request's trace ID for /v1/trace/<id> — the same ReviewTrace
			// artifact `reviewsolver -explain` writes.
			var tr *obs.ReviewTrace
			res, tr = lease.Solver.LocalizeReviewTraced(lease.App, req.Review, when)
			if data, jerr := tr.JSON(); jerr == nil {
				d.traces.Put(tc.ID, data)
			}
		} else {
			res = lease.Solver.LocalizeReview(lease.App, req.Review, when)
		}
		lz.End()
		resp.Results = append(resp.Results, ResultToJSON(req.Review, res))
		d.met.Counter(metricReviews).Add(1)
		return writeJSON(w, http.StatusOK, resp)
	}

	// Batch: stream through the pool's cancellable corpus path, so the
	// request deadline propagates into the workers.
	inputs := make([]core.ReviewInput, len(req.Reviews))
	for i, br := range req.Reviews {
		when, err := parseWhen(br.PublishedAt, lease.App)
		if err != nil {
			return err
		}
		inputs[i] = core.ReviewInput{Text: br.Review, PublishedAt: when}
	}
	in := make(chan core.ReviewInput, len(inputs))
	for _, ri := range inputs {
		in <- ri
	}
	close(in)
	lz := span.Child("serve_localize_batch")
	defer lz.End()
	got := 0
	for cr := range lease.Pool.LocalizeCorpusContext(ctx, lease.App, in) {
		resp.Results = append(resp.Results, ResultToJSON(inputs[cr.Index].Text, cr.Result))
		got++
	}
	if got != len(inputs) {
		d.met.Counter(metricDeadlines).Add(1)
		return fmt.Errorf("%w: batch cancelled after %d/%d reviews: %w", ErrDeadline, got, len(inputs), ctx.Err())
	}
	d.met.Counter(metricReviews).Add(int64(got))
	return writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleClassify(w http.ResponseWriter, r *http.Request) error {
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Review == "" {
		return fmt.Errorf("%w: missing review", ErrBadRequest)
	}
	isErr := true
	if d.cfg.Classify != nil {
		isErr = d.cfg.Classify(req.Review)
	}
	return writeJSON(w, http.StatusOK, ClassifyResponse{Review: req.Review, IsError: isErr})
}

func (d *Daemon) handleApps(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, AppsResponse{
		Apps:          d.reg.Apps(),
		ResidentBytes: d.reg.ResidentBytes(),
	})
}

func (d *Daemon) handleRegister(w http.ResponseWriter, r *http.Request) error {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.App == "" || req.Version == "" || req.Path == "" {
		return fmt.Errorf("%w: app, version, and path are all required", ErrBadRequest)
	}
	d.reg.Register(req.App, req.Version, req.Path)
	return writeJSON(w, http.StatusOK, map[string]string{"status": "registered", "app": req.App, "version": req.Version})
}

// fireRequestFault runs the request-point fault injection while the
// request holds its execution slot: blocked faults model long requests
// (saturation scenarios), cancelled blocks model clients walking away
// mid-request.
func (d *Daemon) fireRequestFault(ctx context.Context, app string) error {
	err := d.inj.Fire(ctx, faultinject.PointRequest, app)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, faultinject.ErrPanic):
		panic(err) // contained by the endpoint middleware; chaos tests assert the 500
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		d.met.Counter(metricDeadlines).Add(1)
		return fmt.Errorf("%w: mid-request: %w", ErrDeadline, err)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuarantined), errors.Is(err, ErrSnapshotLoad):
		return err
	default:
		return fmt.Errorf("%w: injected fault: %w", ErrInternal, err)
	}
}

// parseWhen resolves a review publication time: RFC 3339 when given, the
// day after the app's latest release otherwise (the reviewsolver default).
func parseWhen(s string, app *apk.App) (time.Time, error) {
	if s == "" {
		return app.Latest().ReleasedAt.AddDate(0, 0, 1), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: published_at: %v", ErrBadRequest, err)
	}
	return t, nil
}

// writeJSON writes v as a compact JSON body with a trailing newline — the
// exact bytes json.Marshal produces, so harnesses can diff responses
// byte-for-byte against locally encoded expectations.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("%w: encode response: %v", ErrInternal, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, werr := w.Write(append(data, '\n'))
	return werr
}

// writeError renders a typed serving error: its mapped status, its stable
// kind, and a Retry-After header when the error carries a backoff hint.
func (d *Daemon) writeError(w http.ResponseWriter, err error) {
	d.met.Counter(metricErrors).Add(1)
	detail := ErrorDetail{Kind: KindFor(err), Message: err.Error()}
	if after, ok := RetryAfterHint(err); ok {
		secs := int64((after + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		detail.RetryAfterMs = after.Milliseconds()
	}
	data, merr := json.Marshal(ErrorBody{Error: detail})
	if merr != nil {
		http.Error(w, err.Error(), StatusFor(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(StatusFor(err))
	_, _ = w.Write(append(data, '\n'))
}
